(* Compiler diagnostics.

   All user-facing errors raised by the front end and back end carry a
   source location and a severity.  Internal invariant violations use
   [ice] ("internal compiler error") so that they are distinguishable from
   errors in the program under compilation. *)

type severity = Error | Warning | Note

type t = { severity : severity; loc : Srcloc.t; message : string }

exception Compile_error of t

let pp_severity ppf = function
  | Error -> Fmt.string ppf "error"
  | Warning -> Fmt.string ppf "warning"
  | Note -> Fmt.string ppf "note"

let pp ppf d =
  Fmt.pf ppf "%a: %a: %s" Srcloc.pp d.loc pp_severity d.severity d.message

let to_string d = Fmt.str "%a" pp d

let error ?(loc = Srcloc.dummy) fmt =
  Fmt.kstr
    (fun message ->
      raise (Compile_error { severity = Error; loc; message }))
    fmt

let errorf ?loc fmt = error ?loc fmt

(* Pass-by-pass verification failure: an invariant the back end relies
   on no longer holds, and [pass] is the pipeline stage that introduced
   the breakage.  A species of internal compiler error, but tagged with
   the offending pass so regressions are attributable at a glance. *)
let verify_failed ~pass fmt =
  Fmt.kstr
    (fun message ->
      raise
        (Compile_error
           { severity = Error; loc = Srcloc.dummy;
             message =
               Fmt.str "internal compiler error: verification failed after pass '%s': %s"
                 pass message }))
    fmt

(* Internal compiler error: a bug in this compiler, not in user code. *)
let ice fmt =
  Fmt.kstr
    (fun message ->
      raise
        (Compile_error
           { severity = Error; loc = Srcloc.dummy;
             message = "internal compiler error: " ^ message }))
    fmt

let warning_printer :
    (t -> unit) ref =
  ref (fun d -> Fmt.epr "%a@." pp d)

let warn ?(loc = Srcloc.dummy) fmt =
  Fmt.kstr
    (fun message ->
      !warning_printer { severity = Warning; loc; message })
    fmt

(* Run [f] and capture a compile error as [Result.Error]. *)
let protect f =
  match f () with
  | v -> Ok v
  | exception Compile_error d -> Error d
