(* Pipeline-wide tracing: nestable timed spans with key/value attributes,
   instant events and counter series, exported as Chrome trace-event JSON
   (the "JSON Array Format") loadable in Perfetto or chrome://tracing.

   The recorder is a process-wide buffer behind a single [on] flag.  When
   tracing is disabled -- the default -- every entry point reduces to one
   boolean test and runs the traced thunk directly, so instrumented hot
   paths (the branch-and-bound loop, the chip run loop) cost nothing and
   allocate nothing.  [enable] resets the buffer and starts a fresh
   timebase; [disable] stops recording but keeps the buffer so it can
   still be exported or aggregated.

   Timestamps are microseconds from [enable] on the monotonic clock
   ([Monotonic]), matching the trace-event format's expected unit.
   Callers with their own timebase (the cycle-accurate chip model) can
   emit pre-timed events through [complete]; one simulated cycle is
   conventionally mapped to one microsecond so Perfetto's ruler reads in
   cycles. *)

type value = Str of string | Int of int | Float of float | Bool of bool

type event = {
  ev_ph : char; (* 'X' complete span, 'i' instant, 'C' counter *)
  ev_name : string;
  ev_cat : string;
  ev_ts : float; (* microseconds since [enable] (or caller timebase) *)
  ev_dur : float; (* 'X' only *)
  ev_tid : int;
  ev_args : (string * value) list;
}

(* Worker domains of the parallel branch-and-bound emit spans and
   instants concurrently, so the enabled flag is an [Atomic] (a plain
   [ref] read could be torn against [enable]'s buffer clear) and every
   buffer mutation happens under one mutex.  The disabled-path cost is
   unchanged: a single atomic load, no lock. *)
let on = Atomic.make false
let origin_ns = ref 0L
let events : event Vec.t = Vec.create ()
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let push ev = locked (fun () -> Vec.push events ev)
let is_enabled () = Atomic.get on

let enable () =
  locked (fun () ->
      Vec.clear events;
      origin_ns := Monotonic.now_ns ());
  Atomic.set on true

let disable () = Atomic.set on false

let reset () =
  Atomic.set on false;
  locked (fun () -> Vec.clear events)

let num_events () = locked (fun () -> Vec.length events)

let now_us () =
  Int64.to_float (Int64.sub (Monotonic.now_ns ()) !origin_ns) /. 1e3

(* Raw emission with a caller-supplied timebase (already in "us"). *)
let complete ?(cat = "") ?(tid = 0) ?(args = []) ~ts_us ~dur_us name =
  if Atomic.get on then
    push
      {
        ev_ph = 'X';
        ev_name = name;
        ev_cat = cat;
        ev_ts = ts_us;
        ev_dur = dur_us;
        ev_tid = tid;
        ev_args = args;
      }

(* Time [f], recording a complete span even when [f] raises (the span is
   what you want to see when hunting the stage that blew up). *)
let with_span ?(cat = "") ?(tid = 0) ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    let finish () =
      complete ~cat ~tid ~args ~ts_us:t0 ~dur_us:(now_us () -. t0) name
    in
    match f () with
    | v ->
        finish ();
        v
    | exception e ->
        finish ();
        raise e
  end

let instant ?(cat = "") ?(tid = 0) ?(args = []) name =
  if Atomic.get on then
    push
      {
        ev_ph = 'i';
        ev_name = name;
        ev_cat = cat;
        ev_ts = now_us ();
        ev_dur = 0.;
        ev_tid = tid;
        ev_args = args;
      }

(* A named family of counter series sampled at the current time;
   rendered by Perfetto as stacked area charts. *)
let counter ?(tid = 0) name series =
  if Atomic.get on then
    push
      {
        ev_ph = 'C';
        ev_name = name;
        ev_cat = "";
        ev_ts = now_us ();
        ev_dur = 0.;
        ev_tid = tid;
        ev_args = List.map (fun (k, v) -> (k, Float v)) series;
      }

(* ------------------------------------------------------------------ *)
(* Aggregation                                                         *)
(* ------------------------------------------------------------------ *)

(* Total recorded duration per span name, in seconds, sorted by name.
   Durations are inclusive of nested spans (a "branch-and-bound" total
   contains the "root-lp" span inside it). *)
let span_totals () =
  let tbl : (string, float ref) Hashtbl.t = Hashtbl.create 32 in
  locked (fun () ->
  Vec.iter
    (fun ev ->
      if ev.ev_ph = 'X' then
        match Hashtbl.find_opt tbl ev.ev_name with
        | Some r -> r := !r +. ev.ev_dur
        | None -> Hashtbl.add tbl ev.ev_name (ref ev.ev_dur))
    events);
  Hashtbl.fold (fun name r acc -> (name, !r /. 1e6) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* ------------------------------------------------------------------ *)
(* Chrome trace-event JSON export                                      *)
(* ------------------------------------------------------------------ *)

let buf_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let buf_string buf s =
  Buffer.add_char buf '"';
  buf_escape buf s;
  Buffer.add_char buf '"'

(* JSON has no NaN/Infinity literals; clamp them so the export always
   parses. *)
let buf_float buf f =
  if Float.is_nan f then Buffer.add_string buf "null"
  else if f = infinity then Buffer.add_string buf "1e308"
  else if f = neg_infinity then Buffer.add_string buf "-1e308"
  else Buffer.add_string buf (Printf.sprintf "%.3f" f)

let buf_value buf = function
  | Str s -> buf_string buf s
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> buf_float buf f
  | Bool b -> Buffer.add_string buf (string_of_bool b)

let buf_event buf ev =
  Buffer.add_string buf "{\"name\":";
  buf_string buf ev.ev_name;
  if ev.ev_cat <> "" then begin
    Buffer.add_string buf ",\"cat\":";
    buf_string buf ev.ev_cat
  end;
  Buffer.add_string buf (Printf.sprintf ",\"ph\":\"%c\",\"ts\":" ev.ev_ph);
  buf_float buf ev.ev_ts;
  if ev.ev_ph = 'X' then begin
    Buffer.add_string buf ",\"dur\":";
    buf_float buf ev.ev_dur
  end;
  if ev.ev_ph = 'i' then Buffer.add_string buf ",\"s\":\"t\"";
  Buffer.add_string buf (Printf.sprintf ",\"pid\":1,\"tid\":%d" ev.ev_tid);
  if ev.ev_args <> [] then begin
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        buf_string buf k;
        Buffer.add_char buf ':';
        buf_value buf v)
      ev.ev_args;
    Buffer.add_char buf '}'
  end;
  Buffer.add_char buf '}'

let to_json () =
  let buf = Buffer.create (256 + (Vec.length events * 96)) in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  locked (fun () ->
      Vec.iteri
        (fun i ev ->
          if i > 0 then Buffer.add_string buf ",\n";
          buf_event buf ev)
        events);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let write path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))
