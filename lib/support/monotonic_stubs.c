/* Monotonic time source for Support.Monotonic.

   CLOCK_MONOTONIC is immune to wall-clock steps (NTP jumps, manual
   `date` changes), which matters because solver budgets and trace
   timestamps must never go backwards or leap forwards.  The native
   entry point is [@@noalloc] with an unboxed int64 result, so reading
   the clock allocates nothing. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <stdint.h>

#ifdef _WIN32
#include <windows.h>

int64_t nova_monotonic_now_ns(value unit)
{
  (void)unit;
  LARGE_INTEGER freq, count;
  QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&count);
  return (int64_t)((double)count.QuadPart * 1e9 / (double)freq.QuadPart);
}

#else
#include <time.h>
#include <sys/time.h>

int64_t nova_monotonic_now_ns(value unit)
{
  (void)unit;
#ifdef CLOCK_MONOTONIC
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
#else
  /* last-resort fallback: wall clock (non-monotonic, but universal) */
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return (int64_t)tv.tv_sec * 1000000000 + (int64_t)tv.tv_usec * 1000;
#endif
}

#endif

CAMLprim value nova_monotonic_now_ns_byte(value unit)
{
  return caml_copy_int64(nova_monotonic_now_ns(unit));
}
