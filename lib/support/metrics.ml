(* Process-wide metrics registry: named counters, gauges and histograms
   with a text dump.

   Unlike [Trace], which records a timeline, this module accumulates
   totals; the two answer different questions ("when did the time go" vs
   "how many times did X happen").  Lookup by name goes through a
   hashtable, so hot paths should resolve their instrument once (at
   module initialization or at the top of a solve) and then bump the
   returned record directly -- an increment is a single mutable-field
   store.  [reset] zeroes every registered instrument in place, keeping
   previously resolved handles valid. *)

type counter = { c_name : string; mutable c_value : int }
type gauge = { g_name : string; mutable g_value : float }

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as another kind" name)

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> kind_clash name
  | None ->
      let c = { c_name = name; c_value = 0 } in
      Hashtbl.replace registry name (Counter c);
      c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let counter_value c = c.c_value

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> kind_clash name
  | None ->
      let g = { g_name = name; g_value = 0. } in
      Hashtbl.replace registry name (Gauge g);
      g

let set g v = g.g_value <- v
let gauge_value g = g.g_value

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> kind_clash name
  | None ->
      let h =
        { h_name = name; h_count = 0; h_sum = 0.; h_min = infinity;
          h_max = neg_infinity }
      in
      Hashtbl.replace registry name (Histogram h);
      h

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

let reset () =
  Hashtbl.iter
    (fun _ instrument ->
      match instrument with
      | Counter c -> c.c_value <- 0
      | Gauge g -> g.g_value <- 0.
      | Histogram h ->
          h.h_count <- 0;
          h.h_sum <- 0.;
          h.h_min <- infinity;
          h.h_max <- neg_infinity)
    registry

(* Every registered instrument as one text line, sorted by name:
     counter   lp.bb.nodes 128
     gauge     chip.bus.sram.stall 42
     histogram span.solve count=3 sum=1.2 min=0.1 max=0.8 *)
let dump () =
  let lines =
    Hashtbl.fold
      (fun name instrument acc ->
        let line =
          match instrument with
          | Counter c -> Printf.sprintf "counter   %s %d" name c.c_value
          | Gauge g -> Printf.sprintf "gauge     %s %g" name g.g_value
          | Histogram h ->
              if h.h_count = 0 then
                Printf.sprintf "histogram %s count=0" name
              else
                Printf.sprintf
                  "histogram %s count=%d sum=%g min=%g max=%g mean=%g" name
                  h.h_count h.h_sum h.h_min h.h_max
                  (h.h_sum /. float_of_int h.h_count)
        in
        line :: acc)
      registry []
  in
  String.concat "\n" (List.sort String.compare lines)
