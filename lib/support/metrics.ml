(* Process-wide metrics registry: named counters, gauges and histograms
   with a text dump.

   Unlike [Trace], which records a timeline, this module accumulates
   totals; the two answer different questions ("when did the time go" vs
   "how many times did X happen").  Lookup by name goes through a
   hashtable, so hot paths should resolve their instrument once (at
   module initialization or at the top of a solve) and then bump the
   returned record directly.  [reset] zeroes every registered instrument
   in place, keeping previously resolved handles valid.

   Domain-safety: the solver now runs branch-and-bound workers on
   OCaml 5 domains, and those workers bump counters (node counts,
   refactorizations) concurrently.  Counters and gauges are therefore
   [Atomic.t] cells -- an increment stays a single lock-free RMW -- and
   the registry hashtable plus the multi-word histogram updates are
   guarded by one module mutex.  Registration is cold (handles are
   resolved once), and histograms are fed either from single-domain
   simulation loops or via [merge_buckets] at the end of a run, so the
   lock is uncontended in practice. *)

type counter = { c_name : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_value : float Atomic.t }

(* ------------------------------------------------------------------ *)
(* Histogram buckets                                                   *)
(* ------------------------------------------------------------------ *)

(* HDR-style bucket table over non-negative integers: values 0..63 get
   one bucket each (exact), and every power-of-two range above that is
   split into 32 sub-buckets, so the relative quantization error beyond
   63 is at most 1/32 (~3.1%).  Percentile extraction walks the table by
   exact rank, which is what the chip/cluster simulations use for
   p99/p999 tail latency: observation is a pair of int increments (no
   allocation), and the table is small enough (1888 ints) to preallocate
   per histogram.

   The same bucket mapping is exposed standalone ([bucket_index],
   [bucket_value], [bucket_count]) so hot loops that cannot afford even
   a float box can accumulate into their own [int array] and merge it
   into a registered histogram afterwards ([merge_buckets]). *)

let sub_bits = 5
let subs = 1 lsl sub_bits (* sub-buckets per power-of-two range *)
let linear = 2 * subs (* values below this are their own bucket *)
let bucket_count = linear + ((62 - sub_bits - 1) * subs)

(* index of the highest set bit; [v] must be > 0 *)
let msb v =
  let rec go v i = if v <= 1 then i else go (v lsr 1) (i + 1) in
  go v 0

let bucket_index v =
  if v < linear then if v < 0 then 0 else v
  else
    let h = msb v in
    let h = min h 61 in
    let sub = (v lsr (h - sub_bits)) land (subs - 1) in
    linear + (((h - sub_bits - 1) * subs) + sub)

(* lower bound of bucket [i]: the smallest value mapping to it *)
let bucket_value i =
  if i < linear then i
  else
    let r = i - linear in
    let h = sub_bits + 1 + (r / subs) in
    let sub = r mod subs in
    (subs + sub) lsl (h - sub_bits)

type histogram = {
  h_name : string;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  match f () with
  | v ->
      Mutex.unlock lock;
      v
  | exception e ->
      Mutex.unlock lock;
      raise e

let kind_clash name =
  invalid_arg
    (Printf.sprintf "Metrics: %S already registered as another kind" name)

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c
      | Some _ -> kind_clash name
      | None ->
          let c = { c_name = name; c_value = Atomic.make 0 } in
          Hashtbl.replace registry name (Counter c);
          c)

let incr c = Atomic.incr c.c_value
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let counter_value c = Atomic.get c.c_value

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Gauge g) -> g
      | Some _ -> kind_clash name
      | None ->
          let g = { g_name = name; g_value = Atomic.make 0. } in
          Hashtbl.replace registry name (Gauge g);
          g)

let set g v = Atomic.set g.g_value v
let gauge_value g = Atomic.get g.g_value

let histogram name =
  locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Histogram h) -> h
      | Some _ -> kind_clash name
      | None ->
          let h =
            { h_name = name; h_count = 0; h_sum = 0.; h_min = infinity;
              h_max = neg_infinity; h_buckets = Array.make bucket_count 0 }
          in
          Hashtbl.replace registry name (Histogram h);
          h)

let observe h v =
  locked (fun () ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v;
      let i = bucket_index (int_of_float v) in
      h.h_buckets.(i) <- h.h_buckets.(i) + 1)

(* Fold an externally accumulated bucket table (same [bucket_index]
   mapping) into [h].  sum/min/max are reconstructed from the bucket
   lower bounds, i.e. exact below [linear] and within the bucket
   quantization above it. *)
let merge_buckets h (buckets : int array) =
  locked (fun () ->
      let n = min (Array.length buckets) bucket_count in
      for i = 0 to n - 1 do
        let c = buckets.(i) in
        if c > 0 then begin
          let v = float_of_int (bucket_value i) in
          h.h_buckets.(i) <- h.h_buckets.(i) + c;
          h.h_count <- h.h_count + c;
          h.h_sum <- h.h_sum +. (v *. float_of_int c);
          if v < h.h_min then h.h_min <- v;
          if v > h.h_max then h.h_max <- v
        end
      done)

let histogram_count h = h.h_count
let histogram_sum h = h.h_sum

(* Nearest-rank percentile from the bucket table: the value reported is
   the lower bound of the bucket holding the rank-th smallest
   observation (exact for integer observations below [linear], within
   ~3.1%% above).  [q] in [0,1]; 0 observations yield 0. *)
let percentile h q =
  if h.h_count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (q *. float_of_int h.h_count)) in
      max 1 (min h.h_count r)
    in
    let acc = ref 0 and i = ref 0 and res = ref 0 in
    (try
       while true do
         acc := !acc + h.h_buckets.(!i);
         if !acc >= rank then begin
           res := bucket_value !i;
           raise Exit
         end;
         i := !i + 1
       done
     with Exit -> ());
    !res
  end

(* Exact count of observations whose bucket lower bound is >= [v];
   exact when [v] is a bucket boundary (any integer < [linear]). *)
let tail_count h v =
  let from = bucket_index v in
  let acc = ref 0 in
  for i = from to bucket_count - 1 do
    acc := !acc + h.h_buckets.(i)
  done;
  !acc

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ instrument ->
          match instrument with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.
          | Histogram h ->
              h.h_count <- 0;
              h.h_sum <- 0.;
              h.h_min <- infinity;
              h.h_max <- neg_infinity;
              Array.fill h.h_buckets 0 bucket_count 0)
        registry)

(* Every registered instrument as one text line, sorted by name:
     counter   lp.bb.nodes 128
     gauge     chip.bus.sram.stall 42
     histogram span.solve count=3 sum=1.2 min=0.1 max=0.8 *)
let dump () =
  let lines =
    locked (fun () ->
        Hashtbl.fold
          (fun name instrument acc ->
            let line =
              match instrument with
              | Counter c ->
                  Printf.sprintf "counter   %s %d" name (Atomic.get c.c_value)
              | Gauge g ->
                  Printf.sprintf "gauge     %s %g" name (Atomic.get g.g_value)
              | Histogram h ->
                  if h.h_count = 0 then
                    Printf.sprintf "histogram %s count=0" name
                  else
                    Printf.sprintf
                      "histogram %s count=%d sum=%g min=%g max=%g mean=%g" name
                      h.h_count h.h_sum h.h_min h.h_max
                      (h.h_sum /. float_of_int h.h_count)
            in
            line :: acc)
          registry [])
  in
  String.concat "\n" (List.sort String.compare lines)
