(* Monotonic clock: nanoseconds from an arbitrary fixed origin.

   Unlike [Unix.gettimeofday], this source never steps backwards (or
   forwards) when the system clock is adjusted, so it is safe to meter
   solver budgets and to timestamp trace events with it.  The origin is
   unspecified (typically system boot); only differences are
   meaningful. *)

external now_ns : unit -> (int64[@unboxed])
  = "nova_monotonic_now_ns_byte" "nova_monotonic_now_ns"
[@@noalloc]

(* Seconds as a float.  At nanosecond resolution a float keeps full
   precision for ~104 days of uptime, far beyond any solver run. *)
let now_s () = Int64.to_float (now_ns ()) /. 1e9
