(* Minimal JSON: a value type, a recursive-descent parser, a writer and
   accessors.

   This exists so the benchmark gate can read its checked-in baseline,
   the artifact cache and the compile service can persist/exchange
   structured data, and the tests can validate the trace exporter --
   all without adding a JSON dependency to the build.  It accepts
   standard JSON (RFC 8259); the only liberty taken is that numbers are
   always represented as OCaml floats. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_exn (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail "expected %C at offset %d" c !pos
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail "bad literal at offset %d" !pos
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | 'r' -> Buffer.add_char buf '\r'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let code =
                try int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                with _ -> fail "bad \\u escape at offset %d" !pos
              in
              pos := !pos + 4;
              (* encode the code point as UTF-8 (surrogates untreated:
                 the trace exporter never emits them) *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf
                  (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
          | c -> fail "bad escape %C" c);
          advance ();
          go ()
      | c ->
          Buffer.add_char buf c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail "bad number %S at offset %d" text start
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((key, v) :: acc)
            | _ -> fail "expected ',' or '}' at offset %d" !pos
          in
          Obj (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']' at offset %d" !pos
          in
          Arr (elements [])
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage at offset %d" !pos;
  v

let parse s =
  match parse_exn s with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---------------- writer ---------------- *)

let buf_escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* JSON has no NaN/Infinity literals; clamp so the output always parses
   (mirroring the trace exporter's convention). *)
let buf_num buf f =
  if Float.is_nan f then Buffer.add_string buf "null"
  else if f = infinity then Buffer.add_string buf "1e308"
  else if f = neg_infinity then Buffer.add_string buf "-1e308"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec buf_value buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f -> buf_num buf f
  | Str s ->
      Buffer.add_char buf '"';
      buf_escape buf s;
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          buf_value buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          buf_escape buf k;
          Buffer.add_string buf "\":";
          buf_value buf v)
        fields;
      Buffer.add_char buf '}'

(* [encode] rather than [to_string]: the latter is the [Str] accessor
   below, kept under its historical name. *)
let encode (v : t) : string =
  let buf = Buffer.create 256 in
  buf_value buf v;
  Buffer.contents buf

(* ---------------- accessors ---------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None
let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None
