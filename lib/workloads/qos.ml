(* Token-bucket QoS shaper in Nova:
     - per-flow state in SRAM, two words per flow: remaining tokens and
       packed conform<<16|exceed counters; 64 flows selected by hashing
       the 5-tuple (the hardware hash unit, as in NAT's table lookup);
     - refill-then-spend: tokens grow by RATE per packet and saturate at
       BURST; a conforming packet spends its length and is remarked to
       the assured-forwarding DSCP, an exceeding packet keeps its tokens
       and is remarked to best-effort;
     - the ToS rewrite changes the header, so the header checksum is
       recomputed and both words patched with aligned pair stores;
     - flow state is read-modify-write shared across contexts: the race
       lint whitelists it as a shared-write region. *)

(* memory map *)
let in_base = 0x100 (* SDRAM byte address of the packet *)
let flow_base = 0x7000 (* SRAM byte address of the flow-state table *)
let n_flows = 64
let rate = 500 (* tokens (bytes) refilled per packet arrival *)
let burst = 3000 (* bucket depth in bytes *)
let tos_conform = 0x28 (* AF11 *)
let tos_exceed = 0x08 (* best effort, CS1 *)

let source =
  Printf.sprintf
    {|
// Token-bucket shaper: hash to a flow, refill, spend, remark DSCP.

layout ipv4_hdr = {
  vi : overlay { whole : 8 | parts : { version : 4, ihl : 4 } },
  tos : 8, total_length : 16,
  ident : 16, flags_frag : 16,
  ttl : 8, protocol : 8, hdr_csum : 16,
  src : 32, dst : 32
};

const IN = %d;
const FLOW = %d;
const RATE = %d;
const BURST = %d;
const TOS_OK = %d;
const TOS_HOT = %d;

fun halves (w : word) : word { (w >> 16) + (w & 0xFFFF) }

fun fold16 (x : word) : word {
  let y = (x & 0xFFFF) + (x >> 16);
  (y & 0xFFFF) + (y >> 16)
}

fun main () : word {
  try {
    let (h0, h1, h2, h3, h4, p0) = sdram(IN, 6);
    let ip = unpack[ipv4_hdr]((h0, h1, h2, h3, h4));
    if (ip.vi.whole != 0x45) { raise Punt [why = ip.vi.whole]; }
    let flow = hash(ip.src ^ ip.dst ^ ip.protocol) & 0x3F;
    let fa = FLOW + (flow << 3);
    let tok0 = sram(fa, 1);
    let st0 = sram(fa + 4, 1);
    let len = ip.total_length;
    // refill, saturating at the bucket depth
    let t1 = tok0 + RATE;
    let t2 = if (BURST <u t1) { BURST } else { t1 };
    let ok = t2 >=u len;
    let tokn = if (ok) { t2 - len } else { t2 };
    let stn = if (ok) { st0 + 0x10000 } else { st0 + 1 };
    let tos = if (ok) { TOS_OK } else { TOS_HOT };
    let mark = if (ok) { 1 } else { 0 };
    sram(fa) <- tokn;
    sram(fa + 4) <- stn;
    // remark the ToS byte and recompute the header checksum
    let h0p = (h0 & 0xFF00FFFF) | (tos << 16);
    let s = halves(h0p) + halves(h1) + halves(h2 & 0xFFFF0000)
          + halves(h3) + halves(h4);
    let ck = (~(fold16(s))) & 0xFFFF;
    sdram(IN) <- (h0p, h1);
    sdram(IN + 8) <- ((h2 & 0xFFFF0000) | ck, h3);
    (flow << 24) | (mark << 16) | (tokn & 0xFFFF)
  }
  handle Punt [why : word] { 0xE0000000 | why }
}
|}
    in_base flow_base rate burst tos_conform tos_exceed

(* ------------------------------------------------------------------ *)
(* Flow table, packet builder and reference                            *)
(* ------------------------------------------------------------------ *)

let mask = 0xFFFFFFFF

let halves w = ((w lsr 16) land 0xFFFF) + (w land 0xFFFF)

let fold16 x =
  let y = (x land 0xFFFF) + (x lsr 16) in
  ((y land 0xFFFF) + (y lsr 16)) land mask

(* initial token fill: spread around the packet-size range so both the
   conform and exceed paths are exercised from the first packet *)
let initial_tokens flow = (flow * 137) + 256

(* vary the flow with the packet size *)
let endpoints =
  [|
    (0x0A010101, 0x0B020202);
    (0x0A010102, 0x0B020203);
    (0xC0A80001, 0x0A141E28);
    (0x11223344, 0x55667788);
    (0x0A0A0A0A, 0x0B0B0B0B);
    (0xDE00AD00, 0xBE00EF00);
    (0x01020304, 0x05060708);
    (0xCAFE0001, 0xF00D0002);
  |]

let build_packet ~payload_len =
  let n = 5 + (payload_len / 4) in
  let words = Array.make n 0 in
  let total = 20 + payload_len in
  let src, dst = endpoints.(payload_len / 4 mod Array.length endpoints) in
  words.(0) <- (4 lsl 28) lor (5 lsl 24) lor total;
  words.(1) <- (0xAB40 lsl 16) lor 0x4000;
  words.(2) <- (64 lsl 24) lor (17 lsl 16) lor 0x9E11;
  words.(3) <- src;
  words.(4) <- dst;
  let state = ref 0x70CEB0C0 in
  for i = 5 to n - 1 do
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFFFFF;
    words.(i) <- !state land mask
  done;
  words

(* Transform an SDRAM image in place given the current flow table;
   mirrors the Nova program and updates [flow_state] the same way the
   program updates SRAM.  Returns the result word. *)
let reference_transform_with (flow_state : int array) (sdram : int array)
    ~payload_len:_ =
  let inw = in_base / 4 in
  let h0 = sdram.(inw) and h1 = sdram.(inw + 1) in
  let h2 = sdram.(inw + 2) in
  let h3 = sdram.(inw + 3) and h4 = sdram.(inw + 4) in
  let version_ihl = h0 lsr 24 in
  if version_ihl <> 0x45 then 0xE0000000 lor version_ihl
  else begin
    let proto = (h2 lsr 16) land 0xFF in
    let flow = Ixp.Memory.hash (h3 lxor h4 lxor proto) land 0x3F in
    let tok0 = flow_state.(2 * flow) in
    let st0 = flow_state.((2 * flow) + 1) in
    let len = h0 land 0xFFFF in
    let t1 = tok0 + rate in
    let t2 = if t1 > burst then burst else t1 in
    let ok = t2 >= len in
    let tokn = if ok then t2 - len else t2 in
    let stn = (if ok then st0 + 0x10000 else st0 + 1) land mask in
    let tos = if ok then tos_conform else tos_exceed in
    let mark = if ok then 1 else 0 in
    flow_state.(2 * flow) <- tokn;
    flow_state.((2 * flow) + 1) <- stn;
    let h0p = h0 land 0xFF00FFFF lor (tos lsl 16) in
    let s =
      halves h0p + halves h1
      + halves (h2 land 0xFFFF0000)
      + halves h3 + halves h4
    in
    let ck = lnot (fold16 s) land 0xFFFF in
    sdram.(inw) <- h0p;
    sdram.(inw + 2) <- (h2 land 0xFFFF0000) lor ck;
    (flow lsl 24) lor (mark lsl 16) lor (tokn land 0xFFFF)
  end

let fresh_flow_state () =
  Array.init (2 * n_flows) (fun i ->
      if i mod 2 = 0 then initial_tokens (i / 2) else 0)

let reference_transform sdram ~payload_len =
  reference_transform_with (fresh_flow_state ()) sdram ~payload_len

let init_tables load_sram =
  Array.iteri (fun i v -> load_sram ((flow_base / 4) + i) v) (fresh_flow_state ())

let init_payload load_sdram ~payload_len =
  let words = build_packet ~payload_len in
  Array.iteri (fun i v -> load_sdram ((in_base / 4) + i) v) words;
  words

let expected ~payload_len ~sdram_words =
  let image = Array.make sdram_words 0 in
  let packet = build_packet ~payload_len in
  Array.blit packet 0 image (in_base / 4) (Array.length packet);
  let ret = reference_transform image ~payload_len in
  (image, ret)

(* Whitelist regions for `novac lint` (see [Aes.lint_regions]). *)
let lint_regions =
  let open Analysis.Race in
  [
    region ~name:"qos-flow-state" ~space:Ixp.Insn.Sram ~base:flow_base
      ~words:(2 * n_flows) Shared_write;
  ]
