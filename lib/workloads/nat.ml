(* IPv6 -> IPv4 network address translation in Nova (paper §11, citing
   Grosse & Lakshman's Bell Labs work):
     - the IPv6 header is parsed with the paper's own ipv6_header layout,
       including the verpri overlay from §3.2;
     - the IPv4 header is built with pack[];
     - the packet start must move (different header sizes), so the
       payload is copied with a carried-word loop that fights the SDRAM
       8-byte alignment rules;
     - the IPv4 header checksum is computed, and the TCP checksum is
       adjusted for the pseudo-header change;
     - non-v6 packets and expired hop limits punt to the slow path
       through exceptions. *)

let in_base = 0x100 (* SDRAM byte address of the inbound packet *)
let out_base = 0x40 (* outbound packet *)
let nat_table = 0x4000 (* SRAM: 256 mapped IPv4 source addresses *)

let source =
  Printf.sprintf
    {|
// IPv6 -> IPv4 NAT fast path.

layout ipv6_address = { a1 : 32, a2 : 32, a3 : 32, a4 : 32 };

layout ipv6_header = {
  verpri : overlay { whole : 8 | parts : { version : 4, priority : 4 } },
  flow_label : 24,
  payload_length : 16,
  next_header : 8,
  hop_limit : 8,
  src_address : ipv6_address,
  dst_address : ipv6_address
};

layout ipv4_header = {
  version : 4, ihl : 4, tos : 8, total_length : 16,
  ident : 16, flags : 3, frag_offset : 13,
  ttl : 8, protocol : 8, checksum : 16,
  src : 32, dst : 32
};

const IN  = %d;
const OUT = %d;
const NATTBL = %d;

fun halves (w : word) : word { (w >> 16) + (w & 0xFFFF) }

fun fold16 (x : word) : word {
  let y = (x & 0xFFFF) + (x >> 16);
  (y & 0xFFFF) + (y >> 16)
}

fun main () : word {
  try {
    // pull in the 40-byte IPv6 header and the first payload chunk
    let (h0, h1, h2, h3, h4, h5, h6, h7) = sdram(IN, 8);
    let (h8, h9) = sdram(IN + 32, 2);
    let u = unpack[ipv6_header]((h0, h1, h2, h3, h4, h5, h6, h7, h8, h9));
    if (u.verpri.parts.version != 6) { raise Punt [code = 1]; }
    let ttl = u.hop_limit - 1;
    if (ttl == 0) { raise Punt [code = 2]; }
    // the copy loop is driven by the header's own payload length
    let payload_len = u.payload_length;
    // translate addresses: source through the NAT table, destination
    // embedded in the low 32 bits of the v6 address
    let idx = hash(u.src_address.a4) & 0xFF;
    let v4src = sram(NATTBL + (idx << 2), 1);
    let v4dst = u.dst_address.a4;
    let hdr = pack[ipv4_header] [
      version = 4, ihl = 5, tos = 0,
      total_length = u.payload_length + 20,
      ident = u.flow_label & 0xFFFF,
      flags = 2, frag_offset = 0,
      ttl = ttl, protocol = u.next_header, checksum = 0,
      src = v4src, dst = v4dst ];
    // IPv4 header checksum over the five words (checksum field zero)
    let sum = halves(hdr.0) + halves(hdr.1) + halves(hdr.2)
            + halves(hdr.3) + halves(hdr.4);
    let ck = (~(fold16(sum))) & 0xFFFF;
    let w2 = (hdr.2 & 0xFFFF0000) | ck;
    // move the packet: header plus first three payload words fill the
    // first aligned 8-word group at OUT
    let (p0, p1, p2, p3, p4, p5, p6, p7) = sdram(IN + 40, 8);
    sdram(OUT) <- (hdr.0, hdr.1, w2, hdr.3, hdr.4, p0, p1, p2);
    // carried copy: output groups lag the input by five words
    var c3 = p3; var c4 = p4; var c5 = p5; var c6 = p6; var c7 = p7;
    var src = IN + 72;
    var dst = OUT + 32;
    while (src <u IN + 40 + payload_len) {
      let (q0, q1, q2, q3, q4, q5, q6, q7) = sdram(src);
      sdram(dst) <- (c3, c4, c5, c6, c7, q0, q1, q2);
      c3 := q3; c4 := q4; c5 := q5; c6 := q6; c7 := q7;
      src := src + 32;
      dst := dst + 32;
    }
    sdram(dst) <- (c3, c4, c5, c6, c7, 0, 0, 0);
    // TCP checksum adjustment for the pseudo-header change: the old
    // checksum sits in the high half of payload word 4
    let psum6 = fold16(halves(u.src_address.a1) + halves(u.src_address.a2)
                     + halves(u.src_address.a3) + halves(u.src_address.a4)
                     + halves(u.dst_address.a1) + halves(u.dst_address.a2)
                     + halves(u.dst_address.a3) + halves(u.dst_address.a4));
    let psum4 = fold16(halves(v4src) + halves(v4dst));
    let oldck = (p4 >> 16) & 0xFFFF;
    let newck = fold16(oldck + psum6 + (0xFFFF ^ psum4));
    // patch the copied packet (read-modify-write an aligned pair)
    let (m0, m1) = sdram(OUT + 32, 2);
    sdram(OUT + 32) <- (m0, (m1 & 0xFFFF) | (newck << 16));
    ck
  }
  handle Punt [code : word] { 0xF0000000 | code }
}
|}
    in_base out_base nat_table

(* ------------------------------------------------------------------ *)
(* Reference implementation (mirrors the Nova program word for word)   *)
(* ------------------------------------------------------------------ *)

let mask = 0xFFFFFFFF

let halves w = ((w lsr 16) land 0xFFFF) + (w land 0xFFFF)

let fold16 x =
  let y = (x land 0xFFFF) + (x lsr 16) in
  ((y land 0xFFFF) + (y lsr 16)) land mask

(* The NAT mapping table the harness loads into SRAM. *)
let table = Array.init 256 (fun i -> 0x0A000000 lor (i lsl 8) lor 0x01)

(* Transform an SDRAM image in place; returns the program's result
   word. *)
let reference_transform (sdram : int array) ~payload_len =
  let w i = sdram.(i) in
  let inw = in_base / 4 and outw = out_base / 4 in
  let h = Array.init 10 (fun i -> w (inw + i)) in
  let version = h.(0) lsr 28 in
  if version <> 6 then 0xF0000001
  else begin
    let hop_limit = h.(1) land 0xFF in
    let ttl = hop_limit - 1 in
    if ttl = 0 then 0xF0000002
    else begin
      let payload_length = (h.(1) lsr 16) land 0xFFFF in
      let next_header = (h.(1) lsr 8) land 0xFF in
      let flow_label = h.(0) land 0xFFFFFF in
      let src4 = h.(5) (* src_address.a4 *) in
      let idx = Ixp.Memory.hash src4 land 0xFF in
      let v4src = table.(idx) in
      let v4dst = h.(9) in
      (* pack ipv4_header *)
      let hdr0 =
        (4 lsl 28) lor (5 lsl 24) lor ((payload_length + 20) land 0xFFFF)
      in
      let hdr1 = ((flow_label land 0xFFFF) lsl 16) lor (2 lsl 13) in
      let hdr2 = (ttl lsl 24) lor (next_header lsl 16) in
      let hdr3 = v4src and hdr4 = v4dst in
      let sum =
        halves hdr0 + halves hdr1 + halves hdr2 + halves hdr3 + halves hdr4
      in
      let ck = lnot (fold16 sum) land 0xFFFF in
      let w2 = hdr2 lor ck in
      let p = Array.init 8 (fun i -> w (inw + 10 + i)) in
      let set i v = sdram.(i) <- v land mask in
      set outw hdr0;
      set (outw + 1) hdr1;
      set (outw + 2) w2;
      set (outw + 3) hdr3;
      set (outw + 4) hdr4;
      set (outw + 5) p.(0);
      set (outw + 6) p.(1);
      set (outw + 7) p.(2);
      let c = Array.sub p 3 5 in
      let src = ref (in_base + 72) and dst = ref (out_base + 32) in
      while !src < in_base + 40 + payload_len do
        let q = Array.init 8 (fun i -> w ((!src / 4) + i)) in
        let d = !dst / 4 in
        Array.iteri (fun i v -> set (d + i) v) [| c.(0); c.(1); c.(2); c.(3); c.(4); q.(0); q.(1); q.(2) |];
        Array.blit q 3 c 0 5;
        src := !src + 32;
        dst := !dst + 32
      done;
      let d = !dst / 4 in
      Array.iteri (fun i v -> set (d + i) v)
        [| c.(0); c.(1); c.(2); c.(3); c.(4); 0; 0; 0 |];
      let psum6 =
        fold16
          (halves h.(2) + halves h.(3) + halves h.(4) + halves h.(5)
         + halves h.(6) + halves h.(7) + halves h.(8) + halves h.(9))
      in
      let psum4 = fold16 (halves v4src + halves v4dst) in
      let oldck = (p.(4) lsr 16) land 0xFFFF in
      let newck = fold16 (oldck + psum6 + (0xFFFF lxor psum4)) in
      let m1 = w (outw + 9) in
      set (outw + 9) ((m1 land 0xFFFF) lor (newck lsl 16));
      ck
    end
  end

(* Build a deterministic inbound packet image. *)
let build_packet ~payload_len =
  let n = 10 + (payload_len / 4) in
  let words = Array.make n 0 in
  (* IPv6 header: version 6, priority 2, flow label, lengths *)
  words.(0) <- (6 lsl 28) lor (2 lsl 24) lor 0xABCDE;
  words.(1) <- (payload_len lsl 16) lor (6 lsl 8) lor 0x40 (* TCP, hop 64 *);
  for i = 0 to 3 do
    words.(2 + i) <- 0x20010DB8 + (i * 0x01010101)
  done;
  for i = 0 to 3 do
    words.(6 + i) <- 0xFE800000 + (i * 0x00010023)
  done;
  let state = ref 0x5EEDF00D in
  for i = 10 to n - 1 do
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFFFFF;
    words.(i) <- !state land mask
  done;
  words

let init_tables load_sram =
  Array.iteri (fun i v -> load_sram ((nat_table / 4) + i) v) table

let init_payload load_sdram ~payload_len =
  let words = build_packet ~payload_len in
  Array.iteri (fun i v -> load_sdram ((in_base / 4) + i) v) words;
  words

(* Expected output SDRAM image and return value. *)
let expected ~payload_len ~sdram_words =
  let image = Array.make sdram_words 0 in
  let packet = build_packet ~payload_len in
  Array.blit packet 0 image (in_base / 4) (Array.length packet);
  let ret = reference_transform image ~payload_len in
  (image, ret)

(* Whitelist regions for `novac lint` (see [Aes.lint_regions]). *)
let lint_regions =
  let open Analysis.Race in
  [
    region ~name:"nat-table" ~space:Ixp.Insn.Sram ~base:nat_table ~words:256
      Read_only;
  ]
