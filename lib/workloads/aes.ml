(* AES-128 in Nova, following the paper's description (§11):
     - encryption state kept in registers throughout;
     - tables (four T-tables + S-box) in SRAM;
     - key expansion statically computed (the harness preloads the round
       keys into SRAM);
     - ethernet/IP/TCP headers processed ahead of the payload: the
       plaintext is read quad-word *misaligned* from SDRAM (the paper
       shifts headers) and the ciphertext is written quad-word aligned;
     - the TCP checksum over the ciphertext is maintained and patched
       back into the header;
     - non-IPv4/non-TCP/partial-block packets punt to the slow path;
     - no CBC: data a whole number of 16-byte blocks. *)

(* SRAM memory map (byte addresses) *)
let t0_base = 0x1000
let t1_base = 0x1400
let t2_base = 0x1800
let t3_base = 0x1C00
let sbox_base = 0x2000
let rk_base = 0x2400
let csum_addr = 0x50
let flow_addr = 0x60 (* packed flow-accounting record, 4 words *)

(* SDRAM: IPv4+TCP headers at [hdr_base]; plaintext blocks start at
   [pkt_base + 4] (misaligned on purpose); ciphertext written aligned at
   [ct_base]. *)
let hdr_base = 0xC0
let pkt_base = 0x100
let ct_base = 0x800

let source =
  Printf.sprintf
    {|
// AES-128 fast path for the IXP micro-engine.
// Tables and round keys live in SRAM; the state never leaves registers.

layout ipv4_hdr = {
  vi : overlay { whole : 8 | parts : { version : 4, ihl : 4 } },
  tos : 8, total_length : 16,
  ident : 16, flags_frag : 16,
  ttl : 8, protocol : 8, hdr_csum : 16,
  src : 32, dst : 32
};

layout tcp_hdr = {
  sport : 16, dport : 16,
  seq : 32,
  ack : 32,
  data_off : 4, tcp_flags : 12, window : 16,
  tcp_csum : 16, urgent : 16
};

// flow-accounting record logged to SRAM for the slow path
layout flow_record = {
  fsrc : 32, fdst : 32, ports : 32, bytes : 16, fproto : 8, fstatus : 8
};

const T0   = %d;
const T1   = %d;
const T2   = %d;
const T3   = %d;
const SBOX = %d;
const RK   = %d;
const HDR  = %d;   // IPv4 + TCP headers
const PKT  = %d;   // plaintext at PKT+4: quad-word misaligned
const CT   = %d;   // ciphertext written quad-word aligned
const CSUM = %d;
const FLOW = %d;

// One T-table lookup: tables are word-indexed by a byte.
fun t_lookup (base : word, b : word) : word {
  sram(base + (b << 2), 1)
}

// One main-round column: out = T0[b0(a)] ^ T1[b1(b)] ^ T2[b2(c)] ^ T3[b3(d)] ^ rk
fun round_column (a : word, b : word, c : word, d : word, rk : word) : word {
  let x0 = t_lookup(T0, (a >> 24) & 0xFF);
  let x1 = t_lookup(T1, (b >> 16) & 0xFF);
  let x2 = t_lookup(T2, (c >> 8) & 0xFF);
  let x3 = t_lookup(T3, d & 0xFF);
  x0 ^ x1 ^ x2 ^ x3 ^ rk
}

// Final round column: SubBytes + ShiftRows, no MixColumns.
fun final_column (a : word, b : word, c : word, d : word, rk : word) : word {
  let x0 = t_lookup(SBOX, (a >> 24) & 0xFF);
  let x1 = t_lookup(SBOX, (b >> 16) & 0xFF);
  let x2 = t_lookup(SBOX, (c >> 8) & 0xFF);
  let x3 = t_lookup(SBOX, d & 0xFF);
  ((x0 << 24) | (x1 << 16) | (x2 << 8) | x3) ^ rk
}

fun main () : word {
  try {
    // parse the headers in front of the payload
    let (i0, i1, i2, i3, i4, t0) = sdram(HDR, 6);
    let (t1, t2, t3, t4) = sdram(HDR + 24, 4);
    let ip = unpack[ipv4_hdr]((i0, i1, i2, i3, i4));
    let tcp = unpack[tcp_hdr]((t0, t1, t2, t3, t4));
    if (ip.vi.parts.version != 4) { raise Punt [code = 1]; }
    if (ip.protocol != 6) { raise Punt [code = 2]; }
    let payload_len = ip.total_length - 40;
    if ((payload_len & 15) != 0) { raise Punt [code = 3]; }
    var off = 0;
    var csum = 0;
    while (off <u payload_len) {
      // Misaligned plaintext: the block at PKT+4+off straddles the
      // aligned 6-word window starting at PKT+off.
      let (skip0, p0, p1, p2, p3, skip1) = sdram(PKT + off, 6);
      let (k0, k1, k2, k3) = sram(RK, 4);
      var s0 = p0 ^ k0;
      var s1 = p1 ^ k1;
      var s2 = p2 ^ k2;
      var s3 = p3 ^ k3;
      var r = 1;
      while (r < 10) {
        let (rk0, rk1, rk2, rk3) = sram(RK + (r << 4), 4);
        let n0 = round_column(s0, s1, s2, s3, rk0);
        let n1 = round_column(s1, s2, s3, s0, rk1);
        let n2 = round_column(s2, s3, s0, s1, rk2);
        let n3 = round_column(s3, s0, s1, s2, rk3);
        s0 := n0; s1 := n1; s2 := n2; s3 := n3;
        r := r + 1;
      }
      let (f0, f1, f2, f3) = sram(RK + 160, 4);
      let c0 = final_column(s0, s1, s2, s3, f0);
      let c1 = final_column(s1, s2, s3, s0, f1);
      let c2 = final_column(s2, s3, s0, s1, f2);
      let c3 = final_column(s3, s0, s1, s2, f3);
      // ciphertext goes out quad-word aligned
      sdram(CT + off) <- (c0, c1, c2, c3);
      // maintain the TCP checksum over the ciphertext
      csum := csum + (c0 >> 16) + (c0 & 0xFFFF);
      csum := csum + (c1 >> 16) + (c1 & 0xFFFF);
      csum := csum + (c2 >> 16) + (c2 & 0xFFFF);
      csum := csum + (c3 >> 16) + (c3 & 0xFFFF);
      off := off + 16;
    }
    // fold to 16 bits (twice covers all carries)
    csum := (csum & 0xFFFF) + (csum >> 16);
    csum := (csum & 0xFFFF) + (csum >> 16);
    sram(CSUM) <- csum;
    // log the flow record for the accounting slow path
    let record = pack[flow_record] [
      fsrc = ip.src, fdst = ip.dst,
      ports = (tcp.sport << 16) | tcp.dport,
      bytes = payload_len, fproto = ip.protocol, fstatus = 1 ];
    sram(FLOW) <- record;
    // patch the refreshed TCP checksum back into the header
    let (m0, m1) = sdram(HDR + 32, 2);
    sdram(HDR + 32) <- (m0, (csum << 16) | (m1 & 0xFFFF));
    csum
  }
  handle Punt [code : word] { 0xF0000000 | code }
}
|}
    t0_base t1_base t2_base t3_base sbox_base rk_base hdr_base pkt_base
    ct_base csum_addr flow_addr

(* The statically-expanded key used by benchmarks and tests. *)
let demo_key = [| 0x2B7E1516; 0x28AED2A6; 0xABF71588; 0x09CF4F3C |]

let round_keys = lazy (Aes_ref.expand_key demo_key)

(* Deterministic pseudo-random payload words. *)
let payload_words n =
  let out = Array.make n 0 in
  let state = ref 0x12345678 in
  for i = 0 to n - 1 do
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFFFFF;
    out.(i) <- !state land 0xFFFFFFFF
  done;
  out

(* The synthetic IPv4+TCP header the harness puts in front of the
   payload. *)
let header_words ~payload_len =
  let total = 40 + payload_len in
  [|
    (4 lsl 28) lor (5 lsl 24) lor total; (* ver/ihl/tos/len *)
    (0x1337 lsl 16) lor 0x4000; (* ident, DF *)
    (64 lsl 24) lor (6 lsl 16); (* ttl, TCP, csum=0 *)
    0xC0A80001; (* src 192.168.0.1 *)
    0x0A000002; (* dst 10.0.0.2 *)
    (0x1F90 lsl 16) lor 0x01BB; (* ports 8080 -> 443 *)
    0x11223344; (* seq *)
    0x55667788; (* ack *)
    (5 lsl 28) lor (0x018 lsl 16) lor 0xFFFF; (* data off, flags, window *)
    0xABCD0000; (* old checksum, urgent 0 *)
  |]

let init_tables load_sram =
  let t k = Aes_ref.t_table k in
  Array.iteri (fun i w -> load_sram ((t0_base / 4) + i) w) (t 0);
  Array.iteri (fun i w -> load_sram ((t1_base / 4) + i) w) (t 1);
  Array.iteri (fun i w -> load_sram ((t2_base / 4) + i) w) (t 2);
  Array.iteri (fun i w -> load_sram ((t3_base / 4) + i) w) (t 3);
  Array.iteri (fun i w -> load_sram ((sbox_base / 4) + i) w) (Lazy.force Aes_ref.sbox_words);
  Array.iteri (fun i w -> load_sram ((rk_base / 4) + i) w) (Lazy.force round_keys)

let init_payload load_sdram ~payload_len =
  Array.iteri
    (fun i w -> load_sdram ((hdr_base / 4) + i) w)
    (header_words ~payload_len);
  let words = payload_words (payload_len / 4) in
  Array.iteri (fun i w -> load_sdram ((pkt_base / 4) + 1 + i) w) words;
  words

(* Expected results computed by the reference implementation. *)
let expected ~payload_len =
  let words = payload_words (payload_len / 4) in
  let ct = Aes_ref.encrypt_words (Lazy.force round_keys) words in
  let csum = Aes_ref.ones_complement_sum ct in
  (ct, csum)

(* Whitelist regions for `novac lint`: the tables and expanded key are
   written by the control processor before the engines start and only
   read by engine code; the checksum word and flow-accounting record are
   deliberately shared slow-path outputs. *)
let lint_regions =
  let open Analysis.Race in
  [
    region ~name:"aes-t0" ~space:Ixp.Insn.Sram ~base:t0_base ~words:256 Read_only;
    region ~name:"aes-t1" ~space:Ixp.Insn.Sram ~base:t1_base ~words:256 Read_only;
    region ~name:"aes-t2" ~space:Ixp.Insn.Sram ~base:t2_base ~words:256 Read_only;
    region ~name:"aes-t3" ~space:Ixp.Insn.Sram ~base:t3_base ~words:256 Read_only;
    region ~name:"aes-sbox" ~space:Ixp.Insn.Sram ~base:sbox_base ~words:256
      Read_only;
    region ~name:"aes-round-keys" ~space:Ixp.Insn.Sram ~base:rk_base ~words:44
      Read_only;
    region ~name:"aes-csum" ~space:Ixp.Insn.Sram ~base:csum_addr ~words:1
      Shared_write;
    region ~name:"aes-flow-record" ~space:Ixp.Insn.Sram ~base:flow_addr
      ~words:4 Shared_write;
  ]
