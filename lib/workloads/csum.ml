(* IPv4 + UDP checksum offload in Nova:
     - the IPv4 header checksum is recomputed over the five header words
       with the checksum field zeroed;
     - the UDP checksum covers the pseudo-header (src, dst, protocol,
       UDP length), the UDP header and the payload; the datagram starts
       on a 4-byte but not 8-byte boundary, so the pair loop runs over
       aligned SDRAM pairs from the length word onward and the final
       odd word is picked up by one trailing pair read (its second word
       is buffer padding and is excluded from the sum);
     - both checksums are patched into the packet with read-modify-write
       pair stores (a zero UDP checksum transmits as 0xFFFF per RFC 768);
     - non-v4 or non-UDP packets and ragged lengths punt. *)

(* memory map *)
let in_base = 0x100 (* SDRAM byte address of the packet *)
let csum_addr = 0x5C (* SRAM: ipck<<16 | udpck *)

let source =
  Printf.sprintf
    {|
// IPv4/UDP checksum offload.

layout ipv4_hdr = {
  vi : overlay { whole : 8 | parts : { version : 4, ihl : 4 } },
  tos : 8, total_length : 16,
  ident : 16, flags_frag : 16,
  ttl : 8, protocol : 8, hdr_csum : 16,
  src : 32, dst : 32
};

const IN = %d;
const CSUMOUT = %d;

fun halves (w : word) : word { (w >> 16) + (w & 0xFFFF) }

fun fold16 (x : word) : word {
  let y = (x & 0xFFFF) + (x >> 16);
  (y & 0xFFFF) + (y >> 16)
}

fun main () : word {
  try {
    let (h0, h1, h2, h3, h4, u0) = sdram(IN, 6);
    let ip = unpack[ipv4_hdr]((h0, h1, h2, h3, h4));
    if (ip.vi.whole != 0x45) { raise Punt [why = ip.vi.whole]; }
    if (ip.protocol != 17) { raise Punt [why = ip.protocol]; }
    let paylen = ip.total_length - 28;
    if ((paylen & 7) != 0) { raise BadLen [len = paylen]; }
    // IPv4 header checksum over the five words, checksum field zeroed
    let s = halves(h0) + halves(h1) + halves(h2 & 0xFFFF0000)
          + halves(h3) + halves(h4);
    let ipck = (~(fold16(s))) & 0xFFFF;
    // UDP: pseudo-header, then aligned pairs from the length word on;
    // the trailing odd word rides in one last pair read whose second
    // word is buffer padding (excluded from the sum)
    let udplen = paylen + 8;
    var sum = halves(h3) + halves(h4) + 17 + udplen + halves(u0);
    var off = 0;
    while (off <u paylen) {
      let (a, b) = sdram(IN + 24 + off);
      sum := sum + halves(a) + halves(b);
      off := off + 8;
    }
    let (tail, pad) = sdram(IN + 24 + paylen);
    sum := sum + halves(tail);
    let f = fold16(fold16(sum));
    let u = (~f) & 0xFFFF;
    let udpck = if (u == 0) { 0xFFFF } else { u };
    // patch both checksums with read-modify-write pair stores
    sdram(IN + 8) <- ((h2 & 0xFFFF0000) | ipck, h3);
    let (v1, q0) = sdram(IN + 24, 2);
    sdram(IN + 24) <- ((v1 & 0xFFFF0000) | udpck, q0);
    sram(CSUMOUT) <- (ipck << 16) | udpck;
    (ipck << 16) | udpck
  }
  handle Punt [why : word] { 0xE0000000 | why }
  handle BadLen [len : word] { 0xD0000000 | len }
}
|}
    in_base csum_addr

(* ------------------------------------------------------------------ *)
(* Packet builder and reference                                        *)
(* ------------------------------------------------------------------ *)

let mask = 0xFFFFFFFF

let halves w = ((w lsr 16) land 0xFFFF) + (w land 0xFFFF)

let fold16 x =
  let y = (x land 0xFFFF) + (x lsr 16) in
  ((y land 0xFFFF) + (y lsr 16)) land mask

(* [payload_len] counts the bytes after the IPv4 header: the 8-byte UDP
   header plus the UDP payload; it is a multiple of 8 (size_align). *)
let build_packet ~payload_len =
  let n = 5 + (payload_len / 4) in
  let words = Array.make n 0 in
  let total = 20 + payload_len in
  words.(0) <- (4 lsl 28) lor (5 lsl 24) lor total;
  words.(1) <- (0x51AB lsl 16) lor 0x4000;
  words.(2) <- (64 lsl 24) lor (17 lsl 16) (* csum field zero: offloaded *);
  words.(3) <- 0xC0A80001;
  words.(4) <- 0x0A0A0A0A + (payload_len land 0xFF);
  words.(5) <- (0xC350 lsl 16) lor 0x0035 (* sport 50000, dport 53 *);
  words.(6) <- payload_len lsl 16 (* UDP length, checksum zero *);
  let state = ref 0x0C5EC5EC in
  for i = 7 to n - 1 do
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFFFFF;
    words.(i) <- !state land mask
  done;
  words

(* Transform an SDRAM image in place; returns the result word. *)
let reference_transform (sdram : int array) ~payload_len:_ =
  let inw = in_base / 4 in
  let w i = sdram.(inw + i) in
  let version_ihl = w 0 lsr 24 in
  if version_ihl <> 0x45 then 0xE0000000 lor version_ihl
  else begin
    let proto = (w 2 lsr 16) land 0xFF in
    if proto <> 17 then 0xE0000000 lor proto
    else begin
      let total = w 0 land 0xFFFF in
      let paylen = total - 28 in
      if paylen land 7 <> 0 then 0xD0000000 lor (paylen land mask)
      else begin
        let s =
          halves (w 0) + halves (w 1)
          + halves (w 2 land 0xFFFF0000)
          + halves (w 3) + halves (w 4)
        in
        let ipck = lnot (fold16 s) land 0xFFFF in
        let udplen = paylen + 8 in
        let sum = ref (halves (w 3) + halves (w 4) + 17 + udplen + halves (w 5)) in
        let off = ref 0 in
        while !off < paylen do
          sum := !sum + halves (w (6 + (!off / 4))) + halves (w (7 + (!off / 4)));
          off := !off + 8
        done;
        sum := !sum + halves (w (6 + (paylen / 4)));
        let f = fold16 (fold16 !sum) in
        let u = lnot f land 0xFFFF in
        let udpck = if u = 0 then 0xFFFF else u in
        sdram.(inw + 2) <- (w 2 land 0xFFFF0000) lor ipck;
        sdram.(inw + 6) <- (w 6 land 0xFFFF0000) lor udpck;
        (ipck lsl 16) lor udpck
      end
    end
  end

let init_tables (_load_sram : int -> int -> unit) = ()

let init_payload load_sdram ~payload_len =
  let words = build_packet ~payload_len in
  Array.iteri (fun i v -> load_sdram ((in_base / 4) + i) v) words;
  words

let expected ~payload_len ~sdram_words =
  let image = Array.make sdram_words 0 in
  let packet = build_packet ~payload_len in
  Array.blit packet 0 image (in_base / 4) (Array.length packet);
  let ret = reference_transform image ~payload_len in
  (image, ret)

(* Whitelist regions for `novac lint` (see [Aes.lint_regions]). *)
let lint_regions =
  let open Analysis.Race in
  [
    region ~name:"csum-out" ~space:Ixp.Insn.Sram ~base:csum_addr ~words:1
      Shared_write;
  ]
