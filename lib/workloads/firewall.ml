(* 5-tuple firewall / packet classifier in Nova:
     - a linear rule table in SRAM, 8 words per rule: src/mask, dst/mask,
       source- and destination-port ranges (packed min<<16|max), protocol
       (0xFF wildcard) and action|id;
     - first-match-wins loop with an early exit through the carried
       [verdict] variable; two 4-word SRAM burst reads per rule;
     - per-rule hit counters in scratch (read-modify-write, whitelisted
       as a shared-write region for the race lint);
     - non-v4 and non-TCP/UDP packets punt to the slow path. *)

(* memory map *)
let in_base = 0x100 (* SDRAM byte address of the packet *)
let rules_base = 0x6000 (* SRAM byte address of the rule table *)
let hits_base = 0x500 (* scratch byte address of the hit counters *)
let verdict_addr = 0x58 (* SRAM: last verdict *)
let n_rules = 16

(* verdict encoding: action (1 = accept, 2 = deny) | rule id << 8 *)
let default_verdict = 0xFF02

let source =
  Printf.sprintf
    {|
// 5-tuple firewall: first-match-wins over a linear SRAM rule table.

layout ipv4_hdr = {
  vi : overlay { whole : 8 | parts : { version : 4, ihl : 4 } },
  tos : 8, total_length : 16,
  ident : 16, flags_frag : 16,
  ttl : 8, protocol : 8, hdr_csum : 16,
  src : 32, dst : 32
};

const IN = %d;
const RULES = %d;
const HITS = %d;
const VERDICT = %d;
const NRULES = %d;
const DEFAULT = %d;

fun main () : word {
  try {
    let (h0, h1, h2, h3, h4, p0) = sdram(IN, 6);
    let ip = unpack[ipv4_hdr]((h0, h1, h2, h3, h4));
    if (ip.vi.whole != 0x45) { raise Punt [why = ip.vi.whole]; }
    let proto = ip.protocol;
    if (proto != 6) {
      if (proto != 17) { raise Punt [why = proto]; }
    }
    let sport = p0 >> 16;
    let dport = p0 & 0xFFFF;
    var i = 0;
    var verdict = 0;
    while (verdict == 0 && i <u NRULES) {
      let base = RULES + (i << 5);
      let (r0, r1, r2, r3) = sram(base, 4);
      let (r4, r5, r6, r7) = sram(base + 16, 4);
      if ((ip.src & r1) == r0 && (ip.dst & r3) == r2
          && (r4 >> 16) <= sport && sport <= (r4 & 0xFFFF)
          && (r5 >> 16) <= dport && dport <= (r5 & 0xFFFF)
          && (r6 == 0xFF || r6 == proto)) {
        verdict := r7;
      }
      else {
        i := i + 1;
      }
    }
    let hit = if (verdict == 0) { NRULES } else { i };
    let v = if (verdict == 0) { DEFAULT } else { verdict };
    let cnt = scratch(HITS + (hit << 2), 1);
    scratch(HITS + (hit << 2)) <- cnt + 1;
    sram(VERDICT) <- v;
    v
  }
  handle Punt [why : word] { 0xE0000000 | why }
}
|}
    in_base rules_base hits_base verdict_addr n_rules default_verdict

(* ------------------------------------------------------------------ *)
(* Rule table (shared by the SRAM loader and the reference)            *)
(* ------------------------------------------------------------------ *)

type rule = {
  src : int;
  smask : int;
  dst : int;
  dmask : int;
  sp : int * int;
  dp : int * int;
  proto : int; (* 0xFF = wildcard *)
  action : int; (* 1 = accept, 2 = deny *)
}

let mask_of_len len = if len = 0 then 0 else 0xFFFFFFFF lsl (32 - len) land 0xFFFFFFFF

let any = (0, 0)
let all_ports = (0, 0xFFFF)

let rules =
  let fixed =
    [
      (* block telnet anywhere *)
      { src = 0; smask = 0; dst = 0; dmask = 0; sp = all_ports; dp = (23, 23);
        proto = 6; action = 2 };
      (* allow DNS *)
      { src = 0; smask = 0; dst = 0; dmask = 0; sp = all_ports; dp = (53, 53);
        proto = 17; action = 1 };
      (* allow web to 10.20.30/24 *)
      { src = 0; smask = 0; dst = 0x0A141E00; dmask = mask_of_len 24;
        sp = all_ports; dp = (80, 443); proto = 6; action = 1 };
      (* drop everything sourced from 192.168/16 *)
      { src = 0xC0A80000; smask = mask_of_len 16; dst = 0; dmask = 0;
        sp = all_ports; dp = all_ports; proto = 0xFF; action = 2 };
      (* allow high source ports from 10/8 *)
      { src = 0x0A000000; smask = mask_of_len 8; dst = 0; dmask = 0;
        sp = (1024, 65535); dp = all_ports; proto = 6; action = 1 };
    ]
  in
  let filler =
    List.init (n_rules - List.length fixed) (fun k ->
        let i = k + List.length fixed in
        {
          src = 0x0A000000 + i;
          smask = mask_of_len 32;
          dst = 0;
          dmask = 0;
          sp = (i * 100, (i * 100) + 50);
          dp = all_ports;
          proto = 6;
          action = (if i mod 2 = 0 then 1 else 2);
        })
  in
  Array.of_list (fixed @ filler)

let () =
  ignore any;
  assert (Array.length rules = n_rules)

(* flatten a rule to its 8 SRAM words *)
let rule_words i (r : rule) =
  [|
    r.src land r.smask;
    r.smask;
    r.dst land r.dmask;
    r.dmask;
    (fst r.sp lsl 16) lor snd r.sp;
    (fst r.dp lsl 16) lor snd r.dp;
    r.proto;
    r.action lor (i lsl 8);
  |]

(* ------------------------------------------------------------------ *)
(* Packet builder and reference                                        *)
(* ------------------------------------------------------------------ *)

let mask = 0xFFFFFFFF

(* vary the 5-tuple with the packet size so different rules fire *)
let tuples =
  [|
    (* src, dst, sport, dport, proto *)
    (0x0A010101, 0x0B020202, 40000, 23, 6) (* rule 0: telnet deny *);
    (0x0A010101, 0x08080808, 5353, 53, 17) (* rule 1: dns accept *);
    (0xC0000001, 0x0A141E05, 33000, 443, 6) (* rule 2: web accept *);
    (0xC0A80050, 0x0B020202, 1234, 8080, 6) (* rule 3: 192.168 deny *);
    (0x0A00000A, 0x0B020202, 2048, 9999, 6) (* rule 4: high port accept *);
    (0x0A000007, 0x0B020202, 730, 9999, 6) (* filler rule 7 *);
    (0x2A2A2A2A, 0x2B2B2B2B, 1, 2, 17) (* default verdict *);
    (0x0A00000C, 0x0B020202, 1225, 80, 6) (* filler rule 12 *);
  |]

let build_packet ~payload_len =
  let n = 5 + (payload_len / 4) in
  let words = Array.make n 0 in
  let total = 20 + payload_len in
  let src, dst, sport, dport, proto =
    tuples.(payload_len / 4 mod Array.length tuples)
  in
  words.(0) <- (4 lsl 28) lor (5 lsl 24) lor total;
  words.(1) <- (0x7777 lsl 16) lor 0x4000;
  words.(2) <- (64 lsl 24) lor (proto lsl 16) lor 0x0BAD;
  words.(3) <- src;
  words.(4) <- dst;
  words.(5) <- (sport lsl 16) lor dport;
  let state = ref 0xF12E57A7 in
  for i = 6 to n - 1 do
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFFFFF;
    words.(i) <- !state land mask
  done;
  words

(* Mirror of the Nova matcher over the same rule words. *)
let reference_verdict ~src ~dst ~sport ~dport ~proto =
  let rec go i =
    if i >= n_rules then (n_rules, default_verdict)
    else
      let r = rule_words i rules.(i) in
      if
        src land r.(1) = r.(0)
        && dst land r.(3) = r.(2)
        && r.(4) lsr 16 <= sport
        && sport <= r.(4) land 0xFFFF
        && r.(5) lsr 16 <= dport
        && dport <= r.(5) land 0xFFFF
        && (r.(6) = 0xFF || r.(6) = proto)
      then (i, r.(7))
      else go (i + 1)
  in
  go 0

(* The packet image is not modified; the result is the verdict word. *)
let reference_transform (sdram : int array) ~payload_len:_ =
  let inw = in_base / 4 in
  let version_ihl = sdram.(inw) lsr 24 in
  if version_ihl <> 0x45 then 0xE0000000 lor version_ihl
  else
    let proto = (sdram.(inw + 2) lsr 16) land 0xFF in
    if proto <> 6 && proto <> 17 then 0xE0000000 lor proto
    else
      let src = sdram.(inw + 3) and dst = sdram.(inw + 4) in
      let p0 = sdram.(inw + 5) in
      let sport = p0 lsr 16 and dport = p0 land 0xFFFF in
      let _, v = reference_verdict ~src ~dst ~sport ~dport ~proto in
      v

let init_tables load_sram =
  Array.iteri
    (fun i r ->
      Array.iteri
        (fun j w -> load_sram ((rules_base / 4) + (i * 8) + j) w)
        (rule_words i r))
    rules

let init_payload load_sdram ~payload_len =
  let words = build_packet ~payload_len in
  Array.iteri (fun i v -> load_sdram ((in_base / 4) + i) v) words;
  words

let expected ~payload_len ~sdram_words =
  let image = Array.make sdram_words 0 in
  let packet = build_packet ~payload_len in
  Array.blit packet 0 image (in_base / 4) (Array.length packet);
  let ret = reference_transform image ~payload_len in
  (image, ret)

(* Whitelist regions for `novac lint` (see [Aes.lint_regions]). *)
let lint_regions =
  let open Analysis.Race in
  [
    region ~name:"fw-rules" ~space:Ixp.Insn.Sram ~base:rules_base
      ~words:(n_rules * 8) Read_only;
    region ~name:"fw-hits" ~space:Ixp.Insn.Scratch ~base:hits_base
      ~words:(n_rules + 1) Shared_write;
    region ~name:"fw-verdict" ~space:Ixp.Insn.Sram ~base:verdict_addr ~words:1
      Shared_write;
  ]
