(* IPv4 longest-prefix-match forwarding in Nova:
     - an 8-bit-stride multibit trie lives in SRAM; each node is 256
       entries, an entry is 0 (no route below this point), a leaf with
       bit 31 set carrying port and next-hop index, or the byte offset
       of a child node;
     - the header is parsed with the ipv4_hdr layout (version+ihl via
       the `whole` overlay arm, as in Kasumi);
     - the trie walk is a carried-variable loop (node, shift, result),
       at most four iterations by construction;
     - TTL is decremented and the header checksum patched incrementally
       (RFC 1624: the ttl|proto 16-bit field drops by 0x100, so the
       stored one's-complement checksum gains 0x100 with end-around
       carry);
     - non-v4 packets and expiring TTLs punt to the slow path. *)

(* memory map *)
let in_base = 0x100 (* SDRAM byte address of the packet *)
let trie_base = 0x8000 (* SRAM byte address of the trie node pool *)
let nh_addr = 0x60 (* SRAM: last next-hop leaf + port (2 slots) *)

let source =
  Printf.sprintf
    {|
// IPv4 LPM forwarding: 8-bit-stride trie in SRAM.

layout ipv4_hdr = {
  vi : overlay { whole : 8 | parts : { version : 4, ihl : 4 } },
  tos : 8, total_length : 16,
  ident : 16, flags_frag : 16,
  ttl : 8, protocol : 8, hdr_csum : 16,
  src : 32, dst : 32
};

const IN = %d;
const TRIE = %d;
const NH = %d;
const DEFAULT = 0x80000000;

fun fold16 (x : word) : word {
  let y = (x & 0xFFFF) + (x >> 16);
  (y & 0xFFFF) + (y >> 16)
}

fun main () : word {
  try {
    let (h0, h1, h2, h3, h4, p0) = sdram(IN, 6);
    let ip = unpack[ipv4_hdr]((h0, h1, h2, h3, h4));
    if (ip.vi.whole != 0x45) { raise Punt [why = ip.vi.whole]; }
    if (ip.ttl <u 2) { raise Expired [ttl = ip.ttl]; }
    let d = ip.dst;
    // trie walk: entry 0 = miss, bit 31 = leaf, else child byte offset
    var node = 0;
    var shift = 24;
    var result = DEFAULT;
    var live = 1;
    while (live != 0) {
      let idx = (d >> shift) & 0xFF;
      let e = sram(TRIE + node + (idx << 2), 1);
      if (e == 0) { live := 0; }
      else {
        if ((e >> 31) != 0) {
          result := e;
          live := 0;
        }
        else {
          node := e;
          shift := shift - 8;
        }
      }
    }
    // decrement TTL, patch checksum incrementally
    let w2 = h2 - 0x01000000;
    let ck = fold16((h2 & 0xFFFF) + 0x100);
    let w2p = (w2 & 0xFFFF0000) | ck;
    sdram(IN + 8) <- (w2p, h3);
    sram(NH) <- result;
    sram(NH + 4) <- (result >> 16) & 0x7F;
    result
  }
  handle Punt [why : word] { 0xE0000000 | why }
  handle Expired [ttl : word] { 0xD0000000 | ttl }
}
|}
    in_base trie_base nh_addr

(* ------------------------------------------------------------------ *)
(* Trie construction (shared by the SRAM loader and the reference)     *)
(* ------------------------------------------------------------------ *)

let max_nodes = 64
let default_leaf = 0x80000000

let leaf ~port ~nh = 0x80000000 lor ((port land 0x7F) lsl 16) lor (nh land 0xFFFF)
let is_leaf e = e land 0x80000000 <> 0

(* entries.(n).(i): the word stored in the SRAM image; plens shadows the
   prefix length that claimed each entry so longer prefixes win
   regardless of insertion order. *)
let node_count = ref 1
let entries = Array.make_matrix max_nodes 256 0
let plens = Array.make_matrix max_nodes 256 (-1)

let new_node () =
  let n = !node_count in
  incr node_count;
  if n >= max_nodes then failwith "lpm: trie node pool exhausted";
  n

(* child pointers are byte offsets relative to TRIE (1 KiB per node),
   nonzero because node 0 is the root *)
let child_off n = n * 1024

let rec set_covering node i value plen =
  let e = entries.(node).(i) in
  if e <> 0 && not (is_leaf e) then
    (* a child covers this range: push the route down *)
    let c = e / 1024 in
    for j = 0 to 255 do
      set_covering c j value plen
    done
  else if plen >= plens.(node).(i) then begin
    entries.(node).(i) <- value;
    plens.(node).(i) <- plen
  end

let rec insert_at node depth prefix len value =
  let byte = (prefix lsr (24 - (8 * depth))) land 0xFF in
  let consumed = 8 * depth in
  if len - consumed <= 8 then begin
    (* controlled prefix expansion within this node *)
    let rem = len - consumed in
    let low_mask = (1 lsl (8 - rem)) - 1 in
    let lo = byte land lnot low_mask land 0xFF in
    for i = lo to lo lor low_mask do
      set_covering node i value len
    done
  end
  else begin
    let e = entries.(node).(byte) in
    let c =
      if e <> 0 && not (is_leaf e) then e / 1024
      else begin
        let c = new_node () in
        (* leaf-pushing: an existing shorter route covers the child *)
        if is_leaf e then
          for j = 0 to 255 do
            entries.(c).(j) <- e;
            plens.(c).(j) <- plens.(node).(byte)
          done;
        entries.(node).(byte) <- child_off c;
        plens.(node).(byte) <- -1;
        c
      end
    in
    insert_at c (depth + 1) prefix len value
  end

(* deterministic route table: mixed lengths, overlapping prefixes *)
let routes =
  [
    (0x0A000000, 8, 1, 1) (* 10/8 *);
    (0x0A140000, 16, 2, 2) (* 10.20/16 *);
    (0x0A141E00, 24, 3, 3) (* 10.20.30/24 *);
    (0x0A141E28, 32, 4, 4) (* 10.20.30.40/32 *);
    (0xC0A80000, 16, 5, 5) (* 192.168/16 *);
    (0xC0A80100, 24, 6, 6) (* 192.168.1/24 *);
    (0xAC100000, 12, 7, 7) (* 172.16/12 *);
    (0x08080800, 24, 8, 8) (* 8.8.8/24 *);
    (0x08080808, 32, 9, 9) (* 8.8.8.8/32 *);
    (0x01000000, 8, 10, 10) (* 1/8 *);
    (0x42660000, 17, 11, 11) (* 66.102/17 *);
  ]

let () =
  List.iter
    (fun (p, len, port, nh) -> insert_at 0 0 p len (leaf ~port ~nh))
    routes

let trie_words = lazy (!node_count * 256)

(* mirror of the Nova trie walk over the same entries *)
let reference_lookup d =
  let rec go node shift =
    let idx = (d lsr shift) land 0xFF in
    let e = entries.(node).(idx) in
    if e = 0 then default_leaf
    else if is_leaf e then e
    else go (e / 1024) (shift - 8)
  in
  go 0 24

(* ------------------------------------------------------------------ *)
(* Packet builder and reference transform                              *)
(* ------------------------------------------------------------------ *)

let mask = 0xFFFFFFFF

let fold16 x =
  let y = (x land 0xFFFF) + (x lsr 16) in
  ((y land 0xFFFF) + (y lsr 16)) land mask

(* destinations hitting different routes depending on the packet size *)
let dests =
  [|
    0x0A141E28 (* /32 hit *);
    0x0A141E63 (* /24 *);
    0x0A630001 (* /8 *);
    0xC0A8014D (* 192.168.1/24 *);
    0xAC110101 (* 172.16/12 *);
    0x08080808 (* /32 *);
    0x09090909 (* default *);
    0x01020304 (* 1/8 *);
  |]

let build_packet ~payload_len =
  let n = 5 + (payload_len / 4) in
  let words = Array.make n 0 in
  let total = 20 + payload_len in
  words.(0) <- (4 lsl 28) lor (5 lsl 24) lor total;
  words.(1) <- (0x1234 lsl 16) lor 0x4000;
  words.(2) <- (64 lsl 24) lor (6 lsl 16) lor 0xB1C2;
  words.(3) <- 0xC0A80001;
  words.(4) <- dests.(payload_len / 4 mod Array.length dests);
  let state = ref 0x17ACE5EED in
  for i = 5 to n - 1 do
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFFFFF;
    words.(i) <- !state land mask
  done;
  words

(* Transform an SDRAM image in place; returns the result word. *)
let reference_transform (sdram : int array) ~payload_len:_ =
  let inw = in_base / 4 in
  let h2 = sdram.(inw + 2) in
  let d = sdram.(inw + 4) in
  let ttl = (h2 lsr 24) land 0xFF in
  let version_ihl = sdram.(inw) lsr 24 in
  if version_ihl <> 0x45 then 0xE0000000 lor version_ihl
  else if ttl < 2 then 0xD0000000 lor ttl
  else begin
    let result = reference_lookup d in
    let w2 = (h2 - 0x01000000) land mask in
    let ck = fold16 ((h2 land 0xFFFF) + 0x100) in
    sdram.(inw + 2) <- (w2 land 0xFFFF0000) lor ck;
    result
  end

let init_tables load_sram =
  for n = 0 to !node_count - 1 do
    for i = 0 to 255 do
      let w = entries.(n).(i) in
      if w <> 0 then load_sram ((trie_base / 4) + (n * 256) + i) w
    done
  done

let init_payload load_sdram ~payload_len =
  let words = build_packet ~payload_len in
  Array.iteri (fun i v -> load_sdram ((in_base / 4) + i) v) words;
  words

let expected ~payload_len ~sdram_words =
  let image = Array.make sdram_words 0 in
  let packet = build_packet ~payload_len in
  Array.blit packet 0 image (in_base / 4) (Array.length packet);
  let ret = reference_transform image ~payload_len in
  (image, ret)

(* Whitelist regions for `novac lint` (see [Aes.lint_regions]). *)
let lint_regions =
  let open Analysis.Race in
  [
    region ~name:"lpm-trie" ~space:Ixp.Insn.Sram ~base:trie_base
      ~words:(Lazy.force trie_words) Read_only;
    region ~name:"lpm-nexthop" ~space:Ixp.Insn.Sram ~base:nh_addr ~words:2
      Shared_write;
  ]
