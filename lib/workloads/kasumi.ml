(* Kasumi in Nova, following the paper's description (§11):
     - subkey tables interleaved and packed so each round iteration does
       one scratch read for all its subkey halfwords;
     - all tables in scratch memory except the S9 table, which lives in
       SRAM;
     - the IPv4/TCP headers in front of the payload are parsed with
       layouts (the `whole` overlay arm checks version+ihl in one go);
     - payload processed in 8-byte blocks in place; checksum maintained;
     - bad version or partial blocks punt to the slow path. *)

(* memory map *)
let sk_base = 0x100 (* scratch bytes: 8 rounds x 4 packed words *)
let s7_base = 0x200 (* scratch: 128 words *)
let s9_base = 0x3000 (* SRAM: 512 words *)
let hdr_base = 0xC0 (* SDRAM: IPv4+TCP headers *)
let pkt_base = 0x100 (* SDRAM payload, encrypted in place *)
let csum_addr = 0x54 (* SRAM result *)
let stat_addr = 0x70 (* SRAM: packed status record *)

let source =
  Printf.sprintf
    {|
// Kasumi fast path: FL/FO/FI Feistel network, subkeys packed in scratch,
// S9 in SRAM, S7 in scratch.

layout ipv4_hdr = {
  vi : overlay { whole : 8 | parts : { version : 4, ihl : 4 } },
  tos : 8, total_length : 16,
  ident : 16, flags_frag : 16,
  ttl : 8, protocol : 8, hdr_csum : 16,
  src : 32, dst : 32
};

layout status_record = { blocks : 16, scsum : 16, flowid : 32 };

const SK  = %d;
const S7T = %d;
const S9T = %d;
const HDR = %d;
const PKT = %d;
const CSUM = %d;
const STAT = %d;

// FI: two S9/S7 half-rounds on a 16-bit value.
fun fi (x : word, ki : word) : word {
  let nine0  = (x >> 7) & 0x1FF;
  let seven0 = x & 0x7F;
  let t9 = sram(S9T + (nine0 << 2), 1);
  let nine1 = t9 ^ seven0;
  let t7 = scratch(S7T + (seven0 << 2), 1);
  let seven1 = t7 ^ (nine1 & 0x7F);
  let seven2 = (seven1 ^ (ki >> 9)) & 0x7F;
  let nine2 = (nine1 ^ ki) & 0x1FF;
  let u9 = sram(S9T + (nine2 << 2), 1);
  let nine3 = u9 ^ seven2;
  let u7 = scratch(S7T + (seven2 << 2), 1);
  let seven3 = u7 ^ (nine3 & 0x7F);
  ((seven3 << 9) | nine3) & 0xFFFF
}

// FO: three FI rounds.  w1 = KO1<<16|KO2, w2 = KO3<<16|KI1, w3 = KI2<<16|KI3.
fun fo (x : word, w1 : word, w2 : word, w3 : word) : word {
  let l0 = (x >> 16) & 0xFFFF;
  let r0 = x & 0xFFFF;
  let l1 = fi(l0 ^ (w1 >> 16), w2 & 0xFFFF) ^ r0;
  let r1 = fi(r0 ^ (w1 & 0xFFFF), (w3 >> 16) & 0xFFFF) ^ l1;
  let l2 = fi(l1 ^ (w2 >> 16), w3 & 0xFFFF) ^ r1;
  (l2 << 16) | r1
}

// FL: rotate-and-mask mixing.  w0 = KL1<<16|KL2.
fun fl (x : word, w0 : word) : word {
  let kl1 = (w0 >> 16) & 0xFFFF;
  let kl2 = w0 & 0xFFFF;
  let l0 = (x >> 16) & 0xFFFF;
  let r0 = x & 0xFFFF;
  let t = l0 & kl1;
  let r1 = r0 ^ (((t << 1) | (t >> 15)) & 0xFFFF);
  let u = r1 | kl2;
  let l1 = l0 ^ (((u << 1) | (u >> 15)) & 0xFFFF);
  (l1 << 16) | r1
}

fun main () : word {
  try {
    // the `whole` overlay arm checks version and header length together
    let (i0, i1, i2, i3, i4, skip) = sdram(HDR, 6);
    let ip = unpack[ipv4_hdr]((i0, i1, i2, i3, i4));
    if (ip.vi.whole != 0x45) { raise Punt [why = ip.vi.whole]; }
    let payload_len = ip.total_length - 40;
    if ((payload_len & 7) != 0) { raise BadLen [len = payload_len]; }
    var off = 0;
    var csum = 0;
    while (off <u payload_len) {
      let (hi, lo) = sdram(PKT + off);
      var l = hi;
      var r = lo;
      // two rounds per iteration: odd rounds FL;FO, even rounds FO;FL
      var i = 0;
      while (i < 4) {
        let (a0, a1, a2, a3) = scratch(SK + (i << 5), 4);
        let outA = fo(fl(l, a0), a1, a2, a3);
        let l1 = r ^ outA;
        let r1 = l;
        let (b0, b1, b2, b3) = scratch(SK + (i << 5) + 16, 4);
        let outB = fl(fo(l1, b1, b2, b3), b0);
        let l2 = r1 ^ outB;
        r := l1;
        l := l2;
        i := i + 1;
      }
      sdram(PKT + off) <- (l, r);
      csum := csum + (l >> 16) + (l & 0xFFFF) + (r >> 16) + (r & 0xFFFF);
      off := off + 8;
    }
    csum := (csum & 0xFFFF) + (csum >> 16);
    csum := (csum & 0xFFFF) + (csum >> 16);
    sram(CSUM) <- csum;
    // status record for the control processor
    let status = pack[status_record] [
      blocks = payload_len >> 3, scsum = csum, flowid = ip.src ^ ip.dst ];
    sram(STAT) <- status;
    csum
  }
  handle Punt [why : word] { 0xE0000000 | why }
  handle BadLen [len : word] { 0xD0000000 | len }
}
|}
    sk_base s7_base s9_base hdr_base pkt_base csum_addr stat_addr

let demo_key = [| 0x0123; 0x4567; 0x89AB; 0xCDEF; 0x1122; 0x3344; 0x5566; 0x7788 |]

let round_keys = lazy (Kasumi_ref.schedule demo_key)

let payload_words n =
  let out = Array.make n 0 in
  let state = ref 0x0BADF00D in
  for i = 0 to n - 1 do
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFFFFF;
    out.(i) <- !state land 0xFFFFFFFF
  done;
  out

let header_words ~payload_len =
  let total = 40 + payload_len in
  [|
    (4 lsl 28) lor (5 lsl 24) lor total;
    (0xBEEF lsl 16) lor 0x4000;
    (64 lsl 24) lor (6 lsl 16);
    0xC0A80001;
    0x0A000002;
    0; 0; 0; 0; 0;
  |]

let init_tables ~load_sram ~load_scratch =
  Array.iteri
    (fun i w -> load_scratch ((sk_base / 4) + i) w)
    (Kasumi_ref.packed_subkeys (Lazy.force round_keys));
  Array.iteri
    (fun i w -> load_scratch ((s7_base / 4) + i) w)
    (Lazy.force Kasumi_ref.s7);
  Array.iteri
    (fun i w -> load_sram ((s9_base / 4) + i) w)
    (Lazy.force Kasumi_ref.s9)

let init_payload load_sdram ~payload_len =
  Array.iteri
    (fun i w -> load_sdram ((hdr_base / 4) + i) w)
    (header_words ~payload_len);
  let words = payload_words (payload_len / 4) in
  Array.iteri (fun i w -> load_sdram ((pkt_base / 4) + i) w) words;
  words

let expected ~payload_len =
  let words = payload_words (payload_len / 4) in
  let ct = Kasumi_ref.encrypt_words (Lazy.force round_keys) words in
  let csum = Aes_ref.ones_complement_sum ct in
  (ct, csum)

(* Whitelist regions for `novac lint` (see [Aes.lint_regions]). *)
let lint_regions =
  let open Analysis.Race in
  [
    region ~name:"kasumi-subkeys" ~space:Ixp.Insn.Scratch ~base:sk_base
      ~words:32 Read_only;
    region ~name:"kasumi-s7" ~space:Ixp.Insn.Scratch ~base:s7_base ~words:128
      Read_only;
    region ~name:"kasumi-s9" ~space:Ixp.Insn.Sram ~base:s9_base ~words:512
      Read_only;
    region ~name:"kasumi-csum" ~space:Ixp.Insn.Sram ~base:csum_addr ~words:1
      Shared_write;
    region ~name:"kasumi-status" ~space:Ixp.Insn.Sram ~base:stat_addr ~words:2
      Shared_write;
  ]
