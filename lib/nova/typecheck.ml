(* Elaboration and type checking (paper §3).

   Responsibilities:
     - resolve layout definitions and fold compile-time constants;
     - resolve every variable to a unique [Ident.t];
     - enforce the two-layer type discipline: arrow/exception types may
       appear only as function arguments, so no control structure ever
       needs memory allocation;
     - enforce the no-stack rule: calls between functions in the same
       recursion group (SCC of the call graph) must be in tail position;
     - normalize named arguments, overlay choices for [pack], and
       memory-read aggregate counts inferred from tuple patterns.

   Un-annotated function parameters default to [word]; un-annotated
   return types default to [unit]. *)

open Support
open Ast
module T = Types

type binding =
  | Bval of Ident.t * T.t (* immutable *)
  | Bmut of Ident.t * T.t (* mutable (var) *)
  | Bexn of Ident.t * T.t (* exception; T.t is the payload *)
  | Bconst of int
  | Bglobal (* top-level function; signature in globals *)
  | Blocalfun of Ident.t * T.t list * T.t (* nested function *)

type global_sig = { gs_params : (string * T.t) list; gs_ret : T.t }

type env = {
  layouts : Layout.env;
  globals : (string, global_sig) Hashtbl.t;
  locals : (string * binding) list; (* innermost first *)
  (* stack of enclosing named functions (for the tail-call check):
     innermost first; each entry is the function's scc id *)
  current_fn : string;
}

let err ~loc fmt = Diag.error ~loc fmt

let lookup env name = List.assoc_opt name env.locals

let bind env name b = { env with locals = (name, b) :: env.locals }

(* ------------------------------------------------------------------ *)
(* Surface types -> semantic types                                     *)
(* ------------------------------------------------------------------ *)

let rec elab_ty env (t : Ast.ty) : T.t =
  match t with
  | Tword _ -> T.Word
  | Tbool _ -> T.Bool
  | Tunit _ -> T.Unit
  | Ttuple (ts, _) -> T.Tuple (List.map (elab_ty env) ts)
  | Trecord (fs, _) -> T.Record (List.map (fun (n, t) -> (n, elab_ty env t)) fs)
  | Tpacked (l, _) -> T.Packed (Layout.resolve env.layouts l)
  | Tunpacked (l, _) -> T.Unpacked (Layout.resolve env.layouts l)
  | Tfun (args, ret, _) ->
      T.Fun (List.map (elab_ty env) args, elab_ty env ret)
  | Texn (t, _) -> T.Exn (elab_ty env t)

(* ------------------------------------------------------------------ *)
(* Constant folding for `const` declarations                           *)
(* ------------------------------------------------------------------ *)

let rec const_eval env (e : expr) : int =
  let loc = expr_loc e in
  match e with
  | Int (i, _) -> i
  | Var (x, _) -> (
      match lookup env x with
      | Some (Bconst i) -> i
      | _ -> err ~loc "'%s' is not a compile-time constant" x)
  | Binop (op, a, b, _) -> (
      let a = const_eval env a and b = const_eval env b in
      match op with
      | Add -> a + b
      | Sub -> a - b
      | Mul -> a * b
      | And -> a land b
      | Or -> a lor b
      | Xor -> a lxor b
      | Shl -> a lsl b
      | Shr -> a lsr b
      | Asr -> a asr b
      | _ -> err ~loc "operator %s not allowed in constants" (binop_to_string op))
  | Unop (Not, a, _) -> lnot (const_eval env a) land 0xFFFFFFFF
  | Unop (Neg, a, _) -> -const_eval env a
  | _ -> err ~loc "expression is not a compile-time constant"

(* ------------------------------------------------------------------ *)
(* Checking                                                            *)
(* ------------------------------------------------------------------ *)

(* Call-graph edges collected while checking, for the SCC analysis:
   (caller, callee) over function names (top-level names and local
   function idents rendered unique via Ident.name). *)
let call_edges : (string * string) list ref = ref []

let record_call caller callee = call_edges := (caller, callee) :: !call_edges

let expect_ty ~loc ~what expected actual =
  if not (T.equal expected actual) then
    err ~loc "%s: expected %s but found %s" what (T.to_string expected)
      (T.to_string actual)

let rec check env ~tail (e : expr) : Tast.texpr =
  let loc = expr_loc e in
  let mk desc ty = Tast.mk desc ty loc in
  match e with
  | Int (i, _) -> mk (Tast.Tint i) T.Word
  | Bool (b, _) -> mk (Tast.Tbool b) T.Bool
  | Unit _ -> mk Tast.Tunit T.Unit
  | Var (x, _) -> (
      match lookup env x with
      | Some (Bval (id, t)) | Some (Bmut (id, t)) -> mk (Tast.Tvar id) t
      | Some (Bconst i) -> mk (Tast.Tint i) T.Word
      | Some (Bexn (id, payload)) -> mk (Tast.Tvar id) (T.Exn payload)
      | Some (Blocalfun (id, args, ret)) -> mk (Tast.Tvar id) (T.Fun (args, ret))
      | Some Bglobal | None -> (
          match Hashtbl.find_opt env.globals x with
          | Some gs ->
              record_call env.current_fn x;
              mk (Tast.Tfunval x)
                (T.Fun (List.map snd gs.gs_params, gs.gs_ret))
          | None -> err ~loc "unbound variable '%s'" x))
  | Binop (op, a, b, _) -> (
      match op with
      | LAnd | LOr ->
          let ta = check env ~tail:false a in
          let tb = check env ~tail:false b in
          expect_ty ~loc ~what:"left operand" T.Bool ta.Tast.ty;
          expect_ty ~loc ~what:"right operand" T.Bool tb.Tast.ty;
          mk (Tast.Tbinop (op, ta, tb)) T.Bool
      | Eq | Ne | Lt | Le | Gt | Ge | Ult | Uge ->
          let ta = check env ~tail:false a in
          let tb = check env ~tail:false b in
          expect_ty ~loc ~what:"left operand" T.Word ta.Tast.ty;
          expect_ty ~loc ~what:"right operand" T.Word tb.Tast.ty;
          mk (Tast.Tbinop (op, ta, tb)) T.Bool
      | Add | Sub | Mul | And | Or | Xor | Shl | Shr | Asr ->
          let ta = check env ~tail:false a in
          let tb = check env ~tail:false b in
          expect_ty ~loc ~what:"left operand" T.Word ta.Tast.ty;
          expect_ty ~loc ~what:"right operand" T.Word tb.Tast.ty;
          mk (Tast.Tbinop (op, ta, tb)) T.Word)
  | Unop (op, a, _) -> (
      let ta = check env ~tail:false a in
      match op with
      | LNot ->
          expect_ty ~loc ~what:"operand" T.Bool ta.Tast.ty;
          mk (Tast.Tunop (op, ta)) T.Bool
      | Not | Neg ->
          expect_ty ~loc ~what:"operand" T.Word ta.Tast.ty;
          mk (Tast.Tunop (op, ta)) T.Word)
  | Tuple (es, _) ->
      let ts = List.map (check env ~tail:false) es in
      List.iter
        (fun (t : Tast.texpr) ->
          if not (T.first_order t.Tast.ty) then
            err ~loc "tuples may only contain first-order values")
        ts;
      mk (Tast.Ttuple ts) (T.Tuple (List.map (fun t -> t.Tast.ty) ts))
  | Record (fs, _) ->
      let seen = Hashtbl.create 8 in
      let tfs =
        List.map
          (fun (n, e) ->
            if Hashtbl.mem seen n then err ~loc "duplicate record field '%s'" n;
            Hashtbl.replace seen n ();
            (n, check env ~tail:false e))
          fs
      in
      List.iter
        (fun (_, (t : Tast.texpr)) ->
          if not (T.first_order t.Tast.ty) then
            err ~loc "records may only contain first-order values")
        tfs;
      mk (Tast.Trecord tfs)
        (T.Record (List.map (fun (n, t) -> (n, t.Tast.ty)) tfs))
  | Select (e, f, _) -> (
      let te = check env ~tail:false e in
      match T.expand te.Tast.ty with
      | T.Record fs -> (
          match List.assoc_opt f fs with
          | Some t -> mk (Tast.Tselect (te, f)) t
          | None ->
              err ~loc "record has no field '%s' (fields: %s)" f
                (String.concat ", " (List.map fst fs)))
      | t -> err ~loc "field selection on non-record type %s" (T.to_string t))
  | Proj (e, i, _) -> (
      let te = check env ~tail:false e in
      match T.expand te.Tast.ty with
      | T.Tuple ts when i >= 0 && i < List.length ts ->
          mk (Tast.Tproj (te, i)) (List.nth ts i)
      | T.Tuple ts ->
          err ~loc "tuple index %d out of range (size %d)" i (List.length ts)
      | t -> err ~loc "projection on non-tuple type %s" (T.to_string t))
  | If (c, t1, t2, _) ->
      let tc = check env ~tail:false c in
      expect_ty ~loc ~what:"condition" T.Bool tc.Tast.ty;
      let tt = check env ~tail t1 in
      let tf = check env ~tail t2 in
      if not (T.equal tt.Tast.ty tf.Tast.ty) then
        err ~loc "branches of if have different types: %s vs %s"
          (T.to_string tt.Tast.ty) (T.to_string tf.Tast.ty);
      let ty = if tt.Tast.ty = T.Never then tf.Tast.ty else tt.Tast.ty in
      mk (Tast.Tif (tc, tt, tf)) ty
  | Call (fname, args, _) -> check_call env ~tail ~loc fname args
  | Let (Pvar (x, _), ty, rhs, body, _) ->
      let trhs = check env ~tail:false rhs in
      (match ty with
      | Some t -> expect_ty ~loc ~what:"let binding" (elab_ty env t) trhs.Tast.ty
      | None -> ());
      if not (T.first_order trhs.Tast.ty) then
        err ~loc "cannot bind a function or exception with let";
      let id = Ident.fresh x in
      let env' = bind env x (Bval (id, trhs.Tast.ty)) in
      let tbody = check env' ~tail body in
      mk (Tast.Tlet (id, trhs, tbody)) tbody.Tast.ty
  | Let (Ptuple (xs, _), ty, rhs, body, _) ->
      (* infer aggregate counts for bare memory reads *)
      let rhs =
        match rhs with
        | MemRead (space, addr, None, l) ->
            MemRead (space, addr, Some (List.length xs), l)
        | _ -> rhs
      in
      let trhs = check env ~tail:false rhs in
      (match ty with
      | Some t -> expect_ty ~loc ~what:"let binding" (elab_ty env t) trhs.Tast.ty
      | None -> ());
      let comps =
        match T.expand trhs.Tast.ty with
        | T.Tuple ts -> ts
        | T.Word when List.length xs = 1 -> [ T.Word ]
        | t ->
            err ~loc "tuple pattern against non-tuple type %s" (T.to_string t)
      in
      if List.length comps <> List.length xs then
        err ~loc "pattern has %d components but value has %d" (List.length xs)
          (List.length comps);
      let ids = List.map Ident.fresh xs in
      let env' =
        List.fold_left2
          (fun env (x, id) t -> bind env x (Bval (id, t)))
          env
          (List.combine xs ids)
          comps
      in
      let tbody = check env' ~tail body in
      mk (Tast.Tlettuple (ids, trhs, tbody)) tbody.Tast.ty
  | Vardecl (x, ty, rhs, body, _) ->
      let trhs = check env ~tail:false rhs in
      (match ty with
      | Some t -> expect_ty ~loc ~what:"var binding" (elab_ty env t) trhs.Tast.ty
      | None -> ());
      (match T.expand trhs.Tast.ty with
      | T.Word | T.Bool -> ()
      | t ->
          err ~loc "mutable variables must be scalar (word/bool), got %s"
            (T.to_string t));
      let id = Ident.fresh x in
      let env' = bind env x (Bmut (id, trhs.Tast.ty)) in
      let tbody = check env' ~tail body in
      mk (Tast.Tvardecl (id, trhs, tbody)) tbody.Tast.ty
  | Assign (x, rhs, _) -> (
      match lookup env x with
      | Some (Bmut (id, t)) ->
          let trhs = check env ~tail:false rhs in
          expect_ty ~loc ~what:"assignment" t trhs.Tast.ty;
          mk (Tast.Tassign (id, trhs)) T.Unit
      | Some _ -> err ~loc "'%s' is not a mutable variable" x
      | None -> err ~loc "unbound variable '%s'" x)
  | Seq (a, b, _) ->
      let ta = check env ~tail:false a in
      if not (T.equal ta.Tast.ty T.Unit) then
        err ~loc:(expr_loc a) "discarded expression must have type unit, not %s"
          (T.to_string ta.Tast.ty);
      let tb = check env ~tail b in
      mk (Tast.Tseq (ta, tb)) tb.Tast.ty
  | While (c, body, _) ->
      let tc = check env ~tail:false c in
      expect_ty ~loc ~what:"while condition" T.Bool tc.Tast.ty;
      let tb = check env ~tail:false body in
      expect_ty ~loc ~what:"while body" T.Unit tb.Tast.ty;
      mk (Tast.Twhile (tc, tb)) T.Unit
  | Unpack (l, e, _) ->
      let lay = Layout.resolve env.layouts l in
      let te = check env ~tail:false e in
      expect_ty ~loc ~what:"unpack argument" (T.Packed lay) te.Tast.ty;
      mk (Tast.Tunpack (lay, te)) (T.Unpacked lay)
  | Pack (l, arg, _) ->
      let lay = Layout.resolve env.layouts l in
      let pairs = check_pack env ~loc lay arg in
      mk (Tast.Tpack (lay, pairs)) (T.Packed lay)
  | MemRead (space, addr, count, _) ->
      let n =
        match count with
        | Some n -> n
        | None -> err ~loc "memory read needs an explicit count here"
      in
      let ispace = space in
      (match space with
      | Sdram ->
          if not (n >= 2 && n <= 8 && n mod 2 = 0) then
            err ~loc "sdram reads move 2, 4, 6 or 8 words, not %d" n
      | Sram | Scratch ->
          if not (n >= 1 && n <= 8) then
            err ~loc "%s reads move 1..8 words, not %d"
              (mem_space_to_string space) n);
      let taddr = check env ~tail:false addr in
      expect_ty ~loc ~what:"address" T.Word taddr.Tast.ty;
      let ty = if n = 1 then T.Word else T.Tuple (List.init n (fun _ -> T.Word)) in
      mk (Tast.Tmemread (ispace, taddr, n)) ty
  | MemWrite (space, addr, value, _) ->
      let taddr = check env ~tail:false addr in
      expect_ty ~loc ~what:"address" T.Word taddr.Tast.ty;
      let tv = check env ~tail:false value in
      let n =
        match T.expand tv.Tast.ty with
        | T.Word -> 1
        | T.Tuple ts ->
            List.iter
              (fun t -> expect_ty ~loc ~what:"stored value" T.Word t)
              ts;
            List.length ts
        | t -> err ~loc "cannot store a value of type %s" (T.to_string t)
      in
      (match space with
      | Sdram ->
          if not (n >= 2 && n <= 8 && n mod 2 = 0) then
            err ~loc "sdram writes move 2, 4, 6 or 8 words, not %d" n
      | Sram | Scratch ->
          if not (n >= 1 && n <= 8) then
            err ~loc "%s writes move 1..8 words, not %d"
              (mem_space_to_string space) n);
      mk (Tast.Tmemwrite (space, taddr, tv)) T.Unit
  | Hash (e, _) ->
      let te = check env ~tail:false e in
      expect_ty ~loc ~what:"hash argument" T.Word te.Tast.ty;
      mk (Tast.Thash te) T.Word
  | BitTestSet (a, v, _) ->
      let ta = check env ~tail:false a in
      expect_ty ~loc ~what:"address" T.Word ta.Tast.ty;
      let tv = check env ~tail:false v in
      expect_ty ~loc ~what:"value" T.Word tv.Tast.ty;
      mk (Tast.Tbittestset (ta, tv)) T.Word
  | CsrRead (name, _) -> mk (Tast.Tcsrread name) T.Word
  | CsrWrite (name, v, _) ->
      let tv = check env ~tail:false v in
      expect_ty ~loc ~what:"CSR value" T.Word tv.Tast.ty;
      mk (Tast.Tcsrwrite (name, tv)) T.Unit
  | RfifoRead (addr, n, _) ->
      if not (n >= 2 && n <= 8 && n mod 2 = 0) then
        err ~loc "rfifo reads move 2, 4, 6 or 8 words, not %d" n;
      let ta = check env ~tail:false addr in
      expect_ty ~loc ~what:"address" T.Word ta.Tast.ty;
      mk (Tast.Trfifo (ta, n)) (T.Tuple (List.init n (fun _ -> T.Word)))
  | TfifoWrite (addr, v, _) ->
      let ta = check env ~tail:false addr in
      expect_ty ~loc ~what:"address" T.Word ta.Tast.ty;
      let tv = check env ~tail:false v in
      (match T.expand tv.Tast.ty with
      | T.Word -> ()
      | T.Tuple ts ->
          List.iter (fun t -> expect_ty ~loc ~what:"fifo value" T.Word t) ts
      | t -> err ~loc "cannot send a value of type %s to tfifo" (T.to_string t));
      mk (Tast.Ttfifo (ta, tv)) T.Unit
  | CtxArb _ -> mk Tast.Tctxarb T.Unit
  | Raise (x, args, _) -> (
      match lookup env x with
      | Some (Bexn (id, payload)) ->
          let targs = check_payload env ~loc payload args in
          (* a raise never returns; Never unifies with any type *)
          Tast.mk (Tast.Traise (id, targs)) T.Never loc
      | Some _ -> err ~loc "'%s' is not an exception" x
      | None -> err ~loc "unbound exception '%s'" x)
  | Try (body, handlers, _) ->
      (* each handler introduces its exception name for the body *)
      let hs =
        List.map
          (fun h ->
            let payload =
              match h.hparams with
              | [] -> T.Unit
              | ps ->
                  T.Record
                    (List.map
                       (fun (n, t) ->
                         ( n,
                           match t with
                           | Some t -> elab_ty env t
                           | None -> T.Word ))
                       ps)
            in
            (h, Ident.fresh h.hexn, payload))
          handlers
      in
      let env_body =
        List.fold_left
          (fun env (h, id, payload) -> bind env h.hexn (Bexn (id, payload)))
          env hs
      in
      let tbody = check env_body ~tail:false body in
      let thandlers =
        List.map
          (fun (h, id, payload) ->
            let params =
              match payload with
              | T.Unit -> []
              | T.Record fs ->
                  List.map (fun (n, t) -> (Ident.fresh n, t)) fs
              | _ -> assert false
            in
            let env_h =
              List.fold_left2
                (fun env (n, _) (pid, pty) -> bind env n (Bval (pid, pty)))
                env h.hparams params
            in
            let tb = check env_h ~tail h.hbody in
            if not (T.equal tb.Tast.ty tbody.Tast.ty) then
              err ~loc:h.hloc
                "handler for %s has type %s but the try body has type %s"
                h.hexn (T.to_string tb.Tast.ty) (T.to_string tbody.Tast.ty);
            { Tast.h_exn = id; h_params = params; h_body = tb })
          hs
      in
      let try_ty =
        List.fold_left
          (fun acc (h : Tast.thandler) ->
            if acc = T.Never then h.Tast.h_body.Tast.ty else acc)
          tbody.Tast.ty thandlers
      in
      mk (Tast.Ttry (tbody, thandlers)) try_ty

and check_payload env ~loc payload (args : arg list) : Tast.texpr list =
  (* normalize raise arguments against the payload type *)
  match payload with
  | T.Unit ->
      (match args with
      | [] | [ Apos (Ast.Unit _) ] -> ()
      | _ -> err ~loc "this exception takes no arguments");
      []
  | T.Record fs ->
      let named =
        List.map
          (function
            | Anamed (n, e) -> (n, e)
            | Apos _ -> err ~loc "exception arguments must be named [x = e, …]")
          args
      in
      List.map
        (fun (n, t) ->
          match List.assoc_opt n named with
          | Some e ->
              let te = check env ~tail:false e in
              expect_ty ~loc ~what:("argument " ^ n) t te.Tast.ty;
              te
          | None -> err ~loc "missing exception argument '%s'" n)
        fs
  | T.Tuple ts ->
      let pos =
        List.map
          (function
            | Apos e -> e
            | Anamed _ -> err ~loc "positional arguments expected")
          args
      in
      if List.length pos <> List.length ts then
        err ~loc "exception takes %d arguments, got %d" (List.length ts)
          (List.length pos);
      List.map2
        (fun e t ->
          let te = check env ~tail:false e in
          expect_ty ~loc ~what:"exception argument" t te.Tast.ty;
          te)
        pos ts
  | t ->
      (match args with
      | [ Apos e ] ->
          let te = check env ~tail:false e in
          expect_ty ~loc ~what:"exception argument" t te.Tast.ty;
          [ te ]
      | _ -> err ~loc "exception takes one argument")

and check_call env ~tail ~loc fname (args : arg list) : Tast.texpr =
  (* resolve the callee *)
  let callee, param_tys, param_names, ret =
    match lookup env fname with
    | Some (Blocalfun (id, arg_tys, ret)) ->
        record_call env.current_fn (Ident.name id);
        (Tast.Clocal id, arg_tys, None, ret)
    | Some (Bval (id, T.Fun (arg_tys, ret)))
    | Some (Bmut (id, T.Fun (arg_tys, ret))) ->
        (Tast.Clocal id, arg_tys, None, ret)
    | Some (Bexn _) ->
        err ~loc "'%s' is an exception; use raise to invoke it" fname
    | Some _ -> err ~loc "'%s' is not a function" fname
    | None -> (
        match Hashtbl.find_opt env.globals fname with
        | Some gs ->
            record_call env.current_fn fname;
            ( Tast.Cglobal fname,
              List.map snd gs.gs_params,
              Some (List.map fst gs.gs_params),
              gs.gs_ret )
        | None -> err ~loc "unknown function '%s'" fname)
  in
  ignore tail;
  (* normalize arguments to positional order *)
  let positional =
    let all_named =
      List.for_all (function Anamed _ -> true | Apos _ -> false) args
    in
    if all_named && args <> [] then begin
      match param_names with
      | None -> err ~loc "named arguments require a named-parameter function"
      | Some names ->
          let named =
            List.map
              (function Anamed (n, e) -> (n, e) | Apos _ -> assert false)
              args
          in
          List.iter
            (fun (n, _) ->
              if not (List.mem n names) then
                err ~loc "function '%s' has no parameter '%s'" fname n)
            named;
          List.map
            (fun n ->
              match List.assoc_opt n named with
              | Some e -> e
              | None -> err ~loc "missing argument '%s'" n)
            names
    end
    else
      List.map
        (function
          | Apos e -> e
          | Anamed _ -> err ~loc "cannot mix named and positional arguments")
        args
  in
  if List.length positional <> List.length param_tys then
    err ~loc "function '%s' takes %d arguments, got %d" fname
      (List.length param_tys) (List.length positional);
  let targs =
    List.map2
      (fun e t ->
        let te = check env ~tail:false e in
        expect_ty ~loc ~what:"argument" t te.Tast.ty;
        te)
      positional param_tys
  in
  Tast.mk (Tast.Tcall (callee, targs)) ret loc

(* Check a pack argument against a resolved layout, producing the chosen
   leaves (layout order) paired with their value expressions. *)
and check_pack env ~loc (lay : Layout.t) (arg : expr) :
    (Layout.leaf * Tast.texpr) list =
  (* First determine overlay choices by walking record literals. *)
  let choices : (string list, string) Hashtbl.t = Hashtbl.create 8 in
  let rec walk_choices prefix (node : Layout.t) (e : expr option) =
    match node with
    | Layout.Leaf _ | Layout.Gap _ -> ()
    | Layout.Struct fields ->
        List.iter
          (fun (n, sub) ->
            let sube =
              match e with
              | Some (Record (fs, _)) -> List.assoc_opt n fs
              | _ -> None
            in
            walk_choices (prefix @ [ n ]) sub sube)
          fields
    | Layout.Overlay alts -> (
        match e with
        | Some (Record ([ (n, sube) ], _)) when List.mem_assoc n alts ->
            Hashtbl.replace choices prefix n;
            walk_choices (prefix @ [ n ]) (List.assoc n alts) (Some sube)
        | _ ->
            err ~loc
              "overlay at %s needs a single-alternative record literal"
              (String.concat "." prefix))
    | Layout.Seq ts -> List.iter (fun sub -> walk_choices prefix sub e) ts
  in
  walk_choices [] lay (Some arg);
  let chosen_leaves =
    match
      Layout.leaves_choosing lay ~choose:(fun path ->
          Hashtbl.find_opt choices path)
    with
    | Some ls -> ls
    | None -> err ~loc "pack: could not resolve overlay alternatives"
  in
  (* Locate the value expression for each leaf path. *)
  let rec value_for (e : expr) (path : string list) : Tast.texpr =
    match (path, e) with
    | [], _ ->
        let te = check env ~tail:false e in
        expect_ty ~loc ~what:"packed field" T.Word te.Tast.ty;
        te
    | seg :: rest, Record (fs, _) -> (
        match List.assoc_opt seg fs with
        | Some sub -> value_for sub rest
        | None -> err ~loc "pack: missing field '%s'" seg)
    | segs, _ ->
        (* a non-literal sub-value: synthesize selects along the path *)
        let te = check env ~tail:false e in
        let rec selects (te : Tast.texpr) = function
          | [] ->
              expect_ty ~loc ~what:"packed field" T.Word te.Tast.ty;
              te
          | seg :: rest -> (
              match T.expand te.Tast.ty with
              | T.Record fs -> (
                  match List.assoc_opt seg fs with
                  | Some fty ->
                      selects (Tast.mk (Tast.Tselect (te, seg)) fty loc) rest
                  | None -> err ~loc "pack: value has no field '%s'" seg)
              | t ->
                  err ~loc "pack: cannot select '%s' from %s" seg
                    (T.to_string t))
        in
        selects te segs
  in
  List.map (fun (leaf : Layout.leaf) -> (leaf, value_for arg leaf.Layout.path))
    chosen_leaves

(* ------------------------------------------------------------------ *)
(* Tail-position verification                                          *)
(* ------------------------------------------------------------------ *)

(* After checking, verify that every call to a function in the same
   recursion group as its caller occurs in tail position.  We recompute
   tail positions on the typed tree. *)
let rec verify_tails ~intra_scc ~caller ~tail (e : Tast.texpr) =
  let recurse ?(tail = false) sub = verify_tails ~intra_scc ~caller ~tail sub in
  match e.Tast.desc with
  | Tast.Tint _ | Tast.Tbool _ | Tast.Tunit | Tast.Tvar _ | Tast.Tfunval _
  | Tast.Tcsrread _ | Tast.Tctxarb ->
      ()
  | Tast.Tbinop (_, a, b) ->
      recurse a;
      recurse b
  | Tast.Tunop (_, a) -> recurse a
  | Tast.Ttuple es -> List.iter recurse es
  | Tast.Trecord fs -> List.iter (fun (_, e) -> recurse e) fs
  | Tast.Tselect (e, _) | Tast.Tproj (e, _) -> recurse e
  | Tast.Tif (c, t, f) ->
      recurse c;
      verify_tails ~intra_scc ~caller ~tail t;
      verify_tails ~intra_scc ~caller ~tail f
  | Tast.Tcall (callee, args) ->
      let callee_name =
        match callee with
        | Tast.Cglobal n -> Some n
        | Tast.Clocal id -> Some (Ident.name id)
      in
      (match callee_name with
      | Some n when intra_scc caller n && not tail ->
          Diag.error ~loc:e.Tast.loc
            "recursive call to '%s' must be in tail position (Nova has no \
             stack)"
            n
      | _ -> ());
      List.iter recurse args
  | Tast.Tlet (_, rhs, body) | Tast.Tlettuple (_, rhs, body)
  | Tast.Tvardecl (_, rhs, body) ->
      recurse rhs;
      verify_tails ~intra_scc ~caller ~tail body
  | Tast.Tassign (_, rhs) -> recurse rhs
  | Tast.Tseq (a, b) ->
      recurse a;
      verify_tails ~intra_scc ~caller ~tail b
  | Tast.Twhile (c, b) ->
      recurse c;
      recurse b
  | Tast.Tunpack (_, e) -> recurse e
  | Tast.Tpack (_, pairs) -> List.iter (fun (_, e) -> recurse e) pairs
  | Tast.Tmemread (_, a, _) -> recurse a
  | Tast.Tmemwrite (_, a, v) ->
      recurse a;
      recurse v
  | Tast.Thash e -> recurse e
  | Tast.Tbittestset (a, v) ->
      recurse a;
      recurse v
  | Tast.Tcsrwrite (_, v) -> recurse v
  | Tast.Trfifo (a, _) -> recurse a
  | Tast.Ttfifo (a, v) ->
      recurse a;
      recurse v
  | Tast.Traise (_, args) -> List.iter recurse args
  | Tast.Ttry (body, handlers) ->
      verify_tails ~intra_scc ~caller ~tail:false body;
      List.iter
        (fun (h : Tast.thandler) ->
          verify_tails ~intra_scc ~caller ~tail h.Tast.h_body)
        handlers

(* Tarjan SCC over the recorded call graph. *)
let sccs_of_edges nodes edges =
  let adj = Hashtbl.create 16 in
  List.iter (fun n -> Hashtbl.replace adj n []) nodes;
  List.iter
    (fun (a, b) ->
      if Hashtbl.mem adj a && Hashtbl.mem adj b then
        Hashtbl.replace adj a (b :: Hashtbl.find adj a))
    edges;
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let scc_of = Hashtbl.create 16 in
  let scc_count = ref 0 in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v true;
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w && Hashtbl.find on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Hashtbl.find adj v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let id = !scc_count in
      incr scc_count;
      let rec pop () =
        match !stack with
        | [] -> ()
        | w :: rest ->
            stack := rest;
            Hashtbl.replace on_stack w false;
            Hashtbl.replace scc_of w id;
            if w <> v then pop ()
      in
      pop ()
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) nodes;
  (* self-loop detection: a singleton scc is recursive only with a self
     edge *)
  let self_loop = Hashtbl.create 16 in
  List.iter (fun (a, b) -> if a = b then Hashtbl.replace self_loop a true) edges;
  let scc_sizes = Hashtbl.create 16 in
  Hashtbl.iter
    (fun _ id ->
      Hashtbl.replace scc_sizes id
        (1 + Option.value ~default:0 (Hashtbl.find_opt scc_sizes id)))
    scc_of;
  fun a b ->
    match (Hashtbl.find_opt scc_of a, Hashtbl.find_opt scc_of b) with
    | Some ia, Some ib when ia = ib ->
        Hashtbl.find scc_sizes ia > 1 || Hashtbl.mem self_loop a
    | _ -> false

(* ------------------------------------------------------------------ *)
(* Programs                                                            *)
(* ------------------------------------------------------------------ *)

let check_program_untraced ?(entry = "main") (prog : Ast.program) :
    Tast.tprogram =
  call_edges := [];
  let layouts = Layout.create_env () in
  let globals = Hashtbl.create 16 in
  let base_env = { layouts; globals; locals = []; current_fn = "" } in
  (* pass 1: layouts, consts, function signatures *)
  let consts = ref [] in
  List.iter
    (fun decl ->
      match decl with
      | Dlayout (name, l, _) ->
          let env = { base_env with locals = !consts } in
          Layout.define layouts name (Layout.resolve env.layouts l)
      | Dconst (name, e, _) ->
          let env = { base_env with locals = !consts } in
          consts := (name, Bconst (const_eval env e)) :: !consts
      | Dfun f ->
          let env = { base_env with locals = !consts } in
          let params =
            match f.fn_params with Ppos ps | Pnamed ps -> ps
          in
          let gs_params =
            List.map
              (fun (n, t) ->
                (n, match t with Some t -> elab_ty env t | None -> T.Word))
              params
          in
          let gs_ret =
            match f.fn_ret with Some t -> elab_ty env t | None -> T.Unit
          in
          if not (T.first_order gs_ret) then
            Diag.error ~loc:f.fn_loc
              "function '%s' cannot return a function or exception" f.fn_name;
          if Hashtbl.mem globals f.fn_name then
            Diag.error ~loc:f.fn_loc "duplicate function '%s'" f.fn_name;
          Hashtbl.replace globals f.fn_name { gs_params; gs_ret })
    prog.decls;
  (* pass 2: check bodies *)
  let funs =
    List.filter_map
      (fun decl ->
        match decl with
        | Dlayout _ | Dconst _ -> None
        | Dfun f ->
            let gs = Hashtbl.find globals f.fn_name in
            let f_params =
              List.map (fun (n, t) -> (Ident.fresh n, t)) gs.gs_params
            in
            let locals =
              List.fold_left2
                (fun acc (n, _) (id, t) ->
                  (match t with
                  | T.Exn payload -> (n, Bexn (id, payload))
                  | T.Fun (args, ret) -> (n, Blocalfun (id, args, ret))
                  | _ -> (n, Bval (id, t)))
                  :: acc)
                !consts
                (match f.fn_params with Ppos ps | Pnamed ps -> ps)
                f_params
            in
            let env =
              { base_env with locals; current_fn = f.fn_name }
            in
            let body = check env ~tail:true f.fn_body in
            if not (T.equal body.Tast.ty gs.gs_ret) then
              Diag.error ~loc:f.fn_loc
                "function '%s' returns %s but its body has type %s" f.fn_name
                (T.to_string gs.gs_ret)
                (T.to_string body.Tast.ty);
            Some
              {
                Tast.f_name = f.fn_name;
                f_params;
                f_ret = gs.gs_ret;
                f_body = body;
                f_recursive = false;
              })
      prog.decls
  in
  (* tail-call verification *)
  let nodes = List.map (fun (f : Tast.tfun) -> f.Tast.f_name) funs in
  let intra_scc = sccs_of_edges nodes !call_edges in
  List.iter
    (fun (f : Tast.tfun) ->
      verify_tails ~intra_scc ~caller:f.Tast.f_name ~tail:true f.Tast.f_body)
    funs;
  let funs =
    List.map
      (fun (f : Tast.tfun) ->
        { f with Tast.f_recursive = intra_scc f.Tast.f_name f.Tast.f_name })
      funs
  in
  if not (List.exists (fun (f : Tast.tfun) -> f.Tast.f_name = entry) funs) then
    Diag.error "program has no entry function '%s'" entry;
  { Tast.funs; entry; layouts }

let check_program ?entry (prog : Ast.program) : Tast.tprogram =
  Support.Trace.with_span "typecheck" (fun () ->
      check_program_untraced ?entry prog)
