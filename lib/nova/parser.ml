(* Recursive-descent parser for Nova.

   The grammar (documented in README.md) follows the paper's examples:
   C-like expression syntax, `let`/`var` bindings inside `{}` blocks,
   layouts with overlays and `##` concatenation, `pack[l] r` /
   `unpack[l](e)`, memory operations `sram(a)` / `sram(a) <- (…)`, and
   `try { … } handle X (…) { … }`. *)

open Support
open Ast

type t = { toks : Lexer.lexeme array; mutable pos : int }

let make toks = { toks; pos = 0 }

let peek p = p.toks.(p.pos).Lexer.tok
let peek_loc p = p.toks.(p.pos).Lexer.loc
let peek2 p =
  if p.pos + 1 < Array.length p.toks then p.toks.(p.pos + 1).Lexer.tok
  else Lexer.EOF

let advance p = if p.pos < Array.length p.toks - 1 then p.pos <- p.pos + 1

let error p fmt =
  Diag.error ~loc:(peek_loc p) ("parse error: " ^^ fmt)

let expect p tok =
  if peek p = tok then advance p
  else
    error p "expected '%s' but found '%s'" (Lexer.token_to_string tok)
      (Lexer.token_to_string (peek p))

let accept p tok =
  if peek p = tok then begin
    advance p;
    true
  end
  else false

let ident p =
  match peek p with
  | Lexer.IDENT s ->
      advance p;
      s
  | t -> error p "expected identifier, found '%s'" (Lexer.token_to_string t)

let int_lit p =
  match peek p with
  | Lexer.INT i ->
      advance p;
      i
  | t -> error p "expected integer, found '%s'" (Lexer.token_to_string t)

(* comma-separated list, terminated by [stop] (not consumed) *)
let rec sep_list p ~stop item =
  if peek p = stop then []
  else begin
    let x = item p in
    if accept p Lexer.COMMA then x :: sep_list p ~stop item else [ x ]
  end

(* ------------------------------------------------------------------ *)
(* Layout expressions                                                  *)
(* ------------------------------------------------------------------ *)

let rec layout_expr p =
  let l = layout_primary p in
  if accept p Lexer.HASHHASH then Lconcat (l, layout_expr p) else l

and layout_primary p =
  let loc = peek_loc p in
  match peek p with
  | Lexer.IDENT name ->
      advance p;
      Lname (name, loc)
  | Lexer.LBRACE -> (
      advance p;
      (* {N} is a gap; otherwise a field list *)
      match (peek p, peek2 p) with
      | Lexer.INT n, Lexer.RBRACE ->
          advance p;
          advance p;
          Lgap (n, loc)
      | _ ->
          let fields = sep_list p ~stop:Lexer.RBRACE field in
          expect p Lexer.RBRACE;
          Lfields (fields, loc))
  | t -> error p "expected layout expression, found '%s'" (Lexer.token_to_string t)

and field p =
  let floc = peek_loc p in
  let fname = ident p in
  expect p Lexer.COLON;
  let fty = field_type p in
  { fname; fty; floc }

and field_type p =
  match peek p with
  | Lexer.INT n ->
      advance p;
      Fbits n
  | Lexer.KW_overlay ->
      advance p;
      expect p Lexer.LBRACE;
      let rec alts () =
        let name = ident p in
        expect p Lexer.COLON;
        let ty = field_type p in
        if accept p Lexer.BAR then (name, ty) :: alts () else [ (name, ty) ]
      in
      let alternatives = alts () in
      expect p Lexer.RBRACE;
      Foverlay alternatives
  | _ -> Fsub (layout_expr p)

(* ------------------------------------------------------------------ *)
(* Types                                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_ty p =
  let loc = peek_loc p in
  match peek p with
  | Lexer.KW_word ->
      advance p;
      Tword loc
  | Lexer.KW_bool ->
      advance p;
      Tbool loc
  | Lexer.KW_unit ->
      advance p;
      Tunit loc
  | Lexer.KW_packed ->
      advance p;
      expect p Lexer.LPAREN;
      let l = layout_expr p in
      expect p Lexer.RPAREN;
      Tpacked (l, loc)
  | Lexer.KW_unpacked ->
      advance p;
      expect p Lexer.LPAREN;
      let l = layout_expr p in
      expect p Lexer.RPAREN;
      Tunpacked (l, loc)
  | Lexer.KW_exn ->
      advance p;
      expect p Lexer.LPAREN;
      let t = if peek p = Lexer.RPAREN then Tunit loc else parse_ty p in
      expect p Lexer.RPAREN;
      Texn (t, loc)
  | Lexer.KW_fun ->
      advance p;
      expect p Lexer.LPAREN;
      let args = sep_list p ~stop:Lexer.RPAREN parse_ty in
      expect p Lexer.RPAREN;
      expect p Lexer.COLON;
      let ret = parse_ty p in
      Tfun (args, ret, loc)
  | Lexer.LPAREN ->
      advance p;
      let ts = sep_list p ~stop:Lexer.RPAREN parse_ty in
      expect p Lexer.RPAREN;
      (match ts with [ t ] -> t | _ -> Ttuple (ts, loc))
  | Lexer.LBRACKET ->
      advance p;
      let fields =
        sep_list p ~stop:Lexer.RBRACKET (fun p ->
            let n = ident p in
            expect p Lexer.COLON;
            let t = parse_ty p in
            (n, t))
      in
      expect p Lexer.RBRACKET;
      Trecord (fields, loc)
  | t -> error p "expected type, found '%s'" (Lexer.token_to_string t)

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* precedence (low to high):
   ||  &&  |  ^  &  ==/!=  </<=/>/>=/ult/uge  <</>>/>>>  +/-  *
   unary  postfix(.field)  primary *)

let binop_of_token = function
  | Lexer.OROR -> Some (LOr, 0)
  | Lexer.ANDAND -> Some (LAnd, 1)
  | Lexer.BAR -> Some (Or, 2)
  | Lexer.CARET -> Some (Xor, 3)
  | Lexer.AMP -> Some (And, 4)
  | Lexer.EQEQ -> Some (Eq, 5)
  | Lexer.NEQ -> Some (Ne, 5)
  | Lexer.LT -> Some (Lt, 6)
  | Lexer.LE -> Some (Le, 6)
  | Lexer.GT -> Some (Gt, 6)
  | Lexer.GE -> Some (Ge, 6)
  | Lexer.ULT -> Some (Ult, 6)
  | Lexer.UGE -> Some (Uge, 6)
  | Lexer.SHL -> Some (Shl, 7)
  | Lexer.SHR -> Some (Shr, 7)
  | Lexer.ASR_OP -> Some (Asr, 7)
  | Lexer.PLUS -> Some (Add, 8)
  | Lexer.MINUS -> Some (Sub, 8)
  | Lexer.STAR -> Some (Mul, 9)
  | _ -> None

let rec expr p = binary p 0

and binary p min_prec =
  let lhs = ref (unary p) in
  let continue = ref true in
  while !continue do
    match binop_of_token (peek p) with
    | Some (op, prec) when prec >= min_prec ->
        let loc = peek_loc p in
        advance p;
        let rhs = binary p (prec + 1) in
        lhs := Binop (op, !lhs, rhs, loc)
    | _ -> continue := false
  done;
  !lhs

and unary p =
  let loc = peek_loc p in
  match peek p with
  | Lexer.BANG ->
      advance p;
      Unop (LNot, unary p, loc)
  | Lexer.TILDE ->
      advance p;
      Unop (Not, unary p, loc)
  | Lexer.MINUS ->
      advance p;
      Unop (Neg, unary p, loc)
  | _ -> postfix p

and postfix p =
  let e = ref (primary p) in
  let continue = ref true in
  while !continue do
    if peek p = Lexer.DOT then begin
      let loc = peek_loc p in
      advance p;
      match peek p with
      | Lexer.INT i ->
          advance p;
          e := Proj (!e, i, loc)
      | _ ->
          let f = ident p in
          e := Select (!e, f, loc)
    end
    else continue := false
  done;
  !e

and call_args p =
  (* positional: (e, …); named: [x = e, …] *)
  if peek p = Lexer.LPAREN then begin
    advance p;
    let args = sep_list p ~stop:Lexer.RPAREN (fun p -> Apos (expr p)) in
    expect p Lexer.RPAREN;
    args
  end
  else begin
    expect p Lexer.LBRACKET;
    let args =
      sep_list p ~stop:Lexer.RBRACKET (fun p ->
          let n = ident p in
          expect p Lexer.EQUALS;
          Anamed (n, expr p))
    in
    expect p Lexer.RBRACKET;
    args
  end

and primary p =
  let loc = peek_loc p in
  match peek p with
  | Lexer.INT i ->
      advance p;
      Int (i, loc)
  | Lexer.KW_true ->
      advance p;
      Bool (true, loc)
  | Lexer.KW_false ->
      advance p;
      Bool (false, loc)
  | Lexer.IDENT name -> (
      advance p;
      match peek p with
      | Lexer.LPAREN | Lexer.LBRACKET ->
          (* f(args) or f[named args]; bare idents followed by a record
             literal are always calls in this grammar *)
          Call (name, call_args p, loc)
      | _ -> Var (name, loc))
  | Lexer.LPAREN ->
      advance p;
      if accept p Lexer.RPAREN then Unit loc
      else begin
        let es = sep_list p ~stop:Lexer.RPAREN expr in
        expect p Lexer.RPAREN;
        match es with [ e ] -> e | _ -> Tuple (es, loc)
      end
  | Lexer.LBRACKET ->
      advance p;
      let fields =
        sep_list p ~stop:Lexer.RBRACKET (fun p ->
            let n = ident p in
            expect p Lexer.EQUALS;
            (n, expr p))
      in
      expect p Lexer.RBRACKET;
      Record (fields, loc)
  | Lexer.KW_if ->
      advance p;
      expect p Lexer.LPAREN;
      let c = expr p in
      expect p Lexer.RPAREN;
      let then_ = block_or_expr p in
      if accept p Lexer.KW_else then
        let else_ = block_or_expr p in
        If (c, then_, else_, loc)
      else If (c, then_, Unit loc, loc)
  | Lexer.KW_unpack ->
      advance p;
      expect p Lexer.LBRACKET;
      let l = layout_expr p in
      expect p Lexer.RBRACKET;
      expect p Lexer.LPAREN;
      let e = expr p in
      expect p Lexer.RPAREN;
      Unpack (l, e, loc)
  | Lexer.KW_pack ->
      advance p;
      expect p Lexer.LBRACKET;
      let l = layout_expr p in
      expect p Lexer.RBRACKET;
      let r = primary p in
      Pack (l, r, loc)
  | Lexer.KW_sram | Lexer.KW_sdram | Lexer.KW_scratch ->
      let space =
        match peek p with
        | Lexer.KW_sram -> Sram
        | Lexer.KW_sdram -> Sdram
        | _ -> Scratch
      in
      advance p;
      expect p Lexer.LPAREN;
      let addr = expr p in
      let count = if accept p Lexer.COMMA then Some (int_lit p) else None in
      expect p Lexer.RPAREN;
      MemRead (space, addr, count, loc)
  | Lexer.KW_hash ->
      advance p;
      expect p Lexer.LPAREN;
      let e = expr p in
      expect p Lexer.RPAREN;
      Hash (e, loc)
  | Lexer.KW_bit_test_set ->
      advance p;
      expect p Lexer.LPAREN;
      let a = expr p in
      expect p Lexer.COMMA;
      let v = expr p in
      expect p Lexer.RPAREN;
      BitTestSet (a, v, loc)
  | Lexer.KW_csr ->
      advance p;
      expect p Lexer.LPAREN;
      let name =
        match peek p with
        | Lexer.STRING s ->
            advance p;
            s
        | _ -> ident p
      in
      expect p Lexer.RPAREN;
      CsrRead (name, loc)
  | Lexer.KW_rfifo ->
      advance p;
      expect p Lexer.LPAREN;
      let a = expr p in
      expect p Lexer.COMMA;
      let n = int_lit p in
      expect p Lexer.RPAREN;
      RfifoRead (a, n, loc)
  | Lexer.KW_ctx_arb ->
      advance p;
      expect p Lexer.LPAREN;
      expect p Lexer.RPAREN;
      CtxArb loc
  | Lexer.KW_raise ->
      advance p;
      let name = ident p in
      let args =
        match peek p with
        | Lexer.LPAREN | Lexer.LBRACKET -> call_args p
        | _ -> []
      in
      Raise (name, args, loc)
  | Lexer.KW_try ->
      advance p;
      let body = block p in
      let rec handlers () =
        if peek p = Lexer.KW_handle then begin
          let hloc = peek_loc p in
          advance p;
          let hexn = ident p in
          let hparams = handler_params p in
          let hbody = block p in
          { hexn; hparams; hbody; hloc } :: handlers ()
        end
        else []
      in
      let hs = handlers () in
      if hs = [] then error p "try block needs at least one handler";
      Try (body, hs, loc)
  | Lexer.LBRACE -> block p
  | t -> error p "expected expression, found '%s'" (Lexer.token_to_string t)

and handler_params p =
  (* handle X (…)  or  handle X [b, c]  — names with optional types *)
  let item p =
    let n = ident p in
    let t = if accept p Lexer.COLON then Some (parse_ty p) else None in
    (n, t)
  in
  if accept p Lexer.LPAREN then begin
    let ps = sep_list p ~stop:Lexer.RPAREN item in
    expect p Lexer.RPAREN;
    ps
  end
  else begin
    expect p Lexer.LBRACKET;
    let ps = sep_list p ~stop:Lexer.RBRACKET item in
    expect p Lexer.RBRACKET;
    ps
  end

and block_or_expr p = if peek p = Lexer.LBRACE then block p else expr p

(* A `{}` block: a sequence of statements with an optional trailing
   expression as its value. *)
and block p =
  let loc = peek_loc p in
  expect p Lexer.LBRACE;
  let body = block_items p in
  expect p Lexer.RBRACE;
  ignore loc;
  body

and block_items p =
  let loc = peek_loc p in
  if peek p = Lexer.RBRACE then Unit loc
  else if peek p = Lexer.KW_let then begin
    advance p;
    let pat =
      if accept p Lexer.LPAREN then begin
        let names = sep_list p ~stop:Lexer.RPAREN ident in
        expect p Lexer.RPAREN;
        Ptuple (names, loc)
      end
      else Pvar (ident p, loc)
    in
    let ty = if accept p Lexer.COLON then Some (parse_ty p) else None in
    expect p Lexer.EQUALS;
    let rhs = expr p in
    expect p Lexer.SEMI;
    let body = block_items p in
    Let (pat, ty, rhs, body, loc)
  end
  else if peek p = Lexer.KW_var then begin
    advance p;
    let name = ident p in
    let ty = if accept p Lexer.COLON then Some (parse_ty p) else None in
    expect p Lexer.EQUALS;
    let rhs = expr p in
    expect p Lexer.SEMI;
    let body = block_items p in
    Vardecl (name, ty, rhs, body, loc)
  end
  else if peek p = Lexer.KW_while then begin
    advance p;
    expect p Lexer.LPAREN;
    let c = expr p in
    expect p Lexer.RPAREN;
    let body = block p in
    ignore (accept p Lexer.SEMI);
    let rest = block_items p in
    Seq (While (c, body, loc), rest, loc)
  end
  else begin
    (* assignment, memory/CSR/FIFO write, or expression *)
    match (peek p, peek2 p) with
    | Lexer.IDENT x, Lexer.ASSIGN ->
        advance p;
        advance p;
        let rhs = expr p in
        expect p Lexer.SEMI;
        let rest = block_items p in
        Seq (Assign (x, rhs, loc), rest, loc)
    | Lexer.KW_tfifo, _ ->
        advance p;
        expect p Lexer.LPAREN;
        let addr = expr p in
        expect p Lexer.RPAREN;
        expect p Lexer.LARROW;
        let v = expr p in
        expect p Lexer.SEMI;
        let rest = block_items p in
        Seq (TfifoWrite (addr, v, loc), rest, loc)
    | (Lexer.KW_sram | Lexer.KW_sdram | Lexer.KW_scratch | Lexer.KW_csr), _
      -> (
        (* could be a read (expression) or a write (`… <- e`) *)
        let e = expr p in
        match (e, peek p) with
        | MemRead (space, addr, None, l), Lexer.LARROW ->
            advance p;
            let v = expr p in
            expect p Lexer.SEMI;
            let rest = block_items p in
            Seq (MemWrite (space, addr, v, l), rest, loc)
        | CsrRead (name, l), Lexer.LARROW ->
            advance p;
            let v = expr p in
            expect p Lexer.SEMI;
            let rest = block_items p in
            Seq (CsrWrite (name, v, l), rest, loc)
        | _ -> finish_expr_item p e loc)
    | _ ->
        let e = expr p in
        if peek p = Lexer.LARROW then
          error p "left-hand side cannot be assigned with <-"
        else finish_expr_item p e loc
  end

and finish_expr_item p e loc =
  if accept p Lexer.SEMI then
    let rest = block_items p in
    Seq (e, rest, loc)
  else if peek p = Lexer.RBRACE then e
  else
    match e with
    | If _ | Try _ ->
        (* block-shaped statements may omit the semicolon *)
        let rest = block_items p in
        Seq (e, rest, loc)
    | _ ->
        error p "expected ';' or '}' after expression, found '%s'"
          (Lexer.token_to_string (peek p))

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let parse_param p =
  if accept p Lexer.LPAREN then begin
    let items =
      sep_list p ~stop:Lexer.RPAREN (fun p ->
          let n = ident p in
          let t = if accept p Lexer.COLON then Some (parse_ty p) else None in
          (n, t))
    in
    expect p Lexer.RPAREN;
    Ppos items
  end
  else begin
    expect p Lexer.LBRACKET;
    let items =
      sep_list p ~stop:Lexer.RBRACKET (fun p ->
          let n = ident p in
          let t = if accept p Lexer.COLON then Some (parse_ty p) else None in
          (n, t))
    in
    expect p Lexer.RBRACKET;
    Pnamed items
  end

let topdecl p =
  let loc = peek_loc p in
  match peek p with
  | Lexer.KW_layout ->
      advance p;
      let name = ident p in
      expect p Lexer.EQUALS;
      let l = layout_expr p in
      expect p Lexer.SEMI;
      Dlayout (name, l, loc)
  | Lexer.KW_const ->
      advance p;
      let name = ident p in
      expect p Lexer.EQUALS;
      let e = expr p in
      expect p Lexer.SEMI;
      Dconst (name, e, loc)
  | Lexer.KW_fun ->
      advance p;
      let fn_name = ident p in
      let fn_params = parse_param p in
      let fn_ret = if accept p Lexer.COLON then Some (parse_ty p) else None in
      let fn_body = block p in
      Dfun { fn_name; fn_params; fn_ret; fn_body; fn_loc = loc }
  | t ->
      error p "expected 'layout', 'const' or 'fun', found '%s'"
        (Lexer.token_to_string t)

let program p =
  let rec go acc =
    if peek p = Lexer.EOF then List.rev acc else go (topdecl p :: acc)
  in
  { decls = go [] }

let parse_string ~file src =
  Support.Trace.with_span "parse"
    ~args:[ ("file", Support.Trace.Str file) ]
    (fun () ->
      let toks = Lexer.tokenize ~file src in
      let p = make toks in
      program p)

let parse_expr_string ~file src =
  let toks = Lexer.tokenize ~file src in
  let p = make toks in
  let e = expr p in
  if peek p <> Lexer.EOF then error p "trailing tokens after expression";
  e
