(* Pretty-printer for Nova surface syntax.

   The output is guaranteed to re-parse: [parse_string (program_to_string p)]
   yields a program structurally equal to [p] (up to source locations, see
   [equal_program]) for every program the parser or the fuzzer's generator
   can produce.  This is the foundation of the fuzzer's round-trip oracle
   (generate typed AST -> print -> re-parse -> re-typecheck) and of the
   replayable counterexample corpus: a shrunk AST is written back out as
   ordinary Nova source.

   Printing subtleties pinned down by the grammar in [Parser]:
     - binary operators are printed with the parser's precedence table;
       right operands at [prec + 1] because the grammar is left-associative;
     - [pack[l] e] takes a *primary* operand, so anything with a postfix or
       operator spine is parenthesized;
     - statements ([let]/[var]/[while]/[:=]/[<-]) exist only inside `{}`
       blocks; the [Seq]/[Let]/[Vardecl] spine of a block is printed as a
       statement list with a trailing expression, and a trailing [Unit] is
       printed as nothing (the parser returns [Unit] for an empty tail);
     - [if]/[try] branches are always printed as blocks, which keeps the
       dangling-else and statement-vs-expression ambiguities away. *)

open Support
open Ast

(* ------------------------------------------------------------------ *)
(* Buffers and indentation                                             *)
(* ------------------------------------------------------------------ *)

type ctx = { buf : Buffer.t; mutable ind : int }

let adds ctx s = Buffer.add_string ctx.buf s
let addf ctx fmt = Printf.ksprintf (adds ctx) fmt
let newline ctx =
  Buffer.add_char ctx.buf '\n';
  Buffer.add_string ctx.buf (String.make (2 * ctx.ind) ' ')

let is_plain_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s
  && not (List.mem_assoc s Lexer.keyword_table)

let int_literal i =
  let i = if i < 0 then i land 0xFFFFFFFF else i in
  if i < 256 then string_of_int i else Printf.sprintf "0x%x" i

(* ------------------------------------------------------------------ *)
(* Layouts and types                                                   *)
(* ------------------------------------------------------------------ *)

let rec pp_layout ctx = function
  | Lname (n, _) -> adds ctx n
  | Lgap (n, _) -> addf ctx "{%d}" n
  | Lfields (fs, _) ->
      adds ctx "{";
      List.iteri
        (fun i f ->
          if i > 0 then adds ctx ", ";
          adds ctx f.fname;
          adds ctx " : ";
          pp_field_type ctx f.fty)
        fs;
      adds ctx "}"
  | Lconcat (a, b) ->
      pp_layout ctx a;
      adds ctx " ## ";
      pp_layout ctx b

and pp_field_type ctx = function
  | Fbits n -> addf ctx "%d" n
  | Fsub l -> pp_layout ctx l
  | Foverlay alts ->
      adds ctx "overlay {";
      List.iteri
        (fun i (n, ft) ->
          if i > 0 then adds ctx " | ";
          adds ctx n;
          adds ctx " : ";
          pp_field_type ctx ft)
        alts;
      adds ctx "}"

let rec pp_ty ctx = function
  | Tword _ -> adds ctx "word"
  | Tbool _ -> adds ctx "bool"
  | Tunit _ -> adds ctx "unit"
  | Ttuple (ts, _) ->
      adds ctx "(";
      List.iteri
        (fun i t ->
          if i > 0 then adds ctx ", ";
          pp_ty ctx t)
        ts;
      adds ctx ")"
  | Trecord (fs, _) ->
      adds ctx "[";
      List.iteri
        (fun i (n, t) ->
          if i > 0 then adds ctx ", ";
          adds ctx n;
          adds ctx " : ";
          pp_ty ctx t)
        fs;
      adds ctx "]"
  | Tpacked (l, _) ->
      adds ctx "packed(";
      pp_layout ctx l;
      adds ctx ")"
  | Tunpacked (l, _) ->
      adds ctx "unpacked(";
      pp_layout ctx l;
      adds ctx ")"
  | Tfun (args, ret, _) ->
      adds ctx "fun(";
      List.iteri
        (fun i t ->
          if i > 0 then adds ctx ", ";
          pp_ty ctx t)
        args;
      adds ctx ") : ";
      pp_ty ctx ret
  | Texn (t, _) ->
      adds ctx "exn(";
      pp_ty ctx t;
      adds ctx ")"

(* ------------------------------------------------------------------ *)
(* Expressions                                                         *)
(* ------------------------------------------------------------------ *)

(* Precedence levels, matching [Parser.binop_of_token]; unary binds at 10,
   postfix selection at 11, self-delimiting primaries at 12. *)
let binop_prec = function
  | LOr -> 0
  | LAnd -> 1
  | Or -> 2
  | Xor -> 3
  | And -> 4
  | Eq | Ne -> 5
  | Lt | Le | Gt | Ge | Ult | Uge -> 6
  | Shl | Shr | Asr -> 7
  | Add | Sub -> 8
  | Mul -> 9

let expr_prec = function
  | Binop (op, _, _, _) -> binop_prec op
  | Unop _ -> 10
  | Select _ | Proj _ -> 11
  (* statement-shaped nodes are printed as `{ stmt }` blocks when forced
     into expression position, which is self-delimiting *)
  | _ -> 12

let rec pp_expr ctx ~prec e =
  let self = expr_prec e in
  let wrap = self < prec in
  if wrap then adds ctx "(";
  (match e with
  | Int (i, _) -> adds ctx (int_literal i)
  | Bool (b, _) -> adds ctx (if b then "true" else "false")
  | Var (x, _) -> adds ctx x
  | Binop (op, a, b, _) ->
      pp_expr ctx ~prec:self a;
      addf ctx " %s " (binop_to_string op);
      pp_expr ctx ~prec:(self + 1) b
  | Unop (op, a, _) ->
      adds ctx (match op with Not -> "~" | Neg -> "-" | LNot -> "!");
      pp_expr ctx ~prec:10 a
  | Tuple (es, _) ->
      adds ctx "(";
      List.iteri
        (fun i e ->
          if i > 0 then adds ctx ", ";
          pp_expr ctx ~prec:0 e)
        es;
      adds ctx ")"
  | Record (fs, _) ->
      adds ctx "[";
      List.iteri
        (fun i (n, e) ->
          if i > 0 then adds ctx ", ";
          addf ctx "%s = " n;
          pp_expr ctx ~prec:0 e)
        fs;
      adds ctx "]"
  | Select (e, f, _) ->
      pp_expr ctx ~prec:11 e;
      addf ctx ".%s" f
  | Proj (e, i, _) ->
      pp_expr ctx ~prec:11 e;
      addf ctx ".%d" i
  | If (c, t, f, _) ->
      adds ctx "if (";
      pp_expr ctx ~prec:0 c;
      adds ctx ") ";
      pp_block ctx t;
      (match f with
      | Unit _ -> ()
      | _ ->
          adds ctx " else ";
          pp_block ctx f)
  | Call (name, args, _) ->
      adds ctx name;
      pp_args ctx args
  | Let _ | Vardecl _ | Seq _ | While _ | Assign _ | MemWrite _ | CsrWrite _
  | TfifoWrite _ ->
      (* statement spines forced into expression position print as a block *)
      pp_block ctx e
  | Unpack (l, e, _) ->
      adds ctx "unpack[";
      pp_layout ctx l;
      adds ctx "](";
      pp_expr ctx ~prec:0 e;
      adds ctx ")"
  | Pack (l, e, _) ->
      adds ctx "pack[";
      pp_layout ctx l;
      adds ctx "] ";
      (* operand must be a primary: parenthesize postfix/operator spines *)
      (match e with
      | Record _ | Var _ | Int _ | Bool _ | Tuple _ | Unit _ ->
          pp_expr ctx ~prec:12 e
      | _ ->
          adds ctx "(";
          pp_expr ctx ~prec:0 e;
          adds ctx ")")
  | MemRead (space, addr, count, _) ->
      addf ctx "%s(" (mem_space_to_string space);
      pp_expr ctx ~prec:0 addr;
      (match count with None -> () | Some n -> addf ctx ", %d" n);
      adds ctx ")"
  | Hash (e, _) ->
      adds ctx "hash(";
      pp_expr ctx ~prec:0 e;
      adds ctx ")"
  | BitTestSet (a, v, _) ->
      adds ctx "bit_test_set(";
      pp_expr ctx ~prec:0 a;
      adds ctx ", ";
      pp_expr ctx ~prec:0 v;
      adds ctx ")"
  | CsrRead (name, _) ->
      if is_plain_ident name then addf ctx "csr(%s)" name
      else addf ctx "csr(%S)" name
  | RfifoRead (a, n, _) ->
      adds ctx "rfifo(";
      pp_expr ctx ~prec:0 a;
      addf ctx ", %d)" n
  | CtxArb _ -> adds ctx "ctx_arb()"
  | Raise (name, args, _) ->
      addf ctx "raise %s" name;
      if args <> [] then pp_args ctx args
  | Try (body, handlers, _) ->
      adds ctx "try ";
      pp_block ctx body;
      List.iter
        (fun h ->
          addf ctx " handle %s (" h.hexn;
          List.iteri
            (fun i (n, t) ->
              if i > 0 then adds ctx ", ";
              adds ctx n;
              match t with
              | None -> ()
              | Some t ->
                  adds ctx " : ";
                  pp_ty ctx t)
            h.hparams;
          adds ctx ") ";
          pp_block ctx h.hbody)
        handlers
  | Unit _ -> adds ctx "()");
  if wrap then adds ctx ")"

and pp_args ctx args =
  let named = List.exists (function Anamed _ -> true | Apos _ -> false) args in
  if named then begin
    adds ctx "[";
    List.iteri
      (fun i a ->
        if i > 0 then adds ctx ", ";
        match a with
        | Anamed (n, e) ->
            addf ctx "%s = " n;
            pp_expr ctx ~prec:0 e
        | Apos e -> pp_expr ctx ~prec:0 e)
      args;
    adds ctx "]"
  end
  else begin
    adds ctx "(";
    List.iteri
      (fun i a ->
        if i > 0 then adds ctx ", ";
        match a with
        | Apos e -> pp_expr ctx ~prec:0 e
        | Anamed _ -> assert false)
      args;
    adds ctx ")"
  end

(* A `{}` block: print the statement spine, then the trailing expression.
   The parser returns [Unit] for an empty tail, so a trailing [Unit] prints
   as nothing. *)
and pp_block ctx e =
  adds ctx "{";
  ctx.ind <- ctx.ind + 1;
  let printed = pp_stmts ctx e in
  ctx.ind <- ctx.ind - 1;
  if printed then newline ctx;
  adds ctx "}"

(* Returns true if anything was printed (controls the closing newline). *)
and pp_stmts ctx e =
  match e with
  | Unit _ -> false
  | Let (pat, ty, rhs, body, _) ->
      newline ctx;
      adds ctx "let ";
      (match pat with
      | Pvar (x, _) -> adds ctx x
      | Ptuple (xs, _) -> addf ctx "(%s)" (String.concat ", " xs));
      (match ty with
      | None -> ()
      | Some t ->
          adds ctx " : ";
          pp_ty ctx t);
      adds ctx " = ";
      pp_expr ctx ~prec:0 rhs;
      adds ctx ";";
      ignore (pp_stmts ctx body);
      true
  | Vardecl (x, ty, rhs, body, _) ->
      newline ctx;
      addf ctx "var %s" x;
      (match ty with
      | None -> ()
      | Some t ->
          adds ctx " : ";
          pp_ty ctx t);
      adds ctx " = ";
      pp_expr ctx ~prec:0 rhs;
      adds ctx ";";
      ignore (pp_stmts ctx body);
      true
  | Seq (s, rest, _) ->
      pp_stmt_one ctx s;
      ignore (pp_stmts ctx rest);
      true
  | e ->
      (* trailing value expression; no ';' needed before '}' *)
      newline ctx;
      pp_expr ctx ~prec:0 e;
      true

and pp_stmt_one ctx s =
  newline ctx;
  match s with
  | While (c, body, _) ->
      adds ctx "while (";
      pp_expr ctx ~prec:0 c;
      adds ctx ") ";
      pp_block ctx body
  | Assign (x, e, _) ->
      addf ctx "%s := " x;
      pp_expr ctx ~prec:0 e;
      adds ctx ";"
  | MemWrite (space, addr, v, _) ->
      addf ctx "%s(" (mem_space_to_string space);
      pp_expr ctx ~prec:0 addr;
      adds ctx ") <- ";
      pp_expr ctx ~prec:0 v;
      adds ctx ";"
  | CsrWrite (name, v, _) ->
      if is_plain_ident name then addf ctx "csr(%s) <- " name
      else addf ctx "csr(%S) <- " name;
      pp_expr ctx ~prec:0 v;
      adds ctx ";"
  | TfifoWrite (addr, v, _) ->
      adds ctx "tfifo(";
      pp_expr ctx ~prec:0 addr;
      adds ctx ") <- ";
      pp_expr ctx ~prec:0 v;
      adds ctx ";"
  | (If _ | Try _) as e ->
      (* The grammar lets block-shaped statements omit the ';', but we
         always print one: without it, a following expression that
         starts with a binop-continuation token (`- e`) would be
         swallowed into the statement as a binary operand on re-parse.
         Found by `novac fuzz` (print/re-parse stage). *)
      pp_expr ctx ~prec:0 e;
      adds ctx ";"
  | e ->
      pp_expr ctx ~prec:0 e;
      adds ctx ";"

(* ------------------------------------------------------------------ *)
(* Declarations                                                        *)
(* ------------------------------------------------------------------ *)

let pp_param ctx = function
  | Ppos items ->
      adds ctx "(";
      List.iteri
        (fun i (n, t) ->
          if i > 0 then adds ctx ", ";
          adds ctx n;
          match t with
          | None -> ()
          | Some t ->
              adds ctx " : ";
              pp_ty ctx t)
        items;
      adds ctx ")"
  | Pnamed items ->
      adds ctx "[";
      List.iteri
        (fun i (n, t) ->
          if i > 0 then adds ctx ", ";
          adds ctx n;
          match t with
          | None -> ()
          | Some t ->
              adds ctx " : ";
              pp_ty ctx t)
        items;
      adds ctx "]"

let pp_topdecl ctx = function
  | Dlayout (name, l, _) ->
      addf ctx "layout %s = " name;
      pp_layout ctx l;
      adds ctx ";"
  | Dconst (name, e, _) ->
      addf ctx "const %s = " name;
      pp_expr ctx ~prec:0 e;
      adds ctx ";"
  | Dfun f ->
      addf ctx "fun %s " f.fn_name;
      pp_param ctx f.fn_params;
      (match f.fn_ret with
      | None -> ()
      | Some t ->
          adds ctx " : ";
          pp_ty ctx t);
      adds ctx " ";
      pp_block ctx f.fn_body

let program_to_string (p : program) =
  let ctx = { buf = Buffer.create 1024; ind = 0 } in
  List.iteri
    (fun i d ->
      if i > 0 then adds ctx "\n\n";
      pp_topdecl ctx d)
    p.decls;
  adds ctx "\n";
  Buffer.contents ctx.buf

let expr_to_string e =
  let ctx = { buf = Buffer.create 256; ind = 0 } in
  pp_expr ctx ~prec:0 e;
  Buffer.contents ctx.buf

(* ------------------------------------------------------------------ *)
(* Structural equality modulo source locations                         *)
(* ------------------------------------------------------------------ *)

let dummy = Srcloc.dummy

let rec strip_layout = function
  | Lname (n, _) -> Lname (n, dummy)
  | Lgap (n, _) -> Lgap (n, dummy)
  | Lfields (fs, _) ->
      Lfields
        ( List.map
            (fun f -> { f with fty = strip_field_type f.fty; floc = dummy })
            fs,
          dummy )
  | Lconcat (a, b) -> Lconcat (strip_layout a, strip_layout b)

and strip_field_type = function
  | Fbits n -> Fbits n
  | Fsub l -> Fsub (strip_layout l)
  | Foverlay alts ->
      Foverlay (List.map (fun (n, ft) -> (n, strip_field_type ft)) alts)

let rec strip_ty = function
  | Tword _ -> Tword dummy
  | Tbool _ -> Tbool dummy
  | Tunit _ -> Tunit dummy
  | Ttuple (ts, _) -> Ttuple (List.map strip_ty ts, dummy)
  | Trecord (fs, _) ->
      Trecord (List.map (fun (n, t) -> (n, strip_ty t)) fs, dummy)
  | Tpacked (l, _) -> Tpacked (strip_layout l, dummy)
  | Tunpacked (l, _) -> Tunpacked (strip_layout l, dummy)
  | Tfun (args, ret, _) -> Tfun (List.map strip_ty args, strip_ty ret, dummy)
  | Texn (t, _) -> Texn (strip_ty t, dummy)

let strip_pat = function
  | Pvar (x, _) -> Pvar (x, dummy)
  | Ptuple (xs, _) -> Ptuple (xs, dummy)

let rec strip_expr = function
  | Int (i, _) -> Int (i, dummy)
  | Bool (b, _) -> Bool (b, dummy)
  | Var (x, _) -> Var (x, dummy)
  | Binop (op, a, b, _) -> Binop (op, strip_expr a, strip_expr b, dummy)
  | Unop (op, a, _) -> Unop (op, strip_expr a, dummy)
  | Tuple (es, _) -> Tuple (List.map strip_expr es, dummy)
  | Record (fs, _) ->
      Record (List.map (fun (n, e) -> (n, strip_expr e)) fs, dummy)
  | Select (e, f, _) -> Select (strip_expr e, f, dummy)
  | Proj (e, i, _) -> Proj (strip_expr e, i, dummy)
  | If (c, t, f, _) -> If (strip_expr c, strip_expr t, strip_expr f, dummy)
  | Call (name, args, _) -> Call (name, List.map strip_arg args, dummy)
  | Let (p, ty, rhs, body, _) ->
      Let (strip_pat p, Option.map strip_ty ty, strip_expr rhs, strip_expr body,
           dummy)
  | Vardecl (x, ty, rhs, body, _) ->
      Vardecl (x, Option.map strip_ty ty, strip_expr rhs, strip_expr body,
               dummy)
  | Assign (x, e, _) -> Assign (x, strip_expr e, dummy)
  | Seq (a, b, _) -> Seq (strip_expr a, strip_expr b, dummy)
  | While (c, b, _) -> While (strip_expr c, strip_expr b, dummy)
  | Unpack (l, e, _) -> Unpack (strip_layout l, strip_expr e, dummy)
  | Pack (l, e, _) -> Pack (strip_layout l, strip_expr e, dummy)
  | MemRead (s, a, n, _) -> MemRead (s, strip_expr a, n, dummy)
  | MemWrite (s, a, v, _) -> MemWrite (s, strip_expr a, strip_expr v, dummy)
  | Hash (e, _) -> Hash (strip_expr e, dummy)
  | BitTestSet (a, v, _) -> BitTestSet (strip_expr a, strip_expr v, dummy)
  | CsrRead (n, _) -> CsrRead (n, dummy)
  | CsrWrite (n, v, _) -> CsrWrite (n, strip_expr v, dummy)
  | RfifoRead (a, n, _) -> RfifoRead (strip_expr a, n, dummy)
  | TfifoWrite (a, v, _) -> TfifoWrite (strip_expr a, strip_expr v, dummy)
  | CtxArb _ -> CtxArb dummy
  | Raise (n, args, _) -> Raise (n, List.map strip_arg args, dummy)
  | Try (body, hs, _) ->
      Try
        ( strip_expr body,
          List.map
            (fun h ->
              {
                h with
                hparams =
                  List.map (fun (n, t) -> (n, Option.map strip_ty t)) h.hparams;
                hbody = strip_expr h.hbody;
                hloc = dummy;
              })
            hs,
          dummy )
  | Unit _ -> Unit dummy

and strip_arg = function
  | Apos e -> Apos (strip_expr e)
  | Anamed (n, e) -> Anamed (n, strip_expr e)

let strip_param = function
  | Ppos items ->
      Ppos (List.map (fun (n, t) -> (n, Option.map strip_ty t)) items)
  | Pnamed items ->
      Pnamed (List.map (fun (n, t) -> (n, Option.map strip_ty t)) items)

let strip_topdecl = function
  | Dlayout (n, l, _) -> Dlayout (n, strip_layout l, dummy)
  | Dconst (n, e, _) -> Dconst (n, strip_expr e, dummy)
  | Dfun f ->
      Dfun
        {
          f with
          fn_params = strip_param f.fn_params;
          fn_ret = Option.map strip_ty f.fn_ret;
          fn_body = strip_expr f.fn_body;
          fn_loc = dummy;
        }

let strip_program (p : program) = { decls = List.map strip_topdecl p.decls }

let equal_program a b = strip_program a = strip_program b
let equal_expr a b = strip_expr a = strip_expr b
