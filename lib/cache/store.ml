(* Content-addressed artifact store for the incremental pipeline.

   An artifact is one JSON document, addressed by (stage, key) where
   [key] is a [Key.t] over the stage's inputs.  Two tiers:

     - an in-memory table (the "hot" cache kept warm by `novac serve`),
       capped at [mem_entries] documents and evicted LRU;
     - the on-disk store under [dir] (default `_artifacts/cache/`),
       one file per artifact named `<stage>-<key>.json`, capped at
       [disk_entries] files and evicted oldest-mtime-first.

   Named "head" pointers ([set_head]/[head]) record the most recent
   artifact key for a logical target (e.g. the last solve of NAT under
   a given model fingerprint) so a cache *miss* can still locate the
   previous result to warm-start from.

   Every lookup runs under a `cache-lookup` trace span and bumps the
   `cache.hit`/`cache.miss` counters; evictions bump `cache.evict`.
   Corrupt or unreadable files are treated as misses. *)

open Support

let m_hit = Metrics.counter "cache.hit"
let m_miss = Metrics.counter "cache.miss"
let m_evict = Metrics.counter "cache.evict"

type entry = { e_doc : Json.t; mutable e_tick : int }

type t = {
  dir : string;
  mem_entries : int;
  disk_entries : int;
  mem : (string, entry) Hashtbl.t;
  heads : (string, string) Hashtbl.t; (* head name -> artifact key *)
  mutable tick : int; (* LRU clock for the in-memory tier *)
}

let default_dir = Filename.concat "_artifacts" "cache"

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?(dir = default_dir) ?(mem_entries = 64) ?(disk_entries = 256) ()
    =
  mkdir_p dir;
  {
    dir;
    mem_entries;
    disk_entries;
    mem = Hashtbl.create 64;
    heads = Hashtbl.create 8;
    tick = 0;
  }

let path t ~stage ~key =
  Filename.concat t.dir
    (Printf.sprintf "%s-%s.json" (Key.slug stage) (Key.slug key))

let mem_key ~stage ~key = stage ^ "/" ^ key

let touch t e =
  t.tick <- t.tick + 1;
  e.e_tick <- t.tick

(* ---------------- eviction ---------------- *)

let evict_mem t =
  while Hashtbl.length t.mem > t.mem_entries do
    let victim =
      Hashtbl.fold
        (fun k e acc ->
          match acc with
          | Some (_, best) when best <= e.e_tick -> acc
          | _ -> Some (k, e.e_tick))
        t.mem None
    in
    match victim with
    | None -> ()
    | Some (k, _) ->
        Hashtbl.remove t.mem k;
        Metrics.incr m_evict
  done

let evict_disk t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> ()
  | files ->
      let aged =
        Array.to_list files
        |> List.filter_map (fun f ->
               if Filename.check_suffix f ".json" then
                 let full = Filename.concat t.dir f in
                 match Unix.stat full with
                 | st -> Some (st.Unix.st_mtime, full)
                 | exception Unix.Unix_error _ -> None
               else None)
        |> List.sort compare
      in
      let excess = List.length aged - t.disk_entries in
      if excess > 0 then
        List.iteri
          (fun i (_, full) ->
            if i < excess then begin
              (try Sys.remove full with Sys_error _ -> ());
              Metrics.incr m_evict
            end)
          aged

(* ---------------- lookup / store ---------------- *)

let lookup t ~stage ~key : Json.t option =
  Trace.with_span "cache-lookup"
    ~args:[ ("stage", Trace.Str stage); ("key", Trace.Str key) ]
  @@ fun () ->
  let mk = mem_key ~stage ~key in
  match Hashtbl.find_opt t.mem mk with
  | Some e ->
      touch t e;
      Metrics.incr m_hit;
      Some e.e_doc
  | None -> (
      let file = path t ~stage ~key in
      let doc =
        if Sys.file_exists file then begin
          let ic = open_in_bin file in
          let s =
            Fun.protect
              ~finally:(fun () -> close_in ic)
              (fun () -> really_input_string ic (in_channel_length ic))
          in
          match Json.parse s with Ok d -> Some d | Error _ -> None
        end
        else None
      in
      match doc with
      | Some d ->
          t.tick <- t.tick + 1;
          Hashtbl.replace t.mem mk { e_doc = d; e_tick = t.tick };
          evict_mem t;
          Metrics.incr m_hit;
          Some d
      | None ->
          Metrics.incr m_miss;
          None)

let store t ~stage ~key (doc : Json.t) =
  let mk = mem_key ~stage ~key in
  t.tick <- t.tick + 1;
  Hashtbl.replace t.mem mk { e_doc = doc; e_tick = t.tick };
  evict_mem t;
  mkdir_p t.dir;
  let file = path t ~stage ~key in
  let tmp = file ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.encode doc));
  Sys.rename tmp file;
  evict_disk t

(* ---------------- head pointers ---------------- *)

(* Heads live outside the capped artifact namespace (a `.head` file per
   name) so eviction of old artifacts never severs the pointer file
   itself; a head pointing at an evicted artifact simply resolves to a
   miss at lookup time. *)

let head_path t name =
  Filename.concat t.dir (Printf.sprintf "%s.head" (Key.slug name))

let set_head t ~name ~key =
  Hashtbl.replace t.heads name key;
  mkdir_p t.dir;
  let file = head_path t name in
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc key)

let head t ~name : string option =
  match Hashtbl.find_opt t.heads name with
  | Some k -> Some k
  | None ->
      let file = head_path t name in
      if Sys.file_exists file then begin
        let ic = open_in_bin file in
        let s =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        let s = String.trim s in
        if s = "" then None
        else begin
          Hashtbl.replace t.heads name s;
          Some s
        end
      end
      else None

(* Drop the in-memory tier (the on-disk artifacts survive); used by
   tests and by `novac serve` on cache-control requests. *)
let clear_memory t =
  Hashtbl.reset t.mem;
  Hashtbl.reset t.heads
