(* Content hashing for the incremental-compilation cache.

   Every pipeline stage's inputs are reduced to a hex digest: the raw
   source text, an options fingerprint, and the digests of upstream
   artifacts are combined into one key, so "has this stage already run
   on these exact inputs" is a single table lookup.  The stdlib [Digest]
   (MD5) is plenty here -- keys guard a build cache, not an adversary --
   and keeps the build free of external hash dependencies.

   Order-insensitive combination ([fold_unordered]) exists for hashing
   bags of components whose enumeration order is not canonical: the ILP
   instantiates variables and rows in an order that can drift with ident
   stamps between otherwise identical compiles, so the model hash sums
   per-item digests instead of hashing the concatenation. *)

type t = string (* 32-char lowercase hex *)

let text (s : string) : t = Digest.to_hex (Digest.string s)

(* Label/part pairs are length-prefixed so component boundaries cannot
   alias ("ab"^"c" vs "a"^"bc"). *)
let combine (parts : string list) : t =
  let buf = Buffer.create 128 in
  List.iter
    (fun p ->
      Buffer.add_string buf (string_of_int (String.length p));
      Buffer.add_char buf ':';
      Buffer.add_string buf p)
    parts;
  text (Buffer.contents buf)

(* Accumulator for an order-insensitive digest: each item's digest is
   folded in by 64-bit wrapping addition of its four 32-bit words, so
   the result is independent of insertion order. *)
type acc = { mutable w0 : int64; mutable w1 : int64; mutable count : int }

let fold_create () = { w0 = 0L; w1 = 0L; count = 0 }

let fold_add acc (item : string) =
  let d = Digest.string item in
  let word off =
    let g i = Int64.of_int (Char.code d.[off + i]) in
    Int64.logor
      (Int64.logor (g 0) (Int64.shift_left (g 1) 8))
      (Int64.logor (Int64.shift_left (g 2) 16)
         (Int64.logor (Int64.shift_left (g 3) 24)
            (Int64.logor (Int64.shift_left (g 4) 32)
               (Int64.logor (Int64.shift_left (g 5) 40)
                  (Int64.logor (Int64.shift_left (g 6) 48)
                     (Int64.shift_left (g 7) 56))))))
  in
  acc.w0 <- Int64.add acc.w0 (word 0);
  acc.w1 <- Int64.add acc.w1 (word 8);
  acc.count <- acc.count + 1

let fold_digest acc : t =
  combine
    [ Int64.to_string acc.w0; Int64.to_string acc.w1;
      string_of_int acc.count ]

(* Sanitize a string for use inside a cache filename. *)
let slug (s : string) : string =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    s
