(* Static verifier for virtual-register flowgraphs: the last line of
   defense before model generation.

   [Modelgen] assumes the program handed to it is well-formed in ways the
   type system cannot express: the entry block starts from nothing (no
   temporary is live-in), every use of a temporary is dominated by a
   definition, every aggregate transfer has a machine-legal width with
   pairwise-distinct members (the members must land in *adjacent*
   registers, which two occurrences of one temporary cannot), and every
   branch targets an existing block.  A violation of any of these makes
   the ILP model trivially infeasible -- or worse, silently feasible with
   wrong semantics -- so the driver re-checks them here whenever
   [verify_each] is on.

   Violations mirror [Checker]'s shape: block label, instruction
   position, message. *)

open Support

type violation = { block : string; pos : int; message : string }

let pp_violation ppf v = Fmt.pf ppf "%s.%d: %s" v.block v.pos v.message

(* ------------------------------------------------------------------ *)
(* Definite assignment: forward must-be-defined dataflow               *)
(* ------------------------------------------------------------------ *)

(* defined_in(entry) = {}; defined_in(b) = intersection over predecessors
   of defined_out(pred); defined_out(b) = defined_in(b) + defs(b).
   Initialized to "everything" (top) for non-entry blocks so the
   intersection converges downward. *)
let definitely_defined (g : Ident.t Flowgraph.t) =
  let top = Liveness.all_temps g in
  let entry_label = (Flowgraph.entry g).Flowgraph.label in
  let defined_in = Hashtbl.create 16 in
  Flowgraph.iter_blocks
    (fun b ->
      Hashtbl.replace defined_in b.Flowgraph.label
        (if b.Flowgraph.label = entry_label then Ident.Set.empty else top))
    g;
  let block_defs b =
    Array.fold_left
      (fun acc i ->
        List.fold_left (fun acc d -> Ident.Set.add d acc) acc (Insn.defs i))
      Ident.Set.empty b.Flowgraph.insns
  in
  let preds = Flowgraph.predecessors g in
  let changed = ref true in
  while !changed do
    changed := false;
    Flowgraph.iter_blocks
      (fun b ->
        let label = b.Flowgraph.label in
        if label <> entry_label then begin
          let inn =
            match Option.value ~default:[] (Hashtbl.find_opt preds label) with
            | [] -> Ident.Set.empty (* unreachable: nothing is defined *)
            | p :: ps ->
                let out_of l =
                  Ident.Set.union
                    (Hashtbl.find defined_in l)
                    (block_defs (Flowgraph.block g l))
                in
                List.fold_left
                  (fun acc l -> Ident.Set.inter acc (out_of l))
                  (out_of p) ps
          in
          if not (Ident.Set.equal inn (Hashtbl.find defined_in label)) then begin
            changed := true;
            Hashtbl.replace defined_in label inn
          end
        end)
      g
  done;
  defined_in

(* ------------------------------------------------------------------ *)
(* Per-instruction structural checks                                   *)
(* ------------------------------------------------------------------ *)

let check_members add ~what (regs : Ident.t array) space =
  let add fmt = Fmt.kstr add fmt in
  let n = Array.length regs in
  if not (Insn.legal_aggregate space n) then
    add "%s: illegal %s aggregate width %d" what (Insn.space_to_string space) n;
  Array.iteri
    (fun k r ->
      for j = k + 1 to n - 1 do
        if Ident.equal r regs.(j) then
          add
            "%s: temporary %a appears at positions %d and %d (members must \
             be distinct to land in adjacent registers)"
            what Ident.pp r k j
      done)
    regs

let check_insn add (insn : Ident.t Insn.t) =
  let addf fmt = Fmt.kstr add fmt in
  match insn with
  | Insn.Read { space; dsts; _ } -> check_members add ~what:"read" dsts space
  | Insn.Write { space; srcs; _ } -> check_members add ~what:"write" srcs space
  | Insn.Rfifo_read { dsts; _ } ->
      check_members add ~what:"rfifo read" dsts Insn.Sdram
  | Insn.Tfifo_write { srcs; _ } ->
      check_members add ~what:"tfifo write" srcs Insn.Sdram
  | Insn.Clone { dsts; src } ->
      if Array.length dsts = 0 then addf "clone with no destinations";
      Array.iter
        (fun d ->
          if Ident.equal d src then
            addf "clone destination %a shadows its source" Ident.pp d)
        dsts
  | Insn.Spill _ | Insn.Reload _ | Insn.Move _ ->
      addf "allocator-inserted instruction in a virtual program"
  | Insn.Alu _ | Insn.Alu1 _ | Insn.Imm _ | Insn.Hash _ | Insn.Bit_test_set _
  | Insn.Csr_read _ | Insn.Csr_write _ | Insn.Ctx_arb | Insn.Nop ->
      ()

(* ------------------------------------------------------------------ *)
(* Whole-graph check                                                   *)
(* ------------------------------------------------------------------ *)

let check (g : Ident.t Flowgraph.t) : violation list =
  (* branch targets first: liveness and definite-assignment both walk the
     successor relation and cannot run over a graph with dangling edges *)
  let target_violations = ref [] in
  Flowgraph.iter_blocks
    (fun b ->
      let exit_pos = Array.length b.Flowgraph.insns in
      List.iter
        (fun target ->
          match Flowgraph.block g target with
          | (_ : Ident.t Flowgraph.block) -> ()
          | exception _ ->
              target_violations :=
                {
                  block = b.Flowgraph.label;
                  pos = exit_pos;
                  message = "branch to unknown block " ^ target;
                }
                :: !target_violations)
        (Insn.term_targets b.Flowgraph.term))
    g;
  if !target_violations <> [] then List.rev !target_violations
  else begin
  let violations = ref [] in
  let entry = Flowgraph.entry g in
  let live = Liveness.compute g in
  (* nothing may be live-in at the entry block: the program starts from
     an empty register file *)
  Ident.Set.iter
    (fun v ->
      violations :=
        {
          block = entry.Flowgraph.label;
          pos = 0;
          message =
            Fmt.str
              "temporary %a is live-in at the entry block (some path uses \
               it before any definition)"
              Ident.pp v;
        }
        :: !violations)
    (Liveness.block_live_in live entry.Flowgraph.label);
  let defined_in = definitely_defined g in
  Flowgraph.iter_blocks
    (fun b ->
      let label = b.Flowgraph.label in
      let add pos message = violations := { block = label; pos; message } :: !violations in
      let defined = ref (Hashtbl.find defined_in label) in
      Array.iteri
        (fun pos insn ->
          check_insn (add pos) insn;
          List.iter
            (fun u ->
              if not (Ident.Set.mem u !defined) then
                add pos
                  (Fmt.str "use of %a is not dominated by a definition"
                     Ident.pp u))
            (Insn.uses insn);
          List.iter
            (fun d -> defined := Ident.Set.add d !defined)
            (Insn.defs insn))
        b.Flowgraph.insns;
      let exit_pos = Array.length b.Flowgraph.insns in
      List.iter
        (fun u ->
          if not (Ident.Set.mem u !defined) then
            add exit_pos
              (Fmt.str "use of %a is not dominated by a definition" Ident.pp
                 u))
        (Insn.term_uses b.Flowgraph.term))
    g;
  List.rev !violations
  end

let check_exn ?(pass = "isel") program =
  match check program with
  | [] -> ()
  | vs ->
      Support.Diag.verify_failed ~pass "%a"
        Fmt.(list ~sep:cut pp_violation)
        vs
