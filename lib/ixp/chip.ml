(* Chip-level IXP1200 model: N micro-engines behind a shared memory bus,
   fed by chip-level receive FIFO rings and drained through a transmit
   ring.

   The single-engine [Simulator] models one micro-engine faithfully;
   this module instantiates several of them over one shared SRAM/scratch
   image and one bus arbiter ([Memory.bus]), and adds the parts of the
   chip that the paper's evaluation (§12) exercised with real hardware:
   packets arriving at line rate on input ports, bounded receive rings
   that drop on overflow, and per-packet latency from wire arrival to
   completion.

   The run loop is event-driven and fully deterministic: each engine
   keeps its own clock (they run in parallel on real silicon); the chip
   always advances the globally earliest event, which is either the next
   generated packet arrival or the engine whose next runnable thread has
   the smallest timestamp.  Ties break toward arrivals, then lower
   engine/thread ids, so a given program, traffic profile and seed
   reproduce bit-identical cycle counts, drops and latency traces.

   The steady-state loop allocates zero minor words per packet.  Every
   structure it touches is preallocated at [prepare]: packets live in a
   pool of fixed payload buffers indexed by flat [int array]s, the
   receive rings are flat circular [int array]s of pool slots, engine
   wake-ups go through a timing wheel ([Event_wheel]), latencies
   accumulate into a preallocated array plus an integer bucket table
   merged into [Support.Metrics] at [finish], and the transmit drain is
   10.10 fixed point rather than float.  [run] wraps the pieces for the
   single-chip case; [Cluster] drives [prepare]/[offer]/[step]/[finish]
   directly to interleave several chips. *)

open Support

type config = {
  engines : int;
  threads : int; (* hardware contexts per engine *)
  clock_mhz : float;
  mem_config : Memory.config;
  contention : bool; (* false = no bus arbiter: unloaded latencies *)
  rx_capacity : int; (* packets per input-port receive ring *)
  tx_capacity : int; (* words buffered in the transmit ring *)
  tx_drain_per_cycle : float; (* words the transmit port drains per cycle *)
  trace : bool;
}

let default_config =
  {
    engines = 6;
    threads = 4;
    clock_mhz = 233.0;
    mem_config = Memory.default_config;
    contention = true;
    rx_capacity = 32;
    tx_capacity = 1024;
    tx_drain_per_cycle = 1.0;
    trace = false;
  }

let no_event = Event_wheel.no_event

(* fixed-point scale for the transmit drain rate *)
let tx_fp = 1024

type t = {
  config : config;
  program : Reg.t Flowgraph.t;
  shared : Memory.t;
  bus : Memory.bus option;
  engines : Simulator.t array;
  wheel : Event_wheel.t; (* one event slot per engine *)
  in_flight : int array; (* engine*threads+thread -> pool slot, or -1 *)
  tx_drain_num : int; (* drain rate, x [tx_fp] *)
  ctx_names : string array; (* trace labels, built once *)
  m_rx_dropped : Metrics.counter;
  (* packet pool: slot-indexed flat arrays; buffers are fixed at
     [Pktgen.max_payload_words] and hold the packet from arrival until
     completion (a context's receive FIFO aliases the pool buffer) *)
  mutable pool_buf : int array array;
  mutable pool_seq : int array;
  mutable pool_size : int array;
  mutable pool_words : int array;
  mutable pool_arrival : int array;
  mutable free_stack : int array; (* free slot ids; [free_top] live *)
  mutable free_top : int;
  (* receive rings: per-port circular ranges of [rx_ring] *)
  mutable nports : int;
  mutable rx_ring : int array; (* port*rx_capacity+k -> pool slot *)
  mutable rx_head : int array;
  mutable rx_len : int array;
  mutable rx_queued : int; (* total packets across all rings *)
  mutable rx_received : int array; (* packets that reached each port *)
  mutable rx_dropped : int array; (* ring overflow drops *)
  mutable rr_port : int; (* round-robin refill cursor *)
  (* accounting *)
  mutable latencies : int array; (* first [lat_len] valid, unsorted *)
  mutable lat_len : int;
  lat_buckets : int array; (* [Metrics.bucket_index]-mapped counts *)
  mutable completed : int;
  mutable bytes_completed : int;
  mutable generated : int;
  mutable tx_words : int; (* words offered to the transmit ring *)
  mutable tx_dropped_words : int; (* ring-overflow words *)
  mutable tx_drained : int; (* words already on the wire *)
  mutable horizon : int; (* timestamp of the latest event seen *)
}

let create ?(config = default_config) program =
  let shared = Memory.create ~config:config.mem_config () in
  let bus = if config.contention then Some (Memory.bus_create ()) else None in
  let engines =
    Array.init config.engines (fun e ->
        Simulator.create ~threads:config.threads ~clock_mhz:config.clock_mhz
          ~config:config.mem_config ~trace:config.trace ~shared ?bus
          ~engine_id:e program)
  in
  (* all contexts start idle, waiting for a packet *)
  Array.iter
    (fun sim ->
      Array.iter
        (fun th -> th.Simulator.halted <- true)
        sim.Simulator.threads)
    engines;
  {
    config;
    program;
    shared;
    bus;
    engines;
    wheel = Event_wheel.create ~size:256 config.engines;
    in_flight = Array.make (config.engines * config.threads) (-1);
    tx_drain_num =
      int_of_float (config.tx_drain_per_cycle *. float_of_int tx_fp);
    ctx_names =
      Array.init config.threads (fun i -> "ctx" ^ string_of_int i);
    m_rx_dropped = Metrics.counter "chip.rx.dropped";
    pool_buf = [||];
    pool_seq = [||];
    pool_size = [||];
    pool_words = [||];
    pool_arrival = [||];
    free_stack = [||];
    free_top = 0;
    nports = 0;
    rx_ring = [||];
    rx_head = [||];
    rx_len = [||];
    rx_queued = 0;
    rx_received = [||];
    rx_dropped = [||];
    rr_port = 0;
    latencies = [||];
    lat_len = 0;
    lat_buckets = Array.make Metrics.bucket_count 0;
    completed = 0;
    bytes_completed = 0;
    generated = 0;
    tx_words = 0;
    tx_dropped_words = 0;
    tx_drained = 0;
    horizon = 0;
  }

let shared_memory t = t.shared
let engine t e = t.engines.(e)
let config t = t.config

(* Size every pool and ring for [ports] input ports and preallocate the
   latency store for [expected] packets.  Must run before [offer]; after
   it, the steady-state loop performs no minor allocation (the latency
   array grows geometrically only if [expected] was an underestimate). *)
let prepare chip ~ports ~expected =
  let nports = max 1 ports in
  let cap = chip.config.rx_capacity in
  (* worst case live packets: every ring full + every context busy *)
  let nslots = (nports * cap) + Array.length chip.in_flight + 2 in
  chip.nports <- nports;
  chip.pool_buf <-
    Array.init nslots (fun _ -> Array.make Pktgen.max_payload_words 0);
  chip.pool_seq <- Array.make nslots 0;
  chip.pool_size <- Array.make nslots 0;
  chip.pool_words <- Array.make nslots 0;
  chip.pool_arrival <- Array.make nslots 0;
  chip.free_stack <- Array.init nslots (fun i -> nslots - 1 - i);
  chip.free_top <- nslots;
  chip.rx_ring <- Array.make (nports * cap) (-1);
  chip.rx_head <- Array.make nports 0;
  chip.rx_len <- Array.make nports 0;
  chip.rx_queued <- 0;
  chip.rx_received <- Array.make nports 0;
  chip.rx_dropped <- Array.make nports 0;
  chip.rr_port <- 0;
  chip.latencies <- Array.make (max 16 expected) 0;
  chip.lat_len <- 0;
  Array.fill chip.lat_buckets 0 Metrics.bucket_count 0;
  Array.fill chip.in_flight 0 (Array.length chip.in_flight) (-1);
  Event_wheel.clear chip.wheel;
  chip.completed <- 0;
  chip.bytes_completed <- 0;
  chip.generated <- 0;
  chip.tx_words <- 0;
  chip.tx_dropped_words <- 0;
  chip.tx_drained <- 0;
  chip.horizon <- 0

(* ------------------------------------------------------------------ *)
(* Packet pool                                                         *)
(* ------------------------------------------------------------------ *)

let acquire chip (v : Pktgen.view) =
  chip.free_top <- chip.free_top - 1;
  let slot = chip.free_stack.(chip.free_top) in
  chip.pool_seq.(slot) <- v.Pktgen.v_seq;
  chip.pool_size.(slot) <- v.Pktgen.v_size;
  chip.pool_words.(slot) <- v.Pktgen.v_words;
  chip.pool_arrival.(slot) <- v.Pktgen.v_arrival;
  Array.blit v.Pktgen.v_payload 0 chip.pool_buf.(slot) 0 v.Pktgen.v_words;
  slot

let release chip slot =
  chip.free_stack.(chip.free_top) <- slot;
  chip.free_top <- chip.free_top + 1

(* ------------------------------------------------------------------ *)
(* Receive rings                                                       *)
(* ------------------------------------------------------------------ *)

let push_rx chip port slot =
  let cap = chip.config.rx_capacity in
  let base = port * cap in
  chip.rx_ring.(base + ((chip.rx_head.(port) + chip.rx_len.(port)) mod cap))
  <- slot;
  chip.rx_len.(port) <- chip.rx_len.(port) + 1;
  chip.rx_queued <- chip.rx_queued + 1

(* Pop the next queued packet across ports, round-robin, arrival order
   within a port; pool slot, or -1 when every ring is empty. *)
let pop_rx chip =
  if chip.rx_queued = 0 then -1
  else begin
    let cap = chip.config.rx_capacity in
    let slot = ref (-1) in
    while !slot < 0 do
      let p = chip.rr_port in
      chip.rr_port <- (chip.rr_port + 1) mod chip.nports;
      if chip.rx_len.(p) > 0 then begin
        slot := chip.rx_ring.((p * cap) + chip.rx_head.(p));
        chip.rx_head.(p) <- (chip.rx_head.(p) + 1) mod cap;
        chip.rx_len.(p) <- chip.rx_len.(p) - 1;
        chip.rx_queued <- chip.rx_queued - 1
      end
    done;
    !slot
  end

(* ------------------------------------------------------------------ *)
(* Engine scheduling                                                   *)
(* ------------------------------------------------------------------ *)

(* Deterministic choice of an idle context: engine with the smallest
   local clock (it has been idle longest), then lowest ids.  Flat
   context index, or -1 when every context is busy. *)
let find_idle chip =
  let best = ref (-1) and best_clock = ref 0 in
  for e = 0 to Array.length chip.engines - 1 do
    let sim = chip.engines.(e) in
    let ths = sim.Simulator.threads in
    for i = 0 to Array.length ths - 1 do
      if
        ths.(i).Simulator.halted
        && (!best < 0 || sim.Simulator.clock < !best_clock)
      then begin
        best := (e * chip.config.threads) + i;
        best_clock := sim.Simulator.clock
      end
    done
  done;
  !best

(* Earliest cycle at which engine [e] can execute its next instruction;
   (re)stamps its wheel event, or cancels it when every context idles. *)
let resched_engine chip e =
  let sim = chip.engines.(e) in
  let ths = sim.Simulator.threads in
  let best = ref no_event in
  for i = 0 to Array.length ths - 1 do
    let th = ths.(i) in
    if (not th.Simulator.halted) && th.Simulator.ready_at < !best then
      best := th.Simulator.ready_at
  done;
  if !best = no_event then Event_wheel.cancel chip.wheel e
  else
    Event_wheel.schedule chip.wheel e
      ~cycle:(max sim.Simulator.clock !best)

(* ------------------------------------------------------------------ *)
(* Packet hand-off                                                     *)
(* ------------------------------------------------------------------ *)

(* A packet is handed to a context by aliasing its pool buffer into the
   context's receive FIFO and copying the head into the context's
   private SDRAM packet buffer; workloads that expect a particular SDRAM
   image install their own [deliver].  [payload] is the pool buffer:
   only the first [words] entries belong to the packet, and the buffer
   is reused once the packet completes. *)
type deliver =
  t ->
  engine:int ->
  thread:int ->
  seq:int ->
  size:int ->
  words:int ->
  payload:int array ->
  unit

let default_deliver chip ~engine ~thread ~seq:_ ~size:_ ~words ~payload =
  let sim = chip.engines.(engine) in
  Simulator.set_rfifo_view sim ~thread payload ~words;
  let sdram = Simulator.sdram_of_thread sim ~thread in
  for k = 0 to words - 1 do
    Memory.poke sdram Insn.Sdram k payload.(k)
  done

let start_packet chip ~(deliver : deliver) e i slot ~at =
  let sim = chip.engines.(e) in
  let th = sim.Simulator.threads.(i) in
  th.Simulator.block <- Flowgraph.entry chip.program;
  th.Simulator.pc <- 0;
  th.Simulator.halted <- false;
  th.Simulator.ready_at <- max at sim.Simulator.clock;
  Vec.clear th.Simulator.tfifo;
  deliver chip ~engine:e ~thread:i ~seq:chip.pool_seq.(slot)
    ~size:chip.pool_size.(slot) ~words:chip.pool_words.(slot)
    ~payload:chip.pool_buf.(slot);
  chip.in_flight.((e * chip.config.threads) + i) <- slot;
  resched_engine chip e

(* Move a completed context's transmit FIFO into the chip transmit ring,
   modelling a port that drains [tx_drain_per_cycle] words per cycle:
   words beyond the ring capacity at the completion instant are dropped
   and counted. *)
let flush_tfifo chip sim i ~now =
  let th = sim.Simulator.threads.(i) in
  let n = Vec.length th.Simulator.tfifo in
  if n > 0 then begin
    let drained = now * chip.tx_drain_num / tx_fp in
    if drained > chip.tx_drained then
      chip.tx_drained <- min drained chip.tx_words;
    let level = chip.tx_words - chip.tx_drained in
    let accepted = max 0 (min n (chip.config.tx_capacity - level)) in
    chip.tx_words <- chip.tx_words + accepted;
    chip.tx_dropped_words <- chip.tx_dropped_words + (n - accepted);
    Vec.clear th.Simulator.tfifo
  end

let record_latency chip d =
  if chip.lat_len >= Array.length chip.latencies then begin
    (* [expected] was an underestimate: geometric growth, off the
       steady-state path when [prepare] was sized correctly *)
    let n = Array.make (max 32 (2 * Array.length chip.latencies)) 0 in
    Array.blit chip.latencies 0 n 0 chip.lat_len;
    chip.latencies <- n
  end;
  chip.latencies.(chip.lat_len) <- d;
  chip.lat_len <- chip.lat_len + 1;
  let b = Metrics.bucket_index d in
  chip.lat_buckets.(b) <- chip.lat_buckets.(b) + 1

let complete_packet chip ~deliver e i =
  let sim = chip.engines.(e) in
  let now = sim.Simulator.clock in
  if now > chip.horizon then chip.horizon <- now;
  let idx = (e * chip.config.threads) + i in
  let slot = chip.in_flight.(idx) in
  if slot >= 0 then begin
    chip.completed <- chip.completed + 1;
    chip.bytes_completed <- chip.bytes_completed + chip.pool_size.(slot);
    record_latency chip (now - chip.pool_arrival.(slot));
    chip.in_flight.(idx) <- -1;
    release chip slot
  end;
  flush_tfifo chip sim i ~now;
  let next = pop_rx chip in
  if next >= 0 then start_packet chip ~deliver e i next ~at:now

(* ------------------------------------------------------------------ *)
(* Event-driven run loop                                               *)
(* ------------------------------------------------------------------ *)

exception Chip_stuck of string

(* Room for one more packet on [port]?  When every context is busy and
   the port's ring is full, an offered packet would be dropped; the
   cluster load balancer checks this before steering. *)
let has_room chip ~port =
  chip.rx_len.(port) < chip.config.rx_capacity || find_idle chip >= 0

(* Hand the packet in [v] to the chip at its arrival time: an idle
   context if one exists (the receive rings are necessarily empty then),
   else the port's ring, else the drop counter.  Packets must be offered
   in arrival order, interleaved with [step] so that chip time never
   runs ahead of arrivals ([v.v_arrival <= next_time]). *)
let offer chip ~(deliver : deliver) ~port (v : Pktgen.view) =
  chip.generated <- chip.generated + 1;
  let t_arr = v.Pktgen.v_arrival in
  if t_arr > chip.horizon then chip.horizon <- t_arr;
  chip.rx_received.(port) <- chip.rx_received.(port) + 1;
  let idle = find_idle chip in
  if idle >= 0 then begin
    let slot = acquire chip v in
    start_packet chip ~deliver (idle / chip.config.threads)
      (idle mod chip.config.threads) slot ~at:t_arr
  end
  else if chip.rx_len.(port) < chip.config.rx_capacity then
    push_rx chip port (acquire chip v)
  else begin
    chip.rx_dropped.(port) <- chip.rx_dropped.(port) + 1;
    Metrics.incr chip.m_rx_dropped;
    if Trace.is_enabled () then
      Trace.instant "rx-drop" ~tid:(-1) ~args:[ ("port", Trace.Int port) ]
  end

(* Free entries in [port]'s receive ring. *)
let rx_room chip ~port = chip.config.rx_capacity - chip.rx_len.(port)

(* Contexts idle and waiting for a packet. *)
let idle_contexts chip =
  let n = ref 0 in
  for e = 0 to Array.length chip.engines - 1 do
    let ths = chip.engines.(e).Simulator.threads in
    for i = 0 to Array.length ths - 1 do
      if ths.(i).Simulator.halted then n := !n + 1
    done
  done;
  !n

let rx_queued chip = chip.rx_queued

(* Cycle of the chip's next internal event ([no_event] when every
   context is idle). *)
let next_time chip = Event_wheel.next_time chip.wheel

(* Packets queued or in flight? *)
let active chip = chip.rx_queued > 0 || not (Event_wheel.is_empty chip.wheel)

(* Advance the chip by one event: run the engine with the earliest
   wake-up to its next yield.  Must only be called when [active]. *)
let step chip ~(deliver : deliver) =
  let e = Event_wheel.pop chip.wheel in
  if e < 0 then raise (Chip_stuck "chip step: queued packets, no event");
  let sim = chip.engines.(e) in
  let ths = sim.Simulator.threads in
  (* runnable context with the earliest ready_at, lowest id on ties *)
  let best_i = ref (-1) in
  for i = 0 to Array.length ths - 1 do
    let th = ths.(i) in
    if
      (not th.Simulator.halted)
      && (!best_i < 0
         || th.Simulator.ready_at < ths.(!best_i).Simulator.ready_at)
    then best_i := i
  done;
  let th = ths.(!best_i) in
  if th.Simulator.ready_at > sim.Simulator.clock then
    sim.Simulator.clock <- th.Simulator.ready_at;
  let step_start = sim.Simulator.clock in
  Simulator.step_thread sim th ~fuel:1_000_000;
  if sim.Simulator.clock > chip.horizon then
    chip.horizon <- sim.Simulator.clock;
  (* Context-occupancy span: one complete event per contiguous run of
     context [best_i] on engine [e] (ended by a context swap on a memory
     reference, or by the packet completing).  Timebase: one simulated
     cycle is exported as one microsecond, so Perfetto's ruler reads
     directly in cycles; tid = engine id. *)
  if Trace.is_enabled () then
    Trace.complete ~cat:"engine" ~tid:e
      ~ts_us:(float_of_int step_start)
      ~dur_us:(float_of_int (sim.Simulator.clock - step_start))
      chip.ctx_names.(!best_i);
  if th.Simulator.halted then complete_packet chip ~deliver e !best_i;
  resched_engine chip e

(* Drain the whole generator through the chip.  [fuel] bounds run-loop
   iterations (events + arrivals), not instructions. *)
let drive ?(fuel = 200_000_000) chip ~(deliver : deliver) gen =
  let v = Pktgen.make_view () in
  let pending = ref (Pktgen.next_into gen v) in
  let budget = ref fuel in
  while !pending || active chip do
    decr budget;
    if !budget < 0 then raise (Chip_stuck "chip run: fuel exhausted");
    let t_step = next_time chip in
    let t_arr = if !pending then v.Pktgen.v_arrival else no_event in
    if t_arr = no_event && t_step = no_event then
      (* queued packets but no pending arrival and no runnable context:
         unreachable if the idle-implies-empty-rings invariant holds *)
      raise (Chip_stuck "chip run: queued packets with no runnable context");
    if t_arr <= t_step then begin
      offer chip ~deliver ~port:v.Pktgen.v_port v;
      pending := Pktgen.next_into gen v
    end
    else step chip ~deliver
  done

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  r_config : config;
  cycles : int; (* makespan: latest event on the chip *)
  generated : int;
  completed : int;
  bytes_completed : int;
  r_in_flight : int; (* packets still on a context at report time *)
  rx_received : int array; (* per port *)
  rx_dropped : int array;
  tx_words : int;
  tx_dropped_words : int;
  engine_busy : int array;
  engine_cycles : int array;
  latencies : int array; (* sorted ascending *)
  lat_buckets : int array; (* [Metrics.bucket_index]-mapped counts *)
  bus : (string * Memory.channel_stats) list;
}

let in_flight_count chip =
  let n = ref 0 in
  Array.iter (fun s -> if s >= 0 then incr n) chip.in_flight;
  !n

(* Snapshot the chip's counters into a report and mirror them into the
   metrics registry (latency buckets merge into the "chip.latency"
   histogram, so `--metrics` shows p99/p999 without parsing the
   report). *)
let finish (chip : t) =
  let latencies = Array.sub chip.latencies 0 chip.lat_len in
  Array.sort Int.compare latencies;
  (* Per-channel bus counters: mirrored into the metrics registry (and a
     trace counter series) so `--metrics` shows where memory time went
     without parsing the report. *)
  (match chip.bus with
  | None -> ()
  | Some b ->
      List.iter
        (fun (name, s) ->
          let g field v =
            Metrics.set
              (Metrics.gauge (Printf.sprintf "chip.bus.%s.%s" name field))
              (float_of_int v)
          in
          g "requests" s.Memory.chan_requests;
          g "busy" s.Memory.chan_busy;
          g "stall" s.Memory.chan_stall;
          if Trace.is_enabled () then
            Trace.counter ("bus." ^ name)
              [
                ("busy", float_of_int s.Memory.chan_busy);
                ("stall", float_of_int s.Memory.chan_stall);
              ])
        (Memory.bus_stats b));
  Metrics.merge_buckets (Metrics.histogram "chip.latency") chip.lat_buckets;
  Metrics.set (Metrics.gauge "chip.completed") (float_of_int chip.completed);
  {
    r_config = chip.config;
    cycles = chip.horizon;
    generated = chip.generated;
    completed = chip.completed;
    bytes_completed = chip.bytes_completed;
    r_in_flight = in_flight_count chip;
    rx_received = Array.copy chip.rx_received;
    rx_dropped = Array.copy chip.rx_dropped;
    tx_words = chip.tx_words;
    tx_dropped_words = chip.tx_dropped_words;
    engine_busy = Array.map Simulator.busy_cycles chip.engines;
    engine_cycles = Array.map Simulator.cycles chip.engines;
    latencies;
    lat_buckets = Array.copy chip.lat_buckets;
    bus = (match chip.bus with None -> [] | Some b -> Memory.bus_stats b);
  }

let run ?(deliver = default_deliver) ?fuel chip gen =
  prepare chip
    ~ports:gen.Pktgen.config.Pktgen.ports
    ~expected:gen.Pktgen.config.Pktgen.count;
  drive ?fuel chip ~deliver gen;
  finish chip

(* ------------------------------------------------------------------ *)
(* Report derivations                                                  *)
(* ------------------------------------------------------------------ *)

let seconds r cycles =
  float_of_int cycles /. (r.r_config.clock_mhz *. 1e6)

(* Achieved forwarding rate in million packets per second. *)
let achieved_mpps r =
  if r.cycles = 0 then 0.
  else float_of_int r.completed /. seconds r r.cycles /. 1e6

(* Achieved payload rate in Mbit/s. *)
let achieved_mbps r =
  if r.cycles = 0 then 0.
  else float_of_int (r.bytes_completed * 8) /. seconds r r.cycles /. 1e6

let dropped r = Array.fold_left ( + ) 0 r.rx_dropped

let drop_rate r =
  if r.generated = 0 then 0.
  else float_of_int (dropped r) /. float_of_int r.generated

(* Mean utilization of engine [e]: issue cycles over the makespan. *)
let utilization r e =
  if r.cycles = 0 then 0.
  else float_of_int r.engine_busy.(e) /. float_of_int r.cycles

let latency_percentile r q =
  let n = Array.length r.latencies in
  if n = 0 then 0
  else begin
    let k = int_of_float (ceil (q *. float_of_int n)) - 1 in
    r.latencies.(max 0 (min (n - 1) k))
  end

let pp_report ppf r =
  Fmt.pf ppf "cycles: %d (%.2f us at %.0f MHz)@." r.cycles
    (seconds r r.cycles *. 1e6)
    r.r_config.clock_mhz;
  Fmt.pf ppf "packets: %d generated, %d completed, %d dropped (%.1f%%)@."
    r.generated r.completed (dropped r)
    (100. *. drop_rate r);
  if r.r_in_flight > 0 then Fmt.pf ppf "in flight: %d@." r.r_in_flight;
  Fmt.pf ppf "achieved: %.3f Mpps, %.1f Mbit/s payload@." (achieved_mpps r)
    (achieved_mbps r);
  Fmt.pf ppf "tx ring: %d words sent, %d dropped@." r.tx_words
    r.tx_dropped_words;
  Array.iteri
    (fun e busy ->
      Fmt.pf ppf "engine %d: %d busy cycles (%.1f%% utilization)@." e busy
        (100. *. utilization r e))
    r.engine_busy;
  if Array.length r.latencies > 0 then
    Fmt.pf ppf "latency cycles: p50 %d, p90 %d, p99 %d, p99.9 %d, max %d@."
      (latency_percentile r 0.50) (latency_percentile r 0.90)
      (latency_percentile r 0.99)
      (latency_percentile r 0.999)
      r.latencies.(Array.length r.latencies - 1);
  List.iter
    (fun (name, s) ->
      Fmt.pf ppf "bus %-7s: %d requests, %d busy cycles, %d stall cycles@."
        name s.Memory.chan_requests s.Memory.chan_busy s.Memory.chan_stall)
    r.bus
