(* Chip-level IXP1200 model: N micro-engines behind a shared memory bus,
   fed by chip-level receive FIFO rings and drained through a transmit
   ring.

   The single-engine [Simulator] models one micro-engine faithfully;
   this module instantiates several of them over one shared SRAM/scratch
   image and one bus arbiter ([Memory.bus]), and adds the parts of the
   chip that the paper's evaluation (§12) exercised with real hardware:
   packets arriving at line rate on input ports, bounded receive rings
   that drop on overflow, and per-packet latency from wire arrival to
   completion.

   The run loop is event-driven and fully deterministic: each engine
   keeps its own clock (they run in parallel on real silicon); the chip
   always advances the globally earliest event, which is either the next
   generated packet arrival or the engine whose next runnable thread has
   the smallest timestamp.  Ties break toward arrivals, then lower
   engine/thread ids, so a given program, traffic profile and seed
   reproduce bit-identical cycle counts, drops and latency traces. *)

open Support

type config = {
  engines : int;
  threads : int; (* hardware contexts per engine *)
  clock_mhz : float;
  mem_config : Memory.config;
  contention : bool; (* false = no bus arbiter: unloaded latencies *)
  rx_capacity : int; (* packets per input-port receive ring *)
  tx_capacity : int; (* words buffered in the transmit ring *)
  tx_drain_per_cycle : float; (* words the transmit port drains per cycle *)
  trace : bool;
}

let default_config =
  {
    engines = 6;
    threads = 4;
    clock_mhz = 233.0;
    mem_config = Memory.default_config;
    contention = true;
    rx_capacity = 32;
    tx_capacity = 1024;
    tx_drain_per_cycle = 1.0;
    trace = false;
  }

type port_state = {
  rx : (Pktgen.packet * int) Queue.t; (* packet, arrival cycle *)
  mutable rx_received : int; (* packets that reached this port *)
  mutable rx_dropped : int; (* ring overflow drops *)
}

type t = {
  config : config;
  program : Reg.t Flowgraph.t;
  shared : Memory.t;
  bus : Memory.bus option;
  engines : Simulator.t array;
  mutable ports : port_state array; (* sized on [run] from the generator *)
  in_flight : (Pktgen.packet * int) option array array; (* [engine].[thread] *)
  latencies : int Vec.t;
  mutable completed : int;
  mutable bytes_completed : int;
  mutable generated : int;
  mutable tx_words : int; (* words offered to the transmit ring *)
  mutable tx_dropped_words : int; (* ring-overflow words *)
  mutable tx_drained : int; (* words already on the wire *)
  mutable horizon : int; (* timestamp of the latest event seen *)
  mutable rr_port : int; (* round-robin refill cursor *)
}

let create ?(config = default_config) program =
  let shared = Memory.create ~config:config.mem_config () in
  let bus = if config.contention then Some (Memory.bus_create ()) else None in
  let engines =
    Array.init config.engines (fun e ->
        Simulator.create ~threads:config.threads ~clock_mhz:config.clock_mhz
          ~config:config.mem_config ~trace:config.trace ~shared ?bus
          ~engine_id:e program)
  in
  (* all contexts start idle, waiting for a packet *)
  Array.iter
    (fun sim ->
      Array.iter
        (fun th -> th.Simulator.halted <- true)
        sim.Simulator.threads)
    engines;
  {
    config;
    program;
    shared;
    bus;
    engines;
    ports = [||];
    in_flight = Array.make_matrix config.engines config.threads None;
    latencies = Vec.create ();
    completed = 0;
    bytes_completed = 0;
    generated = 0;
    tx_words = 0;
    tx_dropped_words = 0;
    tx_drained = 0;
    horizon = 0;
    rr_port = 0;
  }

let shared_memory t = t.shared
let engine t e = t.engines.(e)

(* A packet is handed to a context by writing its payload into the
   context's receive FIFO and the head of its private SDRAM packet
   buffer; workloads that expect a particular SDRAM image install their
   own [deliver]. *)
type deliver = t -> engine:int -> thread:int -> Pktgen.packet -> unit

let default_deliver chip ~engine ~thread (pkt : Pktgen.packet) =
  let sim = chip.engines.(engine) in
  Simulator.set_rfifo sim ~thread pkt.Pktgen.payload;
  let sdram = Simulator.sdram_of_thread sim ~thread in
  Memory.load_words sdram Insn.Sdram ~word_offset:0 pkt.Pktgen.payload

(* ------------------------------------------------------------------ *)
(* Event-driven run loop                                               *)
(* ------------------------------------------------------------------ *)

let no_event = max_int

(* Earliest cycle at which [sim] can execute its next instruction, or
   [no_event] when every context is idle. *)
let engine_next_time sim =
  let best = ref no_event in
  Array.iter
    (fun th ->
      if not th.Simulator.halted then
        best := min !best th.Simulator.ready_at)
    sim.Simulator.threads;
  if !best = no_event then no_event else max sim.Simulator.clock !best

(* Deterministic choice of an idle context: engine with the smallest
   local clock (it has been idle longest), then lowest ids. *)
let find_idle chip =
  let best = ref None in
  Array.iteri
    (fun e sim ->
      Array.iteri
        (fun i th ->
          if th.Simulator.halted then
            match !best with
            | Some (_, be, _) when chip.engines.(be).Simulator.clock
                                   <= sim.Simulator.clock -> ()
            | _ -> best := Some (sim, e, i))
        sim.Simulator.threads)
    chip.engines;
  !best

let start_packet chip ~deliver sim e i (pkt : Pktgen.packet) ~arrival ~at =
  let th = sim.Simulator.threads.(i) in
  th.Simulator.block <- (Flowgraph.entry chip.program).Flowgraph.label;
  th.Simulator.pc <- 0;
  th.Simulator.halted <- false;
  th.Simulator.ready_at <- max at sim.Simulator.clock;
  Vec.clear th.Simulator.tfifo;
  deliver chip ~engine:e ~thread:i pkt;
  chip.in_flight.(e).(i) <- Some (pkt, arrival)

(* Move a completed context's transmit FIFO into the chip transmit ring,
   modelling a port that drains [tx_drain_per_cycle] words per cycle:
   words beyond the ring capacity at the completion instant are dropped
   and counted. *)
let flush_tfifo chip sim i ~now =
  let th = sim.Simulator.threads.(i) in
  let n = Vec.length th.Simulator.tfifo in
  if n > 0 then begin
    let drained =
      int_of_float (float_of_int now *. chip.config.tx_drain_per_cycle)
    in
    chip.tx_drained <- max chip.tx_drained (min drained chip.tx_words);
    let level = chip.tx_words - chip.tx_drained in
    let accepted = max 0 (min n (chip.config.tx_capacity - level)) in
    chip.tx_words <- chip.tx_words + accepted;
    chip.tx_dropped_words <- chip.tx_dropped_words + (n - accepted);
    Vec.clear th.Simulator.tfifo
  end

(* Pop the next queued packet across ports, round-robin, arrival order
   within a port. *)
let pop_rx chip =
  let nports = Array.length chip.ports in
  let rec go tries =
    if tries >= nports then None
    else begin
      let p = chip.ports.(chip.rr_port) in
      chip.rr_port <- (chip.rr_port + 1) mod nports;
      if Queue.is_empty p.rx then go (tries + 1) else Some (Queue.pop p.rx)
    end
  in
  if nports = 0 then None else go 0

let complete_packet chip sim e i ~deliver =
  let now = sim.Simulator.clock in
  chip.horizon <- max chip.horizon now;
  (match chip.in_flight.(e).(i) with
  | Some (pkt, arrival) ->
      chip.completed <- chip.completed + 1;
      chip.bytes_completed <- chip.bytes_completed + pkt.Pktgen.size;
      Vec.push chip.latencies (now - arrival);
      chip.in_flight.(e).(i) <- None
  | None -> ());
  flush_tfifo chip sim i ~now;
  match pop_rx chip with
  | Some (pkt, arrival) ->
      start_packet chip ~deliver sim e i pkt ~arrival ~at:now
  | None -> ()

type report = {
  r_config : config;
  cycles : int; (* makespan: latest event on the chip *)
  generated : int;
  completed : int;
  bytes_completed : int;
  rx_received : int array; (* per port *)
  rx_dropped : int array;
  tx_words : int;
  tx_dropped_words : int;
  engine_busy : int array;
  engine_cycles : int array;
  latencies : int array; (* sorted ascending *)
  bus : (string * Memory.channel_stats) list;
}

exception Chip_stuck of string

let run ?(deliver = default_deliver) ?(fuel = 50_000_000) chip gen =
  let m_rx_dropped = Metrics.counter "chip.rx.dropped" in
  let ctx_names =
    Array.init chip.config.threads (fun i -> "ctx" ^ string_of_int i)
  in
  let nports = max 1 gen.Pktgen.config.Pktgen.ports in
  chip.ports <-
    Array.init nports (fun _ ->
        { rx = Queue.create (); rx_received = 0; rx_dropped = 0 });
  let pending = ref (Pktgen.next gen) in
  let budget = ref fuel in
  let queued_packets () =
    Array.exists (fun p -> not (Queue.is_empty p.rx)) chip.ports
  in
  let any_active () =
    Array.exists
      (fun sim ->
        Array.exists
          (fun th -> not th.Simulator.halted)
          sim.Simulator.threads)
      chip.engines
  in
  while !pending <> None || queued_packets () || any_active () do
    decr budget;
    if !budget < 0 then raise (Chip_stuck "chip run: fuel exhausted");
    (* earliest engine event *)
    let best_e = ref (-1) and t_step = ref no_event in
    Array.iteri
      (fun e sim ->
        let t = engine_next_time sim in
        if t < !t_step then begin
          t_step := t;
          best_e := e
        end)
      chip.engines;
    let t_arr =
      match !pending with Some p -> p.Pktgen.arrival | None -> no_event
    in
    if t_arr = no_event && !t_step = no_event then
      (* queued packets but no pending arrival and no runnable context:
         unreachable if the idle-implies-empty-rings invariant holds *)
      raise (Chip_stuck "chip run: queued packets with no runnable context");
    if t_arr <= !t_step then begin
      (* arrival event: hand the packet to an idle context if one
         exists (the receive rings are necessarily empty then), else
         queue it, else drop it *)
      let pkt = Option.get !pending in
      pending := Pktgen.next gen;
      chip.generated <- chip.generated + 1;
      chip.horizon <- max chip.horizon t_arr;
      let port = chip.ports.(pkt.Pktgen.port) in
      port.rx_received <- port.rx_received + 1;
      match find_idle chip with
      | Some (sim, e, i) ->
          start_packet chip ~deliver sim e i pkt ~arrival:t_arr ~at:t_arr
      | None ->
          if Queue.length port.rx < chip.config.rx_capacity then
            Queue.push (pkt, t_arr) port.rx
          else begin
            port.rx_dropped <- port.rx_dropped + 1;
            Metrics.incr m_rx_dropped;
            if Trace.is_enabled () then
              Trace.instant "rx-drop" ~tid:(-1)
                ~args:[ ("port", Trace.Int pkt.Pktgen.port) ]
          end
    end
    else begin
      (* step event: run the earliest context to its next yield *)
      let sim = chip.engines.(!best_e) in
      let best_i = ref (-1) in
      Array.iteri
        (fun i th ->
          if not th.Simulator.halted then
            if
              !best_i < 0
              || th.Simulator.ready_at
                 < sim.Simulator.threads.(!best_i).Simulator.ready_at
            then best_i := i)
        sim.Simulator.threads;
      let th = sim.Simulator.threads.(!best_i) in
      if th.Simulator.ready_at > sim.Simulator.clock then
        sim.Simulator.clock <- th.Simulator.ready_at;
      let step_start = sim.Simulator.clock in
      Simulator.step_thread sim th ~fuel:1_000_000;
      chip.horizon <- max chip.horizon sim.Simulator.clock;
      (* Context-occupancy span: one complete event per contiguous run of
         context [best_i] on engine [best_e] (ended by a context swap on a
         memory reference, or by the packet completing).  Timebase: one
         simulated cycle is exported as one microsecond, so Perfetto's
         ruler reads directly in cycles; tid = engine id. *)
      if Trace.is_enabled () then
        Trace.complete ~cat:"engine" ~tid:!best_e
          ~ts_us:(float_of_int step_start)
          ~dur_us:(float_of_int (sim.Simulator.clock - step_start))
          ctx_names.(!best_i);
      if th.Simulator.halted then
        complete_packet chip sim !best_e !best_i ~deliver
    end
  done;
  let latencies = Vec.to_array chip.latencies in
  Array.sort compare latencies;
  (* Per-channel bus counters: mirrored into the metrics registry (and a
     trace counter series) so `--metrics` shows where memory time went
     without parsing the report. *)
  (match chip.bus with
  | None -> ()
  | Some b ->
      List.iter
        (fun (name, s) ->
          let g field v =
            Metrics.set
              (Metrics.gauge (Printf.sprintf "chip.bus.%s.%s" name field))
              (float_of_int v)
          in
          g "requests" s.Memory.chan_requests;
          g "busy" s.Memory.chan_busy;
          g "stall" s.Memory.chan_stall;
          if Trace.is_enabled () then
            Trace.counter ("bus." ^ name)
              [
                ("busy", float_of_int s.Memory.chan_busy);
                ("stall", float_of_int s.Memory.chan_stall);
              ])
        (Memory.bus_stats b));
  Metrics.set
    (Metrics.gauge "chip.completed")
    (float_of_int chip.completed);
  {
    r_config = chip.config;
    cycles = chip.horizon;
    generated = chip.generated;
    completed = chip.completed;
    bytes_completed = chip.bytes_completed;
    rx_received = Array.map (fun (p : port_state) -> p.rx_received) chip.ports;
    rx_dropped = Array.map (fun (p : port_state) -> p.rx_dropped) chip.ports;
    tx_words = chip.tx_words;
    tx_dropped_words = chip.tx_dropped_words;
    engine_busy = Array.map Simulator.busy_cycles chip.engines;
    engine_cycles = Array.map Simulator.cycles chip.engines;
    latencies;
    bus = (match chip.bus with None -> [] | Some b -> Memory.bus_stats b);
  }

(* ------------------------------------------------------------------ *)
(* Report derivations                                                  *)
(* ------------------------------------------------------------------ *)

let seconds r cycles =
  float_of_int cycles /. (r.r_config.clock_mhz *. 1e6)

(* Achieved forwarding rate in million packets per second. *)
let achieved_mpps r =
  if r.cycles = 0 then 0.
  else float_of_int r.completed /. seconds r r.cycles /. 1e6

(* Achieved payload rate in Mbit/s. *)
let achieved_mbps r =
  if r.cycles = 0 then 0.
  else float_of_int (r.bytes_completed * 8) /. seconds r r.cycles /. 1e6

let dropped r = Array.fold_left ( + ) 0 r.rx_dropped

let drop_rate r =
  if r.generated = 0 then 0.
  else float_of_int (dropped r) /. float_of_int r.generated

(* Mean utilization of engine [e]: issue cycles over the makespan. *)
let utilization r e =
  if r.cycles = 0 then 0.
  else float_of_int r.engine_busy.(e) /. float_of_int r.cycles

let latency_percentile r q =
  let n = Array.length r.latencies in
  if n = 0 then 0
  else begin
    let k = int_of_float (ceil (q *. float_of_int n)) - 1 in
    r.latencies.(max 0 (min (n - 1) k))
  end

let pp_report ppf r =
  Fmt.pf ppf "cycles: %d (%.2f us at %.0f MHz)@." r.cycles
    (seconds r r.cycles *. 1e6)
    r.r_config.clock_mhz;
  Fmt.pf ppf "packets: %d generated, %d completed, %d dropped (%.1f%%)@."
    r.generated r.completed (dropped r)
    (100. *. drop_rate r);
  Fmt.pf ppf "achieved: %.3f Mpps, %.1f Mbit/s payload@." (achieved_mpps r)
    (achieved_mbps r);
  Fmt.pf ppf "tx ring: %d words sent, %d dropped@." r.tx_words
    r.tx_dropped_words;
  Array.iteri
    (fun e busy ->
      Fmt.pf ppf "engine %d: %d busy cycles (%.1f%% utilization)@." e busy
        (100. *. utilization r e))
    r.engine_busy;
  if Array.length r.latencies > 0 then
    Fmt.pf ppf "latency cycles: p50 %d, p90 %d, p99 %d, max %d@."
      (latency_percentile r 0.50) (latency_percentile r 0.90)
      (latency_percentile r 0.99)
      r.latencies.(Array.length r.latencies - 1);
  List.iter
    (fun (name, s) ->
      Fmt.pf ppf "bus %-7s: %d requests, %d busy cycles, %d stall cycles@."
        name s.Memory.chan_requests s.Memory.chan_busy s.Memory.chan_stall)
    r.bus
