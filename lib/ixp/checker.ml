(* Static machine-legality checker for allocated (physical-register)
   programs.

   Independently re-validates everything the ILP model and the coloring
   phases promised:

     - ALU operands come from {A, B, L, LD}, with at most one operand from
       each of the groups A, B, and L+LD; results go to {A, B, S, SD};
     - aggregate transfers use adjacent, ascending registers of the
       correct transfer bank for their memory space, with a legal size;
     - address operands live in A or B;
     - same-register instructions (hash, bit_test_set) have equal register
       numbers on the read and write sides;
     - inserted moves follow the datapaths (no transfer-to-same-transfer
       moves, no moves out of S/SD except to memory);
     - spills/reloads use the correct transfer banks;
     - no clone pseudo-instructions survive allocation.

   Every integration test and benchmark runs this checker on the final
   program; a violation is reported with its block and position. *)

type violation = {
  block : string;
  pos : int;
  message : string;
  loc : Support.Srcloc.t;
      (* source construct the offending block was lowered from;
         [Srcloc.dummy] when the caller supplied no provenance *)
}

let pp_violation ppf v =
  if v.loc == Support.Srcloc.dummy then
    Fmt.pf ppf "%s.%d: %s" v.block v.pos v.message
  else
    Fmt.pf ppf "%a: %s.%d: %s" Support.Srcloc.pp v.loc v.block v.pos v.message

let check_alu_operands add x (y : Reg.t Insn.operand) =
  let add fmt = Fmt.kstr add fmt in
  let bank_of r = Reg.bank r in
  let check_source r =
    if not (Bank.can_feed_alu (bank_of r)) then
      add "ALU operand %s is in bank %s, which cannot feed the ALU"
        (Reg.to_string r)
        (Bank.to_string (bank_of r))
  in
  check_source x;
  (match y with
  | Insn.Reg ry ->
      check_source ry;
      (* group rule: at most one operand from each of A, B, L+LD *)
      let group b =
        match b with
        | Bank.A -> `A
        | Bank.B -> `B
        | Bank.L | Bank.LD -> `X
        | b' -> `Other b'
      in
      if group (bank_of x) = group (bank_of ry) then
        add "ALU operands %s and %s come from the same bank group"
          (Reg.to_string x) (Reg.to_string ry)
  | Insn.Lit _ -> ())

let check_alu_dest add (dst : Reg.t) =
  let add fmt = Fmt.kstr add fmt in
  if not (Bank.can_receive_alu (Reg.bank dst)) then
    add "ALU result %s is in bank %s, which the ALU cannot write"
      (Reg.to_string dst)
      (Bank.to_string (Reg.bank dst))

let check_aggregate add ~what ~expected_bank (regs : Reg.t array) space =
  let add fmt = Fmt.kstr add fmt in
  let n = Array.length regs in
  if not (Insn.legal_aggregate space n) then
    add "%s: illegal %s aggregate size %d" what (Insn.space_to_string space) n;
  Array.iteri
    (fun k r ->
      if not (Bank.equal (Reg.bank r) expected_bank) then
        add "%s: member %d (%s) not in bank %s" what k (Reg.to_string r)
          (Bank.to_string expected_bank);
      if k > 0 && Reg.num r <> Reg.num regs.(k - 1) + 1 then
        add "%s: members %s and %s are not adjacent" what
          (Reg.to_string regs.(k - 1))
          (Reg.to_string r))
    regs

let check_addr add (a : Reg.t Insn.addr) =
  let add fmt = Fmt.kstr add fmt in
  match a.Insn.base with
  | Insn.Lit _ -> ()
  | Insn.Reg r ->
      if not (Bank.equal (Reg.bank r) Bank.A || Bank.equal (Reg.bank r) Bank.B)
      then
        add "address register %s must live in A or B" (Reg.to_string r)

let check_insn add (insn : Reg.t Insn.t) =
  let addf fmt = Fmt.kstr add fmt in
  match insn with
  | Insn.Alu { dst; x; y; _ } ->
      check_alu_dest add dst;
      check_alu_operands add x y
  | Insn.Alu1 { dst; src; _ } ->
      check_alu_dest add dst;
      check_alu_operands add src (Insn.Lit 0)
  | Insn.Imm { dst; _ } -> check_alu_dest add dst
  | Insn.Move { dst; src } ->
      if not (Bank.direct_move_ok ~src:(Reg.bank src) ~dst:(Reg.bank dst)) then
        addf "move %s -> %s violates the datapaths" (Reg.to_string src)
          (Reg.to_string dst)
  | Insn.Read { space; dsts; addr } ->
      check_aggregate add ~what:"read" ~expected_bank:(Insn.read_bank space)
        dsts space;
      check_addr add addr
  | Insn.Write { space; srcs; addr } ->
      check_aggregate add ~what:"write" ~expected_bank:(Insn.write_bank space)
        srcs space;
      check_addr add addr
  | Insn.Hash { dst; src } ->
      if not (Bank.equal (Reg.bank dst) Bank.L) then
        addf "hash destination %s must be in L" (Reg.to_string dst);
      if not (Bank.equal (Reg.bank src) Bank.S) then
        addf "hash source %s must be in S" (Reg.to_string src);
      if Reg.num dst <> Reg.num src then
        addf "hash source/destination must share a register number (%s vs %s)"
          (Reg.to_string src) (Reg.to_string dst)
  | Insn.Bit_test_set { dst; src; addr } ->
      if not (Bank.equal (Reg.bank dst) Bank.L) then
        addf "bit_test_set destination %s must be in L" (Reg.to_string dst);
      if not (Bank.equal (Reg.bank src) Bank.S) then
        addf "bit_test_set source %s must be in S" (Reg.to_string src);
      if Reg.num dst <> Reg.num src then
        addf "bit_test_set register numbers differ (%s vs %s)"
          (Reg.to_string src) (Reg.to_string dst);
      check_addr add addr
  | Insn.Clone _ -> addf "clone pseudo-instruction survived allocation"
  | Insn.Spill { src; _ } ->
      if not (Bank.equal (Reg.bank src) Bank.S) then
        addf "spill source %s must be in S" (Reg.to_string src)
  | Insn.Reload { dst; _ } ->
      if not (Bank.equal (Reg.bank dst) Bank.L) then
        addf "reload destination %s must be in L" (Reg.to_string dst)
  | Insn.Csr_read { dst; _ } ->
      if not Bank.(equal (Reg.bank dst) A || equal (Reg.bank dst) B) then
        addf "CSR read destination %s must be in A or B" (Reg.to_string dst)
  | Insn.Csr_write { src; _ } ->
      if not Bank.(equal (Reg.bank src) A || equal (Reg.bank src) B) then
        addf "CSR write source %s must be in A or B" (Reg.to_string src)
  | Insn.Rfifo_read { dsts; addr } ->
      check_aggregate add ~what:"rfifo read" ~expected_bank:Bank.LD dsts
        Insn.Sdram;
      check_addr add addr
  | Insn.Tfifo_write { srcs; addr } ->
      check_aggregate add ~what:"tfifo write" ~expected_bank:Bank.SD srcs
        Insn.Sdram;
      check_addr add addr
  | Insn.Ctx_arb | Insn.Nop -> ()

let check_term add (term : Reg.t Insn.terminator) =
  match term with
  | Insn.Jump _ | Insn.Halt -> ()
  | Insn.Branch { x; y; _ } -> check_alu_operands add x y

let check ?(provenance = fun _ -> None) (program : Reg.t Flowgraph.t) =
  let violations = ref [] in
  Flowgraph.iter_blocks
    (fun b ->
      let label = b.Flowgraph.label in
      let loc =
        Option.value ~default:Support.Srcloc.dummy (provenance label)
      in
      Array.iteri
        (fun pos insn ->
          let add message =
            violations := { block = label; pos; message; loc } :: !violations
          in
          check_insn add insn)
        b.Flowgraph.insns;
      let add message =
        violations :=
          { block = label; pos = Array.length b.Flowgraph.insns; message; loc }
          :: !violations
      in
      check_term add b.Flowgraph.term;
      (* terminator targets must exist *)
      List.iter
        (fun target ->
          match Flowgraph.block program target with
          | (_ : Reg.t Flowgraph.block) -> ()
          | exception _ -> add ("branch to unknown block " ^ target))
        (Insn.term_targets b.Flowgraph.term))
    program;
  List.rev !violations

let check_exn ?provenance program =
  match check ?provenance program with
  | [] -> ()
  | vs ->
      Support.Diag.ice "machine-legality check failed:@.%a"
        Fmt.(list ~sep:cut pp_violation)
        vs
