(* Cycle-counting micro-engine simulator.

   Executes post-allocation programs (physical registers) and models the
   throughput-relevant behaviour of an IXP1200 micro-engine: per-thread
   register files, shared SRAM/scratch, per-thread SDRAM packet buffers
   and FIFOs, memory latencies, and hardware multi-threading in which a
   thread yields on every memory reference and the engine switches to the
   next ready context (latency hiding).

   This replaces the paper's physical 233 MHz IXP1200 + hardware packet
   generator; see DESIGN.md for the substitution argument. *)

open Support

type thread_state = {
  id : int;
  regs_a : int array;
  regs_b : int array;
  regs_l : int array;
  regs_ld : int array;
  regs_s : int array;
  regs_sd : int array;
  mutable rfifo : int array; (* current inbound packet, as words *)
  mutable rfifo_words : int; (* valid prefix of [rfifo]; pooled buffers
                                are longer than the packet they hold *)
  tfifo : int Vec.t; (* outbound words *)
  xfer : int array; (* scratch buffer for memory transfers (no alloc) *)
  (* private SDRAM packet buffer image *)
  sdram : Memory.t;
  mutable block : Reg.t Flowgraph.block;
  mutable pc : int;
  mutable ready_at : int; (* cycle at which the thread may run again *)
  mutable halted : bool;
  mutable packets_done : int;
  mutable insns_executed : int;
}

type t = {
  program : Reg.t Flowgraph.t;
  shared : Memory.t; (* SRAM + scratch live here *)
  bus : Memory.bus option; (* chip-level arbiter; None = unloaded latencies *)
  engine_id : int; (* position on the chip; 0 when standalone *)
  threads : thread_state array;
  mutable clock : int;
  mutable busy : int; (* cycles spent issuing (vs stalled/idle) *)
  clock_mhz : float;
  trace : bool;
}

exception Stuck of string

let word_mask = Memory.word_mask

let create ?(threads = 1) ?(clock_mhz = 233.0) ?(config = Memory.default_config)
    ?(trace = false) ?shared ?bus ?(engine_id = 0) program =
  let shared =
    match shared with Some m -> m | None -> Memory.create ~config ()
  in
  let mk id =
    {
      id;
      regs_a = Array.make 16 0;
      regs_b = Array.make 16 0;
      regs_l = Array.make 8 0;
      regs_ld = Array.make 8 0;
      regs_s = Array.make 8 0;
      regs_sd = Array.make 8 0;
      rfifo = [||];
      rfifo_words = 0;
      tfifo = Vec.create ();
      xfer = Array.make 8 0;
      sdram = Memory.create ~config ();
      block = Flowgraph.entry program;
      pc = 0;
      ready_at = 0;
      halted = false;
      packets_done = 0;
      insns_executed = 0;
    }
  in
  {
    program;
    shared;
    bus;
    engine_id;
    threads = Array.init threads mk;
    clock = 0;
    busy = 0;
    clock_mhz;
    trace;
  }

let shared_memory t = t.shared
let thread t i = t.threads.(i)

(* Register file access. *)
let reg_file th (bank : Bank.t) =
  match bank with
  | Bank.A -> th.regs_a
  | Bank.B -> th.regs_b
  | Bank.L -> th.regs_l
  | Bank.LD -> th.regs_ld
  | Bank.S -> th.regs_s
  | Bank.SD -> th.regs_sd
  | Bank.M -> raise (Stuck "direct register access to scratch bank M")
  | Bank.C -> raise (Stuck "direct register access to the constant bank C")

let get th (r : Reg.t) = (reg_file th (Reg.bank r)).(Reg.num r)
let set th (r : Reg.t) v = (reg_file th (Reg.bank r)).(Reg.num r) <- v land word_mask

let operand_value th = function
  | Insn.Reg r -> get th r
  | Insn.Lit i -> i land word_mask

let addr_value th (a : Reg.t Insn.addr) =
  (operand_value th a.Insn.base + a.Insn.disp) land word_mask

let to_signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let alu_eval op x y =
  match op with
  | Insn.Add -> x + y
  | Insn.Sub -> x - y
  | Insn.And -> x land y
  | Insn.Or -> x lor y
  | Insn.Xor -> x lxor y
  | Insn.Shl -> if y land 31 = 0 && y <> 0 then 0 else x lsl (y land 31)
  | Insn.Shr -> if y >= 32 then 0 else (x land word_mask) lsr (y land 31)
  | Insn.Asr -> to_signed x asr min 31 (y land 255)
  | Insn.Mullo -> x * y

let cond_eval cond x y =
  let sx = to_signed x and sy = to_signed y in
  match cond with
  | Insn.Eq -> x = y
  | Insn.Ne -> x <> y
  | Insn.Lt -> sx < sy
  | Insn.Le -> sx <= sy
  | Insn.Gt -> sx > sy
  | Insn.Ge -> sx >= sy
  | Insn.Ultl -> x < y
  | Insn.Uge -> x >= y

(* Which memory image does a space access go to?  SRAM and scratch are
   shared; SDRAM is the thread's private packet buffer. *)
let memory_for t th = function
  | Insn.Sram | Insn.Scratch -> t.shared
  | Insn.Sdram -> th.sdram

(* Effective latency of a memory reference: the unloaded latency plus
   any queueing stall dealt by the chip-level bus arbiter.  SDRAM data
   images are per-thread (correctness isolation) but SDRAM *bandwidth*
   is chip-shared, so SDRAM references arbitrate too. *)
let mem_latency t space ~base =
  match t.bus with
  | None -> base
  | Some bus -> Memory.bus_request bus space ~now:t.clock ~latency:base

let fifo_latency t =
  let base = t.shared.Memory.config.Memory.fifo_latency in
  match t.bus with
  | None -> base
  | Some bus -> Memory.bus_fifo_request bus ~now:t.clock ~latency:base

(* Hook invoked when a thread halts: supply the next inbound packet, or
   none to retire the thread. *)
type packet_source = thread:int -> packets_done:int -> int array option

(* Execute one instruction for [th]; returns the latency in cycles. *)
let exec_insn t th insn =
  th.insns_executed <- th.insns_executed + 1;
  if t.trace then
    Fmt.epr "[%d] t%d %s.%d: %a@." t.clock th.id th.block.Flowgraph.label
      th.pc (Insn.pp Reg.pp) insn;
  match insn with
  | Insn.Alu { dst; op; x; y } ->
      set th dst (alu_eval op (get th x) (operand_value th y));
      1
  | Insn.Alu1 { dst; op = `Mov; src } ->
      set th dst (get th src);
      1
  | Insn.Alu1 { dst; op = `Not; src } ->
      set th dst (lnot (get th src));
      1
  | Insn.Alu1 { dst; op = `Neg; src } ->
      set th dst (-get th src);
      1
  | Insn.Imm { dst; value } ->
      set th dst value;
      (* Loading a full 32-bit constant takes two instructions on the
         IXP1200; small constants take one. *)
      if value land word_mask < 0x10000 then 1 else 2
  | Insn.Move { dst; src } ->
      set th dst (get th src);
      1
  | Insn.Read { space; dsts; addr } ->
      let mem = memory_for t th space in
      let count = Array.length dsts in
      Memory.read_into mem space (addr_value th addr) ~count ~dst:th.xfer;
      for k = 0 to count - 1 do
        set th dsts.(k) th.xfer.(k)
      done;
      mem_latency t space ~base:(Memory.latency mem space)
  | Insn.Write { space; srcs; addr } ->
      let mem = memory_for t th space in
      let count = Array.length srcs in
      for k = 0 to count - 1 do
        th.xfer.(k) <- get th srcs.(k)
      done;
      Memory.write_from mem space (addr_value th addr) ~count ~src:th.xfer;
      mem_latency t space ~base:(Memory.latency mem space)
  | Insn.Hash { dst; src } ->
      set th dst (Memory.hash (get th src));
      t.shared.Memory.config.Memory.hash_latency
  | Insn.Bit_test_set { dst; src; addr } ->
      set th dst (Memory.bit_test_set t.shared (addr_value th addr) (get th src));
      mem_latency t Insn.Sram ~base:(Memory.latency t.shared Insn.Sram)
  | Insn.Clone _ -> raise (Stuck "clone pseudo-instruction reached simulator")
  | Insn.Spill { slot; src } ->
      Memory.spill_store t.shared slot (get th src);
      mem_latency t Insn.Scratch ~base:(Memory.latency t.shared Insn.Scratch)
  | Insn.Reload { slot; dst } ->
      set th dst (Memory.spill_load t.shared slot);
      mem_latency t Insn.Scratch ~base:(Memory.latency t.shared Insn.Scratch)
  | Insn.Csr_read { dst; csr } ->
      let v =
        match csr with
        | "ctx" -> th.id
        | "engine" -> t.engine_id
        | "cycle" -> t.clock land word_mask
        | _ -> 0
      in
      set th dst v;
      1
  | Insn.Csr_write _ -> 1
  | Insn.Rfifo_read { dsts; addr } ->
      let base = addr_value th addr / 4 in
      for k = 0 to Array.length dsts - 1 do
        let idx = base + k in
        let v = if idx < th.rfifo_words then th.rfifo.(idx) else 0 in
        set th dsts.(k) v
      done;
      fifo_latency t
  | Insn.Tfifo_write { srcs; addr } ->
      ignore (addr_value th addr);
      for k = 0 to Array.length srcs - 1 do
        Vec.push th.tfifo (get th srcs.(k))
      done;
      fifo_latency t
  | Insn.Ctx_arb -> 1
  | Insn.Nop -> 1

(* Advance [th] through instructions until it yields (memory reference or
   ctx_arb), halts, or runs out of fuel. *)
let step_thread t th ~fuel =
  let yielded = ref false in
  let fuel = ref fuel in
  while (not !yielded) && not th.halted do
    if !fuel <= 0 then
      raise (Stuck (Printf.sprintf "thread %d: fuel exhausted" th.id));
    decr fuel;
    let b = th.block in
    if th.pc < Array.length b.Flowgraph.insns then begin
      let insn = b.Flowgraph.insns.(th.pc) in
      th.pc <- th.pc + 1;
      let lat = exec_insn t th insn in
      t.clock <- t.clock + min lat 2;
      t.busy <- t.busy + min lat 2;
      (* issue cost: memory ops occupy the pipe briefly; the remaining
         latency is hidden by switching threads *)
      if lat > 2 then begin
        th.ready_at <- t.clock + lat - 2;
        yielded := true
      end
      else
        match insn with
        | Insn.Ctx_arb ->
            th.ready_at <- t.clock;
            yielded := true
        | _ -> ()
    end
    else begin
      (match b.Flowgraph.term with
      | Insn.Jump l ->
          th.block <- Flowgraph.block t.program l;
          th.pc <- 0;
          t.clock <- t.clock + 1;
          t.busy <- t.busy + 1
      | Insn.Branch { cond; x; y; ifso; ifnot } ->
          let taken = cond_eval cond (get th x) (operand_value th y) in
          th.block <- Flowgraph.block t.program (if taken then ifso else ifnot);
          th.pc <- 0;
          let c = if taken then 3 else 1 in
          t.clock <- t.clock + c;
          t.busy <- t.busy + c
      | Insn.Halt ->
          th.halted <- true;
          th.packets_done <- th.packets_done + 1)
    end
  done

(* Run a single thread to completion (no packet refill); the common mode
   for semantics tests. *)
let run_single ?(fuel = 10_000_000) t =
  let th = t.threads.(0) in
  while not th.halted do
    (* no other context to hide the latency: absorb the stall *)
    if th.ready_at > t.clock then t.clock <- th.ready_at;
    step_thread t th ~fuel
  done;
  t.clock

(* Multi-threaded throughput run: each thread processes packets supplied
   by [source] until the source dries up. *)
let run_packets ?(fuel = 100_000_000) t (source : packet_source) =
  let restart th =
    match source ~thread:th.id ~packets_done:th.packets_done with
    | None -> false
    | Some packet ->
        th.rfifo <- packet;
        th.rfifo_words <- Array.length packet;
        th.block <- Flowgraph.entry t.program;
        th.pc <- 0;
        th.halted <- false;
        true
  in
  let alive = Array.map (fun th -> restart th) t.threads in
  let any_alive () = Array.exists Fun.id alive in
  let budget = ref fuel in
  while any_alive () && !budget > 0 do
    decr budget;
    (* pick the ready thread with the earliest ready_at *)
    let best = ref (-1) in
    Array.iteri
      (fun i th ->
        if alive.(i) && not th.halted then
          if !best < 0 || th.ready_at < t.threads.(!best).ready_at then best := i)
      t.threads;
    match !best with
    | -1 ->
        (* all alive threads halted: refill *)
        Array.iteri
          (fun i th -> if alive.(i) && th.halted then alive.(i) <- restart th)
          t.threads
    | i ->
        let th = t.threads.(i) in
        if th.ready_at > t.clock then t.clock <- th.ready_at;
        step_thread t th ~fuel:1_000_000;
        if th.halted then alive.(i) <- restart th
  done;
  t.clock

let cycles t = t.clock
let busy_cycles t = t.busy
let packets_done t =
  Array.fold_left (fun acc th -> acc + th.packets_done) 0 t.threads

let insns_executed t =
  Array.fold_left (fun acc th -> acc + th.insns_executed) 0 t.threads

(* Megabits per second for [bytes] of payload processed in [cycles]. *)
let mbps t ~bytes =
  let seconds = float_of_int t.clock /. (t.clock_mhz *. 1e6) in
  if seconds <= 0. then 0.
  else float_of_int (bytes * 8) /. seconds /. 1e6

let read_tfifo t ~thread = Vec.to_array t.threads.(thread).tfifo

let set_rfifo t ~thread packet =
  let th = t.threads.(thread) in
  th.rfifo <- packet;
  th.rfifo_words <- Array.length packet

(* Pooled variant: [buf] outlives the packet and only its first [words]
   entries belong to it.  No allocation. *)
let set_rfifo_view t ~thread buf ~words =
  let th = t.threads.(thread) in
  th.rfifo <- buf;
  th.rfifo_words <- words

let sdram_of_thread t ~thread = t.threads.(thread).sdram
