(* Synthetic traffic generator for the chip- and cluster-level
   simulations.

   Replaces the hardware packet generator of the paper's evaluation
   (§12): a seeded, fully deterministic source of packets with
   configurable traffic profiles.  Given the same configuration and seed
   it produces a bit-identical packet trace, which is what makes the
   chip-level throughput numbers reproducible.

   Generation is flow-level, not just packet-level: every packet belongs
   to a flow with a stable 5-tuple hash, drawn from a seeded population
   whose skew depends on the profile (Zipf user populations, elephant
   flows, spoofed SYN-flood sources).  The cluster load balancer hashes
   on that 5-tuple for flow affinity, so the profiles below are the
   adversarial inputs the balancer is judged against.

   Offered load is expressed in packets per microsecond against the
   micro-engine clock; arrivals are scheduled in whole cycles with the
   fractional residue carried in 16.16 fixed point (integer arithmetic
   only -- the hot path allocates nothing).  [offered_mpps <= 0] means
   saturation: every packet arrives at cycle 0 (back-to-back line rate,
   limited only by the chip).

   The zero-allocation interface is [next_into]: it refills a
   caller-owned [view] whose payload buffer is preallocated at
   [max_payload_words].  [next]/[trace] are compatibility wrappers that
   materialize fresh [packet] records. *)

type profile =
  | Fixed of int (* every payload has this many bytes *)
  | Imix (* classic 7:4:1 mix of small/medium/large payloads *)
  | Bursty of { size : int; burst : int }
      (* [burst] back-to-back packets, then a gap sized to keep the
         configured average offered load *)
  | Flows of { users : int; alpha_pct : int; size : int }
      (* Zipf-distributed user population: user i+1 is weighted
         1/(i+1)^(alpha_pct/100); one flow per user *)
  | Elephants of { flows : int; heavy : int; heavy_pct : int; size : int }
      (* [heavy] elephant flows carry [heavy_pct]%% of all packets; the
         remaining mice share the rest evenly *)
  | Syn_flood of { size : int }
      (* DDoS: minimum-size packets, every one from a fresh spoofed
         source, so no two packets share a flow -- zero cache/affinity
         reuse for the balancer *)
  | Flash_crowd of { size : int; ramp : int }
      (* arrival rate ramps from 1/4x to 4x the configured offered load
         over the first [ramp] packets: a crowd piling onto a service *)
  | Imix_path
      (* pathological IMIX: groups of 11 minimum-size packets plus one
         maximum-size packet arriving back-to-back, then a gap keeping
         the configured average load -- worst case for RX rings *)

let profile_to_string = function
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Imix -> "imix"
  | Bursty { size; burst } -> Printf.sprintf "burst:%d:%d" size burst
  | Flows { users; alpha_pct; size } ->
      Printf.sprintf "flows:%d:%d:%d" users alpha_pct size
  | Elephants { flows = 512; heavy = 4; heavy_pct = 80; size = 576 } ->
      "elephants"
  | Elephants { flows; heavy; heavy_pct; size } ->
      Printf.sprintf "elephants:%d:%d:%d:%d" flows heavy heavy_pct size
  | Syn_flood { size = 40 } -> "flood"
  | Syn_flood { size } -> Printf.sprintf "flood:%d" size
  | Flash_crowd { size = 64; ramp } -> Printf.sprintf "flash:%d" ramp
  | Flash_crowd { size; ramp } -> Printf.sprintf "flash:%d:%d" ramp size
  | Imix_path -> "imix-path"

(* "fixed:64" | "imix" | "burst:64:8" | "flows:1000:120:64" | "elephants"
   | "elephants:512:4:80:576" | "flood" | "flood:64" | "flash:5000"
   | "flash:5000:128" | "imix-path" *)
let profile_of_string s =
  let pos_int n = match int_of_string_opt n with
    | Some n when n > 0 -> Some n
    | _ -> None
  in
  match String.split_on_char ':' s with
  | [ "imix" ] -> Ok Imix
  | [ "imix-path" ] -> Ok Imix_path
  | [ "flood" ] -> Ok (Syn_flood { size = 40 })
  | [ "flood"; n ] -> (
      match pos_int n with
      | Some size -> Ok (Syn_flood { size })
      | None -> Error (Printf.sprintf "bad flood size in %S" s))
  | [ "elephants" ] ->
      Ok (Elephants { flows = 512; heavy = 4; heavy_pct = 80; size = 576 })
  | [ "elephants"; f; h; p; n ] -> (
      match (pos_int f, pos_int h, int_of_string_opt p, pos_int n) with
      | Some flows, Some heavy, Some heavy_pct, Some size
        when heavy < flows && heavy_pct > 0 && heavy_pct < 100 ->
          Ok (Elephants { flows; heavy; heavy_pct; size })
      | _ -> Error (Printf.sprintf "bad elephants profile %S" s))
  | [ "flows"; u; a; n ] -> (
      match (pos_int u, int_of_string_opt a, pos_int n) with
      | Some users, Some alpha_pct, Some size when alpha_pct >= 0 ->
          Ok (Flows { users; alpha_pct; size })
      | _ -> Error (Printf.sprintf "bad flows profile %S" s))
  | [ "flash"; r ] -> (
      match pos_int r with
      | Some ramp -> Ok (Flash_crowd { size = 64; ramp })
      | None -> Error (Printf.sprintf "bad flash ramp in %S" s))
  | [ "flash"; r; n ] -> (
      match (pos_int r, pos_int n) with
      | Some ramp, Some size -> Ok (Flash_crowd { size; ramp })
      | _ -> Error (Printf.sprintf "bad flash profile %S" s))
  | [ "fixed"; n ] -> (
      match pos_int n with
      | Some n -> Ok (Fixed n)
      | None -> Error (Printf.sprintf "bad fixed size in %S" s))
  | [ "burst"; n; b ] -> (
      match (pos_int n, pos_int b) with
      | Some n, Some b -> Ok (Bursty { size = n; burst = b })
      | _ -> Error (Printf.sprintf "bad burst profile %S" s))
  | _ -> Error (Printf.sprintf "unknown traffic profile %S" s)

type config = {
  profile : profile;
  offered_mpps : float; (* packets per microsecond; <= 0 = saturation *)
  clock_mhz : float;
  seed : int;
  count : int; (* total packets to generate *)
  ports : int; (* round-robin across input ports *)
  size_align : int; (* round payload sizes up to this multiple *)
}

let default_config =
  {
    profile = Fixed 64;
    offered_mpps = 1.0;
    clock_mhz = 233.0;
    seed = 1;
    count = 64;
    ports = 1;
    size_align = 4;
  }

(* Largest payload any profile emits: a 1504-byte IMIX frame. *)
let max_payload_bytes = 1504
let max_payload_words = max_payload_bytes / 4

type packet = {
  seq : int;
  port : int;
  arrival : int; (* cycle at which the packet hits the receive ring *)
  size : int; (* payload bytes *)
  flow : int; (* flow identity (stable per flow; fresh per SYN) *)
  hash : int; (* 5-tuple hash of the flow, for balancer steering *)
  payload : int array; (* size/4 words of seeded content *)
}

(* Caller-owned refillable packet: the zero-allocation interface. *)
type view = {
  mutable v_seq : int;
  mutable v_port : int;
  mutable v_arrival : int;
  mutable v_size : int;
  mutable v_words : int; (* valid prefix of [v_payload] *)
  mutable v_flow : int;
  mutable v_hash : int;
  v_payload : int array; (* length [max_payload_words] *)
}

let make_view () =
  {
    v_seq = -1;
    v_port = 0;
    v_arrival = 0;
    v_size = 0;
    v_words = 0;
    v_flow = 0;
    v_hash = 0;
    v_payload = Array.make max_payload_words 0;
  }

type t = {
  config : config;
  mutable state : int; (* PRNG state *)
  mutable emitted : int;
  mutable next_arrival_fp : int; (* 16.16 fixed-point cycle accumulator *)
  gap_fp : int; (* mean inter-arrival gap, 16.16 fixed point *)
  (* flow population (empty for per-packet spoofed sources) *)
  flow_cum : int array; (* cumulative weights scaled to [cum_scale] *)
  flow_hash : int array; (* per-flow 5-tuple hash *)
}

(* xorshift-style 32-bit PRNG over masked OCaml ints; identical on every
   platform, no dependence on the global Random state. *)
let mask = 0xFFFFFFFF

let prng_next g =
  let x = g.state in
  let x = x lxor (x lsl 13) land mask in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land mask in
  let x = if x = 0 then 0x9E3779B9 else x in
  g.state <- x;
  x

(* Deterministic avalanche mix: flow id -> 5-tuple hash.  Stands in for
   hashing (src ip, dst ip, src port, dst port, proto); the flow id is
   the identity of that tuple. *)
let mix32 v =
  let v = v land mask in
  let v = v * 0x9E3779B1 land mask in
  let v = v lxor (v lsr 15) in
  let v = v * 0x85EBCA77 land mask in
  v lxor (v lsr 13) land mask

let fp = 1 lsl 16
let cum_scale = 1 lsl 30

(* Mean inter-arrival gap in cycles for the configured offered load. *)
let interarrival_cycles config =
  if config.offered_mpps <= 0. then 0.
  else config.clock_mhz /. config.offered_mpps

(* Scale per-flow weights to a cumulative table summing to [cum_scale]. *)
let cumulate weights =
  let total = Array.fold_left ( +. ) 0. weights in
  let n = Array.length weights in
  let cum = Array.make n 0 in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. weights.(i);
    cum.(i) <- int_of_float (!acc /. total *. float_of_int cum_scale)
  done;
  cum.(n - 1) <- cum_scale;
  cum

let flow_population ~seed = function
  | Flows { users; alpha_pct; _ } ->
      let alpha = float_of_int alpha_pct /. 100. in
      Array.init users (fun i ->
          1. /. (float_of_int (i + 1) ** alpha))
  | Elephants { flows; heavy; heavy_pct; _ } ->
      let hv = float_of_int heavy_pct /. float_of_int heavy in
      let mice = flows - heavy in
      let mv = float_of_int (100 - heavy_pct) /. float_of_int (max 1 mice) in
      Array.init flows (fun i -> if i < heavy then hv else mv)
  | Fixed _ | Imix | Bursty _ | Flash_crowd _ | Imix_path ->
      (* packet-level profiles still carry flow identity so the hash
         balancer has something to steer on: a modest uniform
         population, seeded per generator *)
      ignore seed;
      Array.make 256 1.
  | Syn_flood _ -> [||] (* spoofed: a fresh flow per packet *)

let create config =
  let weights = flow_population ~seed:config.seed config.profile in
  let n = Array.length weights in
  (* flow hashes are drawn from an independent PRNG stream so the
     per-packet draw sequence does not depend on the population size *)
  let hseed = ref ((config.seed * 0x85EBCA77 land mask) lor 1) in
  let flow_hash =
    Array.init n (fun i ->
        let x = !hseed in
        let x = x lxor (x lsl 13) land mask in
        let x = x lxor (x lsr 17) in
        let x = x lxor (x lsl 5) land mask in
        hseed := if x = 0 then 0x9E3779B9 else x;
        mix32 (x lxor i))
  in
  {
    config;
    (* avoid the all-zero fixed point; fold the seed through one round *)
    state = (config.seed * 0x9E3779B1 land mask) lor 1;
    emitted = 0;
    next_arrival_fp = 0;
    gap_fp =
      (if config.offered_mpps <= 0. then 0
       else int_of_float (interarrival_cycles config *. float_of_int fp));
    flow_cum = (if n = 0 then [||] else cumulate weights);
    flow_hash;
  }

let round_up n align = if align <= 1 then n else (n + align - 1) / align * align

(* IMIX in the classic 7:4:1 proportions, scaled to payload sizes that
   every workload accepts (the real mix is 40/576/1500-byte frames). *)
let imix_size g =
  let r = prng_next g mod 12 in
  if r < 7 then 64 else if r < 11 then 576 else 1504

(* group size of the pathological IMIX burst: 11 mice + 1 elephant *)
let imix_path_group = 12

let size_of g =
  let c = g.config in
  let raw =
    match c.profile with
    | Fixed n -> n
    | Bursty { size; _ } -> size
    | Imix -> imix_size g
    | Flows { size; _ } -> size
    | Elephants { size; _ } -> size
    | Syn_flood { size } -> size
    | Flash_crowd { size; _ } -> size
    | Imix_path -> if g.emitted mod imix_path_group = 0 then 1504 else 40
  in
  min max_payload_bytes (round_up raw c.size_align)

(* Sample a flow for the next packet: binary search of the cumulative
   weight table (no allocation). *)
let flow_of g =
  match g.config.profile with
  | Syn_flood _ ->
      (* every packet spoofs a fresh source *)
      prng_next g
  | _ ->
      let r = prng_next g land (cum_scale - 1) in
      let lo = ref 0 and hi = ref (Array.length g.flow_cum - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if g.flow_cum.(mid) > r then hi := mid else lo := mid + 1
      done;
      !lo

let arrival_of g =
  let c = g.config in
  let gap = g.gap_fp in
  match c.profile with
  | Fixed _ | Imix | Flows _ | Elephants _ | Syn_flood _ ->
      let a = g.next_arrival_fp in
      g.next_arrival_fp <- a + gap;
      a / fp
  | Flash_crowd { ramp; _ } ->
      (* inter-arrival gap shrinks linearly from 4x to 1/4x the mean
         over the first [ramp] packets: the crowd arriving *)
      let a = g.next_arrival_fp in
      let e = min g.emitted ramp in
      let f16 = 64 - (60 * e / ramp) in
      g.next_arrival_fp <- a + (gap * f16 / 16);
      a / fp
  | Bursty { burst; _ } ->
      (* packets inside a burst are back-to-back; the burst boundary
         jumps ahead to keep the long-run average at the offered load *)
      let a = g.next_arrival_fp in
      if (g.emitted + 1) mod burst = 0 then
        g.next_arrival_fp <- a + (gap * burst)
      else g.next_arrival_fp <- a;
      a / fp
  | Imix_path ->
      let a = g.next_arrival_fp in
      if (g.emitted + 1) mod imix_path_group = 0 then
        g.next_arrival_fp <- a + (gap * imix_path_group)
      else g.next_arrival_fp <- a;
      a / fp

(* Refill [v] with the next packet; false when the trace is exhausted.
   Allocation-free: every field is mutated in place and the payload goes
   into the view's preallocated buffer. *)
let next_into g v =
  if g.emitted >= g.config.count then false
  else begin
    let seq = g.emitted in
    let size = size_of g in
    let flow = flow_of g in
    let arrival = arrival_of g in
    let words = (size + 3) / 4 in
    for k = 0 to words - 1 do
      v.v_payload.(k) <- prng_next g
    done;
    g.emitted <- g.emitted + 1;
    v.v_seq <- seq;
    v.v_port <- seq mod g.config.ports;
    v.v_arrival <- arrival;
    v.v_size <- size;
    v.v_words <- words;
    v.v_flow <- flow;
    v.v_hash <-
      (match g.config.profile with
      | Syn_flood _ -> mix32 flow
      | _ -> g.flow_hash.(flow));
    true
  end

(* Compatibility wrapper: materialize the next packet as a record. *)
let scratch = make_view ()

let next g =
  if next_into g scratch then
    Some
      {
        seq = scratch.v_seq;
        port = scratch.v_port;
        arrival = scratch.v_arrival;
        size = scratch.v_size;
        flow = scratch.v_flow;
        hash = scratch.v_hash;
        payload = Array.sub scratch.v_payload 0 scratch.v_words;
      }
  else None

(* Materialize the whole trace (determinism tests, offline inspection). *)
let trace config =
  let g = create config in
  let rec go acc =
    match next g with None -> List.rev acc | Some p -> go (p :: acc)
  in
  go []

(* Offered load actually encoded in a trace, in packets per second
   relative to the configured clock (useful when rounding to whole
   cycles makes the realized load differ from the request). *)
let offered_pps config =
  if config.offered_mpps <= 0. then infinity
  else config.offered_mpps *. 1e6

let pp_packet ppf p =
  Fmt.pf ppf "#%d port%d @%d %dB flow%d" p.seq p.port p.arrival p.size p.flow
