(* Synthetic packet generator for the chip-level simulation.

   Replaces the hardware packet generator of the paper's evaluation
   (§12): a seeded, fully deterministic source of packets with
   configurable traffic profiles.  Given the same configuration and seed
   it produces a bit-identical packet trace, which is what makes the
   chip-level throughput numbers reproducible.

   Offered load is expressed in packets per second against the
   micro-engine clock; arrivals are scheduled in whole cycles with the
   fractional residue carried forward so the long-run rate is exact.
   [offered_mpps <= 0] means saturation: every packet arrives at cycle 0
   (back-to-back line rate, limited only by the chip). *)

type profile =
  | Fixed of int (* every payload has this many bytes *)
  | Imix (* classic 7:4:1 mix of small/medium/large payloads *)
  | Bursty of { size : int; burst : int }
      (* [burst] back-to-back packets, then a gap sized to keep the
         configured average offered load *)

let profile_to_string = function
  | Fixed n -> Printf.sprintf "fixed:%d" n
  | Imix -> "imix"
  | Bursty { size; burst } -> Printf.sprintf "burst:%d:%d" size burst

(* "fixed:64" | "imix" | "burst:64:8" *)
let profile_of_string s =
  match String.split_on_char ':' s with
  | [ "imix" ] -> Ok Imix
  | [ "fixed"; n ] -> (
      match int_of_string_opt n with
      | Some n when n > 0 -> Ok (Fixed n)
      | _ -> Error (Printf.sprintf "bad fixed size in %S" s))
  | [ "burst"; n; b ] -> (
      match (int_of_string_opt n, int_of_string_opt b) with
      | Some n, Some b when n > 0 && b > 0 -> Ok (Bursty { size = n; burst = b })
      | _ -> Error (Printf.sprintf "bad burst profile %S" s))
  | _ -> Error (Printf.sprintf "unknown traffic profile %S" s)

type config = {
  profile : profile;
  offered_mpps : float; (* packets per microsecond; <= 0 = saturation *)
  clock_mhz : float;
  seed : int;
  count : int; (* total packets to generate *)
  ports : int; (* round-robin across input ports *)
  size_align : int; (* round payload sizes up to this multiple *)
}

let default_config =
  {
    profile = Fixed 64;
    offered_mpps = 1.0;
    clock_mhz = 233.0;
    seed = 1;
    count = 64;
    ports = 1;
    size_align = 4;
  }

type packet = {
  seq : int;
  port : int;
  arrival : int; (* cycle at which the packet hits the receive ring *)
  size : int; (* payload bytes *)
  payload : int array; (* size/4 words of seeded content *)
}

type t = {
  config : config;
  mutable state : int; (* PRNG state *)
  mutable emitted : int;
  mutable next_arrival : float; (* fractional cycle accumulator *)
}

(* xorshift-style 32-bit PRNG over masked OCaml ints; identical on every
   platform, no dependence on the global Random state. *)
let mask = 0xFFFFFFFF

let prng_next g =
  let x = g.state in
  let x = x lxor (x lsl 13) land mask in
  let x = x lxor (x lsr 17) in
  let x = x lxor (x lsl 5) land mask in
  let x = if x = 0 then 0x9E3779B9 else x in
  g.state <- x;
  x

let create config =
  {
    config;
    (* avoid the all-zero fixed point; fold the seed through one round *)
    state = (config.seed * 0x9E3779B1 land mask) lor 1;
    emitted = 0;
    next_arrival = 0.;
  }

(* Mean inter-arrival gap in cycles for the configured offered load. *)
let interarrival_cycles config =
  if config.offered_mpps <= 0. then 0.
  else config.clock_mhz /. config.offered_mpps

let round_up n align = if align <= 1 then n else (n + align - 1) / align * align

(* IMIX in the classic 7:4:1 proportions, scaled to payload sizes that
   every workload accepts (the real mix is 40/576/1500-byte frames). *)
let imix_size g =
  let r = prng_next g mod 12 in
  if r < 7 then 64 else if r < 11 then 576 else 1504

let size_of g =
  let c = g.config in
  let raw =
    match c.profile with
    | Fixed n -> n
    | Bursty { size; _ } -> size
    | Imix -> imix_size g
  in
  round_up raw c.size_align

let arrival_of g =
  let c = g.config in
  let gap = interarrival_cycles c in
  match c.profile with
  | Fixed _ | Imix ->
      let a = g.next_arrival in
      g.next_arrival <- a +. gap;
      int_of_float a
  | Bursty { burst; _ } ->
      (* packets inside a burst are back-to-back; the burst boundary
         jumps ahead to keep the long-run average at the offered load *)
      let a = g.next_arrival in
      if (g.emitted + 1) mod burst = 0 then
        g.next_arrival <- a +. (gap *. float_of_int burst)
      else g.next_arrival <- a;
      int_of_float a

let next g =
  if g.emitted >= g.config.count then None
  else begin
    let seq = g.emitted in
    let size = size_of g in
    let arrival = arrival_of g in
    let words = (size + 3) / 4 in
    let payload = Array.init words (fun _ -> prng_next g) in
    g.emitted <- g.emitted + 1;
    Some { seq; port = seq mod g.config.ports; arrival; size; payload }
  end

(* Materialize the whole trace (determinism tests, offline inspection). *)
let trace config =
  let g = create config in
  let rec go acc =
    match next g with None -> List.rev acc | Some p -> go (p :: acc)
  in
  go []

(* Offered load actually encoded in a trace, in packets per second
   relative to the configured clock (useful when rounding to whole
   cycles makes the realized load differ from the request). *)
let offered_pps config =
  if config.offered_mpps <= 0. then infinity
  else config.offered_mpps *. 1e6

let pp_packet ppf p =
  Fmt.pf ppf "#%d port%d @%d %dB" p.seq p.port p.arrival p.size
