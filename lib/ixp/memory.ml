(* Memory system model for the simulated IXP1200.

   Three word-addressed spaces with the alignment rules the paper
   describes (§1.1): SDRAM transfers move 8-byte (2-word) aligned units,
   SRAM transfers 4-byte (1-word) aligned units; scratch behaves like
   SRAM.  All values are 32-bit words stored as masked OCaml ints.

   Latencies are unloaded approximations of IXP1200 figures and are
   configurable; the throughput benchmarks only depend on their relative
   magnitudes (SDRAM > SRAM > scratch >> ALU). *)

let word_mask = 0xFFFFFFFF

type config = {
  sram_words : int;
  sdram_words : int;
  scratch_words : int;
  sram_latency : int;
  sdram_latency : int;
  scratch_latency : int;
  hash_latency : int;
  fifo_latency : int;
}

let default_config =
  {
    sram_words = 64 * 1024;
    sdram_words = 256 * 1024;
    scratch_words = 1024;
    sram_latency = 18;
    sdram_latency = 33;
    scratch_latency = 12;
    hash_latency = 14;
    fifo_latency = 10;
  }

type t = {
  config : config;
  sram : int array;
  sdram : int array;
  scratch : int array;
  (* Spill area lives at the top of scratch; slots grow downward. *)
  mutable spill_base : int;
}

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let create ?(config = default_config) () =
  {
    config;
    sram = Array.make config.sram_words 0;
    sdram = Array.make config.sdram_words 0;
    scratch = Array.make config.scratch_words 0;
    spill_base = config.scratch_words - 64;
  }

let space_array t = function
  | Insn.Sram -> t.sram
  | Insn.Sdram -> t.sdram
  | Insn.Scratch -> t.scratch

let latency t = function
  | Insn.Sram -> t.config.sram_latency
  | Insn.Sdram -> t.config.sdram_latency
  | Insn.Scratch -> t.config.scratch_latency

(* Byte address -> word index, enforcing the alignment rule of the
   space.  SDRAM additionally requires the *transfer* to start at an
   8-byte boundary. *)
let word_index t space byte_addr ~count =
  let align = match space with Insn.Sdram -> 8 | _ -> 4 in
  if byte_addr mod align <> 0 then
    fault "%s access at 0x%x violates %d-byte alignment"
      (Insn.space_to_string space) byte_addr align;
  if not (Insn.legal_aggregate space count) then
    fault "illegal %s aggregate size %d" (Insn.space_to_string space) count;
  let arr = space_array t space in
  let idx = byte_addr / 4 in
  if idx < 0 || idx + count > Array.length arr then
    fault "%s access at 0x%x (+%d words) out of range"
      (Insn.space_to_string space) byte_addr count;
  idx

let read t space byte_addr ~count =
  let idx = word_index t space byte_addr ~count in
  let arr = space_array t space in
  Array.init count (fun k -> arr.(idx + k))

(* Allocation-free transfer variants: the caller owns the buffer (the
   simulator keeps one per thread), so the hot loop moves words without
   materializing a fresh array per memory reference. *)
let read_into t space byte_addr ~count ~dst =
  let idx = word_index t space byte_addr ~count in
  let arr = space_array t space in
  for k = 0 to count - 1 do
    Array.unsafe_set dst k (Array.unsafe_get arr (idx + k))
  done

let write_from t space byte_addr ~count ~src =
  let idx = word_index t space byte_addr ~count in
  let arr = space_array t space in
  for k = 0 to count - 1 do
    Array.unsafe_set arr (idx + k) (Array.unsafe_get src k land word_mask)
  done

let write t space byte_addr values =
  let count = Array.length values in
  let idx = word_index t space byte_addr ~count in
  let arr = space_array t space in
  Array.iteri (fun k v -> arr.(idx + k) <- v land word_mask) values

(* Word-granular accessors used by test harnesses and loaders. *)
let peek t space word = (space_array t space).(word)
let poke t space word v = (space_array t space).(word) <- v land word_mask

let load_words t space ~word_offset values =
  Array.iteri (fun k v -> poke t space (word_offset + k) v) values

(* bit_test_set: atomically OR [v] into SRAM at [byte_addr], returning
   the previous value. *)
let bit_test_set t byte_addr v =
  let idx = word_index t Insn.Sram byte_addr ~count:1 in
  let old = t.sram.(idx) in
  t.sram.(idx) <- (old lor v) land word_mask;
  old

(* Deterministic stand-in for the IXP hash unit (a polynomial hash over
   48/64-bit quantities on real hardware). *)
let hash v =
  let v = v land word_mask in
  let v = v * 0x9E3779B1 land word_mask in
  let v = v lxor (v lsr 15) in
  let v = v * 0x85EBCA77 land word_mask in
  v lxor (v lsr 13) land word_mask

(* Spill slots (scratch-resident).  The allocator asks for a slot index;
   the simulator maps it into the reserved area. *)
let spill_addr t slot =
  let w = t.spill_base + slot in
  if w >= t.config.scratch_words then fault "spill slot %d out of range" slot;
  w

let spill_store t slot v = t.scratch.(spill_addr t slot) <- v land word_mask
let spill_load t slot = t.scratch.(spill_addr t slot)

(* ------------------------------------------------------------------ *)
(* Memory-bus arbiter                                                  *)
(* ------------------------------------------------------------------ *)

(* The IXP1200's micro-engines share the SRAM, SDRAM and scratchpad
   units through a common command bus; under load, requests queue at the
   unit and the requester sees the queueing delay on top of the unloaded
   latency.  We model each unit as a single-server channel: a request
   issued at [now] starts service at [max now free_at], occupies the
   unit for [occupancy] cycles (the unit's initiation interval, smaller
   than the full latency because the units are pipelined), and completes
   [latency] cycles after service starts.  The single-engine simulator
   runs without a bus and sees only the unloaded latencies; the chip
   model layers one bus over all engines. *)

type channel = {
  occupancy : int; (* cycles between back-to-back request starts *)
  mutable free_at : int; (* cycle at which the unit can start a request *)
  mutable requests : int;
  mutable busy_cycles : int;
  mutable stall_cycles : int; (* total queueing delay dealt to requesters *)
}

type bus = {
  sram_chan : channel;
  sdram_chan : channel;
  scratch_chan : channel;
  fifo_chan : channel; (* receive/transmit FIFO bus *)
}

let channel_create occupancy =
  { occupancy; free_at = 0; requests = 0; busy_cycles = 0; stall_cycles = 0 }

(* Default initiation intervals, roughly latency/4: the units are
   pipelined but an aggregate transfer holds the data bus for several
   cycles. *)
let bus_create ?(sram_occupancy = 5) ?(sdram_occupancy = 8)
    ?(scratch_occupancy = 3) ?(fifo_occupancy = 3) () =
  {
    sram_chan = channel_create sram_occupancy;
    sdram_chan = channel_create sdram_occupancy;
    scratch_chan = channel_create scratch_occupancy;
    fifo_chan = channel_create fifo_occupancy;
  }

let bus_channel bus = function
  | Insn.Sram -> bus.sram_chan
  | Insn.Sdram -> bus.sdram_chan
  | Insn.Scratch -> bus.scratch_chan

(* Issue a request on [chan] at cycle [now] with unloaded latency
   [latency]; returns the effective latency including any queueing
   stall.  Deterministic: depends only on the arrival order of
   requests. *)
let channel_request chan ~now ~latency =
  let start = max now chan.free_at in
  let stall = start - now in
  chan.free_at <- start + chan.occupancy;
  chan.requests <- chan.requests + 1;
  chan.busy_cycles <- chan.busy_cycles + chan.occupancy;
  chan.stall_cycles <- chan.stall_cycles + stall;
  stall + latency

let bus_request bus space ~now ~latency =
  channel_request (bus_channel bus space) ~now ~latency

let bus_fifo_request bus ~now ~latency =
  channel_request bus.fifo_chan ~now ~latency

type channel_stats = { chan_requests : int; chan_busy : int; chan_stall : int }

let channel_stats c =
  {
    chan_requests = c.requests;
    chan_busy = c.busy_cycles;
    chan_stall = c.stall_cycles;
  }

let bus_stats bus =
  [
    ("sram", channel_stats bus.sram_chan);
    ("sdram", channel_stats bus.sdram_chan);
    ("scratch", channel_stats bus.scratch_chan);
    ("fifo", channel_stats bus.fifo_chan);
  ]
