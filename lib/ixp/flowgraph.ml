(* Control-flow graphs of IXP instructions, polymorphic in the register
   representation (virtual temporaries before allocation, physical
   registers after).

   Blocks are identified by string labels.  Program points -- the set P of
   the paper's model -- are materialized by [points]: one point before
   every instruction, one after the last instruction of each block.  A
   branch is "followed by a single point that is connected to all points
   at the targets of the branch" (paper §5.2); we realize this by giving
   each block one exit point and linking it to the entry points of its
   successors. *)

open Support

type 'r block = {
  label : string;
  mutable insns : 'r Insn.t array;
  mutable term : 'r Insn.terminator;
}

type 'r t = {
  mutable blocks : 'r block list; (* in layout order; head = entry *)
  tbl : (string, 'r block) Hashtbl.t;
}

let create () = { blocks = []; tbl = Hashtbl.create 16 }

let add_block t ~label ~insns ~term =
  if Hashtbl.mem t.tbl label then Diag.ice "Flowgraph: duplicate block %s" label;
  let b = { label; insns = Array.of_list insns; term } in
  t.blocks <- t.blocks @ [ b ];
  Hashtbl.replace t.tbl label b;
  b

let entry t =
  match t.blocks with
  | [] -> Diag.ice "Flowgraph: empty graph"
  | b :: _ -> b

(* [Hashtbl.find] rather than [find_opt]: the simulator resolves branch
   targets on its hot path, and the option would be a per-jump minor
   allocation. *)
let block t label =
  match Hashtbl.find t.tbl label with
  | b -> b
  | exception Not_found -> Diag.ice "Flowgraph: unknown block %s" label

let blocks t = t.blocks
let num_blocks t = List.length t.blocks

let successors t b = List.map (block t) (Insn.term_targets b.term)

let predecessors t =
  let preds = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace preds b.label []) t.blocks;
  List.iter
    (fun b ->
      List.iter
        (fun succ ->
          Hashtbl.replace preds succ
            (b.label :: Option.value ~default:[] (Hashtbl.find_opt preds succ)))
        (Insn.term_targets b.term))
    t.blocks;
  preds

let num_insns t =
  List.fold_left (fun acc b -> acc + Array.length b.insns + 1) 0 t.blocks

let iter_blocks f t = List.iter f t.blocks

let map_regs f t =
  let t' = create () in
  List.iter
    (fun b ->
      ignore
        (add_block t' ~label:b.label
           ~insns:(Array.to_list (Array.map (Insn.map_regs f) b.insns))
           ~term:(Insn.map_term f b.term)))
    t.blocks;
  t'

(* ------------------------------------------------------------------ *)
(* Program points                                                      *)
(* ------------------------------------------------------------------ *)

(* Point [k] of block [b] sits before instruction [k] for
   k < Array.length insns; point [Array.length insns] is the block's exit
   point (just before the terminator's effects transfer control). *)
type point = { block : string; pos : int }

let point_compare a b =
  match String.compare a.block b.block with
  | 0 -> Int.compare a.pos b.pos
  | c -> c

let pp_point ppf p = Fmt.pf ppf "%s.%d" p.block p.pos

let point_name p = Printf.sprintf "%s.%d" p.block p.pos

module Point_map = Map.Make (struct
  type t = point

  let compare = point_compare
end)

(* All points of the graph, in layout order. *)
let points t =
  List.concat_map
    (fun b ->
      List.init (Array.length b.insns + 1) (fun pos -> { block = b.label; pos }))
    t.blocks

(* Points where another hardware context may run: point k+1 of a block
   whose instruction k yields (see [Insn.yields]).  [Ctx_arb] and the
   long-latency references are ordinary instructions -- they do not end
   a block and contribute no successor edges, so the CFG shape is
   unchanged by context switching; only the cross-context interleaving
   is affected.  Block exit points are not yield points: terminators
   (jumps, branches, halt) execute without releasing the engine. *)
let yield_points t =
  List.concat_map
    (fun b ->
      Array.to_list b.insns
      |> List.mapi (fun k insn -> (k, insn))
      |> List.filter_map (fun (k, insn) ->
             if Insn.yields insn then Some { block = b.label; pos = k + 1 }
             else None))
    t.blocks

(* Edges between points:
   - within a block, point k --insn k--> point k+1;
   - the exit point of a block connects to the entry point (pos 0) of
     every successor block (a pure control transfer: all live variables
     are "copied unchanged", i.e. members of the paper's Copy set). *)
type point_edge =
  | Through_insn of point * point (* separated by one instruction *)
  | Control of point * point (* block exit -> successor entry *)

let point_edges t =
  List.concat_map
    (fun b ->
      let n = Array.length b.insns in
      let within =
        List.init n (fun k ->
            Through_insn
              ({ block = b.label; pos = k }, { block = b.label; pos = k + 1 }))
      in
      let control =
        List.map
          (fun succ ->
            Control ({ block = b.label; pos = n }, { block = succ; pos = 0 }))
          (Insn.term_targets b.term)
      in
      within @ control)
    t.blocks

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp pp_reg ppf t =
  List.iter
    (fun b ->
      Fmt.pf ppf "%s:@." b.label;
      Array.iter (fun i -> Fmt.pf ppf "  %a@." (Insn.pp pp_reg) i) b.insns;
      Fmt.pf ppf "  %a@." (Insn.pp_term pp_reg) b.term)
    t.blocks

let to_string pp_reg t = Fmt.str "%a" (pp pp_reg) t
