(* Calendar-queue / timing-wheel scheduler over a fixed population of
   event sources.

   The chip and cluster run loops schedule one pending event per source
   (an engine's next issue cycle, a chip's next internal event) and
   repeatedly pop the globally earliest one.  Sources are dense integer
   ids, every structure is a preallocated flat [int array], and all
   operations are allocation-free, which is what lets the steady-state
   simulation loop run at zero minor words per packet.

   The wheel is a power-of-two array of buckets indexed by cycle modulo
   the wheel size; each bucket holds an intrusive doubly-linked list of
   event ids (the links live in [next]/[prev], one slot per id, since a
   source has at most one scheduled event).  An event scheduled more
   than a full wheel turn ahead simply stays in its bucket until the
   cursor comes round to its true cycle -- the classic timing-wheel
   "rounds" scheme, checked via the exact [at] timestamp.

   Determinism: [pop] returns the event with the smallest timestamp,
   breaking ties toward the lowest id, so run loops built on the wheel
   reproduce the scan order of the nested-loop scheduler they replace. *)

type t = {
  size : int; (* power of two *)
  mask : int;
  head : int array; (* bucket -> first event id, or -1 *)
  next : int array; (* event id -> next id in its bucket, or -1 *)
  prev : int array; (* event id -> previous id, or -1 when list head *)
  at : int array; (* event id -> scheduled cycle; meaningful iff queued *)
  queued : Bytes.t; (* event id -> '\001' when scheduled *)
  mutable live : int; (* number of scheduled events *)
  mutable cursor : int; (* no scheduled event is earlier than this *)
}

let no_event = max_int

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ?(size = 1024) nevents =
  if nevents <= 0 then invalid_arg "Event_wheel.create: nevents <= 0";
  let size = pow2 (max 2 size) 2 in
  {
    size;
    mask = size - 1;
    head = Array.make size (-1);
    next = Array.make nevents (-1);
    prev = Array.make nevents (-1);
    at = Array.make nevents no_event;
    queued = Bytes.make nevents '\000';
    live = 0;
    cursor = 0;
  }

let is_empty t = t.live = 0
let live t = t.live
let is_scheduled t id = Bytes.unsafe_get t.queued id <> '\000'
let scheduled_at t id = if is_scheduled t id then t.at.(id) else no_event

let clear t =
  Array.fill t.head 0 t.size (-1);
  Array.fill t.next 0 (Array.length t.next) (-1);
  Array.fill t.prev 0 (Array.length t.prev) (-1);
  Array.fill t.at 0 (Array.length t.at) no_event;
  Bytes.fill t.queued 0 (Bytes.length t.queued) '\000';
  t.live <- 0;
  t.cursor <- 0

let unlink t id =
  let n = t.next.(id) and p = t.prev.(id) in
  if p >= 0 then t.next.(p) <- n
  else t.head.(t.at.(id) land t.mask) <- n;
  if n >= 0 then t.prev.(n) <- p;
  t.next.(id) <- -1;
  t.prev.(id) <- -1

let cancel t id =
  if is_scheduled t id then begin
    unlink t id;
    Bytes.unsafe_set t.queued id '\000';
    t.at.(id) <- no_event;
    t.live <- t.live - 1
  end

(* (Re)schedule [id] at cycle [cycle].  Scheduling before the cursor is
   allowed and rolls the cursor back: the chip run loop peeks at the
   wheel's next time (advancing the cursor) before deciding whether a
   packet arrival happens first, and an arrival can start an engine at a
   cycle earlier than the peeked event. *)
let schedule t id ~cycle =
  if cycle < 0 then invalid_arg "Event_wheel.schedule: negative cycle";
  if cycle < t.cursor then t.cursor <- cycle;
  if is_scheduled t id then unlink t id
  else begin
    Bytes.unsafe_set t.queued id '\001';
    t.live <- t.live + 1
  end;
  t.at.(id) <- cycle;
  let b = cycle land t.mask in
  let h = t.head.(b) in
  t.next.(id) <- h;
  t.prev.(id) <- -1;
  if h >= 0 then t.prev.(h) <- id;
  t.head.(b) <- id

(* Does the bucket for [cycle] contain an event at exactly [cycle]? *)
let bucket_has t cycle =
  let id = ref t.head.(cycle land t.mask) in
  let found = ref false in
  while (not !found) && !id >= 0 do
    if t.at.(!id) = cycle then found := true else id := t.next.(!id)
  done;
  !found

(* How many empty cycles the cursor probes bucket-by-bucket before
   giving up and jumping straight to the true minimum.  Dense event
   streams resolve in a probe or two; sparse streams (low offered load,
   gaps of hundreds of cycles between events) pay one O(nevents) scan
   instead of one probe per empty cycle. *)
let probe_limit = 64

(* Earliest scheduled cycle, advancing the cursor to it; [no_event] when
   nothing is scheduled.  Allocation-free. *)
let next_time t =
  if t.live = 0 then no_event
  else begin
    let tries = ref 0 in
    while !tries < probe_limit && not (bucket_has t t.cursor) do
      t.cursor <- t.cursor + 1;
      incr tries
    done;
    if not (bucket_has t t.cursor) then begin
      (* sparse region: scan the (small, fixed) event population *)
      let m = ref no_event in
      for id = 0 to Array.length t.at - 1 do
        if is_scheduled t id && t.at.(id) < !m then m := t.at.(id)
      done;
      t.cursor <- !m
    end;
    t.cursor
  end

(* Remove and return the id of the earliest event (lowest id on ties).
   Must only be called when [next_time] returned a real cycle. *)
let pop t =
  let cycle = next_time t in
  if cycle = no_event then invalid_arg "Event_wheel.pop: empty";
  let best = ref (-1) in
  let id = ref t.head.(cycle land t.mask) in
  while !id >= 0 do
    if t.at.(!id) = cycle && (!best < 0 || !id < !best) then best := !id;
    id := t.next.(!id)
  done;
  cancel t !best;
  !best
