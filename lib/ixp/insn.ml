(* IXP micro-engine instruction set, polymorphic in the register
   representation: ['r = Support.Ident.t] before register allocation
   (virtual temporaries) and ['r = Reg.t] afterwards (bank + number).

   The subset modelled covers everything the paper's ILP formulation has
   to reason about: ALU operations (with the one-operand-per-bank-group
   rule), immediate loads, aggregate memory transfers to/from SRAM, SDRAM
   and scratch, the [hash] and [bit_test_set] operations whose source and
   destination must share a register *number* across two transfer banks
   (SameReg), CSR access, FIFO transfers, thread synchronization, and the
   [clone] pseudo-instruction introduced by the SSU pass. *)

type alu_op =
  | Add
  | Sub
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Asr
  | Mullo (* synthesized multiply step; IXP1200 has no full multiply *)

let alu_op_to_string = function
  | Add -> "add"
  | Sub -> "sub"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Asr -> "asr"
  | Mullo -> "mullo"

type cond = Eq | Ne | Lt | Le | Gt | Ge | Ultl | Uge

let cond_to_string = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Le -> "le"
  | Gt -> "gt"
  | Ge -> "ge"
  | Ultl -> "ult"
  | Uge -> "uge"

let negate_cond = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Ge -> Lt
  | Le -> Gt
  | Gt -> Le
  | Ultl -> Uge
  | Uge -> Ultl

type space = Sram | Sdram | Scratch

let space_to_string = function
  | Sram -> "sram"
  | Sdram -> "sdram"
  | Scratch -> "scratch"

(* Read-side / write-side transfer banks for each memory space.  Scratch
   shares the SRAM transfer banks (paper §1: scratch "also accessed via L
   and LD" -- we use the L/S pair). *)
let read_bank = function Sram | Scratch -> Bank.L | Sdram -> Bank.LD
let write_bank = function Sram | Scratch -> Bank.S | Sdram -> Bank.SD

type 'r operand = Reg of 'r | Lit of int

type 'r addr = { base : 'r operand; disp : int }

type 'r t =
  | Alu of { dst : 'r; op : alu_op; x : 'r; y : 'r operand }
  | Alu1 of { dst : 'r; op : [ `Mov | `Not | `Neg ]; src : 'r }
  | Imm of { dst : 'r; value : int }
  (* Aggregate memory read: [dsts] land in adjacent registers of the
     read-transfer bank of [space]; 1-8 words (SDRAM: even counts). *)
  | Read of { space : space; dsts : 'r array; addr : 'r addr }
  | Write of { space : space; srcs : 'r array; addr : 'r addr }
  (* dst <- hash(src): dst in L, src in S, same register number. *)
  | Hash of { dst : 'r; src : 'r }
  (* dst <- sram[ea, bit_test_set] <- src: same register number. *)
  | Bit_test_set of { dst : 'r; src : 'r; addr : 'r addr }
  (* SSU pseudo-instruction: all dsts are non-interfering copies of src. *)
  | Clone of { dsts : 'r array; src : 'r }
  (* Inter-bank move inserted by the allocator (identity through ALU). *)
  | Move of { dst : 'r; src : 'r }
  (* Spill/reload through scratch memory at a fixed slot. *)
  | Spill of { slot : int; src : 'r }
  | Reload of { slot : int; dst : 'r }
  | Csr_read of { dst : 'r; csr : string }
  | Csr_write of { src : 'r; csr : string }
  (* Receive/transmit FIFO transfers (modelled as special memory). *)
  | Rfifo_read of { dsts : 'r array; addr : 'r addr }
  | Tfifo_write of { srcs : 'r array; addr : 'r addr }
  | Ctx_arb (* voluntary thread swap *)
  | Nop

type 'r terminator =
  | Jump of string
  | Branch of { cond : cond; x : 'r; y : 'r operand; ifso : string; ifnot : string }
  | Halt

(* ------------------------------------------------------------------ *)
(* Use/def sets                                                        *)
(* ------------------------------------------------------------------ *)

let operand_uses = function Reg r -> [ r ] | Lit _ -> []
let addr_uses a = operand_uses a.base

let defs = function
  | Alu { dst; _ } | Alu1 { dst; _ } | Imm { dst; _ } -> [ dst ]
  | Read { dsts; _ } | Rfifo_read { dsts; _ } -> Array.to_list dsts
  | Hash { dst; _ } | Bit_test_set { dst; _ } -> [ dst ]
  | Clone { dsts; _ } -> Array.to_list dsts
  | Move { dst; _ } | Reload { dst; _ } | Csr_read { dst; _ } -> [ dst ]
  | Write _ | Tfifo_write _ | Csr_write _ | Spill _ | Ctx_arb | Nop -> []

let uses = function
  | Alu { x; y; _ } -> x :: operand_uses y
  | Alu1 { src; _ } -> [ src ]
  | Imm _ -> []
  | Read { addr; _ } | Rfifo_read { addr; _ } -> addr_uses addr
  | Write { srcs; addr; _ } | Tfifo_write { srcs; addr; _ } ->
      Array.to_list srcs @ addr_uses addr
  | Hash { src; _ } -> [ src ]
  | Bit_test_set { src; addr; _ } -> src :: addr_uses addr
  | Clone { src; _ } -> [ src ]
  | Move { src; _ } | Spill { src; _ } | Csr_write { src; _ } -> [ src ]
  | Reload _ | Csr_read _ | Ctx_arb | Nop -> []

let term_uses = function
  | Jump _ | Halt -> []
  | Branch { x; y; _ } -> x :: operand_uses y

let term_targets = function
  | Jump l -> [ l ]
  | Branch { ifso; ifnot; _ } -> [ ifso; ifnot ]
  | Halt -> []

(* Does executing this instruction hand the engine to another ready
   context?  Mirrors [Simulator.step_thread]: references whose latency
   exceeds the 2-cycle issue cost yield -- under the default timing
   model that is every memory, hash, and FIFO operation -- and so does
   the voluntary [Ctx_arb].  ALU work, immediates, moves, and CSR
   accesses complete in-pipe and never yield.

   Note that [Ctx_arb] (like the CSR instructions) is a *plain*
   instruction, not a terminator: control resumes at the next
   instruction of the same block, and block successors derive only from
   [term_targets].  What a yield changes is the cross-context schedule,
   not the control-flow graph. *)
let yields = function
  | Read _ | Write _ | Hash _ | Bit_test_set _ | Spill _ | Reload _
  | Rfifo_read _ | Tfifo_write _ | Ctx_arb ->
      true
  | Alu _ | Alu1 _ | Imm _ | Move _ | Clone _ | Csr_read _ | Csr_write _ | Nop
    ->
      false

(* ------------------------------------------------------------------ *)
(* Operand-class machine description (paper §5.2)                      *)
(* ------------------------------------------------------------------ *)

(* Classes of definitions and uses, mirroring the AMPL sets:
     Def_abw       result may go to A, B, S or SD (DefABW);
     Def_ab        result must go to A or B (e.g. reloads land via L->A/B,
                   CSR reads);
     Def_agg       aggregate definition into the read-transfer bank of a
                   space (DefL_i / DefLD_j), with the position in the
                   aggregate;
     Use_arith     ALU operand pair subject to the disjoint-banks rule;
     Use_agg       aggregate use from the write-transfer bank (UseS_i /
                   UseSD_j) with position;
     Use_ab        address operands, which must live in A or B;
     Same_reg      (dst, src) pairs needing equal register numbers. *)

type 'r def_class =
  | Def_abw of 'r
  | Def_ab of 'r
  | Def_agg of space * 'r array

type 'r use_class =
  | Use_arith1 of 'r (* single ALU operand: any of A, B, L, LD *)
  | Use_arith2 of 'r * 'r (* operand pair: disjoint bank groups *)
  | Use_agg of space * 'r array
  | Use_ab of 'r

type 'r constraints = {
  def_classes : 'r def_class list;
  use_classes : 'r use_class list;
  same_reg : ('r * 'r) list; (* (read-side, write-side) *)
  is_clone : ('r array * 'r) option;
}

let no_constraints =
  { def_classes = []; use_classes = []; same_reg = []; is_clone = None }

let addr_use_classes a =
  match a.base with Reg r -> [ Use_ab r ] | Lit _ -> []

let classify (insn : 'r t) : 'r constraints =
  match insn with
  | Alu { dst; x; y = Reg y; _ } ->
      {
        no_constraints with
        def_classes = [ Def_abw dst ];
        use_classes = [ Use_arith2 (x, y) ];
      }
  | Alu { dst; x; y = Lit _; _ } | Alu1 { dst; src = x; _ } ->
      {
        no_constraints with
        def_classes = [ Def_abw dst ];
        use_classes = [ Use_arith1 x ];
      }
  | Imm { dst; _ } -> { no_constraints with def_classes = [ Def_abw dst ] }
  | Read { space; dsts; addr } ->
      {
        no_constraints with
        def_classes = [ Def_agg (space, dsts) ];
        use_classes = addr_use_classes addr;
      }
  | Rfifo_read { dsts; addr } ->
      (* FIFO reads land in SDRAM transfer registers on the IXP1200. *)
      {
        no_constraints with
        def_classes = [ Def_agg (Sdram, dsts) ];
        use_classes = addr_use_classes addr;
      }
  | Write { space; srcs; addr } ->
      {
        no_constraints with
        use_classes = Use_agg (space, srcs) :: addr_use_classes addr;
      }
  | Tfifo_write { srcs; addr } ->
      {
        no_constraints with
        use_classes = Use_agg (Sdram, srcs) :: addr_use_classes addr;
      }
  | Hash { dst; src } ->
      {
        no_constraints with
        def_classes = [ Def_agg (Sram, [| dst |]) ];
        use_classes = [ Use_agg (Sram, [| src |]) ];
        same_reg = [ (dst, src) ];
      }
  | Bit_test_set { dst; src; addr } ->
      {
        no_constraints with
        def_classes = [ Def_agg (Sram, [| dst |]) ];
        use_classes = Use_agg (Sram, [| src |]) :: addr_use_classes addr;
        same_reg = [ (dst, src) ];
      }
  | Clone { dsts; src } -> { no_constraints with is_clone = Some (dsts, src) }
  | Move { dst; src } ->
      (* Moves only appear after allocation; the model never sees them. *)
      {
        no_constraints with
        def_classes = [ Def_abw dst ];
        use_classes = [ Use_arith1 src ];
      }
  | Spill { src; _ } ->
      { no_constraints with use_classes = [ Use_agg (Scratch, [| src |]) ] }
  | Reload { dst; _ } ->
      { no_constraints with def_classes = [ Def_agg (Scratch, [| dst |]) ] }
  | Csr_read { dst; _ } -> { no_constraints with def_classes = [ Def_ab dst ] }
  | Csr_write { src; _ } -> { no_constraints with use_classes = [ Use_ab src ] }
  | Ctx_arb | Nop -> no_constraints

let term_constraints (term : 'r terminator) : 'r constraints =
  match term with
  | Jump _ | Halt -> no_constraints
  | Branch { x; y = Reg y; _ } ->
      { no_constraints with use_classes = [ Use_arith2 (x, y) ] }
  | Branch { x; y = Lit _; _ } ->
      { no_constraints with use_classes = [ Use_arith1 x ] }

(* Aggregate size legality (paper §5.2: DefL_i for 1<=i<=8; DefLD_j for
   j in {2,4,6,8}). *)
let legal_aggregate space n =
  match space with
  | Sram | Scratch -> n >= 1 && n <= 8
  | Sdram -> n >= 2 && n <= 8 && n mod 2 = 0

(* ------------------------------------------------------------------ *)
(* Mapping over registers                                              *)
(* ------------------------------------------------------------------ *)

let map_operand f = function Reg r -> Reg (f r) | Lit i -> Lit i
let map_addr f a = { a with base = map_operand f a.base }

let map_regs f = function
  | Alu { dst; op; x; y } -> Alu { dst = f dst; op; x = f x; y = map_operand f y }
  | Alu1 { dst; op; src } -> Alu1 { dst = f dst; op; src = f src }
  | Imm { dst; value } -> Imm { dst = f dst; value }
  | Read { space; dsts; addr } ->
      Read { space; dsts = Array.map f dsts; addr = map_addr f addr }
  | Write { space; srcs; addr } ->
      Write { space; srcs = Array.map f srcs; addr = map_addr f addr }
  | Hash { dst; src } -> Hash { dst = f dst; src = f src }
  | Bit_test_set { dst; src; addr } ->
      Bit_test_set { dst = f dst; src = f src; addr = map_addr f addr }
  | Clone { dsts; src } -> Clone { dsts = Array.map f dsts; src = f src }
  | Move { dst; src } -> Move { dst = f dst; src = f src }
  | Spill { slot; src } -> Spill { slot; src = f src }
  | Reload { slot; dst } -> Reload { slot; dst = f dst }
  | Csr_read { dst; csr } -> Csr_read { dst = f dst; csr }
  | Csr_write { src; csr } -> Csr_write { src = f src; csr }
  | Rfifo_read { dsts; addr } ->
      Rfifo_read { dsts = Array.map f dsts; addr = map_addr f addr }
  | Tfifo_write { srcs; addr } ->
      Tfifo_write { srcs = Array.map f srcs; addr = map_addr f addr }
  | Ctx_arb -> Ctx_arb
  | Nop -> Nop

let map_term f = function
  | Jump l -> Jump l
  | Branch { cond; x; y; ifso; ifnot } ->
      Branch { cond; x = f x; y = map_operand f y; ifso; ifnot }
  | Halt -> Halt

(* Map uses and definitions with different functions (register
   allocation rewrites uses with the pre-instruction state and
   definitions with the post-instruction state). *)
let map_uses_defs ~use ~def = function
  | Alu { dst; op; x; y } ->
      Alu { dst = def dst; op; x = use x; y = map_operand use y }
  | Alu1 { dst; op; src } -> Alu1 { dst = def dst; op; src = use src }
  | Imm { dst; value } -> Imm { dst = def dst; value }
  | Read { space; dsts; addr } ->
      Read { space; dsts = Array.map def dsts; addr = map_addr use addr }
  | Write { space; srcs; addr } ->
      Write { space; srcs = Array.map use srcs; addr = map_addr use addr }
  | Hash { dst; src } -> Hash { dst = def dst; src = use src }
  | Bit_test_set { dst; src; addr } ->
      Bit_test_set { dst = def dst; src = use src; addr = map_addr use addr }
  | Clone { dsts; src } -> Clone { dsts = Array.map def dsts; src = use src }
  | Move { dst; src } -> Move { dst = def dst; src = use src }
  | Spill { slot; src } -> Spill { slot; src = use src }
  | Reload { slot; dst } -> Reload { slot; dst = def dst }
  | Csr_read { dst; csr } -> Csr_read { dst = def dst; csr }
  | Csr_write { src; csr } -> Csr_write { src = use src; csr }
  | Rfifo_read { dsts; addr } ->
      Rfifo_read { dsts = Array.map def dsts; addr = map_addr use addr }
  | Tfifo_write { srcs; addr } ->
      Tfifo_write { srcs = Array.map use srcs; addr = map_addr use addr }
  | Ctx_arb -> Ctx_arb
  | Nop -> Nop

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_operand pp_reg ppf = function
  | Reg r -> pp_reg ppf r
  | Lit i -> Fmt.pf ppf "$%d" i

let pp_addr pp_reg ppf a =
  if a.disp = 0 then Fmt.pf ppf "[%a]" (pp_operand pp_reg) a.base
  else Fmt.pf ppf "[%a+%d]" (pp_operand pp_reg) a.base a.disp

let pp_regs pp_reg ppf rs =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") pp_reg) rs

let pp pp_reg ppf insn =
  let pr fmt = Fmt.pf ppf fmt in
  let op = pp_operand pp_reg in
  let addr = pp_addr pp_reg in
  let regs = pp_regs pp_reg in
  match insn with
  | Alu { dst; op = o; x; y } ->
      pr "%a <- %s(%a, %a)" pp_reg dst (alu_op_to_string o) pp_reg x op y
  | Alu1 { dst; op = `Mov; src } -> pr "%a <- %a" pp_reg dst pp_reg src
  | Alu1 { dst; op = `Not; src } -> pr "%a <- not %a" pp_reg dst pp_reg src
  | Alu1 { dst; op = `Neg; src } -> pr "%a <- neg %a" pp_reg dst pp_reg src
  | Imm { dst; value } -> pr "%a <- imm %d" pp_reg dst value
  | Read { space; dsts; addr = a } ->
      pr "%a <- %s%a" regs dsts (space_to_string space) addr a
  | Write { space; srcs; addr = a } ->
      pr "%s%a <- %a" (space_to_string space) addr a regs srcs
  | Hash { dst; src } -> pr "%a <- hash(%a)" pp_reg dst pp_reg src
  | Bit_test_set { dst; src; addr = a } ->
      pr "%a <- (sram%a, bit_test_set) <- %a" pp_reg dst addr a pp_reg src
  | Clone { dsts; src } -> pr "%a <- clone(%a)" regs dsts pp_reg src
  | Move { dst; src } -> pr "%a <- move %a" pp_reg dst pp_reg src
  | Spill { slot; src } -> pr "spill[%d] <- %a" slot pp_reg src
  | Reload { slot; dst } -> pr "%a <- reload[%d]" pp_reg dst slot
  | Csr_read { dst; csr } -> pr "%a <- csr[%s]" pp_reg dst csr
  | Csr_write { src; csr } -> pr "csr[%s] <- %a" csr pp_reg src
  | Rfifo_read { dsts; addr = a } -> pr "%a <- rfifo%a" regs dsts addr a
  | Tfifo_write { srcs; addr = a } -> pr "tfifo%a <- %a" addr a regs srcs
  | Ctx_arb -> pr "ctx_arb"
  | Nop -> pr "nop"

let pp_term pp_reg ppf term =
  let op = pp_operand pp_reg in
  match term with
  | Jump l -> Fmt.pf ppf "jump %s" l
  | Branch { cond; x; y; ifso; ifnot } ->
      Fmt.pf ppf "br.%s(%a, %a) %s else %s" (cond_to_string cond) pp_reg x op
        y ifso ifnot
  | Halt -> Fmt.string ppf "halt"
