(* Library facade: the CPS intermediate representation and its passes. *)

module Ir = Ir
module Convert = Convert
module Contract = Contract
module Deproc = Deproc
module Ssu = Ssu
module Interp = Interp
module Isel = Isel
module Verify = Verify
