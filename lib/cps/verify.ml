(* Pass-by-pass CPS IR verifier.

   The ILP bank-allocation model is feasible by construction only while
   the CPS invariants of [Ir] actually hold (paper §4.5, §9, §10): every
   binder is unique (SSA), every use is lexically scoped, aggregates have
   machine-legal widths, control is tail-call-only after
   de-proceduralization, and write-side operands are single-use after the
   SSU pass.  A buggy contraction or cloning pass that breaks one of
   these surfaces far downstream as an opaque infeasible model or a
   [Checker] violation; this module re-checks the invariants right after
   the pass that is supposed to establish or preserve them.

   [check ~stage] is cumulative: a later stage enforces everything an
   earlier one does plus the invariants its pass introduces.

   [differential] is the semantic counterpart: the CPS passes must
   preserve the interpreter's observable verdict (the [Halt] values and
   the transmit-FIFO trace), so we re-run [Interp] before and after a
   pass and diff the results. *)

open Support
open Ir

type stage =
  | After_convert (* scoping, SSA, arity, aggregate widths *)
  | After_contract (* same set: contraction must preserve them *)
  | After_deproc (* + no Func defs, all applications target known blocks *)
  | After_ssu (* + write-side single use, clone placement *)

let stage_name = function
  | After_convert -> "convert"
  | After_contract -> "contract"
  | After_deproc -> "deproc"
  | After_ssu -> "ssu"

let deproc_done = function After_deproc | After_ssu -> true | _ -> false
let ssu_done = function After_ssu -> true | _ -> false

let prim_arity = function
  | Add | Sub | Mul | And | Or | Xor | Shl | Shr | Asr -> 2
  | Not | Neg | Mov -> 1

(* Mirror of the typechecker's transfer-size rules (and of
   [Ixp.Insn.legal_aggregate]): contraction may shrink a read but must
   keep it machine-legal. *)
let legal_width (sp : space) n =
  match sp with
  | Nova.Ast.Sram | Nova.Ast.Scratch -> n >= 1 && n <= 8
  | Nova.Ast.Sdram -> n >= 2 && n <= 8 && n mod 2 = 0

(* ------------------------------------------------------------------ *)
(* Structural checks                                                   *)
(* ------------------------------------------------------------------ *)

(* Write-side use counting, as in [Ssu] but for validation: after SSU
   every variable stored to memory (or fed to hash / bit_test_set) must
   have that store as its only use in the whole program. *)
let check_single_use (add : string -> unit) (t : term) =
  let err fmt = Fmt.kstr add fmt in
  let writes = Ident.Tbl.create 64 in
  let others = Ident.Tbl.create 256 in
  let bump tbl x =
    Ident.Tbl.replace tbl x
      (1 + Option.value ~default:0 (Ident.Tbl.find_opt tbl x))
  in
  let wv = function Var x -> bump writes x | Int _ -> () in
  let ov = function Var x -> bump others x | Int _ -> () in
  iter_terms
    (fun t ->
      match t with
      | MemWrite (_, a, vs, _) | TfifoWrite (a, vs, _) ->
          ov a;
          Array.iter wv vs
      | Hash (_, v, _) -> wv v
      | BitTestSet (_, a, v, _) ->
          ov a;
          wv v
      | Prim (_, _, vs, _) -> List.iter ov vs
      | MemRead (_, a, _, _) | RfifoRead (a, _, _) -> ov a
      | CsrWrite (_, v, _) -> ov v
      | Branch (_, a, b, _, _) ->
          ov a;
          ov b
      | App (f, vs) ->
          ov f;
          List.iter ov vs
      | Halt vs -> List.iter ov vs
      | Clone _ (* the defining copy is not a use *)
      | CsrRead _ | CtxArb _ | Fix _ ->
          ())
    t;
  Ident.Tbl.iter
    (fun x w ->
      let o = Option.value ~default:0 (Ident.Tbl.find_opt others x) in
      if w > 1 then
        err "variable %a has %d write-side uses (SSU requires exactly one)"
          Ident.pp x w
      else if o > 0 then
        err
          "write-side variable %a has %d other use(s) (SSU requires the \
           store to be its only use)"
          Ident.pp x o)
    writes

let check ~stage (t : term) : string list =
  let errs = ref [] in
  let err fmt = Fmt.kstr (fun s -> errs := s :: !errs) fmt in
  let module S = Ident.Set in
  (* SSA: binders unique program-wide *)
  let bound = Ident.Tbl.create 256 in
  let bind x =
    if Ident.Tbl.mem bound x then
      err "duplicate binder %a (SSA unique-binding violated)" Ident.pp x
    else Ident.Tbl.add bound x ()
  in
  (* names and parameter lists of every Fix definition, for arity and
     tail-call checks *)
  let defs_tbl = Ident.Tbl.create 64 in
  iter_terms
    (fun t ->
      match t with
      | Fix (defs, _) ->
          List.iter (fun d -> Ident.Tbl.replace defs_tbl d.name d) defs
      | _ -> ())
    t;
  let use scope x =
    if not (S.mem x scope) then
      err "use of %a is not in scope (use before definition?)" Ident.pp x
  in
  let uval scope = function Var x -> use scope x | Int _ -> () in
  let uvals scope vs = List.iter (uval scope) vs in
  (* [recent] is the set of variables bound by the immediately preceding
     binding instruction (or the enclosing function's parameters): SSU
     places clones directly after their source's definition, so a
     post-SSU [Clone] whose source is not in [recent] is misplaced. *)
  let rec go scope ~recent t =
    match t with
    | Prim (x, p, vs, k) ->
        if List.length vs <> prim_arity p then
          err "primitive %s applied to %d operands (arity %d)"
            (prim_to_string p) (List.length vs) (prim_arity p);
        uvals scope vs;
        bind x;
        go (S.add x scope) ~recent:(S.singleton x) k
    | MemRead (sp, a, dsts, k) ->
        if not (legal_width sp (Array.length dsts)) then
          err "%s read of %d words is not machine-legal"
            (Nova.Ast.mem_space_to_string sp)
            (Array.length dsts);
        uval scope a;
        Array.iter bind dsts;
        let scope = Array.fold_left (fun s d -> S.add d s) scope dsts in
        go scope ~recent:(S.of_list (Array.to_list dsts)) k
    | MemWrite (sp, a, vs, k) ->
        if not (legal_width sp (Array.length vs)) then
          err "%s write of %d words is not machine-legal"
            (Nova.Ast.mem_space_to_string sp)
            (Array.length vs);
        uval scope a;
        Array.iter (uval scope) vs;
        go scope ~recent:S.empty k
    | Hash (x, v, k) ->
        uval scope v;
        bind x;
        go (S.add x scope) ~recent:(S.singleton x) k
    | BitTestSet (x, a, v, k) ->
        uval scope a;
        uval scope v;
        bind x;
        go (S.add x scope) ~recent:(S.singleton x) k
    | CsrRead (x, _, k) ->
        bind x;
        go (S.add x scope) ~recent:(S.singleton x) k
    | CsrWrite (_, v, k) ->
        uval scope v;
        go scope ~recent:S.empty k
    | RfifoRead (a, dsts, k) ->
        uval scope a;
        Array.iter bind dsts;
        let scope = Array.fold_left (fun s d -> S.add d s) scope dsts in
        go scope ~recent:(S.of_list (Array.to_list dsts)) k
    | TfifoWrite (a, vs, k) ->
        uval scope a;
        Array.iter (uval scope) vs;
        go scope ~recent:S.empty k
    | CtxArb k -> go scope ~recent:S.empty k
    | Clone (dsts, src, k) ->
        if not (ssu_done stage) then
          err "clone of %a before the SSU pass" Ident.pp src;
        if Array.length dsts = 0 then
          err "clone of %a with no destinations" Ident.pp src;
        use scope src;
        if ssu_done stage && not (S.mem src recent) then
          err
            "clone of %a is not placed directly after its source's \
             definition"
            Ident.pp src;
        Array.iter bind dsts;
        let scope = Array.fold_left (fun s d -> S.add d s) scope dsts in
        go scope ~recent:(S.union recent (S.of_list (Array.to_list dsts))) k
    | Branch (_, a, b, t1, t2) ->
        uval scope a;
        uval scope b;
        go scope ~recent:S.empty t1;
        go scope ~recent:S.empty t2
    | App (f, vs) -> (
        uval scope f;
        uvals scope vs;
        match f with
        | Var fn -> (
            match Ident.Tbl.find_opt defs_tbl fn with
            | Some d ->
                if List.length d.params <> List.length vs then
                  err "application of %a with %d arguments (%d parameters)"
                    Ident.pp fn (List.length vs) (List.length d.params)
            | None ->
                (* Before de-proceduralization, applications of
                   continuation-valued parameters are legitimate; after
                   it, every jump must target a Fix-bound block. *)
                if deproc_done stage then
                  err "application head %a is not a Fix-bound block"
                    Ident.pp fn)
        | Int _ -> err "application of a constant")
    | Halt vs -> uvals scope vs
    | Fix (defs, k) ->
        let scope' =
          List.fold_left (fun s d -> S.add d.name s) scope defs
        in
        List.iter
          (fun d ->
            bind d.name;
            if deproc_done stage && d.kind = Func then
              err "Func-kind definition %a survived de-proceduralization"
                Ident.pp d.name;
            List.iter bind d.params;
            let body_scope =
              List.fold_left (fun s p -> S.add p s) scope' d.params
            in
            go body_scope ~recent:(S.of_list d.params) d.body)
          defs;
        go scope' ~recent:S.empty k
  in
  go S.empty ~recent:S.empty t;
  if ssu_done stage then check_single_use (fun s -> errs := s :: !errs) t;
  List.rev !errs

(* Raise a pass-attributed diagnostic if [check] finds anything. *)
let check_exn ~pass ~stage (t : term) =
  match check ~stage t with
  | [] -> ()
  | errs ->
      Diag.verify_failed ~pass "%a"
        Fmt.(list ~sep:cut string)
        errs

(* ------------------------------------------------------------------ *)
(* Differential semantics                                              *)
(* ------------------------------------------------------------------ *)

type observation = {
  result : int list;
  tfifo : int array;
}

let observe ~max_steps (t : term) :
    (observation, [ `Limit | `Error of string ]) result =
  match Interp.run_term ~max_steps t with
  | result, st -> Ok { result; tfifo = Interp.tfifo_contents st }
  | exception Interp.Interp_error msg ->
      if msg = "step limit exceeded" then Error `Limit else Error (`Error msg)

(* Compare the observable behaviour (Halt values and the transmit-FIFO
   trace, both starting from pristine memory) of a term before and after
   a transformation.  A step-limit blowout on either side is
   inconclusive and reported as success; a genuine interpreter error
   introduced by the pass, or a diverging observation, is a failure. *)
let differential ?(max_steps = 5_000_000) ~pass (before : term) (after : term)
    : (unit, string) result =
  match observe ~max_steps before with
  | Error `Limit -> Ok ()
  | Error (`Error msg) ->
      (* the input of the pass was already broken; don't blame the pass,
         but don't silently accept either *)
      Result.Error
        (Fmt.str "interpreter failed on the input of pass '%s': %s" pass msg)
  | Ok obs_before -> (
      match observe ~max_steps after with
      | Error `Limit -> Ok ()
      | Error (`Error msg) ->
          Result.Error
            (Fmt.str "pass '%s' broke the program: interpreter error: %s" pass
               msg)
      | Ok obs_after ->
          if obs_before.result <> obs_after.result then
            Result.Error
              (Fmt.str
                 "pass '%s' changed the observable result: (%a) before, (%a) \
                  after"
                 pass
                 Fmt.(list ~sep:comma int)
                 obs_before.result
                 Fmt.(list ~sep:comma int)
                 obs_after.result)
          else if obs_before.tfifo <> obs_after.tfifo then
            Result.Error
              (Fmt.str
                 "pass '%s' changed the transmit-FIFO trace: (%a) before, \
                  (%a) after"
                 pass
                 Fmt.(array ~sep:comma int)
                 obs_before.tfifo
                 Fmt.(array ~sep:comma int)
                 obs_after.tfifo)
          else Ok ())

let differential_exn ?max_steps ~pass before after =
  match differential ?max_steps ~pass before after with
  | Ok () -> ()
  | Result.Error msg -> Diag.verify_failed ~pass "%s" msg
