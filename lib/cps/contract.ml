(* The CPS optimizer (paper §4.4).

   Implemented passes, iterated to a fixpoint:
     - constant folding and algebraic identities;
     - local value propagation (copies and constants);
     - useless-variable elimination (pure bindings with dead results);
     - dead-code elimination (unreachable branch arms, unused functions);
     - trimming of memory reads (shrink aggregates whose edge words are
       never used);
     - contraction: inlining of functions called exactly once;
     - eta reduction (f(xs) = g(xs) forwarders);
     - invariant-argument and unused-parameter elimination, which is what
       resolves return-continuation parameters after
       de-proceduralization. *)

open Support
open Ir

(* ------------------------------------------------------------------ *)
(* Census                                                              *)
(* ------------------------------------------------------------------ *)

type census = {
  uses : int Ident.Tbl.t; (* occurrences as a value (escape or operand) *)
  heads : int Ident.Tbl.t; (* occurrences as the head of an App *)
}

let bump tbl x = Ident.Tbl.replace tbl x (1 + Option.value ~default:0 (Ident.Tbl.find_opt tbl x))

let census_of (t : term) : census =
  let c = { uses = Ident.Tbl.create 256; heads = Ident.Tbl.create 64 } in
  let value = function Var x -> bump c.uses x | Int _ -> () in
  let values = List.iter value in
  let varray = Array.iter value in
  let rec go t =
    match t with
    | Prim (_, _, vs, k) ->
        values vs;
        go k
    | MemRead (_, a, _, k) ->
        value a;
        go k
    | MemWrite (_, a, vs, k) ->
        value a;
        varray vs;
        go k
    | Hash (_, v, k) ->
        value v;
        go k
    | BitTestSet (_, a, v, k) ->
        value a;
        value v;
        go k
    | CsrRead (_, _, k) -> go k
    | CsrWrite (_, v, k) ->
        value v;
        go k
    | RfifoRead (a, _, k) ->
        value a;
        go k
    | TfifoWrite (a, vs, k) ->
        value a;
        varray vs;
        go k
    | CtxArb k -> go k
    | Clone (_, src, k) ->
        bump c.uses src;
        go k
    | Branch (_, a, b, t1, t2) ->
        value a;
        value b;
        go t1;
        go t2
    | App (f, vs) ->
        (match f with Var x -> bump c.heads x | Int _ -> ());
        values vs
    | Halt vs -> values vs
    | Fix (defs, k) ->
        List.iter (fun d -> go d.body) defs;
        go k
  in
  go t;
  c

let use_count c x = Option.value ~default:0 (Ident.Tbl.find_opt c.uses x)
let head_count c x = Option.value ~default:0 (Ident.Tbl.find_opt c.heads x)
let total_count c x = use_count c x + head_count c x

(* ------------------------------------------------------------------ *)
(* One contraction round                                               *)
(* ------------------------------------------------------------------ *)

type round_state = {
  c : census;
  subst : value Ident.Tbl.t;
  (* defs selected for inline-once, by name: the (unrewritten) def *)
  inline : fundef Ident.Tbl.t;
  (* per-fundef parameter surgery precomputed in the analysis phase:
     name -> sorted arg indices to drop *)
  dropped : int list Ident.Tbl.t;
  mutable changed : bool;
}

let word_mask = 0xFFFFFFFF

let fold_prim p args =
  match (p, args) with
  | Add, [ Int a; Int b ] -> Some (Int ((a + b) land word_mask))
  | Sub, [ Int a; Int b ] -> Some (Int ((a - b) land word_mask))
  | Mul, [ Int a; Int b ] -> Some (Int (a * b land word_mask))
  | And, [ Int a; Int b ] -> Some (Int (a land b))
  | Or, [ Int a; Int b ] -> Some (Int (a lor b))
  | Xor, [ Int a; Int b ] -> Some (Int (a lxor b))
  | Shl, [ Int a; Int b ] ->
      Some (Int (if b land 31 = 0 && b <> 0 then 0 else (a lsl (b land 31)) land word_mask))
  | Shr, [ Int a; Int b ] ->
      Some (Int (if b >= 32 then 0 else (a land word_mask) lsr (b land 31)))
  | Asr, [ Int a; Int b ] ->
      let sa = if a land 0x80000000 <> 0 then a - 0x100000000 else a in
      Some (Int (sa asr min 31 (b land 255) land word_mask))
  | Not, [ Int a ] -> Some (Int (lnot a land word_mask))
  | Neg, [ Int a ] -> Some (Int (-a land word_mask))
  | Mov, [ v ] -> Some v
  (* algebraic identities *)
  | (Add | Or | Xor), [ v; Int 0 ] | (Add | Or | Xor), [ Int 0; v ] -> Some v
  | Sub, [ v; Int 0 ] -> Some v
  | (Shl | Shr | Asr), [ v; Int 0 ] -> Some v
  | Mul, [ v; Int 1 ] | Mul, [ Int 1; v ] -> Some v
  | Mul, [ _; Int 0 ] | Mul, [ Int 0; _ ] -> Some (Int 0)
  | And, [ _; Int 0 ] | And, [ Int 0; _ ] -> Some (Int 0)
  | And, [ v; Int m ] when m land word_mask = word_mask -> Some v
  | _ -> None

let eval_cmp cmp a b =
  let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v in
  match cmp with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> signed a < signed b
  | Le -> signed a <= signed b
  | Gt -> signed a > signed b
  | Ge -> signed a >= signed b
  | Ult -> a land word_mask < b land word_mask
  | Uge -> a land word_mask >= b land word_mask

(* Is a term a pure binding whose results can be discarded? *)

let rec resolve st v =
  match v with
  | Var x -> (
      match Ident.Tbl.find_opt st.subst x with
      | Some v' ->
          let r = resolve st v' in
          if r <> v' then Ident.Tbl.replace st.subst x r;
          r
      | None -> v)
  | Int _ -> v

let rec rewrite (st : round_state) (t : term) : term =
  let rv = resolve st in
  let rvs = List.map rv in
  let rva = Array.map rv in
  match t with
  | Prim (x, p, vs, k) -> (
      let vs = rvs vs in
      if total_count st.c x = 0 then begin
        st.changed <- true;
        rewrite st k
      end
      else
        match fold_prim p vs with
        | Some v ->
            st.changed <- true;
            Ident.Tbl.replace st.subst x v;
            rewrite st k
        | None -> (
            (* same-variable operand pairs: the IXP ALU cannot read one
               bank twice, so rewrite the ones with algebraic identities
               (isel copies the rest) *)
            match (p, vs) with
            | Add, [ Var a; Var b ] when Ident.equal a b ->
                st.changed <- true;
                Prim (x, Shl, [ Var a; Int 1 ], rewrite st k)
            | (And | Or), [ Var a; Var b ] when Ident.equal a b ->
                st.changed <- true;
                Ident.Tbl.replace st.subst x (Var a);
                rewrite st k
            | (Xor | Sub), [ Var a; Var b ] when Ident.equal a b ->
                st.changed <- true;
                Ident.Tbl.replace st.subst x (Int 0);
                rewrite st k
            | _ -> Prim (x, p, vs, rewrite st k)))
  | MemRead (sp, a, dsts, k) ->
      let a = rv a in
      let n = Array.length dsts in
      let used i = total_count st.c dsts.(i) > 0 in
      let all_unused = not (Array.exists (fun d -> total_count st.c d > 0) dsts) in
      if all_unused then begin
        st.changed <- true;
        rewrite st k
      end
      else begin
        (* trim unused leading/trailing destinations; SDRAM transfers
           stay even-sized and even-aligned *)
        let first = ref 0 and last = ref (n - 1) in
        while not (used !first) do
          incr first
        done;
        while not (used !last) do
          decr last
        done;
        let step = match sp with Nova.Ast.Sdram -> 2 | _ -> 1 in
        let round_up x = (x + step - 1) / step * step in
        let emit first' count' =
          if first' = 0 && count' = n then MemRead (sp, a, dsts, rewrite st k)
          else begin
            st.changed <- true;
            let a' =
              match a with
              | Int base -> Int (base + (4 * first'))
              | Var _ -> a
            in
            MemRead (sp, a', Array.sub dsts first' count', rewrite st k)
          end
        in
        match a with
        | Int _ ->
            let first' = !first / step * step in
            emit first' (round_up (!last - first' + 1))
        | Var _ ->
            (* dynamic address: only the tail can be trimmed *)
            emit 0 (round_up (!last + 1))
      end
  | MemWrite (sp, a, vs, k) -> MemWrite (sp, rv a, rva vs, rewrite st k)
  | Hash (x, v, k) ->
      if total_count st.c x = 0 then begin
        st.changed <- true;
        rewrite st k
      end
      else Hash (x, rv v, rewrite st k)
  | BitTestSet (x, a, v, k) ->
      (* has a memory side effect: never deleted *)
      BitTestSet (x, rv a, rv v, rewrite st k)
  | CsrRead (x, csr, k) ->
      if total_count st.c x = 0 then begin
        st.changed <- true;
        rewrite st k
      end
      else CsrRead (x, csr, rewrite st k)
  | CsrWrite (csr, v, k) -> CsrWrite (csr, rv v, rewrite st k)
  | RfifoRead (a, dsts, k) -> RfifoRead (rv a, dsts, rewrite st k)
  | TfifoWrite (a, vs, k) -> TfifoWrite (rv a, rva vs, rewrite st k)
  | CtxArb k -> CtxArb (rewrite st k)
  | Clone (dsts, src, k) -> (
      let live = Array.of_list (List.filter (fun d -> total_count st.c d > 0) (Array.to_list dsts)) in
      match rv (Var src) with
      | Int i ->
          (* cloning a constant: each clone is just the constant *)
          st.changed <- true;
          Array.iter (fun d -> Ident.Tbl.replace st.subst d (Int i)) dsts;
          rewrite st k
      | Var src' ->
          if Array.length live = 0 then begin
            st.changed <- true;
            rewrite st k
          end
          else if Array.length live < Array.length dsts then begin
            st.changed <- true;
            Clone (live, src', rewrite st k)
          end
          else Clone (dsts, src', rewrite st k))
  | Branch (cmp, a, b, t1, t2) -> (
      let a = rv a and b = rv b in
      match (a, b) with
      | Int ia, Int ib ->
          st.changed <- true;
          if eval_cmp cmp ia ib then rewrite st t1 else rewrite st t2
      | _ when a = b && (cmp = Eq || cmp = Le || cmp = Ge || cmp = Uge) ->
          st.changed <- true;
          rewrite st t1
      | _ when a = b && cmp = Ne ->
          st.changed <- true;
          rewrite st t2
      | _ -> Branch (cmp, a, b, rewrite st t1, rewrite st t2))
  | App (f, vs) -> (
      let f = rv f and vs = rvs vs in
      match f with
      | Var fname when Ident.Tbl.mem st.inline fname ->
          (* contract: inline the unique call *)
          let def = Ident.Tbl.find st.inline fname in
          st.changed <- true;
          List.iter2
            (fun p v -> Ident.Tbl.replace st.subst p v)
            def.params vs;
          rewrite st def.body
      | Var fname -> (
          match Ident.Tbl.find_opt st.dropped fname with
          | Some drops ->
              let vs =
                List.filteri (fun i _ -> not (List.mem i drops)) vs
              in
              App (f, vs)
          | None -> App (f, vs))
      | Int _ -> Diag.ice "App head folded to a constant")
  | Halt vs -> Halt (rvs vs)
  | Fix (defs, k) ->
      (* remove dead defs, register inline-once defs *)
      let group_free =
        lazy
          (List.fold_left
             (fun acc d -> Ident.Set.union acc (free_vars d.body))
             Ident.Set.empty defs)
      in
      let keep =
        List.filter
          (fun d ->
            let dead = total_count st.c d.name = 0 in
            if dead then st.changed <- true;
            not dead)
          defs
      in
      let keep =
        List.filter
          (fun d ->
            let inline_once =
              head_count st.c d.name = 1
              && use_count st.c d.name = 0
              && not (Ident.Set.mem d.name (Lazy.force group_free))
            in
            if inline_once then begin
              Ident.Tbl.replace st.inline d.name d;
              st.changed <- true
            end;
            not inline_once)
          keep
      in
      (* eta: f(ps) = g(ps) forwarders *)
      let keep =
        List.filter
          (fun d ->
            match d.body with
            | App (Var g, args)
              when (not (Ident.equal g d.name))
                   && (not (List.exists (Ident.equal g) d.params))
                   (* if g is being inlined-once, this body IS its unique
                      call site: let the inline happen instead *)
                   && (not (Ident.Tbl.mem st.inline g))
                   (* if this forwarder escapes as a value, the
                      substitution d |-> g makes g escape too; parameter
                      surgery scheduled for g this round assumed g never
                      escapes, so escaped call sites (e.g. through a
                      callee's return-continuation parameter) would keep
                      the pre-surgery arity.  Defer the eta one round so
                      the analysis can see the escape. *)
                   && (not
                         (use_count st.c d.name > 0
                         && Ident.Tbl.mem st.dropped g))
                   && List.length args = List.length d.params
                   && List.for_all2
                        (fun p a -> match a with Var x -> Ident.equal x p | _ -> false)
                        d.params args ->
                st.changed <- true;
                Ident.Tbl.replace st.subst d.name (Var g);
                false
            | _ -> true)
          keep
      in
      let keep =
        List.map
          (fun d ->
            (* drop parameters scheduled by the analysis phase *)
            match Ident.Tbl.find_opt st.dropped d.name with
            | Some drops ->
                let params =
                  List.filteri (fun i _ -> not (List.mem i drops)) d.params
                in
                { d with params; body = rewrite st d.body }
            | None -> { d with body = rewrite st d.body })
          keep
      in
      let k = rewrite st k in
      if keep = [] then k else Fix (keep, k)

(* ------------------------------------------------------------------ *)
(* Parameter surgery analysis                                          *)
(* ------------------------------------------------------------------ *)

(* For every fundef whose name never escapes (all occurrences are App
   heads), find (a) unused parameters and (b) invariant arguments: every
   call passes the same value, or the parameter itself (self-recursive
   pass-through).  Scope safety: a variable invariant argument is only
   substituted when it is in scope at the definition, which holds for the
   terms our converter and deproc build (joins and loop headers are
   introduced in the scope that calls them).  The interpreter-equivalence
   tests guard this assumption. *)
let analyze_params (t : term) (c : census) :
    int list Ident.Tbl.t * value Ident.Tbl.t =
  let calls : value list list Ident.Tbl.t = Ident.Tbl.create 64 in
  let defs : fundef Ident.Tbl.t = Ident.Tbl.create 64 in
  (* set of variables in scope at each definition site, for the scope
     check on variable-valued invariant arguments *)
  let def_scope : Ident.Set.t Ident.Tbl.t = Ident.Tbl.create 64 in
  let rec go scope t =
    match t with
    | App (Var f, vs) ->
        Ident.Tbl.replace calls f
          (vs :: Option.value ~default:[] (Ident.Tbl.find_opt calls f))
    | App _ | Halt _ -> ()
    | Branch (_, _, _, a, b) ->
        go scope a;
        go scope b
    | Fix (ds, k) ->
        let scope' =
          List.fold_left (fun s d -> Ident.Set.add d.name s) scope ds
        in
        List.iter
          (fun d ->
            Ident.Tbl.replace defs d.name d;
            Ident.Tbl.replace def_scope d.name scope';
            go
              (List.fold_left (fun s p -> Ident.Set.add p s) scope' d.params)
              d.body)
          ds;
        go scope' k
    | Prim (x, _, _, k) | Hash (x, _, k) | BitTestSet (x, _, _, k)
    | CsrRead (x, _, k) ->
        go (Ident.Set.add x scope) k
    | MemRead (_, _, dsts, k) | RfifoRead (_, dsts, k) | Clone (dsts, _, k) ->
        go (Array.fold_left (fun s d -> Ident.Set.add d s) scope dsts) k
    | MemWrite (_, _, _, k) | CsrWrite (_, _, k) | TfifoWrite (_, _, k)
    | CtxArb k ->
        go scope k
  in
  go Ident.Set.empty t;
  let dropped = Ident.Tbl.create 16 in
  let subst = Ident.Tbl.create 16 in
  Ident.Tbl.iter
    (fun name d ->
      if use_count c name = 0 && head_count c name > 0 then begin
        let body_census = census_of d.body in
        let call_vectors =
          Option.value ~default:[] (Ident.Tbl.find_opt calls name)
        in
        let ok_arity =
          List.for_all
            (fun vs -> List.length vs = List.length d.params)
            call_vectors
        in
        if ok_arity && call_vectors <> [] then begin
          let drops = ref [] in
          List.iteri
            (fun i p ->
              let args_i = List.map (fun vs -> List.nth vs i) call_vectors in
              if total_count body_census p = 0 then drops := i :: !drops
              else begin
                (* invariant argument: all non-self args identical *)
                let non_self =
                  List.filter
                    (fun v -> match v with Var x -> not (Ident.equal x p) | Int _ -> true)
                    args_i
                in
                let in_scope_at_def v =
                  match v with
                  | Int _ -> true
                  | Var x -> (
                      match Ident.Tbl.find_opt def_scope name with
                      | Some scope -> Ident.Set.mem x scope
                      | None -> false)
                in
                match non_self with
                | v :: rest
                  when List.for_all (fun v' -> v' = v) rest
                       && in_scope_at_def v ->
                    Ident.Tbl.replace subst p v;
                    drops := i :: !drops
                | _ -> ()
              end)
            d.params;
          if !drops <> [] then
            Ident.Tbl.replace dropped name (List.sort compare !drops)
        end
      end)
    defs;
  (dropped, subst)

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)
(* ------------------------------------------------------------------ *)

let round (t : term) : term * bool =
  let c = census_of t in
  let dropped, param_subst = analyze_params t c in
  let st =
    {
      c;
      subst = param_subst;
      inline = Ident.Tbl.create 16;
      dropped;
      changed = Ident.Tbl.length dropped > 0 || Ident.Tbl.length param_subst > 0;
    }
  in
  let t' = rewrite st t in
  (t', st.changed)

let simplify ?(max_rounds = 60) (t : term) : term =
  let rec go t n =
    if n = 0 then t
    else begin
      let t', changed = round t in
      if changed then go t' (n - 1) else t'
    end
  in
  go t max_rounds
