(* Static single use transformation (paper §4.5, §10).

   After this pass, every use of a variable as an operand of a
   memory-write-side instruction (SRAM/SDRAM/scratch/FIFO stores, the
   sources of [hash] and [bit_test_set]) is the only use of that variable
   in the program.  Additional write-side uses go through fresh clones
   introduced by a [Clone] pseudo-instruction placed right after the
   variable's definition; clones are semantically copies but do not
   interfere with each other, so the ILP model may (but need not) keep
   them in one register. *)

open Support
open Ir

(* Count write-side and total uses per variable. *)
let count_uses (t : term) =
  let writes = Ident.Tbl.create 64 in
  let others = Ident.Tbl.create 256 in
  let bump tbl x =
    Ident.Tbl.replace tbl x (1 + Option.value ~default:0 (Ident.Tbl.find_opt tbl x))
  in
  let wv = function Var x -> bump writes x | Int _ -> () in
  let ov = function Var x -> bump others x | Int _ -> () in
  let ovs = List.iter ov in
  let rec go t =
    match t with
    | Prim (_, _, vs, k) ->
        ovs vs;
        go k
    | MemRead (_, a, _, k) | RfifoRead (a, _, k) ->
        ov a;
        go k
    | MemWrite (_, a, vs, k) | TfifoWrite (a, vs, k) ->
        ov a;
        Array.iter wv vs;
        go k
    | Hash (_, v, k) ->
        wv v;
        go k
    | BitTestSet (_, a, v, k) ->
        ov a;
        wv v;
        go k
    | CsrRead (_, _, k) -> go k
    | CsrWrite (_, v, k) ->
        ov v;
        go k
    | CtxArb k -> go k
    | Clone (_, src, k) ->
        bump others src;
        go k
    | Branch (_, a, b, t1, t2) ->
        ov a;
        ov b;
        go t1;
        go t2
    | App (f, vs) ->
        ov f;
        ovs vs
    | Halt vs -> ovs vs
    | Fix (defs, k) ->
        List.iter (fun d -> go d.body) defs;
        go k
  in
  go t;
  (writes, others)

(* Variables needing clones: write-use count >= 2, or >= 1 with other
   uses.  The number of clones equals the number of write uses; the
   original keeps the non-write uses (and, if it has no other uses, the
   first write use). *)
let run (t : term) : term =
  let writes, others = count_uses t in
  let needed = Ident.Tbl.create 32 in
  (* Clone in stamp order, not table order: [Ident.Tbl] buckets by the
     absolute stamp value, so iterating it directly would make the order
     in which clones draw fresh stamps depend on where the global stamp
     counter happened to start -- and downstream names would differ
     between two compiles of the same source in one process. *)
  Ident.Tbl.fold (fun x w acc -> (x, w) :: acc) writes []
  |> List.sort (fun (a, _) (b, _) -> Ident.compare a b)
  |> List.iter (fun (x, w) ->
         let o = Option.value ~default:0 (Ident.Tbl.find_opt others x) in
         let clones = if o > 0 then w else w - 1 in
         if clones > 0 then begin
           let fresh = List.init clones (fun _ -> Ident.clone x) in
           (* queue of replacement names for successive write uses; when
              the original has no other uses it serves the first write
              use *)
           let queue = if o > 0 then fresh else x :: fresh in
           Ident.Tbl.replace needed x (ref queue, Array.of_list fresh)
         end);
  if Ident.Tbl.length needed = 0 then t
  else begin
    let next_clone x =
      match Ident.Tbl.find_opt needed x with
      | None -> x
      | Some (queue, _) -> (
          match !queue with
          | [] -> x (* more uses than counted: fall back to the original *)
          | y :: rest ->
              queue := rest;
              y)
    in
    let wv = function Var x -> Var (next_clone x) | Int i -> Int i in
    (* insert Clone right after each definition of a needed variable *)
    let after_def x k =
      match Ident.Tbl.find_opt needed x with
      | Some (_, clones) -> Clone (clones, x, k)
      | None -> k
    in
    let after_defs xs k = List.fold_left (fun k x -> after_def x k) k xs in
    let rec go t =
      match t with
      | Prim (x, p, vs, k) -> Prim (x, p, vs, after_def x (go k))
      | MemRead (sp, a, dsts, k) ->
          MemRead (sp, a, dsts, after_defs (Array.to_list dsts) (go k))
      | RfifoRead (a, dsts, k) ->
          RfifoRead (a, dsts, after_defs (Array.to_list dsts) (go k))
      | MemWrite (sp, a, vs, k) -> MemWrite (sp, a, Array.map wv vs, go k)
      | TfifoWrite (a, vs, k) -> TfifoWrite (a, Array.map wv vs, go k)
      | Hash (x, v, k) -> Hash (x, wv v, after_def x (go k))
      | BitTestSet (x, a, v, k) -> BitTestSet (x, a, wv v, after_def x (go k))
      | CsrRead (x, c, k) -> CsrRead (x, c, after_def x (go k))
      | CsrWrite (c, v, k) -> CsrWrite (c, v, go k)
      | CtxArb k -> CtxArb (go k)
      | Clone (dsts, src, k) ->
          Clone (dsts, src, after_defs (Array.to_list dsts) (go k))
      | Branch (c, a, b, t1, t2) -> Branch (c, a, b, go t1, go t2)
      | App (f, vs) -> App (f, vs)
      | Halt vs -> Halt vs
      | Fix (defs, k) ->
          Fix
            ( List.map
                (fun d -> { d with body = after_defs d.params (go d.body) })
                defs,
              go k )
    in
    go t
  end
