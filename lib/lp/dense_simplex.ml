(* Textbook two-phase primal simplex on a dense tableau, functorized over
   an ordered field.

   This implementation favours clarity and exactness over speed: it is the
   reference solver used by the test suite (instantiated at [Rat_field] it
   is exact and immune to cycling thanks to Bland's rule) and the
   cross-check for the production revised solver.  Problem sizes here are
   expected to be small (tens to a few hundred variables). *)

module Make (F : Field.S) = struct
  type status = Optimal | Infeasible | Unbounded

  type result = {
    status : status;
    objective : F.t; (* meaningful when Optimal *)
    solution : F.t array; (* values of the original problem variables *)
  }

  (* Internal standard form:  min c'y  s.t.  Ay = b, y >= 0, b >= 0. *)

  type std = {
    ncols : int;
    nrows : int;
    a : F.t array array; (* nrows x ncols *)
    b : F.t array;
    c : F.t array;
    (* Mapping back: original var j has value
       offset_j + sum_k scale_k * y_{col_k}. *)
    recover : (F.t * (F.t * int) list) array;
  }

  (* Convert a [Problem.t] into standard form:
     - each variable is shifted/flipped/split so that it becomes one or two
       nonnegative columns;
     - finite upper bounds become extra [<=] rows;
     - every row gets a slack (Le), surplus (Ge) or nothing (Eq). *)
  let standardize (p : Problem.t) =
    let nv = Problem.num_vars p in
    let ncols = ref 0 in
    let recover = Array.make nv (F.zero, []) in
    (* per original var: list of (coef, col) and constant offset s.t.
       x = offset + sum coef*y_col, with y >= 0 *)
    let var_expr = Array.make nv (F.zero, []) in
    let extra_ub_rows = ref [] in
    for j = 0 to nv - 1 do
      let lo = Problem.var_lo p j and hi = Problem.var_hi p j in
      if lo > hi then extra_ub_rows := `Contradiction :: !extra_ub_rows
      else if Float.is_finite lo then begin
        (* x = lo + y, y >= 0, y <= hi - lo (if finite) *)
        let col = !ncols in
        incr ncols;
        var_expr.(j) <- (F.of_float lo, [ (F.one, col) ]);
        if Float.is_finite hi then
          extra_ub_rows := `Ub (col, F.of_float (hi -. lo)) :: !extra_ub_rows
      end
      else if Float.is_finite hi then begin
        (* x = hi - y, y >= 0 *)
        let col = !ncols in
        incr ncols;
        var_expr.(j) <- (F.of_float hi, [ (F.neg F.one, col) ])
      end
      else begin
        (* free: x = y+ - y- *)
        let cp = !ncols and cm = !ncols + 1 in
        ncols := !ncols + 2;
        var_expr.(j) <- (F.zero, [ (F.one, cp); (F.neg F.one, cm) ])
      end
    done;
    Array.blit var_expr 0 recover 0 nv;
    (* Count rows: original rows + upper-bound rows. *)
    let ub_rows =
      List.filter_map (function `Ub x -> Some x | `Contradiction -> None)
        !extra_ub_rows
    in
    let contradiction =
      List.exists (function `Contradiction -> true | _ -> false) !extra_ub_rows
    in
    let orig_rows = ref [] in
    Problem.iter_rows (fun r -> orig_rows := r :: !orig_rows) p;
    let orig_rows = List.rev !orig_rows in
    let slack_count =
      List.length ub_rows
      + List.length
          (List.filter (fun r -> r.Problem.sense <> Problem.Eq) orig_rows)
    in
    let nrows = List.length orig_rows + List.length ub_rows in
    let total_cols = !ncols + slack_count in
    let a = Array.make_matrix nrows total_cols F.zero in
    let b = Array.make nrows F.zero in
    let c = Array.make total_cols F.zero in
    (* Objective in terms of the new columns. *)
    for j = 0 to nv - 1 do
      let cj = F.of_float (Problem.var_obj p j) in
      if F.compare cj F.zero <> 0 then begin
        let _, terms = var_expr.(j) in
        List.iter
          (fun (coef, col) -> c.(col) <- F.add c.(col) (F.mul cj coef))
          terms
      end
    done;
    (* Objective constant from shifts (added back at the end). *)
    let obj_const = ref F.zero in
    for j = 0 to nv - 1 do
      let cj = F.of_float (Problem.var_obj p j) in
      if F.compare cj F.zero <> 0 then
        let off, _ = var_expr.(j) in
        obj_const := F.add !obj_const (F.mul cj off)
    done;
    let slack = ref !ncols in
    let set_row i sense rhs terms =
      (* terms are (orig var, coef); expand through var_expr. *)
      let rhs = ref rhs in
      List.iter
        (fun (v, coef) ->
          let coef = F.of_float coef in
          let off, cols = var_expr.(v) in
          rhs := F.sub !rhs (F.mul coef off);
          List.iter
            (fun (scale, col) ->
              a.(i).(col) <- F.add a.(i).(col) (F.mul coef scale))
            cols)
        terms;
      (match sense with
      | Problem.Le ->
          a.(i).(!slack) <- F.one;
          incr slack
      | Problem.Ge ->
          a.(i).(!slack) <- F.neg F.one;
          incr slack
      | Problem.Eq -> ());
      b.(i) <- !rhs
    in
    List.iteri
      (fun i r -> set_row i r.Problem.sense (F.of_float r.Problem.rhs) r.terms)
      orig_rows;
    List.iteri
      (fun k (col, ub) ->
        let i = List.length orig_rows + k in
        a.(i).(col) <- F.one;
        a.(i).(!slack) <- F.one;
        incr slack;
        b.(i) <- ub)
      ub_rows;
    (* Make b >= 0 by row negation. *)
    for i = 0 to nrows - 1 do
      if F.compare b.(i) F.zero < 0 then begin
        b.(i) <- F.neg b.(i);
        for j = 0 to total_cols - 1 do
          a.(i).(j) <- F.neg a.(i).(j)
        done
      end
    done;
    ( { ncols = total_cols; nrows; a; b; c; recover },
      !obj_const,
      contradiction )

  (* Consecutive degenerate pivots tolerated under Dantzig/devex pricing
     before falling back to Bland's rule. *)
  let bland_trigger = 64

  (* One phase of the simplex method on the extended tableau [t]
     (nrows x (ncols+1), last column = b), with basis array [basis] and
     cost row [cost] (ncols+1 wide, last entry = -z).

     Pricing selects the entering column.  [`Devex] (the default) scores
     each candidate by (reduced cost)^2 / weight, with Forrest-Goldfarb
     reference-framework weights updated after every pivot -- a cheap
     steepest-edge approximation that usually needs fewer iterations
     than Dantzig on degenerate tableaus.  [`Dantzig] -- enter the most
     negative reduced cost -- is kept as the fallback rule.  The weights
     are deliberately plain floats even in exact-field instantiations:
     they only steer the column choice, never enter the tableau
     arithmetic, so exactness is unaffected and rational coefficients
     cannot blow up from repeated squaring.

     Either rule alone can cycle on degenerate bases, so a streak of
     [bland_trigger] consecutive degenerate pivots flips pricing to
     Bland's smallest-index rule, whose finiteness guarantee breaks the
     cycle; the first nondegenerate step switches back.  Termination:
     every nondegenerate pivot strictly decreases the objective (and
     there are finitely many bases), and every all-degenerate stretch
     either ends within [bland_trigger] pivots or continues under Bland's
     rule, which provably terminates. *)
  let run_phase ?(pricing = `Devex) t basis cost nrows ncols ~max_enter =
    let degen_streak = ref 0 in
    let dw = Array.make (max 1 max_enter) 1.0 in
    let rec iterate () =
      (* Artificial columns (j >= max_enter) are never allowed to enter:
         they start basic and once driven out must stay out, regardless of
         what pivoting does to their reduced costs. *)
      let entering = ref (-1) in
      if !degen_streak >= bland_trigger then (
        (* Bland: smallest index with negative reduced cost. *)
        try
          for j = 0 to max_enter - 1 do
            if F.compare cost.(j) F.zero < 0 then begin
              entering := j;
              raise Exit
            end
          done
        with Exit -> ())
      else begin
        match pricing with
        | `Dantzig ->
            (* Dantzig: most negative reduced cost, smallest index on
               ties. *)
            let bestc = ref F.zero in
            for j = 0 to max_enter - 1 do
              if F.compare cost.(j) !bestc < 0 then begin
                entering := j;
                bestc := cost.(j)
              end
            done
        | `Devex ->
            let best_score = ref 0. in
            for j = 0 to max_enter - 1 do
              if F.compare cost.(j) F.zero < 0 then begin
                let d = F.to_float cost.(j) in
                let score = d *. d /. dw.(j) in
                if score > !best_score then begin
                  entering := j;
                  best_score := score
                end
              end
            done
      end;
      if !entering < 0 then `Optimal
      else begin
        let e = !entering in
        (* Ratio test, Bland ties: smallest basis var index. *)
        let leave = ref (-1) in
        let best = ref F.zero in
        for i = 0 to nrows - 1 do
          if F.compare t.(i).(e) F.zero > 0 then begin
            let ratio = F.div t.(i).(ncols) t.(i).(e) in
            if
              !leave < 0
              || F.compare ratio !best < 0
              || (F.compare ratio !best = 0 && basis.(i) < basis.(!leave))
            then begin
              leave := i;
              best := ratio
            end
          end
        done;
        if !leave < 0 then `Unbounded
        else begin
          let l = !leave in
          if F.is_zero !best then incr degen_streak else degen_streak := 0;
          (* Pivot on (l, e). *)
          let piv = t.(l).(e) in
          for j = 0 to ncols do
            t.(l).(j) <- F.div t.(l).(j) piv
          done;
          for i = 0 to nrows - 1 do
            if i <> l && not (F.is_zero t.(i).(e)) then begin
              let f = t.(i).(e) in
              for j = 0 to ncols do
                t.(i).(j) <- F.sub t.(i).(j) (F.mul f t.(l).(j))
              done
            end
          done;
          if not (F.is_zero cost.(e)) then begin
            let f = cost.(e) in
            for j = 0 to ncols do
              cost.(j) <- F.sub cost.(j) (F.mul f t.(l).(j))
            done
          end;
          (match pricing with
          | `Dantzig -> ()
          | `Devex ->
              (* Forrest-Goldfarb update.  Post-pivot row [l] holds
                 alpha_lj / alpha_le, so with [we] the entering column's
                 old weight: w_j <- max(w_j, (alpha_lj/alpha_le)^2 * we)
                 for every priced column, the leaving column restarts at
                 max(we / alpha_le^2, 1), and a blown-up framework
                 (> 1e12) is reset to unit weights. *)
              let we = dw.(e) in
              let piv_f = F.to_float piv in
              let gr = we /. (piv_f *. piv_f) in
              if gr > 1e12 then Array.fill dw 0 (Array.length dw) 1.0
              else begin
                for j = 0 to max_enter - 1 do
                  if j <> e then begin
                    let a = F.to_float t.(l).(j) in
                    if a <> 0. then begin
                      let cand = a *. a *. we in
                      if cand > dw.(j) then dw.(j) <- cand
                    end
                  end
                done;
                let lv = basis.(l) in
                if lv < max_enter then dw.(lv) <- Float.max gr 1.0;
                dw.(e) <- 1.0
              end);
          basis.(l) <- e;
          iterate ()
        end
      end
    in
    iterate ()

  let solve (p : Problem.t) =
    let std, obj_const, contradiction = standardize p in
    let nv = Problem.num_vars p in
    let fail status =
      { status; objective = F.zero; solution = Array.make nv F.zero }
    in
    if contradiction then fail Infeasible
    else begin
      let m = std.nrows and n = std.ncols in
      (* Extended tableau with artificials: columns [0,n) structural+slack,
         [n, n+m) artificial, column n+m = rhs. *)
      let width = n + m in
      let t = Array.make_matrix m (width + 1) F.zero in
      for i = 0 to m - 1 do
        for j = 0 to n - 1 do
          t.(i).(j) <- std.a.(i).(j)
        done;
        t.(i).(n + i) <- F.one;
        t.(i).(width) <- std.b.(i)
      done;
      let basis = Array.init m (fun i -> n + i) in
      (* Phase-1 cost row: minimize sum of artificials; start reduced. *)
      let cost1 = Array.make (width + 1) F.zero in
      for j = 0 to width - 1 do
        if j >= n then cost1.(j) <- F.zero
        else begin
          (* reduced cost of column j = -(sum of rows) since artificial
             basis has cost 1 each *)
          let s = ref F.zero in
          for i = 0 to m - 1 do
            s := F.add !s t.(i).(j)
          done;
          cost1.(j) <- F.neg !s
        end
      done;
      let z1 = ref F.zero in
      for i = 0 to m - 1 do
        z1 := F.add !z1 t.(i).(width)
      done;
      cost1.(width) <- F.neg !z1;
      (match run_phase t basis cost1 m width ~max_enter:n with
      | `Unbounded -> failwith "dense_simplex: phase 1 unbounded (impossible)"
      | `Optimal -> ());
      (* Infeasible if phase-1 optimum > 0. *)
      let phase1_obj = F.neg cost1.(width) in
      if F.compare phase1_obj F.zero > 0 && not (F.is_zero phase1_obj) then
        fail Infeasible
      else begin
        (* Drive any artificial still in the basis out (degenerate). *)
        for i = 0 to m - 1 do
          if basis.(i) >= n then begin
            (* find a structural column with nonzero entry in this row *)
            let found = ref (-1) in
            (try
               for j = 0 to n - 1 do
                 if not (F.is_zero t.(i).(j)) then begin
                   found := j;
                   raise Exit
                 end
               done
             with Exit -> ());
            match !found with
            | -1 -> () (* redundant row; leave artificial at zero *)
            | e ->
                let piv = t.(i).(e) in
                for j = 0 to width do
                  t.(i).(j) <- F.div t.(i).(j) piv
                done;
                for i' = 0 to m - 1 do
                  if i' <> i && not (F.is_zero t.(i').(e)) then begin
                    let f = t.(i').(e) in
                    for j = 0 to width do
                      t.(i').(j) <- F.sub t.(i').(j) (F.mul f t.(i).(j))
                    done
                  end
                done;
                basis.(i) <- e
          end
        done;
        (* Phase-2 cost row: original costs, reduced w.r.t. current basis.
           Artificial columns are forbidden (treat as +inf cost: zero them
           and never let them enter by giving them cost 0 but blocking). *)
        let cost2 = Array.make (width + 1) F.zero in
        for j = 0 to n - 1 do
          cost2.(j) <- std.c.(j)
        done;
        (* Reduce: subtract basis costs. *)
        for i = 0 to m - 1 do
          let cb = if basis.(i) < n then std.c.(basis.(i)) else F.zero in
          if not (F.is_zero cb) then
            for j = 0 to width do
              cost2.(j) <- F.sub cost2.(j) (F.mul cb t.(i).(j))
            done
        done;
        match run_phase t basis cost2 m width ~max_enter:n with
        | `Unbounded -> fail Unbounded
        | `Optimal ->
            let y = Array.make width F.zero in
            for i = 0 to m - 1 do
              if basis.(i) < width then y.(basis.(i)) <- t.(i).(width)
            done;
            let solution =
              Array.init nv (fun j ->
                  let off, terms = std.recover.(j) in
                  List.fold_left
                    (fun acc (coef, col) -> F.add acc (F.mul coef y.(col)))
                    off terms)
            in
            let objective =
              Array.to_list solution
              |> List.mapi (fun j v -> F.mul (F.of_float (Problem.var_obj p j)) v)
              |> List.fold_left F.add F.zero
            in
            ignore obj_const;
            { status = Optimal; objective; solution }
      end
    end
end

module Exact = Make (Field.Rat_field)
module Approx = Make (Field.Float_field)
