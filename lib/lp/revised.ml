(* Production LP solver: bounded-variable revised dual simplex on a
   sparse LU-factored basis (see [Sparse_lu]) with sparse columns.

   Why dual simplex: the register-allocation MIPs have nonnegative move
   costs, so the all-slack basis with every structural variable at a
   dual-feasible bound is immediately dual feasible -- no phase 1 is ever
   needed.  Branch and bound only ever changes variable bounds, which
   preserves dual feasibility of the current basis, so node re-solves are
   warm-started for free.

   Warm restarts after bound changes are fully incremental: duals do not
   depend on bound values at all, so a bound change on a nonbasic
   variable only requires (a) re-checking which bound that one variable
   should sit at (using the maintained reduced cost) and (b) shifting
   x_B by one FTRAN column per net value change.  No global dual rescan
   ever happens between branch-and-bound nodes.

   Internal form: every row [a_i x (sense) b_i] becomes [a_i x + s_i = b_i]
   with slack bounds
       Le: s_i in [0, +inf)    Ge: s_i in (-inf, 0]    Eq: s_i in [0, 0].

   Requirements (checked at [create]): every structural variable must have
   at least one finite bound, and a finite bound on the side demanded by
   the sign of its objective coefficient (so that an initial dual-feasible
   placement exists).  The 0-1 models satisfy this trivially. *)

type status = Optimal | Infeasible | Iteration_limit

(* Leaving-row pricing rule.  [Devex] (Forrest-Goldfarb reference-
   framework weights, the dual variant) approximates steepest-edge
   pricing at the cost of one O(m) sweep per pivot and typically cuts
   iteration counts well below Dantzig-style most-infeasible selection
   on the degenerate, near-symmetric bank-assignment MIPs.  [Dantzig]
   keeps the old most-infeasible rule as a fallback. *)
type pricing = Dantzig | Devex

type t = {
  n : int; (* structural variables *)
  m : int; (* rows = slack variables *)
  cost : float array; (* length n+m; slacks cost 0 *)
  lo : float array; (* length n+m, mutable via set_bounds *)
  hi : float array;
  cols : (int * float) array array; (* sparse column per variable *)
  rhs : float array; (* length m *)
  mutable lu : Sparse_lu.t; (* factored basis *)
  basis : int array; (* length m: variable in basis position i *)
  in_basis : int array; (* var -> basis position, or -1 *)
  at_upper : bool array; (* nonbasic status; meaningful when not basic *)
  xb : float array; (* values of basic variables *)
  dvals : float array; (* reduced costs, maintained incrementally *)
  mutable dvals_fresh : bool;
  mutable xb_fresh : bool;
  (* cheap-restart queue: (nonbasic var, its value before the bound
     change); the basis and duals are unaffected by bound changes, so
     only these variables need their placement re-checked and x_B
     shifted by one FTRAN column each *)
  mutable bound_deltas : (int * float) list;
  rho : float array; (* workspace: BTRAN pivot row, length m *)
  wcol : float array; (* workspace: FTRAN entering column, length m *)
  pricing : pricing;
  dw : float array; (* devex reference weights, one per basis row *)
  mutable iters : int;
  mutable total_iters : int;
  mutable factorizations : int;
}

let feas_tol = 1e-7
let dual_tol = 1e-7
let pivot_tol = 1e-9

let create ?(pricing = Devex) (p : Problem.t) =
  let n = Problem.num_vars p in
  let m = Problem.num_rows p in
  let nm = n + m in
  let cost = Array.make nm 0. in
  let lo = Array.make nm 0. in
  let hi = Array.make nm 0. in
  let cols = Array.make nm [||] in
  let rhs = Array.make m 0. in
  for j = 0 to n - 1 do
    cost.(j) <- Problem.var_obj p j;
    lo.(j) <- Problem.var_lo p j;
    hi.(j) <- Problem.var_hi p j;
    if Float.is_finite lo.(j) = false && Float.is_finite hi.(j) = false then
      invalid_arg "Revised.create: free variables are not supported";
    if cost.(j) > 0. && not (Float.is_finite lo.(j)) then
      invalid_arg "Revised.create: positive cost needs a finite lower bound";
    if cost.(j) < 0. && not (Float.is_finite hi.(j)) then
      invalid_arg "Revised.create: negative cost needs a finite upper bound"
  done;
  (* Build structural columns row-wise then transpose. *)
  let col_build = Array.make n [] in
  let rows = ref [] in
  Problem.iter_rows (fun r -> rows := r :: !rows) p;
  let rows = Array.of_list (List.rev !rows) in
  Array.iteri
    (fun i (r : Problem.row) ->
      rhs.(i) <- r.rhs;
      (match r.sense with
      | Problem.Le ->
          lo.(n + i) <- 0.;
          hi.(n + i) <- infinity
      | Problem.Ge ->
          lo.(n + i) <- neg_infinity;
          hi.(n + i) <- 0.
      | Problem.Eq ->
          lo.(n + i) <- 0.;
          hi.(n + i) <- 0.);
      List.iter (fun (v, c) -> col_build.(v) <- (i, c) :: col_build.(v)) r.terms)
    rows;
  for j = 0 to n - 1 do
    cols.(j) <- Array.of_list (List.rev col_build.(j))
  done;
  for i = 0 to m - 1 do
    cols.(n + i) <- [| (i, 1.0) |]
  done;
  let basis = Array.init m (fun i -> n + i) in
  let in_basis = Array.make nm (-1) in
  for i = 0 to m - 1 do
    in_basis.(n + i) <- i
  done;
  let at_upper = Array.make nm false in
  for j = 0 to n - 1 do
    (* Dual-feasible initial placement. *)
    if cost.(j) < 0. then at_upper.(j) <- true
    else if not (Float.is_finite lo.(j)) then at_upper.(j) <- true
  done;
  (* All-slack basis: the identity factors trivially. *)
  let lu = Sparse_lu.factorize m (fun i -> cols.(basis.(i))) in
  {
    n; m; cost; lo; hi; cols; rhs; lu; basis; in_basis; at_upper;
    xb = Array.make m 0.;
    dvals = Array.make nm 0.;
    dvals_fresh = false;
    xb_fresh = false;
    bound_deltas = [];
    rho = Array.make m 0.;
    wcol = Array.make m 0.;
    pricing;
    dw = Array.make m 1.;
    iters = 0;
    total_iters = 0;
    factorizations = 0;
  }

let nonbasic_value t j = if t.at_upper.(j) then t.hi.(j) else t.lo.(j)

(* Resolved once at module initialization; [Metrics.reset] keeps the
   handle valid. *)
let m_refactorizations = Support.Metrics.counter "lp.lu.refactorizations"

let refactorize t =
  t.factorizations <- t.factorizations + 1;
  Support.Metrics.incr m_refactorizations;
  match Sparse_lu.factorize t.m (fun i -> t.cols.(t.basis.(i))) with
  | lu -> t.lu <- lu
  | exception Sparse_lu.Singular -> failwith "Revised.refactorize: singular basis"

(* Recompute x_B = Binv (b - N x_N) from scratch. *)
let recompute_xb t =
  Array.blit t.rhs 0 t.xb 0 t.m;
  for j = 0 to t.n + t.m - 1 do
    if t.in_basis.(j) < 0 then begin
      let xj = nonbasic_value t j in
      if xj <> 0. then
        Array.iter (fun (i, c) -> t.xb.(i) <- t.xb.(i) -. (c *. xj)) t.cols.(j)
    end
  done;
  Sparse_lu.ftran t.lu t.xb;
  t.xb_fresh <- true

(* Dual values and reduced costs for all variables, from one BTRAN. *)
let refresh_dvals t =
  let y = Array.make t.m 0. in
  for i = 0 to t.m - 1 do
    y.(i) <- t.cost.(t.basis.(i))
  done;
  Sparse_lu.btran t.lu y;
  for j = 0 to t.n + t.m - 1 do
    if t.in_basis.(j) >= 0 then t.dvals.(j) <- 0.
    else begin
      let d = ref t.cost.(j) in
      Array.iter (fun (i, c) -> d := !d -. (y.(i) *. c)) t.cols.(j);
      t.dvals.(j) <- !d
    end
  done;
  t.dvals_fresh <- true

(* Re-check which bound a single nonbasic variable should sit at, after
   its bounds changed.  Duals are untouched by bound changes, so the
   maintained reduced cost decides; an infinite current side forces a
   move regardless of the sign. *)
let fix_placement t j =
  if t.in_basis.(j) < 0 then begin
    let d = t.dvals.(j) in
    if t.at_upper.(j) && not (Float.is_finite t.hi.(j)) then
      t.at_upper.(j) <- false
    else if (not t.at_upper.(j)) && not (Float.is_finite t.lo.(j)) then
      t.at_upper.(j) <- true
    else if t.lo.(j) < t.hi.(j) -. 1e-15 then begin
      if (not t.at_upper.(j)) && d < -.dual_tol && Float.is_finite t.hi.(j)
      then t.at_upper.(j) <- true
      else if t.at_upper.(j) && d > dual_tol && Float.is_finite t.lo.(j) then
        t.at_upper.(j) <- false
    end
  end

(* FTRAN of the sparse column of variable [q] into the [wcol] workspace. *)
let ftran_col t q =
  Array.fill t.wcol 0 t.m 0.;
  Array.iter (fun (i, c) -> t.wcol.(i) <- c) t.cols.(q);
  Sparse_lu.ftran t.lu t.wcol

let set_bounds t j ~lo ~hi =
  if j < 0 || j >= t.n then invalid_arg "Revised.set_bounds";
  (* Record the pre-change value once per variable: several changes
     between two solves must not double-count the x_B shift, and only
     the OLDEST value matters. *)
  if
    t.in_basis.(j) < 0
    && not (List.exists (fun (k, _) -> k = j) t.bound_deltas)
  then t.bound_deltas <- (j, nonbasic_value t j) :: t.bound_deltas;
  t.lo.(j) <- lo;
  t.hi.(j) <- hi

let bounds t j =
  if j < 0 || j >= t.n then invalid_arg "Revised.bounds";
  (t.lo.(j), t.hi.(j))

exception Done of status

let solve ?(max_iters = 200_000) t =
  if not t.dvals_fresh then refresh_dvals t;
  (* Incremental restart: re-place the variables whose bounds changed,
     then shift x_B by the net value changes (one FTRAN each). *)
  if t.xb_fresh then
    List.iter
      (fun (j, old_value) ->
        if t.in_basis.(j) < 0 then begin
          fix_placement t j;
          let new_value = nonbasic_value t j in
          let delta = new_value -. old_value in
          if Float.abs delta > 1e-13 then begin
            ftran_col t j;
            for i = 0 to t.m - 1 do
              t.xb.(i) <- t.xb.(i) -. (delta *. t.wcol.(i))
            done
          end
        end)
      t.bound_deltas
  else begin
    List.iter (fun (j, _) -> fix_placement t j) t.bound_deltas;
    recompute_xb t
  end;
  t.bound_deltas <- [];
  t.iters <- 0;
  let nm = t.n + t.m in
  let alphas = Array.make nm 0. in
  (try
     while true do
       if t.iters >= max_iters then raise (Done Iteration_limit);
       t.iters <- t.iters + 1;
       t.total_iters <- t.total_iters + 1;
       if Sparse_lu.should_refactorize t.lu then begin
         refactorize t;
         recompute_xb t;
         refresh_dvals t
       end;
       (* Leaving variable: among primal-infeasible basic variables,
          Dantzig takes the worst infeasibility; Devex scores each row
          by infeasibility^2 / weight, the reference-framework estimate
          of infeasibility per unit of (dual) edge length. *)
       let r = ref (-1) in
       let best_score = ref 0. in
       let sigma = ref 1.0 in
       for i = 0 to t.m - 1 do
         let v = Array.unsafe_get t.basis i in
         let x = Array.unsafe_get t.xb i in
         let infeas, s =
           if x > t.hi.(v) +. feas_tol then (x -. t.hi.(v), 1.0)
           else if x < t.lo.(v) -. feas_tol then (t.lo.(v) -. x, -1.0)
           else (0., 0.)
         in
         if infeas > feas_tol then begin
           let score =
             match t.pricing with
             | Dantzig -> infeas
             | Devex -> infeas *. infeas /. Array.unsafe_get t.dw i
           in
           if score > !best_score then begin
             r := i;
             best_score := score;
             sigma := s
           end
         end
       done;
       if !r < 0 then raise (Done Optimal);
       let r = !r and sigma = !sigma in
       (* Pivot row of Binv: rho = e_r' Binv via one sparse BTRAN. *)
       let rho = t.rho in
       Array.fill rho 0 t.m 0.;
       rho.(r) <- 1.0;
       Sparse_lu.btran t.lu rho;
       (* Ratio test over nonbasic columns, using the maintained reduced
          costs; alphas are cached for the incremental dual update. *)
       let best_j = ref (-1) in
       let best_ratio = ref infinity in
       let best_alpha = ref 0. in
       for j = 0 to nm - 1 do
         if t.in_basis.(j) < 0 then begin
           let alpha = ref 0. in
           let col = t.cols.(j) in
           for k = 0 to Array.length col - 1 do
             let i, c = Array.unsafe_get col k in
             alpha := !alpha +. (Array.unsafe_get rho i *. c)
           done;
           Array.unsafe_set alphas j !alpha;
           if t.lo.(j) < t.hi.(j) -. 1e-15 then begin
             let a = sigma *. !alpha in
             let eligible =
               if t.at_upper.(j) then a < -.pivot_tol else a > pivot_tol
             in
             if eligible then begin
               let d = Array.unsafe_get t.dvals j in
               let ratio = Float.abs (d /. a) in
               if
                 ratio < !best_ratio -. 1e-12
                 || (ratio < !best_ratio +. 1e-12
                    && Float.abs a > Float.abs !best_alpha)
               then begin
                 best_j := j;
                 best_ratio := ratio;
                 best_alpha := !alpha
               end
             end
           end
         end
       done;
       if !best_j < 0 then raise (Done Infeasible);
       let q = !best_j in
       (* Full entering column. *)
       ftran_col t q;
       let w = t.wcol in
       if Float.abs w.(r) < pivot_tol then begin
         (* The FTRAN image disagrees with the BTRAN-side alpha: the
            factors have drifted.  Refactorize and redo the iteration. *)
         if Sparse_lu.n_etas t.lu = 0 then
           failwith "Revised.solve: numerically singular pivot";
         refactorize t;
         recompute_xb t;
         refresh_dvals t
       end
       else begin
         (* incremental dual update: d_j -= (d_q / alpha_q) * alpha_j *)
         let theta = t.dvals.(q) /. alphas.(q) in
         if theta <> 0. then
           for j = 0 to nm - 1 do
             if t.in_basis.(j) < 0 && j <> q then
               Array.unsafe_set t.dvals j
                 (Array.unsafe_get t.dvals j
                 -. (theta *. Array.unsafe_get alphas j))
           done;
         let wr = w.(r) in
         let leaving = t.basis.(r) in
         let target =
           if sigma > 0. then t.hi.(leaving) else t.lo.(leaving)
         in
         let step = (t.xb.(r) -. target) /. wr in
         (* Update basic values. *)
         for i = 0 to t.m - 1 do
           t.xb.(i) <- t.xb.(i) -. (step *. w.(i))
         done;
         let entering_old = nonbasic_value t q in
         (* Absorb the basis change as a product-form eta. *)
         Sparse_lu.update t.lu ~r ~w;
         (* Swap basis membership. *)
         t.basis.(r) <- q;
         t.in_basis.(q) <- r;
         t.in_basis.(leaving) <- -1;
         t.at_upper.(leaving) <- sigma > 0.;
         t.xb.(r) <- entering_old +. step;
         t.dvals.(leaving) <- -.theta;
         t.dvals.(q) <- 0.;
         if t.pricing = Devex then begin
           (* Forrest-Goldfarb dual devex update: with gamma_r the old
              weight of the leaving row and w = Binv a_q the entering
              column, the new row-r weight is max(gamma_r / w_r^2, 1)
              and every other row takes max(gamma_i, (w_i/w_r)^2 *
              gamma_r).  When the reference framework has degraded
              (weights blown past 1e12) restart it from unit weights. *)
           let gr = t.dw.(r) /. (wr *. wr) in
           if gr > 1e12 then Array.fill t.dw 0 t.m 1.
           else begin
             for i = 0 to t.m - 1 do
               if i <> r then begin
                 let wi = Array.unsafe_get w i in
                 if wi <> 0. then begin
                   let cand = wi *. wi *. gr in
                   if cand > Array.unsafe_get t.dw i then
                     Array.unsafe_set t.dw i cand
                 end
               end
             done;
             t.dw.(r) <- Float.max gr 1.0
           end
         end
       end
     done;
     assert false
   with Done s ->
     (match s with
     | Optimal | Infeasible | Iteration_limit -> s))

let primal t =
  let x = Array.make t.n 0. in
  for j = 0 to t.n - 1 do
    let pos = t.in_basis.(j) in
    x.(j) <- (if pos >= 0 then t.xb.(pos) else nonbasic_value t j)
  done;
  x

let objective t =
  let x = primal t in
  let acc = ref 0. in
  for j = 0 to t.n - 1 do
    acc := !acc +. (t.cost.(j) *. x.(j))
  done;
  !acc

let iterations t = t.total_iters
let factorizations t = t.factorizations
let num_rows t = t.m
let num_cols t = t.n
