(* Rounding/diving primal heuristic.

   Branch and bound prunes with the incumbent objective, so the sooner a
   good integral solution exists, the smaller the tree.  The pure
   depth-first dive used to be the only incumbent source, and it only
   produces one after committing to a full branching path.  This module
   instead dives greedily from the current LP optimum: repeatedly fix the
   *least* fractional integer variable to its nearest integer and
   re-solve the (warm-started, dual-feasible) LP.  Least-fractional-first
   keeps each re-solve near the parent optimum, so a dive typically costs
   a few hundred simplex pivots total on the allocation models.

   The dive runs on the caller's solver state and restores every bound it
   touched before returning; the caller keeps using the same solver for
   branching afterwards (its next [solve] restarts incrementally from the
   restored bounds). *)

let int_tol = 1e-6

(* Iteration budget per re-solve inside the dive: a warm dual re-solve
   after fixing one variable normally takes a handful of pivots, so
   hitting this means the dive wandered somewhere expensive -- abort. *)
let dive_max_iters = 2_000

(* [dive solver p ~cutoff ~deadline] assumes [solver] has just solved the
   LP over its current bounds to optimality.  Returns [Some (obj, x)]
   with an integral solution strictly better than [cutoff], or [None].
   All bounds touched are restored before returning (the solver's basis
   is left wherever the dive ended; the caller re-solves as needed). *)
let dive ?(max_fixes = 500) ?(cutoff = infinity) ?(deadline = infinity)
    (solver : Revised.t) (p : Problem.t) =
  let n = Problem.num_vars p in
  let saved = Hashtbl.create 32 in
  let save v =
    if not (Hashtbl.mem saved v) then
      Hashtbl.replace saved v (Revised.bounds solver v)
  in
  let restore () =
    Hashtbl.iter (fun v (l, h) -> Revised.set_bounds solver v ~lo:l ~hi:h) saved
  in
  let resolve_ok () =
    match Revised.solve ~max_iters:dive_max_iters solver with
    | Revised.Optimal -> Revised.objective solver < cutoff
    | Revised.Infeasible | Revised.Iteration_limit -> false
  in
  let rec go fixes =
    if fixes > max_fixes || Clock.now () > deadline then None
    else begin
      let x = Revised.primal solver in
      (* least-fractional unfixed integer variable *)
      let best = ref (-1) and bestf = ref infinity in
      for j = 0 to n - 1 do
        if Problem.var_integer p j then begin
          let f = Float.abs (x.(j) -. Float.round x.(j)) in
          if f > int_tol && f < !bestf then begin
            best := j;
            bestf := f
          end
        end
      done;
      if !best < 0 then begin
        (* Integral: snap and report. *)
        let obj = Revised.objective solver in
        if obj < cutoff then begin
          for j = 0 to n - 1 do
            if Problem.var_integer p j then x.(j) <- Float.round x.(j)
          done;
          Some (obj, x)
        end
        else None
      end
      else begin
        let v = !best in
        let lo, hi = Revised.bounds solver v in
        let r = Float.max lo (Float.min hi (Float.round x.(v))) in
        save v;
        Revised.set_bounds solver v ~lo:r ~hi:r;
        if resolve_ok () then go (fixes + 1)
        else begin
          (* one shot at the opposite rounding, then give up *)
          let alt = if r > x.(v) then r -. 1. else r +. 1. in
          if alt < lo -. 1e-9 || alt > hi +. 1e-9 then None
          else begin
            Revised.set_bounds solver v ~lo:alt ~hi:alt;
            if resolve_ok () then go (fixes + 1) else None
          end
        end
      end
    end
  in
  (* The solver may be carrying queued bound deltas (e.g. a preceding
     [guided_dive] restores its fixings without re-solving), in which
     case the stored primal is stale -- possibly infeasible for the
     current bounds.  Re-establish optimality before reading it; when
     the caller really did just solve, this costs zero pivots. *)
  let result = if resolve_ok () then go 0 else None in
  restore ();
  result

(* Warm-start seeding dive: fix every hinted integer variable to its
   hinted value at once (clamped to current bounds), re-solve, and let
   the ordinary dive above finish off any remaining fractional
   variables.  The bulk re-solve *is* the [Sparse_lu] warm-restart path:
   [Revised.set_bounds] only queues bound deltas, so the dual simplex
   restarts from the current factored basis instead of refactorizing --
   which is what makes seeding from a previous solve's solution cheap.
   When the hints describe an incompatible model (the program changed
   enough that the old assignment is infeasible here), the fix-all LP
   comes back infeasible and the caller falls back to the plain dive.

   [hints.(j)] is the suggested value for variable [j], or [nan] for no
   suggestion.  All bounds touched are restored before returning. *)
let guided_max_iters = 20_000

let guided_dive ?(cutoff = infinity) ?(deadline = infinity)
    ~(hints : float array) (solver : Revised.t) (p : Problem.t) =
  let n = Problem.num_vars p in
  let saved = ref [] in
  let fixed = ref 0 in
  for j = 0 to min n (Array.length hints) - 1 do
    let h = hints.(j) in
    if Problem.var_integer p j && not (Float.is_nan h) then begin
      let lo, hi = Revised.bounds solver j in
      let v = Float.max lo (Float.min hi (Float.round h)) in
      saved := (j, lo, hi) :: !saved;
      Revised.set_bounds solver j ~lo:v ~hi:v;
      incr fixed
    end
  done;
  let restore () =
    List.iter (fun (j, lo, hi) -> Revised.set_bounds solver j ~lo ~hi) !saved
  in
  if !fixed = 0 then begin
    restore ();
    None
  end
  else begin
    let result =
      match Revised.solve ~max_iters:guided_max_iters solver with
      | Revised.Infeasible | Revised.Iteration_limit -> None
      | Revised.Optimal ->
          if Revised.objective solver >= cutoff then None
          else
            (* hinted variables are fixed integral; the plain dive now
               only has the unhinted remainder to round *)
            dive ~cutoff ~deadline solver p
    in
    restore ();
    result
  end
