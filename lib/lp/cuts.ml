(* Root cutting planes for the 0-1 allocation models: knapsack cover
   cuts and clique cuts separated from the rows of the problem, plus
   Chvatal-Gomory rhs rounding.

   The register-allocation MIPs are dominated by set-packing structure:
   per-bank capacity rows (at most K live values per bank), per-color
   exclusivity rows, and conflict rows.  Their LP relaxations fracture
   exactly where several binaries share such a row, and the classic
   remedies are

     cover cuts:  for a knapsack row  sum a_j x_j <= b  (a_j > 0 after
       complementing), any subset C with  sum_C a_j > b  admits
       sum_C x_j <= |C| - 1;

     clique cuts: if every pair in a set Q of literals conflicts
       (a_i + a_j > b in some row), then  sum_Q x <= 1 -- strictly
       stronger than the pairwise rows it came from;

     rhs rounding: an all-integer row with fractional rhs tightens to
       floor(rhs) (u = 1 Chvatal-Gomory cut).

   Cuts are separated against the fractional LP optimum and only
   violated ones are returned, most violated first.  Everything works on
   *literals* (a variable or its complement, id = 2v or 2v+1) so rows
   with negative coefficients separate just as well. *)

type cut = {
  cname : string;
  crhs : float;
  cterms : (int * float) list; (* always a <=-row *)
  cviolation : float; (* violation at the separating LP point *)
}

let eps = 1e-6
let min_violation = 1e-4

(* --- literal helpers ------------------------------------------------- *)

let lit_pos v = 2 * v
let lit_neg v = (2 * v) + 1
let lit_var l = l / 2
let lit_is_neg l = l land 1 = 1
let lit_value x l = if lit_is_neg l then 1. -. x.(lit_var l) else x.(lit_var l)

(* A normalized row: sum a_j lit_j <= b with all a_j > 0, binaries only.
   Returns None if the row involves a non-binary variable. *)
let normalize (p : Problem.t) terms rhs =
  let ok = ref true in
  let b = ref rhs in
  let lits =
    List.filter_map
      (fun (v, a) ->
        if
          (not (Problem.var_integer p v))
          || Problem.var_lo p v < -.eps
          || Problem.var_hi p v > 1. +. eps
        then begin
          ok := false;
          None
        end
        else if a > eps then Some (lit_pos v, a)
        else if a < -.eps then begin
          (* a*x = -a*(1-x) + a: complement the literal *)
          b := !b -. a;
          Some (lit_neg v, -.a)
        end
        else None)
      terms
  in
  if !ok then Some (lits, !b) else None

(* Translate a <=-cut over literals back to variable space. *)
let of_literals name lits rhs violation =
  let b = ref rhs in
  let terms =
    List.map
      (fun (l, a) ->
        if lit_is_neg l then begin
          (* a*(1-x) <= ... contributes -a*x and shifts the rhs *)
          b := !b -. a;
          (lit_var l, -.a)
        end
        else (lit_var l, a))
      lits
  in
  { cname = name; crhs = !b; cterms = terms; cviolation = violation }

(* --- cover cuts ------------------------------------------------------ *)

let cover_cut p x terms rhs idx =
  match normalize p terms rhs with
  | None -> None
  | Some (lits, b) ->
      if List.length lits < 2 || b < -.eps then None
      else begin
        let total = List.fold_left (fun s (_, a) -> s +. a) 0. lits in
        if total <= b +. eps then None (* row can never bind *)
        else begin
          (* Uniform-coefficient rows are pure set packing: any cover cut
             sum_C x <= |C|-1 is dominated by the row itself. *)
          let amin, amax =
            List.fold_left
              (fun (mn, mx) (_, a) -> (Float.min mn a, Float.max mx a))
              (infinity, 0.) lits
          in
          if amax -. amin < eps then None
          else begin
            (* Greedy min-weight cover, cheapest (1 - x) per unit first. *)
            let order =
              List.sort
                (fun (l1, a1) (l2, a2) ->
                  compare
                    ((1. -. lit_value x l1) /. a1)
                    ((1. -. lit_value x l2) /. a2))
                lits
            in
            let cover = ref [] in
            let weight = ref 0. in
            (try
               List.iter
                 (fun (l, a) ->
                   if !weight > b +. eps then raise Exit;
                   cover := (l, a) :: !cover;
                   weight := !weight +. a)
                 order
             with Exit -> ());
            if !weight <= b +. eps then None
            else begin
              (* Minimalize: drop big items while the cover survives. *)
              let items =
                List.sort (fun (_, a1) (_, a2) -> compare a2 a1) !cover
              in
              let kept =
                List.filter
                  (fun (_, a) ->
                    if !weight -. a > b +. eps then begin
                      weight := !weight -. a;
                      false
                    end
                    else true)
                  items
              in
              let size = List.length kept in
              if size < 2 then None
              else begin
                let lhs =
                  List.fold_left (fun s (l, _) -> s +. lit_value x l) 0. kept
                in
                let violation = lhs -. float_of_int (size - 1) in
                if violation < min_violation then None
                else
                  Some
                    (of_literals
                       (Printf.sprintf "cover_r%d" idx)
                       (List.map (fun (l, _) -> (l, 1.)) kept)
                       (float_of_int (size - 1))
                       violation)
              end
            end
          end
        end
      end

(* --- clique cuts ----------------------------------------------------- *)

(* Conflict graph over literals: an edge (l1, l2) means x_{l1} + x_{l2}
   <= 1 is valid.  Built from short normalized rows: literals i, j
   conflict when a_i + a_j > b. *)
let max_conflict_row = 48

let build_conflicts p rows =
  let adj : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let add_edge l1 l2 =
    let nb l =
      match Hashtbl.find_opt adj l with
      | Some s -> s
      | None ->
          let s = Hashtbl.create 8 in
          Hashtbl.add adj l s;
          s
    in
    Hashtbl.replace (nb l1) l2 ();
    Hashtbl.replace (nb l2) l1 ()
  in
  List.iter
    (fun (terms, rhs) ->
      match normalize p terms rhs with
      | None -> None |> ignore
      | Some (lits, b) ->
          if List.length lits >= 2 && List.length lits <= max_conflict_row
          then begin
            let arr = Array.of_list lits in
            Array.sort (fun (_, a1) (_, a2) -> compare a2 a1) arr;
            let len = Array.length arr in
            (try
               for i = 0 to len - 2 do
                 let _, ai = arr.(i) in
                 (* descending coefficients: once a pair fits, the rest
                    of the inner loop fits too *)
                 let stop = ref false in
                 for j = i + 1 to len - 1 do
                   if not !stop then begin
                     let _, aj = arr.(j) in
                     if ai +. aj > b +. eps then
                       add_edge (fst arr.(i)) (fst arr.(j))
                     else stop := true
                   end
                 done;
                 if ai +. snd arr.(i + 1) <= b +. eps then raise Exit
               done
             with Exit -> ())
          end)
    rows;
  adj

let clique_cuts p x rows ~max_cuts =
  let adj = build_conflicts p rows in
  if Hashtbl.length adj = 0 then []
  else begin
    (* Fractional literals make promising clique seeds. *)
    let seeds =
      Hashtbl.fold
        (fun l _ acc -> if lit_value x l > 0.3 then l :: acc else acc)
        adj []
    in
    let seeds =
      List.sort (fun a b -> compare (lit_value x b) (lit_value x a)) seeds
    in
    let seen = Hashtbl.create 16 in
    let cuts = ref [] in
    let ncuts = ref 0 in
    List.iter
      (fun seed ->
        if !ncuts < max_cuts then begin
          let clique = ref [ seed ] in
          let adjacent_to_all l =
            match Hashtbl.find_opt adj l with
            | None -> false
            | Some nb -> List.for_all (fun c -> Hashtbl.mem nb c) !clique
          in
          (* grow greedily by descending fractional value *)
          (match Hashtbl.find_opt adj seed with
          | None -> ()
          | Some nb ->
              let cands =
                Hashtbl.fold (fun l _ acc -> l :: acc) nb []
                |> List.sort (fun a b ->
                       compare (lit_value x b) (lit_value x a))
              in
              List.iter
                (fun l ->
                  let v = lit_var l in
                  if
                    (not (List.exists (fun c -> lit_var c = v) !clique))
                    && adjacent_to_all l
                  then clique := l :: !clique)
                cands);
          if List.length !clique >= 3 then begin
            let lhs =
              List.fold_left (fun s l -> s +. lit_value x l) 0. !clique
            in
            let violation = lhs -. 1. in
            if violation >= min_violation then begin
              let key =
                List.sort compare !clique
                |> List.map string_of_int |> String.concat ","
              in
              if not (Hashtbl.mem seen key) then begin
                Hashtbl.add seen key ();
                incr ncuts;
                cuts :=
                  of_literals
                    (Printf.sprintf "clique_%d" !ncuts)
                    (List.map (fun l -> (l, 1.)) !clique)
                    1. violation
                  :: !cuts
              end
            end
          end
        end)
      seeds;
    !cuts
  end

(* --- Chvatal-Gomory rhs rounding ------------------------------------- *)

let rounding_cut p x terms rhs idx =
  let frac = rhs -. floor rhs in
  if frac < eps || frac > 1. -. eps then None
  else if
    List.for_all
      (fun (v, a) ->
        Problem.var_integer p v
        && Float.abs (a -. Float.round a) < eps)
      terms
    && terms <> []
  then begin
    let b' = floor rhs in
    let lhs = List.fold_left (fun s (v, a) -> s +. (a *. x.(v))) 0. terms in
    let violation = lhs -. b' in
    if violation < min_violation then None
    else
      Some
        {
          cname = Printf.sprintf "cground_r%d" idx;
          crhs = b';
          cterms = terms;
          cviolation = violation;
        }
  end
  else None

(* --- driver ---------------------------------------------------------- *)

(* [generate p x] separates cuts violated by the LP point [x].  Returns
   at most [max_cuts] cuts, most violated first.  Every returned cut is
   a <=-row valid for all integral solutions of [p]. *)
let generate ?(max_cuts = 200) (p : Problem.t) (x : float array) =
  (* Collect every row as one or two <=-rows. *)
  let le_rows = ref [] in
  let idx = ref 0 in
  Problem.iter_rows
    (fun r ->
      incr idx;
      let i = !idx in
      (match r.Problem.sense with
      | Problem.Le -> le_rows := (i, r.terms, r.rhs) :: !le_rows
      | Problem.Ge ->
          le_rows :=
            (i, List.map (fun (v, a) -> (v, -.a)) r.terms, -.r.rhs)
            :: !le_rows
      | Problem.Eq ->
          le_rows := (i, r.terms, r.rhs) :: !le_rows;
          le_rows :=
            (-i, List.map (fun (v, a) -> (v, -.a)) r.terms, -.r.rhs)
            :: !le_rows))
    p;
  let le_rows = !le_rows in
  let covers =
    List.filter_map (fun (i, terms, rhs) -> cover_cut p x terms rhs i) le_rows
  in
  let roundings =
    List.filter_map
      (fun (i, terms, rhs) -> rounding_cut p x terms rhs i)
      le_rows
  in
  let cliques =
    clique_cuts p x
      (List.map (fun (_, terms, rhs) -> (terms, rhs)) le_rows)
      ~max_cuts
  in
  let all = covers @ roundings @ cliques in
  let all =
    List.sort (fun c1 c2 -> compare c2.cviolation c1.cviolation) all
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | c :: rest -> c :: take (k - 1) rest
  in
  take max_cuts all

(* Append the cuts to [p] as ordinary rows. *)
let apply (p : Problem.t) cuts =
  List.iter
    (fun c -> Problem.add_row p ~name:c.cname Problem.Le c.crhs c.cterms)
    cuts;
  List.length cuts
