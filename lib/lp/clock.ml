(* Single wall-clock time source for every solver budget.

   Before this module existed, [Mip.solve] and [Branch_bound.solve]
   metered their [time_limit] with [Sys.time] (process CPU seconds) while
   the register-allocation driver and the benchmarks reported wall-clock
   seconds -- so a "120 s budget" meant 120 CPU seconds, which is neither
   what the CLI flags documented nor what the paper's Figure 7 reports.
   All solver timing now goes through [now], and budgets are therefore
   wall-clock seconds end to end.

   [Unix.gettimeofday] is the best portable time source available in this
   dependency set; solver runs are short enough (seconds to minutes) that
   NTP slews are irrelevant, and budget checks tolerate the theoretical
   non-monotonicity by clamping elapsed time at zero. *)

let now () = Unix.gettimeofday ()

(* Elapsed seconds since [t0], never negative. *)
let since t0 = Float.max 0. (now () -. t0)
