(* Single time source for every solver budget.

   Before this module existed, [Mip.solve] and [Branch_bound.solve]
   metered their [time_limit] with [Sys.time] (process CPU seconds) while
   the register-allocation driver and the benchmarks reported wall-clock
   seconds -- so a "120 s budget" meant 120 CPU seconds, which is neither
   what the CLI flags documented nor what the paper's Figure 7 reports.
   All solver timing now goes through [now], and budgets are therefore
   wall-clock seconds end to end.

   [now] reads the monotonic clock ([Support.Monotonic]), not
   [Unix.gettimeofday]: a wall-clock step (NTP jump, manual adjustment)
   mid-solve would otherwise blow a budget instantly or extend it
   indefinitely.  The origin is arbitrary, so [now] values are only
   meaningful as differences. *)

let now () = Support.Monotonic.now_s ()

(* Elapsed seconds since [t0], never negative. *)
let since t0 = Float.max 0. (now () -. t0)
