(* High-level MIP entry point: presolve, root cuts, branch and bound,
   postsolve.

   This is the interface the register allocator talks to; it reports the
   statistics that Figure 7 of the paper tabulates (model size, root-LP
   and integer solve times).

   Root cutting planes: after presolve, a few rounds of cover/clique
   separation (see [Cuts]) run against the fractional root optimum and
   the violated cuts are appended to the reduced problem as ordinary
   rows, so branch and bound starts from a tighter relaxation.  All
   budgets are wall-clock seconds ([Clock]); the cut rounds spend from
   the same [time_limit] as the search. *)

type status = Optimal | Infeasible | Limit

(* Warm-start input/output, keyed by the *original* problem's variable
   indices (callers never see presolve's reduced index space; the
   mapping through [Presolve.info.keep_map] happens here).  [ws_values]
   is an integral solution to seed the incumbent from; [ws_pseudocosts]
   is the branching history (sum_dn, cnt_dn, sum_up, cnt_up) to import.
   A solve's [ws_out] is exactly this shape, so "persist ws_out, feed it
   back as [warm] next time" is the whole reuse protocol. *)
type warm_start = {
  ws_values : (int * float) list;
  ws_pseudocosts : (int * (float * int * float * int)) list;
}

let no_warm_start = { ws_values = []; ws_pseudocosts = [] }

type stats = {
  vars_before : int;
  rows_before : int;
  vars_after : int; (* after presolve *)
  rows_after : int;
  obj_terms : int;
  nonzeros : int;
  root_time : float;
  total_time : float;
  root_objective : float;
  nodes : int;
  simplex_iterations : int;
  cut_rounds : int; (* root separation rounds run *)
  cuts_added : int; (* violated cuts appended before branching *)
  best_bound : float; (* proven lower bound at exit *)
  heuristic_incumbents : int; (* incumbents found by the diving heuristic *)
  warm_start_used : bool; (* warm hints seeded the incumbent *)
  incumbent_source : string;
      (* "seeded" | "heuristic" | "branch" | "presolve" | "none" *)
}

type result = {
  status : status;
  objective : float;
  solution : float array; (* indexed by the original problem's variables *)
  stats : stats;
  ws_out : warm_start; (* solution + pseudocosts for the next warm start *)
}

let default_stats =
  {
    vars_before = 0;
    rows_before = 0;
    vars_after = 0;
    rows_after = 0;
    obj_terms = 0;
    nonzeros = 0;
    root_time = 0.;
    total_time = 0.;
    root_objective = nan;
    nodes = 0;
    simplex_iterations = 0;
    cut_rounds = 0;
    cuts_added = 0;
    best_bound = nan;
    heuristic_incumbents = 0;
    warm_start_used = false;
    incumbent_source = "none";
  }

let int_tol = 1e-6

(* Separate and append root cuts until no violated cut is found, the
   round budget runs out, or the root comes back integral.  Returns
   (rounds run, cuts added).  Each round re-solves the root LP from
   scratch; with the sparse basis this costs well under a second even on
   the largest allocation models. *)
let root_cut_pass ?(max_rounds = 3) ~deadline (p : Problem.t) =
  let n = Problem.num_vars p in
  let rounds = ref 0 in
  let added = ref 0 in
  let continue_ = ref true in
  while !continue_ && !rounds < max_rounds && Clock.now () < deadline do
    incr rounds;
    let solver = Revised.create p in
    match Revised.solve solver with
    | Revised.Infeasible | Revised.Iteration_limit -> continue_ := false
    | Revised.Optimal ->
        let x = Revised.primal solver in
        let fractional = ref false in
        for j = 0 to n - 1 do
          if Problem.var_integer p j then begin
            let f = Float.abs (x.(j) -. Float.round x.(j)) in
            if f > int_tol then fractional := true
          end
        done;
        if not !fractional then continue_ := false
        else begin
          let cuts = Cuts.generate p x in
          if cuts = [] then continue_ := false
          else added := !added + Cuts.apply p cuts
        end
  done;
  (!rounds, !added)

let solve ?(presolve = true) ?(cuts = true) ?(time_limit = 600.)
    ?(node_limit = 500_000) ?(rel_gap = 1e-4) ?(domains = 1)
    ?(deterministic = false) ?(warm = no_warm_start) (p : Problem.t) =
  let t0 = Clock.now () in
  let before = Problem.stats p in
  let finish ?(warm_used = false) ?(inc_src = "none")
      ?(ws_out = no_warm_start) status objective solution ~root_time
      ~root_obj ~nodes ~iters ~cut_rounds ~cuts_added ~best_bound ~heur
      ~after_stats =
    let total_time = Clock.since t0 in
    {
      status;
      objective;
      solution;
      stats =
        {
          vars_before = before.Problem.n_vars;
          rows_before = before.Problem.n_rows;
          vars_after = after_stats.Problem.n_vars;
          rows_after = after_stats.Problem.n_rows;
          obj_terms = before.Problem.n_obj_terms;
          nonzeros = before.Problem.n_nonzeros;
          root_time;
          total_time;
          root_objective = root_obj;
          nodes;
          simplex_iterations = iters;
          cut_rounds;
          cuts_added;
          best_bound;
          heuristic_incumbents = heur;
          warm_start_used = warm_used;
          incumbent_source = inc_src;
        };
      ws_out;
    }
  in
  (* [map_orig_to_sub] translates warm data given on original variable
     indices to the (presolved) subproblem's index space; [sub_to_orig]
     is the inverse, for exporting the final pseudocost table back.
     Identity when presolve is off. *)
  let branch_and_bound sub ~after_stats ~postsolve_fn ~map_orig_to_sub
      ~sub_to_orig =
    let cut_rounds, cuts_added =
      if cuts then
        Support.Trace.with_span "root-cuts" (fun () ->
            root_cut_pass ~deadline:(t0 +. (0.25 *. time_limit)) sub)
      else (0, 0)
    in
    Support.Metrics.add (Support.Metrics.counter "lp.cuts.added") cuts_added;
    let remaining = Float.max 1. (time_limit -. Clock.since t0) in
    let bb_warm =
      {
        Branch_bound.w_hints =
          List.filter_map
            (fun (j, v) ->
              Option.map (fun j' -> (j', v)) (map_orig_to_sub j))
            warm.ws_values;
        w_pc =
          List.filter_map
            (fun (j, h) ->
              Option.map (fun j' -> (j', h)) (map_orig_to_sub j))
            warm.ws_pseudocosts;
      }
    in
    let r =
      Support.Trace.with_span "branch-and-bound" (fun () ->
          Branch_bound.solve ~time_limit:remaining ~node_limit ~rel_gap
            ~domains ~deterministic ~warm:bb_warm sub)
    in
    let status =
      match r.Branch_bound.status with
      | Branch_bound.Optimal -> Optimal
      | Branch_bound.Infeasible -> Infeasible
      | Branch_bound.Limit -> Limit
    in
    let solution, objective =
      if status = Infeasible then
        (Array.make (Problem.num_vars p) 0., infinity)
      else begin
        let s = postsolve_fn r.Branch_bound.solution in
        (s, Problem.objective_value p s)
      end
    in
    let ws_out =
      if status = Infeasible then no_warm_start
      else
        {
          ws_values =
            (let acc = ref [] in
             for j = Problem.num_vars p - 1 downto 0 do
               if Problem.var_integer p j
                  && Float.abs solution.(j) > 1e-6
               then acc := (j, Float.round solution.(j)) :: !acc
             done;
             !acc);
          ws_pseudocosts =
            List.filter_map
              (fun (j, h) ->
                Option.map (fun j' -> (j', h)) (sub_to_orig j))
              r.Branch_bound.pc_out;
        }
    in
    (* The search proves its bound on the presolved/cut problem while the
       reported objective is re-evaluated on the original problem, so the
       two can disagree by float drift (observed at the 1e-5 scale on the
       larger allocation models), yielding the absurd report
       "best_bound < objective" on a proven optimum.  At optimality the
       objective itself is the tightest valid bound: clamp to it. *)
    let best_bound =
      if status = Optimal then Float.max r.Branch_bound.best_bound objective
      else r.Branch_bound.best_bound
    in
    finish status objective solution ~root_time:r.Branch_bound.root_time
      ~root_obj:r.Branch_bound.root_objective ~nodes:r.Branch_bound.nodes
      ~iters:r.Branch_bound.simplex_iterations ~cut_rounds ~cuts_added
      ~best_bound ~heur:r.Branch_bound.heuristic_incumbents ~after_stats
      ~warm_used:r.Branch_bound.warm_seeded
      ~inc_src:r.Branch_bound.incumbent_source ~ws_out
  in
  let empty_solution = Array.make (Problem.num_vars p) 0. in
  if presolve then begin
    match Support.Trace.with_span "presolve" (fun () -> Presolve.run p) with
    | Presolve.Infeasible_detected ->
        finish Infeasible infinity empty_solution ~root_time:0. ~root_obj:nan
          ~nodes:0 ~iters:0 ~cut_rounds:0 ~cuts_added:0 ~best_bound:infinity
          ~heur:0 ~after_stats:(Problem.stats p)
    | Presolve.Reduced (reduced, info) ->
        let after_stats = Problem.stats reduced in
        if Problem.num_vars reduced = 0 then begin
          (* Fully solved by presolve. *)
          let solution = Presolve.postsolve info [||] in
          let objective = Problem.objective_value p solution in
          finish Optimal objective solution ~root_time:0.
            ~root_obj:objective ~nodes:0 ~iters:0 ~cut_rounds:0 ~cuts_added:0
            ~best_bound:objective ~heur:0 ~after_stats
            ~inc_src:"presolve"
        end
        else begin
          let keep_map = info.Presolve.keep_map in
          let n_orig = Array.length keep_map in
          let inverse = Array.make (Problem.num_vars reduced) (-1) in
          Array.iteri
            (fun j j' -> if j' >= 0 then inverse.(j') <- j)
            keep_map;
          branch_and_bound reduced ~after_stats
            ~postsolve_fn:(Presolve.postsolve info)
            ~map_orig_to_sub:(fun j ->
              if j < 0 || j >= n_orig || keep_map.(j) < 0 then None
              else Some keep_map.(j))
            ~sub_to_orig:(fun j' ->
              if j' < 0 || j' >= Array.length inverse || inverse.(j') < 0
              then None
              else Some inverse.(j'))
        end
  end
  else
    branch_and_bound p ~after_stats:(Problem.stats p)
      ~postsolve_fn:(fun s -> s)
      ~map_orig_to_sub:(fun j ->
        if j >= 0 && j < Problem.num_vars p then Some j else None)
      ~sub_to_orig:(fun j -> Some j)

(* Solve the LP relaxation only (used for root-relaxation statistics). *)
let solve_relaxation (p : Problem.t) =
  let solver = Revised.create p in
  match Revised.solve solver with
  | Revised.Optimal -> Some (Revised.objective solver, Revised.primal solver)
  | Revised.Infeasible | Revised.Iteration_limit -> None
