(* High-level MIP entry point: presolve, branch and bound, postsolve.

   This is the interface the register allocator talks to; it reports the
   statistics that Figure 7 of the paper tabulates (model size, root-LP
   and integer solve times). *)

type status = Optimal | Infeasible | Limit

type stats = {
  vars_before : int;
  rows_before : int;
  vars_after : int; (* after presolve *)
  rows_after : int;
  obj_terms : int;
  nonzeros : int;
  root_time : float;
  total_time : float;
  root_objective : float;
  nodes : int;
  simplex_iterations : int;
}

type result = {
  status : status;
  objective : float;
  solution : float array; (* indexed by the original problem's variables *)
  stats : stats;
}

let default_stats =
  {
    vars_before = 0;
    rows_before = 0;
    vars_after = 0;
    rows_after = 0;
    obj_terms = 0;
    nonzeros = 0;
    root_time = 0.;
    total_time = 0.;
    root_objective = nan;
    nodes = 0;
    simplex_iterations = 0;
  }

let solve ?(presolve = true) ?(time_limit = 600.) ?(node_limit = 500_000)
    ?(rel_gap = 1e-4) (p : Problem.t) =
  let t0 = Sys.time () in
  let before = Problem.stats p in
  let finish status objective solution ~root_time ~root_obj ~nodes ~iters
      ~after_stats =
    let total_time = Sys.time () -. t0 in
    {
      status;
      objective;
      solution;
      stats =
        {
          vars_before = before.Problem.n_vars;
          rows_before = before.Problem.n_rows;
          vars_after = after_stats.Problem.n_vars;
          rows_after = after_stats.Problem.n_rows;
          obj_terms = before.Problem.n_obj_terms;
          nonzeros = before.Problem.n_nonzeros;
          root_time;
          total_time;
          root_objective = root_obj;
          nodes;
          simplex_iterations = iters;
        };
    }
  in
  let empty_solution = Array.make (Problem.num_vars p) 0. in
  if presolve then begin
    match Presolve.run p with
    | Presolve.Infeasible_detected ->
        finish Infeasible infinity empty_solution ~root_time:0. ~root_obj:nan
          ~nodes:0 ~iters:0 ~after_stats:(Problem.stats p)
    | Presolve.Reduced (reduced, info) ->
        let after_stats = Problem.stats reduced in
        if Problem.num_vars reduced = 0 then begin
          (* Fully solved by presolve. *)
          let solution = Presolve.postsolve info [||] in
          let objective = Problem.objective_value p solution in
          finish Optimal objective solution ~root_time:0.
            ~root_obj:objective ~nodes:0 ~iters:0 ~after_stats
        end
        else begin
          let r = Branch_bound.solve ~time_limit ~node_limit ~rel_gap reduced in
          let status =
            match r.Branch_bound.status with
            | Branch_bound.Optimal -> Optimal
            | Branch_bound.Infeasible -> Infeasible
            | Branch_bound.Limit -> Limit
          in
          let solution, objective =
            if status = Infeasible then (empty_solution, infinity)
            else begin
              let s = Presolve.postsolve info r.Branch_bound.solution in
              (s, Problem.objective_value p s)
            end
          in
          finish status objective solution ~root_time:r.Branch_bound.root_time
            ~root_obj:r.Branch_bound.root_objective ~nodes:r.Branch_bound.nodes
            ~iters:r.Branch_bound.simplex_iterations ~after_stats
        end
  end
  else begin
    let r = Branch_bound.solve ~time_limit ~node_limit ~rel_gap p in
    let status =
      match r.Branch_bound.status with
      | Branch_bound.Optimal -> Optimal
      | Branch_bound.Infeasible -> Infeasible
      | Branch_bound.Limit -> Limit
    in
    finish status r.Branch_bound.objective r.Branch_bound.solution
      ~root_time:r.Branch_bound.root_time ~root_obj:r.Branch_bound.root_objective
      ~nodes:r.Branch_bound.nodes ~iters:r.Branch_bound.simplex_iterations
      ~after_stats:(Problem.stats p)
  end

(* Solve the LP relaxation only (used for root-relaxation statistics). *)
let solve_relaxation (p : Problem.t) =
  let solver = Revised.create p in
  match Revised.solve solver with
  | Revised.Optimal -> Some (Revised.objective solver, Revised.primal solver)
  | Revised.Infeasible | Revised.Iteration_limit -> None
