(* Sparse LU factorization of a simplex basis, with product-form eta
   updates between refactorizations.

   The revised simplex needs four operations against the basis matrix B
   (whose columns are the sparse constraint columns of the basic
   variables):

     FTRAN:  solve B x = b        (entering column, x_B recomputation)
     BTRAN:  solve B' y = c       (dual values, pivot rows of Binv)
     UPDATE: replace column r of B by a new column a_q
     REFACTORIZE: rebuild the factors from the current basis

   The previous implementation kept a dense m x m explicit inverse:
   O(m^2) memory and per-pivot update, O(m^3) refactorization -- hopeless
   on the thousand-row register-allocation models.  Here B is factored as

     E B = U        (Gaussian elimination, Markowitz-ordered pivoting)

   where E is the product of the recorded elementary row operations
   (stored column-wise per elimination step, [lmat]) and U is the sparse
   upper-triangular matrix of pivot rows (stored row-wise per step,
   [umat], with entries indexed by *elimination step* of their column).
   Slack columns are unit vectors, and the structural columns of the
   allocation models are short, so the greedy singleton-first Markowitz
   order dissolves almost the whole basis with no fill-in; only a small
   "bump" needs real elimination.

   Column replacements are absorbed as product-form etas: replacing
   column r by a_q multiplies B on the right by the eta matrix E_r that
   is the identity except for column r = w, where w = B^-1 a_q (the
   FTRAN of the entering column, which the simplex iteration has already
   computed).  FTRAN applies the eta file oldest-to-newest after the LU
   solve; BTRAN applies it newest-to-oldest before the LU solve.  The
   caller refactorizes periodically to keep the eta file short (the
   classic Forrest-Tomlin trade: cheap O(nnz) updates between
   refactorizations, a sparse refactorization every few dozen pivots). *)

exception Singular

type eta = {
  e_r : int; (* basis position whose column was replaced *)
  e_wr : float; (* w_r, the pivot element of the replacement *)
  e_entries : (int * float) array; (* (i, w_i) for i <> r, |w_i| > drop *)
}

type t = {
  m : int;
  pr : int array; (* elimination step -> pivot row *)
  pc : int array; (* elimination step -> pivot column (basis position) *)
  pivots : float array; (* elimination step -> pivot value *)
  lmat : (int * float) array array; (* step -> (row, multiplier) list *)
  umat : (int * float) array array; (* step -> (later step, value) list *)
  lu_nnz : int;
  etas : eta Support.Vec.t;
  mutable eta_nnz : int;
  ws : float array; (* step-space workspace, length m *)
  ws2 : float array; (* row-space workspace, length m *)
}

let drop_tol = 1e-13
let abs_pivot_tol = 1e-11
let rel_pivot_tol = 0.1 (* threshold pivoting within the chosen column *)

(* [factorize m column] factors the m x m matrix whose [j]-th column is
   the sparse vector [column j] (a (row, value) array).  Raises
   [Singular] when no acceptable pivot remains. *)
let factorize m column =
  (* Active submatrix: per-column hashtables row -> value, plus a
     row -> column-set index and entry counts, all maintained under
     elimination. *)
  let acols =
    Array.init m (fun j ->
        let tbl = Hashtbl.create 8 in
        Array.iter
          (fun (i, v) ->
            if v <> 0. then
              match Hashtbl.find_opt tbl i with
              | Some prev -> Hashtbl.replace tbl i (prev +. v)
              | None -> Hashtbl.replace tbl i v)
          (column j);
        tbl)
  in
  let rowcols = Array.init m (fun _ -> Hashtbl.create 8) in
  Array.iteri
    (fun j tbl -> Hashtbl.iter (fun i _ -> Hashtbl.replace rowcols.(i) j ()) tbl)
    acols;
  let colcnt = Array.map Hashtbl.length acols in
  let rowcnt = Array.map Hashtbl.length rowcols in
  let col_active = Array.make m true in
  (* Columns bucketed by current entry count; stale entries (count since
     changed) are discarded lazily when a bucket is scanned. *)
  let buckets = Array.make (m + 1) [] in
  let push_bucket j =
    let c = colcnt.(j) in
    if c >= 0 && c <= m then buckets.(c) <- j :: buckets.(c)
  in
  for j = 0 to m - 1 do
    push_bucket j
  done;
  (* Best (threshold-acceptable) pivot entry within column [j]:
     (row, value, rowcount), preferring short rows then large values. *)
  let best_in_col j =
    let tbl = acols.(j) in
    let colmax = Hashtbl.fold (fun _ v acc -> Float.max (Float.abs v) acc) tbl 0. in
    if colmax < abs_pivot_tol then None
    else begin
      let thresh = rel_pivot_tol *. colmax in
      let bi = ref (-1) and bv = ref 0. and bc = ref max_int in
      Hashtbl.iter
        (fun i v ->
          let av = Float.abs v in
          if av >= thresh then
            if
              rowcnt.(i) < !bc
              || (rowcnt.(i) = !bc && av > Float.abs !bv)
            then begin
              bi := i;
              bv := v;
              bc := rowcnt.(i)
            end)
        tbl;
      if !bi < 0 then None else Some (!bi, !bv, !bc)
    end
  in
  (* Markowitz pivot selection: scan buckets in increasing column count,
     stop at the first zero-cost candidate or after a handful of
     candidates (partial pricing of pivots, GLPK-style). *)
  let select () =
    let best = ref None in
    let ncand = ref 0 in
    let stop = ref false in
    let cnt = ref 1 in
    while (not !stop) && !cnt <= m do
      let lst = buckets.(!cnt) in
      if lst <> [] then begin
        buckets.(!cnt) <- [];
        let keep = ref [] in
        List.iter
          (fun j ->
            if col_active.(j) && colcnt.(j) = !cnt then begin
              keep := j :: !keep;
              if not !stop then
                match best_in_col j with
                | None -> ()
                | Some (i, v, rc) ->
                    let cost = (!cnt - 1) * (rc - 1) in
                    (match !best with
                    | Some (c0, _, _, _) when c0 <= cost -> ()
                    | _ -> best := Some (cost, j, i, v));
                    incr ncand;
                    if cost = 0 || !ncand >= 4 then stop := true
            end)
          lst;
        buckets.(!cnt) <- !keep
      end;
      if !best <> None then stop := true;
      incr cnt
    done;
    !best
  in
  let pr = Array.make m (-1) in
  let pc = Array.make m (-1) in
  let pivots = Array.make m 0. in
  let lmat = Array.make m [||] in
  let umat_cols = Array.make m [] in
  for k = 0 to m - 1 do
    match select () with
    | None -> raise Singular
    | Some (_cost, j, i, piv) ->
        pr.(k) <- i;
        pc.(k) <- j;
        pivots.(k) <- piv;
        let tbl_j = acols.(j) in
        let mults =
          Hashtbl.fold
            (fun r v acc -> if r = i then acc else (r, v /. piv) :: acc)
            tbl_j []
        in
        lmat.(k) <- Array.of_list mults;
        let urow =
          Hashtbl.fold
            (fun j' () acc ->
              if j' = j then acc
              else
                match Hashtbl.find_opt acols.(j') i with
                | Some u -> (j', u) :: acc
                | None -> acc)
            rowcols.(i) []
        in
        umat_cols.(k) <- urow;
        (* retire the pivot column from the row index *)
        Hashtbl.iter
          (fun r _ ->
            if r <> i then begin
              Hashtbl.remove rowcols.(r) j;
              rowcnt.(r) <- rowcnt.(r) - 1
            end)
          tbl_j;
        col_active.(j) <- false;
        (* eliminate the pivot row from every other active column *)
        List.iter
          (fun (j', u) ->
            let tbl = acols.(j') in
            Hashtbl.remove tbl i;
            colcnt.(j') <- colcnt.(j') - 1;
            List.iter
              (fun (r, mu) ->
                let delta = -.(mu *. u) in
                match Hashtbl.find_opt tbl r with
                | Some old ->
                    let nv = old +. delta in
                    if Float.abs nv <= drop_tol then begin
                      Hashtbl.remove tbl r;
                      colcnt.(j') <- colcnt.(j') - 1;
                      Hashtbl.remove rowcols.(r) j';
                      rowcnt.(r) <- rowcnt.(r) - 1
                    end
                    else Hashtbl.replace tbl r nv
                | None ->
                    if Float.abs delta > drop_tol then begin
                      Hashtbl.replace tbl r delta;
                      colcnt.(j') <- colcnt.(j') + 1;
                      Hashtbl.replace rowcols.(r) j' ();
                      rowcnt.(r) <- rowcnt.(r) + 1
                    end)
              mults;
            push_bucket j')
          urow;
        Hashtbl.reset rowcols.(i);
        Hashtbl.reset tbl_j
  done;
  (* Remap U entries from column ids to elimination steps, so back
     substitution indexes the step-space solution vector directly. *)
  let pos_of_col = Array.make m (-1) in
  for k = 0 to m - 1 do
    pos_of_col.(pc.(k)) <- k
  done;
  let umat =
    Array.map
      (fun l -> Array.of_list (List.map (fun (j', u) -> (pos_of_col.(j'), u)) l))
      umat_cols
  in
  let lu_nnz =
    let s = ref m in
    Array.iter (fun a -> s := !s + Array.length a) lmat;
    Array.iter (fun a -> s := !s + Array.length a) umat;
    !s
  in
  {
    m;
    pr;
    pc;
    pivots;
    lmat;
    umat;
    lu_nnz;
    etas = Support.Vec.create ();
    eta_nnz = 0;
    ws = Array.make m 0.;
    ws2 = Array.make m 0.;
  }

let n_etas t = Support.Vec.length t.etas

(* FTRAN: overwrite the dense row-space vector [b] with x = B^-1 b, in
   basis-position space. *)
let ftran t b =
  let m = t.m in
  (* forward elimination: b := E b *)
  for k = 0 to m - 1 do
    let tv = Array.unsafe_get b t.pr.(k) in
    if tv <> 0. then begin
      let lm = t.lmat.(k) in
      for idx = 0 to Array.length lm - 1 do
        let r, mu = Array.unsafe_get lm idx in
        Array.unsafe_set b r (Array.unsafe_get b r -. (mu *. tv))
      done
    end
  done;
  (* back substitution: U xs = b, xs indexed by elimination step *)
  let xs = t.ws in
  for k = m - 1 downto 0 do
    let s = ref b.(t.pr.(k)) in
    let um = t.umat.(k) in
    for idx = 0 to Array.length um - 1 do
      let l, u = Array.unsafe_get um idx in
      s := !s -. (u *. Array.unsafe_get xs l)
    done;
    xs.(k) <- !s /. t.pivots.(k)
  done;
  (* scatter into basis-position space *)
  for k = 0 to m - 1 do
    b.(t.pc.(k)) <- xs.(k)
  done;
  (* eta file, oldest to newest *)
  Support.Vec.iter
    (fun e ->
      let xr = b.(e.e_r) /. e.e_wr in
      b.(e.e_r) <- xr;
      if xr <> 0. then
        Array.iter
          (fun (i, wi) -> b.(i) <- b.(i) -. (wi *. xr))
          e.e_entries)
    t.etas

(* BTRAN: overwrite the dense basis-position-space vector [c] with the
   row-space solution y of y' B = c'. *)
let btran t c =
  let m = t.m in
  (* eta file, newest to oldest: z_r = (c_r - sum_{i<>r} c_i w_i) / w_r *)
  for idx = Support.Vec.length t.etas - 1 downto 0 do
    let e = Support.Vec.get t.etas idx in
    let s = ref 0. in
    Array.iter (fun (i, wi) -> s := !s +. (c.(i) *. wi)) e.e_entries;
    c.(e.e_r) <- (c.(e.e_r) -. !s) /. e.e_wr
  done;
  (* U' v = c (forward over steps, scatter style) *)
  let accs = t.ws and v = t.ws2 in
  for k = 0 to m - 1 do
    accs.(k) <- c.(t.pc.(k))
  done;
  for k = 0 to m - 1 do
    let vk = accs.(k) /. t.pivots.(k) in
    v.(t.pr.(k)) <- vk;
    if vk <> 0. then begin
      let um = t.umat.(k) in
      for idx = 0 to Array.length um - 1 do
        let l, u = Array.unsafe_get um idx in
        Array.unsafe_set accs l (Array.unsafe_get accs l -. (u *. vk))
      done
    end
  done;
  (* y = v E (apply the recorded row operations transposed, in reverse) *)
  for k = m - 1 downto 0 do
    let lm = t.lmat.(k) in
    if Array.length lm > 0 then begin
      let s = ref 0. in
      for idx = 0 to Array.length lm - 1 do
        let r, mu = Array.unsafe_get lm idx in
        s := !s +. (mu *. Array.unsafe_get v r)
      done;
      v.(t.pr.(k)) <- v.(t.pr.(k)) -. !s
    end
  done;
  Array.blit v 0 c 0 m

(* Record the replacement of basis position [r] by the column whose
   FTRAN image is [w] (dense, position space).  [w] must be the image
   under the *current* factorization, i.e. computed before this call. *)
let update t ~r ~w =
  let wr = w.(r) in
  if Float.abs wr < abs_pivot_tol then raise Singular;
  let entries = ref [] in
  let nnz = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> r && Float.abs w.(i) > drop_tol then begin
      entries := (i, w.(i)) :: !entries;
      incr nnz
    end
  done;
  Support.Vec.push t.etas
    { e_r = r; e_wr = wr; e_entries = Array.of_list !entries };
  t.eta_nnz <- t.eta_nnz + !nnz + 1

(* Heuristic refactorization trigger: the eta file has grown past the
   point where replaying it costs more than a fresh factorization. *)
let should_refactorize ?(max_etas = 100) t =
  n_etas t >= max_etas || t.eta_nnz > 2 * (t.lu_nnz + t.m)

let nnz t = t.lu_nnz + t.eta_nnz
