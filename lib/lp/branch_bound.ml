(* Branch and bound for 0-1 (and general-integer) programs over the
   revised dual simplex, single-threaded or parallel across OCaml 5
   domains.

   A solver state is threaded through a whole search chain; nodes only
   change variable bounds, which keeps the current basis dual feasible,
   so child re-solves are warm-started (the solver only re-examines the
   variables whose bounds actually changed between two nodes).

   Search order is dive-with-best-first-fallback: from each node the
   child with the better pseudocost estimate is explored immediately
   (keeping the warm-start chain intact and finding incumbents fast,
   like the old pure depth-first dive), while the other child is parked
   on a best-bound priority queue.  Whenever the chain dies (pruned or
   infeasible), the open node with the smallest LP bound is popped, so
   the proven global lower bound rises as fast as possible and the
   optimality gap actually closes instead of the search rat-holing in
   one subtree.

   Branching variables are chosen by pseudocosts: per-variable running
   averages of (LP objective degradation) / (distance branched), learned
   from every solved child.  Until a variable has history its estimate
   falls back to the global average, then to its objective coefficient
   (which preserves the old heuristic of branching on real decision
   variables before the symmetric color variables).

   A rounding/diving primal heuristic (see [Heuristic]) runs at the root
   and periodically at nodes so pruning starts before the dive reaches a
   leaf.  All time accounting is wall clock via [Clock].

   Parallel search ([domains] >= 2): the tree is explored in synchronous
   rounds.  Each round the coordinator pops a batch of open nodes off
   the shared best-bound heap, hands them to persistent worker domains
   (each owning a private [Revised] solver, so every node re-solve stays
   a warm restart), waits at a barrier, and merges the workers' parked
   children and incumbents back in a fixed worker order.  In
   deterministic mode seeds are distributed round-robin by worker index
   and the pruning cutoff is frozen per round, so the set of nodes
   expanded -- and therefore the reported node count -- is a pure
   function of the problem, reproducible run to run.  In the default
   (opportunistic) mode workers steal seeds from a shared cursor and
   prune against an atomically published global incumbent, trading
   reproducibility for strictly more pruning. *)

type status = Optimal | Infeasible | Limit

(* Warm-start input: hints from a previous solve of this (or a closely
   related) problem, both keyed by variable index.  [w_hints] is the
   previous integral solution -- seeded into an incumbent at the root by
   the guided dive ([Heuristic.guided_dive]) -- and [w_pc] is the
   previous search's pseudocost history (sum_dn, cnt_dn, sum_up,
   cnt_up), imported so branching is informed from node one instead of
   relearning degradation rates.  Stale entries (index out of range
   after a model change) are ignored. *)
type warm = {
  w_hints : (int * float) list;
  w_pc : (int * (float * int * float * int)) list;
}

let no_warm = { w_hints = []; w_pc = [] }

type result = {
  status : status;
  objective : float;
  solution : float array;
  nodes : int;
  root_objective : float;
  root_time : float; (* seconds to solve the root relaxation *)
  total_time : float;
  simplex_iterations : int;
  best_bound : float; (* proven lower bound on the optimum at exit *)
  heuristic_incumbents : int; (* incumbents found by the diving heuristic *)
  incumbent_source : string;
      (* where the emitted incumbent came from: "seeded" (warm-start
         guided dive), "heuristic" (plain rounding dive), "branch"
         (integral LP leaf), or "none" *)
  warm_seeded : bool; (* the warm-start hints produced an incumbent *)
  pc_out : (int * (float * int * float * int)) list;
      (* final pseudocost table, for the next warm start *)
}

let int_tol = 1e-6

(* An open node: the bound fixings along its path (each variable at most
   once), the parent's LP objective (a valid lower bound), and the
   branching step that created it (for pseudocost learning). *)
type node = {
  nb : float; (* parent LP bound *)
  fixings : (int * float * float) list; (* var, lo, hi *)
  depth : int;
  bvar : int; (* variable branched on to create this node; -1 at root *)
  bfrac : float; (* fractional part of bvar at the parent *)
  bup : bool; (* up child? *)
}

(* Minimal binary min-heap on [nb] (best-bound order). *)
module Heap = struct
  type t = { mutable a : node array; mutable len : int }

  let dummy =
    { nb = 0.; fixings = []; depth = 0; bvar = -1; bfrac = 0.; bup = false }

  let create () = { a = Array.make 64 dummy; len = 0 }
  let size h = h.len

  let push h x =
    if h.len = Array.length h.a then begin
      let a = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a 0 h.len;
      h.a <- a
    end;
    h.a.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && h.a.((!i - 1) / 2).nb > h.a.(!i).nb do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let min_bound h = if h.len = 0 then infinity else h.a.(0).nb

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < h.len && h.a.(l).nb < h.a.(!s).nb then s := l;
        if r < h.len && h.a.(r).nb < h.a.(!s).nb then s := r;
        if !s = !i then continue_ := false
        else begin
          let tmp = h.a.(!s) in
          h.a.(!s) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !s
        end
      done;
      Some top
    end
end

(* ------------------------------------------------------------------ *)
(* Pseudocost state (one instance per search thread)                   *)
(* ------------------------------------------------------------------ *)

type pc = {
  sum_dn : float array;
  cnt_dn : int array;
  sum_up : float array;
  cnt_up : int array;
  mutable g_sum_dn : float;
  mutable g_cnt_dn : int;
  mutable g_sum_up : float;
  mutable g_cnt_up : int;
}

let pc_create n =
  {
    sum_dn = Array.make n 0.;
    cnt_dn = Array.make n 0;
    sum_up = Array.make n 0.;
    cnt_up = Array.make n 0;
    g_sum_dn = 0.;
    g_cnt_dn = 0;
    g_sum_up = 0.;
    g_cnt_up = 0;
  }

let pc_est (p : Problem.t) pc up v =
  let sum, cnt, gsum, gcnt =
    if up then (pc.sum_up.(v), pc.cnt_up.(v), pc.g_sum_up, pc.g_cnt_up)
    else (pc.sum_dn.(v), pc.cnt_dn.(v), pc.g_sum_dn, pc.g_cnt_dn)
  in
  if cnt > 0 then sum /. float_of_int cnt
  else if gcnt > 0 then gsum /. float_of_int gcnt
  else Float.abs (Problem.var_obj p v) +. 1e-6

(* Seed a pseudocost table from a previous search's exported history.
   Imported history also feeds the global fallback averages, so even
   variables without their own record branch better than cold. *)
let pc_import pc n (w : warm) =
  List.iter
    (fun (j, (sd, cd, su, cu)) ->
      if j >= 0 && j < n then begin
        pc.sum_dn.(j) <- sd;
        pc.cnt_dn.(j) <- cd;
        pc.sum_up.(j) <- su;
        pc.cnt_up.(j) <- cu;
        pc.g_sum_dn <- pc.g_sum_dn +. sd;
        pc.g_cnt_dn <- pc.g_cnt_dn + cd;
        pc.g_sum_up <- pc.g_sum_up +. su;
        pc.g_cnt_up <- pc.g_cnt_up + cu
      end)
    w.w_pc

let pc_export n pc =
  let acc = ref [] in
  for j = n - 1 downto 0 do
    if pc.cnt_dn.(j) > 0 || pc.cnt_up.(j) > 0 then
      acc :=
        (j, (pc.sum_dn.(j), pc.cnt_dn.(j), pc.sum_up.(j), pc.cnt_up.(j)))
        :: !acc
  done;
  !acc

(* Element-wise sum of several per-worker tables (parallel search). *)
let pc_merge n (tables : pc array) =
  let m = pc_create n in
  Array.iter
    (fun pc ->
      for j = 0 to n - 1 do
        m.sum_dn.(j) <- m.sum_dn.(j) +. pc.sum_dn.(j);
        m.cnt_dn.(j) <- m.cnt_dn.(j) + pc.cnt_dn.(j);
        m.sum_up.(j) <- m.sum_up.(j) +. pc.sum_up.(j);
        m.cnt_up.(j) <- m.cnt_up.(j) + pc.cnt_up.(j)
      done)
    tables;
  m

let hints_of_warm n (w : warm) =
  if w.w_hints = [] then None
  else begin
    let h = Array.make n nan in
    let any = ref false in
    List.iter
      (fun (j, v) ->
        if j >= 0 && j < n then begin
          h.(j) <- v;
          any := true
        end)
      w.w_hints;
    if !any then Some h else None
  end

let pc_learn pc (nd : node) obj =
  if nd.bvar >= 0 then begin
    let gain = Float.max 0. (obj -. nd.nb) in
    let dist = if nd.bup then 1. -. nd.bfrac else nd.bfrac in
    let rate = gain /. Float.max dist 1e-6 in
    if nd.bup then begin
      pc.sum_up.(nd.bvar) <- pc.sum_up.(nd.bvar) +. rate;
      pc.cnt_up.(nd.bvar) <- pc.cnt_up.(nd.bvar) + 1;
      pc.g_sum_up <- pc.g_sum_up +. rate;
      pc.g_cnt_up <- pc.g_cnt_up + 1
    end
    else begin
      pc.sum_dn.(nd.bvar) <- pc.sum_dn.(nd.bvar) +. rate;
      pc.cnt_dn.(nd.bvar) <- pc.cnt_dn.(nd.bvar) + 1;
      pc.g_sum_dn <- pc.g_sum_dn +. rate;
      pc.g_cnt_dn <- pc.g_cnt_dn + 1
    end
  end

(* Pseudocost product-score branching variable, or -1 if integral. *)
let select_branch (p : Problem.t) pc n x =
  let best = ref (-1) in
  let best_score = ref neg_infinity in
  for j = 0 to n - 1 do
    if Problem.var_integer p j then begin
      let f = x.(j) -. floor x.(j) in
      if f > int_tol && f < 1. -. int_tol then begin
        let dn = pc_est p pc false j *. f in
        let up = pc_est p pc true j *. (1. -. f) in
        let score = Float.max dn 1e-8 *. Float.max up 1e-8 in
        if score > !best_score then begin
          best := j;
          best_score := score
        end
      end
    end
  done;
  !best

(* ------------------------------------------------------------------ *)
(* Incumbent publication (shared across worker domains)                *)
(* ------------------------------------------------------------------ *)

type incumbent = { i_obj : float; i_x : float array }

(* Strictly-better-only compare-and-set loop: under any interleaving of
   concurrent publications the stored objective never regresses, and the
   final value is the minimum of everything published. *)
let publish_incumbent (best : incumbent option Atomic.t) ~obj ~x =
  let rec go () =
    let cur = Atomic.get best in
    let cur_obj = match cur with None -> infinity | Some i -> i.i_obj in
    if obj < cur_obj then
      if Atomic.compare_and_set best cur (Some { i_obj = obj; i_x = x }) then
        true
      else go ()
    else false
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Sequential search                                                   *)
(* ------------------------------------------------------------------ *)

let m_nodes = Support.Metrics.counter "lp.bb.nodes"
let m_incumbents = Support.Metrics.counter "lp.bb.incumbents"
let m_heur = Support.Metrics.counter "lp.bb.heuristic_incumbents"

let solve_sequential ~time_limit ~node_limit ~rel_gap ~use_heuristic
    ~heur_period ~warm (p : Problem.t) =
  let t0 = Clock.now () in
  let n = Problem.num_vars p in
  let solver = Revised.create p in
  let orig_lo = Array.init n (Problem.var_lo p) in
  let orig_hi = Array.init n (Problem.var_hi p) in
  let pc = pc_create n in
  pc_import pc n warm;
  let hints = hints_of_warm n warm in
  let warm_seeded = ref false in
  let incumbent_src = ref "none" in
  (* Bound activation: undo the previous node's fixings, apply the new
     ones.  A variable appearing in both with the same bounds produces no
     net change, so the solver's incremental restart does no work for the
     shared prefix of the two paths. *)
  let applied = ref [] in
  let activate fixings =
    List.iter
      (fun (v, _, _) ->
        Revised.set_bounds solver v ~lo:orig_lo.(v) ~hi:orig_hi.(v))
      !applied;
    List.iter (fun (v, l, h) -> Revised.set_bounds solver v ~lo:l ~hi:h)
      fixings;
    applied := fixings
  in
  let nodes = ref 0 in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let heur_found = ref 0 in
  let limit_hit = ref false in
  let root_objective = ref nan in
  let root_time = ref 0. in
  (* The gap is taken relative to max(1, |incumbent|): the regalloc
     objectives carry 1e-7-scale symmetry-breaking perturbations, so a
     near-zero objective would otherwise keep the search alive chasing
     perturbation noise the gap can never close.  rel_gap = 0 remains an
     exact proof. *)
  let cutoff () =
    if !incumbent = None then infinity
    else
      !incumbent_obj
      -. (rel_gap *. Float.max 1. (Float.abs !incumbent_obj))
      -. 1e-9
  in
  let heap = Heap.create () in
  let next = ref (Some
    { nb = neg_infinity; fixings = []; depth = 0; bvar = -1; bfrac = 0.;
      bup = false }) in
  let lb_at_exit = ref neg_infinity in
  let running = ref true in
  while !running do
    let nd =
      match !next with
      | Some nd ->
          next := None;
          Some nd
      | None -> Heap.pop heap
    in
    match nd with
    | None -> running := false (* tree exhausted: proof complete *)
    | Some nd ->
        if nd.nb >= cutoff () then () (* prune unexplored *)
        else if Clock.since t0 > time_limit || !nodes >= node_limit then begin
          limit_hit := true;
          running := false;
          lb_at_exit := Float.min nd.nb (Heap.min_bound heap)
        end
        else begin
          activate nd.fixings;
          incr nodes;
          Support.Metrics.incr m_nodes;
          if Support.Trace.is_enabled () && !nodes land 255 = 0 then
            Support.Trace.counter "bb"
              [
                ("nodes", float_of_int !nodes);
                ("open", float_of_int (Heap.size heap));
                ("incumbent", !incumbent_obj);
              ];
          let lp_result =
            (* the root relaxation is a pipeline stage of its own in the
               paper's Figure 7; give it a dedicated span *)
            if nd.depth = 0 then
              Support.Trace.with_span "root-lp" (fun () ->
                  Revised.solve solver)
            else Revised.solve solver
          in
          match lp_result with
          | Revised.Iteration_limit ->
              limit_hit := true;
              running := false;
              lb_at_exit := Float.min nd.nb (Heap.min_bound heap)
          | Revised.Infeasible -> ()
          | Revised.Optimal ->
              let obj = Revised.objective solver in
              if nd.depth = 0 then begin
                root_objective := obj;
                root_time := Clock.since t0
              end;
              pc_learn pc nd obj;
              if obj < cutoff () then begin
                let x = Revised.primal solver in
                match select_branch p pc n x with
                | -1 ->
                    incumbent := Some (Array.copy x);
                    incumbent_obj := obj;
                    incumbent_src := "branch";
                    Support.Metrics.incr m_incumbents;
                    if Support.Trace.is_enabled () then
                      Support.Trace.instant "incumbent"
                        ~args:
                          [
                            ("objective", Support.Trace.Float obj);
                            ("node", Support.Trace.Int !nodes);
                          ]
                | v ->
                    (* Warm-start seeding, once, at the root: fix the
                       previous solution's values and let the guided
                       dive repair the remainder.  An incumbent before
                       the first branch is what collapses the tree. *)
                    (match hints with
                    | Some h when nd.depth = 0 -> (
                        match
                          Heuristic.guided_dive ~cutoff:(cutoff ())
                            ~deadline:(t0 +. time_limit) ~hints:h solver p
                        with
                        | Some (hobj, hx) when hobj < !incumbent_obj ->
                            incumbent := Some hx;
                            incumbent_obj := hobj;
                            incumbent_src := "seeded";
                            warm_seeded := true;
                            Support.Metrics.incr m_incumbents;
                            if Support.Trace.is_enabled () then
                              Support.Trace.instant "seeded-incumbent"
                                ~args:
                                  [ ("objective", Support.Trace.Float hobj) ]
                        | _ -> ())
                    | _ -> ());
                    (* Periodic primal heuristic (always at the root). *)
                    if
                      use_heuristic
                      && (nd.depth = 0 || !nodes mod heur_period = 0)
                    then begin
                      match
                        Heuristic.dive ~cutoff:(cutoff ())
                          ~deadline:(t0 +. time_limit) solver p
                      with
                      | Some (hobj, hx) when hobj < !incumbent_obj ->
                          incumbent := Some hx;
                          incumbent_obj := hobj;
                          incumbent_src := "heuristic";
                          incr heur_found;
                          Support.Metrics.incr m_incumbents;
                          Support.Metrics.incr m_heur;
                          if Support.Trace.is_enabled () then
                            Support.Trace.instant "heuristic-incumbent"
                              ~args:
                                [
                                  ("objective", Support.Trace.Float hobj);
                                  ("node", Support.Trace.Int !nodes);
                                ]
                      | _ -> ()
                    end;
                    let f = x.(v) -. floor x.(v) in
                    let cl, ch = Revised.bounds solver v in
                    let base =
                      List.filter (fun (w, _, _) -> w <> v) nd.fixings
                    in
                    let mk_child l h up =
                      if l > h +. 1e-9 then None
                      else
                        Some
                          {
                            nb = obj;
                            fixings = (v, l, h) :: base;
                            depth = nd.depth + 1;
                            bvar = v;
                            bfrac = f;
                            bup = up;
                          }
                    in
                    let down = mk_child cl (floor x.(v)) false in
                    let up = mk_child (ceil x.(v)) ch true in
                    let est_down = obj +. (pc_est p pc false v *. f) in
                    let est_up = obj +. (pc_est p pc true v *. (1. -. f)) in
                    let dive_first, park =
                      if est_down <= est_up then (down, up) else (up, down)
                    in
                    (match park with
                    | Some nd' -> Heap.push heap nd'
                    | None -> ());
                    next := dive_first
              end
        end
  done;
  let total_time = Clock.since t0 in
  let simplex_iterations = Revised.iterations solver in
  let pc_out = pc_export n pc in
  match !incumbent with
  | Some x ->
      let status = if !limit_hit then Limit else Optimal in
      let best_bound =
        if !limit_hit then Float.min !lb_at_exit !incumbent_obj
        else !incumbent_obj
      in
      {
        status;
        objective = !incumbent_obj;
        solution = x;
        nodes = !nodes;
        root_objective = !root_objective;
        root_time = !root_time;
        total_time;
        simplex_iterations;
        best_bound;
        heuristic_incumbents = !heur_found;
        incumbent_source = !incumbent_src;
        warm_seeded = !warm_seeded;
        pc_out;
      }
  | None ->
      {
        status = (if !limit_hit then Limit else Infeasible);
        objective = infinity;
        solution = Array.make n 0.;
        nodes = !nodes;
        root_objective = !root_objective;
        root_time = !root_time;
        total_time;
        simplex_iterations;
        best_bound = (if !limit_hit then !lb_at_exit else infinity);
        heuristic_incumbents = !heur_found;
        incumbent_source = "none";
        warm_seeded = !warm_seeded;
        pc_out;
      }

(* ------------------------------------------------------------------ *)
(* Parallel search across domains                                      *)
(* ------------------------------------------------------------------ *)

(* Batch geometry: each round the coordinator hands out up to
   [par_seeds_per_worker] seeds per worker, and each seed is dived for
   at most [par_chain_cap] nodes before the remainder of the chain is
   parked back on the shared heap.  Large enough to amortize the round
   barrier over hundreds of LP solves, small enough that cutoff
   improvements propagate between workers every few hundred nodes. *)
let par_seeds_per_worker = 4
let par_chain_cap = 64

(* What one worker hands back at the round barrier.  Written by exactly
   one worker between barrier crossings; read by the coordinator only
   after the barrier, so no field needs finer-grained synchronization. *)
type wout = {
  mutable o_children : node list; (* parked nodes, newest first *)
  mutable o_incumbent : (float * float array * string) option;
      (* round's best, with its source tag *)
  mutable o_nodes : int;
  mutable o_heur : int;
  mutable o_iters : int; (* cumulative solver iterations *)
  mutable o_limit : bool; (* simplex iteration limit / deadline hit *)
}

let solve_parallel ~domains ~deterministic ~time_limit ~node_limit ~rel_gap
    ~use_heuristic ~heur_period ~warm (p : Problem.t) =
  let t0 = Clock.now () in
  let n = Problem.num_vars p in
  let orig_lo = Array.init n (Problem.var_lo p) in
  let orig_hi = Array.init n (Problem.var_hi p) in
  let gap_margin obj = (rel_gap *. Float.max 1. (Float.abs obj)) +. 1e-9 in
  let heur_deadline = if deterministic then infinity else t0 +. time_limit in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let incumbent_src = ref "none" in
  let warm_seeded = ref false in
  let heur_found = ref 0 in
  let hints = hints_of_warm n warm in
  (* per-worker pseudocost tables, created here so the final merged
     table can be exported after the workers join *)
  let worker_pcs =
    Array.init domains (fun _ ->
        let pc = pc_create n in
        pc_import pc n warm;
        pc)
  in
  let cutoff () =
    if !incumbent = None then infinity else !incumbent_obj -. gap_margin !incumbent_obj
  in
  let root_pc = pc_create n in
  pc_import root_pc n warm;
  let finish status ~nodes ~iters ~root_objective ~root_time ~best_bound =
    let objective = match !incumbent with Some _ -> !incumbent_obj | None -> infinity in
    {
      status;
      objective;
      solution =
        (match !incumbent with Some x -> x | None -> Array.make n 0.);
      nodes;
      root_objective;
      root_time;
      total_time = Clock.since t0;
      simplex_iterations = iters;
      best_bound;
      heuristic_incumbents = !heur_found;
      incumbent_source =
        (match !incumbent with Some _ -> !incumbent_src | None -> "none");
      warm_seeded = !warm_seeded;
      pc_out =
        pc_export n (pc_merge n (Array.append [| root_pc |] worker_pcs));
    }
  in
  (* ---- root relaxation on the coordinator ---- *)
  let root_solver = Revised.create p in
  Support.Metrics.incr m_nodes;
  match Support.Trace.with_span "root-lp" (fun () -> Revised.solve root_solver) with
  | Revised.Iteration_limit ->
      finish Limit ~nodes:1 ~iters:(Revised.iterations root_solver)
        ~root_objective:nan ~root_time:(Clock.since t0)
        ~best_bound:neg_infinity
  | Revised.Infeasible ->
      finish Infeasible ~nodes:1 ~iters:(Revised.iterations root_solver)
        ~root_objective:nan ~root_time:(Clock.since t0) ~best_bound:infinity
  | Revised.Optimal ->
      let root_objective = Revised.objective root_solver in
      let root_time = Clock.since t0 in
      let x = Revised.primal root_solver in
      let heap = Heap.create () in
      (match select_branch p root_pc n x with
      | -1 ->
          incumbent := Some (Array.copy x);
          incumbent_obj := root_objective;
          incumbent_src := "branch";
          Support.Metrics.incr m_incumbents
      | v ->
          (match hints with
          | Some h -> (
              match
                Heuristic.guided_dive ~cutoff:infinity
                  ~deadline:heur_deadline ~hints:h root_solver p
              with
              | Some (hobj, hx) when hobj < !incumbent_obj ->
                  incumbent := Some hx;
                  incumbent_obj := hobj;
                  incumbent_src := "seeded";
                  warm_seeded := true;
                  Support.Metrics.incr m_incumbents
              | _ -> ())
          | None -> ());
          (if use_heuristic then
             match
               Heuristic.dive ~cutoff:!incumbent_obj
                 ~deadline:heur_deadline root_solver p
             with
             | Some (hobj, hx) ->
                 incumbent := Some hx;
                 incumbent_obj := hobj;
                 incumbent_src := "heuristic";
                 incr heur_found;
                 Support.Metrics.incr m_incumbents;
                 Support.Metrics.incr m_heur
             | None -> ());
          let f = x.(v) -. floor x.(v) in
          let mk l h up =
            if l > h +. 1e-9 then ()
            else
              Heap.push heap
                {
                  nb = root_objective;
                  fixings = [ (v, l, h) ];
                  depth = 1;
                  bvar = v;
                  bfrac = f;
                  bup = up;
                }
          in
          let est_down = pc_est p root_pc false v *. f in
          let est_up = pc_est p root_pc true v *. (1. -. f) in
          if est_down <= est_up then begin
            mk orig_lo.(v) (floor x.(v)) false;
            mk (ceil x.(v)) orig_hi.(v) true
          end
          else begin
            mk (ceil x.(v)) orig_hi.(v) true;
            mk orig_lo.(v) (floor x.(v)) false
          end);
      if Heap.size heap = 0 then
        (* root was integral (or both children empty): done *)
        finish
          (if !incumbent = None then Infeasible else Optimal)
          ~nodes:1 ~iters:(Revised.iterations root_solver) ~root_objective
          ~root_time
          ~best_bound:
            (if !incumbent = None then infinity else !incumbent_obj)
      else begin
        (* ---- round machinery ---- *)
        let mu = Mutex.create () in
        let cv = Condition.create () in
        let round = ref 0 in
        let stop = ref false in
        let seeds = ref [||] in
        let round_cutoff = ref infinity in
        let done_count = ref 0 in
        let steal = Atomic.make 0 in
        let shared_best : incumbent option Atomic.t = Atomic.make None in
        let outs =
          Array.init domains (fun _ ->
              {
                o_children = [];
                o_incumbent = None;
                o_nodes = 0;
                o_heur = 0;
                o_iters = 0;
                o_limit = false;
              })
        in
        let worker d =
          let solver = Revised.create p in
          let pc = worker_pcs.(d) in
          let applied = ref [] in
          let activate fixings =
            List.iter
              (fun (v, _, _) ->
                Revised.set_bounds solver v ~lo:orig_lo.(v) ~hi:orig_hi.(v))
              !applied;
            List.iter
              (fun (v, l, h) -> Revised.set_bounds solver v ~lo:l ~hi:h)
              fixings;
            applied := fixings
          in
          let out = outs.(d) in
          let my_nodes = ref 0 in
          let local_cutoff = ref infinity in
          let record_incumbent ?(heur = false) obj x =
            let src = if heur then "heuristic" else "branch" in
            (match out.o_incumbent with
            | Some (o, _, _) when o <= obj -> ()
            | _ -> out.o_incumbent <- Some (obj, x, src));
            local_cutoff := Float.min !local_cutoff (obj -. gap_margin obj);
            if not deterministic then
              ignore (publish_incumbent shared_best ~obj ~x);
            Support.Metrics.incr m_incumbents;
            if heur then begin
              out.o_heur <- out.o_heur + 1;
              Support.Metrics.incr m_heur
            end
          in
          let current_cutoff () =
            if deterministic then !local_cutoff
            else
              match Atomic.get shared_best with
              | Some i ->
                  Float.min !local_cutoff (i.i_obj -. gap_margin i.i_obj)
              | None -> !local_cutoff
          in
          let process_chain seed =
            let next = ref (Some seed) in
            let chain = ref 0 in
            while !next <> None do
              let nd = match !next with Some nd -> nd | None -> assert false in
              next := None;
              let cut = current_cutoff () in
              if nd.nb >= cut then () (* pruned *)
              else if !chain >= par_chain_cap then
                out.o_children <- nd :: out.o_children
              else if
                (not deterministic) && Clock.since t0 > time_limit
              then begin
                out.o_limit <- true;
                out.o_children <- nd :: out.o_children
              end
              else begin
                incr chain;
                activate nd.fixings;
                incr my_nodes;
                out.o_nodes <- out.o_nodes + 1;
                Support.Metrics.incr m_nodes;
                if Support.Trace.is_enabled () && !my_nodes land 255 = 0 then
                  Support.Trace.counter ~tid:(d + 1) "bb"
                    [ ("nodes", float_of_int !my_nodes) ];
                match Revised.solve solver with
                | Revised.Iteration_limit ->
                    out.o_limit <- true;
                    (* keep the node: its bound still counts at exit *)
                    out.o_children <- nd :: out.o_children
                | Revised.Infeasible -> ()
                | Revised.Optimal ->
                    let obj = Revised.objective solver in
                    pc_learn pc nd obj;
                    if obj < cut then begin
                      let x = Revised.primal solver in
                      match select_branch p pc n x with
                      | -1 -> record_incumbent obj (Array.copy x)
                      | v ->
                          if use_heuristic && !my_nodes mod heur_period = 0
                          then begin
                            match
                              Heuristic.dive ~cutoff:cut
                                ~deadline:heur_deadline solver p
                            with
                            | Some (hobj, hx) -> record_incumbent ~heur:true hobj hx
                            | None -> ()
                          end;
                          let f = x.(v) -. floor x.(v) in
                          let cl, ch = Revised.bounds solver v in
                          let base =
                            List.filter (fun (w, _, _) -> w <> v) nd.fixings
                          in
                          let mk_child l h up =
                            if l > h +. 1e-9 then None
                            else
                              Some
                                {
                                  nb = obj;
                                  fixings = (v, l, h) :: base;
                                  depth = nd.depth + 1;
                                  bvar = v;
                                  bfrac = f;
                                  bup = up;
                                }
                          in
                          let down = mk_child cl (floor x.(v)) false in
                          let up = mk_child (ceil x.(v)) ch true in
                          let est_down = obj +. (pc_est p pc false v *. f) in
                          let est_up =
                            obj +. (pc_est p pc true v *. (1. -. f))
                          in
                          let dive_first, park =
                            if est_down <= est_up then (down, up)
                            else (up, down)
                          in
                          (match park with
                          | Some nd' -> out.o_children <- nd' :: out.o_children
                          | None -> ());
                          next := dive_first
                    end
              end
            done
          in
          let last_round = ref 0 in
          let running = ref true in
          while !running do
            Mutex.lock mu;
            while (not !stop) && !round = !last_round do
              Condition.wait cv mu
            done;
            if !stop then begin
              Mutex.unlock mu;
              running := false
            end
            else begin
              last_round := !round;
              let sds = !seeds in
              let cut0 = !round_cutoff in
              Mutex.unlock mu;
              out.o_children <- [];
              out.o_incumbent <- None;
              out.o_nodes <- 0;
              out.o_heur <- 0;
              out.o_limit <- false;
              local_cutoff := cut0;
              let len = Array.length sds in
              if deterministic then begin
                let i = ref d in
                while !i < len do
                  process_chain sds.(!i);
                  i := !i + domains
                done
              end
              else begin
                let continue_ = ref true in
                while !continue_ do
                  let i = Atomic.fetch_and_add steal 1 in
                  if i < len then process_chain sds.(i) else continue_ := false
                done
              end;
              out.o_iters <- Revised.iterations solver;
              Mutex.lock mu;
              incr done_count;
              Condition.broadcast cv;
              Mutex.unlock mu
            end
          done
        in
        let doms = Array.init domains (fun d -> Domain.spawn (fun () -> worker d)) in
        let total_nodes = ref 1 (* root *) in
        let limit_hit = ref false in
        let lb_at_exit = ref neg_infinity in
        let running = ref true in
        (try
           while !running do
             let cut = cutoff () in
             (* collect the round's seeds, pruning stale nodes *)
             let buf = ref [] in
             let count = ref 0 in
             let batch = domains * par_seeds_per_worker in
             let collecting = ref true in
             while !collecting && !count < batch do
               match Heap.pop heap with
               | None -> collecting := false
               | Some nd ->
                   if nd.nb < cut then begin
                     buf := nd :: !buf;
                     incr count
                   end
             done;
             if !count = 0 then running := false (* tree exhausted *)
             else if
               Clock.since t0 > time_limit || !total_nodes >= node_limit
             then begin
               limit_hit := true;
               running := false;
               (* retain the seeds' bounds for the exit bound *)
               List.iter (Heap.push heap) !buf
             end
             else begin
               Mutex.lock mu;
               seeds := Array.of_list (List.rev !buf);
               Atomic.set steal 0;
               round_cutoff := cut;
               done_count := 0;
               incr round;
               Condition.broadcast cv;
               while !done_count < domains do
                 Condition.wait cv mu
               done;
               Mutex.unlock mu;
               (* merge in fixed worker order (determinism) *)
               Array.iter
                 (fun out ->
                   (match out.o_incumbent with
                   | Some (obj, x, src) when obj < !incumbent_obj ->
                       incumbent := Some x;
                       incumbent_obj := obj;
                       incumbent_src := src
                   | _ -> ());
                   List.iter (Heap.push heap) (List.rev out.o_children);
                   total_nodes := !total_nodes + out.o_nodes;
                   heur_found := !heur_found + out.o_heur;
                   if out.o_limit then begin
                     limit_hit := true;
                     running := false
                   end)
                 outs
             end
           done
         with e ->
           (* never leave worker domains blocked on the round condition *)
           Mutex.lock mu;
           stop := true;
           Condition.broadcast cv;
           Mutex.unlock mu;
           Array.iter Domain.join doms;
           raise e);
        if !limit_hit then lb_at_exit := Heap.min_bound heap;
        Mutex.lock mu;
        stop := true;
        Condition.broadcast cv;
        Mutex.unlock mu;
        Array.iter Domain.join doms;
        let iters =
          Array.fold_left
            (fun acc out -> acc + out.o_iters)
            (Revised.iterations root_solver)
            outs
        in
        match !incumbent with
        | Some _ ->
            let status = if !limit_hit then Limit else Optimal in
            let best_bound =
              if !limit_hit then Float.min !lb_at_exit !incumbent_obj
              else !incumbent_obj
            in
            finish status ~nodes:!total_nodes ~iters ~root_objective
              ~root_time ~best_bound
        | None ->
            finish
              (if !limit_hit then Limit else Infeasible)
              ~nodes:!total_nodes ~iters ~root_objective ~root_time
              ~best_bound:(if !limit_hit then !lb_at_exit else infinity)
      end

let solve ?(time_limit = 600.) ?(node_limit = 500_000) ?(rel_gap = 1e-4)
    ?(use_heuristic = true) ?(heur_period = 128) ?(domains = 1)
    ?(deterministic = false) ?(warm = no_warm) (p : Problem.t) =
  if domains <= 1 then
    solve_sequential ~time_limit ~node_limit ~rel_gap ~use_heuristic
      ~heur_period ~warm p
  else
    solve_parallel ~domains ~deterministic ~time_limit ~node_limit ~rel_gap
      ~use_heuristic ~heur_period ~warm p
