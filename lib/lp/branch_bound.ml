(* Branch and bound for 0-1 (and general-integer) programs over the
   revised dual simplex.

   A single solver state is threaded through the whole search; nodes only
   change variable bounds, which keeps the current basis dual feasible,
   so child re-solves are warm-started (the solver only re-examines the
   variables whose bounds actually changed between two nodes).

   Search order is dive-with-best-first-fallback: from each node the
   child with the better pseudocost estimate is explored immediately
   (keeping the warm-start chain intact and finding incumbents fast,
   like the old pure depth-first dive), while the other child is parked
   on a best-bound priority queue.  Whenever the chain dies (pruned or
   infeasible), the open node with the smallest LP bound is popped, so
   the proven global lower bound rises as fast as possible and the
   optimality gap actually closes instead of the search rat-holing in
   one subtree.

   Branching variables are chosen by pseudocosts: per-variable running
   averages of (LP objective degradation) / (distance branched), learned
   from every solved child.  Until a variable has history its estimate
   falls back to the global average, then to its objective coefficient
   (which preserves the old heuristic of branching on real decision
   variables before the symmetric color variables).

   A rounding/diving primal heuristic (see [Heuristic]) runs at the root
   and periodically at nodes so pruning starts before the dive reaches a
   leaf.  All time accounting is wall clock via [Clock]. *)

type status = Optimal | Infeasible | Limit

type result = {
  status : status;
  objective : float;
  solution : float array;
  nodes : int;
  root_objective : float;
  root_time : float; (* seconds to solve the root relaxation *)
  total_time : float;
  simplex_iterations : int;
  best_bound : float; (* proven lower bound on the optimum at exit *)
  heuristic_incumbents : int; (* incumbents found by the diving heuristic *)
}

let int_tol = 1e-6

(* An open node: the bound fixings along its path (each variable at most
   once), the parent's LP objective (a valid lower bound), and the
   branching step that created it (for pseudocost learning). *)
type node = {
  nb : float; (* parent LP bound *)
  fixings : (int * float * float) list; (* var, lo, hi *)
  depth : int;
  bvar : int; (* variable branched on to create this node; -1 at root *)
  bfrac : float; (* fractional part of bvar at the parent *)
  bup : bool; (* up child? *)
}

(* Minimal binary min-heap on [nb] (best-bound order). *)
module Heap = struct
  type t = { mutable a : node array; mutable len : int }

  let dummy =
    { nb = 0.; fixings = []; depth = 0; bvar = -1; bfrac = 0.; bup = false }

  let create () = { a = Array.make 64 dummy; len = 0 }
  let size h = h.len

  let push h x =
    if h.len = Array.length h.a then begin
      let a = Array.make (2 * h.len) dummy in
      Array.blit h.a 0 a 0 h.len;
      h.a <- a
    end;
    h.a.(h.len) <- x;
    h.len <- h.len + 1;
    let i = ref (h.len - 1) in
    while !i > 0 && h.a.((!i - 1) / 2).nb > h.a.(!i).nb do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let min_bound h = if h.len = 0 then infinity else h.a.(0).nb

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.a.(0) in
      h.len <- h.len - 1;
      h.a.(0) <- h.a.(h.len);
      h.a.(h.len) <- dummy;
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let s = ref !i in
        if l < h.len && h.a.(l).nb < h.a.(!s).nb then s := l;
        if r < h.len && h.a.(r).nb < h.a.(!s).nb then s := r;
        if !s = !i then continue_ := false
        else begin
          let tmp = h.a.(!s) in
          h.a.(!s) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !s
        end
      done;
      Some top
    end
end

let solve ?(time_limit = 600.) ?(node_limit = 500_000) ?(rel_gap = 1e-4)
    ?(use_heuristic = true) ?(heur_period = 128) (p : Problem.t) =
  let t0 = Clock.now () in
  (* Observability: resolved once per solve, bumped per node (a field
     store, so the search loop pays nothing measurable). *)
  let m_nodes = Support.Metrics.counter "lp.bb.nodes" in
  let m_incumbents = Support.Metrics.counter "lp.bb.incumbents" in
  let m_heur = Support.Metrics.counter "lp.bb.heuristic_incumbents" in
  let n = Problem.num_vars p in
  let solver = Revised.create p in
  let orig_lo = Array.init n (Problem.var_lo p) in
  let orig_hi = Array.init n (Problem.var_hi p) in
  (* pseudocost state *)
  let pc_sum_dn = Array.make n 0. and pc_cnt_dn = Array.make n 0 in
  let pc_sum_up = Array.make n 0. and pc_cnt_up = Array.make n 0 in
  let g_sum_dn = ref 0. and g_cnt_dn = ref 0 in
  let g_sum_up = ref 0. and g_cnt_up = ref 0 in
  let pc_est up v =
    let sum, cnt, gsum, gcnt =
      if up then (pc_sum_up.(v), pc_cnt_up.(v), !g_sum_up, !g_cnt_up)
      else (pc_sum_dn.(v), pc_cnt_dn.(v), !g_sum_dn, !g_cnt_dn)
    in
    if cnt > 0 then sum /. float_of_int cnt
    else if gcnt > 0 then gsum /. float_of_int gcnt
    else Float.abs (Problem.var_obj p v) +. 1e-6
  in
  let pc_learn (nd : node) obj =
    if nd.bvar >= 0 then begin
      let gain = Float.max 0. (obj -. nd.nb) in
      let dist = if nd.bup then 1. -. nd.bfrac else nd.bfrac in
      let rate = gain /. Float.max dist 1e-6 in
      if nd.bup then begin
        pc_sum_up.(nd.bvar) <- pc_sum_up.(nd.bvar) +. rate;
        pc_cnt_up.(nd.bvar) <- pc_cnt_up.(nd.bvar) + 1;
        g_sum_up := !g_sum_up +. rate;
        incr g_cnt_up
      end
      else begin
        pc_sum_dn.(nd.bvar) <- pc_sum_dn.(nd.bvar) +. rate;
        pc_cnt_dn.(nd.bvar) <- pc_cnt_dn.(nd.bvar) + 1;
        g_sum_dn := !g_sum_dn +. rate;
        incr g_cnt_dn
      end
    end
  in
  (* Pseudocost product-score branching variable, or -1 if integral. *)
  let select_branch x =
    let best = ref (-1) in
    let best_score = ref neg_infinity in
    for j = 0 to n - 1 do
      if Problem.var_integer p j then begin
        let f = x.(j) -. floor x.(j) in
        if f > int_tol && f < 1. -. int_tol then begin
          let dn = pc_est false j *. f in
          let up = pc_est true j *. (1. -. f) in
          let score = Float.max dn 1e-8 *. Float.max up 1e-8 in
          if score > !best_score then begin
            best := j;
            best_score := score
          end
        end
      end
    done;
    !best
  in
  (* Bound activation: undo the previous node's fixings, apply the new
     ones.  A variable appearing in both with the same bounds produces no
     net change, so the solver's incremental restart does no work for the
     shared prefix of the two paths. *)
  let applied = ref [] in
  let activate fixings =
    List.iter
      (fun (v, _, _) ->
        Revised.set_bounds solver v ~lo:orig_lo.(v) ~hi:orig_hi.(v))
      !applied;
    List.iter (fun (v, l, h) -> Revised.set_bounds solver v ~lo:l ~hi:h)
      fixings;
    applied := fixings
  in
  let nodes = ref 0 in
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let heur_found = ref 0 in
  let limit_hit = ref false in
  let root_objective = ref nan in
  let root_time = ref 0. in
  (* The gap is taken relative to max(1, |incumbent|): the regalloc
     objectives carry 1e-7-scale symmetry-breaking perturbations, so a
     near-zero objective would otherwise keep the search alive chasing
     perturbation noise the gap can never close.  rel_gap = 0 remains an
     exact proof. *)
  let cutoff () =
    if !incumbent = None then infinity
    else
      !incumbent_obj
      -. (rel_gap *. Float.max 1. (Float.abs !incumbent_obj))
      -. 1e-9
  in
  let heap = Heap.create () in
  let next = ref (Some
    { nb = neg_infinity; fixings = []; depth = 0; bvar = -1; bfrac = 0.;
      bup = false }) in
  let lb_at_exit = ref neg_infinity in
  let running = ref true in
  while !running do
    let nd =
      match !next with
      | Some nd ->
          next := None;
          Some nd
      | None -> Heap.pop heap
    in
    match nd with
    | None -> running := false (* tree exhausted: proof complete *)
    | Some nd ->
        if nd.nb >= cutoff () then () (* prune unexplored *)
        else if Clock.since t0 > time_limit || !nodes >= node_limit then begin
          limit_hit := true;
          running := false;
          lb_at_exit := Float.min nd.nb (Heap.min_bound heap)
        end
        else begin
          activate nd.fixings;
          incr nodes;
          Support.Metrics.incr m_nodes;
          if Support.Trace.is_enabled () && !nodes land 255 = 0 then
            Support.Trace.counter "bb"
              [
                ("nodes", float_of_int !nodes);
                ("open", float_of_int (Heap.size heap));
                ("incumbent", !incumbent_obj);
              ];
          let lp_result =
            (* the root relaxation is a pipeline stage of its own in the
               paper's Figure 7; give it a dedicated span *)
            if nd.depth = 0 then
              Support.Trace.with_span "root-lp" (fun () ->
                  Revised.solve solver)
            else Revised.solve solver
          in
          match lp_result with
          | Revised.Iteration_limit ->
              limit_hit := true;
              running := false;
              lb_at_exit := Float.min nd.nb (Heap.min_bound heap)
          | Revised.Infeasible -> ()
          | Revised.Optimal ->
              let obj = Revised.objective solver in
              if nd.depth = 0 then begin
                root_objective := obj;
                root_time := Clock.since t0
              end;
              pc_learn nd obj;
              if obj < cutoff () then begin
                let x = Revised.primal solver in
                match select_branch x with
                | -1 ->
                    incumbent := Some (Array.copy x);
                    incumbent_obj := obj;
                    Support.Metrics.incr m_incumbents;
                    if Support.Trace.is_enabled () then
                      Support.Trace.instant "incumbent"
                        ~args:
                          [
                            ("objective", Support.Trace.Float obj);
                            ("node", Support.Trace.Int !nodes);
                          ]
                | v ->
                    (* Periodic primal heuristic (always at the root). *)
                    if
                      use_heuristic
                      && (nd.depth = 0 || !nodes mod heur_period = 0)
                    then begin
                      match
                        Heuristic.dive ~cutoff:(cutoff ())
                          ~deadline:(t0 +. time_limit) solver p
                      with
                      | Some (hobj, hx) when hobj < !incumbent_obj ->
                          incumbent := Some hx;
                          incumbent_obj := hobj;
                          incr heur_found;
                          Support.Metrics.incr m_incumbents;
                          Support.Metrics.incr m_heur;
                          if Support.Trace.is_enabled () then
                            Support.Trace.instant "heuristic-incumbent"
                              ~args:
                                [
                                  ("objective", Support.Trace.Float hobj);
                                  ("node", Support.Trace.Int !nodes);
                                ]
                      | _ -> ()
                    end;
                    let f = x.(v) -. floor x.(v) in
                    let cl, ch = Revised.bounds solver v in
                    let base =
                      List.filter (fun (w, _, _) -> w <> v) nd.fixings
                    in
                    let mk_child l h up =
                      if l > h +. 1e-9 then None
                      else
                        Some
                          {
                            nb = obj;
                            fixings = (v, l, h) :: base;
                            depth = nd.depth + 1;
                            bvar = v;
                            bfrac = f;
                            bup = up;
                          }
                    in
                    let down = mk_child cl (floor x.(v)) false in
                    let up = mk_child (ceil x.(v)) ch true in
                    let est_down = obj +. (pc_est false v *. f) in
                    let est_up = obj +. (pc_est true v *. (1. -. f)) in
                    let dive_first, park =
                      if est_down <= est_up then (down, up) else (up, down)
                    in
                    (match park with
                    | Some nd' -> Heap.push heap nd'
                    | None -> ());
                    next := dive_first
              end
        end
  done;
  let total_time = Clock.since t0 in
  let simplex_iterations = Revised.iterations solver in
  match !incumbent with
  | Some x ->
      let status = if !limit_hit then Limit else Optimal in
      let best_bound =
        if !limit_hit then Float.min !lb_at_exit !incumbent_obj
        else !incumbent_obj
      in
      {
        status;
        objective = !incumbent_obj;
        solution = x;
        nodes = !nodes;
        root_objective = !root_objective;
        root_time = !root_time;
        total_time;
        simplex_iterations;
        best_bound;
        heuristic_incumbents = !heur_found;
      }
  | None ->
      {
        status = (if !limit_hit then Limit else Infeasible);
        objective = infinity;
        solution = Array.make n 0.;
        nodes = !nodes;
        root_objective = !root_objective;
        root_time = !root_time;
        total_time;
        simplex_iterations;
        best_bound = (if !limit_hit then !lb_at_exit else infinity);
        heuristic_incumbents = !heur_found;
      }
