(* Model-generation analysis (paper §5.2, §8).

   Extracts from a virtual-register flowgraph everything the ILP model is
   instantiated with:
     - program points and their edges (the paper's set P);
     - the Exists and Copy sets from liveness;
     - operand-class sets per instruction (DefABW, Arith, DefL_i, UseS_i,
       DefLD_j, UseSD_j, SameReg, Clone) via [Ixp.Insn.classify];
     - the Interferes relation, minus clone families (§10);
     - static frequency weights (§7);
     - the §8 static analysis pruning the set of banks each temporary may
       ever occupy, plus the move-point restriction that keeps the model
       within reach of our in-repo MIP solver (in the spirit of Fu &
       Wilken's variable-reduction, which the paper §2.1 cites as the
       same problem). *)

open Support
module FG = Ixp.Flowgraph
module Insn = Ixp.Insn
module Bank = Ixp.Bank

type point = FG.point

type agg_def = {
  ad_space : Insn.space;
  ad_members : Ident.t array;
  ad_point : int; (* point id after the defining instruction *)
}

type agg_use = {
  au_space : Insn.space;
  au_members : Ident.t array;
  au_point : int; (* point id before the using instruction *)
}

type t = {
  graph : Ident.t FG.t;
  live : Ixp.Liveness.t;
  freq : Ixp.Frequency.t;
  points : point array;
  point_id : (string, int) Hashtbl.t; (* point name -> id *)
  (* edges between points *)
  insn_edges : (int * int * Ident.t Insn.t) list; (* p1, p2, the insn *)
  control_edges : (int * int) list;
  temps : Ident.t array;
  temp_id : int Ident.Tbl.t;
  exists_at : Ident.Set.t array; (* by point id *)
  copies : (int * int * Ident.t) list;
  (* operand classes, with point ids *)
  def_abw : (int * Ident.t) list; (* before-point of result *)
  def_ab : (int * Ident.t) list;
  agg_defs : agg_def list;
  agg_uses : agg_use list;
  arith2 : (int * Ident.t * Ident.t) list; (* after-point of operands *)
  arith1 : (int * Ident.t) list;
  use_ab : (int * Ident.t) list;
  same_reg : (Ident.t * Ident.t) list; (* (read side d, write side s) *)
  clones : (int * int * Ident.t array * Ident.t) list; (* p1, p2, dsts, src *)
  clone_family : Ident.t -> Ident.t; (* representative *)
  clone_mates : Ident.t -> Ident.t list; (* family incl. self *)
  interferes : (Ident.t * Ident.t) list; (* clone mates excluded *)
  allowed : Bank.t list Ident.Tbl.t; (* §8 pruning *)
  (* §8-style model reduction: temporaries that can never live in a
     transfer bank are pre-assigned a GPR bank (2-colored around ALU
     operand conflicts) and left out of the ILP; the K constraints see
     them as capacity reductions. *)
  fixed : Bank.t Ident.Tbl.t;
  (* §12 rematerialization: constants as temporaries with a virtual bank
     C; maps the temp to its constant value *)
  const_value : int Ident.Tbl.t;
  const_defs : (int * Ident.t) list; (* pin Before[p2,v,C] = 1 *)
  (* move-point restriction: temps that may move freely at a point, and
     temps that may only move OUT of certain banks there (vacating ahead
     of an aggregate transfer) *)
  move_all : (int, Ident.Set.t) Hashtbl.t;
  move_from : (int, Bank.t list Ident.Tbl.t) Hashtbl.t;
  weights : float array; (* by point id *)
}

let point_of t id = t.points.(id)
let id_of_point t (p : point) = Hashtbl.find t.point_id (FG.point_name p)

let allowed_banks t v =
  Option.value ~default:[ Bank.A; Bank.B; Bank.M ] (Ident.Tbl.find_opt t.allowed v)

let fixed_bank t v = Ident.Tbl.find_opt t.fixed v
let is_fixed t v = Ident.Tbl.mem t.fixed v
let num_fixed t = Ident.Tbl.length t.fixed

let allowed_xfer t v = List.filter Bank.is_transfer (allowed_banks t v)

let move_allowed t p v =
  (match Hashtbl.find_opt t.move_all p with
  | Some set -> Ident.Set.mem v set
  | None -> false)
  ||
  match Hashtbl.find_opt t.move_from p with
  | Some tbl -> Ident.Tbl.mem tbl v
  | None -> false

(* All (b1, b2) transitions the model offers temp [v] at point [p],
   including the identity transitions (one per allowed bank). *)
let legal_move_pairs t p v =
  let allowed = allowed_banks t v in
  let free =
    match Hashtbl.find_opt t.move_all p with
    | Some set -> Ident.Set.mem v set
    | None -> false
  in
  let from_banks =
    if free then allowed
    else
      match Hashtbl.find_opt t.move_from p with
      | Some tbl -> Option.value ~default:[] (Ident.Tbl.find_opt tbl v)
      | None -> []
  in
  List.concat_map
    (fun b1 ->
      List.filter_map
        (fun b2 ->
          if Bank.equal b1 b2 then Some (b1, b2)
          else if List.mem b1 from_banks && Bank.move_legal ~src:b1 ~dst:b2
          then Some (b1, b2)
          else None)
        allowed)
    allowed

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* [allow_spill]: when false (the default driver behaviour), scratch
   memory M is left out of every allowed set, which removes all Move
   variables through M and the entire needsSpill/colorAvail machinery --
   the paper's own observation (§11) that deciding spills separately
   makes the linear program much smaller.  The driver retries with
   [allow_spill:true] if the spill-free model is infeasible. *)
let const_of t v = Ident.Tbl.find_opt t.const_value v
let is_const t v = Ident.Tbl.mem t.const_value v

(* cost of materializing a constant: small values take one instruction,
   full-width values two (matches the simulator's Imm cost) *)
let imm_cost value = if value land 0xFFFFFFFF < 0x10000 then 1.0 else 2.0

let build ?(allow_spill = false) ?(rematerialize = false)
    (graph : Ident.t FG.t) : t =
  Trace.with_span "modelgen"
    ~args:
      [
        ("allow_spill", Trace.Bool allow_spill);
        ("rematerialize", Trace.Bool rematerialize);
      ]
  @@ fun () ->
  let live = Ixp.Liveness.compute graph in
  let freq = Ixp.Frequency.compute graph in
  let points = Array.of_list (FG.points graph) in
  let point_id = Hashtbl.create (Array.length points) in
  Array.iteri (fun i p -> Hashtbl.replace point_id (FG.point_name p) i) points;
  let pid p = Hashtbl.find point_id (FG.point_name p) in
  let insn_edges = ref [] and control_edges = ref [] in
  List.iter
    (fun e ->
      match e with
      | FG.Through_insn (p1, p2) ->
          let b = FG.block graph p1.FG.block in
          insn_edges :=
            (pid p1, pid p2, b.FG.insns.(p1.FG.pos)) :: !insn_edges
      | FG.Control (p1, p2) -> control_edges := (pid p1, pid p2) :: !control_edges)
    (FG.point_edges graph);
  let temps_set = Ixp.Liveness.all_temps graph in
  let temps = Array.of_list (Ident.Set.elements temps_set) in
  let temp_id = Ident.Tbl.create (Array.length temps) in
  Array.iteri (fun i v -> Ident.Tbl.replace temp_id v i) temps;
  let exists_at =
    Array.map (fun p -> Ixp.Liveness.exists_at live p) points
  in
  let copies =
    List.map
      (fun (p1, p2, v) -> (pid p1, pid p2, v))
      (Ixp.Liveness.copies live)
  in
  (* operand classes *)
  let def_abw = ref [] and def_ab = ref [] in
  let agg_defs = ref [] and agg_uses = ref [] in
  let arith2 = ref [] and arith1 = ref [] and use_ab = ref [] in
  let same_reg = ref [] and clones = ref [] in
  let add_classes p1 p2 (c : Ident.t Insn.constraints) =
    List.iter
      (fun dc ->
        match dc with
        | Insn.Def_abw v -> def_abw := (p2, v) :: !def_abw
        | Insn.Def_ab v -> def_ab := (p2, v) :: !def_ab
        | Insn.Def_agg (space, members) ->
            agg_defs :=
              { ad_space = space; ad_members = members; ad_point = p2 }
              :: !agg_defs)
      c.Insn.def_classes;
    List.iter
      (fun uc ->
        match uc with
        | Insn.Use_arith1 v -> arith1 := (p1, v) :: !arith1
        | Insn.Use_arith2 (x, y) -> arith2 := (p1, x, y) :: !arith2
        | Insn.Use_agg (space, members) ->
            agg_uses :=
              { au_space = space; au_members = members; au_point = p1 }
              :: !agg_uses
        | Insn.Use_ab v -> use_ab := (p1, v) :: !use_ab)
      c.Insn.use_classes;
    List.iter (fun pair -> same_reg := pair :: !same_reg) c.Insn.same_reg;
    match c.Insn.is_clone with
    | Some (dsts, src) -> clones := (p1, p2, dsts, src) :: !clones
    | None -> ()
  in
  List.iter
    (fun (p1, p2, insn) -> add_classes p1 p2 (Insn.classify insn))
    !insn_edges;
  (* terminator constraints anchor at the block's exit point *)
  FG.iter_blocks
    (fun b ->
      let exit_id =
        Hashtbl.find point_id
          (FG.point_name { FG.block = b.FG.label; pos = Array.length b.FG.insns })
      in
      let c = Insn.term_constraints b.FG.term in
      add_classes exit_id exit_id c)
    graph;
  (* clone families via union-find over temp indices *)
  let uf = Union_find.create (Array.length temps) in
  List.iter
    (fun (_, _, dsts, src) ->
      let si = Ident.Tbl.find temp_id src in
      Array.iter (fun d -> ignore (Union_find.union uf si (Ident.Tbl.find temp_id d))) dsts)
    !clones;
  let clone_family v =
    match Ident.Tbl.find_opt temp_id v with
    | None -> v
    | Some i -> temps.(Union_find.find uf i)
  in
  let mates_tbl = Ident.Tbl.create 16 in
  Array.iteri
    (fun i v ->
      let rep = temps.(Union_find.find uf i) in
      Ident.Tbl.replace mates_tbl rep
        (v :: Option.value ~default:[] (Ident.Tbl.find_opt mates_tbl rep)))
    temps;
  let clone_mates v =
    Option.value ~default:[ v ] (Ident.Tbl.find_opt mates_tbl (clone_family v))
  in
  (* interference: simultaneously existing, clone mates excluded *)
  let interferes =
    List.filter
      (fun (a, b) -> not (Ident.equal (clone_family a) (clone_family b)))
      (Ixp.Liveness.interferences live)
  in
  (* §12 rematerialization: constants (Imm destinations) live in the
     virtual bank C; their Imm "definition" is free bookkeeping and the
     DefABW constraint is replaced by pinning the definition to C. *)
  let const_value = Ident.Tbl.create 16 in
  let const_defs = ref [] in
  if rematerialize then
    List.iter
      (fun (_, p2, insn) ->
        match insn with
        | Insn.Imm { dst; value } ->
            Ident.Tbl.replace const_value dst value;
            const_defs := (p2, dst) :: !const_defs
        | _ -> ())
      !insn_edges;
  let def_abw =
    ref
      (List.filter
         (fun (_, v) -> not (Ident.Tbl.mem const_value v))
         !def_abw)
  in
  (* §8 bank pruning *)
  let allowed = Ident.Tbl.create (Array.length temps) in
  let allow v b =
    let cur = Option.value ~default:[] (Ident.Tbl.find_opt allowed v) in
    if not (List.mem b cur) then Ident.Tbl.replace allowed v (b :: cur)
  in
  Array.iter
    (fun v ->
      (* A, B always; M as spill space when enabled; constants get the
         virtual bank C instead of scratch *)
      allow v Bank.A;
      allow v Bank.B;
      if Ident.Tbl.mem const_value v then allow v Bank.C
      else if allow_spill then allow v Bank.M)
    temps;
  List.iter
    (fun (ad : agg_def) ->
      let b = Insn.read_bank ad.ad_space in
      Array.iter (fun v -> allow v b) ad.ad_members)
    !agg_defs;
  List.iter
    (fun (au : agg_use) ->
      let b = Insn.write_bank au.au_space in
      Array.iter (fun v -> allow v b) au.au_members)
    !agg_uses;
  (* clone mates share the allowed write-side banks of the family (a
     clone may carry the value toward its own write use), and the
     read-side bank of the definition flows to the clones through the
     clone constraint (they start in the same place). *)
  List.iter
    (fun (_, _, dsts, src) ->
      let family = Array.to_list dsts @ [ src ] in
      let union_banks =
        List.concat_map
          (fun v -> Option.value ~default:[] (Ident.Tbl.find_opt allowed v))
          family
      in
      List.iter (fun v -> List.iter (fun b -> allow v b) union_banks) family)
    !clones;
  (* ---- fixed-bank reduction ---------------------------------------- *)
  (* Qualify: no transfer bank in the allowed set, singleton clone
     family.  2-color qualifying temps around ALU operand-pair conflicts
     so that the "at most one operand per GPR bank" rule stays
     satisfiable; unqualify on odd conflict structure. *)
  let fixed = Ident.Tbl.create (Array.length temps) in
  let qualifies v =
    (not (List.exists Bank.is_transfer (Option.value ~default:[] (Ident.Tbl.find_opt allowed v))))
    && (not (Ident.Tbl.mem const_value v))
    && List.length (clone_mates v) = 1
  in
  let arith_neighbors = Ident.Tbl.create 64 in
  List.iter
    (fun (_, x, y) ->
      Ident.Tbl.replace arith_neighbors x
        (y :: Option.value ~default:[] (Ident.Tbl.find_opt arith_neighbors x));
      Ident.Tbl.replace arith_neighbors y
        (x :: Option.value ~default:[] (Ident.Tbl.find_opt arith_neighbors y)))
    !arith2;
  let balance = ref 0 in
  Array.iter
    (fun v ->
      if qualifies v then begin
        let neighbor_banks =
          List.filter_map
            (fun n -> Ident.Tbl.find_opt fixed n)
            (Option.value ~default:[] (Ident.Tbl.find_opt arith_neighbors v))
        in
        let can b = not (List.exists (Bank.equal b) neighbor_banks) in
        let preferred = if !balance <= 0 then Bank.A else Bank.B in
        let other = if Bank.equal preferred Bank.A then Bank.B else Bank.A in
        if can preferred then begin
          Ident.Tbl.replace fixed v preferred;
          balance := !balance + (if Bank.equal preferred Bank.A then 1 else -1)
        end
        else if can other then begin
          Ident.Tbl.replace fixed v other;
          balance := !balance + (if Bank.equal other Bank.A then 1 else -1)
        end
        (* both banks conflict: keep v in the model *)
      end)
    temps;
  (* Pressure safety: if the fixed temporaries alone ever exceed a GPR
     bank's capacity, unfix the widest-live ones at the hot point until
     they fit (they re-enter the model, where spilling is available). *)
  let k_cap b = Bank.k_capacity b in
  let overflow = ref true in
  while !overflow do
    overflow := false;
    Array.iter
      (fun set ->
        List.iter
          (fun b ->
            let live_fixed =
              Ident.Set.elements set
              |> List.filter (fun v ->
                     match Ident.Tbl.find_opt fixed v with
                     | Some fb -> Bank.equal fb b
                     | None -> false)
            in
            (* leave two slots of slack for the modelled temporaries *)
            let budget = max 0 (k_cap b - 2) in
            if List.length live_fixed > budget then begin
              overflow := true;
              let excess = List.length live_fixed - budget in
              List.iteri
                (fun i v -> if i < excess then Ident.Tbl.remove fixed v)
                live_fixed
            end)
          [ Bank.A; Bank.B ])
      exists_at
  done;
  (* move-point restriction: a temporary may move at a point only when
     something relevant happens there:
       - adjacent instruction defines or uses it,
       - the next instruction performs a transfer-bank operation (live
         temporaries that could occupy the affected bank may need to
         vacate),
       - block entry and exit points.
     Fixed temporaries never move. *)
  let move_all : (int, Ident.Set.t) Hashtbl.t = Hashtbl.create 64 in
  let move_from : (int, Bank.t list Ident.Tbl.t) Hashtbl.t = Hashtbl.create 64 in
  let movable v = not (Ident.Tbl.mem fixed v) in
  let allow_move p set =
    let set = Ident.Set.filter movable set in
    let cur = Option.value ~default:Ident.Set.empty (Hashtbl.find_opt move_all p) in
    Hashtbl.replace move_all p (Ident.Set.union cur set)
  in
  let allow_move_from p v banks =
    if movable v then begin
      let tbl =
        match Hashtbl.find_opt move_from p with
        | Some tbl -> tbl
        | None ->
            let tbl = Ident.Tbl.create 8 in
            Hashtbl.replace move_from p tbl;
            tbl
      in
      let cur = Option.value ~default:[] (Ident.Tbl.find_opt tbl v) in
      Ident.Tbl.replace tbl v
        (List.fold_left
           (fun acc b -> if List.mem b acc then acc else b :: acc)
           cur banks)
    end
  in
  (* transfer banks an instruction touches *)
  let touched_banks insn =
    match insn with
    | Insn.Read { space; _ } -> [ Insn.read_bank space ]
    | Insn.Write { space; _ } -> [ Insn.write_bank space ]
    | Insn.Hash _ | Insn.Bit_test_set _ -> [ Bank.L; Bank.S ]
    | Insn.Rfifo_read _ -> [ Bank.LD ]
    | Insn.Tfifo_write _ -> [ Bank.SD ]
    | Insn.Clone _ -> Bank.xbanks
    | _ -> []
  in
  List.iter
    (fun (p1, p2, insn) ->
      let touched =
        Ident.Set.of_list (Insn.defs insn @ Insn.uses insn)
      in
      allow_move p1 touched;
      allow_move p2 touched;
      (* only temporaries that could occupy an affected transfer bank may
         need vacating moves around a transfer instruction *)
      match touched_banks insn with
      | [] -> ()
      | banks ->
          (* vacating happens before the instruction needs the bank, and
             only moves OUT of the touched banks are useful there *)
          Ident.Set.iter
            (fun v ->
              let out_of =
                List.filter
                  (fun b ->
                    List.mem b
                      (Option.value ~default:[]
                         (Ident.Tbl.find_opt allowed v)))
                  banks
              in
              if out_of <> [] then allow_move_from p1 v out_of)
            exists_at.(p1))
    !insn_edges;
  FG.iter_blocks
    (fun b ->
      (* block-entry points host the free inter-bank moves; together with
         def/use-adjacent points this still lets values be re-banked once
         per region (e.g. hoisted out of a loop at the preheader's
         successor) at a fraction of the variables *)
      let entry = Hashtbl.find point_id (FG.point_name { FG.block = b.FG.label; pos = 0 }) in
      allow_move entry exists_at.(entry))
    graph;
  let weights =
    Array.map (fun p -> max 1e-4 (Ixp.Frequency.point_frequency freq p)) points
  in
  Metrics.set (Metrics.gauge "modelgen.points") (float_of_int (Array.length points));
  Metrics.set (Metrics.gauge "modelgen.temps") (float_of_int (Array.length temps));
  {
    graph;
    live;
    freq;
    points;
    point_id;
    insn_edges = !insn_edges;
    control_edges = !control_edges;
    temps;
    temp_id;
    exists_at;
    copies;
    def_abw = !def_abw;
    def_ab = !def_ab;
    agg_defs = !agg_defs;
    agg_uses = !agg_uses;
    arith2 = !arith2;
    arith1 = !arith1;
    use_ab = !use_ab;
    same_reg = !same_reg;
    clones = !clones;
    clone_family;
    clone_mates;
    interferes;
    allowed;
    fixed;
    const_value;
    const_defs = !const_defs;
    move_all;
    move_from;
    weights;
  }

(* Statistics used by Figure 6: how many temporaries participate in
   coloring, per aggregate class. *)
type coloring_stats = {
  def_l : int; (* members of SRAM/scratch read aggregates *)
  def_ld : int;
  use_s : int;
  use_sd : int;
}

let coloring_stats t =
  let count_defs space_pred =
    List.fold_left
      (fun acc (ad : agg_def) ->
        if space_pred ad.ad_space then acc + Array.length ad.ad_members else acc)
      0 t.agg_defs
  in
  let count_uses space_pred =
    List.fold_left
      (fun acc (au : agg_use) ->
        if space_pred au.au_space then acc + Array.length au.au_members else acc)
      0 t.agg_uses
  in
  let is_sram = function Insn.Sram | Insn.Scratch -> true | Insn.Sdram -> false in
  let is_sdram = function Insn.Sdram -> true | _ -> false in
  {
    def_l = count_defs is_sram;
    def_ld = count_defs is_sdram;
    use_s = count_uses is_sram;
    use_sd = count_uses is_sdram;
  }

(* Exists as (point, temp) pairs, for iteration. *)
let iter_exists t f =
  Array.iteri (fun p set -> Ident.Set.iter (fun v -> f p v) set) t.exists_at
