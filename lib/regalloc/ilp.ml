(* The ILP model for combined bank assignment, transfer-register coloring
   and spilling (paper §5-§10), stated through the AMPL-style modeling
   layer and solved with the in-repo MIP solver.

   Decision variables (all 0-1):
     Before[p,v,b], After[p,v,b]  -- v's bank before/after point p;
     Move[p,v,b1,b2]              -- v moves b1 -> b2 at p (identity moves
                                     cost nothing and always exist);
     Color[v,b,r]                 -- v's point-independent register number
                                     within transfer bank b (§9);
     Both[v1,v2,b]                -- interfering pair simultaneously in b
                                     (a Fu&Wilken-style reduction of the
                                     paper's per-point color constraint);
     Occ[p,b,r], NeedsSpill[p,b]  -- the §9 "colorAvail" spill-headroom
                                     machinery for L and S;
     CBefore/CAfter/CMove         -- §10 clone-set counting for K
                                     constraints and the objective. *)

open Support
module D = Ampl.Dataset
module M = Ampl.Model
module Bank = Ixp.Bank
module Insn = Ixp.Insn

let atom_p p = D.I p
let atom_v v = D.S (Ident.name v)
let atom_b b = D.S (Bank.to_string b)
let atom_r r = D.I r

type objective_mode = Minimize_moves | Spill_feasibility

type t = {
  mg : Modelgen.t;
  model : M.t;
  instance : M.instance;
  objective_mode : objective_mode;
}

let xregs = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

(* family membership helpers *)
let family_live_members mg p v =
  List.filter
    (fun m -> Ident.Set.mem m mg.Modelgen.exists_at.(p))
    (mg.Modelgen.clone_mates v)

let in_multi_family mg p v = List.length (family_live_members mg p v) >= 2

(* iterate Exists restricted to modelled (non-fixed) temporaries *)
let iter_modeled mg f =
  Modelgen.iter_exists mg (fun p v ->
      if not (Modelgen.is_fixed mg v) then f p v)

let build ?(objective_mode = Minimize_moves) (mg : Modelgen.t) : t =
  let model = M.create () in
  let allowed = Modelgen.allowed_banks mg in
  let axfer = Modelgen.allowed_xfer mg in
  (* ---------------- index sets ---------------- *)
  let before_idx = ref [] in
  let move_idx = ref [] in
  (* Only non-identity moves get variables; staying put is the default
     expressed by the per-bank flow balance below (a Fu&Wilken-style
     variable reduction: identity moves made up half the Move family). *)
  let real_pairs p v =
    List.filter
      (fun (b1, b2) -> not (Bank.equal b1 b2))
      (Modelgen.legal_move_pairs mg p v)
  in
  iter_modeled mg (fun p v ->
      List.iter
        (fun b -> before_idx := [ atom_p p; atom_v v; atom_b b ] :: !before_idx)
        (allowed v);
      List.iter
        (fun (b1, b2) ->
          move_idx := [ atom_p p; atom_v v; atom_b b1; atom_b b2 ] :: !move_idx)
        (real_pairs p v));
  let before_set = D.of_list 3 !before_idx in
  let move_set = D.of_list 4 !move_idx in
  M.declare_binary_family model "Before" ~index:before_set;
  M.declare_binary_family model "After" ~index:before_set;
  M.declare_binary_family model "Move" ~index:move_set;
  (* Color *)
  let color_idx = ref [] in
  Array.iter
    (fun v ->
      List.iter
        (fun b ->
          List.iter
            (fun r -> color_idx := [ atom_v v; atom_b b; atom_r r ] :: !color_idx)
            xregs)
        (axfer v))
    mg.Modelgen.temps;
  let color_set = D.of_list 3 !color_idx in
  M.declare_binary_family model "Color" ~index:color_set;
  (* interference pairs with a common transfer bank.  Members of the same
     aggregate already receive distinct colors through the adjacency
     chain, so their pairwise machinery is redundant in that bank. *)
  let agg_id = Hashtbl.create 64 in
  List.iteri
    (fun i (ad : Modelgen.agg_def) ->
      let b = Insn.read_bank ad.Modelgen.ad_space in
      Array.iter
        (fun v -> Hashtbl.replace agg_id (Ident.stamp v, Bank.to_string b) i)
        ad.Modelgen.ad_members)
    mg.Modelgen.agg_defs;
  List.iteri
    (fun i (au : Modelgen.agg_use) ->
      let b = Insn.write_bank au.Modelgen.au_space in
      Array.iter
        (fun v ->
          Hashtbl.replace agg_id (Ident.stamp v, Bank.to_string b) (10000 + i))
        au.Modelgen.au_members)
    mg.Modelgen.agg_uses;
  let same_aggregate v1 v2 b =
    match
      ( Hashtbl.find_opt agg_id (Ident.stamp v1, Bank.to_string b),
        Hashtbl.find_opt agg_id (Ident.stamp v2, Bank.to_string b) )
    with
    | Some a, Some b -> a = b
    | _ -> false
  in
  let both_idx = ref [] in
  let both_pairs = ref [] in
  List.iter
    (fun (v1, v2) ->
      let common =
        List.filter
          (fun b ->
            List.mem b (axfer v2) && not (same_aggregate v1 v2 b))
          (axfer v1)
      in
      if common <> [] then both_pairs := (v1, v2, common) :: !both_pairs;
      List.iter
        (fun b -> both_idx := [ atom_v v1; atom_v v2; atom_b b ] :: !both_idx)
        common)
    mg.Modelgen.interferes;
  M.declare_binary_family model "Both" ~index:(D.of_list 3 !both_idx);
  (* spill headroom variables at points where spill moves are possible *)
  let spill_points_s = Hashtbl.create 16 in
  let spill_points_l = Hashtbl.create 16 in
  D.iter
    (fun tup ->
      match tup with
      | [ D.I p; _; D.S b1; D.S b2 ] ->
          let b1 = Bank.of_string b1 and b2 = Bank.of_string b2 in
          if Bank.equal b2 Bank.M && not (Bank.is_write_transfer b1) &&
             not (Bank.equal b1 Bank.M)
          then Hashtbl.replace spill_points_s p ();
          if Bank.equal b1 Bank.M && (Bank.equal b2 Bank.A || Bank.equal b2 Bank.B)
          then Hashtbl.replace spill_points_l p ()
      | _ -> ())
    move_set;
  let occ_idx = ref [] and ns_idx = ref [] in
  let add_spill_point p b =
    ns_idx := [ atom_p p; atom_b b ] :: !ns_idx;
    List.iter (fun r -> occ_idx := [ atom_p p; atom_b b; atom_r r ] :: !occ_idx) xregs
  in
  Hashtbl.iter (fun p () -> add_spill_point p Bank.S) spill_points_s;
  Hashtbl.iter (fun p () -> add_spill_point p Bank.L) spill_points_l;
  M.declare_binary_family model "Occ" ~index:(D.of_list 3 !occ_idx);
  M.declare_binary_family model "NeedsSpill" ~index:(D.of_list 2 !ns_idx);
  (* Which points actually need K rows?  Register pressure only rises
     when something is defined, so checking the points right after a
     definition (and block entries, where paths merge) covers the maxima;
     of those, only points whose live count can exceed a GPR bank's
     capacity matter.  Only there do the clone-set counting variables
     CBefore/CAfter earn their keep. *)
  let def_point = Hashtbl.create 64 in
  List.iter (fun (p2, _) -> Hashtbl.replace def_point p2 ()) mg.Modelgen.def_abw;
  List.iter (fun (p2, _) -> Hashtbl.replace def_point p2 ()) mg.Modelgen.def_ab;
  List.iter
    (fun (ad : Modelgen.agg_def) ->
      Hashtbl.replace def_point ad.Modelgen.ad_point ())
    mg.Modelgen.agg_defs;
  List.iter
    (fun (p1, p2, _, _) ->
      Hashtbl.replace def_point p1 ();
      Hashtbl.replace def_point p2 ())
    mg.Modelgen.clones;
  Array.iteri
    (fun p pt ->
      if pt.Ixp.Flowgraph.pos = 0 then Hashtbl.replace def_point p ())
    mg.Modelgen.points;
  let k_point = Hashtbl.create 64 in
  Array.iteri
    (fun p set ->
      if Hashtbl.mem def_point p then
        List.iter
          (fun (b, cap) ->
            let n =
              Ident.Set.fold
                (fun v n ->
                  if List.mem b (allowed v) then n + 1 else n)
                set 0
            in
            if n > cap then Hashtbl.replace k_point p ())
          [ (Bank.A, Bank.k_capacity Bank.A); (Bank.B, Bank.k_capacity Bank.B) ])
    mg.Modelgen.exists_at;
  (* clone counting variables at points where >= 2 family members live *)
  let cbefore_idx = ref [] and cmove_idx = ref [] in
  let multi_points = ref [] in
  Array.iteri
    (fun p set ->
      (* group live members by family representative *)
      let fams = Hashtbl.create 8 in
      Ident.Set.iter
        (fun v ->
          let rep = mg.Modelgen.clone_family v in
          Hashtbl.replace fams rep
            (v :: Option.value ~default:[] (Hashtbl.find_opt fams rep)))
        set;
      Hashtbl.iter
        (fun rep members ->
          if List.length members >= 2 then begin
            multi_points := (p, rep, members) :: !multi_points;
            (* banks = union of members' allowed *)
            let banks =
              List.sort_uniq Bank.compare (List.concat_map allowed members)
            in
            List.iter
              (fun b ->
                if
                  Hashtbl.mem k_point p
                  && (Bank.equal b Bank.A || Bank.equal b Bank.B)
                then
                  cbefore_idx :=
                    [ atom_p p; atom_v rep; atom_b b ] :: !cbefore_idx;
                List.iter
                  (fun b2 ->
                    if
                      (not (Bank.equal b b2))
                      && Bank.move_legal ~src:b ~dst:b2
                      && List.exists
                           (fun m ->
                             List.exists
                               (fun (x, y) -> Bank.equal x b && Bank.equal y b2)
                               (Modelgen.legal_move_pairs mg p m))
                           members
                    then
                      cmove_idx :=
                        [ atom_p p; atom_v rep; atom_b b; atom_b b2 ]
                        :: !cmove_idx)
                  banks)
              banks
          end)
        fams)
    mg.Modelgen.exists_at;
  let cmove_set = D.of_list 4 !cmove_idx in
  M.declare_binary_family model "CBefore" ~index:(D.of_list 3 !cbefore_idx);
  M.declare_binary_family model "CAfter" ~index:(D.of_list 3 !cbefore_idx);
  M.declare_binary_family model "CMove" ~index:cmove_set;
  (* ---------------- constraints ---------------- *)
  let before p v b = M.v "Before" [ atom_p p; atom_v v; atom_b b ] in
  let after p v b = M.v "After" [ atom_p p; atom_v v; atom_b b ] in
  let move p v b1 b2 = M.v "Move" [ atom_p p; atom_v v; atom_b b1; atom_b b2 ] in
  let color v b r = M.v "Color" [ atom_v v; atom_b b; atom_r r ] in
  let one = M.const 1. in
  let sum_over_list xs f = M.sum (List.map f xs) in
  (* flow balance linking Before/After to the (non-identity) moves *)
  iter_modeled mg (fun p v ->
      let banks = allowed v in
      let pairs = real_pairs p v in
      List.iter
        (fun b ->
          let outs = List.filter (fun (s, _) -> Bank.equal s b) pairs in
          let ins = List.filter (fun (_, d) -> Bank.equal d b) pairs in
          if outs = [] && ins = [] then
            M.add_eq model ~name:"flow" (after p v b) (before p v b)
          else
            M.add_eq model ~name:"flow"
              (M.add (after p v b)
                 (sum_over_list outs (fun (b1, b2) -> move p v b1 b2)))
              (M.add (before p v b)
                 (sum_over_list ins (fun (b1, b2) -> move p v b1 b2))))
        banks;
      (* in one place only *)
      M.add_eq model ~name:"one_place"
        (sum_over_list banks (fun b -> before p v b))
        one;
      (* at most one move per temporary per point, so that the solution
         reader and the emitter see simple transitions *)
      if pairs <> [] then
        M.add_le model ~name:"one_move"
          (sum_over_list pairs (fun (b1, b2) -> move p v b1 b2))
          one);
  (* copy propagation *)
  List.iter
    (fun (p1, p2, v) ->
      if not (Modelgen.is_fixed mg v) then
        List.iter
          (fun b ->
            M.add_eq model ~name:"copy" (after p1 v b) (before p2 v b))
          (allowed v))
    mg.Modelgen.copies;
  (* operand definitions *)
  List.iter
    (fun (p2, v) ->
      if not (Modelgen.is_fixed mg v) then begin
        let banks =
          List.filter (fun b -> List.mem b Bank.alu_outputs) (allowed v)
        in
        M.add_eq model ~name:"def_abw"
          (sum_over_list banks (fun b -> before p2 v b))
          one
      end)
    mg.Modelgen.def_abw;
  List.iter
    (fun (p2, v) ->
      if not (Modelgen.is_fixed mg v) then
        M.add_eq model ~name:"def_ab"
          (M.add (before p2 v Bank.A) (before p2 v Bank.B))
          one)
    mg.Modelgen.def_ab;
  (* arithmetic operands *)
  let arith_sources v =
    List.filter (fun b -> List.mem b Bank.alu_inputs) (allowed v)
  in
  List.iter
    (fun (p1, v) ->
      if not (Modelgen.is_fixed mg v) then
        M.add_eq model ~name:"arith1"
          (sum_over_list (arith_sources v) (fun b -> after p1 v b))
          one)
    mg.Modelgen.arith1;
  List.iter
    (fun (p1, x, y) ->
      match (Modelgen.fixed_bank mg x, Modelgen.fixed_bank mg y) with
      | Some _, Some _ -> () (* 2-coloring made them disjoint *)
      | Some bx, None ->
          (* the modelled operand must avoid the fixed one's bank *)
          M.add_eq model ~name:"arith_fixed_partner"
            (sum_over_list
               (List.filter (fun b -> not (Bank.equal b bx)) (arith_sources y))
               (fun b -> after p1 y b))
            one
      | None, Some by ->
          M.add_eq model ~name:"arith_fixed_partner"
            (sum_over_list
               (List.filter (fun b -> not (Bank.equal b by)) (arith_sources x))
               (fun b -> after p1 x b))
            one
      | None, None ->
          M.add_eq model ~name:"arith_x"
            (sum_over_list (arith_sources x) (fun b -> after p1 x b))
            one;
          M.add_eq model ~name:"arith_y"
            (sum_over_list (arith_sources y) (fun b -> after p1 y b))
            one;
          (* disjoint bank groups: A, B, and L+LD each supply one operand *)
          List.iter
            (fun b ->
              if List.mem b (arith_sources x) && List.mem b (arith_sources y)
              then
                M.add_le model ~name:"arith_disjoint"
                  (M.add (after p1 x b) (after p1 y b))
                  one)
            [ Bank.A; Bank.B ];
          let xl =
            sum_over_list
              (List.filter (fun b -> Bank.is_read_transfer b) (arith_sources x))
              (fun b -> after p1 x b)
          in
          let yl =
            sum_over_list
              (List.filter (fun b -> Bank.is_read_transfer b) (arith_sources y))
              (fun b -> after p1 y b)
          in
          M.add_le model ~name:"arith_xfer_group" (M.add xl yl) one)
    mg.Modelgen.arith2;
  (* address operands *)
  List.iter
    (fun (p1, v) ->
      if not (Modelgen.is_fixed mg v) then
        M.add_eq model ~name:"use_ab"
          (M.add (after p1 v Bank.A) (after p1 v Bank.B))
          one)
    mg.Modelgen.use_ab;
  (* constant definitions pin the virtual bank C (§12): the Imm
     instruction is bookkeeping, and every register copy of the constant
     arises from an explicit C -> GPR move (an immediate load) *)
  List.iter
    (fun (p2, v) ->
      M.add_eq model ~name:"const_def" (before p2 v Bank.C) one)
    mg.Modelgen.const_defs;
  (* aggregate definitions and uses pin the bank *)
  List.iter
    (fun (ad : Modelgen.agg_def) ->
      let b = Insn.read_bank ad.Modelgen.ad_space in
      Array.iter
        (fun v ->
          M.add_eq model ~name:"agg_def" (before ad.Modelgen.ad_point v b) one)
        ad.Modelgen.ad_members)
    mg.Modelgen.agg_defs;
  List.iter
    (fun (au : Modelgen.agg_use) ->
      let b = Insn.write_bank au.Modelgen.au_space in
      Array.iter
        (fun v ->
          M.add_eq model ~name:"agg_use" (after au.Modelgen.au_point v b) one)
        au.Modelgen.au_members)
    mg.Modelgen.agg_uses;
  (* each transfer-capable temporary has exactly one color per bank *)
  Array.iter
    (fun v ->
      List.iter
        (fun b ->
          M.add_eq model ~name:"color_exists"
            (sum_over_list xregs (fun r -> color v b r))
            one)
        (axfer v))
    mg.Modelgen.temps;
  (* aggregate adjacency + edge exclusion *)
  let constrain_aggregate members b =
    let n = Array.length members in
    Array.iteri
      (fun j v ->
        (* member j cannot sit below j or above 8-n+j *)
        List.iter
          (fun r ->
            if r < j || r > 8 - n + j then
              M.add_eq model ~name:"agg_range" (color v b r) M.zero)
          xregs;
        if j + 1 < n then
          List.iter
            (fun r ->
              if r + 1 <= 7 then
                M.add_eq model ~name:"agg_adj" (color v b r)
                  (color members.(j + 1) b (r + 1)))
            (List.filter (fun r -> r < 7) xregs))
      members
  in
  List.iter
    (fun (ad : Modelgen.agg_def) ->
      constrain_aggregate ad.Modelgen.ad_members (Insn.read_bank ad.Modelgen.ad_space))
    mg.Modelgen.agg_defs;
  List.iter
    (fun (au : Modelgen.agg_use) ->
      constrain_aggregate au.Modelgen.au_members (Insn.write_bank au.Modelgen.au_space))
    mg.Modelgen.agg_uses;
  (* same-register instructions *)
  List.iter
    (fun (d, s) ->
      List.iter
        (fun r ->
          M.add_eq model ~name:"same_reg" (color d Bank.L r) (color s Bank.S r))
        xregs)
    mg.Modelgen.same_reg;
  (* interference: Both linking and color disjointness *)
  List.iter
    (fun (v1, v2, common) ->
      List.iter
        (fun b ->
          let both = M.v "Both" [ atom_v v1; atom_v v2; atom_b b ] in
          Array.iteri
            (fun p set ->
              if Ident.Set.mem v1 set && Ident.Set.mem v2 set then begin
                M.add_le model ~name:"both_before"
                  (M.add (before p v1 b) (before p v2 b))
                  (M.add one both);
                M.add_le model ~name:"both_after"
                  (M.add (after p v1 b) (after p v2 b))
                  (M.add one both)
              end)
            mg.Modelgen.exists_at;
          List.iter
            (fun r ->
              M.add_le model ~name:"color_disjoint"
                (M.sum [ color v1 b r; color v2 b r; both ])
                (M.const 2.))
            xregs)
        common)
    !both_pairs;
  (* clone constraints (§10) *)
  List.iter
    (fun (p1, p2, dsts, src) ->
      Array.iter
        (fun d ->
          List.iter
            (fun b ->
              if List.mem b (allowed src) then
                M.add_ge model ~name:"clone_loc" (before p2 d b)
                  (after p1 src b);
              if Bank.is_transfer b && List.mem b (axfer src) then
                List.iter
                  (fun r ->
                    (* if d sits in b right after the clone, colors agree *)
                    M.add_ge model ~name:"clone_color1"
                      (M.add (color d b r) (M.sub one (before p2 d b)))
                      (color src b r);
                    M.add_ge model ~name:"clone_color2"
                      (M.add (color src b r) (M.sub one (before p2 d b)))
                      (color d b r))
                  xregs)
            (allowed d))
        dsts)
    mg.Modelgen.clones;
  (* clone counting: CBefore/CAfter/CMove *)
  let multi_tbl = Hashtbl.create 64 in
  List.iter
    (fun (p, rep, members) -> Hashtbl.replace multi_tbl (p, Ident.name rep) members)
    !multi_points;
  List.iter
    (fun (p, rep, members) ->
      let banks = List.sort_uniq Bank.compare (List.concat_map allowed members) in
      List.iter
        (fun b ->
          if
            Hashtbl.mem k_point p
            && (Bank.equal b Bank.A || Bank.equal b Bank.B)
          then begin
            let cb = M.v "CBefore" [ atom_p p; atom_v rep; atom_b b ] in
            let ca = M.v "CAfter" [ atom_p p; atom_v rep; atom_b b ] in
            let members_b = List.filter (fun m -> List.mem b (allowed m)) members in
            List.iter
              (fun m ->
                M.add_ge model ~name:"cbefore_lo" cb (before p m b);
                M.add_ge model ~name:"cafter_lo" ca (after p m b))
              members_b;
            M.add_le model ~name:"cbefore_hi" cb
              (sum_over_list members_b (fun m -> before p m b));
            M.add_le model ~name:"cafter_hi" ca
              (sum_over_list members_b (fun m -> after p m b))
          end;
          List.iter
            (fun b2 ->
              if (not (Bank.equal b b2)) && Bank.move_legal ~src:b ~dst:b2 then begin
                let cm = M.v "CMove" [ atom_p p; atom_v rep; atom_b b; atom_b b2 ] in
                let movers =
                  List.filter
                    (fun m ->
                      List.exists
                        (fun (x, y) -> Bank.equal x b && Bank.equal y b2)
                        (Modelgen.legal_move_pairs mg p m))
                    members
                in
                List.iter
                  (fun m -> M.add_ge model ~name:"cmove_lo" cm (move p m b b2))
                  movers;
                if movers <> [] then
                  M.add_le model ~name:"cmove_hi" cm
                    (sum_over_list movers (fun m -> move p m b b2))
              end)
            banks)
        banks)
    !multi_points;
  (* K constraints for A and B, counting clone families once *)
  Array.iteri
    (fun p set ->
      if Hashtbl.mem k_point p && not (Ident.Set.is_empty set) then begin
        (* terms per family *)
        let fams = Hashtbl.create 8 in
        Ident.Set.iter
          (fun v ->
            let rep = mg.Modelgen.clone_family v in
            Hashtbl.replace fams rep
              (v :: Option.value ~default:[] (Hashtbl.find_opt fams rep)))
          set;
        List.iter
          (fun (b, cap) ->
            let fixed_here = ref 0 in
            let terms_before = ref [] and terms_after = ref [] in
            Hashtbl.iter
              (fun rep members ->
                match members with
                | [ v ] when Modelgen.is_fixed mg v ->
                    (match Modelgen.fixed_bank mg v with
                    | Some fb when Bank.equal fb b -> incr fixed_here
                    | _ -> ());
                    ignore rep
                | [ v ] ->
                    if List.mem b (allowed v) then begin
                      terms_before := before p v b :: !terms_before;
                      terms_after := after p v b :: !terms_after
                    end
                | _ ->
                    let banks = List.concat_map allowed members in
                    if List.mem b banks then begin
                      terms_before :=
                        M.v "CBefore" [ atom_p p; atom_v rep; atom_b b ]
                        :: !terms_before;
                      terms_after :=
                        M.v "CAfter" [ atom_p p; atom_v rep; atom_b b ]
                        :: !terms_after
                    end)
              fams;
            let cap = cap - !fixed_here in
            if List.length !terms_before > cap then begin
              M.add_le model ~name:"k_before" (M.sum !terms_before)
                (M.const (float_of_int cap));
              M.add_le model ~name:"k_after" (M.sum !terms_after)
                (M.const (float_of_int cap))
            end)
          [ (Bank.A, Bank.k_capacity Bank.A); (Bank.B, Bank.k_capacity Bank.B) ]
      end)
    mg.Modelgen.exists_at;
  (* spill headroom (the paper's colorAvail / needsSpill) *)
  let add_headroom p b =
    let ns = M.v "NeedsSpill" [ atom_p p; atom_b b ] in
    let occ r = M.v "Occ" [ atom_p p; atom_b b; atom_r r ] in
    Ident.Set.iter
      (fun v ->
        if List.mem b (allowed v) && Bank.is_transfer b then
          List.iter
            (fun r ->
              M.add_le model ~name:"occ_before"
                (M.add (color v b r) (before p v b))
                (M.add one (occ r));
              M.add_le model ~name:"occ_after"
                (M.add (color v b r) (after p v b))
                (M.add one (occ r)))
            xregs)
      mg.Modelgen.exists_at.(p);
    M.add_le model ~name:"k_headroom"
      (M.add (sum_over_list xregs occ) ns)
      (M.const 8.);
    (* needsSpill is forced by the relevant moves *)
    let movers = ref [] in
    Ident.Set.iter
      (fun v ->
        if not (Modelgen.is_fixed mg v) then
          List.iter
            (fun (b1, b2) ->
              let relevant =
                match b with
                | Bank.S ->
                    Bank.equal b2 Bank.M
                    && (not (Bank.is_write_transfer b1))
                    && not (Bank.equal b1 Bank.M)
                | Bank.L ->
                    Bank.equal b1 Bank.M
                    && (Bank.equal b2 Bank.A || Bank.equal b2 Bank.B)
                | _ -> false
              in
              if relevant then begin
                M.add_ge model ~name:"needs_spill" ns (move p v b1 b2);
                movers := move p v b1 b2 :: !movers
              end)
            (Modelgen.legal_move_pairs mg p v))
      mg.Modelgen.exists_at.(p);
    if !movers <> [] then
      M.add_le model ~name:"needs_spill_hi" ns (M.sum !movers)
  in
  Hashtbl.iter (fun p () -> add_headroom p Bank.S) spill_points_s;
  Hashtbl.iter (fun p () -> add_headroom p Bank.L) spill_points_l;
  (* ---------------- objective ---------------- *)
  (match objective_mode with
  | Minimize_moves ->
      iter_modeled mg (fun p v ->
          let w = mg.Modelgen.weights.(p) in
          let multi = in_multi_family mg p v in
          let rep = mg.Modelgen.clone_family v in
          List.iter
            (fun (b1, b2) ->
              if not (Bank.equal b1 b2) then begin
                let cost =
                  (* loading a constant costs by its magnitude (§12);
                     discarding a register copy of one is free *)
                  if Bank.equal b1 Bank.C then
                    match Modelgen.const_of mg v with
                    | Some value -> Modelgen.imm_cost value
                    | None -> Bank.move_cost ~src:b1 ~dst:b2 ()
                  else Bank.move_cost ~src:b1 ~dst:b2 ()
                in
                if multi then begin
                  (* charge the whole family once through CMove; emit the
                     term only when visiting the smallest live member so
                     it is not duplicated *)
                  let members = family_live_members mg p v in
                  let smallest = List.hd (List.sort Ident.compare members) in
                  if
                    Ident.equal v smallest
                    && D.mem cmove_set
                         [ atom_p p; atom_v rep; atom_b b1; atom_b b2 ]
                  then
                    M.add_to_objective model
                      (M.v "CMove" ~coef:(w *. cost)
                         [ atom_p p; atom_v rep; atom_b b1; atom_b b2 ])
                end
                else
                  M.add_to_objective model
                    (M.v "Move" ~coef:(w *. cost)
                       [ atom_p p; atom_v v; atom_b b1; atom_b b2 ])
              end)
            (Modelgen.legal_move_pairs mg p v))
  | Spill_feasibility ->
      (* the §11 alternative objective: find whether spills are needed at
         all, and where -- minimize scratch traffic only *)
      iter_modeled mg (fun p v ->
          List.iter
            (fun (b1, b2) ->
              if
                (not (Bank.equal b1 b2))
                && (Bank.equal b1 Bank.M || Bank.equal b2 Bank.M)
              then
                M.add_to_objective model
                  (M.v "Move" ~coef:mg.Modelgen.weights.(p)
                     [ atom_p p; atom_v v; atom_b b1; atom_b b2 ]))
            (Modelgen.legal_move_pairs mg p v)));
  (* Symmetry breaking: transfer-register colors are interchangeable for
     singleton aggregates, which makes branch&bound wander through
     equivalent assignments.  A tiny register-ordered perturbation makes
     every temporary prefer the lowest free register, so the LP relaxation
     lands on integral corners; the weights are orders of magnitude below
     any real move cost and cannot change which solution is optimal in
     moves.  Auxiliary indicator families get the same treatment so they
     sit at their forced bounds. *)
  let eps = 1e-7 in
  Array.iter
    (fun v ->
      List.iter
        (fun b ->
          List.iter
            (fun r ->
              M.add_to_objective model
                (M.v "Color"
                   ~coef:(eps *. float_of_int (r + 1))
                   [ atom_v v; atom_b b; atom_r r ]))
            xregs)
        (axfer v))
    mg.Modelgen.temps;
  List.iter
    (fun (v1, v2, common) ->
      List.iter
        (fun b ->
          M.add_to_objective model
            (M.v "Both" ~coef:eps [ atom_v v1; atom_v v2; atom_b b ]))
        common)
    !both_pairs;
  D.iter
    (fun tup -> M.add_to_objective model (M.v "CBefore" ~coef:eps tup))
    (match Hashtbl.length multi_tbl with _ -> D.of_list 3 !cbefore_idx);
  let instance = M.instantiate model in
  { mg; model; instance; objective_mode }

(* ------------------------------------------------------------------ *)
(* Solving and solution reading                                        *)
(* ------------------------------------------------------------------ *)

type solution = {
  assignment : float array;
  result : Lp.Mip.result;
  ilp : t;
}

let solve ?(time_limit = 300.) ?(node_limit = 500_000) ?(rel_gap = 1e-4)
    ?(domains = 1) ?(deterministic = false)
    ?(warm = Lp.Mip.no_warm_start) (ilp : t) =
  let result =
    Lp.Mip.solve ~time_limit ~node_limit ~rel_gap ~domains ~deterministic
      ~warm ilp.instance.M.problem
  in
  match result.Lp.Mip.status with
  | Lp.Mip.Infeasible -> Error `Infeasible
  | Lp.Mip.Optimal -> Ok { assignment = result.Lp.Mip.solution; result; ilp }
  | Lp.Mip.Limit ->
      (* a feasible incumbent found within the budget is still a valid
         allocation; only fail when none was found at all *)
      if Float.is_finite result.Lp.Mip.objective then
        Ok { assignment = result.Lp.Mip.solution; result; ilp }
      else Error `Limit

let bank_before (s : solution) p v =
  match Modelgen.fixed_bank s.ilp.mg v with
  | Some b -> Some b
  | None ->
      let banks = Modelgen.allowed_banks s.ilp.mg v in
      List.find_opt
        (fun b ->
          M.is_one s.ilp.instance s.assignment "Before"
            [ atom_p p; atom_v v; atom_b b ])
        banks

let bank_after (s : solution) p v =
  match Modelgen.fixed_bank s.ilp.mg v with
  | Some b -> Some b
  | None ->
      let banks = Modelgen.allowed_banks s.ilp.mg v in
      List.find_opt
        (fun b ->
          M.is_one s.ilp.instance s.assignment "After"
            [ atom_p p; atom_v v; atom_b b ])
        banks

let moves_at (s : solution) p =
  let acc = ref [] in
  Ident.Set.iter
    (fun v ->
      if not (Modelgen.is_fixed s.ilp.mg v) then
        List.iter
          (fun (b1, b2) ->
            if
              (not (Bank.equal b1 b2))
              && M.is_one s.ilp.instance s.assignment "Move"
                   [ atom_p p; atom_v v; atom_b b1; atom_b b2 ]
            then acc := (v, b1, b2) :: !acc)
          (Modelgen.legal_move_pairs s.ilp.mg p v))
    s.ilp.mg.Modelgen.exists_at.(p);
  !acc

let color_of (s : solution) v b =
  List.find_opt
    (fun r -> M.is_one s.ilp.instance s.assignment "Color" [ atom_v v; atom_b b; atom_r r ])
    xregs

(* Count the weighted and unweighted moves/spills in the solution. *)
type move_stats = { total_moves : int; spill_moves : int; weighted_cost : float }

let move_stats (s : solution) =
  let total = ref 0 and spills = ref 0 and cost = ref 0. in
  Array.iteri
    (fun p _ ->
      List.iter
        (fun (_, b1, b2) ->
          incr total;
          if Bank.equal b1 Bank.M || Bank.equal b2 Bank.M then incr spills;
          cost :=
            !cost
            +. (s.ilp.mg.Modelgen.weights.(p) *. Bank.move_cost ~src:b1 ~dst:b2 ()))
        (moves_at s p))
    s.ilp.mg.Modelgen.points;
  { total_moves = !total; spill_moves = !spills; weighted_cost = !cost }
