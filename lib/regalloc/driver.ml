(* End-to-end compilation driver: Nova source -> physical IXP program.

   Pipeline (paper §4, §5):
     parse -> typecheck -> CPS conversion -> CPS optimization ->
     de-proceduralization -> SSU cloning -> instruction selection ->
     model generation -> ILP (or baseline heuristic) -> solution
     application -> machine-legality check. *)

open Support

type allocator = Ilp_allocator | Baseline_allocator

type options = {
  allocator : allocator;
  objective : Ilp.objective_mode;
  time_limit : float; (* branch&bound wall-clock budget, seconds *)
  node_limit : int; (* branch&bound node budget (deterministic) *)
  rel_gap : float;
  solver_domains : int; (* worker domains for parallel branch&bound *)
  solver_deterministic : bool;
      (* fixed node-distribution schedule: reproducible node counts at
         the cost of slightly less pruning (only matters when
         solver_domains >= 2) *)
  limit_fallback : bool;
      (* when the solver exhausts its budget without an incumbent, emit
         the baseline heuristic allocation instead of failing *)
  entry : string;
  entry_args : int list;
  validate : bool; (* run Assignment.validate and Checker *)
  verify_each : bool; (* re-verify IR invariants after every CPS pass *)
  rematerialize : bool; (* §12: constants through the virtual bank C *)
}

let default_options =
  {
    allocator = Ilp_allocator;
    objective = Ilp.Minimize_moves;
    time_limit = 300.;
    node_limit = 500_000;
    rel_gap = 1e-4;
    solver_domains = 1;
    solver_deterministic = false;
    limit_fallback = true;
    entry = "main";
    entry_args = [];
    validate = true;
    verify_each = true;
    rematerialize = false;
  }

(* How the emitted allocation was obtained -- in particular, whether a
   solver budget cut the search short and what was emitted instead of a
   proven-optimal solution. *)
type solver_outcome =
  | Outcome_heuristic (* baseline allocator was requested *)
  | Outcome_optimal (* ILP solved to (gap-)optimality *)
  | Outcome_incumbent (* budget hit; best incumbent emitted *)
  | Outcome_fallback (* budget hit with no incumbent; baseline emitted *)

let solver_outcome_to_string = function
  | Outcome_heuristic -> "heuristic"
  | Outcome_optimal -> "optimal"
  | Outcome_incumbent -> "incumbent (budget hit)"
  | Outcome_fallback -> "baseline fallback (budget hit)"

type stats = {
  source : Nova.Stats.t;
  cps_size_initial : int;
  cps_size_optimized : int;
  virtual_blocks : int;
  virtual_insns : int;
  coloring : Modelgen.coloring_stats;
  mip : Lp.Mip.stats option; (* None for the baseline *)
  solver_outcome : solver_outcome;
  moves_inserted : int;
  spills_inserted : int;
  weighted_move_cost : float;
}

type compiled = {
  options : options;
  tprog : Nova.Tast.tprogram;
  cps_term : Cps.Ir.term; (* after all CPS phases, pre-isel *)
  virtual_graph : Ident.t Ixp.Flowgraph.t;
  mg : Modelgen.t;
  assignment : Assignment.t;
  physical : Ixp.Reg.t Ixp.Flowgraph.t;
  stats : stats;
}

exception Allocation_failed of string

(* Front half: source -> virtual flowgraph.  Shared by all allocators and
   by benchmarks that only need model statistics. *)
type front = {
  f_tprog : Nova.Tast.tprogram;
  f_source : Nova.Stats.t;
  f_term : Cps.Ir.term;
  f_size_initial : int;
  f_graph : Ident.t Ixp.Flowgraph.t;
}

let front_end ?(entry = "main") ?(entry_args = []) ?(rematerialize = false)
    ?(verify_each = false) ~file source =
  Trace.with_span "front-end" ~args:[ ("file", Trace.Str file) ] @@ fun () ->
  let prog = Nova.Parser.parse_string ~file source in
  let source_stats = Nova.Stats.of_program ~source prog in
  let tprog = Nova.Typecheck.check_program ~entry prog in
  let term =
    Trace.with_span "cps-convert" (fun () ->
        Cps.Convert.convert_program ~entry_args tprog)
  in
  let size_initial = Cps.Ir.size term in
  (match Cps.Ir.check_ssa term with
  | Ok () -> ()
  | Error e -> Diag.ice "CPS conversion broke SSA: %s" e);
  (* [verify_each]: after every middle-end pass, re-check the structural
     invariants the ILP model assumes and diff the interpreter's verdict
     against the pass's input, attributing any breakage to the pass that
     introduced it. *)
  let verify ~pass ~stage t =
    if verify_each then
      Trace.with_span "verify" ~args:[ ("pass", Trace.Str pass) ] (fun () ->
          Cps.Verify.check_exn ~pass ~stage t)
  in
  let differential ~pass before after =
    if verify_each then
      Trace.with_span "verify-differential"
        ~args:[ ("pass", Trace.Str pass) ]
        (fun () -> Cps.Verify.differential_exn ~pass before after)
  in
  verify ~pass:"cps-convert" ~stage:Cps.Verify.After_convert term;
  let contracted = Trace.with_span "contract" (fun () -> Cps.Contract.simplify term) in
  verify ~pass:"contract" ~stage:Cps.Verify.After_contract contracted;
  differential ~pass:"contract" term contracted;
  let deprocd = Trace.with_span "deproc" (fun () -> Cps.Deproc.run contracted) in
  verify ~pass:"deproc" ~stage:Cps.Verify.After_deproc deprocd;
  differential ~pass:"deproc" contracted deprocd;
  let term = Trace.with_span "ssu" (fun () -> Cps.Ssu.run deprocd) in
  (match Cps.Ir.check_ssa term with
  | Ok () -> ()
  | Error e -> Diag.ice "SSU broke SSA: %s" e);
  verify ~pass:"ssu" ~stage:Cps.Verify.After_ssu term;
  differential ~pass:"ssu" deprocd term;
  let graph = Trace.with_span "isel" (fun () -> Cps.Isel.run term) in
  let graph = if rematerialize then Cps.Isel.share_constants graph else graph in
  if verify_each then
    Trace.with_span "verify" ~args:[ ("pass", Trace.Str "isel") ] (fun () ->
        Ixp.Verify_virtual.check_exn ~pass:"isel" graph);
  {
    f_tprog = tprog;
    f_source = source_stats;
    f_term = term;
    f_size_initial = size_initial;
    f_graph = graph;
  }

(* Map an emitted block label back to the source function it was lowered
   from.  Labels are printed idents, "<base>_<stamp>", whose base is the
   function's source name possibly extended with derivation suffixes
   (SSU clones print as "f.c1", inlined continuations as "k.phi", ...).
   Continuation blocks (loop headers, join points, return continuations)
   have fabricated bases and map to no location -- diagnostics on them
   fall back to the dummy location but still carry the block label. *)
let provenance_of_tprog (tprog : Nova.Tast.tprogram) :
    string -> Srcloc.t option =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (f : Nova.Tast.tfun) ->
      Hashtbl.replace by_name f.Nova.Tast.f_name f.Nova.Tast.f_body.Nova.Tast.loc)
    tprog.Nova.Tast.funs;
  fun label ->
    let base =
      match String.rindex_opt label '_' with
      | Some i -> String.sub label 0 i
      | None -> label
    in
    let root =
      match String.index_opt base '.' with
      | Some i -> String.sub base 0 i
      | None -> base
    in
    Hashtbl.find_opt by_name root

(* The allocator is parameterized over how a model variant is built and
   solved so the incremental driver below can interpose its stage cache;
   [variant] names which model flavor is being requested ("nospill",
   "spill", "remat") and doubles as a cache-key component. *)
type model_solve =
  variant:string ->
  Ident.t Ixp.Flowgraph.t ->
  Modelgen.t * (Ilp.solution, [ `Infeasible | `Limit ]) result

let build_variant ~variant graph =
  match variant with
  | "remat" -> Modelgen.build ~allow_spill:false ~rematerialize:true graph
  | "nospill" -> Modelgen.build ~allow_spill:false graph
  | "spill" -> Modelgen.build ~allow_spill:true graph
  | v -> Diag.ice "unknown model variant %S" v

let direct_model_solve (options : options) : model_solve =
 fun ~variant graph ->
  let mg = build_variant ~variant graph in
  let ilp =
    Trace.with_span "ilp-build" (fun () ->
        Ilp.build ~objective_mode:options.objective mg)
  in
  ( mg,
    Trace.with_span "solve" (fun () ->
        Ilp.solve ~time_limit:options.time_limit ~node_limit:options.node_limit
          ~rel_gap:options.rel_gap ~domains:options.solver_domains
          ~deterministic:options.solver_deterministic ilp) )

let allocate_with ~(model_solve : model_solve) (options : options)
    (front : front) : compiled =
  Trace.with_span "allocate" @@ fun () ->
  (* When branch&bound hits its budget with a feasible incumbent in
     hand, that incumbent is used: it is a valid (machine-checked)
     allocation, merely without the optimality certificate.  The
     [solver_outcome] in the stats records that the budget bit. *)
  let of_solution mg sol =
    let outcome =
      match sol.Ilp.result.Lp.Mip.status with
      | Lp.Mip.Limit -> Outcome_incumbent
      | _ -> Outcome_optimal
    in
    (mg, Assignment.of_ilp sol, Some sol.Ilp.result.Lp.Mip.stats, outcome)
  in
  (* No incumbent within the budget: either emit the baseline heuristic
     allocation (recording the fallback) or fail loudly. *)
  let limit_fallback () =
    if options.limit_fallback then begin
      let mg = Modelgen.build front.f_graph in
      (mg, Baseline.build mg, None, Outcome_fallback)
    end
    else raise (Allocation_failed "MIP solver hit its limit")
  in
  let mg, assignment, mip_stats, outcome =
    match options.allocator with
    | Baseline_allocator ->
        let mg = Modelgen.build front.f_graph in
        (mg, Baseline.build mg, None, Outcome_heuristic)
    | Ilp_allocator when options.rematerialize -> (
        let mg, solved = model_solve ~variant:"remat" front.f_graph in
        match solved with
        | Ok sol -> of_solution mg sol
        | Error `Limit -> limit_fallback ()
        | Error `Infeasible ->
            raise (Allocation_failed "remat model infeasible"))
    | Ilp_allocator -> (
        (* spill-free model first (paper §11): much smaller; fall back to
           the full model with scratch enabled only when infeasible *)
        let mg, solved = model_solve ~variant:"nospill" front.f_graph in
        match solved with
        | Ok sol -> of_solution mg sol
        | Error `Limit -> limit_fallback ()
        | Error `Infeasible -> (
            let mg, solved = model_solve ~variant:"spill" front.f_graph in
            match solved with
            | Ok sol -> of_solution mg sol
            | Error `Infeasible ->
                raise (Allocation_failed "ILP model is infeasible")
            | Error `Limit -> limit_fallback ()))
  in
  if options.validate then begin
    match Trace.with_span "validate" (fun () -> Assignment.validate assignment)
    with
    | [] -> ()
    | errs ->
        raise
          (Allocation_failed
             (Fmt.str "assignment invalid:@.%a"
                Fmt.(list ~sep:cut string)
                errs))
  end;
  let emitted = Trace.with_span "emit" (fun () -> Emit.run assignment) in
  if options.validate then begin
    match
      Trace.with_span "machine-check" (fun () ->
          Ixp.Checker.check
            ~provenance:(provenance_of_tprog front.f_tprog)
            emitted.Emit.physical)
    with
    | [] -> ()
    | vs ->
        raise
          (Allocation_failed
             (Fmt.str "machine check failed:@.%a"
                Fmt.(list ~sep:cut Ixp.Checker.pp_violation)
                vs))
  end;
  let weighted =
    match outcome with
    | Outcome_heuristic | Outcome_fallback ->
        snd (Baseline.move_cost assignment)
    | Outcome_optimal | Outcome_incumbent ->
        (* recompute from the assignment for comparability *)
        let total = ref 0. in
        Array.iteri
          (fun p _ ->
            List.iter
              (fun (_, b1, b2) ->
                total :=
                  !total
                  +. mg.Modelgen.weights.(p)
                     *. Ixp.Bank.move_cost ~src:b1 ~dst:b2 ())
              (assignment.Assignment.moves_at p))
          mg.Modelgen.points;
        !total
  in
  {
    options;
    tprog = front.f_tprog;
    cps_term = front.f_term;
    virtual_graph = front.f_graph;
    mg;
    assignment;
    physical = emitted.Emit.physical;
    stats =
      {
        source = front.f_source;
        cps_size_initial = front.f_size_initial;
        cps_size_optimized = Cps.Ir.size front.f_term;
        virtual_blocks = Ixp.Flowgraph.num_blocks front.f_graph;
        virtual_insns = Ixp.Flowgraph.num_insns front.f_graph;
        coloring = Modelgen.coloring_stats mg;
        mip = mip_stats;
        solver_outcome = outcome;
        moves_inserted = emitted.Emit.moves_inserted;
        spills_inserted = emitted.Emit.spills_inserted;
        weighted_move_cost = weighted;
      };
  }

let allocate (options : options) (front : front) : compiled =
  allocate_with ~model_solve:(direct_model_solve options) options front

let compile ?(options = default_options) ~file source =
  Trace.with_span "compile" ~args:[ ("file", Trace.Str file) ] @@ fun () ->
  let front =
    front_end ~entry:options.entry ~entry_args:options.entry_args
      ~rematerialize:options.rematerialize ~verify_each:options.verify_each
      ~file source
  in
  allocate options front

(* ------------------------------------------------------------------ *)
(* Incremental compilation: stage-cached driver                        *)
(* ------------------------------------------------------------------ *)

(* [compile_incremental] runs the same pipeline as [compile] but makes
   every stage boundary cacheable:

     front    source text + front options        -> front IR (memo)
     model    front key + variant + objective    -> Modelgen/ILP (memo)
     solve    model fingerprint + solve options  -> MIP result (disk)
     full     front key + all options            -> compiled (memo)

   The front and model stages hold OCaml IR (ident-stamped graphs,
   hashtables keyed by idents) that has no faithful JSON form, so their
   replay is by in-process memo -- which is exactly the hot path of
   `novac serve`; on disk they leave provenance stamps only.  The solve
   stage is where the time goes, and its artifact *is* fully
   serializable: the MIP solution and warm-start data keyed by
   canonical variable names ([Modelhash]), so a fresh process that
   rebuilds the front and model cheaply can still skip branch and bound
   entirely when the model fingerprint matches.

   On a solve miss, the previous solve of the same (file, variant,
   objective) -- located through a store head pointer -- seeds a warm
   start: its solution becomes the incumbent hints and its pseudocost
   table primes branching ([Lp.Mip.warm_start]).  Values map by
   canonical name, so hints survive ident-stamp drift and partial model
   changes; unmappable names are simply dropped.

   Replayed solves are re-validated: the stored solution must be
   feasible on the freshly built instance and reproduce the stored
   objective, otherwise the artifact is ignored and the solve runs
   live.  Downstream validation (assignment + machine check) still runs
   on every path, so a stale artifact can never emit an illegal
   program. *)

type cache_report = {
  front_hit : bool; (* front IR replayed from the in-process memo *)
  model_hit : bool; (* Modelgen/ILP build replayed from the memo *)
  solve_hit : bool; (* MIP solution replayed from an artifact *)
  full_hit : bool; (* whole compile replayed (no stage ran at all) *)
  warm_used : bool; (* live solve seeded its incumbent from a warm start *)
  model_fingerprint : string; (* structural hash of the solved model *)
}

let cold_report =
  {
    front_hit = false;
    model_hit = false;
    solve_hit = false;
    full_hit = false;
    warm_used = false;
    model_fingerprint = "";
  }

(* Shared with [Cache.Store]'s instruments: the registry dedups by
   name, so memo hits and store hits accumulate into the same lines. *)
let m_hit = Metrics.counter "cache.hit"
let m_miss = Metrics.counter "cache.miss"
let m_evict = Metrics.counter "cache.evict"

let obj_tag = function
  | Ilp.Minimize_moves -> "moves"
  | Ilp.Spill_feasibility -> "spillfeas"

(* Options fingerprints.  [fp_front] covers exactly what [front_end]
   reads; [fp_solve] covers the solver budget and gap (worker-domain
   count and the deterministic schedule change the search path, not
   what a returned proof means, so they are deliberately excluded --
   a proven optimum is replayable regardless of how many domains found
   it); [fp_alloc] covers everything else that shapes [compiled]. *)
let fp_front (o : options) =
  Cache.Key.combine
    [
      "front:v1";
      o.entry;
      String.concat "," (List.map string_of_int o.entry_args);
      string_of_bool o.rematerialize;
      string_of_bool o.verify_each;
    ]

let front_key (o : options) source =
  Cache.Key.combine [ Cache.Key.text source; fp_front o ]

let fp_solve (o : options) =
  Cache.Key.combine
    [
      "solve:v1";
      Printf.sprintf "%.17g" o.time_limit;
      string_of_int o.node_limit;
      Printf.sprintf "%.17g" o.rel_gap;
    ]

let fp_alloc (o : options) =
  Cache.Key.combine
    [
      "alloc:v1";
      (match o.allocator with
      | Ilp_allocator -> "ilp"
      | Baseline_allocator -> "baseline");
      obj_tag o.objective;
      fp_solve o;
      string_of_bool o.limit_fallback;
      string_of_bool o.validate;
    ]

(* In-process memos.  Small and process-global: the daemon's hot cache.
   Eviction is size-capped and bumps the shared cache.evict counter. *)
let memo_cap = 8

let memo_front : (string, front) Hashtbl.t = Hashtbl.create 8

type model_entry = {
  me_graph : Ident.t Ixp.Flowgraph.t; (* identity guard, see below *)
  me_mg : Modelgen.t;
  me_ilp : Ilp.t;
  me_fp : string;
}

let memo_model : (string, model_entry) Hashtbl.t = Hashtbl.create 8
let memo_full : (string, compiled * cache_report) Hashtbl.t = Hashtbl.create 8

let memo_trim (tbl : (string, 'a) Hashtbl.t) =
  let excess = Hashtbl.length tbl - memo_cap in
  if excess > 0 then begin
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
    List.iteri
      (fun i k ->
        if i < excess then begin
          Hashtbl.remove tbl k;
          Metrics.incr m_evict
        end)
      keys
  end

(* Reset the in-process memos (tests; `novac serve` cache control). *)
let clear_memos () =
  Hashtbl.reset memo_front;
  Hashtbl.reset memo_model;
  Hashtbl.reset memo_full

(* ---------------- solve artifacts ---------------- *)

let status_to_string = function
  | Lp.Mip.Optimal -> "optimal"
  | Lp.Mip.Limit -> "limit"
  | Lp.Mip.Infeasible -> "infeasible"

let solve_artifact_of_result ~names (r : Lp.Mip.result) : Json.t =
  Json.Obj
    [
      ("status", Json.Str (status_to_string r.Lp.Mip.status));
      ("objective", Json.Num r.Lp.Mip.objective);
      ("best_bound", Json.Num r.Lp.Mip.stats.Lp.Mip.best_bound);
      ("nodes", Json.Num (float_of_int r.Lp.Mip.stats.Lp.Mip.nodes));
      ( "iters",
        Json.Num (float_of_int r.Lp.Mip.stats.Lp.Mip.simplex_iterations) );
      ("root_time", Json.Num r.Lp.Mip.stats.Lp.Mip.root_time);
      ("total_time", Json.Num r.Lp.Mip.stats.Lp.Mip.total_time);
      ("root_objective", Json.Num r.Lp.Mip.stats.Lp.Mip.root_objective);
      ("solution", Modelhash.solution_to_json ~names r.Lp.Mip.solution);
      ("ws", Modelhash.ws_to_json ~names r.Lp.Mip.ws_out);
    ]

let num_field doc name ~default =
  match Json.member name doc with
  | Some v -> Option.value ~default (Json.to_float v)
  | None -> default

(* Rebuild an [Ilp.solution] from a stored artifact, or refuse.  The
   mapped solution must be feasible on this instance and reproduce the
   stored objective -- anything else means the artifact belongs to a
   different model than the fingerprint claimed. *)
let replay_solve (ilp : Ilp.t) ~index (doc : Json.t) :
    (Ilp.solution, [ `Infeasible | `Limit ]) result option =
  let p = ilp.Ilp.instance.Ampl.Model.problem in
  let status =
    Option.bind (Json.member "status" doc) Json.to_string
    |> Option.value ~default:""
  in
  match status with
  | "infeasible" -> Some (Error `Infeasible)
  | "limit-no-incumbent" -> Some (Error `Limit)
  | "optimal" | "limit" -> (
      match
        Option.bind (Json.member "solution" doc)
          (Modelhash.solution_of_json ~index ~n:(Lp.Problem.num_vars p))
      with
      | None -> None
      | Some x ->
          let stored_obj = num_field doc "objective" ~default:nan in
          let obj = Lp.Problem.objective_value p x in
          if
            (not (Lp.Problem.check_feasible p x))
            || Float.is_nan stored_obj
            || Float.abs (obj -. stored_obj)
               > 1e-6 *. (1. +. Float.abs stored_obj)
          then None
          else begin
            let ws_out =
              match Json.member "ws" doc with
              | Some w -> Modelhash.ws_of_json ~index w
              | None -> Lp.Mip.no_warm_start
            in
            let stats =
              {
                Lp.Mip.default_stats with
                Lp.Mip.nodes = int_of_float (num_field doc "nodes" ~default:0.);
                simplex_iterations =
                  int_of_float (num_field doc "iters" ~default:0.);
                root_time = num_field doc "root_time" ~default:0.;
                total_time = num_field doc "total_time" ~default:0.;
                root_objective = num_field doc "root_objective" ~default:nan;
                best_bound = num_field doc "best_bound" ~default:stored_obj;
                incumbent_source = "cache";
              }
            in
            let result =
              {
                Lp.Mip.status =
                  (if status = "optimal" then Lp.Mip.Optimal else Lp.Mip.Limit);
                objective = stored_obj;
                solution = x;
                stats;
                ws_out;
              }
            in
            Some (Ok { Ilp.assignment = x; result; ilp })
          end)
  | _ -> None

(* ---------------- the cached model+solve hook ---------------- *)

let cached_model_solve ~(store : Cache.Store.t) ~file ~key_front
    ~(report_model_hit : unit -> unit) ~(report_solve_hit : unit -> unit)
    ~(report_warm : unit -> unit) ~(report_fp : string -> unit)
    (options : options) : model_solve =
 fun ~variant graph ->
  (* model stage: memo keyed by (front key, variant, objective); the
     stored entry is only valid for the very front object it was built
     from (ident stamps!), so a physical-identity guard backs the key *)
  let mk = Cache.Key.combine [ key_front; variant; obj_tag options.objective ] in
  let entry =
    match Hashtbl.find_opt memo_model mk with
    | Some e when e.me_graph == graph ->
        report_model_hit ();
        Metrics.incr m_hit;
        e
    | _ ->
        Metrics.incr m_miss;
        let mg = build_variant ~variant graph in
        let ilp =
          Trace.with_span "ilp-build" (fun () ->
              Ilp.build ~objective_mode:options.objective mg)
        in
        let fp =
          Trace.with_span "model-fingerprint" (fun () ->
              Modelhash.fingerprint ilp.Ilp.instance.Ampl.Model.problem)
        in
        let e = { me_graph = graph; me_mg = mg; me_ilp = ilp; me_fp = fp } in
        Hashtbl.replace memo_model mk e;
        memo_trim memo_model;
        let st = Lp.Problem.stats ilp.Ilp.instance.Ampl.Model.problem in
        Cache.Store.store store ~stage:"model" ~key:mk
          (Json.Obj
             [
               ("fingerprint", Json.Str fp);
               ("vars", Json.Num (float_of_int st.Lp.Problem.n_vars));
               ("rows", Json.Num (float_of_int st.Lp.Problem.n_rows));
             ]);
        e
  in
  report_fp entry.me_fp;
  let ilp = entry.me_ilp in
  let problem = ilp.Ilp.instance.Ampl.Model.problem in
  let names = Modelhash.canonical_names problem in
  let index = Modelhash.index_of_canonical names in
  let key_solve =
    Cache.Key.combine [ "solve:v1"; entry.me_fp; fp_solve options ]
  in
  let head_name =
    Printf.sprintf "solve-%s-%s-%s" file variant (obj_tag options.objective)
  in
  let live () =
    (* warm start from the previous solve of this target, if any *)
    let warm =
      match Cache.Store.head store ~name:head_name with
      | Some prev_key when prev_key <> key_solve -> (
          match Cache.Store.lookup store ~stage:"solve" ~key:prev_key with
          | Some doc -> (
              match Json.member "ws" doc with
              | Some w -> Modelhash.ws_of_json ~index w
              | None -> Lp.Mip.no_warm_start)
          | None -> Lp.Mip.no_warm_start)
      | _ -> Lp.Mip.no_warm_start
    in
    let solved =
      Trace.with_span "solve" (fun () ->
          Ilp.solve ~time_limit:options.time_limit
            ~node_limit:options.node_limit ~rel_gap:options.rel_gap
            ~domains:options.solver_domains
            ~deterministic:options.solver_deterministic ~warm ilp)
    in
    let artifact =
      match solved with
      | Ok sol ->
          if sol.Ilp.result.Lp.Mip.stats.Lp.Mip.warm_start_used then
            report_warm ();
          Some (solve_artifact_of_result ~names sol.Ilp.result)
      | Error `Infeasible ->
          Some (Json.Obj [ ("status", Json.Str "infeasible") ])
      | Error `Limit ->
          (* budget exhausted with no incumbent: cache the outcome so an
             identical budget is not re-burned, but leave no head (there
             is nothing to warm-start from) *)
          Some (Json.Obj [ ("status", Json.Str "limit-no-incumbent") ])
    in
    Option.iter
      (fun doc ->
        Cache.Store.store store ~stage:"solve" ~key:key_solve doc;
        match solved with
        | Ok _ -> Cache.Store.set_head store ~name:head_name ~key:key_solve
        | Error _ -> ())
      artifact;
    (entry.me_mg, solved)
  in
  match Cache.Store.lookup store ~stage:"solve" ~key:key_solve with
  | Some doc -> (
      match replay_solve ilp ~index doc with
      | Some solved ->
          report_solve_hit ();
          (entry.me_mg, solved)
      | None ->
          (* fingerprint collision or corrupt artifact: solve live *)
          live ())
  | None -> live ()

(* ---------------- entry point ---------------- *)

let compile_incremental ?(options = default_options) ?store ~file source :
    compiled * cache_report =
  let store =
    match store with Some s -> s | None -> Cache.Store.create ()
  in
  Trace.with_span "compile-incremental" ~args:[ ("file", Trace.Str file) ]
  @@ fun () ->
  let kf = front_key options source in
  let kfull = Cache.Key.combine [ kf; fp_alloc options ] in
  match Hashtbl.find_opt memo_full kfull with
  | Some (c, r) ->
      Metrics.incr m_hit;
      ( c,
        {
          r with
          front_hit = true;
          model_hit = true;
          solve_hit = true;
          full_hit = true;
          warm_used = false;
        } )
  | None ->
      Metrics.incr m_miss;
      let front_hit = ref false
      and model_hit = ref false
      and solve_hit = ref false
      and warm_used = ref false
      and model_fp = ref "" in
      let front =
        match Hashtbl.find_opt memo_front kf with
        | Some f ->
            front_hit := true;
            Metrics.incr m_hit;
            f
        | None ->
            Metrics.incr m_miss;
            let f =
              front_end ~entry:options.entry ~entry_args:options.entry_args
                ~rematerialize:options.rematerialize
                ~verify_each:options.verify_each ~file source
            in
            Hashtbl.replace memo_front kf f;
            memo_trim memo_front;
            (* provenance stamp: front IR itself is memo-only *)
            Cache.Store.store store ~stage:"front" ~key:kf
              (Json.Obj
                 [
                   ("file", Json.Str file);
                   ( "cps_size",
                     Json.Num (float_of_int (Cps.Ir.size f.f_term)) );
                   ( "blocks",
                     Json.Num
                       (float_of_int (Ixp.Flowgraph.num_blocks f.f_graph)) );
                 ]);
            f
      in
      let model_solve =
        cached_model_solve ~store ~file ~key_front:kf
          ~report_model_hit:(fun () -> model_hit := true)
          ~report_solve_hit:(fun () -> solve_hit := true)
          ~report_warm:(fun () -> warm_used := true)
          ~report_fp:(fun fp -> model_fp := fp)
          options
      in
      let compiled = allocate_with ~model_solve options front in
      let report =
        {
          front_hit = !front_hit;
          model_hit = !model_hit;
          solve_hit = !solve_hit;
          full_hit = false;
          warm_used = !warm_used;
          model_fingerprint = !model_fp;
        }
      in
      Hashtbl.replace memo_full kfull (compiled, report);
      memo_trim memo_full;
      (compiled, report)

(* Static-analysis lint over a compiled program: cross-context races,
   machine-level validation, dead stores (see [Analysis.Lint]), plus the
   assignment-level translation validation of [Validate].  The scratch
   result area, which every compiled program's contexts intentionally
   share for their observable outputs, is whitelisted by default. *)
let result_area_region =
  Analysis.Race.region ~name:"result-area" ~space:Ixp.Insn.Scratch
    ~base:(Cps.Isel.result_addr_bytes Ixp.Memory.default_config)
    ~words:Cps.Isel.result_words Analysis.Race.Shared_write

let lint ?(regions = []) (c : compiled) : Analysis.Lint.report =
  Trace.with_span "lint-driver" @@ fun () ->
  let report =
    Analysis.Lint.run
      ~regions:(result_area_region :: regions)
      ~provenance:(provenance_of_tprog c.tprog) ~virtual_graph:c.virtual_graph
      ~physical:c.physical ()
  in
  let vreport = Trace.with_span "lint-assignment" (fun () -> Validate.check c.assignment) in
  let assignment_findings =
    List.map
      (fun e ->
        Analysis.Lint.finding ~severity:Diag.Error ~tag:"assignment"
          ~loc:Srcloc.dummy ~block:"<assignment>" "%s" e)
      vreport.Validate.errors
  in
  { report with Analysis.Lint.findings = report.Analysis.Lint.findings @ assignment_findings }

(* Convenience: run the compiled program on the simulator and return the
   observable results from the scratch result area. *)
let simulate ?(threads = 1) ?(init = fun (_ : Ixp.Simulator.t) -> ())
    (c : compiled) =
  let sim = Ixp.Simulator.create ~threads c.physical in
  init sim;
  let cycles = Ixp.Simulator.run_single sim in
  let mem = Ixp.Simulator.shared_memory sim in
  let base = Cps.Isel.result_addr_bytes Ixp.Memory.default_config / 4 in
  let results =
    Array.init Cps.Isel.result_words (fun i ->
        Ixp.Memory.peek mem Ixp.Insn.Scratch (base + i))
  in
  (cycles, results, sim)

(* Reference semantics via the CPS interpreter, for equivalence tests. *)
let interpret ?(init = fun (_ : Cps.Interp.state) -> ()) (c : compiled) =
  let st = Cps.Interp.create () in
  init st;
  let result = Cps.Interp.run st Ident.Map.empty c.cps_term in
  (result, st)
