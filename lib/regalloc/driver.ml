(* End-to-end compilation driver: Nova source -> physical IXP program.

   Pipeline (paper §4, §5):
     parse -> typecheck -> CPS conversion -> CPS optimization ->
     de-proceduralization -> SSU cloning -> instruction selection ->
     model generation -> ILP (or baseline heuristic) -> solution
     application -> machine-legality check. *)

open Support

type allocator = Ilp_allocator | Baseline_allocator

type options = {
  allocator : allocator;
  objective : Ilp.objective_mode;
  time_limit : float; (* branch&bound wall-clock budget, seconds *)
  node_limit : int; (* branch&bound node budget (deterministic) *)
  rel_gap : float;
  solver_domains : int; (* worker domains for parallel branch&bound *)
  solver_deterministic : bool;
      (* fixed node-distribution schedule: reproducible node counts at
         the cost of slightly less pruning (only matters when
         solver_domains >= 2) *)
  limit_fallback : bool;
      (* when the solver exhausts its budget without an incumbent, emit
         the baseline heuristic allocation instead of failing *)
  entry : string;
  entry_args : int list;
  validate : bool; (* run Assignment.validate and Checker *)
  verify_each : bool; (* re-verify IR invariants after every CPS pass *)
  rematerialize : bool; (* §12: constants through the virtual bank C *)
}

let default_options =
  {
    allocator = Ilp_allocator;
    objective = Ilp.Minimize_moves;
    time_limit = 300.;
    node_limit = 500_000;
    rel_gap = 1e-4;
    solver_domains = 1;
    solver_deterministic = false;
    limit_fallback = true;
    entry = "main";
    entry_args = [];
    validate = true;
    verify_each = true;
    rematerialize = false;
  }

(* How the emitted allocation was obtained -- in particular, whether a
   solver budget cut the search short and what was emitted instead of a
   proven-optimal solution. *)
type solver_outcome =
  | Outcome_heuristic (* baseline allocator was requested *)
  | Outcome_optimal (* ILP solved to (gap-)optimality *)
  | Outcome_incumbent (* budget hit; best incumbent emitted *)
  | Outcome_fallback (* budget hit with no incumbent; baseline emitted *)

let solver_outcome_to_string = function
  | Outcome_heuristic -> "heuristic"
  | Outcome_optimal -> "optimal"
  | Outcome_incumbent -> "incumbent (budget hit)"
  | Outcome_fallback -> "baseline fallback (budget hit)"

type stats = {
  source : Nova.Stats.t;
  cps_size_initial : int;
  cps_size_optimized : int;
  virtual_blocks : int;
  virtual_insns : int;
  coloring : Modelgen.coloring_stats;
  mip : Lp.Mip.stats option; (* None for the baseline *)
  solver_outcome : solver_outcome;
  moves_inserted : int;
  spills_inserted : int;
  weighted_move_cost : float;
}

type compiled = {
  options : options;
  tprog : Nova.Tast.tprogram;
  cps_term : Cps.Ir.term; (* after all CPS phases, pre-isel *)
  virtual_graph : Ident.t Ixp.Flowgraph.t;
  mg : Modelgen.t;
  assignment : Assignment.t;
  physical : Ixp.Reg.t Ixp.Flowgraph.t;
  stats : stats;
}

exception Allocation_failed of string

(* Front half: source -> virtual flowgraph.  Shared by all allocators and
   by benchmarks that only need model statistics. *)
type front = {
  f_tprog : Nova.Tast.tprogram;
  f_source : Nova.Stats.t;
  f_term : Cps.Ir.term;
  f_size_initial : int;
  f_graph : Ident.t Ixp.Flowgraph.t;
}

let front_end ?(entry = "main") ?(entry_args = []) ?(rematerialize = false)
    ?(verify_each = false) ~file source =
  Trace.with_span "front-end" ~args:[ ("file", Trace.Str file) ] @@ fun () ->
  let prog = Nova.Parser.parse_string ~file source in
  let source_stats = Nova.Stats.of_program ~source prog in
  let tprog = Nova.Typecheck.check_program ~entry prog in
  let term =
    Trace.with_span "cps-convert" (fun () ->
        Cps.Convert.convert_program ~entry_args tprog)
  in
  let size_initial = Cps.Ir.size term in
  (match Cps.Ir.check_ssa term with
  | Ok () -> ()
  | Error e -> Diag.ice "CPS conversion broke SSA: %s" e);
  (* [verify_each]: after every middle-end pass, re-check the structural
     invariants the ILP model assumes and diff the interpreter's verdict
     against the pass's input, attributing any breakage to the pass that
     introduced it. *)
  let verify ~pass ~stage t =
    if verify_each then
      Trace.with_span "verify" ~args:[ ("pass", Trace.Str pass) ] (fun () ->
          Cps.Verify.check_exn ~pass ~stage t)
  in
  let differential ~pass before after =
    if verify_each then
      Trace.with_span "verify-differential"
        ~args:[ ("pass", Trace.Str pass) ]
        (fun () -> Cps.Verify.differential_exn ~pass before after)
  in
  verify ~pass:"cps-convert" ~stage:Cps.Verify.After_convert term;
  let contracted = Trace.with_span "contract" (fun () -> Cps.Contract.simplify term) in
  verify ~pass:"contract" ~stage:Cps.Verify.After_contract contracted;
  differential ~pass:"contract" term contracted;
  let deprocd = Trace.with_span "deproc" (fun () -> Cps.Deproc.run contracted) in
  verify ~pass:"deproc" ~stage:Cps.Verify.After_deproc deprocd;
  differential ~pass:"deproc" contracted deprocd;
  let term = Trace.with_span "ssu" (fun () -> Cps.Ssu.run deprocd) in
  (match Cps.Ir.check_ssa term with
  | Ok () -> ()
  | Error e -> Diag.ice "SSU broke SSA: %s" e);
  verify ~pass:"ssu" ~stage:Cps.Verify.After_ssu term;
  differential ~pass:"ssu" deprocd term;
  let graph = Trace.with_span "isel" (fun () -> Cps.Isel.run term) in
  let graph = if rematerialize then Cps.Isel.share_constants graph else graph in
  if verify_each then
    Trace.with_span "verify" ~args:[ ("pass", Trace.Str "isel") ] (fun () ->
        Ixp.Verify_virtual.check_exn ~pass:"isel" graph);
  {
    f_tprog = tprog;
    f_source = source_stats;
    f_term = term;
    f_size_initial = size_initial;
    f_graph = graph;
  }

(* Map an emitted block label back to the source function it was lowered
   from.  Labels are printed idents, "<base>_<stamp>", whose base is the
   function's source name possibly extended with derivation suffixes
   (SSU clones print as "f.c1", inlined continuations as "k.phi", ...).
   Continuation blocks (loop headers, join points, return continuations)
   have fabricated bases and map to no location -- diagnostics on them
   fall back to the dummy location but still carry the block label. *)
let provenance_of_tprog (tprog : Nova.Tast.tprogram) :
    string -> Srcloc.t option =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun (f : Nova.Tast.tfun) ->
      Hashtbl.replace by_name f.Nova.Tast.f_name f.Nova.Tast.f_body.Nova.Tast.loc)
    tprog.Nova.Tast.funs;
  fun label ->
    let base =
      match String.rindex_opt label '_' with
      | Some i -> String.sub label 0 i
      | None -> label
    in
    let root =
      match String.index_opt base '.' with
      | Some i -> String.sub base 0 i
      | None -> base
    in
    Hashtbl.find_opt by_name root

let allocate (options : options) (front : front) : compiled =
  Trace.with_span "allocate" @@ fun () ->
  let solve_ilp mg =
    let ilp =
      Trace.with_span "ilp-build" (fun () ->
          Ilp.build ~objective_mode:options.objective mg)
    in
    Trace.with_span "solve" (fun () ->
        Ilp.solve ~time_limit:options.time_limit ~node_limit:options.node_limit
          ~rel_gap:options.rel_gap ~domains:options.solver_domains
          ~deterministic:options.solver_deterministic ilp)
  in
  (* When branch&bound hits its budget with a feasible incumbent in
     hand, that incumbent is used: it is a valid (machine-checked)
     allocation, merely without the optimality certificate.  The
     [solver_outcome] in the stats records that the budget bit. *)
  let of_solution mg sol =
    let outcome =
      match sol.Ilp.result.Lp.Mip.status with
      | Lp.Mip.Limit -> Outcome_incumbent
      | _ -> Outcome_optimal
    in
    (mg, Assignment.of_ilp sol, Some sol.Ilp.result.Lp.Mip.stats, outcome)
  in
  (* No incumbent within the budget: either emit the baseline heuristic
     allocation (recording the fallback) or fail loudly. *)
  let limit_fallback () =
    if options.limit_fallback then begin
      let mg = Modelgen.build front.f_graph in
      (mg, Baseline.build mg, None, Outcome_fallback)
    end
    else raise (Allocation_failed "MIP solver hit its limit")
  in
  let mg, assignment, mip_stats, outcome =
    match options.allocator with
    | Baseline_allocator ->
        let mg = Modelgen.build front.f_graph in
        (mg, Baseline.build mg, None, Outcome_heuristic)
    | Ilp_allocator when options.rematerialize -> (
        let mg =
          Modelgen.build ~allow_spill:false ~rematerialize:true front.f_graph
        in
        match solve_ilp mg with
        | Ok sol -> of_solution mg sol
        | Error `Limit -> limit_fallback ()
        | Error `Infeasible ->
            raise (Allocation_failed "remat model infeasible"))
    | Ilp_allocator -> (
        (* spill-free model first (paper §11): much smaller; fall back to
           the full model with scratch enabled only when infeasible *)
        let mg = Modelgen.build ~allow_spill:false front.f_graph in
        match solve_ilp mg with
        | Ok sol -> of_solution mg sol
        | Error `Limit -> limit_fallback ()
        | Error `Infeasible -> (
            let mg = Modelgen.build ~allow_spill:true front.f_graph in
            match solve_ilp mg with
            | Ok sol -> of_solution mg sol
            | Error `Infeasible ->
                raise (Allocation_failed "ILP model is infeasible")
            | Error `Limit -> limit_fallback ()))
  in
  if options.validate then begin
    match Trace.with_span "validate" (fun () -> Assignment.validate assignment)
    with
    | [] -> ()
    | errs ->
        raise
          (Allocation_failed
             (Fmt.str "assignment invalid:@.%a"
                Fmt.(list ~sep:cut string)
                errs))
  end;
  let emitted = Trace.with_span "emit" (fun () -> Emit.run assignment) in
  if options.validate then begin
    match
      Trace.with_span "machine-check" (fun () ->
          Ixp.Checker.check
            ~provenance:(provenance_of_tprog front.f_tprog)
            emitted.Emit.physical)
    with
    | [] -> ()
    | vs ->
        raise
          (Allocation_failed
             (Fmt.str "machine check failed:@.%a"
                Fmt.(list ~sep:cut Ixp.Checker.pp_violation)
                vs))
  end;
  let weighted =
    match outcome with
    | Outcome_heuristic | Outcome_fallback ->
        snd (Baseline.move_cost assignment)
    | Outcome_optimal | Outcome_incumbent ->
        (* recompute from the assignment for comparability *)
        let total = ref 0. in
        Array.iteri
          (fun p _ ->
            List.iter
              (fun (_, b1, b2) ->
                total :=
                  !total
                  +. mg.Modelgen.weights.(p)
                     *. Ixp.Bank.move_cost ~src:b1 ~dst:b2 ())
              (assignment.Assignment.moves_at p))
          mg.Modelgen.points;
        !total
  in
  {
    options;
    tprog = front.f_tprog;
    cps_term = front.f_term;
    virtual_graph = front.f_graph;
    mg;
    assignment;
    physical = emitted.Emit.physical;
    stats =
      {
        source = front.f_source;
        cps_size_initial = front.f_size_initial;
        cps_size_optimized = Cps.Ir.size front.f_term;
        virtual_blocks = Ixp.Flowgraph.num_blocks front.f_graph;
        virtual_insns = Ixp.Flowgraph.num_insns front.f_graph;
        coloring = Modelgen.coloring_stats mg;
        mip = mip_stats;
        solver_outcome = outcome;
        moves_inserted = emitted.Emit.moves_inserted;
        spills_inserted = emitted.Emit.spills_inserted;
        weighted_move_cost = weighted;
      };
  }

let compile ?(options = default_options) ~file source =
  Trace.with_span "compile" ~args:[ ("file", Trace.Str file) ] @@ fun () ->
  let front =
    front_end ~entry:options.entry ~entry_args:options.entry_args
      ~rematerialize:options.rematerialize ~verify_each:options.verify_each
      ~file source
  in
  allocate options front

(* Static-analysis lint over a compiled program: cross-context races,
   machine-level validation, dead stores (see [Analysis.Lint]), plus the
   assignment-level translation validation of [Validate].  The scratch
   result area, which every compiled program's contexts intentionally
   share for their observable outputs, is whitelisted by default. *)
let result_area_region =
  Analysis.Race.region ~name:"result-area" ~space:Ixp.Insn.Scratch
    ~base:(Cps.Isel.result_addr_bytes Ixp.Memory.default_config)
    ~words:Cps.Isel.result_words Analysis.Race.Shared_write

let lint ?(regions = []) (c : compiled) : Analysis.Lint.report =
  Trace.with_span "lint-driver" @@ fun () ->
  let report =
    Analysis.Lint.run
      ~regions:(result_area_region :: regions)
      ~provenance:(provenance_of_tprog c.tprog) ~virtual_graph:c.virtual_graph
      ~physical:c.physical ()
  in
  let vreport = Trace.with_span "lint-assignment" (fun () -> Validate.check c.assignment) in
  let assignment_findings =
    List.map
      (fun e ->
        Analysis.Lint.finding ~severity:Diag.Error ~tag:"assignment"
          ~loc:Srcloc.dummy ~block:"<assignment>" "%s" e)
      vreport.Validate.errors
  in
  { report with Analysis.Lint.findings = report.Analysis.Lint.findings @ assignment_findings }

(* Convenience: run the compiled program on the simulator and return the
   observable results from the scratch result area. *)
let simulate ?(threads = 1) ?(init = fun (_ : Ixp.Simulator.t) -> ())
    (c : compiled) =
  let sim = Ixp.Simulator.create ~threads c.physical in
  init sim;
  let cycles = Ixp.Simulator.run_single sim in
  let mem = Ixp.Simulator.shared_memory sim in
  let base = Cps.Isel.result_addr_bytes Ixp.Memory.default_config / 4 in
  let results =
    Array.init Cps.Isel.result_words (fun i ->
        Ixp.Memory.peek mem Ixp.Insn.Scratch (base + i))
  in
  (cycles, results, sim)

(* Reference semantics via the CPS interpreter, for equivalence tests. *)
let interpret ?(init = fun (_ : Cps.Interp.state) -> ()) (c : compiled) =
  let st = Cps.Interp.create () in
  init st;
  let result = Cps.Interp.run st Ident.Map.empty c.cps_term in
  (result, st)
