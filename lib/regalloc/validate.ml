(* Assignment-level translation validation: re-proves, with machinery
   independent of the model generator and the solvers, the promises an
   [Assignment.t] makes before emission consumes it.

     - an independent backward liveness over the virtual flowgraph (its
       own lattice and solver from [Analysis.Dataflow], sharing no code
       with [Ixp.Liveness]) must be covered by the model's Exists sets:
       a temporary live at a point the model does not allocate for would
       silently lose its value;
     - per-point bank occupancy: counting every existing temporary's
       bank (before *and* after the point's parallel move) must respect
       the ILP's K capacities -- 15 for A (one register in reserve for
       parallel-copy cycle breaking), 16 for B, 8 for the transfer
       banks.  Clone families are counted once per bank, exactly like
       the model's CBefore/CAfter variables (paper §10): every member of
       a family holds the same value, so mates resident in the same bank
       share one physical register.  This is the bank-capacity
       constraint of the paper's model re-checked against the
       *solution*, not the model;
     - transfer-aggregate members must receive adjacent ascending colors
       in 0..7 of the correct transfer bank, and same-register pairs
       (hash, bit_test_set) equal colors -- re-derived from [xfer_color]
       without trusting [Assignment.validate].

   [Assignment.validate] checks the copy discipline and move consistency
   of the assignment against its own model; this module is the
   adversarial half, deliberately recomputing what it can from scratch.
   Emission legality on the final instruction stream is then checked a
   third time by [Ixp.Checker] / [Analysis.Validator]. *)

open Support
module FG = Ixp.Flowgraph
module Insn = Ixp.Insn
module Bank = Ixp.Bank

type report = {
  errors : string list;
  max_occupancy : (Bank.t * int) list;
      (* peak per-bank occupancy over all points, K-capacity banks only *)
}

(* ------------------------------------------------------------------ *)
(* Independent liveness of virtual temporaries                         *)
(* ------------------------------------------------------------------ *)

module Ident_set_lattice = struct
  type t = Ident.Set.t

  let bottom = Ident.Set.empty
  let equal = Ident.Set.equal
  let join ~at:_ a b = Ident.Set.union a b
  let widen ~at:_ ~old next = Ident.Set.union old next
end

module Live_solver = Analysis.Dataflow.Make (Ident_set_lattice)

let live_spec : Ident.t Live_solver.spec =
  {
    Live_solver.direction = Analysis.Dataflow.Backward;
    boundary = Ident.Set.empty;
    transfer =
      (fun ~block:_ ~pos:_ insn live ->
        let live =
          List.fold_left (fun s d -> Ident.Set.remove d s) live (Insn.defs insn)
        in
        List.fold_left (fun s u -> Ident.Set.add u s) live (Insn.uses insn));
    transfer_term =
      (fun term live ->
        List.fold_left
          (fun s u -> Ident.Set.add u s)
          live (Insn.term_uses term));
    refine_edge = Live_solver.no_refine;
  }

let check (a : Assignment.t) : report =
  let mg = a.Assignment.mg in
  let graph = mg.Modelgen.graph in
  let errors = ref [] in
  let err fmt = Fmt.kstr (fun s -> errors := s :: !errors) fmt in
  (* 1. independent liveness covered by the Exists sets *)
  let sol = Live_solver.solve live_spec graph in
  let reachable = Analysis.Dataflow.reachable_blocks graph in
  FG.iter_blocks
    (fun b ->
      if Hashtbl.mem reachable b.FG.label then begin
        let facts = Live_solver.point_facts live_spec sol b in
        Array.iteri
          (fun pos live ->
            let point : FG.point = { FG.block = b.FG.label; pos } in
            let p = Modelgen.id_of_point mg point in
            Ident.Set.iter
              (fun v ->
                if not (Ident.Set.mem v mg.Modelgen.exists_at.(p)) then
                  err
                    "%a is live at %a by independent liveness but absent from \
                     the model's Exists set"
                    Ident.pp v FG.pp_point point)
              live)
          facts
      end)
    graph;
  (* 2. per-point bank occupancy against the K capacities *)
  let max_occ = Hashtbl.create 8 in
  let count_side p side_name side =
    let by_bank = Hashtbl.create 8 in
    let seen = Hashtbl.create 8 in
    Ident.Set.iter
      (fun v ->
        let b = side p v in
        let key = (Ident.name (mg.Modelgen.clone_family v), b) in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          Hashtbl.replace by_bank b
            (1 + Option.value ~default:0 (Hashtbl.find_opt by_bank b))
        end)
      mg.Modelgen.exists_at.(p);
    Hashtbl.iter
      (fun b n ->
        if n > Bank.k_capacity b then
          err "%d temporaries occupy bank %s %s point %a (K capacity %d)" n
            (Bank.to_string b) side_name FG.pp_point (Modelgen.point_of mg p)
            (Bank.k_capacity b);
        if
          Bank.k_capacity b < max_int
          && n > Option.value ~default:0 (Hashtbl.find_opt max_occ b)
        then Hashtbl.replace max_occ b n)
      by_bank
  in
  Array.iteri
    (fun p _ ->
      count_side p "before" a.Assignment.bank_before;
      count_side p "after" a.Assignment.bank_after)
    mg.Modelgen.points;
  (* 2b. transfer-register collisions: two temporaries resident in the
     same transfer bank on the same side of one point must not share a
     register number (clone mates excepted: every member of a family
     holds the same value).  The capacity count above cannot see this --
     two values can fit the bank yet be assigned one register, which
     silently clobbers whichever was written first (found by the fuzzer:
     a store inside a loop pins its operand in S around the back edge,
     where a naive coloring collides with the loop body's other
     stores). *)
  let check_xfer_collisions p side_name side =
    let seen = Hashtbl.create 8 in
    (* (bank, color) -> (family stamp, witness) *)
    Ident.Set.iter
      (fun v ->
        let b = side p v in
        if Bank.is_transfer b then begin
          let c = a.Assignment.xfer_color v b in
          let fam = Ident.stamp (mg.Modelgen.clone_family v) in
          match Hashtbl.find_opt seen (Bank.to_string b, c) with
          | Some (fam', v') when fam' <> fam ->
              err "%a and %a both occupy %s%d %s point %a" Ident.pp v' Ident.pp
                v (Bank.to_string b) c side_name FG.pp_point
                (Modelgen.point_of mg p)
          | Some _ -> ()
          | None -> Hashtbl.replace seen (Bank.to_string b, c) (fam, v)
        end)
      mg.Modelgen.exists_at.(p)
  in
  Array.iteri
    (fun p _ ->
      check_xfer_collisions p "before" a.Assignment.bank_before;
      check_xfer_collisions p "after" a.Assignment.bank_after)
    mg.Modelgen.points;
  (* 3. transfer-aggregate adjacency, re-derived from the colors *)
  let check_agg what members bank =
    Array.iteri
      (fun j v ->
        let c = a.Assignment.xfer_color v bank in
        if c < 0 || c > 7 then
          err "%s: member %a has color %d outside 0..7 in %s" what Ident.pp v c
            (Bank.to_string bank);
        if j > 0 then begin
          let c' = a.Assignment.xfer_color members.(j - 1) bank in
          if c <> c' + 1 then
            err "%s: members %a (%d) and %a (%d) of bank %s are not adjacent \
                 ascending"
              what Ident.pp members.(j - 1) c' Ident.pp v c (Bank.to_string bank)
        end)
      members
  in
  List.iter
    (fun (ad : Modelgen.agg_def) ->
      check_agg "aggregate definition" ad.Modelgen.ad_members
        (Insn.read_bank ad.Modelgen.ad_space))
    mg.Modelgen.agg_defs;
  List.iter
    (fun (au : Modelgen.agg_use) ->
      check_agg "aggregate use" au.Modelgen.au_members
        (Insn.write_bank au.Modelgen.au_space))
    mg.Modelgen.agg_uses;
  (* 4. same-register pairs: read side in L, write side in S, one number *)
  List.iter
    (fun (d, s) ->
      let cd = a.Assignment.xfer_color d Bank.L
      and cs = a.Assignment.xfer_color s Bank.S in
      if cd <> cs then
        err "same-reg pair: %a gets L%d but %a gets S%d" Ident.pp d cd Ident.pp
          s cs)
    mg.Modelgen.same_reg;
  {
    errors = List.rev !errors;
    max_occupancy =
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) max_occ []
      |> List.sort compare;
  }
