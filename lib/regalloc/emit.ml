(* Solution application: turn a bank/color [Assignment] into a physical
   IXP program.

   Responsibilities:
     - number the A/B banks with a coloring phase in the style of
       Appel-George phase 2 with Briggs-conservative coalescing (the
       paper's optimistic-coalescing role): nodes are per-block bank
       *segments* of a temporary's lifetime, unioned across control edges
       (no moves are allowed there) and across clone instructions (clones
       start in their original's register);
     - expand the declared inter-bank moves at every point into real
       instructions, sequencing each point's move set as a parallel copy
       (the reserved register A15 breaks cycles -- this is why the ILP's
       K constraint keeps A at 15), staging scratch traffic through free
       S/L registers guaranteed by the model's needsSpill headroom;
     - rewrite every instruction's uses/defs to physical registers.

   The result is validated by [Ixp.Checker] in the driver. *)

open Support
module Bank = Ixp.Bank
module FG = Ixp.Flowgraph
module Insn = Ixp.Insn
module Reg = Ixp.Reg

exception Emit_error of string

let error fmt = Fmt.kstr (fun s -> raise (Emit_error s)) fmt

(* An instant: before (0) or after (1) the moves of a point. *)
let inst ~pos ~side = (2 * pos) + side

type t = {
  assignment : Assignment.t;
  (* A/B register number per coloring node root *)
  node_color : (int, int) Hashtbl.t;
  node_at : (string * int * int, int) Hashtbl.t;
  uf : Union_find.t;
  slots : int Ident.Tbl.t;
  mutable next_slot : int;
  mutable moves_inserted : int;
  mutable spills_inserted : int;
}

let spare_a = Reg.make Bank.A 15

(* ------------------------------------------------------------------ *)
(* Segment construction and coloring                                   *)
(* ------------------------------------------------------------------ *)

let build_segments (a : Assignment.t) =
  let mg = a.Assignment.mg in
  let graph = mg.Modelgen.graph in
  let nodes = Vec.create () in
  let at : (string * int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let bank_at p side v =
    if side = 0 then a.Assignment.bank_before p v else a.Assignment.bank_after p v
  in
  (* per-block scan *)
  FG.iter_blocks
    (fun b ->
      let label = b.FG.label in
      let n = Array.length b.FG.insns in
      for pos = 0 to n do
        let p = Modelgen.id_of_point mg { FG.block = label; pos } in
        for side = 0 to 1 do
          let i = inst ~pos ~side in
          Ident.Set.iter
            (fun v ->
              let bank = bank_at p side v in
              if Bank.equal bank Bank.A || Bank.equal bank Bank.B then begin
                let prev =
                  if i = 0 then None
                  else Hashtbl.find_opt at (label, i - 1, Ident.stamp v)
                in
                let node =
                  match prev with
                  | Some id when snd (Vec.get nodes id) = bank -> id
                  | _ ->
                      Vec.push nodes (v, bank);
                      Vec.length nodes - 1
                in
                Hashtbl.replace at (label, i, Ident.stamp v) node
              end)
            mg.Modelgen.exists_at.(p)
        done
      done)
    graph;
  let uf = Union_find.create (max 1 (Vec.length nodes)) in
  (* control edges: pred's exit After-instant joins succ's entry Before *)
  List.iter
    (fun (p1, p2) ->
      let pt1 = Modelgen.point_of mg p1 and pt2 = Modelgen.point_of mg p2 in
      let i1 = inst ~pos:pt1.FG.pos ~side:1 in
      let i2 = inst ~pos:pt2.FG.pos ~side:0 in
      Ident.Set.iter
        (fun v ->
          if Ident.Set.mem v mg.Modelgen.exists_at.(p1) then
            match
              ( Hashtbl.find_opt at (pt1.FG.block, i1, Ident.stamp v),
                Hashtbl.find_opt at (pt2.FG.block, i2, Ident.stamp v) )
            with
            | Some n1, Some n2 -> ignore (Union_find.union uf n1 n2)
            | _ -> ())
        mg.Modelgen.exists_at.(p2))
    mg.Modelgen.control_edges;
  (* clone instructions: destination segments start in the source's
     register *)
  List.iter
    (fun (p1, p2, dsts, src) ->
      let pt1 = Modelgen.point_of mg p1 and pt2 = Modelgen.point_of mg p2 in
      let i1 = inst ~pos:pt1.FG.pos ~side:1 in
      let i2 = inst ~pos:pt2.FG.pos ~side:0 in
      Array.iter
        (fun d ->
          match
            ( Hashtbl.find_opt at (pt1.FG.block, i1, Ident.stamp src),
              Hashtbl.find_opt at (pt2.FG.block, i2, Ident.stamp d) )
          with
          | Some n1, Some n2 -> ignore (Union_find.union uf n1 n2)
          | _ -> ())
        dsts)
    mg.Modelgen.clones;
  (* clone mates sharing a GPR bank at an instant share the register *)
  FG.iter_blocks
    (fun b ->
      let label = b.FG.label in
      let n = Array.length b.FG.insns in
      for pos = 0 to n do
        let p = Modelgen.id_of_point mg { FG.block = label; pos } in
        for side = 0 to 1 do
          let i = inst ~pos ~side in
          let fams = Hashtbl.create 8 in
          Ident.Set.iter
            (fun v ->
              match Hashtbl.find_opt at (label, i, Ident.stamp v) with
              | None -> ()
              | Some node ->
                  let bank = snd (Vec.get nodes node) in
                  let key = (Ident.stamp (mg.Modelgen.clone_family v), bank) in
                  (match Hashtbl.find_opt fams key with
                  | Some other -> ignore (Union_find.union uf node other)
                  | None -> Hashtbl.replace fams key node))
            mg.Modelgen.exists_at.(p)
        done
      done)
    graph;
  (nodes, at, uf)

(* Interference graph over segment roots, then greedy Kempe coloring
   with Briggs-conservative coalescing of move-related segments. *)
let color_segments (a : Assignment.t) nodes at uf =
  let mg = a.Assignment.mg in
  let graph = mg.Modelgen.graph in
  let root n = Union_find.find uf n in
  let adj : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 256 in
  let ensure n =
    match Hashtbl.find_opt adj n with
    | Some s -> s
    | None ->
        let s = Hashtbl.create 8 in
        Hashtbl.replace adj n s;
        s
  in
  let add_edge n1 n2 =
    if n1 <> n2 then begin
      Hashtbl.replace (ensure n1) n2 ();
      Hashtbl.replace (ensure n2) n1 ()
    end
  in
  (* occupants per (block, instant) *)
  FG.iter_blocks
    (fun b ->
      let label = b.FG.label in
      let n = Array.length b.FG.insns in
      for pos = 0 to n do
        let p = Modelgen.id_of_point mg { FG.block = label; pos } in
        for side = 0 to 1 do
          let i = inst ~pos ~side in
          let occupants = ref [] in
          Ident.Set.iter
            (fun v ->
              match Hashtbl.find_opt at (label, i, Ident.stamp v) with
              | Some node -> occupants := (v, root node) :: !occupants
              | None -> ())
            mg.Modelgen.exists_at.(p);
          let rec pairs = function
            | [] -> ()
            | (v1, n1) :: rest ->
                List.iter
                  (fun (v2, n2) ->
                    if
                      n1 <> n2
                      && snd (Vec.get nodes n1) = snd (Vec.get nodes n2)
                      && not
                           (Ident.equal
                              (mg.Modelgen.clone_family v1)
                              (mg.Modelgen.clone_family v2))
                    then add_edge n1 n2)
                  rest;
                pairs rest
          in
          pairs !occupants;
          (* make sure singleton roots exist in adj *)
          List.iter (fun (_, n) -> ignore (ensure n)) !occupants
        done
      done)
    graph;
  (* conservative coalescing of move-related same-bank segments *)
  let capacity bank = if bank = Bank.A then 15 else 16 in
  List.iter
    (fun (p1, p2, insn) ->
      match insn with
      | Insn.Alu1 { op = `Mov; dst; src } -> (
          let pt1 = Modelgen.point_of mg p1 and pt2 = Modelgen.point_of mg p2 in
          let i1 = inst ~pos:pt1.FG.pos ~side:1 in
          let i2 = inst ~pos:pt2.FG.pos ~side:0 in
          match
            ( Hashtbl.find_opt at (pt1.FG.block, i1, Ident.stamp src),
              Hashtbl.find_opt at (pt2.FG.block, i2, Ident.stamp dst) )
          with
          | Some n1, Some n2 ->
              let r1 = root n1 and r2 = root n2 in
              let b1 = snd (Vec.get nodes r1) and b2 = snd (Vec.get nodes r2) in
              if r1 <> r2 && b1 = b2 && not (Hashtbl.mem (ensure r1) r2) then begin
                (* Briggs: merged node must have < K significant
                   neighbours *)
                let k = capacity b1 in
                let merged = Hashtbl.create 16 in
                Hashtbl.iter (fun n () -> Hashtbl.replace merged n ()) (ensure r1);
                Hashtbl.iter (fun n () -> Hashtbl.replace merged n ()) (ensure r2);
                let significant =
                  Hashtbl.fold
                    (fun n () acc ->
                      if Hashtbl.length (ensure n) >= k then acc + 1 else acc)
                    merged 0
                in
                if significant < k then begin
                  let r = Union_find.union uf r1 r2 in
                  let other = if r = r1 then r2 else r1 in
                  (* fold adjacency of [other] into [r] *)
                  Hashtbl.iter
                    (fun n () ->
                      Hashtbl.remove (ensure n) other;
                      add_edge r n)
                    (ensure other);
                  Hashtbl.remove adj other
                end
              end
          | _ -> ())
      | _ -> ())
    mg.Modelgen.insn_edges;
  (* Kempe simplify + select *)
  let node_color = Hashtbl.create 256 in
  let all_roots =
    Hashtbl.fold (fun n _ acc -> n :: acc) adj []
  in
  let degree = Hashtbl.create 256 in
  List.iter (fun n -> Hashtbl.replace degree n (Hashtbl.length (ensure n))) all_roots;
  let removed = Hashtbl.create 256 in
  let stack = ref [] in
  let remaining = ref (List.length all_roots) in
  while !remaining > 0 do
    (* pick a low-degree node, or max-degree as optimistic spill choice *)
    let best = ref None in
    List.iter
      (fun n ->
        if not (Hashtbl.mem removed n) then begin
          let k = capacity (snd (Vec.get nodes n)) in
          let d = Hashtbl.find degree n in
          match !best with
          | None -> best := Some (n, d, d < k)
          | Some (_, _, true) when d < k -> ()
          | Some (_, bd, true) -> if d < k && d < bd then best := Some (n, d, true)
          | Some (_, bd, false) ->
              if d < k then best := Some (n, d, true)
              else if d > bd then best := Some (n, d, false)
        end)
      all_roots;
    match !best with
    | None -> remaining := 0
    | Some (n, _, _) ->
        Hashtbl.replace removed n ();
        stack := n :: !stack;
        decr remaining;
        Hashtbl.iter
          (fun m () ->
            if not (Hashtbl.mem removed m) then
              Hashtbl.replace degree m (Hashtbl.find degree m - 1))
          (ensure n)
  done;
  List.iter
    (fun n ->
      let bank = snd (Vec.get nodes n) in
      let k = capacity bank in
      let taken = Array.make 16 false in
      Hashtbl.iter
        (fun m () ->
          match Hashtbl.find_opt node_color m with
          | Some c -> taken.(c) <- true
          | None -> ())
        (ensure n);
      let rec find c =
        if c >= k then
          error "A/B coloring failed for %a in %s (pressure exceeds capacity)"
            Ident.pp (fst (Vec.get nodes n)) (Bank.to_string bank)
        else if taken.(c) then find (c + 1)
        else c
      in
      Hashtbl.replace node_color n (find 0))
    !stack;
  node_color

(* ------------------------------------------------------------------ *)
(* Physical register lookup                                            *)
(* ------------------------------------------------------------------ *)

let slot_of st v =
  match Ident.Tbl.find_opt st.slots v with
  | Some s -> s
  | None ->
      let s = st.next_slot in
      st.next_slot <- s + 1;
      Ident.Tbl.replace st.slots v s;
      s

let reg_at st ~block ~instant v =
  let a = st.assignment in
  let mg = a.Assignment.mg in
  let pos = instant / 2 and side = instant mod 2 in
  let p = Modelgen.id_of_point mg { FG.block; pos } in
  let bank =
    if side = 0 then a.Assignment.bank_before p v else a.Assignment.bank_after p v
  in
  match bank with
  | Bank.A | Bank.B -> (
      match Hashtbl.find_opt st.node_at (block, instant, Ident.stamp v) with
      | Some node -> (
          let r = Union_find.find st.uf node in
          match Hashtbl.find_opt st.node_color r with
          | Some c -> Reg.make bank c
          | None -> error "uncolored segment for %a" Ident.pp v)
      | None -> error "no segment for %a at %s.%d" Ident.pp v block instant)
  | Bank.L | Bank.LD | Bank.S | Bank.SD ->
      Reg.make bank (a.Assignment.xfer_color v bank)
  | Bank.M -> error "reg_at: %a is in scratch at %s.%d" Ident.pp v block instant
  | Bank.C ->
      error "reg_at: %a is a constant (bank C) at %s.%d" Ident.pp v block
        instant

(* Which S (or L) registers are free around point [p]? *)
let free_xfer_reg st ~p bank =
  let a = st.assignment in
  let mg = a.Assignment.mg in
  let taken = Array.make 8 false in
  Ident.Set.iter
    (fun v ->
      let check b = Bank.equal b bank in
      if check (a.Assignment.bank_before p v) || check (a.Assignment.bank_after p v)
      then taken.(a.Assignment.xfer_color v bank) <- true)
    mg.Modelgen.exists_at.(p);
  let rec find r =
    if r >= 8 then
      error "no free %s register at point %d for spill staging"
        (Bank.to_string bank) p
    else if taken.(r) then find (r + 1)
    else r
  in
  Reg.make bank (find 0)

(* ------------------------------------------------------------------ *)
(* Move expansion                                                      *)
(* ------------------------------------------------------------------ *)

(* Emit the moves scheduled at point [p] of [block] at position [pos]. *)
let emit_moves st out ~block ~pos ~p =
  let a = st.assignment in
  let mg = a.Assignment.mg in
  (* A scheduled move of a value that is dead at the point can only
     produce a store nobody reads (solvers stopped at a node limit may
     leave such moves in an otherwise legal assignment): drop it. *)
  let live = Ixp.Liveness.live_at mg.Modelgen.live mg.Modelgen.points.(p) in
  let moves =
    List.filter
      (fun (v, _, _) -> Support.Ident.Set.mem v live)
      (a.Assignment.moves_at p)
  in
  if moves <> [] then begin
    let i_before = inst ~pos ~side:0 and i_after = inst ~pos ~side:1 in
    (* 0. constant discards are free: nothing to emit for b -> C *)
    (* 1. spills (reads only) *)
    List.iter
      (fun (v, b1, b2) ->
        if Bank.equal b2 Bank.M then begin
          st.spills_inserted <- st.spills_inserted + 1;
          let slot = slot_of st v in
          if Bank.is_write_transfer b1 then
            (* already on the write side: store directly *)
            Vec.push out
              (Insn.Spill { slot; src = reg_at st ~block ~instant:i_before v })
          else begin
            let stage = free_xfer_reg st ~p Bank.S in
            Vec.push out
              (Insn.Move { dst = stage; src = reg_at st ~block ~instant:i_before v });
            Vec.push out (Insn.Spill { slot; src = stage })
          end
        end)
      moves;
    (* 2. register-register parallel copy *)
    let pairs =
      List.filter_map
        (fun (v, b1, b2) ->
          if
            Bank.equal b1 Bank.M || Bank.equal b2 Bank.M
            || Bank.equal b1 Bank.C || Bank.equal b2 Bank.C
          then None
          else
            Some
              ( reg_at st ~block ~instant:i_after v,
                reg_at st ~block ~instant:i_before v ))
        moves
    in
    (* clone mates colocated in the same registers schedule the same
       physical move: emit it once *)
    let pairs = List.sort_uniq compare pairs in
    st.moves_inserted <- st.moves_inserted + List.length pairs;
    let remaining = ref (List.filter (fun (d, s) -> not (Reg.equal d s)) pairs) in
    let is_pending_src r = List.exists (fun (_, s) -> Reg.equal s r) !remaining in
    let guard = ref 0 in
    while !remaining <> [] do
      incr guard;
      if !guard > 1000 then error "parallel copy did not terminate";
      let ready, blocked =
        List.partition (fun (d, _) -> not (is_pending_src d)) !remaining
      in
      if ready <> [] then begin
        List.iter
          (fun (d, s) -> Vec.push out (Insn.Move { dst = d; src = s }))
          ready;
        remaining := blocked
      end
      else begin
        match !remaining with
        | [] -> ()
        | (d, s) :: rest ->
            (* break the cycle through the reserved A15 *)
            Vec.push out (Insn.Move { dst = spare_a; src = d });
            Vec.push out (Insn.Move { dst = d; src = s });
            remaining :=
              List.map
                (fun (d', s') -> if Reg.equal s' d then (d', spare_a) else (d', s'))
                rest
      end
    done;
    (* 2b. constant loads (writes only): a move out of C is an immediate *)
    List.iter
      (fun (v, b1, b2) ->
        if Bank.equal b1 Bank.C && not (Bank.equal b2 Bank.C) then begin
          match Modelgen.const_of st.assignment.Assignment.mg v with
          | Some value ->
              st.moves_inserted <- st.moves_inserted + 1;
              Vec.push out
                (Insn.Imm { dst = reg_at st ~block ~instant:i_after v; value })
          | None -> error "move out of C for non-constant %a" Ident.pp v
        end)
      moves;
    (* 3. reloads (writes only) *)
    List.iter
      (fun (v, b1, b2) ->
        if Bank.equal b1 Bank.M then begin
          st.spills_inserted <- st.spills_inserted + 1;
          let slot = slot_of st v in
          match b2 with
          | Bank.L ->
              Vec.push out
                (Insn.Reload { slot; dst = reg_at st ~block ~instant:i_after v })
          | Bank.A | Bank.B ->
              let stage = free_xfer_reg st ~p Bank.L in
              Vec.push out (Insn.Reload { slot; dst = stage });
              Vec.push out
                (Insn.Move { dst = reg_at st ~block ~instant:i_after v; src = stage })
          | _ ->
              error "illegal reload target %s for %a" (Bank.to_string b2)
                Ident.pp v
        end)
      moves
  end

(* ------------------------------------------------------------------ *)
(* Program emission                                                    *)
(* ------------------------------------------------------------------ *)

type result = {
  physical : Reg.t FG.t;
  moves_inserted : int;
  spills_inserted : int;
  gpr_segments : int;
}

let run (a : Assignment.t) : result =
  let nodes, at, uf = build_segments a in
  let node_color = color_segments a nodes at uf in
  let st =
    {
      assignment = a;
      node_color;
      node_at = at;
      uf;
      slots = Ident.Tbl.create 16;
      next_slot = 0;
      moves_inserted = 0;
      spills_inserted = 0;
    }
  in
  let mg = a.Assignment.mg in
  let graph = mg.Modelgen.graph in
  let out_graph = FG.create () in
  FG.iter_blocks
    (fun b ->
      let label = b.FG.label in
      let n = Array.length b.FG.insns in
      let out = Vec.create () in
      for pos = 0 to n do
        let p = Modelgen.id_of_point mg { FG.block = label; pos } in
        emit_moves st out ~block:label ~pos ~p;
        if pos < n then begin
          match b.FG.insns.(pos) with
          | Insn.Clone _ -> () (* clones are free: same register *)
          | Insn.Imm { dst; _ }
            when Bank.equal
                   (a.Assignment.bank_before
                      (Modelgen.id_of_point mg { FG.block = label; pos = pos + 1 })
                      dst)
                   Bank.C ->
              () (* rematerialized constant: the definition is virtual *)
          | insn -> (
              let use v = reg_at st ~block:label ~instant:(inst ~pos ~side:1) v in
              let def v =
                reg_at st ~block:label ~instant:(inst ~pos:(pos + 1) ~side:0) v
              in
              match Insn.map_uses_defs ~use ~def insn with
              (* peephole: coalescing made this copy a no-op *)
              | Insn.Alu1 { op = `Mov; dst; src } when Reg.equal dst src -> ()
              | Insn.Move { dst; src } when Reg.equal dst src -> ()
              | mapped -> Vec.push out mapped)
        end
      done;
      let exit_use v =
        reg_at st ~block:label ~instant:(inst ~pos:n ~side:1) v
      in
      let term = Insn.map_term exit_use b.FG.term in
      ignore (FG.add_block out_graph ~label ~insns:(Vec.to_list out) ~term))
    graph;
  {
    physical = out_graph;
    moves_inserted = st.moves_inserted;
    spills_inserted = st.spills_inserted;
    gpr_segments = Vec.length nodes;
  }
