(* Canonical naming and structural fingerprinting of ILP instances, for
   the incremental-compilation cache.

   Two compiles of the *same* source in one process build the same model
   up to renaming: [Ident] stamps come from a global counter, so the
   variable names ("Before[12,x_345,A]") embed process-lifetime stamps,
   and because the AMPL [Dataset] orders tuples by string compare of
   those names, the *index order* of variables and rows drifts with the
   stamps too.  Cache artifacts therefore cannot be keyed by raw names
   or indices.

   This module restores a canonical view:

     - [canonical_names] rank-normalizes the stamps: every `_<digits>`
       run that ends an ident atom inside a variable name is replaced by
       `_s<rank>`, where ranks are assigned by ascending stamp value
       across the whole problem.  Equal models (up to stamp renaming)
       get equal canonical names for corresponding variables.

     - [fingerprint] hashes the model *structurally* and
       order-insensitively ([Cache.Key.fold_*]): one digest per variable
       (canonical name, bounds, objective coefficient, integrality) and
       one per row (sense, rhs, terms sorted by canonical name), summed.
       Equal models hash equal no matter the instantiation order.

     - [solution_to_json]/[solution_of_json] and
       [ws_to_json]/[ws_of_json] persist solutions and warm-start data
       keyed by canonical name, so a value saved by one compile can be
       mapped onto the (differently indexed) instance of the next. *)

open Support
module P = Lp.Problem

(* [rewrite_stamps name ranks] replaces each stamp run `_<digits>`
   (underscore + digits immediately followed by an atom delimiter:
   ',', ']', or end of string) with `_s<rank>`.  When [ranks] is [None]
   the stamp values are collected into the returned list instead. *)
let scan_name name ~(rank : (int -> int) option) =
  let n = String.length name in
  let buf = if rank = None then None else Some (Buffer.create (n + 8)) in
  let stamps = ref [] in
  let emit_char c = Option.iter (fun b -> Buffer.add_char b c) buf in
  let emit_str s = Option.iter (fun b -> Buffer.add_string b s) buf in
  let i = ref 0 in
  while !i < n do
    let c = name.[!i] in
    if c = '_' then begin
      (* measure the digit run after the underscore *)
      let j = ref (!i + 1) in
      while !j < n && name.[!j] >= '0' && name.[!j] <= '9' do incr j done;
      let is_stamp =
        !j > !i + 1 && (!j = n || name.[!j] = ',' || name.[!j] = ']')
      in
      if is_stamp then begin
        let v = int_of_string (String.sub name (!i + 1) (!j - !i - 1)) in
        (match rank with
        | None -> stamps := v :: !stamps
        | Some r -> emit_str (Printf.sprintf "_s%d" (r v)));
        i := !j
      end
      else begin
        emit_char c;
        incr i
      end
    end
    else begin
      emit_char c;
      incr i
    end
  done;
  match buf with Some b -> Either.Left (Buffer.contents b) | None -> Either.Right !stamps

let canonical_names (p : P.t) : string array =
  let n = P.num_vars p in
  (* pass 1: collect every stamp value *)
  let seen = Hashtbl.create 256 in
  for j = 0 to n - 1 do
    match scan_name (P.var_name p j) ~rank:None with
    | Either.Right stamps ->
        List.iter (fun s -> Hashtbl.replace seen s ()) stamps
    | Either.Left _ -> ()
  done;
  let sorted =
    Hashtbl.fold (fun s () acc -> s :: acc) seen [] |> List.sort Int.compare
  in
  let ranks = Hashtbl.create (List.length sorted) in
  List.iteri (fun i s -> Hashtbl.replace ranks s i) sorted;
  let rank s = try Hashtbl.find ranks s with Not_found -> -1 in
  Array.init n (fun j ->
      match scan_name (P.var_name p j) ~rank:(Some rank) with
      | Either.Left s -> s
      | Either.Right _ -> assert false)

let index_of_canonical (names : string array) : (string, int) Hashtbl.t =
  let tbl = Hashtbl.create (Array.length names) in
  Array.iteri (fun j name -> Hashtbl.replace tbl name j) names;
  tbl

let fnum f = Printf.sprintf "%.17g" f

(* Order-insensitive structural hash of the whole instance. *)
let fingerprint (p : P.t) : Cache.Key.t =
  let names = canonical_names p in
  let acc = Cache.Key.fold_create () in
  for j = 0 to P.num_vars p - 1 do
    Cache.Key.fold_add acc
      (Printf.sprintf "v|%s|%s|%s|%s|%b" names.(j)
         (fnum (P.var_lo p j))
         (fnum (P.var_hi p j))
         (fnum (P.var_obj p j))
         (P.var_integer p j))
  done;
  P.iter_rows
    (fun r ->
      let sense =
        match r.P.sense with P.Le -> "<=" | P.Ge -> ">=" | P.Eq -> "="
      in
      let terms =
        List.map (fun (v, c) -> (names.(v), c)) r.P.terms
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let buf = Buffer.create 128 in
      Buffer.add_string buf "r|";
      Buffer.add_string buf sense;
      Buffer.add_char buf '|';
      Buffer.add_string buf (fnum r.P.rhs);
      List.iter
        (fun (name, c) ->
          Buffer.add_char buf '|';
          Buffer.add_string buf name;
          Buffer.add_char buf '*';
          Buffer.add_string buf (fnum c))
        terms;
      Cache.Key.fold_add acc (Buffer.contents buf))
    p;
  Cache.Key.fold_digest acc

(* ---------------- solution / warm-start serialization ---------------- *)

(* A solution is stored sparsely: canonical name -> value, nonzeros
   only.  Reconstruction fills unmentioned variables with 0. *)
let solution_to_json ~(names : string array) (x : float array) : Json.t =
  let fields = ref [] in
  for j = Array.length x - 1 downto 0 do
    if Float.abs x.(j) > 1e-9 then
      fields := (names.(j), Json.Num x.(j)) :: !fields
  done;
  Json.Obj !fields

let solution_of_json ~(index : (string, int) Hashtbl.t) ~(n : int)
    (doc : Json.t) : float array option =
  match doc with
  | Json.Obj fields ->
      let x = Array.make n 0. in
      let ok = ref true in
      List.iter
        (fun (name, v) ->
          match (Hashtbl.find_opt index name, Json.to_float v) with
          | Some j, Some f -> x.(j) <- f
          | _ ->
              (* a stored name absent from this instance means the model
                 is not actually identical: refuse rather than replay *)
              ok := false)
        fields;
      if !ok then Some x else None
  | _ -> None

(* Warm-start data tolerates partial mapping by design (the model has
   changed; that is why it is a warm start and not a replay): unknown
   names are skipped, known ones become hints on this instance's
   indices. *)
let ws_to_json ~(names : string array) (ws : Lp.Mip.warm_start) : Json.t =
  let name_of j =
    if j >= 0 && j < Array.length names then Some names.(j) else None
  in
  Json.Obj
    [
      ( "values",
        Json.Obj
          (List.filter_map
             (fun (j, v) ->
               Option.map (fun nm -> (nm, Json.Num v)) (name_of j))
             ws.Lp.Mip.ws_values) );
      ( "pc",
        Json.Obj
          (List.filter_map
             (fun (j, (sd, cd, su, cu)) ->
               Option.map
                 (fun nm ->
                   ( nm,
                     Json.Arr
                       [
                         Json.Num sd;
                         Json.Num (float_of_int cd);
                         Json.Num su;
                         Json.Num (float_of_int cu);
                       ] ))
                 (name_of j))
             ws.Lp.Mip.ws_pseudocosts) );
    ]

let ws_of_json ~(index : (string, int) Hashtbl.t) (doc : Json.t) :
    Lp.Mip.warm_start =
  let values =
    match Json.member "values" doc with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (name, v) ->
            match (Hashtbl.find_opt index name, Json.to_float v) with
            | Some j, Some f -> Some (j, f)
            | _ -> None)
          fields
    | _ -> []
  in
  let pc =
    match Json.member "pc" doc with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (name, v) ->
            match (Hashtbl.find_opt index name, v) with
            | Some j, Json.Arr [ a; b; c; d ] -> (
                match
                  ( Json.to_float a,
                    Json.to_float b,
                    Json.to_float c,
                    Json.to_float d )
                with
                | Some sd, Some cd, Some su, Some cu ->
                    Some (j, (sd, int_of_float cd, su, int_of_float cu))
                | _ -> None)
            | _ -> None)
          fields
    | _ -> []
  in
  { Lp.Mip.ws_values = values; ws_pseudocosts = pc }
