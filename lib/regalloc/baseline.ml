(* Heuristic baseline allocator, for the ILP-vs-heuristic comparison.

   The strategy mirrors what conservative compilers (and the eager-copy
   approaches of Kong-Wilken / Scholz-Eckstein, which the paper §2.1
   argues do not adapt to the IXP) would do:

     - every temporary has a fixed *home* GPR bank (A or B, chosen
       round-robin to balance pressure);
     - aggregate reads are vacated eagerly: each member moves from the
       transfer bank to its home at the first point after the read;
     - write-side operands move from home into S/SD at the point just
       before the store (SSU already gave each write operand a dedicated
       name, so the windows are short and colors are position-determined);
     - ALU bank conflicts are resolved by bouncing the second operand to
       the other GPR bank right before the instruction and back right
       after (the eager-copy discipline);
     - when a home bank would exceed its capacity at some point, the
       variable with the longest remaining lifetime is demoted to scratch
       (spilled), reloading around each use.

   The output is an [Assignment], so emission, checking and simulation
   are shared with the ILP allocator.  For simplicity the baseline only
   handles graphs without clone multi-use (it runs before SSU cloning
   would matter; clone instructions are treated as plain copies). *)

open Support
module Bank = Ixp.Bank
module FG = Ixp.Flowgraph
module Insn = Ixp.Insn

(* The baseline computes, per (point, temp), the bank; then derives
   moves from bank changes along copy edges. *)

type state = {
  mg : Modelgen.t;
  (* (point, temp stamp) -> bank, before/after *)
  before : (int * int, Bank.t) Hashtbl.t;
  after : (int * int, Bank.t) Hashtbl.t;
  home : Bank.t Ident.Tbl.t;
  color : (int * string, int) Hashtbl.t; (* (temp stamp, bank) -> color *)
}

let bank_key v = Ident.stamp v

let assign_homes (mg : Modelgen.t) =
  let home = Ident.Tbl.create 64 in
  let flip = ref false in
  Array.iter
    (fun v ->
      Ident.Tbl.replace home v (if !flip then Bank.B else Bank.A);
      flip := not !flip)
    mg.Modelgen.temps;
  home

let build (mg : Modelgen.t) : Assignment.t =
  let st =
    {
      mg;
      before = Hashtbl.create 1024;
      after = Hashtbl.create 1024;
      home = assign_homes mg;
      color = Hashtbl.create 64;
    }
  in
  let home v = Ident.Tbl.find st.home v in
  (* default: everything sits in its home bank everywhere it exists *)
  Modelgen.iter_exists mg (fun p v ->
      Hashtbl.replace st.before (p, bank_key v) (home v);
      Hashtbl.replace st.after (p, bank_key v) (home v));
  (* transfer-bank windows from aggregates *)
  List.iter
    (fun (ad : Modelgen.agg_def) ->
      let b = Insn.read_bank ad.Modelgen.ad_space in
      let live_after =
        Ixp.Liveness.live_at mg.Modelgen.live
          mg.Modelgen.points.(ad.Modelgen.ad_point)
      in
      Array.iteri
        (fun j v ->
          (* value appears in the transfer bank and is moved home at the
             same point (before -> after) -- unless it is already dead
             there (an unused member of the aggregate), in which case it
             stays in the transfer bank and vacating it would only emit
             a dead store *)
          Hashtbl.replace st.before (ad.Modelgen.ad_point, bank_key v) b;
          if not (Support.Ident.Set.mem v live_after) then
            Hashtbl.replace st.after (ad.Modelgen.ad_point, bank_key v) b;
          Hashtbl.replace st.color (bank_key v, Bank.to_string b) j)
        ad.Modelgen.ad_members)
    mg.Modelgen.agg_defs;
  List.iter
    (fun (au : Modelgen.agg_use) ->
      let b = Insn.write_bank au.Modelgen.au_space in
      Array.iteri
        (fun j v ->
          (* operand moves into the write bank at the point before the
             store; SSU guarantees this is its only use, so it stays
             there until death *)
          Hashtbl.replace st.after (au.Modelgen.au_point, bank_key v) b;
          Hashtbl.replace st.color (bank_key v, Bank.to_string b) j;
          (* propagate S residence forward while it still exists *)
          let rec forward p =
            List.iter
              (fun (p1, p2, w) ->
                if p1 = p && Ident.equal w v then begin
                  Hashtbl.replace st.before (p2, bank_key v) b;
                  Hashtbl.replace st.after (p2, bank_key v) b;
                  forward p2
                end)
              mg.Modelgen.copies
          in
          forward au.Modelgen.au_point)
        au.Modelgen.au_members)
    mg.Modelgen.agg_uses;
  (* ALU operand conflicts: bounce the second operand *)
  List.iter
    (fun (p1, x, y) ->
      let bx = Hashtbl.find st.after (p1, bank_key x) in
      let by = Hashtbl.find st.after (p1, bank_key y) in
      let same_group =
        (Bank.equal bx by && not (Bank.is_transfer bx))
        || (Bank.is_read_transfer bx && Bank.is_read_transfer by)
      in
      if same_group then begin
        let other =
          if Bank.is_transfer by then
            if Bank.equal bx Bank.A then Bank.B else Bank.A
          else if Bank.equal by Bank.A then Bank.B
          else Bank.A
        in
        Hashtbl.replace st.after (p1, bank_key y) other
      end)
    mg.Modelgen.arith2;
  (* address and CSR operands must be in A/B *)
  List.iter
    (fun (p1, v) ->
      let b = Hashtbl.find st.after (p1, bank_key v) in
      if not Bank.(equal b A || equal b B) then
        Hashtbl.replace st.after (p1, bank_key v) (home v))
    mg.Modelgen.use_ab;
  (* single ALU operands stuck on the write side would be illegal; the
     eager discipline never leaves them there because SSU separated write
     uses, but arith1 on a freshly-read member is fine (L feeds ALU). *)
  List.iter
    (fun (p1, v) ->
      let b = Hashtbl.find st.after (p1, bank_key v) in
      if Bank.is_write_transfer b then
        Hashtbl.replace st.after (p1, bank_key v) (home v))
    mg.Modelgen.arith1;
  (* same-register pairs: hash/bit_test_set want matching numbers *)
  List.iter
    (fun (d, s) ->
      let c =
        Option.value ~default:0
          (Hashtbl.find_opt st.color (bank_key s, Bank.to_string Bank.S))
      in
      Hashtbl.replace st.color (bank_key d, Bank.to_string Bank.L) c;
      Hashtbl.replace st.color (bank_key s, Bank.to_string Bank.S) c)
    mg.Modelgen.same_reg;
  (* propagate bank changes along copies: the value must be somewhere
     consistent on every edge.  The baseline reconciles by forcing the
     home bank on both sides of any mismatched copy edge, except when the
     mismatch is one of the deliberate windows above (transfer sides stay
     as set; the GPR side aligns). *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 16 do
    changed := false;
    incr rounds;
    List.iter
      (fun (p1, p2, v) ->
        let a1 = Hashtbl.find st.after (p1, bank_key v) in
        let b2 = Hashtbl.find st.before (p2, bank_key v) in
        if not (Bank.equal a1 b2) then begin
          (* prefer keeping transfer windows; move the GPR side *)
          if Bank.is_transfer b2 then begin
            Hashtbl.replace st.after (p1, bank_key v) b2;
            changed := true
          end
          else begin
            Hashtbl.replace st.before (p2, bank_key v) a1;
            changed := true
          end
        end)
      mg.Modelgen.copies;
    (* Clone instructions are emitted as zero-cost register shares: the
       destination is assumed to materialize in the source's register.
       That is only true if the destination *enters* in the source's bank
       (and, for transfer banks, its register number); otherwise the
       clone reads a register nobody ever wrote.  Align each destination's
       entry bank with the source's exit bank, and let the ordinary
       within-point move derivation relocate it to its home afterwards. *)
    List.iter
      (fun (p1, p2, dsts, src) ->
        let a1 = Hashtbl.find st.after (p1, bank_key src) in
        Array.iter
          (fun d ->
            let b2 = Hashtbl.find st.before (p2, bank_key d) in
            if not (Bank.equal a1 b2) then begin
              Hashtbl.replace st.before (p2, bank_key d) a1;
              if Bank.is_transfer a1 then begin
                let c =
                  Option.value ~default:0
                    (Hashtbl.find_opt st.color (bank_key src, Bank.to_string a1))
                in
                Hashtbl.replace st.color (bank_key d, Bank.to_string a1) c
              end;
              changed := true
            end)
          dsts)
      mg.Modelgen.clones
  done;
  (* bounced operands return home right after the instruction: nothing to
     do -- [before] of the next point is home, and the move derivation
     below inserts the move back.  Build the assignment views. *)
  let bank_before p v =
    Option.value ~default:(home v) (Hashtbl.find_opt st.before (p, bank_key v))
  in
  let bank_after p v =
    Option.value ~default:(home v) (Hashtbl.find_opt st.after (p, bank_key v))
  in
  let moves_at p =
    Ident.Set.fold
      (fun v acc ->
        let b = bank_before p v and b' = bank_after p v in
        if Bank.equal b b' then acc else (v, b, b') :: acc)
      mg.Modelgen.exists_at.(p) []
  in
  let xfer_color v b =
    match Hashtbl.find_opt st.color (bank_key v, Bank.to_string b) with
    | Some c -> c
    | None -> 0
  in
  { Assignment.mg; bank_before; bank_after; moves_at; xfer_color }

(* Count the moves the baseline inserts (weighted like the ILP's
   objective, for a like-for-like comparison). *)
let move_cost (a : Assignment.t) =
  let mg = a.Assignment.mg in
  let total = ref 0 and cost = ref 0. in
  Array.iteri
    (fun p _ ->
      List.iter
        (fun (_, b1, b2) ->
          incr total;
          cost :=
            !cost
            +. (mg.Modelgen.weights.(p) *. Bank.move_cost ~src:b1 ~dst:b2 ()))
        (a.Assignment.moves_at p))
    mg.Modelgen.points;
  (!total, !cost)
