(* Heuristic baseline allocator, for the ILP-vs-heuristic comparison.

   The strategy mirrors what conservative compilers (and the eager-copy
   approaches of Kong-Wilken / Scholz-Eckstein, which the paper §2.1
   argues do not adapt to the IXP) would do:

     - every temporary has a fixed *home* GPR bank (A or B, chosen
       round-robin to balance pressure);
     - aggregate reads are vacated eagerly: each member moves from the
       transfer bank to its home at the first point after the read;
     - write-side operands move from home into S/SD at the point just
       before the store (SSU already gave each write operand a dedicated
       name, so the windows are short and colors are position-determined);
     - ALU bank conflicts are resolved by bouncing the second operand to
       the other GPR bank right before the instruction and back right
       after (the eager-copy discipline);
     - when a home bank would exceed its capacity at some point, the
       variable with the longest remaining lifetime is demoted to scratch
       (spilled), reloading around each use.

   The output is an [Assignment], so emission, checking and simulation
   are shared with the ILP allocator.  For simplicity the baseline only
   handles graphs without clone multi-use (it runs before SSU cloning
   would matter; clone instructions are treated as plain copies). *)

open Support
module Bank = Ixp.Bank
module FG = Ixp.Flowgraph
module Insn = Ixp.Insn

(* The baseline computes, per (point, temp), the bank; then derives
   moves from bank changes along copy edges. *)

type state = {
  mg : Modelgen.t;
  (* (point, temp stamp) -> bank, before/after *)
  before : (int * int, Bank.t) Hashtbl.t;
  after : (int * int, Bank.t) Hashtbl.t;
  home : Bank.t Ident.Tbl.t;
  color : (int * string, int) Hashtbl.t; (* (temp stamp, bank) -> color *)
}

let bank_key v = Ident.stamp v

let assign_homes (mg : Modelgen.t) =
  let home = Ident.Tbl.create 64 in
  let flip = ref false in
  Array.iter
    (fun v ->
      Ident.Tbl.replace home v (if !flip then Bank.B else Bank.A);
      flip := not !flip)
    mg.Modelgen.temps;
  home

let build (mg : Modelgen.t) : Assignment.t =
  let st =
    {
      mg;
      before = Hashtbl.create 1024;
      after = Hashtbl.create 1024;
      home = assign_homes mg;
      color = Hashtbl.create 64;
    }
  in
  let home v = Ident.Tbl.find st.home v in
  (* (point, temp) entries whose bank is required by an instruction
     constraint (transfer window, ALU bounce, A/B operand) -- [Hard] --
     or merely inherited from one through a copy edge -- [Soft].
     Reconciliation aligns the weaker side of an edge: soft and
     unconstrained entries adapt, hard entries never change again.  The
     distinction matters when a join pins a branch operand's bank at a
     predecessor's exit: that inherited pin must not stop the bounce
     pass from separating two same-bank ALU operands, so bounce may
     re-force soft entries (hard, so they stay put).  Each entry goes
     natural -> soft -> hard, changing bank at most twice, which keeps
     the fixpoint terminating. *)
  let forced_after : (int * int, [ `Hard | `Soft ]) Hashtbl.t =
    Hashtbl.create 256
  in
  let forced_before : (int * int, [ `Hard | `Soft ]) Hashtbl.t =
    Hashtbl.create 256
  in
  let force_after ?(strength = `Hard) p v b =
    Hashtbl.replace st.after (p, bank_key v) b;
    Hashtbl.replace forced_after (p, bank_key v) strength
  in
  let force_before ?(strength = `Hard) p v b =
    Hashtbl.replace st.before (p, bank_key v) b;
    Hashtbl.replace forced_before (p, bank_key v) strength
  in
  (* default: everything sits in its home bank everywhere it exists *)
  Modelgen.iter_exists mg (fun p v ->
      Hashtbl.replace st.before (p, bank_key v) (home v);
      Hashtbl.replace st.after (p, bank_key v) (home v));
  (* transfer-bank windows from aggregates *)
  List.iter
    (fun (ad : Modelgen.agg_def) ->
      let b = Insn.read_bank ad.Modelgen.ad_space in
      let live_after =
        Ixp.Liveness.live_at mg.Modelgen.live
          mg.Modelgen.points.(ad.Modelgen.ad_point)
      in
      Array.iteri
        (fun j v ->
          (* value appears in the transfer bank and is moved home at the
             same point (before -> after) -- unless it is already dead
             there (an unused member of the aggregate), in which case it
             stays in the transfer bank and vacating it would only emit
             a dead store *)
          force_before ad.Modelgen.ad_point v b;
          if not (Support.Ident.Set.mem v live_after) then
            force_after ad.Modelgen.ad_point v b;
          Hashtbl.replace st.color (bank_key v, Bank.to_string b) j)
        ad.Modelgen.ad_members)
    mg.Modelgen.agg_defs;
  List.iter
    (fun (au : Modelgen.agg_use) ->
      let b = Insn.write_bank au.Modelgen.au_space in
      Array.iteri
        (fun j v ->
          (* operand moves into the write bank at the point before the
             store; SSU guarantees this is its only use, so it stays
             there until death *)
          force_after au.Modelgen.au_point v b;
          Hashtbl.replace st.color (bank_key v, Bank.to_string b) j;
          (* propagate S residence forward while it still exists; copy
             edges follow the flowgraph, so a loop body makes them
             cyclic and the walk needs a visited set to terminate *)
          let seen = Hashtbl.create 16 in
          let rec forward p =
            if not (Hashtbl.mem seen p) then begin
              Hashtbl.replace seen p ();
              List.iter
                (fun (p1, p2, w) ->
                  if p1 = p && Ident.equal w v then begin
                    force_before p2 v b;
                    force_after p2 v b;
                    forward p2
                  end)
                mg.Modelgen.copies
            end
          in
          forward au.Modelgen.au_point)
        au.Modelgen.au_members)
    mg.Modelgen.agg_uses;
  (* ALU operand conflicts: bounce one operand to the other GPR bank.
     Prefer bouncing an operand that dies at the instruction — a dead
     operand has no outgoing copy edges, so pinning it away from its home
     bank cannot collide with the bank another point pins it to.  The
     bounced operand is forced so reconciliation cannot drag it back into
     the conflict.  Run as a pass so it can re-fire after reconciliation
     moves operands around (see the fixpoint below); returns true if any
     new bounce was forced.

     A bounce can be invalidated later: it picked the bank opposite the
     keeper's bank *at the time*, and a hard force inherited from another
     point can still change the keeper's bank afterwards, re-creating the
     conflict against a victim that is now hard-pinned.  Forces placed by
     the bounce pass itself stay re-flippable (once): the keeper's bank
     is final by the time the conflict re-appears, so one re-flip settles
     the point, and the cap keeps the fixpoint finite. *)
  let bounce_count : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let bounce_conflicts () =
    let bounced = ref false in
    List.iter
      (fun (p1, x, y) ->
        let bx = Hashtbl.find st.after (p1, bank_key x) in
        let by = Hashtbl.find st.after (p1, bank_key y) in
        let same_group =
          (Bank.equal bx by && not (Bank.is_transfer bx))
          || (Bank.is_read_transfer bx && Bank.is_read_transfer by)
        in
        if same_group then begin
          let live_after =
            Ixp.Liveness.live_at mg.Modelgen.live mg.Modelgen.points.(p1)
          in
          let unforced v =
            (* soft (edge-inherited) pins are overridable: the join that
               propagated them re-homes at its own entry move slot.  Hard
               pins placed by this very pass may be re-flipped once. *)
            match Hashtbl.find_opt forced_after (p1, bank_key v) with
            | Some `Hard ->
                (match Hashtbl.find_opt bounce_count (p1, bank_key v) with
                | Some n -> n < 2
                | None -> false)
            | Some `Soft | None -> true
          in
          let dead v = not (Support.Ident.Set.mem v live_after) in
          let pick =
            if unforced y && dead y then Some (y, x)
            else if unforced x && dead x then Some (x, y)
            else if unforced y then Some (y, x)
            else if unforced x then Some (x, y)
            else None (* both hard-pinned: leave for Validate to report *)
          in
          match pick with
          | None -> ()
          | Some (victim, keeper) ->
              let bv = Hashtbl.find st.after (p1, bank_key victim) in
              let bk = Hashtbl.find st.after (p1, bank_key keeper) in
              let other =
                if Bank.is_transfer bv then
                  if Bank.equal bk Bank.A then Bank.B else Bank.A
                else if Bank.equal bv Bank.A then Bank.B
                else Bank.A
              in
              Hashtbl.replace bounce_count
                (p1, bank_key victim)
                (1
                + Option.value ~default:0
                    (Hashtbl.find_opt bounce_count (p1, bank_key victim)));
              force_after p1 victim other;
              bounced := true
        end)
      mg.Modelgen.arith2;
    !bounced
  in
  ignore (bounce_conflicts ());
  (* address and CSR operands must be in A/B *)
  List.iter
    (fun (p1, v) ->
      let b = Hashtbl.find st.after (p1, bank_key v) in
      if not Bank.(equal b A || equal b B) then force_after p1 v (home v))
    mg.Modelgen.use_ab;
  (* single ALU operands stuck on the write side would be illegal; the
     eager discipline never leaves them there because SSU separated write
     uses, but arith1 on a freshly-read member is fine (L feeds ALU). *)
  List.iter
    (fun (p1, v) ->
      let b = Hashtbl.find st.after (p1, bank_key v) in
      if Bank.is_write_transfer b then force_after p1 v (home v))
    mg.Modelgen.arith1;
  (* same-register pairs: hash/bit_test_set want matching numbers *)
  List.iter
    (fun (d, s) ->
      let c =
        Option.value ~default:0
          (Hashtbl.find_opt st.color (bank_key s, Bank.to_string Bank.S))
      in
      Hashtbl.replace st.color (bank_key d, Bank.to_string Bank.L) c;
      Hashtbl.replace st.color (bank_key s, Bank.to_string Bank.S) c)
    mg.Modelgen.same_reg;
  (* propagate bank changes along copies: the value must be somewhere
     consistent on every edge (there is no move slot on an edge, only the
     per-point before/after move).  A forced side wins and the
     unconstrained side adapts — including sibling predecessors of a join
     point, which inherit the forced bank through the join's [before].
     Aligning an entry marks it forced in turn, so every entry moves away
     from its home bank at most once and the fixpoint terminates without
     oscillating (the old scheme ping-ponged a join's [before] between
     predecessors that disagreed, e.g. when one arm of a short-circuit
     chain had bounced an operand for an ALU conflict). *)
  let outer = ref true in
  while !outer do
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (p1, p2, v) ->
        let a1 = Hashtbl.find st.after (p1, bank_key v) in
        let b2 = Hashtbl.find st.before (p2, bank_key v) in
        if not (Bank.equal a1 b2) then begin
          let fa = Hashtbl.find_opt forced_after (p1, bank_key v) in
          let fb =
            if Bank.is_transfer b2 then Some `Hard
            else Hashtbl.find_opt forced_before (p2, bank_key v)
          in
          match (fa, fb) with
          | Some `Hard, Some `Hard ->
              (* both sides pinned by instruction constraints: no
                 consistent placement exists under the eager discipline;
                 leave the edge for [Validate] to report *)
              ()
          | Some `Soft, Some `Soft ->
              (* two disagreeing inherited pins: re-aligning one would
                 oscillate between the sibling edges that forced them;
                 leave for [Validate] like the hard-hard case *)
              ()
          | Some `Hard, _ ->
              force_before ~strength:`Hard p2 v a1;
              changed := true
          | _, Some `Hard ->
              force_after ~strength:`Hard p1 v b2;
              changed := true
          | Some `Soft, None ->
              force_before ~strength:`Soft p2 v a1;
              changed := true
          | None, (Some `Soft | None) ->
              (* [b2] can only differ from [a1] because some other edge
                 already forced it; align the pred to the join *)
              force_after ~strength:`Soft p1 v b2;
              changed := true
        end)
      mg.Modelgen.copies;
    (* Clone instructions are emitted as zero-cost register shares: the
       destination is assumed to materialize in the source's register.
       That is only true if the destination *enters* in the source's bank
       (and, for transfer banks, its register number); otherwise the
       clone reads a register nobody ever wrote.  Align each destination's
       entry bank with the source's exit bank, and let the ordinary
       within-point move derivation relocate it to its home afterwards. *)
    List.iter
      (fun (p1, p2, dsts, src) ->
        let a1 = Hashtbl.find st.after (p1, bank_key src) in
        Array.iter
          (fun d ->
            let b2 = Hashtbl.find st.before (p2, bank_key d) in
            if not (Bank.equal a1 b2) then begin
              Hashtbl.replace st.before (p2, bank_key d) a1;
              if Bank.is_transfer a1 then begin
                let c =
                  Option.value ~default:0
                    (Hashtbl.find_opt st.color (bank_key src, Bank.to_string a1))
                in
                Hashtbl.replace st.color (bank_key d, Bank.to_string a1) c
              end;
              changed := true
            end)
          dsts)
      mg.Modelgen.clones
  done;
  (* reconciliation may have dragged an operand into its partner's bank;
     re-fire the bounce pass and reconcile again until nothing moves
     (monotone in the set of forced entries, so this terminates) *)
  outer := bounce_conflicts ()
  done;
  (* bounced operands return home right after the instruction: nothing to
     do -- [before] of the next point is home, and the move derivation
     below inserts the move back.  Build the assignment views. *)
  let bank_before p v =
    Option.value ~default:(home v) (Hashtbl.find_opt st.before (p, bank_key v))
  in
  let bank_after p v =
    Option.value ~default:(home v) (Hashtbl.find_opt st.after (p, bank_key v))
  in
  (* Transfer-window coloring.  The member-index colors recorded above
     are only safe while no two windows of one transfer bank overlap in
     time.  They can overlap: a write operand that is still live after
     its store (a store inside a loop, reading a value defined outside
     it) has no way out of S -- the write side has no outgoing datapath
     -- so reconciliation pins it there around the back edge, across
     every other store in the loop body.  Re-color every aggregate
     window by greedy interval placement: longest-resident first, each
     at the lowest register range free at every point it occupies.
     Windows that overlap only through a clone destination's entry point
     share their source's register by construction and are handled by
     the clone pass below; anything this heuristic still gets wrong is
     caught by [Validate]'s per-point collision check. *)
  let npoints = Array.length mg.Modelgen.points in
  let windows =
    List.map
      (fun (ad : Modelgen.agg_def) ->
        (Insn.read_bank ad.Modelgen.ad_space, ad.Modelgen.ad_members))
      mg.Modelgen.agg_defs
    @ List.map
        (fun (au : Modelgen.agg_use) ->
          (Insn.write_bank au.Modelgen.au_space, au.Modelgen.au_members))
        mg.Modelgen.agg_uses
  in
  let span_of b members =
    let pts = ref [] in
    for p = npoints - 1 downto 0 do
      if
        Array.exists
          (fun v ->
            Bank.equal (bank_before p v) b || Bank.equal (bank_after p v) b)
          members
      then pts := p :: !pts
    done;
    !pts
  in
  let occupied = Hashtbl.create 256 in
  (* (point, bank, reg) -> () *)
  windows
  |> List.map (fun (b, members) -> (b, members, span_of b members))
  |> List.sort (fun (_, _, s1) (_, _, s2) ->
         compare (List.length s2) (List.length s1))
  |> List.iter (fun (b, members, span) ->
         let n = Array.length members in
         let bs = Bank.to_string b in
         let fits start =
           List.for_all
             (fun p ->
               let ok = ref true in
               for r = start to start + n - 1 do
                 if Hashtbl.mem occupied (p, bs, r) then ok := false
               done;
               !ok)
             span
         in
         let rec place s =
           if s + n > 8 then 0 (* overfull: leave for Validate to report *)
           else if fits s then s
           else place (s + 1)
         in
         let start = place 0 in
         List.iter
           (fun p ->
             for r = start to start + n - 1 do
               Hashtbl.replace occupied (p, bs, r) ()
             done)
           span;
         Array.iteri
           (fun j v -> Hashtbl.replace st.color (bank_key v, bs) (start + j))
           members);
  (* clone destinations materialize in the source's register: re-align
     their colors with the final greedy assignment *)
  List.iter
    (fun (_, p2, dsts, src) ->
      Array.iter
        (fun d ->
          let b2 = bank_before p2 d in
          if Bank.is_transfer b2 then
            match Hashtbl.find_opt st.color (bank_key src, Bank.to_string b2)
            with
            | Some c ->
                Hashtbl.replace st.color (bank_key d, Bank.to_string b2) c
            | None -> ())
        dsts)
    mg.Modelgen.clones;
  (* same-register pairs re-aligned likewise *)
  List.iter
    (fun (d, s) ->
      let c =
        Option.value ~default:0
          (Hashtbl.find_opt st.color (bank_key s, Bank.to_string Bank.S))
      in
      Hashtbl.replace st.color (bank_key d, Bank.to_string Bank.L) c;
      Hashtbl.replace st.color (bank_key s, Bank.to_string Bank.S) c)
    mg.Modelgen.same_reg;
  let moves_at p =
    Ident.Set.fold
      (fun v acc ->
        let b = bank_before p v and b' = bank_after p v in
        if Bank.equal b b' then acc else (v, b, b') :: acc)
      mg.Modelgen.exists_at.(p) []
  in
  let xfer_color v b =
    match Hashtbl.find_opt st.color (bank_key v, Bank.to_string b) with
    | Some c -> c
    | None -> 0
  in
  { Assignment.mg; bank_before; bank_after; moves_at; xfer_color }

(* Count the moves the baseline inserts (weighted like the ILP's
   objective, for a like-for-like comparison). *)
let move_cost (a : Assignment.t) =
  let mg = a.Assignment.mg in
  let total = ref 0 and cost = ref 0. in
  Array.iteri
    (fun p _ ->
      List.iter
        (fun (_, b1, b2) ->
          incr total;
          cost :=
            !cost
            +. (mg.Modelgen.weights.(p) *. Bank.move_cost ~src:b1 ~dst:b2 ()))
        (a.Assignment.moves_at p))
    mg.Modelgen.points;
  (!total, !cost)
