(* Fuzzing campaigns: drive the generator/oracle/shrinker loop, keep a
   replayable corpus of counterexamples, and replay corpus files.

   Program [i] of a campaign is generated from [Random.State.make
   [| seed; i; 0x5eed |]], so any single counterexample can be regenerated from
   the (seed, index) pair alone, and the corpus file header records
   both.  Corpus files are plain Nova sources with `//` header
   comments; replaying one runs the full oracle on the file's text. *)

type counterexample = {
  cx_index : int;
  cx_failure : Oracle.failure;
  cx_program : Nova.Ast.program; (* after shrinking, if requested *)
  cx_path : string option; (* corpus file, if one was written *)
}

type summary = {
  seed : int;
  ran : int;
  failures : counterexample list;
}

let generate ~seed ~index ~max_size =
  let rng = Random.State.make [| seed; index; 0x5eed |] in
  Gen.program ~max_size rng

let corpus_file ~out_dir ~seed ~index (f : Oracle.failure) source =
  (try Unix.mkdir out_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat out_dir
      (Printf.sprintf "cex_seed%d_%d.nova" seed index)
  in
  let oc = open_out path in
  Printf.fprintf oc "// novac fuzz counterexample (shrunk)\n";
  Printf.fprintf oc "// seed=%d index=%d stage=%s\n" seed index f.Oracle.stage;
  Printf.fprintf oc "// %s\n"
    (String.map (function '\n' -> ' ' | c -> c) f.Oracle.detail);
  Printf.fprintf oc "// replay: novac fuzz --replay %s\n\n" path;
  output_string oc source;
  close_out oc;
  path

let run ~seed ~count ?(max_size = 20) ?(minimize = true) ?node_limit ?ilp
    ?(out_dir = "fuzz-corpus") ?(log = fun _ -> ()) () : summary =
  let failures = ref [] in
  for index = 0 to count - 1 do
    (* the driver memoizes whole compiles; fuzzing feeds it thousands of
       distinct keys, so drop the tables between programs *)
    Regalloc.Driver.clear_memos ();
    let p = generate ~seed ~index ~max_size in
    match Oracle.check ?node_limit ?ilp p with
    | Ok () ->
        if (index + 1) mod 25 = 0 then
          log (Printf.sprintf "%d/%d ok" (index + 1) count)
    | Error f ->
        log
          (Printf.sprintf "counterexample at index %d (stage %s): %s" index
             f.Oracle.stage f.Oracle.detail);
        let shrunk =
          if minimize then
            (* a shrink counts only if it fails at the SAME stage: the
               oracle has cheap invariant failures (e.g. an alignment
               fault after halving an address mask) that an
               any-failure predicate happily migrates to, losing the
               original bug *)
            Shrink.minimize
              ~failing:(fun c ->
                Regalloc.Driver.clear_memos ();
                match Oracle.check ?node_limit ?ilp c with
                | Ok () -> false
                | Error f' -> String.equal f'.Oracle.stage f.Oracle.stage)
              p
          else p
        in
        (* re-run on the shrunk form to record the final failure *)
        Regalloc.Driver.clear_memos ();
        let final_failure =
          match Oracle.check ?node_limit ?ilp shrunk with
          | Error f' -> f'
          | Ok () -> f (* should not happen: shrinking preserves failure *)
        in
        let source = Nova.Pp.program_to_string shrunk in
        let path =
          corpus_file ~out_dir ~seed ~index final_failure source
        in
        log (Printf.sprintf "  shrunk counterexample written to %s" path);
        failures :=
          {
            cx_index = index;
            cx_failure = final_failure;
            cx_program = shrunk;
            cx_path = Some path;
          }
          :: !failures
  done;
  { seed; ran = count; failures = List.rev !failures }

(* replay a corpus file (or any Nova source) through the full oracle *)
let replay_file ?node_limit ?ilp path : (unit, Oracle.failure) result =
  let ic = open_in path in
  let n = in_channel_length ic in
  let source = really_input_string ic n in
  close_in ic;
  Regalloc.Driver.clear_memos ();
  Oracle.check_source ?node_limit ?ilp ~file:path source
