(* Type-preserving shrinking on the Nova AST.

   [candidates p] enumerates strictly smaller programs that are still
   well-typed whenever [p] is: every rewrite keeps the type of the
   rewritten position (word stays word, unit stays unit) and never
   removes a binder that is still referenced.  [minimize] then runs a
   greedy first-fit loop against a failure predicate, which is how
   `novac fuzz --minimize` and the campaign reduce counterexamples
   before writing them to the corpus.  [qcheck_iter] exposes the same
   candidates as a QCheck shrinker so property tests over generated
   programs shrink on the AST too. *)

module A = Nova.Ast

let dloc = Support.Srcloc.dummy

let arg_expr = function A.Apos e -> e | A.Anamed (_, e) -> e

let arg_with a' = function
  | A.Apos _ -> A.Apos a'
  | A.Anamed (n, _) -> A.Anamed (n, a')

(* generic bottom-up predicate over every sub-expression *)
let rec exists_expr f (e : A.expr) =
  f e
  ||
  match e with
  | A.Var _ | A.Int _ | A.Bool _ | A.Unit _ | A.CsrRead _ | A.CtxArb _ ->
      false
  | A.Binop (_, a, b, _) | A.Seq (a, b, _) | A.While (a, b, _)
  | A.MemWrite (_, a, b, _) | A.BitTestSet (a, b, _)
  | A.TfifoWrite (a, b, _) ->
      exists_expr f a || exists_expr f b
  | A.Unop (_, a, _) | A.Select (a, _, _) | A.Proj (a, _, _)
  | A.Unpack (_, a, _) | A.Pack (_, a, _) | A.MemRead (_, a, _, _)
  | A.Hash (a, _) | A.CsrWrite (_, a, _) | A.RfifoRead (a, _, _)
  | A.Assign (_, a, _) ->
      exists_expr f a
  | A.Tuple (es, _) -> List.exists (exists_expr f) es
  | A.Record (fs, _) -> List.exists (fun (_, e) -> exists_expr f e) fs
  | A.If (c, t, e1, _) ->
      exists_expr f c || exists_expr f t || exists_expr f e1
  | A.Call (_, args, _) | A.Raise (_, args, _) ->
      List.exists (fun a -> exists_expr f (arg_expr a)) args
  | A.Let (_, _, rhs, body, _) | A.Vardecl (_, _, rhs, body, _) ->
      exists_expr f rhs || exists_expr f body
  | A.Try (b, hs, _) ->
      exists_expr f b || List.exists (fun h -> exists_expr f h.A.hbody) hs

(* conservative syntactic occurrence check (shadowing ignored: a false
   "occurs" only suppresses a candidate, never breaks one) *)
let occurs name e =
  exists_expr
    (function A.Var (x, _) | A.Assign (x, _, _) -> x = name | _ -> false)
    e

let calls fname e =
  exists_expr (function A.Call (f, _, _) -> f = fname | _ -> false) e

(* a Try body that raises cannot lose its handlers; note nested tries
   handle their own raises, but treating any syntactic raise as binding
   is conservative and only suppresses a candidate *)
let contains_raise e = exists_expr (function A.Raise _ -> true | _ -> false) e

let pat_names = function A.Pvar (x, _) -> [ x ] | A.Ptuple (xs, _) -> xs

(* [shrink_expr e] enumerates same-typed replacements for [e]: word
   positions stay word, bool stay bool, unit stay unit.

   Address positions are special: the generator only emits sandboxed
   effective addresses -- BASE + (e & MASK) with an aligned literal
   mask, or an aligned literal -- and the generic word rewrites destroy
   that shape (peeling the wrapper exposes an arbitrary word as the
   address; halving a literal breaks 4-byte alignment).  A shrunk
   program that faults on alignment or escapes the sandbox is a new,
   boring failure, not a smaller instance of the one being minimized,
   so [shrink_addr] only offers the base literal or rewrites of the
   masked sub-expression, keeping the wrapper intact. *)
let rec shrink_expr (e : A.expr) : A.expr list =
  let sub1 mk a = List.map mk (shrink_expr a) in
  let sub2 mk a b =
    List.map (fun a' -> mk a' b) (shrink_expr a)
    @ List.map (fun b' -> mk a b') (shrink_expr b)
  in
  match e with
  | A.Int (n, _) when n <> 0 ->
      A.Int (0, dloc)
      :: (if n > 1 || n < -1 then [ A.Int (n / 2, dloc) ] else [])
  | A.Int _ | A.Var _ | A.Unit _ -> []
  | A.Bool (true, _) -> [ A.Bool (false, dloc) ]
  | A.Bool (false, _) -> []
  | A.Binop (op, a, b, _) ->
      let peel =
        match op with
        | A.Add | A.Sub | A.Mul | A.And | A.Or | A.Xor | A.Shl | A.Shr
        | A.Asr ->
            [ a; b ] (* word op word : word *)
        | A.LAnd | A.LOr -> [ a; b ] (* bool op bool : bool *)
        | A.Eq | A.Ne | A.Lt | A.Le | A.Gt | A.Ge | A.Ult | A.Uge ->
            [ A.Bool (false, dloc) ] (* operands are words, result bool *)
      in
      peel @ sub2 (fun a' b' -> A.Binop (op, a', b', dloc)) a b
  | A.Unop (op, a, _) -> a :: sub1 (fun a' -> A.Unop (op, a', dloc)) a
  | A.If (c, t, e1, _) ->
      [ t; e1 ]
      @ List.map (fun c' -> A.If (c', t, e1, dloc)) (shrink_expr c)
      @ List.map (fun t' -> A.If (c, t', e1, dloc)) (shrink_expr t)
      @ List.map (fun e' -> A.If (c, t, e', dloc)) (shrink_expr e1)
  | A.Seq (s, rest, _) ->
      (* drop the statement entirely, then shrink either side *)
      rest :: sub2 (fun s' r' -> A.Seq (s', r', dloc)) s rest
  | A.Let (p, ty, rhs, body, _) ->
      (if List.for_all (fun x -> not (occurs x body)) (pat_names p) then
         [ body ]
       else [])
      @ sub2 (fun r' b' -> A.Let (p, ty, r', b', dloc)) rhs body
  | A.Vardecl (x, ty, rhs, body, _) ->
      (if not (occurs x body) then [ body ] else [])
      @ sub2 (fun r' b' -> A.Vardecl (x, ty, r', b', dloc)) rhs body
  | A.Assign (x, e1, _) ->
      A.Unit dloc :: sub1 (fun e' -> A.Assign (x, e', dloc)) e1
  | A.While (c, body, _) ->
      A.Unit dloc :: sub2 (fun c' b' -> A.While (c', b', dloc)) c body
  | A.MemWrite (sp, a, v, _) ->
      (A.Unit dloc
      :: List.map (fun a' -> A.MemWrite (sp, a', v, dloc)) (shrink_addr a))
      @ sub1 (fun v' -> A.MemWrite (sp, a, v', dloc)) v
  | A.MemRead (sp, a, n, _) ->
      (match n with
      | Some 1 | None -> [ A.Int (0, dloc) ]
      | Some k -> [ A.Tuple (List.init k (fun _ -> A.Int (0, dloc)), dloc) ])
      @ List.map (fun a' -> A.MemRead (sp, a', n, dloc)) (shrink_addr a)
  | A.Hash (a, _) -> a :: sub1 (fun a' -> A.Hash (a', dloc)) a
  | A.Tuple (es, _) ->
      List.concat
        (List.mapi
           (fun i ei ->
             List.map
               (fun ei' ->
                 A.Tuple
                   (List.mapi (fun j e0 -> if i = j then ei' else e0) es,
                    dloc))
               (shrink_expr ei))
           es)
  | A.Call (f, args, _) ->
      (* generated helpers take and return words *)
      A.Int (0, dloc)
      :: List.concat
           (List.mapi
              (fun i arg ->
                List.map
                  (fun a' ->
                    A.Call
                      ( f,
                        List.mapi
                          (fun j a0 ->
                            if i = j then arg_with a' arg else a0)
                          args,
                        dloc ))
                  (shrink_expr (arg_expr arg)))
              args)
  | A.Raise (exn, args, _) ->
      List.concat
        (List.mapi
           (fun i arg ->
             List.map
               (fun a' ->
                 A.Raise
                   ( exn,
                     List.mapi
                       (fun j a0 -> if i = j then arg_with a' arg else a0)
                       args,
                     dloc ))
               (shrink_expr (arg_expr arg)))
           args)
  | A.Try (body, hs, _) ->
      (if not (contains_raise body) then [ body ] else [])
      @ List.map (fun b' -> A.Try (b', hs, dloc)) (shrink_expr body)
      @ List.concat
          (List.map
             (fun h ->
               List.map
                 (fun hb ->
                   A.Try
                     ( body,
                       List.map
                         (fun h0 ->
                           if h0 == h then { h0 with A.hbody = hb } else h0)
                         hs,
                       dloc ))
                 (shrink_expr h.A.hbody))
             hs)
  | A.Select _ | A.Proj _ | A.Record _ | A.Unpack _ | A.Pack _
  | A.BitTestSet _ | A.CsrRead _ | A.CsrWrite _ | A.RfifoRead _
  | A.TfifoWrite _ | A.CtxArb _ ->
      []

and shrink_addr (a : A.expr) : A.expr list =
  match a with
  | A.Binop (A.Add, (A.Int _ as base), A.Binop (A.And, e, (A.Int _ as mask), _), _)
    ->
      base
      :: List.map
           (fun e' ->
             A.Binop (A.Add, base, A.Binop (A.And, e', mask, dloc), dloc))
           (shrink_expr e)
  | _ -> [] (* literal or unrecognized shape: leave untouched *)

(* program-level candidates: drop a helper no one calls, or shrink any
   function body *)
let candidates (p : A.program) : A.program list =
  let called fname =
    List.exists
      (function A.Dfun fd -> calls fname fd.A.fn_body | _ -> false)
      p.A.decls
  in
  let drop_helpers =
    List.concat
      (List.mapi
         (fun i d ->
           match d with
           | A.Dfun fd
             when fd.A.fn_name <> "main" && not (called fd.A.fn_name) ->
               [ { A.decls = List.filteri (fun j _ -> j <> i) p.A.decls } ]
           | _ -> [])
         p.A.decls)
  in
  let body_shrinks =
    List.concat
      (List.mapi
         (fun i d ->
           match d with
           | A.Dfun fd ->
               List.map
                 (fun b ->
                   let d' = A.Dfun { fd with A.fn_body = b } in
                   {
                     A.decls =
                       List.mapi
                         (fun j d0 -> if i = j then d' else d0)
                         p.A.decls;
                   })
                 (shrink_expr fd.A.fn_body)
           | A.Dconst _ | A.Dlayout _ -> [])
         p.A.decls)
  in
  drop_helpers @ body_shrinks

(* greedy first-fit minimization against a failure predicate; the
   budget bounds oracle invocations, not candidate enumeration *)
let minimize ?(budget = 400) ~(failing : A.program -> bool) (p : A.program) :
    A.program =
  let left = ref budget in
  let rec loop p =
    if !left <= 0 then p
    else
      let next =
        List.find_opt
          (fun c ->
            if !left <= 0 then false
            else begin
              decr left;
              failing c
            end)
          (candidates p)
      in
      match next with Some c -> loop c | None -> p
  in
  loop p

let qcheck_iter (p : A.program) : A.program QCheck.Iter.t =
  QCheck.Iter.of_list (candidates p)
