(* Differential oracle stack for fuzzed Nova programs.

   A candidate program passes only if every stage agrees:

     1. print/reparse -- the pretty-printed source re-parses, prints to
        a fixpoint and still typechecks (printer/parser agreement);
     2. interp-vs-sim -- the CPS interpreter and the chip-level
        simulator (baseline allocation) leave identical memory images
        over the fuzz sandbox;
     3. ilp-vs-baseline -- ILP-allocated code has the same observable
        behaviour as baseline-allocated code, both assignments pass
        [Regalloc.Validate] (enforced inside the driver) and both lint
        clean over the sandbox regions;
     4. warm-vs-cold -- recompiling through a stage-cache store replays
        the stored solve and reproduces the cold compile's observables.

   All stages run on the *printed* source, so a counterexample written
   to the corpus replays the exact compiles that failed. *)

module A = Nova.Ast

type failure = { stage : string; detail : string }

let fail stage fmt = Printf.ksprintf (fun detail -> Error { stage; detail }) fmt

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

(* ---------------- sandbox comparison windows (word indices) -------- *)

(* generous supersets of the generator's windows: reads that run a few
   words past a window stay inside these, and so does the result slot *)
let compare_regions =
  [
    (Ixp.Insn.Sram, 0x1000 / 4, 0x21ff / 4);
    (Ixp.Insn.Scratch, 0x100 / 4, 0x2ff / 4);
    (Ixp.Insn.Sdram, 0x400 / 4, 0x9ff / 4);
  ]

(* fixed seed pattern for the read-only windows; a pure function of the
   word index so corpus files replay bit-for-bit with no side channel *)
let pattern w = (w * 2654435761) lxor (w lsl 7) lxor 0x9e3779b9

let ro_regions =
  [
    (Ixp.Insn.Sram, Gen.sram_ro_base / 4, Gen.sram_ro_words);
    (Ixp.Insn.Scratch, Gen.scratch_ro_base / 4, Gen.scratch_ro_words);
    (Ixp.Insn.Sdram, Gen.sdram_ro_base / 4, Gen.sdram_ro_words);
  ]

let seed_memory poke =
  List.iter
    (fun (space, base, words) ->
      for i = 0 to words - 1 do
        poke space (base + i) (pattern (base + i) land 0xffffffff)
      done)
    ro_regions

(* lint whitelist for the sandbox: read-only tables plus write windows *)
let lint_regions =
  let open Analysis.Race in
  [
    region ~name:"fuzz-sram-ro" ~space:Ixp.Insn.Sram ~base:Gen.sram_ro_base
      ~words:128 Read_only;
    region ~name:"fuzz-sram-rw" ~space:Ixp.Insn.Sram ~base:Gen.sram_rw_base
      ~words:128 Shared_write;
    region ~name:"fuzz-scratch-ro" ~space:Ixp.Insn.Scratch
      ~base:Gen.scratch_ro_base ~words:32 Read_only;
    region ~name:"fuzz-scratch-rw" ~space:Ixp.Insn.Scratch
      ~base:Gen.scratch_rw_base ~words:64 Shared_write;
    region ~name:"fuzz-sdram-ro" ~space:Ixp.Insn.Sdram
      ~base:Gen.sdram_ro_base ~words:128 Read_only;
    region ~name:"fuzz-sdram-rw" ~space:Ixp.Insn.Sdram
      ~base:Gen.sdram_rw_base ~words:192 Shared_write;
  ]

(* ---------------- stage 1: print / reparse ---------------- *)

let reparse ~file source =
  let parse ~what src =
    try Ok (Nova.Parser.parse_string ~file src)
    with Support.Diag.Compile_error d ->
      fail "print-reparse" "%s does not parse: %s" what
        (Support.Diag.to_string d)
  in
  let* p1 = parse ~what:"source" source in
  let s1 = Nova.Pp.program_to_string p1 in
  let* p2 = parse ~what:"printed source" s1 in
  let* () =
    if Nova.Pp.equal_program p1 p2 then Ok ()
    else fail "print-reparse" "re-parsed AST differs from the original"
  in
  let* () =
    if String.equal s1 (Nova.Pp.program_to_string p2) then Ok ()
    else fail "print-reparse" "printing is not a fixpoint"
  in
  let* () =
    try
      ignore (Nova.Typecheck.check_program ~entry:"main" p2);
      Ok ()
    with Support.Diag.Compile_error d ->
      fail "print-reparse" "printed source does not typecheck: %s"
        (Support.Diag.to_string d)
  in
  Ok p2

(* ---------------- stage 2/3 execution legs ---------------- *)

let run_interp ~file source =
  try
    let front = Regalloc.Driver.front_end ~file source in
    let st = Cps.Interp.create () in
    let mem = Cps.Interp.memory st in
    seed_memory (fun space w v -> Ixp.Memory.poke mem space w v);
    let result =
      Cps.Interp.run st Support.Ident.Map.empty front.Regalloc.Driver.f_term
    in
    Ok (result, mem)
  with
  | Support.Diag.Compile_error d ->
      fail "interp" "front end rejected program: %s" (Support.Diag.to_string d)
  | e -> fail "interp" "interpreter raised: %s" (Printexc.to_string e)

let run_sim (c : Regalloc.Driver.compiled) =
  let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
  let shared = Ixp.Simulator.shared_memory sim in
  let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
  seed_memory (fun space w v ->
      match space with
      | Ixp.Insn.Sdram -> Ixp.Memory.poke sdram space w v
      | _ -> Ixp.Memory.poke shared space w v);
  ignore (Ixp.Simulator.run_single sim);
  (shared, sdram)

let peek_sim (shared, sdram) space w =
  match space with
  | Ixp.Insn.Sdram -> Ixp.Memory.peek sdram space w
  | _ -> Ixp.Memory.peek shared space w

let compare_memories ~stage ~what peek_a peek_b =
  let bad = ref None in
  List.iter
    (fun (space, lo, hi) ->
      for w = lo to hi do
        if !bad = None then begin
          let a = peek_a space w and b = peek_b space w in
          if a <> b then bad := Some (space, w, a, b)
        end
      done)
    compare_regions;
  match !bad with
  | None -> Ok ()
  | Some (space, w, a, b) ->
      fail stage "%s differ at %s[0x%x]: 0x%08x vs 0x%08x" what
        (Ixp.Insn.space_to_string space)
        (w * 4) a b

let compile ~stage ~allocator ~node_limit ~file source =
  let options =
    { Regalloc.Driver.default_options with allocator; node_limit }
  in
  try Ok (Regalloc.Driver.compile ~options ~file source) with
  | Regalloc.Driver.Allocation_failed msg ->
      fail stage "allocation failed: %s" msg
  | Support.Diag.Compile_error d ->
      fail stage "compile error: %s" (Support.Diag.to_string d)
  | e -> fail stage "compiler raised: %s" (Printexc.to_string e)

let lint_clean ~stage (c : Regalloc.Driver.compiled) =
  let report = Regalloc.Driver.lint ~regions:lint_regions c in
  match Analysis.Lint.errors report with
  | [] -> Ok ()
  | first :: _ as errs ->
      fail stage "lint reported %d error(s), first: [%s] %s in %s"
        (List.length errs) first.Analysis.Lint.tag first.Analysis.Lint.message
        first.Analysis.Lint.block

(* ---------------- stage 4: warm vs cold ---------------- *)

let observables (c : Regalloc.Driver.compiled) =
  let s = c.Regalloc.Driver.stats in
  ( Regalloc.Driver.solver_outcome_to_string s.Regalloc.Driver.solver_outcome,
    s.Regalloc.Driver.moves_inserted,
    s.Regalloc.Driver.spills_inserted,
    s.Regalloc.Driver.weighted_move_cost )

let warm_vs_cold ~options ~file source =
  let store = Cache.Store.create () in
  try
    Regalloc.Driver.clear_memos ();
    let cold, _ =
      Regalloc.Driver.compile_incremental ~options ~store ~file source
    in
    (* drop the in-process memos but keep the store: the warm leg must
       reconstruct the compile from persisted artifacts *)
    Regalloc.Driver.clear_memos ();
    let warm, _ =
      Regalloc.Driver.compile_incremental ~options ~store ~file source
    in
    let oc = observables cold and ow = observables warm in
    if oc = ow then Ok cold
    else
      let so, mo, po, wo = oc and ss, ms, ps, ws = ow in
      fail "warm-vs-cold"
        "cold (%s, moves=%d, spills=%d, cost=%.3f) vs warm (%s, moves=%d, \
         spills=%d, cost=%.3f)"
        so mo po wo ss ms ps ws
  with
  | Regalloc.Driver.Allocation_failed msg ->
      fail "warm-vs-cold" "allocation failed: %s" msg
  | e -> fail "warm-vs-cold" "compiler raised: %s" (Printexc.to_string e)

(* ---------------- the full stack ---------------- *)

let default_node_limit = 400

(* [ilp:false] runs only the cheap stages (print/reparse and
   interp-vs-baseline); used for high-count property tests *)
let check_source ?(node_limit = default_node_limit) ?(ilp = true) ~file source
    : (unit, failure) result =
  let dbg = Sys.getenv_opt "FUZZ_DEBUG" <> None in
  let mark what = if dbg then Printf.eprintf "[oracle] %s\n%!" what in
  mark "reparse";
  let* _p2 = reparse ~file source in
  mark "interp";
  let* result, imem = run_interp ~file source in
  ignore result;
  mark "compile-baseline";
  let* cb =
    compile ~stage:"interp-vs-sim" ~node_limit
      ~allocator:Regalloc.Driver.Baseline_allocator ~file source
  in
  mark "run-sim-baseline";
  let bmem = run_sim cb in
  mark "compare-baseline";
  let* () =
    compare_memories ~stage:"interp-vs-sim" ~what:"interpreter and simulator"
      (fun space w -> Ixp.Memory.peek imem space w)
      (peek_sim bmem)
  in
  mark "lint-baseline";
  let* () = lint_clean ~stage:"lint-baseline" cb in
  if not ilp then Ok ()
  else begin
    let options =
      {
        Regalloc.Driver.default_options with
        allocator = Regalloc.Driver.Ilp_allocator;
        node_limit;
      }
    in
    mark "warm-vs-cold";
    let* ci = warm_vs_cold ~options ~file source in
    mark "run-sim-ilp";
    let imem' = run_sim ci in
    mark "compare-ilp";
    let* () =
      compare_memories ~stage:"ilp-vs-baseline" ~what:"ILP and baseline"
        (peek_sim imem') (peek_sim bmem)
    in
    mark "lint-ilp";
    let* () = lint_clean ~stage:"lint-ilp" ci in
    Ok ()
  end

let check ?node_limit ?ilp (p : A.program) : (unit, failure) result =
  let source = Nova.Pp.program_to_string p in
  check_source ?node_limit ?ilp ~file:"<fuzz>" source
