(* Seeded generator of well-typed Nova programs.

   Programs are generated directly as typed ASTs: every production keeps
   track of the type it must deliver (word, bool or unit), so the output
   typechecks by construction.  The oracle then pretty-prints the AST,
   re-parses it and runs the differential stack on the printed source --
   the printed text is the single artifact that replays from the corpus.

   Two disciplines keep generated programs total and comparable:

   - every loop is counted: `var i = 0; while (i <u N) { ...; i := i+1 }`
     with a literal bound and the counter excluded from the assignable
     set, so programs terminate on both the CPS interpreter and the
     chip simulator;
   - every memory effective address is `BASE + (e & MASK)` inside a
     fixed sandbox, with reads and writes in disjoint sub-regions, so
     runs are deterministic and the oracle can diff a bounded window.

   Bank pressure comes from a prologue of simultaneously-live lets that
   are only combined at the very end of `main`, forcing the allocator to
   keep them across the memory traffic in between. *)

module A = Nova.Ast

let dloc = Support.Srcloc.dummy

(* ---------------- sandbox memory map (byte addresses) ---------------- *)

(* Reads come from the read-only windows (pre-seeded with a fixed
   pattern by the oracle); writes land in the read-write windows.  The
   result slot sits just past the SRAM write window.  Everything stays
   far from the workload tables and from the scratch spill area at the
   top of scratch. *)

let sram_ro_base = 0x1000
let sram_ro_words = 64
let sram_rw_base = 0x2000
let sram_rw_words = 64
let result_addr = 0x2100
let scratch_ro_base = 0x100
let scratch_ro_words = 32
let scratch_rw_base = 0x180
let scratch_rw_words = 32
let sdram_ro_base = 0x400
let sdram_ro_words = 128
let sdram_rw_base = 0x600
let sdram_rw_words = 128

(* masked dynamic offsets keep every access fully inside its window
   (see [gen_addr]); the oracle's comparison regions are supersets *)
let sram_mask = 0xfc
let scratch_mask = 0x7c
let sdram_mask = 0x1f8

(* ---------------- generator state ---------------- *)

type env = {
  rng : Random.State.t;
  mutable fuel : int; (* expression-node budget *)
  mutable words : string list; (* word-typed lets/params in scope *)
  mutable mutables : string list; (* assignable vars (loop counters excluded) *)
  mutable fresh : int;
  mutable helpers : (string * int) list; (* pure helpers: name, arity *)
  mutable consts : string list;
}

let rand env n = Random.State.int env.rng n

(* List.init with a guaranteed left-to-right evaluation order: the
   generator's side effects (fresh names, RNG draws) must be ordered for
   seed-reproducibility *)
let init_ordered n f =
  let rec go i = if i >= n then [] else let x = f i in x :: go (i + 1) in
  go 0
let pick env l = List.nth l (rand env (List.length l))

let fresh env prefix =
  let n = env.fresh in
  env.fresh <- n + 1;
  Printf.sprintf "%s%d" prefix n

let interesting =
  [| 0; 1; 2; 3; 5; 7; 0xff; 0x100; 0xffff; 0x7fffffff; 0x80000000;
     0xffffffff; 0xdeadbeef; 0x12345678 |]

let gen_int env =
  if rand env 3 = 0 then interesting.(rand env (Array.length interesting))
  else rand env 4096

(* ---------------- expressions ---------------- *)

let word_leaf env =
  let vars = env.words @ env.consts in
  if vars <> [] && rand env 4 < 3 then A.Var (pick env vars, dloc)
  else A.Int (gen_int env, dloc)

let arith_ops = [ A.Add; A.Sub; A.Mul; A.And; A.Or; A.Xor ]
let shift_ops = [ A.Shl; A.Shr; A.Asr ]
let cmp_ops = [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge; A.Ult; A.Uge ]

(* effective address: BASE + (e & MASK), or an aligned literal.

   [words] is the width of the access the address feeds: the mask is
   tightened so even the highest offset keeps the whole multi-word
   access inside its window.  Without the clamp an n-word read at the
   top of the read-only window runs into the adjacent read-write
   window, and the race whitelist (which only absorbs accesses fully
   inside a single region) reports it against concurrent writes. *)
let gen_addr env ~base ~mask ~align ?(words = 1) depth gen_word =
  let mask = mask - (align * (words - 1)) in
  if depth <= 0 || rand env 2 = 0 then
    A.Int (base + (rand env ((mask / align) + 1) * align), dloc)
  else
    A.Binop
      ( A.Add,
        A.Int (base, dloc),
        A.Binop (A.And, gen_word env (depth - 1), A.Int (mask, dloc), dloc),
        dloc )

let rec gen_word env depth : A.expr =
  env.fuel <- env.fuel - 1;
  if depth <= 0 || env.fuel <= 0 then word_leaf env
  else
    match rand env 20 with
    | 0 | 1 | 2 | 3 | 4 | 5 ->
        A.Binop (pick env arith_ops, gen_word env (depth - 1),
                 gen_word env (depth - 1), dloc)
    | 6 | 7 ->
        (* shift amounts are literal 0..31: interpreter and simulator
           agree on in-range shifts; out-of-range is hardware lore we do
           not want the generator to depend on *)
        A.Binop (pick env shift_ops, gen_word env (depth - 1),
                 A.Int (rand env 32, dloc), dloc)
    | 8 ->
        A.Unop ((if rand env 2 = 0 then A.Not else A.Neg),
                gen_word env (depth - 1), dloc)
    | 9 | 10 ->
        A.If (gen_bool env (depth - 1), gen_word env (depth - 1),
              gen_word env (depth - 1), dloc)
    | 11 -> A.Hash (gen_word env (depth - 1), dloc)
    | 12 | 13 ->
        (* single-word memory read from a read-only window *)
        let space, base, mask =
          match rand env 3 with
          | 0 -> (A.Sram, sram_ro_base, sram_mask)
          | 1 -> (A.Scratch, scratch_ro_base, scratch_mask)
          | _ -> (A.Sram, sram_rw_base, sram_mask)
        in
        A.MemRead (space, gen_addr env ~base ~mask ~align:4 depth gen_word,
                   Some 1, dloc)
    | 14 when env.helpers <> [] ->
        let f, arity = pick env env.helpers in
        let args =
          init_ordered arity (fun _ -> A.Apos (gen_word env (depth - 1)))
        in
        A.Call (f, args, dloc)
    | 15 when depth >= 2 -> gen_try env depth
    | _ -> word_leaf env

and gen_bool env depth : A.expr =
  env.fuel <- env.fuel - 1;
  if depth <= 0 || env.fuel <= 0 then
    A.Binop (pick env cmp_ops, word_leaf env, word_leaf env, dloc)
  else
    match rand env 6 with
    | 0 ->
        A.Binop ((if rand env 2 = 0 then A.LAnd else A.LOr),
                 gen_bool env (depth - 1), gen_bool env (depth - 1), dloc)
    | 1 -> A.Unop (A.LNot, gen_bool env (depth - 1), dloc)
    | 2 -> A.Bool (rand env 2 = 0, dloc)
    | _ ->
        A.Binop (pick env cmp_ops, gen_word env (depth - 1),
                 gen_word env (depth - 1), dloc)

(* try { if (c) { raise Fz [v = e]; } w } handle Fz [v : word] { w' } *)
and gen_try env depth : A.expr =
  let cond = gen_bool env (depth - 1) in
  let payload = gen_word env (depth - 1) in
  let normal = gen_word env (depth - 1) in
  let saved = env.words in
  env.words <- "fzv" :: env.words;
  let hbody = gen_word env (depth - 1) in
  env.words <- saved;
  let body =
    A.Seq
      ( A.If
          ( cond,
            A.Seq
              ( A.Raise ("Fz", [ A.Anamed ("fzv", payload) ], dloc),
                A.Unit dloc, dloc ),
            A.Unit dloc, dloc ),
        normal, dloc )
  in
  A.Try
    ( body,
      [ { A.hexn = "Fz"; hparams = [ ("fzv", Some (A.Tword dloc)) ];
          hbody; hloc = dloc } ],
      dloc )

(* ---------------- statements ---------------- *)

(* A statement block is a parse-shaped expression spine: Let/Vardecl
   nest, everything else is Seq (stmt, rest).  [tail] supplies the final
   expression once the statement budget runs out. *)

let gen_memwrite env depth =
  match rand env 4 with
  | 0 | 1 ->
      let addr =
        gen_addr env ~base:sram_rw_base ~mask:sram_mask ~align:4 depth
          gen_word
      in
      A.MemWrite (A.Sram, addr, gen_word env (depth - 1), dloc)
  | 2 ->
      let addr =
        gen_addr env ~base:scratch_rw_base ~mask:scratch_mask ~align:4 depth
          gen_word
      in
      A.MemWrite (A.Scratch, addr, gen_word env (depth - 1), dloc)
  | _ ->
      (* SDRAM moves quadwords: writes take a (lo, hi) pair *)
      let addr =
        gen_addr env ~base:sdram_rw_base ~mask:sdram_mask ~align:8 depth
          gen_word
      in
      A.MemWrite
        ( A.Sdram, addr,
          A.Tuple ([ gen_word env (depth - 1); gen_word env (depth - 1) ],
                   dloc),
          dloc )

let rec gen_stmts env ~nstmts ~loop_depth ~tail : A.expr =
  if nstmts <= 0 || env.fuel <= 0 then tail env
  else
    let rest env = gen_stmts env ~nstmts:(nstmts - 1) ~loop_depth ~tail in
    match rand env 12 with
    | 0 | 1 | 2 ->
        let x = fresh env "x" in
        let rhs = gen_word env (1 + rand env 3) in
        env.words <- x :: env.words;
        A.Let (A.Pvar (x, dloc), None, rhs, rest env, dloc)
    | 3 ->
        (* let (a, b, ...) = space(addr, n); *)
        let space, base, mask, align, counts =
          match rand env 3 with
          | 0 -> (A.Sram, sram_ro_base, sram_mask, 4, [ 2; 3; 4 ])
          | 1 -> (A.Scratch, scratch_ro_base, scratch_mask, 4, [ 2; 3; 4 ])
          | _ -> (A.Sdram, sdram_ro_base, sdram_mask, 8, [ 2; 4 ])
        in
        let n = pick env counts in
        let names = init_ordered n (fun _ -> fresh env "t") in
        let addr = gen_addr env ~base ~mask ~align ~words:n 2 gen_word in
        env.words <- names @ env.words;
        A.Let
          ( A.Ptuple (names, dloc), None,
            A.MemRead (space, addr, Some n, dloc), rest env, dloc )
    | 4 ->
        let x = fresh env "v" in
        let ty = if rand env 2 = 0 then Some (A.Tword dloc) else None in
        let rhs = gen_word env (1 + rand env 2) in
        env.mutables <- x :: env.mutables;
        A.Vardecl (x, ty, rhs, rest env, dloc)
    | 5 when env.mutables <> [] ->
        (* bind the statement before [rest]: constructor arguments
           evaluate right-to-left, and the statement must only see
           variables bound above it *)
        let x = pick env env.mutables in
        let s = A.Assign (x, gen_word env (1 + rand env 3), dloc) in
        A.Seq (s, rest env, dloc)
    | 6 | 7 ->
        let s = gen_memwrite env 2 in
        A.Seq (s, rest env, dloc)
    | 8 when loop_depth < 2 -> gen_while env ~nstmts ~loop_depth ~tail
    | 9 ->
        (* unit-typed if statement *)
        let cond = gen_bool env 2 in
        let branch env =
          let s =
            if env.mutables <> [] && rand env 2 = 0 then
              A.Assign (pick env env.mutables, gen_word env 2, dloc)
            else gen_memwrite env 2
          in
          A.Seq (s, A.Unit dloc, dloc)
        in
        let then_ = branch env in
        let else_ = if rand env 2 = 0 then branch env else A.Unit dloc in
        let s = A.If (cond, then_, else_, dloc) in
        A.Seq (s, rest env, dloc)
    | _ ->
        let x = fresh env "x" in
        let rhs = gen_word env (2 + rand env 2) in
        env.words <- x :: env.words;
        A.Let (A.Pvar (x, dloc), None, rhs, rest env, dloc)

(* var i = 0; while (i <u N) { body...; i := i + 1; }; rest *)
and gen_while env ~nstmts ~loop_depth ~tail : A.expr =
  let i = fresh env "i" in
  let bound = 1 + rand env 6 in
  let saved_mut = env.mutables in
  (* the counter is NOT in [mutables]: nothing inside may retarget it,
     so the loop provably terminates *)
  let body_stmts = 1 + rand env 3 in
  let inc =
    A.Seq
      ( A.Assign (i, A.Binop (A.Add, A.Var (i, dloc), A.Int (1, dloc), dloc),
                  dloc),
        A.Unit dloc, dloc )
  in
  let saved_words = env.words in
  env.words <- i :: env.words;
  let body =
    gen_stmts env ~nstmts:body_stmts ~loop_depth:(loop_depth + 1)
      ~tail:(fun _ -> inc)
  in
  env.words <- saved_words;
  env.mutables <- saved_mut;
  let while_ =
    A.While
      (A.Binop (A.Ult, A.Var (i, dloc), A.Int (bound, dloc), dloc), body,
       dloc)
  in
  A.Vardecl
    ( i, None, A.Int (0, dloc),
      A.Seq (while_,
             gen_stmts env ~nstmts:(nstmts - 1) ~loop_depth ~tail, dloc),
      dloc )

(* ---------------- top level ---------------- *)

(* prologue of simultaneously-live lets; combined again only in the
   tail.  Right-hand sides are generated in binding order, so each sees
   only the variables already in scope above it. *)
let gen_pressure env k rest_thunk =
  let bindings =
    init_ordered k (fun _ ->
        let x = fresh env "p" in
        let rhs = gen_word env 1 in
        env.words <- x :: env.words;
        (x, rhs))
  in
  let rest = rest_thunk () in
  List.fold_right
    (fun (x, rhs) acc -> A.Let (A.Pvar (x, dloc), None, rhs, acc, dloc))
    bindings rest

let gen_tail env =
  (* xor together a sample of everything live, ending the pressure
     ranges here, then publish through the result slot *)
  let sample =
    List.filteri (fun i _ -> i mod (1 + rand env 2) = 0) env.words
  in
  let acc =
    List.fold_left
      (fun acc x -> A.Binop (A.Xor, acc, A.Var (x, dloc), dloc))
      (gen_word env 2) sample
  in
  A.Let
    ( A.Pvar ("ret", dloc), None, acc,
      A.Seq
        ( A.MemWrite (A.Sram, A.Int (result_addr, dloc), A.Var ("ret", dloc),
                      dloc),
          A.Var ("ret", dloc), dloc ),
      dloc )

let gen_helper env idx =
  let arity = 2 in
  let params = init_ordered arity (fun i -> Printf.sprintf "a%d" i) in
  let saved = (env.words, env.mutables, env.helpers, env.consts) in
  env.words <- params;
  env.mutables <- [];
  env.helpers <- [];
  (* pure: no memory traffic inside helpers *)
  let rec pure depth =
    env.fuel <- env.fuel - 1;
    if depth <= 0 || env.fuel <= 0 then word_leaf env
    else
      match rand env 8 with
      | 0 | 1 | 2 | 3 ->
          A.Binop (pick env arith_ops, pure (depth - 1), pure (depth - 1),
                   dloc)
      | 4 ->
          A.Binop (pick env shift_ops, pure (depth - 1),
                   A.Int (rand env 32, dloc), dloc)
      | 5 -> A.Unop ((if rand env 2 = 0 then A.Not else A.Neg),
                     pure (depth - 1), dloc)
      | 6 ->
          A.If
            ( A.Binop (pick env cmp_ops, pure (depth - 1), pure (depth - 1),
                       dloc),
              pure (depth - 1), pure (depth - 1), dloc )
      | _ -> word_leaf env
  in
  let body = pure 3 in
  let words, mutables, helpers, consts = saved in
  env.words <- words;
  env.mutables <- mutables;
  env.helpers <- helpers;
  env.consts <- consts;
  let name = Printf.sprintf "f%d" idx in
  ( name, arity,
    {
      A.fn_name = name;
      fn_params =
        A.Ppos (List.map (fun p -> (p, Some (A.Tword dloc))) params);
      fn_ret = Some (A.Tword dloc);
      fn_body = body;
      fn_loc = dloc;
    } )

let program ?(max_size = 20) (rng : Random.State.t) : A.program =
  let env =
    { rng; fuel = max_size * 5; words = []; mutables = []; fresh = 0;
      helpers = []; consts = [] }
  in
  let nconsts = rand env 3 in
  let consts =
    init_ordered nconsts (fun i ->
        let name = Printf.sprintf "K%d" i in
        env.consts <- name :: env.consts;
        A.Dconst (name, A.Int (gen_int env, dloc), dloc))
  in
  let nhelpers = rand env 3 in
  let helpers =
    init_ordered nhelpers (fun i ->
        let name, arity, fd = gen_helper env i in
        env.helpers <- (name, arity) :: env.helpers;
        A.Dfun fd)
  in
  let pressure = 3 + rand env 6 in
  let nstmts = 4 + rand env (max 1 max_size) in
  let body =
    gen_pressure env pressure (fun () ->
        gen_stmts env ~nstmts ~loop_depth:0 ~tail:gen_tail)
  in
  let main =
    A.Dfun
      {
        A.fn_name = "main";
        fn_params = A.Ppos [];
        fn_ret = Some (A.Tword dloc);
        fn_body = body;
        fn_loc = dloc;
      }
  in
  { A.decls = consts @ helpers @ [ main ] }

let source_of (p : A.program) = Nova.Pp.program_to_string p
