(* The `novac serve` compile daemon.

   Accepts connections on a Unix domain socket and serves
   newline-delimited JSON requests ([Protocol]) sequentially: compile
   jobs are CPU-bound and the solver already parallelizes across
   domains, so one job at a time is the right concurrency model -- the
   win of the daemon is the warm in-process cache ([Regalloc.Driver]'s
   stage memos plus the artifact store), not connection parallelism.

   Every job runs under a `serve-job` trace span and is timed
   individually; the response carries the per-stage cache report so
   clients (and the service-smoke CI job) can assert hit/miss
   behavior. *)

open Support

type config = {
  socket_path : string;
  cache_dir : string option; (* None: the store's default *)
  base_options : Regalloc.Driver.options;
  verbose : bool;
}

let default_socket = Filename.concat "_artifacts" "novac.sock"

let log config fmt =
  if config.verbose then Fmt.epr ("serve: " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter fmt

let handle_job config store (j : Protocol.job) : Json.t =
  let t0 = Unix.gettimeofday () in
  let options = Protocol.options_of_job config.base_options j in
  Trace.with_span "serve-job"
    ~args:[ ("file", Trace.Str j.Protocol.job_file) ]
  @@ fun () ->
  match
    Regalloc.Driver.compile_incremental ~options ~store
      ~file:j.Protocol.job_file j.Protocol.job_source
  with
  | compiled, report ->
      let elapsed = Unix.gettimeofday () -. t0 in
      log config "%s: %s in %.3fs (front=%b model=%b solve=%b full=%b warm=%b)"
        j.Protocol.job_file
        (Regalloc.Driver.solver_outcome_to_string
           compiled.Regalloc.Driver.stats.Regalloc.Driver.solver_outcome)
        elapsed report.Regalloc.Driver.front_hit
        report.Regalloc.Driver.model_hit report.Regalloc.Driver.solve_hit
        report.Regalloc.Driver.full_hit report.Regalloc.Driver.warm_used;
      Protocol.compiled_json ~elapsed compiled report
  | exception Diag.Compile_error d ->
      Protocol.error_json (Fmt.str "%a" Diag.pp d)
  | exception Regalloc.Driver.Allocation_failed msg ->
      Protocol.error_json ("allocation failed: " ^ msg)

let handle_request config store (req : Protocol.request) :
    Json.t * [ `Continue | `Shutdown ] =
  match req with
  | Protocol.Ping ->
      (Json.Obj [ ("ok", Json.Bool true); ("op", Json.Str "ping") ], `Continue)
  | Protocol.Stats ->
      ( Json.Obj
          [ ("ok", Json.Bool true); ("metrics", Json.Str (Metrics.dump ())) ],
        `Continue )
  | Protocol.Clear_cache ->
      Regalloc.Driver.clear_memos ();
      Cache.Store.clear_memory store;
      (Json.Obj [ ("ok", Json.Bool true) ], `Continue)
  | Protocol.Shutdown -> (Json.Obj [ ("ok", Json.Bool true) ], `Shutdown)
  | Protocol.Compile j -> (handle_job config store j, `Continue)
  | Protocol.Batch jobs ->
      ( Json.Obj
          [
            ("ok", Json.Bool true);
            ("results", Json.Arr (List.map (handle_job config store) jobs));
          ],
        `Continue )

(* Serve one connection until the peer closes it; returns whether a
   shutdown was requested. *)
let serve_connection config store fd : [ `Continue | `Shutdown ] =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let verdict = ref `Continue in
  (try
     let continue_ = ref true in
     while !continue_ do
       match input_line ic with
       | exception End_of_file -> continue_ := false
       | line when String.trim line = "" -> ()
       | line ->
           let response, v =
             match Json.parse line with
             | Error e ->
                 (Protocol.error_json ("bad request: " ^ e), `Continue)
             | Ok doc -> (
                 match Protocol.request_of_json doc with
                 | Error e -> (Protocol.error_json e, `Continue)
                 | Ok req -> handle_request config store req)
           in
           output_string oc (Json.encode response);
           output_char oc '\n';
           flush oc;
           if v = `Shutdown then begin
             verdict := `Shutdown;
             continue_ := false
           end
     done
   with Sys_error _ | Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  !verdict

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir)
  then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* Run the daemon until a shutdown request arrives.  [ready] is called
   once the socket is listening (the in-process smoke test synchronizes
   on it; the CLI prints the socket path). *)
let run ?(ready = fun () -> ()) (config : config) : unit =
  let store =
    match config.cache_dir with
    | Some dir -> Cache.Store.create ~dir ()
    | None -> Cache.Store.create ()
  in
  mkdir_p (Filename.dirname config.socket_path);
  (try Unix.unlink config.socket_path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink config.socket_path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX config.socket_path);
      Unix.listen sock 16;
      ready ();
      log config "listening on %s" config.socket_path;
      let continue_ = ref true in
      while !continue_ do
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | fd, _ ->
            if serve_connection config store fd = `Shutdown then begin
              log config "shutdown requested";
              continue_ := false
            end
      done)
