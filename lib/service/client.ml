(* Minimal client for the `novac serve` daemon: connect over the Unix
   domain socket, send one JSON request per line, read one JSON
   response per line.  Used by the service-smoke CI job and by tests;
   external clients can speak the protocol from any language. *)

open Support

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect ~socket_path : t =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket_path);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let with_connection ~socket_path f =
  let t = connect ~socket_path in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* Retry [connect] until the daemon's socket accepts, for callers that
   just spawned the daemon; gives up after [timeout] seconds. *)
let connect_retry ?(timeout = 10.) ~socket_path () : t =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    match connect ~socket_path with
    | t -> t
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        ignore (Unix.select [] [] [] 0.05);
        go ()
  in
  go ()

let request t (req : Json.t) : (Json.t, string) result =
  output_string t.oc (Json.encode req);
  output_char t.oc '\n';
  flush t.oc;
  match input_line t.ic with
  | line -> Json.parse line
  | exception End_of_file -> Error "server closed the connection"

let ping t = request t (Json.Obj [ ("op", Json.Str "ping") ])
let stats t = request t (Json.Obj [ ("op", Json.Str "stats") ])
let shutdown t = request t (Json.Obj [ ("op", Json.Str "shutdown") ])
let clear_cache t = request t (Json.Obj [ ("op", Json.Str "clear-cache") ])

let compile_request ?time_limit ?node_limit ?rel_gap ?allocator ?objective
    ?entry ~file ~source () : Json.t =
  let base =
    [ ("op", Json.Str "compile"); ("file", Json.Str file);
      ("source", Json.Str source) ]
  in
  let opt name v f = Option.map (fun x -> (name, f x)) v in
  let extras =
    List.filter_map Fun.id
      [
        opt "time_limit" time_limit (fun x -> Json.Num x);
        opt "node_limit" node_limit (fun x -> Json.Num (float_of_int x));
        opt "rel_gap" rel_gap (fun x -> Json.Num x);
        opt "allocator" allocator (fun x -> Json.Str x);
        opt "objective" objective (fun x -> Json.Str x);
        opt "entry" entry (fun x -> Json.Str x);
      ]
  in
  Json.Obj (base @ extras)

let compile ?time_limit ?node_limit ?rel_gap ?allocator ?objective ?entry
    ~file ~source t : (Json.t, string) result =
  request t
    (compile_request ?time_limit ?node_limit ?rel_gap ?allocator ?objective
       ?entry ~file ~source ())
