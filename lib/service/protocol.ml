(* Wire protocol for the `novac serve` compile daemon.

   Newline-delimited JSON over a Unix domain socket: each request is one
   JSON object on one line, each response is one JSON object on one
   line, in order.  The only JSON machinery used is [Support.Json], so
   the protocol needs nothing beyond the stdlib.

   Requests:

     {"op":"ping"}
     {"op":"stats"}                       -- metrics registry dump
     {"op":"clear-cache"}                 -- drop in-memory cache tiers
     {"op":"shutdown"}
     {"op":"compile", "file":F, "source":S, ...overrides}
     {"op":"batch", "jobs":[{...compile job...}, ...]}

   A compile job carries the source text plus optional per-job
   overrides of the daemon's base options: "time_limit" (seconds),
   "node_limit", "rel_gap", "allocator" ("ilp"|"baseline"),
   "objective" ("moves"|"spillfeas"), "entry".  Worker-domain count and
   the deterministic schedule are daemon-level settings
   (`--solver-domains`, `--solver-deterministic`) and cannot be
   overridden per job.

   Responses always carry "ok": true/false; failures carry "error".
   Successful compiles report the assembly, headline stats, the
   per-stage cache report and the wall-clock spent serving the job. *)

open Support

type job = {
  job_file : string;
  job_source : string;
  job_time_limit : float option;
  job_node_limit : int option;
  job_rel_gap : float option;
  job_allocator : Regalloc.Driver.allocator option;
  job_objective : Regalloc.Ilp.objective_mode option;
  job_entry : string option;
}

type request =
  | Ping
  | Stats
  | Clear_cache
  | Shutdown
  | Compile of job
  | Batch of job list

let job_of_json (doc : Json.t) : (job, string) result =
  let str name = Option.bind (Json.member name doc) Json.to_string in
  let num name = Option.bind (Json.member name doc) Json.to_float in
  match (str "file", str "source") with
  | None, _ -> Error "compile job: missing \"file\""
  | _, None -> Error "compile job: missing \"source\""
  | Some file, Some source ->
      let allocator =
        match str "allocator" with
        | Some "ilp" -> Some Regalloc.Driver.Ilp_allocator
        | Some "baseline" -> Some Regalloc.Driver.Baseline_allocator
        | _ -> None
      in
      let objective =
        match str "objective" with
        | Some "moves" -> Some Regalloc.Ilp.Minimize_moves
        | Some "spillfeas" -> Some Regalloc.Ilp.Spill_feasibility
        | _ -> None
      in
      Ok
        {
          job_file = file;
          job_source = source;
          job_time_limit = num "time_limit";
          job_node_limit = Option.map int_of_float (num "node_limit");
          job_rel_gap = num "rel_gap";
          job_allocator = allocator;
          job_objective = objective;
          job_entry = str "entry";
        }

let request_of_json (doc : Json.t) : (request, string) result =
  match Option.bind (Json.member "op" doc) Json.to_string with
  | Some "ping" -> Ok Ping
  | Some "stats" -> Ok Stats
  | Some "clear-cache" -> Ok Clear_cache
  | Some "shutdown" -> Ok Shutdown
  | Some "compile" -> Result.map (fun j -> Compile j) (job_of_json doc)
  | Some "batch" -> (
      match Json.member "jobs" doc with
      | Some (Json.Arr jobs) ->
          let rec go acc = function
            | [] -> Ok (Batch (List.rev acc))
            | j :: rest -> (
                match job_of_json j with
                | Ok job -> go (job :: acc) rest
                | Error e -> Error e)
          in
          go [] jobs
      | _ -> Error "batch: missing \"jobs\" array")
  | Some op -> Error (Printf.sprintf "unknown op %S" op)
  | None -> Error "missing \"op\""

(* Per-job option merge: the daemon's base options with the job's
   overrides applied. *)
let options_of_job (base : Regalloc.Driver.options) (j : job) :
    Regalloc.Driver.options =
  let v default = Option.value ~default in
  {
    base with
    Regalloc.Driver.time_limit = v base.Regalloc.Driver.time_limit j.job_time_limit;
    node_limit = v base.Regalloc.Driver.node_limit j.job_node_limit;
    rel_gap = v base.Regalloc.Driver.rel_gap j.job_rel_gap;
    allocator = v base.Regalloc.Driver.allocator j.job_allocator;
    objective = v base.Regalloc.Driver.objective j.job_objective;
    entry = v base.Regalloc.Driver.entry j.job_entry;
  }

(* ---------------- response builders ---------------- *)

let error_json msg = Json.Obj [ ("ok", Json.Bool false); ("error", Json.Str msg) ]

let cache_json (r : Regalloc.Driver.cache_report) =
  Json.Obj
    [
      ("front", Json.Bool r.Regalloc.Driver.front_hit);
      ("model", Json.Bool r.Regalloc.Driver.model_hit);
      ("solve", Json.Bool r.Regalloc.Driver.solve_hit);
      ("full", Json.Bool r.Regalloc.Driver.full_hit);
      ("warm", Json.Bool r.Regalloc.Driver.warm_used);
      ("fingerprint", Json.Str r.Regalloc.Driver.model_fingerprint);
    ]

let compiled_json ~elapsed (c : Regalloc.Driver.compiled)
    (r : Regalloc.Driver.cache_report) =
  let stats = c.Regalloc.Driver.stats in
  let solver =
    match stats.Regalloc.Driver.mip with
    | None -> Json.Null
    | Some m ->
        Json.Obj
          [
            ("nodes", Json.Num (float_of_int m.Lp.Mip.nodes));
            ("total_time", Json.Num m.Lp.Mip.total_time);
            ("warm_start", Json.Bool m.Lp.Mip.warm_start_used);
            ("incumbent_source", Json.Str m.Lp.Mip.incumbent_source);
            ("best_bound", Json.Num m.Lp.Mip.best_bound);
          ]
  in
  Json.Obj
    [
      ("ok", Json.Bool true);
      ("asm", Json.Str (Ixp.Asm.program_to_string c.Regalloc.Driver.physical));
      ( "outcome",
        Json.Str
          (Regalloc.Driver.solver_outcome_to_string
             stats.Regalloc.Driver.solver_outcome) );
      ("moves", Json.Num (float_of_int stats.Regalloc.Driver.moves_inserted));
      ("spills", Json.Num (float_of_int stats.Regalloc.Driver.spills_inserted));
      ( "weighted_move_cost",
        Json.Num stats.Regalloc.Driver.weighted_move_cost );
      ("solver", solver);
      ("cache", cache_json r);
      ("elapsed_s", Json.Num elapsed);
    ]
