(* Generic iterative dataflow over [Ixp.Flowgraph], polymorphic in the
   register representation: the same solver runs on virtual-register
   graphs (before allocation) and on emitted physical programs.

   The framework is the classic join-semilattice worklist algorithm:

     - a client supplies a lattice (bottom, join, equality, widening) and
       per-instruction transfer functions;
     - facts are attached to block boundaries and recomputed inside
       blocks on demand, so memory is O(blocks), not O(points);
     - loops terminate through [join]; lattices of unbounded height
       (e.g. intervals) additionally get [widen] applied once a block has
       been visited more than [widen_after] times.

   The [at] label passed to [join]/[widen] names the receiving control
   join (the block whose input is being merged).  Set-like lattices
   ignore it; lattices that track value identity (the interval domain in
   [Effects]) use it as a stable key for merged values, which is what
   makes branch refinement sound across loop iterations. *)

module FG = Ixp.Flowgraph
module Insn = Ixp.Insn

module type LATTICE = sig
  type t

  val bottom : t
  val equal : t -> t -> bool

  (* [join ~at old extra]: least upper bound, merged at control join [at]. *)
  val join : at:string -> t -> t -> t

  (* [widen ~at ~old next]: accelerate convergence; must over-approximate
     [join ~at old next].  Lattices of finite height can use [join]. *)
  val widen : at:string -> old:t -> t -> t
end

type direction = Forward | Backward

module Make (L : LATTICE) = struct
  type 'r spec = {
    direction : direction;
    boundary : L.t;
        (* fact at the entry point (forward) or at [Halt] exits (backward) *)
    transfer : block:string -> pos:int -> 'r Insn.t -> L.t -> L.t;
        (* effect of one instruction, in the direction of the analysis:
           forward maps the fact before the instruction to the fact after
           it; backward maps the fact after to the fact before. *)
    transfer_term : 'r Insn.terminator -> L.t -> L.t;
        (* effect of the terminator itself (e.g. branch uses in a
           backward liveness analysis) *)
    refine_edge : 'r Insn.terminator -> succ:string -> L.t -> L.t;
        (* forward only: refine the fact flowing along one control edge
           with what taking that edge implies (branch conditions).
           Identity for most clients. *)
  }

  let no_refine (_ : 'r Insn.terminator) ~succ:(_ : string) (fact : L.t) = fact

  type solution = {
    entry_facts : (string, L.t) Hashtbl.t;
        (* fact at block point 0 (forward: input; backward: what holds
           for the paths from the block's first instruction) *)
    exit_facts : (string, L.t) Hashtbl.t;
        (* fact at the block's exit point: forward, after the last
           instruction (before the terminator); backward, including the
           terminator's own transfer *)
    iterations : int; (* block visits until the fixpoint *)
  }

  let get tbl label = Option.value ~default:L.bottom (Hashtbl.find_opt tbl label)

  (* Apply the instruction transfers of [b] in solving order. *)
  let through_block (spec : 'r spec) (b : 'r FG.block) fact =
    let n = Array.length b.FG.insns in
    match spec.direction with
    | Forward ->
        let acc = ref fact in
        for k = 0 to n - 1 do
          acc := spec.transfer ~block:b.FG.label ~pos:k b.FG.insns.(k) !acc
        done;
        !acc
    | Backward ->
        let acc = ref fact in
        for k = n - 1 downto 0 do
          acc := spec.transfer ~block:b.FG.label ~pos:k b.FG.insns.(k) !acc
        done;
        !acc

  (* Widening points: targets of back edges.  By the white-path theorem
     the first-discovered vertex of every cycle receives a back edge, so
     widening only there still cuts every infinite ascending chain --
     while facts at ordinary joins (e.g. a loop body refined by the loop
     branch) are never widened, which would throw the refinement away. *)
  let widen_points (g : 'r FG.t) : (string, unit) Hashtbl.t =
    let heads = Hashtbl.create 8 in
    let state = Hashtbl.create 16 in
    let rec go label =
      Hashtbl.replace state label `Active;
      List.iter
        (fun succ ->
          match Hashtbl.find_opt state succ with
          | Some `Active -> Hashtbl.replace heads succ ()
          | Some `Done -> ()
          | None -> go succ)
        (Insn.term_targets (FG.block g label).FG.term);
      Hashtbl.replace state label `Done
    in
    go (FG.entry g).FG.label;
    heads

  let solve ?(widen_after = 3) (spec : 'r spec) (g : 'r FG.t) : solution =
    let entry_facts = Hashtbl.create 16 in
    let exit_facts = Hashtbl.create 16 in
    let visits = Hashtbl.create 16 in
    let widen_heads = widen_points g in
    (* termination backstop for blocks outside the entry's DFS (backward
       analyses seed unreachable cycles too): widen anywhere after a
       generous number of visits *)
    let hard_cap = max 64 (widen_after * 16) in
    let should_widen at v =
      (Hashtbl.mem widen_heads at && v > widen_after) || v > hard_cap
    in
    let iterations = ref 0 in
    let queue = Queue.create () in
    let queued = Hashtbl.create 16 in
    let push label =
      if not (Hashtbl.mem queued label) then begin
        Hashtbl.replace queued label ();
        Queue.push label queue
      end
    in
    (* [merge ~at contrib] folds one incoming contribution into the
       stored fact of block [at] (input side of the solving direction)
       and requeues [at] when it grew. *)
    let input_side =
      match spec.direction with
      | Forward -> entry_facts
      | Backward -> exit_facts
    in
    let merge ~at contrib =
      let old = get input_side at in
      let v = Hashtbl.find_opt visits at |> Option.value ~default:0 in
      let joined = L.join ~at old contrib in
      let next = if should_widen at v then L.widen ~at ~old joined else joined in
      if not (L.equal old next) then begin
        Hashtbl.replace input_side at next;
        push at
      end
    in
    (match spec.direction with
    | Forward ->
        Hashtbl.replace entry_facts (FG.entry g).FG.label spec.boundary;
        push (FG.entry g).FG.label
    | Backward ->
        (* Seed every block: backward problems flow from Halt exits, and
           infinite loops (no Halt-reachable exit) still need facts. *)
        FG.iter_blocks
          (fun b ->
            (match b.FG.term with
            | Insn.Halt ->
                Hashtbl.replace exit_facts b.FG.label
                  (spec.transfer_term b.FG.term spec.boundary)
            | _ -> ());
            push b.FG.label)
          g);
    let preds = lazy (FG.predecessors g) in
    while not (Queue.is_empty queue) do
      let label = Queue.pop queue in
      Hashtbl.remove queued label;
      incr iterations;
      Hashtbl.replace visits label
        (1 + (Hashtbl.find_opt visits label |> Option.value ~default:0));
      let b = FG.block g label in
      match spec.direction with
      | Forward ->
          let out = through_block spec b (get entry_facts label) in
          Hashtbl.replace exit_facts label out;
          let after_term = spec.transfer_term b.FG.term out in
          List.iter
            (fun succ ->
              merge ~at:succ (spec.refine_edge b.FG.term ~succ after_term))
            (Insn.term_targets b.FG.term)
      | Backward ->
          (* Exit fact: terminator transfer over the join of successor
             entry facts (Halt exits were seeded above and have no
             successors to join). *)
          (match Insn.term_targets b.FG.term with
          | [] -> ()
          | succs ->
              let joined =
                List.fold_left
                  (fun acc s -> L.join ~at:label acc (get entry_facts s))
                  L.bottom succs
              in
              let ex = spec.transfer_term b.FG.term joined in
              let old = get exit_facts label in
              let v = Hashtbl.find_opt visits label |> Option.value ~default:0 in
              let merged = L.join ~at:label old ex in
              let next =
                if should_widen label v then L.widen ~at:label ~old merged
                else merged
              in
              Hashtbl.replace exit_facts label next);
          let entry = through_block spec b (get exit_facts label) in
          let old = get entry_facts label in
          if not (L.equal old entry) then begin
            Hashtbl.replace entry_facts label entry;
            List.iter push
              (Option.value ~default:[]
                 (Hashtbl.find_opt (Lazy.force preds) label))
          end
    done;
    { entry_facts; exit_facts; iterations = !iterations }

  let entry_fact sol label = get sol.entry_facts label
  let exit_fact sol label = get sol.exit_facts label

  (* Facts at every point of [b]: index k is the fact at point (b, k).
     For a forward solution index k holds before instruction k; for a
     backward solution index k holds for the paths from instruction k
     (i.e. liveness-style "after the point is reached"). *)
  let point_facts (spec : 'r spec) sol (b : 'r FG.block) : L.t array =
    let n = Array.length b.FG.insns in
    let facts = Array.make (n + 1) L.bottom in
    (match spec.direction with
    | Forward ->
        facts.(0) <- entry_fact sol b.FG.label;
        for k = 0 to n - 1 do
          facts.(k + 1) <-
            spec.transfer ~block:b.FG.label ~pos:k b.FG.insns.(k) facts.(k)
        done
    | Backward ->
        facts.(n) <- exit_fact sol b.FG.label;
        for k = n - 1 downto 0 do
          facts.(k) <-
            spec.transfer ~block:b.FG.label ~pos:k b.FG.insns.(k) facts.(k + 1)
        done);
    facts
end

(* Blocks reachable from the entry; shared by clients that must not
   report on dead code (and by the unreachable-code lint itself). *)
let reachable_blocks (g : 'r FG.t) : (string, unit) Hashtbl.t =
  let seen = Hashtbl.create 16 in
  let rec go label =
    if not (Hashtbl.mem seen label) then begin
      Hashtbl.replace seen label ();
      List.iter go (Insn.term_targets (FG.block g label).FG.term)
    end
  in
  go (FG.entry g).FG.label;
  seen
