(* Machine-level translation validation of emitted physical programs,
   strictly stronger than [Ixp.Checker]:

     - every per-instruction legality rule of [Checker] (delegated);
     - initialization: a forward analysis tracking both the registers
       written on *every* path from the entry (must-init, intersection
       join) and on *some* path (may-init, union join).  A read outside
       the may-init set can never observe a definition and is a hard
       error; a read outside only the must-init set is reported at note
       severity, because compiled loop-carried values routinely look
       uninitialized along the infeasible zero-trip loop-exit path and
       the analysis is path-insensitive.  [Checker] looks at one
       instruction at a time and cannot see either;
     - an independent backward liveness recomputation, from which we
       derive the per-point register pressure of every bank and check it
       against the hardware capacities (and report the maxima, which is
       how the bank-capacity claim of the allocator is re-proved at the
       machine level: the paper's K-constraint keeps one A register in
       reserve, so emitted code may touch capacity but never exceed it).

   The assignment-level half of translation validation (bank occupancy
   of the ILP's own point/temp sets, transfer-aggregate colors, same-reg
   pairs) lives in [Regalloc.Validate], next to the types it checks. *)

module FG = Ixp.Flowgraph
module Insn = Ixp.Insn
module Bank = Ixp.Bank
module Reg = Ixp.Reg

type finding = {
  block : string;
  pos : int;
  message : string;
  severe : bool;
      (* false: informational (possibly-uninitialized on an infeasible
         path); true: the program is wrong *)
}

type report = {
  findings : finding list;
  max_pressure : (Bank.t * int) list;
      (* peak simultaneously-live registers per bank *)
}

(* ------------------------------------------------------------------ *)
(* Initialization (forward; must = intersection, may = union)          *)
(* ------------------------------------------------------------------ *)

module Init_lattice = struct
  (* [Init (must, may)]: [must] is written on every path reaching the
     point, [may] on at least one. *)
  type t = Unreached | Init of Reg.Set.t * Reg.Set.t

  let bottom = Unreached

  let equal a b =
    match (a, b) with
    | Unreached, Unreached -> true
    | Init (x1, x2), Init (y1, y2) ->
        Reg.Set.equal x1 y1 && Reg.Set.equal x2 y2
    | _ -> false

  let join ~at:_ a b =
    match (a, b) with
    | Unreached, x | x, Unreached -> x
    | Init (m1, y1), Init (m2, y2) ->
        Init (Reg.Set.inter m1 m2, Reg.Set.union y1 y2)

  let widen ~at ~old next = join ~at old next
end

module Init_solver = Dataflow.Make (Init_lattice)

let init_spec : Reg.t Init_solver.spec =
  {
    Init_solver.direction = Dataflow.Forward;
    boundary = Init_lattice.Init (Reg.Set.empty, Reg.Set.empty);
    transfer =
      (fun ~block:_ ~pos:_ insn fact ->
        match fact with
        | Init_lattice.Unreached -> Init_lattice.Unreached
        | Init_lattice.Init (must, may) ->
            let addl s = List.fold_left (fun s d -> Reg.Set.add d s) s in
            let ds = Insn.defs insn in
            Init_lattice.Init (addl must ds, addl may ds));
    transfer_term = (fun _term fact -> fact);
    refine_edge = Init_solver.no_refine;
  }

let check (g : Reg.t FG.t) : report =
  let findings = ref [] in
  let add ?(severe = true) ~block ~pos fmt =
    Fmt.kstr
      (fun message -> findings := { block; pos; message; severe } :: !findings)
      fmt
  in
  (* 1. per-instruction legality, delegated to the checker *)
  List.iter
    (fun (v : Ixp.Checker.violation) ->
      add ~block:v.Ixp.Checker.block ~pos:v.Ixp.Checker.pos "%s"
        v.Ixp.Checker.message)
    (Ixp.Checker.check g);
  let reachable = Dataflow.reachable_blocks g in
  (* 2. initialization *)
  let init_sol = Init_solver.solve init_spec g in
  FG.iter_blocks
    (fun b ->
      if Hashtbl.mem reachable b.FG.label then begin
        let facts = Init_solver.point_facts init_spec init_sol b in
        let check_uses pos uses =
          match facts.(pos) with
          | Init_lattice.Unreached -> ()
          | Init_lattice.Init (must, may) ->
              List.iter
                (fun u ->
                  if not (Reg.Set.mem u may) then
                    add ~block:b.FG.label ~pos
                      "register %s is read but never written on any path from \
                       the entry"
                      (Reg.to_string u)
                  else if not (Reg.Set.mem u must) then
                    add ~severe:false ~block:b.FG.label ~pos
                      "register %s may be read before it is written (no \
                       definition on one entry path; for loop-carried values \
                       that path is usually infeasible)"
                      (Reg.to_string u))
                uses
        in
        Array.iteri (fun pos insn -> check_uses pos (Insn.uses insn)) b.FG.insns;
        check_uses (Array.length b.FG.insns) (Insn.term_uses b.FG.term)
      end)
    g;
  (* 3. independent liveness: pressure per bank against hardware capacity *)
  let live = Live.solve g in
  let max_pressure = Hashtbl.create 8 in
  FG.iter_blocks
    (fun b ->
      if Hashtbl.mem reachable b.FG.label then
        Array.iteri
          (fun pos set ->
            let by_bank = Hashtbl.create 8 in
            Reg.Set.iter
              (fun r ->
                let bk = Reg.bank r in
                Hashtbl.replace by_bank bk
                  (1 + Option.value ~default:0 (Hashtbl.find_opt by_bank bk)))
              set;
            Hashtbl.iter
              (fun bk n ->
                if n > Bank.capacity bk then
                  add ~block:b.FG.label ~pos
                    "%d registers of bank %s live at once (capacity %d)" n
                    (Bank.to_string bk) (Bank.capacity bk);
                if n > Option.value ~default:0 (Hashtbl.find_opt max_pressure bk)
                then Hashtbl.replace max_pressure bk n)
              by_bank)
          (Live.point_live live b))
    g;
  (* Registers live into the entry: the same some-path-uninitialized
     property as the must-init check above, derived independently from
     the backward liveness; note severity for the same reason. *)
  let entry_live = Live.live_in live (FG.entry g).FG.label in
  if not (Ixp.Reg.Set.is_empty entry_live) then
    add ~severe:false ~block:(FG.entry g).FG.label ~pos:0
      "live into the program entry (possible read of uninitialized state): %s"
      (String.concat ", "
         (List.map Reg.to_string (Ixp.Reg.Set.elements entry_live)));
  {
    findings = List.rev !findings;
    max_pressure =
      Hashtbl.fold (fun b n acc -> (b, n) :: acc) max_pressure []
      |> List.sort compare;
  }
