(* Saturating integer intervals, the value domain of the effect
   analysis.  Bounds live in [neg_inf, pos_inf]; the sentinels are far
   below/above any 32-bit machine word, and all arithmetic clamps back
   into the sentinel range, so OCaml-int overflow cannot occur.

   The operations only need to be precise enough to bound *addresses*:
   adds and constant shifts (table indexing), and-masks (byte
   extraction), and or/xor of non-negative values (field packing).
   Everything else degrades soundly to [top]. *)

type t = { lo : int; hi : int }

let pos_inf = max_int / 4
let neg_inf = -pos_inf
let top = { lo = neg_inf; hi = pos_inf }

let clamp v = if v > pos_inf then pos_inf else if v < neg_inf then neg_inf else v
let make lo hi = { lo = clamp lo; hi = clamp hi }
let exact n = make n n
let is_exact t = t.lo = t.hi
let is_bounded t = t.lo > neg_inf && t.hi < pos_inf
let mem n t = n >= t.lo && n <= t.hi
let equal a b = a.lo = b.lo && a.hi = b.hi
let join a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

(* meet returns None when the intersection is empty (dead branch edge) *)
let meet a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let widen ~old next =
  {
    lo = (if next.lo < old.lo then neg_inf else old.lo);
    hi = (if next.hi > old.hi then pos_inf else old.hi);
  }

let add a b = make (a.lo + b.lo) (a.hi + b.hi)
let sub a b = make (a.lo - b.hi) (a.hi - b.lo)
let neg a = make (-a.hi) (-a.lo)

(* Number of bits needed for a non-negative value. *)
let bits n =
  let rec go acc n = if n = 0 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

(* Smallest all-ones mask covering every value up to [n] (n >= 0). *)
let pow2_mask n = (1 lsl bits n) - 1

let shl a b =
  if is_exact b && b.lo >= 0 && b.lo < 32 && a.lo >= 0 && is_bounded a then
    let k = b.lo in
    let s v = if v > pos_inf asr k then pos_inf else v lsl k in
    make (s a.lo) (s a.hi)
  else top

let shr a b =
  if is_exact b && b.lo >= 0 && a.lo >= 0 then
    make (a.lo lsr b.lo) (a.hi lsr b.lo)
  else top

let and_ a b =
  if is_exact a && is_exact b then exact (a.lo land b.lo)
  else
    (* x land m with m >= 0 is in [0, m] whatever x is *)
    let masked m other =
      if other.lo >= 0 && other.hi <= m && m = pow2_mask m then other
      else make 0 m
    in
    if is_exact b && b.lo >= 0 then masked b.lo a
    else if is_exact a && a.lo >= 0 then masked a.lo b
    else if a.lo >= 0 && b.lo >= 0 then make 0 (min a.hi b.hi)
    else top

let or_ a b =
  if is_exact a && is_exact b then exact (a.lo lor b.lo)
  else if a.lo >= 0 && b.lo >= 0 && is_bounded a && is_bounded b then
    (* for non-negative x, y: max(x, y) <= x|y <= 2^bits(max) - 1 *)
    make (max a.lo b.lo) (pow2_mask (max a.hi b.hi))
  else top

let xor a b =
  if is_exact a && is_exact b then exact (a.lo lxor b.lo)
  else if a.lo >= 0 && b.lo >= 0 && is_bounded a && is_bounded b then
    make 0 (pow2_mask (max a.hi b.hi))
  else top

let mul a b =
  if is_exact a && is_exact b then
    let p = a.lo * b.lo in
    (* detect overflow of the concrete product *)
    if a.lo <> 0 && p / a.lo <> b.lo then top else exact p
  else top

let lnot_ a = if is_exact a then exact (lnot a.lo) else top

let pp ppf t =
  if equal t top then Fmt.string ppf "T"
  else if is_exact t then Fmt.pf ppf "[%d]" t.lo
  else
    Fmt.pf ppf "[%s,%s]"
      (if t.lo = neg_inf then "-inf" else string_of_int t.lo)
      (if t.hi = pos_inf then "+inf" else string_of_int t.hi)
