(* Per-instruction memory-effect inference: which (space, address-range)
   footprint can each memory instruction touch?

   Addresses are bounded with an interval analysis (constant propagation
   + saturating interval arithmetic + widening) over the *virtual*
   flowgraph, where every value is a single multiply-assigned temporary
   and the table-indexing idioms (`base + (idx << 2)` with a masked
   index) stay visible.  Spills and reloads -- the only shared-memory
   accesses introduced *by* allocation -- are extracted from the physical
   graph separately with [spill_accesses]; their addresses are exact slot
   numbers, so no abstraction is needed.

   Branch refinement: the fact flowing along a branch edge is narrowed
   with what the condition implies (`i < 4` bounds the table index of a
   subkey load inside the loop).  To narrow the *copies* of a compared
   value too (argument-passing Movs), every abstract value carries a
   stable provenance key: copies share the key of their source, and two
   values merged at a control join at block B for register r get the key
   "phi:B:r".  Narrowing a condition on x applies to every binding with
   x's key.  Soundness subtlety: when control re-enters B (an outer loop
   around an inner loop), stale copies carrying a "phi:B:_" key from the
   *previous* entry must not keep aliasing the freshly merged value, so
   joining at B re-keys any surviving "phi:B:k" binding of register r to
   "phi:B:r".  Same key therefore always means same runtime value. *)

open Support
module FG = Ixp.Flowgraph
module Insn = Ixp.Insn

type aval = { itv : Interval.t; key : string }

let phi_key at r = Printf.sprintf "phi:%s:%s" at (Ident.name r)
let def_key block pos = Printf.sprintf "d:%s:%d" block pos

(* ------------------------------------------------------------------ *)
(* The environment lattice                                             *)
(* ------------------------------------------------------------------ *)

module Env_lattice = struct
  (* Bindings absent from the map are unknown (top) and unrefinable;
     [Bot] is the unreached state. *)
  type t = Bot | Env of aval Ident.Map.t

  let bottom = Bot

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Env m1, Env m2 ->
        Ident.Map.equal
          (fun x y -> Interval.equal x.itv y.itv && String.equal x.key y.key)
          m1 m2
    | _ -> false

  (* Re-key "phi:<at>:_" survivors of a previous entry to <at>: the merge
     happening now supersedes the merged values they were copies of. *)
  let normalize ~at m =
    let prefix = "phi:" ^ at ^ ":" in
    Ident.Map.mapi
      (fun r v ->
        if String.starts_with ~prefix v.key then
          let pk = phi_key at r in
          if String.equal v.key pk then v else { v with key = pk }
        else v)
      m

  let merge_with ~at combine m1 m2 =
    let prefix = "phi:" ^ at ^ ":" in
    Ident.Map.merge
      (fun r v1 v2 ->
        match (v1, v2) with
        | Some a, Some b ->
            let pk = phi_key at r in
            let key =
              if
                String.equal a.key b.key
                && (String.equal a.key pk
                   || not (String.starts_with ~prefix a.key))
              then a.key
              else pk
            in
            Some { itv = combine a.itv b.itv; key }
        | _ -> None (* defined on one path only: unknown after the join *))
      m1 m2

  let join ~at a b =
    match (a, b) with
    | Bot, x | x, Bot -> (
        match x with Bot -> Bot | Env m -> Env (normalize ~at m))
    | Env m1, Env m2 -> Env (merge_with ~at Interval.join m1 m2)

  let widen ~at ~old next =
    match (old, next) with
    | Bot, x | x, Bot -> (
        match x with Bot -> Bot | Env m -> Env (normalize ~at m))
    | Env m1, Env m2 ->
        Env (merge_with ~at (fun o n -> Interval.widen ~old:o n) m1 m2)
end

module Solver = Dataflow.Make (Env_lattice)

(* ------------------------------------------------------------------ *)
(* Transfer                                                            *)
(* ------------------------------------------------------------------ *)

let lookup m r = Ident.Map.find_opt r m

let operand_val m : Ident.t Insn.operand -> aval option = function
  | Insn.Lit n -> Some { itv = Interval.exact n; key = "lit:" ^ string_of_int n }
  | Insn.Reg r -> lookup m r

let itv_of = function Some v -> v.itv | None -> Interval.top

let eval_alu op a b =
  let open Interval in
  match (op : Insn.alu_op) with
  | Insn.Add -> add a b
  | Insn.Sub -> sub a b
  | Insn.And -> and_ a b
  | Insn.Or -> or_ a b
  | Insn.Xor -> xor a b
  | Insn.Shl -> shl a b
  | Insn.Shr | Insn.Asr -> shr a b (* sound only for non-negative values,
                                      which [shr] itself requires *)
  | Insn.Mullo -> mul a b

let set m dst v = Ident.Map.add dst v m
let kill m dsts = Array.fold_left (fun m d -> Ident.Map.remove d m) m dsts

let transfer ~block ~pos insn fact =
  match fact with
  | Env_lattice.Bot -> Env_lattice.Bot
  | Env_lattice.Env m ->
      let dk = def_key block pos in
      Env_lattice.Env
        (match (insn : Ident.t Insn.t) with
        | Insn.Alu { dst; op; x; y } ->
            let v =
              eval_alu op (itv_of (lookup m x)) (itv_of (operand_val m y))
            in
            set m dst { itv = v; key = dk }
        | Insn.Alu1 { dst; op = `Mov; src } | Insn.Move { dst; src } -> (
            match lookup m src with
            | Some v -> set m dst v
            | None -> Ident.Map.remove dst m)
        | Insn.Alu1 { dst; op = `Not; src } ->
            set m dst { itv = Interval.lnot_ (itv_of (lookup m src)); key = dk }
        | Insn.Alu1 { dst; op = `Neg; src } ->
            set m dst { itv = Interval.neg (itv_of (lookup m src)); key = dk }
        | Insn.Imm { dst; value } ->
            set m dst
              { itv = Interval.exact value; key = "lit:" ^ string_of_int value }
        | Insn.Clone { dsts; src } -> (
            match lookup m src with
            | Some v -> Array.fold_left (fun m d -> set m d v) m dsts
            | None -> kill m dsts)
        | Insn.Read { dsts; _ } | Insn.Rfifo_read { dsts; _ } -> kill m dsts
        | Insn.Hash { dst; _ }
        | Insn.Bit_test_set { dst; _ }
        | Insn.Reload { dst; _ }
        | Insn.Csr_read { dst; _ } ->
            Ident.Map.remove dst m
        | Insn.Write _ | Insn.Tfifo_write _ | Insn.Spill _ | Insn.Csr_write _
        | Insn.Ctx_arb | Insn.Nop ->
            m)

(* ------------------------------------------------------------------ *)
(* Branch refinement                                                   *)
(* ------------------------------------------------------------------ *)

(* Narrow every binding that shares [key] (they all hold the same
   runtime value) to the meet with [bound].  An empty meet means the
   edge is infeasible; we conservatively leave the fact unchanged. *)
let narrow_key m key bound =
  Ident.Map.map
    (fun v ->
      if String.equal v.key key then
        match Interval.meet v.itv bound with
        | Some itv -> { v with itv }
        | None -> v
      else v)
    m

let refine_cond m (cond : Insn.cond) x (y : Ident.t Insn.operand) =
  let vx = lookup m x and vy = operand_val m y in
  let ix = itv_of vx and iy = itv_of vy in
  let open Interval in
  (* bounds implied for the left and right operand respectively *)
  let bx, by =
    match cond with
    | Insn.Eq -> (Some iy, Some ix)
    | Insn.Ne -> (None, None)
    | Insn.Lt -> (Some (make neg_inf (iy.hi - 1)), Some (make (ix.lo + 1) pos_inf))
    | Insn.Le -> (Some (make neg_inf iy.hi), Some (make ix.lo pos_inf))
    | Insn.Gt -> (Some (make (iy.lo + 1) pos_inf), Some (make neg_inf (ix.hi - 1)))
    | Insn.Ge -> (Some (make iy.lo pos_inf), Some (make neg_inf ix.hi))
    | Insn.Ultl ->
        (* unsigned: only meaningful when both sides are known
           non-negative, where it coincides with the signed compare *)
        if ix.lo >= 0 && iy.lo >= 0 then
          (Some (make 0 (iy.hi - 1)), Some (make (ix.lo + 1) pos_inf))
        else (None, None)
    | Insn.Uge ->
        if ix.lo >= 0 && iy.lo >= 0 then
          (Some (make iy.lo pos_inf), Some (make 0 ix.hi))
        else (None, None)
  in
  let apply m v bound =
    match (v, bound) with
    | Some v, Some b -> narrow_key m v.key b
    | _ -> m
  in
  let m = apply m vx bx in
  match y with Insn.Reg _ -> apply m vy by | Insn.Lit _ -> m

let refine_edge term ~succ fact =
  match (fact, (term : Ident.t Insn.terminator)) with
  | Env_lattice.Bot, _ -> fact
  | Env_lattice.Env m, Insn.Branch { cond; x; y; ifso; ifnot }
    when ifso <> ifnot ->
      let cond =
        if String.equal succ ifso then cond else Insn.negate_cond cond
      in
      Env_lattice.Env (refine_cond m cond x y)
  | _, (Insn.Branch _ | Insn.Jump _ | Insn.Halt) -> fact

(* ------------------------------------------------------------------ *)
(* Solving and footprint extraction                                    *)
(* ------------------------------------------------------------------ *)

let spec : Ident.t Solver.spec =
  {
    Solver.direction = Dataflow.Forward;
    boundary = Env_lattice.Env Ident.Map.empty;
    transfer;
    transfer_term = (fun _term fact -> fact);
    refine_edge;
  }

type solution = { graph : Ident.t FG.t; sol : Solver.solution }

let solve graph = { graph; sol = Solver.solve ~widen_after:3 spec graph }

let env_at s ~block ~pos =
  let b = FG.block s.graph block in
  match (Solver.point_facts spec s.sol b).(pos) with
  | Env_lattice.Bot -> None
  | Env_lattice.Env m -> Some m

let interval_before s ~block ~pos r =
  match env_at s ~block ~pos with
  | None -> Interval.top
  | Some m -> itv_of (lookup m r)

(* ------------------------------------------------------------------ *)
(* Access footprints                                                   *)
(* ------------------------------------------------------------------ *)

type kind = Load | Store | Atomic_rmw

type target = Mem of Insn.space | Csr_target of string

(* Byte ranges, inclusive on both ends. *)
type range = Bytes of { lo : int; hi : int } | Unknown_range

type access = {
  target : target;
  kind : kind;
  range : range;
  words : int;
  block : string;
  pos : int;
}

let default_spill_base_words =
  Ixp.Memory.default_config.Ixp.Memory.scratch_words - 64

let range_of_itv itv ~disp ~words =
  let open Interval in
  if itv.lo >= 0 && is_bounded itv then
    Bytes { lo = itv.lo + disp; hi = itv.hi + disp + (4 * words) - 1 }
  else Unknown_range

let range_of_addr m (addr : Ident.t Insn.addr) ~words =
  range_of_itv (itv_of (operand_val m addr.Insn.base)) ~disp:addr.Insn.disp
    ~words

let spill_range ~spill_base_words slot =
  let byte = 4 * (spill_base_words + slot) in
  Bytes { lo = byte; hi = byte + 3 }

let insn_accesses ~spill_base_words m ~block ~pos :
    Ident.t Insn.t -> access list = function
  | Insn.Read { space; dsts; addr } ->
      let words = Array.length dsts in
      [
        {
          target = Mem space;
          kind = Load;
          range = range_of_addr m addr ~words;
          words;
          block;
          pos;
        };
      ]
  | Insn.Write { space; srcs; addr } ->
      let words = Array.length srcs in
      [
        {
          target = Mem space;
          kind = Store;
          range = range_of_addr m addr ~words;
          words;
          block;
          pos;
        };
      ]
  | Insn.Bit_test_set { addr; _ } ->
      [
        {
          target = Mem Insn.Sram;
          kind = Atomic_rmw;
          range = range_of_addr m addr ~words:1;
          words = 1;
          block;
          pos;
        };
      ]
  | Insn.Spill { slot; _ } ->
      [
        {
          target = Mem Insn.Scratch;
          kind = Store;
          range = spill_range ~spill_base_words slot;
          words = 1;
          block;
          pos;
        };
      ]
  | Insn.Reload { slot; _ } ->
      [
        {
          target = Mem Insn.Scratch;
          kind = Load;
          range = spill_range ~spill_base_words slot;
          words = 1;
          block;
          pos;
        };
      ]
  | Insn.Csr_read { csr; _ } ->
      [
        {
          target = Csr_target csr;
          kind = Load;
          range = Bytes { lo = 0; hi = 3 };
          words = 1;
          block;
          pos;
        };
      ]
  | Insn.Csr_write { csr; _ } ->
      [
        {
          target = Csr_target csr;
          kind = Store;
          range = Bytes { lo = 0; hi = 3 };
          words = 1;
          block;
          pos;
        };
      ]
  (* hash is a device operation; FIFO transfers touch the per-context
     receive/transmit FIFOs, which are private to the thread *)
  | Insn.Hash _ | Insn.Rfifo_read _ | Insn.Tfifo_write _ -> []
  | Insn.Alu _ | Insn.Alu1 _ | Insn.Imm _ | Insn.Clone _ | Insn.Move _
  | Insn.Ctx_arb | Insn.Nop ->
      []

(* All memory accesses of the program, with interval-derived footprints.
   Unreachable blocks are skipped: they execute on no path. *)
let accesses ?(spill_base_words = default_spill_base_words) (s : solution) :
    access list =
  let reachable = Dataflow.reachable_blocks s.graph in
  List.concat_map
    (fun (b : Ident.t FG.block) ->
      if not (Hashtbl.mem reachable b.FG.label) then []
      else
        let facts = Solver.point_facts spec s.sol b in
        List.concat
          (List.init (Array.length b.FG.insns) (fun pos ->
               match facts.(pos) with
               | Env_lattice.Bot -> []
               | Env_lattice.Env m ->
                   insn_accesses ~spill_base_words m ~block:b.FG.label ~pos
                     b.FG.insns.(pos))))
    (FG.blocks s.graph)

let of_graph ?spill_base_words g = accesses ?spill_base_words (solve g)

(* Spill-slot traffic of an emitted physical program.  Allocation is the
   only pass that introduces scratch spill slots, and the slots are
   process-wide shared scratch words, so these are exactly the shared
   accesses the virtual-graph analysis cannot see. *)
let spill_accesses ?(spill_base_words = default_spill_base_words)
    (g : Ixp.Reg.t FG.t) : access list =
  let reachable = Dataflow.reachable_blocks g in
  List.concat_map
    (fun (b : Ixp.Reg.t FG.block) ->
      if not (Hashtbl.mem reachable b.FG.label) then []
      else
        List.concat
          (List.init (Array.length b.FG.insns) (fun pos ->
               match b.FG.insns.(pos) with
               | Insn.Spill { slot; _ } ->
                   [
                     {
                       target = Mem Insn.Scratch;
                       kind = Store;
                       range = spill_range ~spill_base_words slot;
                       words = 1;
                       block = b.FG.label;
                       pos;
                     };
                   ]
               | Insn.Reload { slot; _ } ->
                   [
                     {
                       target = Mem Insn.Scratch;
                       kind = Load;
                       range = spill_range ~spill_base_words slot;
                       words = 1;
                       block = b.FG.label;
                       pos;
                     };
                   ]
               | _ -> [])))
    (FG.blocks g)

let pp_kind ppf = function
  | Load -> Fmt.string ppf "read"
  | Store -> Fmt.string ppf "write"
  | Atomic_rmw -> Fmt.string ppf "atomic-rmw"

let pp_target ppf = function
  | Mem s -> Fmt.string ppf (Insn.space_to_string s)
  | Csr_target c -> Fmt.pf ppf "csr[%s]" c

let pp_range ppf = function
  | Bytes { lo; hi } -> Fmt.pf ppf "[0x%x..0x%x]" lo hi
  | Unknown_range -> Fmt.string ppf "[?]"

let pp_access ppf a =
  Fmt.pf ppf "%a %a %a at %s.%d" pp_kind a.kind pp_target a.target pp_range
    a.range a.block a.pos
