(* Independent backward liveness over physical programs, as a client of
   the dataflow framework.  [Ixp.Liveness] computes liveness of virtual
   temporaries for model generation; this one runs on emitted machine
   code and shares no code with it, which is what makes it usable as a
   cross-check. *)

module FG = Ixp.Flowgraph
module Insn = Ixp.Insn
module Set = Ixp.Reg.Set

module Lattice = struct
  type t = Set.t

  let bottom = Set.empty
  let equal = Set.equal
  let join ~at:_ a b = Set.union a b
  let widen ~at:_ ~old next = Set.union old next
end

module Solver = Dataflow.Make (Lattice)

let spec : Ixp.Reg.t Solver.spec =
  {
    Solver.direction = Dataflow.Backward;
    boundary = Set.empty;
    transfer =
      (fun ~block:_ ~pos:_ insn live ->
        let live =
          List.fold_left (fun s d -> Set.remove d s) live (Insn.defs insn)
        in
        List.fold_left (fun s u -> Set.add u s) live (Insn.uses insn));
    transfer_term =
      (fun term live ->
        List.fold_left (fun s u -> Set.add u s) live (Insn.term_uses term));
    refine_edge = Solver.no_refine;
  }

type t = { graph : Ixp.Reg.t FG.t; sol : Solver.solution }

let solve graph = { graph; sol = Solver.solve spec graph }

(* [point_live t b]: array indexed by point; entry k is the set of
   registers live at point (b, k) -- i.e. read on some path before being
   overwritten. *)
let point_live t (b : Ixp.Reg.t FG.block) = Solver.point_facts spec t.sol b

let live_in t label = Solver.entry_fact t.sol label
