(* Dead-store and unreachable-code lint over emitted physical programs:
   the cheap exemplar client of the dataflow framework.  A definition is
   dead when its destination is not live immediately after the
   instruction; a pure instruction whose every definition is dead did
   nothing.  Loads with all-dead destinations are reported separately
   (they still cost memory latency but have no architectural effect). *)

module FG = Ixp.Flowgraph
module Insn = Ixp.Insn
module Reg = Ixp.Reg

type finding =
  | Dead_store of { block : string; pos : int; reg : Reg.t }
  | Dead_load of { block : string; pos : int }
  | Unreachable of { block : string }

let check (g : Reg.t FG.t) : finding list =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  let reachable = Dataflow.reachable_blocks g in
  FG.iter_blocks
    (fun b ->
      if not (Hashtbl.mem reachable b.FG.label) then
        add (Unreachable { block = b.FG.label }))
    g;
  let live = Live.solve g in
  FG.iter_blocks
    (fun b ->
      if Hashtbl.mem reachable b.FG.label then begin
        let facts = Live.point_live live b in
        Array.iteri
          (fun pos insn ->
            let live_after = facts.(pos + 1) in
            let dead d = not (Reg.Set.mem d live_after) in
            match (insn : Reg.t Insn.t) with
            (* pure register-to-register computations *)
            | Insn.Alu { dst; _ } | Insn.Alu1 { dst; _ } | Insn.Imm { dst; _ }
            | Insn.Move { dst; _ } ->
                if dead dst then
                  add (Dead_store { block = b.FG.label; pos; reg = dst })
            (* loads: no architectural side effect, but never free *)
            | Insn.Read { dsts; _ } | Insn.Rfifo_read { dsts; _ } ->
                if Array.length dsts > 0 && Array.for_all dead dsts then
                  add (Dead_load { block = b.FG.label; pos })
            | Insn.Reload { dst; _ } ->
                if dead dst then add (Dead_load { block = b.FG.label; pos })
            (* stores, synchronization and CSR access have effects beyond
               their register results; hash results are always in pairs
               with their source constraint -- skip *)
            | Insn.Write _ | Insn.Tfifo_write _ | Insn.Spill _ | Insn.Hash _
            | Insn.Bit_test_set _ | Insn.Clone _ | Insn.Csr_read _
            | Insn.Csr_write _ | Insn.Ctx_arb | Insn.Nop ->
                ())
          b.FG.insns
      end)
    g;
  List.rev !findings

let pp_finding ppf = function
  | Dead_store { block; pos; reg } ->
      Fmt.pf ppf "dead store to %s at %s.%d (result never read)"
        (Reg.to_string reg) block pos
  | Dead_load { block; pos } ->
      Fmt.pf ppf "dead load at %s.%d (no destination is ever read)" block pos
  | Unreachable { block } ->
      Fmt.pf ppf "block %s is unreachable from the entry" block
