(* The lint driver: runs every analysis client over one compiled
   program and folds the results into a uniform diagnostic stream.

   A lint runs over *both* sides of register allocation:

     - the virtual flowgraph carries single-assignment-ish temporaries,
       which is where interval inference of memory footprints is
       precise, so the race detector runs there;
     - the physical flowgraph is what the hardware executes, so
       definite initialization, pressure/capacity, dead stores, and the
       delegated [Ixp.Checker] rules run there.  The only shared-memory
       accesses introduced *by* allocation are spill slots, whose
       addresses are exact; they are extracted from the physical graph
       and merged into the same race check.

   Block labels survive lowering with their source function's name as a
   prefix, so a [provenance] callback can map a label back to a
   [Support.Srcloc.t]; findings with no provenance carry the dummy
   location and still print. *)

module FG = Ixp.Flowgraph
module Srcloc = Support.Srcloc
module Trace = Support.Trace

type finding = {
  severity : Support.Diag.severity;
  tag : string; (* "race" | "ro-write" | "validate" | "dead-store" | ... *)
  loc : Srcloc.t;
  block : string;
  message : string;
  suppressed : bool; (* matched a whitelist region *)
}

type report = {
  findings : finding list;
  accesses : int; (* shared-memory footprints examined *)
  max_pressure : (Ixp.Bank.t * int) list;
}

let finding ?(suppressed = false) ~severity ~tag ~loc ~block fmt =
  Fmt.kstr
    (fun message -> { severity; tag; loc; block; message; suppressed })
    fmt

let run ?(regions = []) ?(provenance = fun _ -> None)
    ~(virtual_graph : Support.Ident.t FG.t) ~(physical : Ixp.Reg.t FG.t) () :
    report =
  Trace.with_span "lint" @@ fun () ->
  let loc_of block = Option.value ~default:Srcloc.dummy (provenance block) in
  let acc = ref [] in
  let emit f = acc := f :: !acc in
  (* 1. memory effects + race detection (virtual graph + physical spills) *)
  let accesses =
    Trace.with_span "lint.effects" @@ fun () ->
    Effects.of_graph virtual_graph @ Effects.spill_accesses physical
  in
  (Trace.with_span "lint.race" @@ fun () ->
   List.iter
     (fun f ->
       match (f : Race.finding) with
       | Race.Race { a; _ } ->
           emit
             (finding ~severity:Support.Diag.Error ~tag:"race"
                ~loc:(loc_of a.Effects.block) ~block:a.Effects.block "%a"
                Race.pp_finding f)
       | Race.Whitelisted { a; _ } ->
           emit
             (finding ~suppressed:true ~severity:Support.Diag.Note ~tag:"race"
                ~loc:(loc_of a.Effects.block) ~block:a.Effects.block "%a"
                Race.pp_finding f)
       | Race.Ro_write { a; _ } ->
           emit
             (finding ~severity:Support.Diag.Error ~tag:"ro-write"
                ~loc:(loc_of a.Effects.block) ~block:a.Effects.block "%a"
                Race.pp_finding f))
     (Race.check ~regions accesses));
  (* 2. machine-level validation of the emitted program *)
  let vreport =
    Trace.with_span "lint.validate" @@ fun () -> Validator.check physical
  in
  List.iter
    (fun (v : Validator.finding) ->
      let severity =
        if v.Validator.severe then Support.Diag.Error else Support.Diag.Note
      in
      emit
        (finding ~severity ~tag:"validate" ~loc:(loc_of v.Validator.block)
           ~block:v.Validator.block "%s.%d: %s" v.Validator.block
           v.Validator.pos v.Validator.message))
    vreport.Validator.findings;
  (* 3. dead stores / unreachable code *)
  (Trace.with_span "lint.deadstore" @@ fun () ->
   List.iter
     (fun (f : Deadstore.finding) ->
       let block =
         match f with
         | Deadstore.Dead_store { block; _ }
         | Deadstore.Dead_load { block; _ }
         | Deadstore.Unreachable { block } ->
             block
       in
       emit
         (finding ~severity:Support.Diag.Warning ~tag:"dead-store"
            ~loc:(loc_of block) ~block "%a" Deadstore.pp_finding f))
     (Deadstore.check physical));
  {
    findings = List.rev !acc;
    accesses = List.length accesses;
    max_pressure = vreport.Validator.max_pressure;
  }

let errors r =
  List.filter
    (fun f -> (not f.suppressed) && f.severity = Support.Diag.Error)
    r.findings

let warnings r =
  List.filter
    (fun f -> (not f.suppressed) && f.severity = Support.Diag.Warning)
    r.findings

let pp_finding ppf f =
  Fmt.pf ppf "%a: %a: [%s] %s%s" Srcloc.pp f.loc Support.Diag.pp_severity
    f.severity f.tag f.message
    (if f.suppressed then " (whitelisted)" else "")

let pp_report ppf r =
  List.iter (fun f -> Fmt.pf ppf "%a@." pp_finding f) r.findings;
  Fmt.pf ppf "lint: %d shared-memory footprints, %d errors, %d warnings@."
    r.accesses
    (List.length (errors r))
    (List.length (warnings r));
  List.iter
    (fun (b, n) ->
      Fmt.pf ppf "lint: peak pressure %s = %d@." (Ixp.Bank.to_string b) n)
    r.max_pressure
