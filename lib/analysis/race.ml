(* Cross-context race detection.

   Concurrency model (paper §1, PR 2's chip simulation): every micro-engine
   runs the *same* program on 4 hardware contexts, and N engines run in
   true parallel.  SRAM and scratch are chip-wide shared; SDRAM holds the
   per-thread packet buffer and is private in our model; the FIFOs and
   registers are per-context.  Context switches happen at memory
   references and [ctx_arb] only, but engines interleave at every cycle,
   so yield discipline alone cannot order two accesses -- the only
   synchronization-free safe patterns are read-only sharing and the
   atomic [bit_test_set] read-modify-write.

   A *conflict* is therefore any pair of static accesses (possibly the
   same instruction, executed by two contexts) to the same shared space
   whose address ranges may overlap, where at least one is a write and
   not both are atomic RMWs.  Intentional sharing is declared with
   whitelist regions:

     - [Read_only]: a table initialized by the control processor before
       the engines start (AES T-tables, NAT mapping table).  Loads fully
       inside the read-only area are exempt from pairing; a *write* whose
       footprint provably overlaps the area is its own error.
     - [Shared_write]: an area where racy writes are accepted by design
       (the scratch result words, per-flow status words).  A pair is
       absorbed only when both footprints lie inside the same region.

   Read-only containment is checked against the *union* of the declared
   read-only regions per space: a table lookup whose base is a joined
   parameter (AES's t_lookup serves four adjacent tables) has a footprint
   spanning several regions, and the union is what makes it checkable. *)

module Insn = Ixp.Insn

type policy = Read_only | Shared_write

type region = {
  rname : string;
  rspace : Insn.space;
  rbase : int; (* byte address *)
  rwords : int;
  rpolicy : policy;
}

let region ~name ~space ~base ~words policy =
  { rname = name; rspace = space; rbase = base; rwords = words; rpolicy = policy }

type pair_kind = Write_write | Read_write

type finding =
  | Race of { kind : pair_kind; a : Effects.access; b : Effects.access }
  | Whitelisted of {
      region : string;
      kind : pair_kind;
      a : Effects.access;
      b : Effects.access;
    }
  | Ro_write of { region : string; a : Effects.access }

(* Spaces shared between contexts (and between engines). *)
let shared_space = function
  | Insn.Sram | Insn.Scratch -> true
  | Insn.Sdram -> false

let ranges_overlap a b =
  match (a, b) with
  | Effects.Unknown_range, _ | _, Effects.Unknown_range -> true
  | Effects.Bytes ra, Effects.Bytes rb -> ra.lo <= rb.hi && rb.lo <= ra.hi

let range_inside (lo, hi) = function
  | Effects.Unknown_range -> false
  | Effects.Bytes r -> r.lo >= lo && r.hi <= hi

let region_extent r = (r.rbase, r.rbase + (4 * r.rwords) - 1)

(* Merge same-space regions of one policy into maximal disjoint byte
   intervals for union-containment checks. *)
let union_extents regions space policy =
  let xs =
    List.filter_map
      (fun r ->
        if r.rspace = space && r.rpolicy = policy then Some (region_extent r)
        else None)
      regions
    |> List.sort compare
  in
  let rec merge = function
    | (l1, h1) :: (l2, h2) :: rest when l2 <= h1 + 1 ->
        merge ((l1, max h1 h2) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge xs

let inside_union extents range =
  List.exists (fun ext -> range_inside ext range) extents

(* The whitelist region (if any) that absorbs a conflicting pair: both
   footprints fully inside the same [Shared_write] region. *)
let absorbing_region regions space (a : Effects.access) (b : Effects.access) =
  List.find_opt
    (fun r ->
      r.rpolicy = Shared_write && r.rspace = space
      && range_inside (region_extent r) a.Effects.range
      && range_inside (region_extent r) b.Effects.range)
    regions

let is_write (a : Effects.access) =
  match a.Effects.kind with
  | Effects.Store | Effects.Atomic_rmw -> true
  | Effects.Load -> false

let same_target (a : Effects.access) (b : Effects.access) =
  match (a.Effects.target, b.Effects.target) with
  | Effects.Mem s1, Effects.Mem s2 -> s1 = s2
  | Effects.Csr_target c1, Effects.Csr_target c2 -> String.equal c1 c2
  | _ -> false

let check ?(regions = []) (accesses : Effects.access list) : finding list =
  let findings = ref [] in
  let add f = findings := f :: !findings in
  (* accesses that can conflict across contexts at all *)
  let interesting =
    List.filter
      (fun (a : Effects.access) ->
        match a.Effects.target with
        | Effects.Mem s -> shared_space s
        | Effects.Csr_target _ -> true)
      accesses
  in
  (* writes provably into declared read-only regions *)
  List.iter
    (fun (a : Effects.access) ->
      if is_write a then
        match a.Effects.target with
        | Effects.Mem s ->
            List.iter
              (fun r ->
                if
                  r.rpolicy = Read_only && r.rspace = s
                  && (match a.Effects.range with
                     | Effects.Unknown_range -> false (* not *provably* inside *)
                     | Effects.Bytes _ ->
                         ranges_overlap a.Effects.range
                           (let l, h = region_extent r in
                            Effects.Bytes { lo = l; hi = h }))
                then add (Ro_write { region = r.rname; a }))
              regions
        | Effects.Csr_target _ -> ())
    interesting;
  (* loads fully inside the read-only union are exempt from pairing *)
  let ro_union_cache = Hashtbl.create 4 in
  let ro_union space =
    match Hashtbl.find_opt ro_union_cache space with
    | Some u -> u
    | None ->
        let u = union_extents regions space Read_only in
        Hashtbl.replace ro_union_cache space u;
        u
  in
  let pairable =
    List.filter
      (fun (a : Effects.access) ->
        match (a.Effects.kind, a.Effects.target) with
        | Effects.Load, Effects.Mem s ->
            not (inside_union (ro_union s) a.Effects.range)
        | _ -> true)
      interesting
  in
  (* conflicting pairs; i = j is meaningful -- the same instruction run
     by two contexts *)
  let arr = Array.of_list pairable in
  let n = Array.length arr in
  for i = 0 to n - 1 do
    for j = i to n - 1 do
      let a = arr.(i) and b = arr.(j) in
      if
        same_target a b
        && ranges_overlap a.Effects.range b.Effects.range
        && (is_write a || is_write b)
        && not (a.Effects.kind = Effects.Atomic_rmw && b.Effects.kind = Effects.Atomic_rmw)
      then begin
        let kind =
          if is_write a && is_write b then Write_write else Read_write
        in
        let space =
          match a.Effects.target with
          | Effects.Mem s -> Some s
          | Effects.Csr_target _ -> None
        in
        match space with
        | Some s -> (
            match absorbing_region regions s a b with
            | Some r -> add (Whitelisted { region = r.rname; kind; a; b })
            | None -> add (Race { kind; a; b }))
        | None -> add (Race { kind; a; b })
      end
    done
  done;
  List.rev !findings

let pp_pair_kind ppf = function
  | Write_write -> Fmt.string ppf "write/write"
  | Read_write -> Fmt.string ppf "read/write"

let pp_finding ppf = function
  | Race { kind; a; b } ->
      if a == b then
        Fmt.pf ppf
          "unsynchronized %a race: %a conflicts with itself in another context"
          pp_pair_kind kind Effects.pp_access a
      else
        Fmt.pf ppf "unsynchronized %a race between %a and %a" pp_pair_kind kind
          Effects.pp_access a Effects.pp_access b
  | Whitelisted { region; kind; a; b } ->
      Fmt.pf ppf "%a overlap absorbed by region '%s' (%a / %a)" pp_pair_kind
        kind region Effects.pp_access a Effects.pp_access b
  | Ro_write { region; a } ->
      Fmt.pf ppf "write into declared read-only region '%s': %a" region
        Effects.pp_access a
