(* Multi-chip cluster simulation: N IXP1200 chips behind a pluggable
   load balancer.

   The paper's evaluation stops at one chip; network elements built from
   IXPs put several behind a steering stage (a switch fabric hashing on
   the 5-tuple, or a simple round-robin splitter).  This module models
   that stage over [Ixp.Chip]'s event-driven cores: the balancer decides
   which chip receives each generated packet, per-chip bounded receive
   rings absorb bursts, and chip saturation is handled by failover
   re-steering plus a per-chip drop budget that trips an "unhealthy"
   breaker.

   Determinism: the run loop always advances the globally earliest event
   -- the next packet arrival or the chip with the earliest internal
   event (lowest chip id on ties, arrivals first) -- and every balancer
   decision depends only on simulation state, so a fixed seed reproduces
   bit-identical reports.

   Zero allocation in steady state: chips are driven through
   [Chip.prepare]/[offer]/[step]/[finish] (all allocation-free after
   [prepare]), the cluster's own scheduler is a second [Event_wheel]
   over chip ids, and steering is integer arithmetic over preallocated
   arrays.  Latency percentiles come from the chips' integer bucket
   tables, merged into the [Support.Metrics] "cluster.latency" histogram
   at [finish]. *)

open Support

type balancer =
  | Flow_hash (* 5-tuple hash modulo cluster size: flow affinity *)
  | Round_robin (* packet-level round robin: no affinity, even load *)

let balancer_to_string = function
  | Flow_hash -> "hash"
  | Round_robin -> "rr"

let balancer_of_string = function
  | "hash" -> Ok Flow_hash
  | "rr" | "round-robin" -> Ok Round_robin
  | s -> Error (Printf.sprintf "unknown balancer %S (expected hash|rr)" s)

type config = {
  chips : int;
  balancer : balancer;
  chip_config : Ixp.Chip.config;
  drop_budget : int;
      (* balancer drops tolerated per chip before it is marked unhealthy
         and steered around; 0 disables the breaker *)
  failover : bool;
      (* re-steer packets whose target chip is saturated to the healthy
         chip with the most headroom *)
}

let default_config =
  {
    chips = 2;
    balancer = Flow_hash;
    chip_config = Ixp.Chip.default_config;
    drop_budget = 0;
    failover = true;
  }

let no_event = Ixp.Event_wheel.no_event

type t = {
  config : config;
  chips : Ixp.Chip.t array;
  wheel : Ixp.Event_wheel.t; (* one event slot per chip *)
  mutable rr_next : int; (* round-robin steering cursor *)
  steered : int array; (* packets offered to each chip *)
  resteered : int array; (* packets failover moved off their target *)
  lb_dropped : int array; (* balancer drops, charged to the target *)
  unhealthy : bool array; (* drop budget exceeded: steered around *)
  mutable generated : int;
}

let create ?(config = default_config) program =
  if config.chips <= 0 then invalid_arg "Cluster.create: chips <= 0";
  {
    config;
    chips =
      Array.init config.chips (fun _ ->
          Ixp.Chip.create ~config:config.chip_config program);
    wheel = Ixp.Event_wheel.create ~size:256 config.chips;
    rr_next = 0;
    steered = Array.make config.chips 0;
    resteered = Array.make config.chips 0;
    lb_dropped = Array.make config.chips 0;
    unhealthy = Array.make config.chips false;
    generated = 0;
  }

let chip t c = t.chips.(c)
let num_chips t = Array.length t.chips
let iter_chips f t = Array.iter f t.chips

(* ------------------------------------------------------------------ *)
(* Steering                                                            *)
(* ------------------------------------------------------------------ *)

(* Natural target of a packet before health/saturation checks. *)
let natural_target t (v : Ixp.Pktgen.view) =
  match t.config.balancer with
  | Flow_hash -> v.Ixp.Pktgen.v_hash mod t.config.chips
  | Round_robin ->
      let c = t.rr_next in
      t.rr_next <- (c + 1) mod t.config.chips;
      c

(* Headroom of [c] for a packet on [port]: idle contexts plus free ring
   entries.  Deterministic, allocation-free. *)
let headroom t c ~port =
  Ixp.Chip.idle_contexts t.chips.(c) + Ixp.Chip.rx_room t.chips.(c) ~port

(* Healthy chip (excluding [avoid]) with the most headroom for [port];
   lowest id on ties; -1 when none has room. *)
let best_alternate t ~avoid ~port =
  let best = ref (-1) and best_room = ref 0 in
  for c = 0 to t.config.chips - 1 do
    if c <> avoid && not t.unhealthy.(c) then begin
      let room = headroom t c ~port in
      if room > !best_room then begin
        best := c;
        best_room := room
      end
    end
  done;
  !best

let charge_drop t c =
  t.lb_dropped.(c) <- t.lb_dropped.(c) + 1;
  if t.config.drop_budget > 0 && t.lb_dropped.(c) > t.config.drop_budget then
    t.unhealthy.(c) <- true

(* Steer one generated packet: returns the chip that accepted it, or -1
   for a balancer drop.  [offer] itself never drops at the chip level
   because room is checked first -- every cluster-mode drop is charged
   here, to the packet's natural target. *)
let steer t (v : Ixp.Pktgen.view) ~(deliver : Ixp.Chip.deliver) =
  t.generated <- t.generated + 1;
  let port = v.Ixp.Pktgen.v_port in
  let target = natural_target t v in
  let dest =
    if (not t.unhealthy.(target))
       && Ixp.Chip.has_room t.chips.(target) ~port
    then target
    else if t.config.failover then best_alternate t ~avoid:target ~port
    else -1
  in
  if dest < 0 then begin
    charge_drop t target;
    -1
  end
  else begin
    if dest <> target then t.resteered.(dest) <- t.resteered.(dest) + 1;
    t.steered.(dest) <- t.steered.(dest) + 1;
    Ixp.Chip.offer t.chips.(dest) ~deliver ~port v;
    dest
  end

(* ------------------------------------------------------------------ *)
(* Run loop                                                            *)
(* ------------------------------------------------------------------ *)

exception Cluster_stuck of string

let resched_chip t c =
  let nt = Ixp.Chip.next_time t.chips.(c) in
  if nt = no_event then Ixp.Event_wheel.cancel t.wheel c
  else Ixp.Event_wheel.schedule t.wheel c ~cycle:nt

let any_queued t =
  let q = ref false in
  for c = 0 to t.config.chips - 1 do
    if Ixp.Chip.rx_queued t.chips.(c) > 0 then q := true
  done;
  !q

(* Drain the whole generator through the cluster.  Chips must have been
   [prepare]d (see [run]); [fuel] bounds run-loop iterations. *)
let drive ?(fuel = 400_000_000) t ~(deliver : Ixp.Chip.deliver) gen =
  let v = Ixp.Pktgen.make_view () in
  let pending = ref (Ixp.Pktgen.next_into gen v) in
  let budget = ref fuel in
  while !pending || not (Ixp.Event_wheel.is_empty t.wheel) do
    decr budget;
    if !budget < 0 then raise (Cluster_stuck "cluster run: fuel exhausted");
    let t_step = Ixp.Event_wheel.next_time t.wheel in
    let t_arr = if !pending then v.Ixp.Pktgen.v_arrival else no_event in
    if t_arr <= t_step then begin
      (* arrivals win ties, as in the single-chip loop *)
      let dest = steer t v ~deliver in
      if dest >= 0 then resched_chip t dest;
      pending := Ixp.Pktgen.next_into gen v
    end
    else begin
      let c = Ixp.Event_wheel.pop t.wheel in
      Ixp.Chip.step t.chips.(c) ~deliver;
      resched_chip t c
    end
  done;
  if any_queued t then
    raise (Cluster_stuck "cluster run: queued packets with no runnable context")

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

type report = {
  rc_chips : int;
  rc_balancer : balancer;
  rc_clock_mhz : float;
  cycles : int; (* makespan: latest event across the cluster *)
  generated : int;
  completed : int;
  bytes_completed : int;
  lb_dropped : int array; (* balancer drops charged per chip *)
  steered : int array;
  resteered : int array;
  unhealthy : bool array;
  p50 : int; (* latency percentiles, cycles, bucket-quantized *)
  p90 : int;
  p99 : int;
  p999 : int;
  chip_reports : Ixp.Chip.report array;
}

let finish t =
  let chip_reports = Array.map Ixp.Chip.finish t.chips in
  let h = Metrics.histogram "cluster.latency" in
  Array.iter
    (fun (r : Ixp.Chip.report) ->
      Metrics.merge_buckets h r.Ixp.Chip.lat_buckets)
    chip_reports;
  let cycles =
    Array.fold_left
      (fun acc (r : Ixp.Chip.report) -> max acc r.Ixp.Chip.cycles)
      0 chip_reports
  in
  let sum f =
    Array.fold_left (fun acc r -> acc + f r) 0 chip_reports
  in
  Metrics.set (Metrics.gauge "cluster.completed")
    (float_of_int (sum (fun r -> r.Ixp.Chip.completed)));
  Metrics.set (Metrics.gauge "cluster.lb_dropped")
    (float_of_int (Array.fold_left ( + ) 0 t.lb_dropped));
  {
    rc_chips = t.config.chips;
    rc_balancer = t.config.balancer;
    rc_clock_mhz = t.config.chip_config.Ixp.Chip.clock_mhz;
    cycles;
    generated = t.generated;
    completed = sum (fun r -> r.Ixp.Chip.completed);
    bytes_completed = sum (fun r -> r.Ixp.Chip.bytes_completed);
    lb_dropped = Array.copy t.lb_dropped;
    steered = Array.copy t.steered;
    resteered = Array.copy t.resteered;
    unhealthy = Array.copy t.unhealthy;
    p50 = Metrics.percentile h 0.50;
    p90 = Metrics.percentile h 0.90;
    p99 = Metrics.percentile h 0.99;
    p999 = Metrics.percentile h 0.999;
    chip_reports;
  }

(* One-call convenience: size every chip for the generator's ports and
   an even share of its packets, drive, report.  The "cluster.latency"
   histogram is reset first so [finish]'s percentiles describe exactly
   this run. *)
let run ?(deliver = Ixp.Chip.default_deliver) ?fuel t gen =
  let ports = gen.Ixp.Pktgen.config.Ixp.Pktgen.ports in
  let count = gen.Ixp.Pktgen.config.Ixp.Pktgen.count in
  let expected = (count / t.config.chips * 2) + 1024 in
  Array.iter (fun c -> Ixp.Chip.prepare c ~ports ~expected) t.chips;
  Ixp.Event_wheel.clear t.wheel;
  let h = Metrics.histogram "cluster.latency" in
  Array.fill h.Metrics.h_buckets 0 Metrics.bucket_count 0;
  h.Metrics.h_count <- 0;
  h.Metrics.h_sum <- 0.;
  t.rr_next <- 0;
  t.generated <- 0;
  Array.fill t.steered 0 t.config.chips 0;
  Array.fill t.resteered 0 t.config.chips 0;
  Array.fill t.lb_dropped 0 t.config.chips 0;
  Array.fill t.unhealthy 0 t.config.chips false;
  drive ?fuel t ~deliver gen;
  finish t

(* ------------------------------------------------------------------ *)
(* Report derivations                                                  *)
(* ------------------------------------------------------------------ *)

let seconds r = float_of_int r.cycles /. (r.rc_clock_mhz *. 1e6)

let achieved_mpps r =
  if r.cycles = 0 then 0. else float_of_int r.completed /. seconds r /. 1e6

let achieved_mbps r =
  if r.cycles = 0 then 0.
  else float_of_int (r.bytes_completed * 8) /. seconds r /. 1e6

let dropped r = Array.fold_left ( + ) 0 r.lb_dropped

let drop_rate r =
  if r.generated = 0 then 0.
  else float_of_int (dropped r) /. float_of_int r.generated

let pp_report ppf r =
  Fmt.pf ppf "cluster: %d chips, %s balancer@." r.rc_chips
    (balancer_to_string r.rc_balancer);
  Fmt.pf ppf "cycles: %d (%.2f us at %.0f MHz)@." r.cycles
    (seconds r *. 1e6) r.rc_clock_mhz;
  Fmt.pf ppf "packets: %d generated, %d completed, %d dropped (%.1f%%)@."
    r.generated r.completed (dropped r)
    (100. *. drop_rate r);
  Fmt.pf ppf "achieved: %.3f Mpps, %.1f Mbit/s payload@." (achieved_mpps r)
    (achieved_mbps r);
  Fmt.pf ppf "latency cycles: p50 %d, p90 %d, p99 %d, p99.9 %d@." r.p50 r.p90
    r.p99 r.p999;
  Array.iteri
    (fun c (cr : Ixp.Chip.report) ->
      Fmt.pf ppf
        "chip %d: %d steered (%d re-steered), %d completed, %d dropped%s@." c
        r.steered.(c) r.resteered.(c) cr.Ixp.Chip.completed r.lb_dropped.(c)
        (if r.unhealthy.(c) then " [unhealthy]" else ""))
    r.chip_reports
