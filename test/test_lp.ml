(* Tests for the LP substrate: bigint/rational arithmetic, the two simplex
   implementations (exact dense reference vs production revised dual), the
   presolver, and branch & bound. *)

open Lp

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Bigint                                                              *)
(* ------------------------------------------------------------------ *)

let test_bigint_basic () =
  let open Bigint in
  checks "to_string" "0" (to_string zero);
  checks "of_int round trip" "123456789" (to_string (of_int 123456789));
  checks "negative" "-42" (to_string (of_int (-42)));
  checks "add" "300" (to_string (add (of_int 100) (of_int 200)));
  checks "sub crossing zero" "-50" (to_string (sub (of_int 100) (of_int 150)));
  checks "mul" "-600" (to_string (mul (of_int 30) (of_int (-20))));
  checki "compare" (-1) (compare (of_int 3) (of_int 5));
  checki "to_int" 77 (to_int_exn (of_int 77))

let test_bigint_large () =
  let open Bigint in
  (* (2^100 + 1) * (2^100 - 1) = 2^200 - 1 *)
  let p100 =
    let two = of_int 2 in
    let rec go acc n = if n = 0 then acc else go (mul acc two) (n - 1) in
    go one 100
  in
  let a = add p100 one and b = sub p100 one in
  let prod = mul a b in
  let p200 = mul p100 p100 in
  checkb "2^200-1" true (equal prod (sub p200 one));
  (* division round trip *)
  let q, r = divmod p200 a in
  checkb "divmod identity" true (equal p200 (add (mul q a) r));
  checkb "remainder small" true (compare (abs r) (abs a) < 0)

let test_bigint_string_roundtrip () =
  let open Bigint in
  let s = "123456789012345678901234567890123456789" in
  checks "roundtrip" s (to_string (of_string s));
  checks "negative roundtrip" ("-" ^ s) (to_string (of_string ("-" ^ s)))

let test_bigint_extremes () =
  let open Bigint in
  checks "min_int" (string_of_int min_int) (to_string (of_int min_int));
  checks "max_int" (string_of_int max_int) (to_string (of_int max_int));
  checks "min+max" "-1" (to_string (add (of_int min_int) (of_int max_int)));
  checkb "min_int no native roundtrip overflow" true
    (match to_int_opt (of_int max_int) with Some v -> v = max_int | None -> false)

let test_bigint_gcd () =
  let open Bigint in
  checks "gcd" "6" (to_string (gcd (of_int 54) (of_int 24)));
  checks "gcd with zero" "7" (to_string (gcd zero (of_int 7)));
  checks "gcd negatives" "4" (to_string (gcd (of_int (-12)) (of_int 8)))

let bigint_qcheck =
  let gen = QCheck.int_range (-1_000_000) 1_000_000 in
  [
    QCheck.Test.make ~name:"bigint add/sub agree with int" ~count:500
      (QCheck.pair gen gen) (fun (a, b) ->
        let open Bigint in
        to_int_exn (add (of_int a) (of_int b)) = a + b
        && to_int_exn (sub (of_int a) (of_int b)) = a - b);
    QCheck.Test.make ~name:"bigint mul agrees with int" ~count:500
      (QCheck.pair gen gen) (fun (a, b) ->
        Bigint.(to_int_exn (mul (of_int a) (of_int b))) = a * b);
    QCheck.Test.make ~name:"bigint divmod agrees with int" ~count:500
      (QCheck.pair gen (QCheck.int_range 1 100_000)) (fun (a, b) ->
        let q, r = Bigint.(divmod (of_int a) (of_int b)) in
        Bigint.to_int_exn q = a / b && Bigint.to_int_exn r = a mod b);
    QCheck.Test.make ~name:"bigint mul assoc (large)" ~count:200
      (QCheck.triple gen gen gen) (fun (a, b, c) ->
        let open Bigint in
        let big x = mul (of_int x) (of_int 1_000_000_007) in
        equal (mul (big a) (mul (big b) (big c)))
          (mul (mul (big a) (big b)) (big c)));
  ]

(* ------------------------------------------------------------------ *)
(* Rat                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rat_basic () =
  let open Rat in
  checks "normalization" "1/2" (to_string (of_ints 2 4));
  checks "negative denominator" "-1/3" (to_string (of_ints 1 (-3)));
  checks "add" "5/6" (to_string (add (of_ints 1 2) (of_ints 1 3)));
  checks "mul" "1/3" (to_string (mul (of_ints 2 3) (of_ints 1 2)));
  checks "div" "3/2" (to_string (div (of_ints 1 2) (of_ints 1 3)));
  checkb "compare" true (compare (of_ints 1 3) (of_ints 1 2) < 0);
  checkb "floor" true (Bigint.equal (floor (of_ints (-7) 2)) (Bigint.of_int (-4)));
  checkb "ceil" true (Bigint.equal (ceil (of_ints 7 2)) (Bigint.of_int 4))

let test_rat_of_float () =
  let open Rat in
  checks "exact small int" "42" (to_string (of_float 42.));
  checks "half" "1/2" (to_string (of_float 0.5));
  checkb "roundtrip 0.1" true (Float.abs (to_float (of_float 0.1) -. 0.1) < 1e-15)

let rat_qcheck =
  let gen =
    QCheck.map
      (fun (a, b) -> Rat.of_ints a (if b = 0 then 1 else b))
      (QCheck.pair (QCheck.int_range (-1000) 1000) (QCheck.int_range (-50) 50))
  in
  let gen = QCheck.make ~print:Rat.to_string (QCheck.gen gen) in
  [
    QCheck.Test.make ~name:"rat field laws: distributivity" ~count:300
      (QCheck.triple gen gen gen) (fun (a, b, c) ->
        Rat.(equal (mul a (add b c)) (add (mul a b) (mul a c))));
    QCheck.Test.make ~name:"rat add commutative + inverse" ~count:300
      (QCheck.pair gen gen) (fun (a, b) ->
        Rat.(equal (add a b) (add b a)) && Rat.(is_zero (sub (add a b) (add b a))));
    QCheck.Test.make ~name:"rat mul inverse" ~count:300 gen (fun a ->
        Rat.is_zero a || Rat.(equal one (mul a (inv a))));
  ]

(* ------------------------------------------------------------------ *)
(* Simplex solvers                                                     *)
(* ------------------------------------------------------------------ *)

(* A classic small LP:
     min -3x - 5y  s.t.  x <= 4; 2y <= 12; 3x + 2y <= 18; x,y >= 0
   Optimum at (2, 6) with objective -36. *)
let mk_classic () =
  let p = Problem.create () in
  let x = Problem.add_var p ~lo:0. ~hi:infinity ~obj:(-3.) "x" in
  let y = Problem.add_var p ~lo:0. ~hi:infinity ~obj:(-5.) "y" in
  Problem.add_row p Problem.Le 4. [ (x, 1.) ];
  Problem.add_row p Problem.Le 12. [ (y, 2.) ];
  Problem.add_row p Problem.Le 18. [ (x, 3.); (y, 2.) ];
  p

let test_dense_exact_classic () =
  let module S = Dense_simplex.Exact in
  let r = S.solve (mk_classic ()) in
  checkb "optimal" true (r.S.status = S.Optimal);
  checks "objective" "-36" (Rat.to_string r.S.objective);
  checks "x" "2" (Rat.to_string r.S.solution.(0));
  checks "y" "6" (Rat.to_string r.S.solution.(1))

let test_dense_float_classic () =
  let module S = Dense_simplex.Approx in
  let r = S.solve (mk_classic ()) in
  checkb "optimal" true (r.S.status = S.Optimal);
  check (Alcotest.float 1e-9) "objective" (-36.) r.S.objective

let test_dense_infeasible () =
  let module S = Dense_simplex.Exact in
  let p = Problem.create () in
  let x = Problem.add_var p ~lo:0. ~hi:infinity "x" in
  Problem.add_row p Problem.Ge 3. [ (x, 1.) ];
  Problem.add_row p Problem.Le 1. [ (x, 1.) ];
  let r = S.solve p in
  checkb "infeasible" true (r.S.status = S.Infeasible)

let test_dense_unbounded () =
  let module S = Dense_simplex.Exact in
  let p = Problem.create () in
  let x = Problem.add_var p ~lo:0. ~hi:infinity ~obj:(-1.) "x" in
  Problem.add_row p Problem.Ge 0. [ (x, 1.) ];
  let r = S.solve p in
  checkb "unbounded" true (r.S.status = S.Unbounded)

let test_revised_classic_bounded () =
  (* Same classic LP but with explicit large bounds so the dual solver's
     initial placement is dual-feasible. *)
  let p = Problem.create () in
  let x = Problem.add_var p ~lo:0. ~hi:100. ~obj:(-3.) "x" in
  let y = Problem.add_var p ~lo:0. ~hi:100. ~obj:(-5.) "y" in
  Problem.add_row p Problem.Le 4. [ (x, 1.) ];
  Problem.add_row p Problem.Le 12. [ (y, 2.) ];
  Problem.add_row p Problem.Le 18. [ (x, 3.); (y, 2.) ];
  let s = Revised.create p in
  checkb "optimal" true (Revised.solve s = Revised.Optimal);
  check (Alcotest.float 1e-7) "objective" (-36.) (Revised.objective s);
  let sol = Revised.primal s in
  check (Alcotest.float 1e-7) "x" 2. sol.(0);
  check (Alcotest.float 1e-7) "y" 6. sol.(1)

let test_revised_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_var p ~lo:0. ~hi:1. "x" in
  let y = Problem.add_var p ~lo:0. ~hi:1. "y" in
  Problem.add_row p Problem.Eq 3. [ (x, 1.); (y, 1.) ];
  let s = Revised.create p in
  checkb "infeasible" true (Revised.solve s = Revised.Infeasible)

let test_revised_equality_system () =
  (* min x + 2y  s.t. x + y = 1, x - y = 0  ->  x = y = 1/2, obj 3/2 *)
  let p = Problem.create () in
  let x = Problem.add_var p ~lo:0. ~hi:1. ~obj:1. "x" in
  let y = Problem.add_var p ~lo:0. ~hi:1. ~obj:2. "y" in
  Problem.add_row p Problem.Eq 1. [ (x, 1.); (y, 1.) ];
  Problem.add_row p Problem.Eq 0. [ (x, 1.); (y, -1.) ];
  let s = Revised.create p in
  checkb "optimal" true (Revised.solve s = Revised.Optimal);
  check (Alcotest.float 1e-7) "objective" 1.5 (Revised.objective s)

let test_revised_warm_restart () =
  (* Solve, then tighten a bound and re-solve; expect consistent results. *)
  let p = Problem.create () in
  let x = Problem.add_var p ~lo:0. ~hi:1. ~obj:1. "x" in
  let y = Problem.add_var p ~lo:0. ~hi:1. ~obj:3. "y" in
  Problem.add_row p Problem.Ge 1. [ (x, 1.); (y, 1.) ];
  let s = Revised.create p in
  checkb "optimal 1" true (Revised.solve s = Revised.Optimal);
  check (Alcotest.float 1e-7) "first solve picks cheap x" 1. (Revised.objective s);
  Revised.set_bounds s x ~lo:0. ~hi:0.25;
  checkb "optimal 2" true (Revised.solve s = Revised.Optimal);
  check (Alcotest.float 1e-7) "after tightening" (0.25 +. (3. *. 0.75))
    (Revised.objective s);
  Revised.set_bounds s x ~lo:0. ~hi:1.;
  checkb "optimal 3" true (Revised.solve s = Revised.Optimal);
  check (Alcotest.float 1e-7) "after relaxing back" 1. (Revised.objective s)

(* Random bounded LPs: production revised solver must agree with the exact
   dense reference on both status and optimal objective. *)
let random_lp_gen =
  let open QCheck.Gen in
  let nv = 2 -- 5 and nr = 1 -- 5 in
  let coef = map float_of_int (-3 -- 3) in
  let* n = nv in
  let* m = nr in
  let* costs = list_size (return n) (map float_of_int (-5 -- 5)) in
  let* rows =
    list_size (return m)
      (let* terms = list_size (return n) coef in
       let* rhs = map float_of_int (-4 -- 8) in
       let* sense = oneofl [ Problem.Le; Problem.Ge; Problem.Eq ] in
       return (sense, rhs, terms))
  in
  return (n, costs, rows)

let print_random_lp (n, costs, rows) =
  Fmt.str "n=%d costs=%a rows=%a" n
    Fmt.(Dump.list float)
    costs
    Fmt.(
      Dump.list
        (Dump.pair
           (fun ppf s ->
             Fmt.string ppf
               (match s with Problem.Le -> "<=" | Ge -> ">=" | Eq -> "="))
           (Dump.pair float (Dump.list float))))
    (List.map (fun (s, r, t) -> (s, (r, t))) rows)

let build_random_lp (n, costs, rows) =
  let p = Problem.create () in
  List.iteri
    (fun i c ->
      ignore (Problem.add_var p ~lo:0. ~hi:4. ~obj:c (Printf.sprintf "x%d" i)))
    costs;
  ignore n;
  List.iter
    (fun (sense, rhs, terms) ->
      Problem.add_row p sense rhs (List.mapi (fun i c -> (i, c)) terms))
    rows;
  p

let simplex_cross_check =
  QCheck.Test.make ~name:"revised dual simplex agrees with exact reference"
    ~count:300
    (QCheck.make ~print:print_random_lp random_lp_gen)
    (fun spec ->
      let p = build_random_lp spec in
      let module E = Dense_simplex.Exact in
      let exact = E.solve p in
      let s = Revised.create p in
      match (exact.E.status, Revised.solve s) with
      | E.Optimal, Revised.Optimal ->
          Float.abs (Rat.to_float exact.E.objective -. Revised.objective s)
          < 1e-5
      | E.Infeasible, Revised.Infeasible -> true
      | E.Unbounded, _ ->
          true (* cannot happen: all variables bounded *)
      | _ -> false)

(* ------------------------------------------------------------------ *)
(* Presolve                                                            *)
(* ------------------------------------------------------------------ *)

let test_presolve_fixed_and_singleton () =
  let p = Problem.create () in
  let x = Problem.add_var p ~lo:2. ~hi:2. ~obj:1. "x" in
  let y = Problem.add_var p ~lo:0. ~hi:10. ~obj:1. "y" in
  Problem.add_row p Problem.Ge 5. [ (y, 1.) ];
  Problem.add_row p Problem.Le 9. [ (x, 1.); (y, 1.) ];
  match Presolve.run p with
  | Presolve.Infeasible_detected -> Alcotest.fail "unexpected infeasible"
  | Presolve.Reduced (r, info) ->
      checkb "x eliminated" true (Problem.num_vars r <= 1);
      (* postsolve round trip: solve tiny remainder by hand: y in [5,7] *)
      let sol =
        if Problem.num_vars r = 0 then Presolve.postsolve info [||]
        else Presolve.postsolve info [| 5. |]
      in
      check (Alcotest.float 1e-9) "x value" 2. sol.(x);
      check (Alcotest.float 1e-9) "y value" 5. sol.(y)

let test_presolve_alias_chain () =
  (* x0 = x1 = x2 = x3 chained by equalities; only one survivor. *)
  let p = Problem.create () in
  let vs =
    Array.init 4 (fun i ->
        Problem.add_binary p ~obj:(float_of_int (i + 1)) (Printf.sprintf "x%d" i))
  in
  for i = 0 to 2 do
    Problem.add_row p Problem.Eq 0. [ (vs.(i), 1.); (vs.(i + 1), -1.) ]
  done;
  Problem.add_row p Problem.Ge 1. [ (vs.(0), 1.) ];
  match Presolve.run p with
  | Presolve.Infeasible_detected -> Alcotest.fail "unexpected infeasible"
  | Presolve.Reduced (r, info) ->
      checki "all aliased away" 0 (Problem.num_vars r);
      let sol = Presolve.postsolve info [||] in
      Array.iter (fun v -> check (Alcotest.float 1e-9) "all ones" 1. sol.(v)) vs

let test_presolve_complement () =
  (* x + y = 1 one-place constraint: y eliminated as 1 - x. *)
  let p = Problem.create () in
  let x = Problem.add_binary p ~obj:1. "x" in
  let y = Problem.add_binary p ~obj:5. "y" in
  Problem.add_row p Problem.Eq 1. [ (x, 1.); (y, 1.) ];
  match Presolve.run p with
  | Presolve.Infeasible_detected -> Alcotest.fail "unexpected infeasible"
  | Presolve.Reduced (r, info) ->
      checki "one var left" 1 (Problem.num_vars r);
      (* Which of x/y is kept is an implementation detail; the complement
         relation must hold either way. *)
      let sol = Presolve.postsolve info [| 1. |] in
      check (Alcotest.float 1e-9) "sum is one" 1. (sol.(x) +. sol.(y));
      let sol0 = Presolve.postsolve info [| 0. |] in
      check (Alcotest.float 1e-9) "sum is one (0 case)" 1. (sol0.(x) +. sol0.(y))

let test_presolve_detects_infeasible () =
  let p = Problem.create () in
  let x = Problem.add_binary p "x" in
  Problem.add_row p Problem.Ge 2. [ (x, 1.) ];
  (match Presolve.run p with
  | Presolve.Infeasible_detected -> ()
  | Presolve.Reduced _ -> Alcotest.fail "should detect infeasibility")

let presolve_preserves_optimum =
  QCheck.Test.make ~name:"presolve preserves LP optimum" ~count:200
    (QCheck.make ~print:print_random_lp random_lp_gen)
    (fun spec ->
      let p = build_random_lp spec in
      let module E = Dense_simplex.Exact in
      let before = E.solve p in
      match Presolve.run p with
      | Presolve.Infeasible_detected -> before.E.status = E.Infeasible
      | Presolve.Reduced (r, info) -> (
          let after = E.solve r in
          match (before.E.status, after.E.status) with
          | E.Optimal, E.Optimal ->
              (* objective values agree, and postsolve yields feasible pt *)
              let reduced_sol = Array.map Rat.to_float after.E.solution in
              let full = Presolve.postsolve info reduced_sol in
              Float.abs
                (Rat.to_float before.E.objective
                -. Problem.objective_value p full)
              < 1e-6
              && Problem.check_feasible ~eps:1e-6 p full
          | E.Infeasible, E.Infeasible -> true
          | E.Optimal, E.Infeasible | E.Infeasible, E.Optimal -> false
          | _ -> true))

(* ------------------------------------------------------------------ *)
(* Branch & bound / MIP                                                *)
(* ------------------------------------------------------------------ *)

let test_bb_knapsack () =
  (* max 10a + 6b + 4c st a+b+c<=2 (binaries)  == min negated *)
  let p = Problem.create () in
  let a = Problem.add_binary p ~obj:(-10.) "a" in
  let b = Problem.add_binary p ~obj:(-6.) "b" in
  let c = Problem.add_binary p ~obj:(-4.) "c" in
  Problem.add_row p Problem.Le 2. [ (a, 1.); (b, 1.); (c, 1.) ];
  let r = Mip.solve p in
  checkb "optimal" true (r.Mip.status = Mip.Optimal);
  check (Alcotest.float 1e-6) "objective" (-16.) r.Mip.objective;
  check (Alcotest.float 1e-6) "a" 1. r.Mip.solution.(a);
  check (Alcotest.float 1e-6) "b" 1. r.Mip.solution.(b);
  check (Alcotest.float 1e-6) "c" 0. r.Mip.solution.(c)

let test_bb_assignment () =
  (* 3x3 assignment problem with distinct costs; optimum is a permutation. *)
  let costs = [| [| 4.; 2.; 8. |]; [| 4.; 3.; 7. |]; [| 3.; 1.; 6. |] |] in
  let p = Problem.create () in
  let v = Array.make_matrix 3 3 0 in
  for i = 0 to 2 do
    for j = 0 to 2 do
      v.(i).(j) <-
        Problem.add_binary p ~obj:costs.(i).(j) (Printf.sprintf "x%d%d" i j)
    done
  done;
  for i = 0 to 2 do
    Problem.add_row p Problem.Eq 1. (List.init 3 (fun j -> (v.(i).(j), 1.)));
    Problem.add_row p Problem.Eq 1. (List.init 3 (fun j -> (v.(j).(i), 1.)))
  done;
  let r = Mip.solve p in
  checkb "optimal" true (r.Mip.status = Mip.Optimal);
  (* optimal: row0->col1? enumerate: perms costs:
     (0,1,2):4+3+6=13 (0,2,1):4+7+1=12 (1,0,2):2+4+6=12
     (1,2,0):2+7+3=12 (2,0,1):8+4+1=13 (2,1,0):8+3+3=14; min = 12 *)
  check (Alcotest.float 1e-6) "objective" 12. r.Mip.objective

let test_bb_infeasible () =
  let p = Problem.create () in
  let a = Problem.add_binary p "a" in
  let b = Problem.add_binary p "b" in
  Problem.add_row p Problem.Eq 1. [ (a, 2.); (b, 2.) ];
  let r = Mip.solve p in
  checkb "infeasible" true (r.Mip.status = Mip.Infeasible)

let test_bb_without_presolve () =
  let p = Problem.create () in
  let a = Problem.add_binary p ~obj:(-10.) "a" in
  let b = Problem.add_binary p ~obj:(-6.) "b" in
  Problem.add_row p Problem.Le 1. [ (a, 1.); (b, 1.) ];
  let r = Mip.solve ~presolve:false p in
  checkb "optimal" true (r.Mip.status = Mip.Optimal);
  check (Alcotest.float 1e-6) "objective" (-10.) r.Mip.objective

(* Brute force 0-1 enumeration as ground truth. *)
let brute_force_binary p =
  let n = Problem.num_vars p in
  let best = ref None in
  let x = Array.make n 0. in
  let rec go i =
    if i = n then begin
      if Problem.check_feasible ~eps:1e-9 p x then begin
        let obj = Problem.objective_value p x in
        match !best with
        | Some (b, _) when b <= obj -> ()
        | _ -> best := Some (obj, Array.copy x)
      end
    end
    else begin
      x.(i) <- 0.;
      go (i + 1);
      x.(i) <- 1.;
      go (i + 1)
    end
  in
  go 0;
  !best

let random_binary_gen =
  let open QCheck.Gen in
  let* n = 2 -- 7 in
  let* m = 1 -- 5 in
  let* costs = list_size (return n) (map float_of_int (0 -- 9)) in
  let* rows =
    list_size (return m)
      (let* terms = list_size (return n) (map float_of_int (-2 -- 2)) in
       let* rhs = map float_of_int (-1 -- 3) in
       let* sense = oneofl [ Problem.Le; Problem.Ge; Problem.Eq ] in
       return (sense, rhs, terms))
  in
  return (n, costs, rows)

let build_random_binary (n, costs, rows) =
  let p = Problem.create () in
  List.iteri
    (fun i c -> ignore (Problem.add_binary p ~obj:c (Printf.sprintf "b%d" i)))
    costs;
  ignore n;
  List.iter
    (fun (sense, rhs, terms) ->
      Problem.add_row p sense rhs (List.mapi (fun i c -> (i, c)) terms))
    rows;
  p

let bb_matches_brute_force =
  QCheck.Test.make ~name:"branch&bound matches brute force on 0-1 programs"
    ~count:200
    (QCheck.make ~print:print_random_lp random_binary_gen)
    (fun spec ->
      let p = build_random_binary spec in
      let r = Mip.solve ~rel_gap:0. p in
      match (brute_force_binary p, r.Mip.status) with
      | None, Mip.Infeasible -> true
      | Some (obj, _), Mip.Optimal ->
          Float.abs (obj -. r.Mip.objective) < 1e-6
          && Problem.check_feasible ~eps:1e-6 p r.Mip.solution
      | None, Mip.Optimal -> false
      | Some _, Mip.Infeasible -> false
      | _, Mip.Limit -> false)

(* ------------------------------------------------------------------ *)
(* Parallel branch and bound (OCaml 5 domains)                         *)
(* ------------------------------------------------------------------ *)

(* Seeded random set-covering instance: positive costs, >=1 rows over
   random subsets.  Always feasible (all-ones covers), fractional at the
   root, and large enough that the parallel search actually runs several
   coordinator rounds instead of finishing inside the root dive. *)
let seeded_cover_mip seed =
  let nvars = 40 and nrows = 60 in
  let st = Random.State.make [| seed |] in
  let p = Problem.create () in
  for j = 0 to nvars - 1 do
    (* near-uniform costs keep the instance symmetric enough to force a
       real tree (tens of nodes) instead of a lucky root dive *)
    ignore
      (Problem.add_binary p
         ~obj:(float_of_int (3 + Random.State.int st 4))
         (Printf.sprintf "b%d" j))
  done;
  for _ = 1 to nrows do
    let terms = ref [] in
    for j = 0 to nvars - 1 do
      if Random.State.int st 5 = 0 then terms := (j, 1.) :: !terms
    done;
    (* never emit an uncoverable (empty) row *)
    if !terms = [] then terms := [ (Random.State.int st nvars, 1.) ];
    Problem.add_row p Problem.Ge 1. !terms
  done;
  p

(* The proven optimum must not depend on how many domains search for it:
   1, 2 and 4 workers (with and without the deterministic schedule) all
   prove the same objective with rel_gap = 0. *)
let test_bb_domains_agree () =
  List.iter
    (fun seed ->
      let run d det =
        (* fresh problem per solve (root cuts mutate it in place); cuts
           off so the search has to prove the optimum by branching *)
        Mip.solve ~cuts:false ~rel_gap:0. ~domains:d ~deterministic:det
          (seeded_cover_mip seed)
      in
      let r1 = run 1 false in
      checkb "1-domain optimal" true (r1.Mip.status = Mip.Optimal);
      List.iter
        (fun (d, det) ->
          let r = run d det in
          checkb
            (Printf.sprintf "seed %d: %d-domain optimal (det=%b)" seed d det)
            true
            (r.Mip.status = Mip.Optimal);
          check (Alcotest.float 1e-6)
            (Printf.sprintf "seed %d: objective at %d domains (det=%b)" seed d
               det)
            r1.Mip.objective r.Mip.objective)
        [ (2, false); (2, true); (4, false); (4, true) ])
    [ 11; 42 ]

(* In deterministic mode the node distribution schedule is fixed, so the
   node count (and everything else) reproduces exactly run to run. *)
let test_bb_deterministic_nodes () =
  let run () =
    Mip.solve ~cuts:false ~rel_gap:0. ~domains:2 ~deterministic:true
      (seeded_cover_mip 123)
  in
  let a = run () in
  let b = run () in
  checkb "optimal" true (a.Mip.status = Mip.Optimal);
  checki "node count reproduces" a.Mip.stats.Mip.nodes b.Mip.stats.Mip.nodes;
  check (Alcotest.float 0.) "objective reproduces" a.Mip.objective
    b.Mip.objective;
  checki "simplex iterations reproduce" a.Mip.stats.Mip.simplex_iterations
    b.Mip.stats.Mip.simplex_iterations

(* Warm starts: re-solving a slightly edited instance seeded with the
   previous solve's solution and pseudocost history must prove exactly
   the objective a cold solve of the edited instance proves, and must
   report its bookkeeping honestly ([warm_start_used],
   [incumbent_source]).  The edit bumps a few objective coefficients, so
   the previous solution stays feasible and the seed can land. *)
let test_mip_warm_start_equivalence () =
  List.iter
    (fun seed ->
      let cold = Mip.solve ~cuts:false ~rel_gap:0. (seeded_cover_mip seed) in
      checkb
        (Printf.sprintf "seed %d: baseline optimal" seed)
        true
        (cold.Mip.status = Mip.Optimal);
      checkb
        (Printf.sprintf "seed %d: cold solve not warm-started" seed)
        false cold.Mip.stats.Mip.warm_start_used;
      checkb
        (Printf.sprintf "seed %d: cold solve exports hints" seed)
        true
        (cold.Mip.ws_out.Mip.ws_values <> []);
      let edited () =
        let p = seeded_cover_mip seed in
        let st = Random.State.make [| (seed * 7) + 1 |] in
        for _ = 1 to 3 do
          let j = Random.State.int st (Problem.num_vars p) in
          Problem.set_obj p j (Problem.var_obj p j +. 1.)
        done;
        p
      in
      let warm_r =
        Mip.solve ~cuts:false ~rel_gap:0. ~warm:cold.Mip.ws_out (edited ())
      in
      let cold_r = Mip.solve ~cuts:false ~rel_gap:0. (edited ()) in
      checkb
        (Printf.sprintf "seed %d: warm solve optimal" seed)
        true
        (warm_r.Mip.status = Mip.Optimal);
      check (Alcotest.float 1e-6)
        (Printf.sprintf "seed %d: warm proves the cold objective" seed)
        cold_r.Mip.objective warm_r.Mip.objective;
      checkb
        (Printf.sprintf "seed %d: warm start reported as used" seed)
        true warm_r.Mip.stats.Mip.warm_start_used;
      checkb
        (Printf.sprintf "seed %d: incumbent source reported (%s)" seed
           warm_r.Mip.stats.Mip.incumbent_source)
        true
        (List.mem warm_r.Mip.stats.Mip.incumbent_source
           [ "seeded"; "heuristic"; "branch"; "presolve" ]))
    [ 7; 21; 42; 99 ]

(* Concurrent incumbent publication: under any interleaving the stored
   bound never regresses (each domain's observations are non-increasing)
   and the final value is the minimum of everything published. *)
let incumbent_publication_is_monotone =
  QCheck.Test.make
    ~name:"concurrent incumbent publication never regresses the bound"
    ~count:50
    QCheck.(
      list_of_size (Gen.int_range 1 30) (int_range (-1000) 1000))
    (fun objs_i ->
      let objs = List.map float_of_int objs_i in
      let best : Branch_bound.incumbent option Atomic.t = Atomic.make None in
      let regressed = Atomic.make false in
      let publisher l () =
        let last = ref infinity in
        List.iter
          (fun o ->
            ignore (Branch_bound.publish_incumbent best ~obj:o ~x:[| o |]);
            match Atomic.get best with
            | Some i ->
                if i.Branch_bound.i_obj > !last +. 1e-12 then
                  Atomic.set regressed true
                else last := i.Branch_bound.i_obj
            | None -> Atomic.set regressed true)
          l
      in
      let a = List.filteri (fun i _ -> i mod 2 = 0) objs in
      let b = List.filteri (fun i _ -> i mod 2 = 1) objs in
      let d1 = Domain.spawn (publisher a) in
      let d2 = Domain.spawn (publisher b) in
      Domain.join d1;
      Domain.join d2;
      let expect = List.fold_left Float.min infinity objs in
      (not (Atomic.get regressed))
      &&
      match Atomic.get best with
      | Some i -> i.Branch_bound.i_obj = expect
      | None -> false)

(* ------------------------------------------------------------------ *)
(* Sparse LU kernel                                                    *)
(* ------------------------------------------------------------------ *)

(* Random sparse well-conditioned matrices: a shuffled permutation
   diagonal (entries in [1,3]) plus a little off-diagonal noise.  FTRAN
   and BTRAN must invert a dense multiply, both on the base factors and
   after product-form eta updates. *)
let test_sparse_lu_roundtrip () =
  let st = Random.State.make [| 42 |] in
  for _case = 1 to 25 do
    let m = 1 + Random.State.int st 12 in
    let perm = Array.init m (fun i -> i) in
    for i = m - 1 downto 1 do
      let j = Random.State.int st (i + 1) in
      let tmp = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- tmp
    done;
    let dense = Array.make_matrix m m 0. in
    for j = 0 to m - 1 do
      dense.(perm.(j)).(j) <- 1. +. Random.State.float st 2.;
      if m > 1 && Random.State.bool st then begin
        let r = Random.State.int st m in
        dense.(r).(j) <- dense.(r).(j) +. Random.State.float st 1. -. 0.5
      end
    done;
    let col_of j =
      let entries = ref [] in
      for i = m - 1 downto 0 do
        if dense.(i).(j) <> 0. then entries := (i, dense.(i).(j)) :: !entries
      done;
      Array.of_list !entries
    in
    let lu = Sparse_lu.factorize m col_of in
    let mat_vec x =
      Array.init m (fun i ->
          let s = ref 0. in
          for j = 0 to m - 1 do
            s := !s +. (dense.(i).(j) *. x.(j))
          done;
          !s)
    in
    let mat_tvec y =
      Array.init m (fun j ->
          let s = ref 0. in
          for i = 0 to m - 1 do
            s := !s +. (dense.(i).(j) *. y.(i))
          done;
          !s)
    in
    let check_roundtrip tag =
      let x_true = Array.init m (fun _ -> Random.State.float st 4. -. 2.) in
      let b = mat_vec x_true in
      Sparse_lu.ftran lu b;
      Array.iteri
        (fun i v ->
          if Float.abs (v -. x_true.(i)) > 1e-6 then
            Alcotest.failf "%s ftran drift %g at %d (m=%d)" tag
              (Float.abs (v -. x_true.(i)))
              i m)
        b;
      let y_true = Array.init m (fun _ -> Random.State.float st 4. -. 2.) in
      let c = mat_tvec y_true in
      Sparse_lu.btran lu c;
      Array.iteri
        (fun i v ->
          if Float.abs (v -. y_true.(i)) > 1e-6 then
            Alcotest.failf "%s btran drift %g at %d (m=%d)" tag
              (Float.abs (v -. y_true.(i)))
              i m)
        c
    in
    check_roundtrip "base";
    (* a few eta updates: replace random columns with fresh ones *)
    for _u = 1 to 3 do
      let r = Random.State.int st m in
      let newcol =
        Array.init m (fun i ->
            if i = r then 1.5 +. Random.State.float st 1.
            else if Random.State.int st 4 = 0 then
              Random.State.float st 1. -. 0.5
            else 0.)
      in
      let w = Array.copy newcol in
      Sparse_lu.ftran lu w;
      (* the random replacement can make B singular; the kernel must
         refuse it, and skipping keeps the reference matrix in sync *)
      match Sparse_lu.update lu ~r ~w with
      | () ->
          for i = 0 to m - 1 do
            dense.(i).(r) <- newcol.(i)
          done;
          check_roundtrip "eta"
      | exception Sparse_lu.Singular -> ()
    done
  done

(* ------------------------------------------------------------------ *)
(* Seeded float-vs-rational cross-check (larger LPs)                   *)
(* ------------------------------------------------------------------ *)

(* Bigger than the QCheck instances above: enough rows and pivots to
   exercise the sparse factors, eta file, and the incremental dual
   updates; deterministic seed so failures reproduce. *)
let seeded_lp st =
  let n = 8 + Random.State.int st 11 in
  let m = 6 + Random.State.int st 9 in
  let p = Problem.create () in
  for i = 0 to n - 1 do
    let hi = float_of_int (1 + Random.State.int st 6) in
    let obj = float_of_int (Random.State.int st 11 - 5) in
    ignore (Problem.add_var p ~lo:0. ~hi ~obj (Printf.sprintf "x%d" i))
  done;
  for _ = 1 to m do
    let terms =
      List.init n (fun j ->
          if Random.State.int st 10 < 4 then
            (j, float_of_int (Random.State.int st 7 - 3))
          else (j, 0.))
      |> List.filter (fun (_, c) -> c <> 0.)
    in
    let sense =
      match Random.State.int st 20 with
      | 0 | 1 -> Problem.Eq
      | 2 | 3 | 4 -> Problem.Ge
      | _ -> Problem.Le
    in
    (* keep the origin feasible for most inequality rows so a healthy
       fraction of instances is solvable; Eq rows supply infeasibles *)
    let rhs =
      match sense with
      | Problem.Le -> float_of_int (Random.State.int st 13)
      | Problem.Ge -> float_of_int (-Random.State.int st 7)
      | Problem.Eq -> float_of_int (Random.State.int st 3)
    in
    if terms <> [] then Problem.add_row p sense rhs terms
  done;
  p

let test_revised_vs_exact_seeded () =
  let st = Random.State.make [| 0x5eed |] in
  let module E = Dense_simplex.Exact in
  let optimal = ref 0 in
  for case = 1 to 100 do
    let p = seeded_lp st in
    let exact = E.solve p in
    let s = Revised.create p in
    let rs = Revised.solve s in
    match (exact.E.status, rs) with
    | E.Optimal, Revised.Optimal ->
        incr optimal;
        let diff =
          Float.abs (Rat.to_float exact.E.objective -. Revised.objective s)
        in
        if diff > 1e-5 then
          Alcotest.failf "case %d: objective mismatch by %g" case diff
    | E.Infeasible, Revised.Infeasible -> ()
    | E.Unbounded, _ -> () (* cannot happen: all variables bounded *)
    | _, _ -> Alcotest.failf "case %d: status mismatch" case
  done;
  (* the generator must actually produce solvable instances *)
  checkb "enough optimal cases" true (!optimal > 30)

(* Warm-restart chains: random bound tightenings/relaxations re-solved
   incrementally must agree with a cold solver given identical bounds.
   This exercises exactly the delta path branch and bound relies on. *)
let test_revised_warm_chain_seeded () =
  let st = Random.State.make [| 0xa11e5 |] in
  for _case = 1 to 10 do
    let p = seeded_lp st in
    let n = Problem.num_vars p in
    let s = Revised.create p in
    ignore (Revised.solve s);
    for _step = 1 to 25 do
      let j = Random.State.int st n in
      let lo0 = Problem.var_lo p j and hi0 = Problem.var_hi p j in
      (match Random.State.int st 3 with
      | 0 ->
          let v = float_of_int (Random.State.int st (int_of_float hi0 + 1)) in
          Revised.set_bounds s j ~lo:v ~hi:v
      | 1 -> Revised.set_bounds s j ~lo:lo0 ~hi:hi0
      | _ ->
          let mid = float_of_int (Random.State.int st (int_of_float hi0 + 1)) in
          Revised.set_bounds s j ~lo:lo0 ~hi:mid);
      let fresh = Revised.create p in
      for k = 0 to n - 1 do
        let l, h = Revised.bounds s k in
        Revised.set_bounds fresh k ~lo:l ~hi:h
      done;
      match (Revised.solve s, Revised.solve fresh) with
      | Revised.Optimal, Revised.Optimal ->
          let d = Float.abs (Revised.objective s -. Revised.objective fresh) in
          if d > 1e-6 then
            Alcotest.failf "warm vs fresh objective drift %g" d
      | Revised.Infeasible, Revised.Infeasible -> ()
      | _, _ -> Alcotest.fail "warm vs fresh status mismatch"
    done
  done

(* ------------------------------------------------------------------ *)
(* Cuts and the primal heuristic                                       *)
(* ------------------------------------------------------------------ *)

(* Every generated cut must (a) be violated by the fractional LP point
   it was separated from and (b) hold for every feasible 0-1 point. *)
let cuts_are_valid =
  QCheck.Test.make ~name:"root cuts are valid and violated at the LP point"
    ~count:200
    (QCheck.make ~print:print_random_lp random_binary_gen)
    (fun spec ->
      let p = build_random_binary spec in
      let s = Revised.create p in
      match Revised.solve s with
      | Revised.Infeasible | Revised.Iteration_limit -> true
      | Revised.Optimal ->
          let x = Revised.primal s in
          let cuts = Cuts.generate p x in
          let n = Problem.num_vars p in
          let cut_ok (c : Cuts.cut) =
            let lhs_at z =
              List.fold_left
                (fun acc (v, a) -> acc +. (a *. z.(v)))
                0. c.Cuts.cterms
            in
            (* violated at the separating point *)
            lhs_at x > c.Cuts.crhs +. 1e-7
            &&
            (* valid for every feasible integral point *)
            let ok = ref true in
            let z = Array.make n 0. in
            let rec go i =
              if i = n then begin
                if Problem.check_feasible ~eps:1e-9 p z then
                  if lhs_at z > c.Cuts.crhs +. 1e-6 then ok := false
              end
              else begin
                z.(i) <- 0.;
                go (i + 1);
                z.(i) <- 1.;
                go (i + 1)
              end
            in
            go 0;
            !ok
          in
          List.for_all cut_ok cuts)

(* The diving heuristic must return feasible integral solutions and
   restore every bound it touched. *)
let heuristic_is_sound =
  QCheck.Test.make ~name:"diving heuristic is feasible and restores bounds"
    ~count:200
    (QCheck.make ~print:print_random_lp random_binary_gen)
    (fun spec ->
      let p = build_random_binary spec in
      let n = Problem.num_vars p in
      let s = Revised.create p in
      match Revised.solve s with
      | Revised.Infeasible | Revised.Iteration_limit -> true
      | Revised.Optimal ->
          let r = Heuristic.dive s p in
          let bounds_ok = ref true in
          for j = 0 to n - 1 do
            let l, h = Revised.bounds s j in
            if l <> Problem.var_lo p j || h <> Problem.var_hi p j then
              bounds_ok := false
          done;
          !bounds_ok
          &&
          (match r with
          | None -> true
          | Some (obj, x) ->
              Problem.check_feasible ~eps:1e-6 p x
              && Array.for_all
                   (fun v -> Float.abs (v -. Float.round v) < 1e-9)
                   x
              && Float.abs (obj -. Problem.objective_value p x) < 1e-6))

(* With rel_gap 0 the solver must report a best bound equal to the
   optimum it proves. *)
let test_bb_best_bound () =
  let p = Problem.create () in
  let a = Problem.add_binary p ~obj:(-10.) "a" in
  let b = Problem.add_binary p ~obj:(-6.) "b" in
  let c = Problem.add_binary p ~obj:(-4.) "c" in
  Problem.add_row p Problem.Le 2. [ (a, 1.); (b, 1.); (c, 1.) ];
  let r = Mip.solve ~rel_gap:0. p in
  checkb "optimal" true (r.Mip.status = Mip.Optimal);
  check (Alcotest.float 1e-6) "best bound meets objective" r.Mip.objective
    r.Mip.stats.Mip.best_bound

(* ------------------------------------------------------------------ *)
(* LP format                                                           *)
(* ------------------------------------------------------------------ *)

(* tiny substring helper *)
let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  go 0

let test_lp_format () =
  let p = Problem.create () in
  let x = Problem.add_binary p ~obj:2. "move[p1,v,A,B]" in
  Problem.add_row p ~name:"one" Problem.Eq 1. [ (x, 1.) ];
  let s = Lp_format.to_string p in
  checkb "mentions sanitized var" true (is_infix ~affix:"move_p1_v_A_B" s)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

(* The solver budgets meter wall-clock time through [Clock]; it must be
   monotonic (a wall-clock step must not blow or extend a budget). *)
let test_clock () =
  let t0 = Clock.now () in
  let samples = Array.init 1000 (fun _ -> Clock.now ()) in
  Array.iteri
    (fun i t ->
      if i > 0 then
        checkb "monotone non-decreasing" true (t >= samples.(i - 1)))
    samples;
  checkb "since non-negative" true (Clock.since t0 >= 0.);
  (* a t0 in the future (as after a backwards wall-clock step with a
     non-monotonic source) must clamp to zero, not go negative *)
  checkb "since clamps future origins" true
    (Clock.since (Clock.now () +. 100.) = 0.);
  (* the clock advances at all (spin briefly) *)
  let rec spin n = if Clock.since t0 <= 0. && n > 0 then spin (n - 1) in
  spin 10_000_000;
  checkb "clock advances" true (Clock.since t0 > 0.)

let suites =
  [
    ( "lp.bigint",
      [
        Alcotest.test_case "basic ops" `Quick test_bigint_basic;
        Alcotest.test_case "large values" `Quick test_bigint_large;
        Alcotest.test_case "string roundtrip" `Quick test_bigint_string_roundtrip;
        Alcotest.test_case "native extremes" `Quick test_bigint_extremes;
        Alcotest.test_case "gcd" `Quick test_bigint_gcd;
      ]
      @ List.map QCheck_alcotest.to_alcotest bigint_qcheck );
    ( "lp.rat",
      [
        Alcotest.test_case "basic ops" `Quick test_rat_basic;
        Alcotest.test_case "of_float" `Quick test_rat_of_float;
      ]
      @ List.map QCheck_alcotest.to_alcotest rat_qcheck );
    ( "lp.simplex",
      [
        Alcotest.test_case "dense exact classic" `Quick test_dense_exact_classic;
        Alcotest.test_case "dense float classic" `Quick test_dense_float_classic;
        Alcotest.test_case "dense infeasible" `Quick test_dense_infeasible;
        Alcotest.test_case "dense unbounded" `Quick test_dense_unbounded;
        Alcotest.test_case "revised classic" `Quick test_revised_classic_bounded;
        Alcotest.test_case "revised infeasible" `Quick test_revised_infeasible;
        Alcotest.test_case "revised equality system" `Quick
          test_revised_equality_system;
        Alcotest.test_case "revised warm restart" `Quick test_revised_warm_restart;
        Alcotest.test_case "sparse LU roundtrip" `Quick test_sparse_lu_roundtrip;
        Alcotest.test_case "revised vs exact (seeded, large)" `Quick
          test_revised_vs_exact_seeded;
        Alcotest.test_case "warm-restart chains match cold solves" `Quick
          test_revised_warm_chain_seeded;
        QCheck_alcotest.to_alcotest simplex_cross_check;
      ] );
    ( "lp.presolve",
      [
        Alcotest.test_case "fixed + singleton" `Quick
          test_presolve_fixed_and_singleton;
        Alcotest.test_case "alias chain" `Quick test_presolve_alias_chain;
        Alcotest.test_case "complement x+y=1" `Quick test_presolve_complement;
        Alcotest.test_case "detects infeasible" `Quick
          test_presolve_detects_infeasible;
        QCheck_alcotest.to_alcotest presolve_preserves_optimum;
      ] );
    ( "lp.mip",
      [
        Alcotest.test_case "knapsack" `Quick test_bb_knapsack;
        Alcotest.test_case "assignment" `Quick test_bb_assignment;
        Alcotest.test_case "infeasible" `Quick test_bb_infeasible;
        Alcotest.test_case "no presolve" `Quick test_bb_without_presolve;
        Alcotest.test_case "best bound at optimality" `Quick test_bb_best_bound;
        QCheck_alcotest.to_alcotest bb_matches_brute_force;
        QCheck_alcotest.to_alcotest cuts_are_valid;
        QCheck_alcotest.to_alcotest heuristic_is_sound;
        Alcotest.test_case "parallel domains agree on the optimum" `Quick
          test_bb_domains_agree;
        Alcotest.test_case "deterministic mode reproduces node counts" `Quick
          test_bb_deterministic_nodes;
        Alcotest.test_case "warm start proves the cold objective" `Quick
          test_mip_warm_start_equivalence;
        QCheck_alcotest.to_alcotest incumbent_publication_is_monotone;
      ] );
    ( "lp.format",
      [ Alcotest.test_case "writer sanitizes names" `Quick test_lp_format ] );
    ( "lp.clock",
      [ Alcotest.test_case "monotonic budget clock" `Quick test_clock ] );
  ]
