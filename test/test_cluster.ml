(* Tests for the multi-chip cluster: balancer steering, failover, the
   drop-budget breaker, and determinism of the whole assembly. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* The same small packet-independent kernel the chip tests use. *)
let program =
  {|
fun main () : word {
  let x = sram(64, 1);
  let c = scratch(256, 1);
  scratch(256) <- c + 1;
  x + 1
}
|}

let compiled =
  lazy (Regalloc.Driver.compile ~file:"cluster_test.nova" program)

let gen_config ?(profile = Ixp.Pktgen.Fixed 64) ?(offered = 1.0) ?(seed = 7)
    ?(count = 100) ?(ports = 1) () =
  {
    Ixp.Pktgen.default_config with
    Ixp.Pktgen.profile;
    offered_mpps = offered;
    seed;
    count;
    ports;
  }

let make_cluster ?(chips = 2) ?(balancer = Cluster.Flow_hash) ?(engines = 2)
    ?(threads = 2) ?(rx_capacity = 32) ?(drop_budget = 0) ?(failover = true)
    () =
  let c = Lazy.force compiled in
  let chip_config =
    {
      Ixp.Chip.default_config with
      Ixp.Chip.engines;
      threads;
      rx_capacity;
    }
  in
  Cluster.create
    ~config:
      { Cluster.chips; balancer; chip_config; drop_budget; failover }
    c.Regalloc.Driver.physical

let run_cluster ?chips ?balancer ?engines ?threads ?rx_capacity ?drop_budget
    ?failover ?profile ?offered ?(seed = 7) ?(count = 80) () =
  let cl =
    make_cluster ?chips ?balancer ?engines ?threads ?rx_capacity ?drop_budget
      ?failover ()
  in
  Cluster.run cl (Ixp.Pktgen.create (gen_config ?profile ?offered ~seed ~count ()))

let test_cluster_determinism () =
  (* bit-identical reports under the fixed seed, for both balancers;
     the report is compared structurally, chip sub-reports included *)
  let profile =
    Ixp.Pktgen.Elephants { flows = 512; heavy = 4; heavy_pct = 80; size = 576 }
  in
  let a = run_cluster ~balancer:Cluster.Flow_hash ~profile () in
  let b = run_cluster ~balancer:Cluster.Flow_hash ~profile () in
  checkb "hash: same seed, bit-identical report" true (a = b);
  let c = run_cluster ~balancer:Cluster.Round_robin ~profile () in
  let d = run_cluster ~balancer:Cluster.Round_robin ~profile () in
  checkb "rr: same seed, bit-identical report" true (c = d);
  let e = run_cluster ~balancer:Cluster.Flow_hash ~profile ~seed:8 () in
  checkb "different seed, different steering" true (a <> e)

let test_cluster_flow_affinity () =
  (* under the hash balancer at sustainable load with failover off,
     every packet lands on its flow's natural chip: the per-chip steer
     counts must equal the counts predicted from the generated trace *)
  let chips = 4 in
  let cfg =
    gen_config
      ~profile:(Ixp.Pktgen.Flows { users = 256; alpha_pct = 100; size = 64 })
      ~offered:0.05 ~count:120 ()
  in
  let expect = Array.make chips 0 in
  List.iter
    (fun (p : Ixp.Pktgen.packet) ->
      let c = p.Ixp.Pktgen.hash mod chips in
      expect.(c) <- expect.(c) + 1)
    (Ixp.Pktgen.trace cfg);
  let cl = make_cluster ~chips ~balancer:Cluster.Flow_hash ~failover:false () in
  let r = Cluster.run cl (Ixp.Pktgen.create cfg) in
  checki "nothing dropped at this load" 0 (Cluster.dropped r);
  checki "nothing re-steered" 0 (Array.fold_left ( + ) 0 r.Cluster.resteered);
  for c = 0 to chips - 1 do
    checki
      (Printf.sprintf "chip %d steer count matches the trace" c)
      expect.(c) r.Cluster.steered.(c)
  done

let test_cluster_failover () =
  (* saturation with tiny chips: without failover the balancer drops at
     the natural target; with failover packets move to whichever chip
     has headroom, so strictly more complete *)
  let run failover =
    run_cluster ~chips:2 ~engines:1 ~threads:1 ~rx_capacity:2 ~failover
      ~offered:0. ~count:40 ()
  in
  let without = run false and with_fo = run true in
  checki "no re-steering without failover" 0
    (Array.fold_left ( + ) 0 without.Cluster.resteered);
  checkb "failover re-steers" true
    (Array.fold_left ( + ) 0 with_fo.Cluster.resteered > 0);
  checkb "failover completes at least as many" true
    (with_fo.Cluster.completed >= without.Cluster.completed);
  checkb "saturation still drops" true (Cluster.dropped with_fo > 0)

let test_cluster_drop_budget () =
  (* a small drop budget trips the breaker on saturated chips *)
  let r =
    run_cluster ~chips:2 ~engines:1 ~threads:1 ~rx_capacity:2 ~drop_budget:3
      ~offered:0. ~count:60 ()
  in
  checkb "some chip tripped unhealthy" true
    (Array.exists (fun u -> u) r.Cluster.unhealthy);
  (* the breaker can only reduce what a chip is offered, never lose a
     packet: accounting still closes *)
  checki "accounting closes" r.Cluster.generated
    (r.Cluster.completed + Cluster.dropped r);
  (* without a budget nothing trips *)
  let r0 =
    run_cluster ~chips:2 ~engines:1 ~threads:1 ~rx_capacity:2 ~drop_budget:0
      ~offered:0. ~count:60 ()
  in
  checkb "no breaker without a budget" true
    (not (Array.exists (fun u -> u) r0.Cluster.unhealthy))

let test_cluster_accounting () =
  (* conservation at the cluster level, overloaded and not: generated =
     completed + balancer drops, steered = completed, chips report no
     ring drops of their own (the balancer checks room first) *)
  List.iter
    (fun (offered, count) ->
      let r =
        run_cluster ~chips:3 ~engines:1 ~threads:2 ~rx_capacity:4 ~offered
          ~count ()
      in
      checki "generated = completed + dropped" r.Cluster.generated
        (r.Cluster.completed + Cluster.dropped r);
      checki "steered packets all complete" r.Cluster.completed
        (Array.fold_left ( + ) 0 r.Cluster.steered);
      Array.iter
        (fun (cr : Ixp.Chip.report) ->
          checki "no chip-level ring drops in cluster mode" 0
            (Ixp.Chip.dropped cr);
          checki "nothing left in flight" 0 cr.Ixp.Chip.r_in_flight)
        r.Cluster.chip_reports)
    [ (0.05, 40); (0., 120) ]

let test_cluster_single_chip_equivalence () =
  (* a 1-chip cluster is the chip: same cycles, same completions, and
     the balancer's drops are exactly the ring drops the bare chip
     takes, under both a sustainable and an overloaded run *)
  List.iter
    (fun (offered, count) ->
      let c = Lazy.force compiled in
      let chip_config =
        {
          Ixp.Chip.default_config with
          Ixp.Chip.engines = 1;
          threads = 2;
          rx_capacity = 4;
        }
      in
      let cfg = gen_config ~offered ~count () in
      let chip = Ixp.Chip.create ~config:chip_config c.Regalloc.Driver.physical in
      let rc = Ixp.Chip.run chip (Ixp.Pktgen.create cfg) in
      let cl =
        Cluster.create
          ~config:
            {
              Cluster.default_config with
              Cluster.chips = 1;
              chip_config;
            }
          c.Regalloc.Driver.physical
      in
      let r = Cluster.run cl (Ixp.Pktgen.create cfg) in
      checki "same makespan" rc.Ixp.Chip.cycles r.Cluster.cycles;
      checki "same completions" rc.Ixp.Chip.completed r.Cluster.completed;
      checki "cluster drops = chip ring drops" (Ixp.Chip.dropped rc)
        (Cluster.dropped r);
      checki "same bytes" rc.Ixp.Chip.bytes_completed r.Cluster.bytes_completed)
    [ (0.05, 30); (0., 60) ]

let test_cluster_steady_state_no_alloc () =
  (* the cluster loop on top of the chips must stay allocation-free in
     steady state too *)
  let cl = make_cluster ~chips:2 ~engines:2 ~threads:4 () in
  let count = 2000 in
  let run () =
    ignore
      (Cluster.run cl
         (Ixp.Pktgen.create
            (gen_config
               ~profile:(Ixp.Pktgen.Syn_flood { size = 40 })
               ~offered:1.0 ~count ())))
  in
  run () (* warm up *);
  (* [Cluster.run] itself allocates reports and resets state; measure
     only the drive loop *)
  let gen =
    Ixp.Pktgen.create
      (gen_config ~profile:(Ixp.Pktgen.Syn_flood { size = 40 }) ~offered:1.0
         ~count ())
  in
  Cluster.iter_chips
    (fun chip -> Ixp.Chip.prepare chip ~ports:1 ~expected:count)
    cl;
  let before = Gc.minor_words () in
  Cluster.drive cl ~deliver:Ixp.Chip.default_deliver gen;
  let words = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "cluster drive allocates nothing (%.0f words for %d \
                     packets)"
       words count)
    true (words < 64.)

let suites =
  [
    ( "cluster",
      [
        Alcotest.test_case "determinism" `Quick test_cluster_determinism;
        Alcotest.test_case "flow affinity" `Quick test_cluster_flow_affinity;
        Alcotest.test_case "failover" `Quick test_cluster_failover;
        Alcotest.test_case "drop budget breaker" `Quick
          test_cluster_drop_budget;
        Alcotest.test_case "conservation" `Quick test_cluster_accounting;
        Alcotest.test_case "single-chip equivalence" `Quick
          test_cluster_single_chip_equivalence;
        Alcotest.test_case "steady-state zero-alloc" `Quick
          test_cluster_steady_state_no_alloc;
      ] );
  ]
