(* Tests for the incremental-compilation layer: content-hash keys,
   the two-tier artifact store, model fingerprint stability, and the
   stage-invalidation behavior of [Regalloc.Driver.compile_incremental]
   (a source edit must invalidate exactly the downstream stages). *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---------------- keys ---------------- *)

let test_key_determinism () =
  let src = "fun main () : word { 1 + 2 }" in
  checks "identical text, identical key" (Cache.Key.text src)
    (Cache.Key.text src);
  checkb "one-token edit changes the key" false
    (Cache.Key.text src = Cache.Key.text "fun main () : word { 1 + 3 }");
  checks "combine is deterministic"
    (Cache.Key.combine [ "a"; "bc" ])
    (Cache.Key.combine [ "a"; "bc" ]);
  (* length-prefixing: part boundaries matter, not just the concatenation *)
  checkb "combine separates parts" false
    (Cache.Key.combine [ "ab"; "c" ] = Cache.Key.combine [ "a"; "bc" ])

let test_key_fold_order_insensitive () =
  let digest_of parts =
    let acc = Cache.Key.fold_create () in
    List.iter (fun s -> Cache.Key.fold_add acc (Cache.Key.text s)) parts;
    Cache.Key.fold_digest acc
  in
  checks "fold is order-insensitive"
    (digest_of [ "x"; "y"; "z" ])
    (digest_of [ "z"; "x"; "y" ]);
  checkb "fold distinguishes contents" false
    (digest_of [ "x"; "y" ] = digest_of [ "x"; "z" ])

(* ---------------- store ---------------- *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat (Filename.get_temp_dir_name ())
        (Printf.sprintf "novac-test-cache-%d-%d" (Unix.getpid ()) !n)
    in
    dir

let test_store_roundtrip () =
  let store = Cache.Store.create ~dir:(fresh_dir ()) () in
  let key = Cache.Key.text "some input" in
  checkb "miss before store" true
    (Cache.Store.lookup store ~stage:"solve" ~key = None);
  let doc = Support.Json.Obj [ ("answer", Support.Json.Num 42.) ] in
  Cache.Store.store store ~stage:"solve" ~key doc;
  (match Cache.Store.lookup store ~stage:"solve" ~key with
  | Some d ->
      checkb "roundtrip value" true
        (Option.bind (Support.Json.member "answer" d) Support.Json.to_float
        = Some 42.)
  | None -> Alcotest.fail "stored artifact not found");
  (* stages are namespaced: the same key under another stage misses *)
  checkb "stage namespacing" true
    (Cache.Store.lookup store ~stage:"model" ~key = None);
  (* survives a memory clear (disk tier) *)
  Cache.Store.clear_memory store;
  checkb "disk tier survives memory clear" true
    (Cache.Store.lookup store ~stage:"solve" ~key <> None)

let test_store_eviction () =
  let store =
    Cache.Store.create ~dir:(fresh_dir ()) ~mem_entries:4 ~disk_entries:4 ()
  in
  for i = 1 to 12 do
    Cache.Store.store store ~stage:"s"
      ~key:(Cache.Key.text (string_of_int i))
      (Support.Json.Num (float_of_int i))
  done;
  let present = ref 0 in
  for i = 1 to 12 do
    if
      Cache.Store.lookup store ~stage:"s"
        ~key:(Cache.Key.text (string_of_int i))
      <> None
    then incr present
  done;
  checkb "eviction keeps the store within its cap" true (!present <= 8);
  checkb "the newest entry survives" true
    (Cache.Store.lookup store ~stage:"s" ~key:(Cache.Key.text "12") <> None)

let test_store_head_pointer () =
  let store = Cache.Store.create ~dir:(fresh_dir ()) () in
  checkb "no head initially" true (Cache.Store.head store ~name:"h" = None);
  Cache.Store.set_head store ~name:"h" ~key:"k1";
  checkb "head set" true (Cache.Store.head store ~name:"h" = Some "k1");
  Cache.Store.set_head store ~name:"h" ~key:"k2";
  checkb "head moves" true (Cache.Store.head store ~name:"h" = Some "k2")

(* ---------------- model fingerprints ---------------- *)

let small_src =
  {|
fun main () : word {
  let (a, b, c, d) = sram(100);
  var acc = 0;
  var i = 0;
  while (i < 3) {
    acc := acc + a + b - c;
    i := i + 1;
  }
  sram(200) <- (acc, d);
  acc + d
}
|}

(* [small_src] with one token added to the result expression ("+ a"):
   this stretches [a]'s live range across the stores to the very end of
   the program, so the allocation model itself changes.  (Note that a
   mere opcode flip like "- c" -> "+ c" would NOT change the model: the
   ILP sees operands, liveness and program points, not instruction
   semantics, and the cache is correct to reuse the solve.) *)
let small_src_semantic_edit =
  {|
fun main () : word {
  let (a, b, c, d) = sram(100);
  var acc = 0;
  var i = 0;
  while (i < 3) {
    acc := acc + a + b - c;
    i := i + 1;
  }
  sram(200) <- (acc, d);
  acc + d + a
}
|}

let build_problem source =
  let f =
    Regalloc.Driver.front_end ~entry:"main" ~entry_args:[]
      ~rematerialize:false ~verify_each:false ~file:"test.nova" source
  in
  let mg = Regalloc.Modelgen.build f.Regalloc.Driver.f_graph in
  let ilp = Regalloc.Ilp.build mg in
  ilp.Regalloc.Ilp.instance.Ampl.Model.problem

let test_fingerprint_stability () =
  (* two builds of the same source in one process draw entirely different
     ident stamps; the canonical fingerprint must agree anyway *)
  let p1 = build_problem small_src in
  let p2 = build_problem small_src in
  checks "same source, same fingerprint" (Regalloc.Modelhash.fingerprint p1)
    (Regalloc.Modelhash.fingerprint p2);
  (* a trailing comment is trivia: same model, same fingerprint *)
  let p3 = build_problem (small_src ^ "\n// trailing comment\n") in
  checks "comment-only edit keeps the fingerprint"
    (Regalloc.Modelhash.fingerprint p1)
    (Regalloc.Modelhash.fingerprint p3);
  (* a semantic edit changes the model *)
  let p4 = build_problem small_src_semantic_edit in
  checkb "semantic edit changes the fingerprint" false
    (Regalloc.Modelhash.fingerprint p1 = Regalloc.Modelhash.fingerprint p4);
  (* canonical names are a stable, duplicate-free relabeling *)
  let n1 = Regalloc.Modelhash.canonical_names p1 in
  let n2 = Regalloc.Modelhash.canonical_names p2 in
  let sorted a =
    let c = Array.copy a in
    Array.sort String.compare c;
    c
  in
  checkb "canonical name sets agree across builds" true
    (sorted n1 = sorted n2);
  let module S = Set.Make (String) in
  checki "canonical names are unique"
    (Array.length n1)
    (S.cardinal (S.of_list (Array.to_list n1)))

(* ---------------- stage invalidation through the driver ---------------- *)

let fast_options =
  { Regalloc.Driver.default_options with time_limit = 60.; node_limit = 4096 }

let compile_inc ?(options = fast_options) store src =
  Regalloc.Driver.compile_incremental ~options ~store ~file:"test.nova" src

let test_stage_invalidation () =
  Regalloc.Driver.clear_memos ();
  let store = Cache.Store.create ~dir:(fresh_dir ()) () in
  (* cold compile: every stage misses *)
  let c0, r0 = compile_inc store small_src in
  checkb "cold: no front hit" false r0.Regalloc.Driver.front_hit;
  checkb "cold: no solve hit" false r0.Regalloc.Driver.solve_hit;
  checkb "cold: no full hit" false r0.Regalloc.Driver.full_hit;
  checkb "cold: fingerprint reported" true
    (r0.Regalloc.Driver.model_fingerprint <> "");
  (* identical source: pure full-compile hit, nothing recomputed *)
  let _, r1 = compile_inc store small_src in
  checkb "no-op: full hit" true r1.Regalloc.Driver.full_hit;
  (* in-process memos dropped (a fresh daemon, say): the front re-runs,
     the model is rebuilt, but the solve replays from disk *)
  Regalloc.Driver.clear_memos ();
  let c2, r2 = compile_inc store small_src in
  checkb "fresh memos: no full hit" false r2.Regalloc.Driver.full_hit;
  checkb "fresh memos: solve replays from disk" true
    r2.Regalloc.Driver.solve_hit;
  checks "fresh memos: same fingerprint" r0.Regalloc.Driver.model_fingerprint
    r2.Regalloc.Driver.model_fingerprint;
  check (Alcotest.float 1e-6) "fresh memos: same move cost"
    c0.Regalloc.Driver.stats.Regalloc.Driver.weighted_move_cost
    c2.Regalloc.Driver.stats.Regalloc.Driver.weighted_move_cost;
  (* comment-only edit: front invalidated, model fingerprint unchanged,
     solve replays *)
  let c3, r3 = compile_inc store (small_src ^ "\n// edited\n") in
  checkb "comment edit: no front hit" false r3.Regalloc.Driver.front_hit;
  checkb "comment edit: no full hit" false r3.Regalloc.Driver.full_hit;
  checkb "comment edit: solve replays" true r3.Regalloc.Driver.solve_hit;
  check (Alcotest.float 1e-6) "comment edit: same move cost"
    c0.Regalloc.Driver.stats.Regalloc.Driver.weighted_move_cost
    c3.Regalloc.Driver.stats.Regalloc.Driver.weighted_move_cost;
  (* solver-option edit (rel_gap): the model is untouched -- the memoized
     front and model are reused -- but the solve key changes *)
  let opt_gap = { fast_options with rel_gap = 0.25 } in
  let _, r4 = compile_inc ~options:opt_gap store (small_src ^ "\n// edited\n") in
  checkb "rel_gap change: front memo survives" true
    r4.Regalloc.Driver.front_hit;
  checkb "rel_gap change: model memo survives" true
    r4.Regalloc.Driver.model_hit;
  checkb "rel_gap change: solve re-runs" false r4.Regalloc.Driver.solve_hit;
  (* semantic one-token edit: model fingerprint changes, solve re-runs *)
  let _, r5 = compile_inc store small_src_semantic_edit in
  checkb "semantic edit: no front hit" false r5.Regalloc.Driver.front_hit;
  checkb "semantic edit: solve re-runs" false r5.Regalloc.Driver.solve_hit;
  checkb "semantic edit: new fingerprint" false
    (r5.Regalloc.Driver.model_fingerprint
    = r0.Regalloc.Driver.model_fingerprint)

let suites =
  [
    ( "cache.key",
      [
        Alcotest.test_case "content hashing" `Quick test_key_determinism;
        Alcotest.test_case "order-insensitive fold" `Quick
          test_key_fold_order_insensitive;
      ] );
    ( "cache.store",
      [
        Alcotest.test_case "roundtrip + tiers" `Quick test_store_roundtrip;
        Alcotest.test_case "eviction" `Quick test_store_eviction;
        Alcotest.test_case "head pointers" `Quick test_store_head_pointer;
      ] );
    ( "cache.fingerprint",
      [
        Alcotest.test_case "stability across builds" `Quick
          test_fingerprint_stability;
      ] );
    ( "cache.driver",
      [
        Alcotest.test_case "stage invalidation" `Quick test_stage_invalidation;
      ] );
  ]
