let () =
  Alcotest.run "nova_ixp"
    (Test_support.suites @ Test_lp.suites @ Test_ampl.suites @ Test_ixp.suites
   @ Test_nova.suites @ Test_cps.suites @ Test_regalloc.suites
   @ Test_verify.suites @ Test_workloads.suites @ Test_emit.suites
   @ Test_paper.suites @ Test_random.suites @ Test_chip.suites
   @ Test_misc.suites @ Test_analysis.suites @ Test_cluster.suites
   @ Test_cache.suites @ Test_pp.suites @ Test_dataplane.suites
   @ Test_fuzz.suites)
