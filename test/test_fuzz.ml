(* Tests for the typed Nova fuzzer: generator well-typedness, shrinker
   type preservation, the differential oracle on fresh programs, and
   replay of the checked-in counterexample corpus.

   The corpus files under test/corpus/ are shrunk counterexamples from
   historical bugs (pretty-printer statement/expression ambiguities,
   baseline join-point bank reconciliation, ...); each must pass the
   full oracle stack now, pinning those fixes as tier-1 regressions. *)

let typechecks p =
  try
    ignore (Nova.Typecheck.check_program ~entry:"main" p);
    true
  with Support.Diag.Compile_error _ -> false

let arb max_size =
  QCheck.make
    ~print:(fun p -> Nova.Pp.program_to_string p)
    ~shrink:Fuzz.Shrink.qcheck_iter
    (fun st -> Fuzz.Gen.program ~max_size st)

(* every generated program typechecks and survives print -> re-parse *)
let test_generator_well_typed =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:60 ~name:"generated programs roundtrip"
       (arb 18)
       (fun p ->
         let src = Nova.Pp.program_to_string p in
         match Fuzz.Oracle.reparse ~file:"<gen>" src with
         | Ok _ -> true
         | Error f ->
             QCheck.Test.fail_reportf "stage %s: %s\n%s" f.Fuzz.Oracle.stage
               f.Fuzz.Oracle.detail src))

(* shrink candidates of a well-typed program stay well-typed *)
let test_shrink_preserves_types () =
  for seed = 0 to 14 do
    let rng = Random.State.make [| seed; 77 |] in
    let p = Fuzz.Gen.program ~max_size:12 rng in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d generates well-typed" seed)
      true (typechecks p);
    List.iteri
      (fun i c ->
        if not (typechecks c) then
          Alcotest.failf "seed %d candidate %d is ill-typed:\n%s" seed i
            (Nova.Pp.program_to_string c))
      (Fuzz.Shrink.candidates p)
  done

(* the shrinker makes progress: programs get structurally smaller *)
let rec expr_size (e : Nova.Ast.expr) =
  1
  +
  match e with
  | Nova.Ast.Binop (_, a, b, _)
  | Nova.Ast.Seq (a, b, _)
  | Nova.Ast.While (a, b, _)
  | Nova.Ast.MemWrite (_, a, b, _) ->
      expr_size a + expr_size b
  | Nova.Ast.Unop (_, a, _)
  | Nova.Ast.Hash (a, _)
  | Nova.Ast.MemRead (_, a, _, _)
  | Nova.Ast.Assign (_, a, _) ->
      expr_size a
  | Nova.Ast.If (c, t, e1, _) -> expr_size c + expr_size t + expr_size e1
  | Nova.Ast.Let (_, _, r, b, _) | Nova.Ast.Vardecl (_, _, r, b, _) ->
      expr_size r + expr_size b
  | Nova.Ast.Tuple (es, _) -> List.fold_left (fun a e -> a + expr_size e) 0 es
  | Nova.Ast.Try (b, hs, _) ->
      expr_size b
      + List.fold_left (fun a h -> a + expr_size h.Nova.Ast.hbody) 0 hs
  | Nova.Ast.Call (_, args, _) | Nova.Ast.Raise (_, args, _) ->
      List.fold_left
        (fun a -> function
          | Nova.Ast.Apos e | Nova.Ast.Anamed (_, e) -> a + expr_size e)
        0 args
  | _ -> 0

let program_size (p : Nova.Ast.program) =
  List.fold_left
    (fun a -> function
      | Nova.Ast.Dfun fd -> a + expr_size fd.Nova.Ast.fn_body
      | _ -> a + 1)
    0 p.Nova.Ast.decls

let test_minimize_shrinks () =
  let rng = Random.State.make [| 3; 99 |] in
  let p = Fuzz.Gen.program ~max_size:16 rng in
  (* minimize against "still well-typed": must reach a small fixpoint
     without ever leaving the well-typed fragment *)
  let m = Fuzz.Shrink.minimize ~budget:2000 ~failing:typechecks p in
  Alcotest.(check bool)
    "minimized no larger" true
    (program_size m <= program_size p);
  Alcotest.(check bool) "minimized well-typed" true (typechecks m)

(* cheap oracle stages over a batch of fresh programs *)
let test_oracle_front_end () =
  for index = 0 to 11 do
    let p = Fuzz.Campaign.generate ~seed:7 ~index ~max_size:16 in
    match Fuzz.Oracle.check ~ilp:false p with
    | Ok () -> ()
    | Error f ->
        Alcotest.failf "seed 7/%d failed stage %s: %s\n%s" index
          f.Fuzz.Oracle.stage f.Fuzz.Oracle.detail
          (Nova.Pp.program_to_string p)
  done

(* full stack (ILP + warm/cold) on a handful of programs *)
let test_oracle_full_stack () =
  for index = 0 to 3 do
    Regalloc.Driver.clear_memos ();
    let p = Fuzz.Campaign.generate ~seed:11 ~index ~max_size:10 in
    match Fuzz.Oracle.check ~node_limit:200 p with
    | Ok () -> ()
    | Error f ->
        Alcotest.failf "seed 11/%d failed stage %s: %s\n%s" index
          f.Fuzz.Oracle.stage f.Fuzz.Oracle.detail
          (Nova.Pp.program_to_string p)
  done

(* ---------------- corpus replay ---------------- *)

let corpus_dir = "corpus"

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".nova")
  |> List.sort compare
  |> List.map (Filename.concat corpus_dir)

let test_corpus_present () =
  let n = List.length (corpus_files ()) in
  Alcotest.(check bool)
    (Printf.sprintf "at least 5 corpus files (found %d)" n)
    true (n >= 5)

let test_corpus_replays () =
  List.iter
    (fun path ->
      match Fuzz.Campaign.replay_file ~node_limit:200 path with
      | Ok () -> ()
      | Error f ->
          Alcotest.failf "%s failed stage %s: %s" path f.Fuzz.Oracle.stage
            f.Fuzz.Oracle.detail)
    (corpus_files ())

let suites =
  [
    ( "fuzz.gen",
      [
        test_generator_well_typed;
        Alcotest.test_case "shrink preserves types" `Quick
          test_shrink_preserves_types;
        Alcotest.test_case "minimize shrinks" `Quick test_minimize_shrinks;
      ] );
    ( "fuzz.oracle",
      [
        Alcotest.test_case "front-end differential" `Quick
          test_oracle_front_end;
        Alcotest.test_case "full stack differential" `Slow
          test_oracle_full_stack;
      ] );
    ( "fuzz.corpus",
      [
        Alcotest.test_case "corpus present" `Quick test_corpus_present;
        Alcotest.test_case "corpus replays clean" `Quick test_corpus_replays;
      ] );
  ]
