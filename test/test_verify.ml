(* Negative tests for the pass-by-pass verifiers: hand-construct illegal
   CPS terms, virtual flowgraphs and physical programs, and assert that
   each violation class is caught with a diagnostic naming the offending
   pass.  A verifier that accepts garbage is worse than none -- it
   launders broken IR into an "infeasible model" error much later. *)

open Support
module V = Cps.Verify
module Ir = Cps.Ir
module FG = Ixp.Flowgraph
module Insn = Ixp.Insn
module Bank = Ixp.Bank
module Reg = Ixp.Reg

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains hay needle =
  let n = String.length hay and m = String.length needle in
  let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
  go 0

(* any error mentioning [needle]? *)
let errors_mention needle errs = List.exists (fun e -> contains e needle) errs

let v base = Ident.fresh base

(* ---------------- CPS structural checks ---------------- *)

let to_cps src =
  let prog = Nova.Parser.parse_string ~file:"t.nova" src in
  let tprog = Nova.Typecheck.check_program prog in
  Cps.Convert.convert_program ~entry_args:[] tprog

let test_accepts_pipeline_output () =
  let term =
    to_cps
      {|
fun main () : word {
  var acc = 0;
  var i = 1;
  while (i <= 8) { acc := acc + i; i := i + 1; }
  acc
}
|}
  in
  let contracted = Cps.Contract.simplify term in
  let deprocd = Cps.Deproc.run contracted in
  let ssud = Cps.Ssu.run deprocd in
  checki "convert clean" 0 (List.length (V.check ~stage:V.After_convert term));
  checki "contract clean" 0
    (List.length (V.check ~stage:V.After_contract contracted));
  checki "deproc clean" 0 (List.length (V.check ~stage:V.After_deproc deprocd));
  checki "ssu clean" 0 (List.length (V.check ~stage:V.After_ssu ssud))

let test_duplicate_binder () =
  let x = v "x" in
  let t =
    Ir.Prim (x, Ir.Mov, [ Ir.Int 1 ],
      Ir.Prim (x, Ir.Mov, [ Ir.Int 2 ], Ir.Halt [ Ir.Var x ]))
  in
  checkb "duplicate binder caught" true
    (errors_mention "duplicate binder" (V.check ~stage:V.After_convert t))

let test_use_out_of_scope () =
  let x = v "x" and ghost = v "ghost" in
  let t = Ir.Prim (x, Ir.Mov, [ Ir.Var ghost ], Ir.Halt [ Ir.Var x ]) in
  checkb "unbound use caught" true
    (errors_mention "not in scope" (V.check ~stage:V.After_convert t))

let test_prim_arity () =
  let x = v "x" in
  let t = Ir.Prim (x, Ir.Add, [ Ir.Int 1 ], Ir.Halt []) in
  checkb "bad arity caught" true
    (errors_mention "arity" (V.check ~stage:V.After_convert t))

let test_illegal_sdram_width () =
  let d = v "d" in
  (* a 1-word SDRAM read: the machine transfers quadwords, so widths must
     be even *)
  let t = Ir.MemRead (Nova.Ast.Sdram, Ir.Int 0, [| d |], Ir.Halt []) in
  checkb "odd sdram width caught" true
    (errors_mention "not machine-legal" (V.check ~stage:V.After_convert t))

let test_clone_before_ssu () =
  let x = v "x" and c = v "c" in
  let t =
    Ir.Prim (x, Ir.Mov, [ Ir.Int 1 ],
      Ir.Clone ([| c |], x, Ir.Halt [ Ir.Var c ]))
  in
  checkb "premature clone caught" true
    (errors_mention "before the SSU pass" (V.check ~stage:V.After_contract t));
  (* the same term is fine once SSU has run: the clone sits directly
     after its source's definition *)
  checkb "well-placed clone ok post-ssu" false
    (errors_mention "clone" (V.check ~stage:V.After_ssu t))

let test_misplaced_clone () =
  let x = v "x" and y = v "y" and c = v "c" in
  let t =
    Ir.Prim (x, Ir.Mov, [ Ir.Int 1 ],
      Ir.Prim (y, Ir.Mov, [ Ir.Int 2 ],
        Ir.Clone ([| c |], x, Ir.Halt [ Ir.Var c; Ir.Var y ])))
  in
  checkb "misplaced clone caught" true
    (errors_mention "not placed directly after"
       (V.check ~stage:V.After_ssu t))

let test_second_write_side_use () =
  let x = v "x" in
  let t =
    Ir.Prim (x, Ir.Mov, [ Ir.Int 7 ],
      Ir.MemWrite (Nova.Ast.Sram, Ir.Int 100, [| Ir.Var x |],
        Ir.MemWrite (Nova.Ast.Sram, Ir.Int 101, [| Ir.Var x |], Ir.Halt [])))
  in
  (* legal before SSU, an invariant violation after *)
  checki "pre-ssu ok" 0 (List.length (V.check ~stage:V.After_contract t));
  checkb "double write-side use caught" true
    (errors_mention "write-side uses" (V.check ~stage:V.After_ssu t))

let test_write_then_read_use () =
  let x = v "x" in
  let t =
    Ir.Prim (x, Ir.Mov, [ Ir.Int 7 ],
      Ir.MemWrite (Nova.Ast.Sram, Ir.Int 100, [| Ir.Var x |],
        Ir.Halt [ Ir.Var x ]))
  in
  checkb "store + other use caught" true
    (errors_mention "other use" (V.check ~stage:V.After_ssu t))

let test_func_survives_deproc () =
  let f = v "f" and r = v "r" in
  let t =
    Ir.Fix
      ( [ { Ir.name = f; params = [ r ]; kind = Ir.Func;
            body = Ir.Halt [ Ir.Var r ] } ],
        Ir.App (Ir.Var f, [ Ir.Int 1 ]) )
  in
  checki "func ok pre-deproc" 0
    (List.length (V.check ~stage:V.After_contract t));
  checkb "leftover Func caught" true
    (errors_mention "de-proceduralization" (V.check ~stage:V.After_deproc t))

let test_unknown_app_target_post_deproc () =
  let k = v "k" and f = v "f" in
  let t =
    Ir.Fix
      ( [ { Ir.name = f; params = [ k ]; kind = Ir.Cont;
            body = Ir.App (Ir.Var k, []) } ],
        Ir.Halt [] )
  in
  (* applying a parameter is fine before deproc, illegal after: every
     jump must target a Fix-bound block *)
  checki "param app ok pre-deproc" 0
    (List.length (V.check ~stage:V.After_contract t));
  checkb "non-block app head caught" true
    (errors_mention "not a Fix-bound block" (V.check ~stage:V.After_deproc t))

let test_check_exn_names_pass () =
  let x = v "x" in
  let t =
    Ir.Prim (x, Ir.Mov, [ Ir.Int 1 ],
      Ir.Prim (x, Ir.Mov, [ Ir.Int 2 ], Ir.Halt []))
  in
  match V.check_exn ~pass:"ssu" ~stage:V.After_ssu t with
  | () -> Alcotest.fail "expected a verification failure"
  | exception Diag.Compile_error d ->
      let msg = d.Diag.message in
      checkb "names the pass" true (contains msg "after pass 'ssu'");
      checkb "names the violation" true (contains msg "duplicate binder")

(* ---------------- differential semantics ---------------- *)

let test_differential_accepts_equal () =
  let t = Ir.Halt [ Ir.Int 42 ] in
  checkb "identical terms ok" true
    (V.differential ~pass:"contract" t t = Ok ())

let test_differential_catches_result_change () =
  let before = Ir.Halt [ Ir.Int 1 ] and after = Ir.Halt [ Ir.Int 2 ] in
  match V.differential ~pass:"contract" before after with
  | Ok () -> Alcotest.fail "expected a mismatch"
  | Error msg ->
      checkb "names the pass" true (contains msg "'contract'");
      checkb "describes the change" true
        (contains msg "changed the observable result")

let test_differential_catches_tfifo_change () =
  let x = v "x" in
  let emit n k =
    Ir.Prim (x, Ir.Mov, [ Ir.Int n ],
      Ir.TfifoWrite (Ir.Int 0, [| Ir.Var x |], k))
  in
  ignore (emit 0 (Ir.Halt []));
  let before =
    Ir.TfifoWrite (Ir.Int 0, [| Ir.Int 1 |], Ir.Halt [ Ir.Int 0 ])
  in
  let after =
    Ir.TfifoWrite (Ir.Int 0, [| Ir.Int 9 |], Ir.Halt [ Ir.Int 0 ])
  in
  match V.differential ~pass:"ssu" before after with
  | Ok () -> Alcotest.fail "expected a mismatch"
  | Error msg ->
      checkb "describes the change" true (contains msg "transmit-FIFO")

let test_differential_exn_raises () =
  match
    V.differential_exn ~pass:"deproc" (Ir.Halt [ Ir.Int 1 ])
      (Ir.Halt [ Ir.Int 2 ])
  with
  | () -> Alcotest.fail "expected a verification failure"
  | exception Diag.Compile_error d ->
      checkb "names the pass" true
        (contains d.Diag.message "after pass 'deproc'")

(* ---------------- virtual-program verifier ---------------- *)

let vgraph blocks =
  let g = FG.create () in
  List.iter
    (fun (label, insns, term) -> ignore (FG.add_block g ~label ~insns ~term))
    blocks;
  g

let lit_addr n = { Insn.base = Insn.Lit n; disp = 0 }

let test_virtual_accepts_legal () =
  let t0 = v "t0" and t1 = v "t1" in
  let g =
    vgraph
      [
        ( "entry",
          [
            Insn.Imm { dst = t0; value = 1 };
            Insn.Alu { dst = t1; op = Insn.Add; x = t0; y = Insn.Reg t0 };
            Insn.Write
              { space = Insn.Sram; srcs = [| t1 |]; addr = lit_addr 100 };
          ],
          Insn.Halt );
      ]
  in
  checki "no violations" 0 (List.length (Ixp.Verify_virtual.check g))

let test_virtual_catches_undefined_use () =
  let t0 = v "t0" and t1 = v "t1" in
  let g =
    vgraph
      [
        ( "entry",
          [ Insn.Alu { dst = t1; op = Insn.Add; x = t0; y = Insn.Lit 1 } ],
          Insn.Halt );
      ]
  in
  let vs = List.map Ixp.Verify_virtual.(fun x -> x.message)
      (Ixp.Verify_virtual.check g)
  in
  checkb "live-in at entry" true (errors_mention "live-in at the entry" vs);
  checkb "use not dominated" true (errors_mention "not dominated" vs)

let test_virtual_catches_join_path () =
  (* defined on one path into the join but not the other: must-defined
     analysis has to intersect, not union *)
  let t0 = v "t0" and c = v "c" in
  let g =
    vgraph
      [
        ( "entry",
          [ Insn.Imm { dst = c; value = 0 } ],
          Insn.Branch
            { cond = Insn.Eq; x = c; y = Insn.Lit 0; ifso = "def";
              ifnot = "skip" } );
        ("def", [ Insn.Imm { dst = t0; value = 1 } ], Insn.Jump "join");
        ("skip", [], Insn.Jump "join");
        ( "join",
          [
            Insn.Write
              { space = Insn.Sram; srcs = [| t0 |]; addr = lit_addr 100 };
          ],
          Insn.Halt );
      ]
  in
  let vs = List.map Ixp.Verify_virtual.(fun x -> x.message)
      (Ixp.Verify_virtual.check g)
  in
  checkb "maybe-undefined use caught" true (errors_mention "not dominated" vs)

let test_virtual_catches_bad_widths () =
  let a = v "a" and b = v "b" and c = v "c" in
  let g =
    vgraph
      [
        ( "entry",
          [
            Insn.Read
              { space = Insn.Sdram; dsts = [| a; b; c |]; addr = lit_addr 0 };
          ],
          Insn.Halt );
      ]
  in
  let vs = List.map Ixp.Verify_virtual.(fun x -> x.message)
      (Ixp.Verify_virtual.check g)
  in
  checkb "odd sdram width caught" true (errors_mention "aggregate width" vs)

let test_virtual_catches_duplicate_members () =
  let t0 = v "t0" in
  let g =
    vgraph
      [
        ( "entry",
          [
            Insn.Imm { dst = t0; value = 1 };
            Insn.Write
              { space = Insn.Sram; srcs = [| t0; t0 |]; addr = lit_addr 0 };
          ],
          Insn.Halt );
      ]
  in
  let vs = List.map Ixp.Verify_virtual.(fun x -> x.message)
      (Ixp.Verify_virtual.check g)
  in
  checkb "duplicate member caught" true (errors_mention "distinct" vs)

let test_virtual_rejects_allocator_insns () =
  let t0 = v "t0" in
  let g =
    vgraph
      [
        ( "entry",
          [ Insn.Imm { dst = t0; value = 1 }; Insn.Spill { slot = 0; src = t0 } ],
          Insn.Halt );
      ]
  in
  let vs = List.map Ixp.Verify_virtual.(fun x -> x.message)
      (Ixp.Verify_virtual.check g)
  in
  checkb "allocator insn caught" true (errors_mention "allocator-inserted" vs)

let test_virtual_catches_unknown_target () =
  let g = vgraph [ ("entry", [], Insn.Jump "nowhere") ] in
  let vs = List.map Ixp.Verify_virtual.(fun x -> x.message)
      (Ixp.Verify_virtual.check g)
  in
  checkb "unknown branch target caught" true
    (errors_mention "unknown block" vs)

let test_virtual_exn_names_pass () =
  let g = vgraph [ ("entry", [], Insn.Jump "nowhere") ] in
  match Ixp.Verify_virtual.check_exn ~pass:"isel" g with
  | () -> Alcotest.fail "expected a verification failure"
  | exception Diag.Compile_error d ->
      checkb "names the pass" true
        (contains d.Diag.message "after pass 'isel'")

(* ---------------- physical checker violation classes ---------------- *)

let reg b n = Reg.make b n

let pblock insns =
  let g = FG.create () in
  ignore (FG.add_block g ~label:"entry" ~insns ~term:Insn.Halt);
  g

let violations insns = List.length (Ixp.Checker.check (pblock insns))

let test_checker_bank_group_clash () =
  checkb "A+A operands rejected" true
    (violations
       [
         Insn.Alu
           { dst = reg Bank.B 0; op = Insn.Add; x = reg Bank.A 0;
             y = Insn.Reg (reg Bank.A 1) };
       ]
    > 0)

let test_checker_non_adjacent_aggregate () =
  checkb "gap in aggregate rejected" true
    (violations
       [
         Insn.Read
           { space = Insn.Sram; dsts = [| reg Bank.L 0; reg Bank.L 2 |];
             addr = lit_addr 0 };
       ]
    > 0)

let test_checker_illegal_move () =
  (* the SRAM write-transfer bank cannot feed the ALU, so S -> A has no
     datapath *)
  checkb "S->A move rejected" true
    (violations [ Insn.Move { dst = reg Bank.A 0; src = reg Bank.S 0 } ] > 0);
  checkb "A->S move accepted" true
    (violations [ Insn.Move { dst = reg Bank.S 0; src = reg Bank.A 0 } ] = 0)

(* ---------------- driver integration ---------------- *)

let test_driver_verifies_each_pass () =
  (* front_end with verify_each on must accept a well-formed program... *)
  let src =
    {|
fun main () : word {
  let (a, b) = sram(100);
  sram(200) <- (a + 1, b);
  a + b
}
|}
  in
  let front =
    Regalloc.Driver.front_end ~verify_each:true ~file:"t.nova" src
  in
  checkb "graph produced" true
    (Ixp.Flowgraph.num_blocks front.Regalloc.Driver.f_graph > 0)

let suites =
  [
    ( "verify.cps",
      [
        Alcotest.test_case "accepts pipeline output" `Quick
          test_accepts_pipeline_output;
        Alcotest.test_case "duplicate binder" `Quick test_duplicate_binder;
        Alcotest.test_case "use out of scope" `Quick test_use_out_of_scope;
        Alcotest.test_case "prim arity" `Quick test_prim_arity;
        Alcotest.test_case "illegal sdram width" `Quick
          test_illegal_sdram_width;
        Alcotest.test_case "clone before ssu" `Quick test_clone_before_ssu;
        Alcotest.test_case "misplaced clone" `Quick test_misplaced_clone;
        Alcotest.test_case "second write-side use" `Quick
          test_second_write_side_use;
        Alcotest.test_case "store plus other use" `Quick
          test_write_then_read_use;
        Alcotest.test_case "func survives deproc" `Quick
          test_func_survives_deproc;
        Alcotest.test_case "unknown app target" `Quick
          test_unknown_app_target_post_deproc;
        Alcotest.test_case "check_exn names pass" `Quick
          test_check_exn_names_pass;
      ] );
    ( "verify.differential",
      [
        Alcotest.test_case "accepts equal" `Quick
          test_differential_accepts_equal;
        Alcotest.test_case "catches result change" `Quick
          test_differential_catches_result_change;
        Alcotest.test_case "catches tfifo change" `Quick
          test_differential_catches_tfifo_change;
        Alcotest.test_case "exn names pass" `Quick test_differential_exn_raises;
      ] );
    ( "verify.virtual",
      [
        Alcotest.test_case "accepts legal" `Quick test_virtual_accepts_legal;
        Alcotest.test_case "undefined use" `Quick
          test_virtual_catches_undefined_use;
        Alcotest.test_case "one-sided join def" `Quick
          test_virtual_catches_join_path;
        Alcotest.test_case "bad widths" `Quick test_virtual_catches_bad_widths;
        Alcotest.test_case "duplicate members" `Quick
          test_virtual_catches_duplicate_members;
        Alcotest.test_case "allocator insns" `Quick
          test_virtual_rejects_allocator_insns;
        Alcotest.test_case "unknown target" `Quick
          test_virtual_catches_unknown_target;
        Alcotest.test_case "exn names pass" `Quick test_virtual_exn_names_pass;
      ] );
    ( "verify.checker",
      [
        Alcotest.test_case "bank-group clash" `Quick
          test_checker_bank_group_clash;
        Alcotest.test_case "non-adjacent aggregate" `Quick
          test_checker_non_adjacent_aggregate;
        Alcotest.test_case "illegal move" `Quick test_checker_illegal_move;
      ] );
    ( "verify.driver",
      [
        Alcotest.test_case "verify-each front end" `Quick
          test_driver_verifies_each_pass;
      ] );
  ]
