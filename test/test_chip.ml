(* Tests for the chip-level subsystem: the synthetic packet generator,
   the memory-bus arbiter, and the multi-engine Chip run loop. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- packet generator ---------------- *)

let gen_config ?(profile = Ixp.Pktgen.Fixed 64) ?(offered = 1.0) ?(seed = 7)
    ?(count = 100) ?(ports = 1) () =
  {
    Ixp.Pktgen.default_config with
    Ixp.Pktgen.profile;
    offered_mpps = offered;
    seed;
    count;
    ports;
  }

let test_pktgen_determinism () =
  let trace cfg =
    List.map
      (fun (p : Ixp.Pktgen.packet) ->
        (p.Ixp.Pktgen.seq, p.Ixp.Pktgen.port, p.Ixp.Pktgen.arrival,
         p.Ixp.Pktgen.size, Array.to_list p.Ixp.Pktgen.payload))
      (Ixp.Pktgen.trace cfg)
  in
  let cfg = gen_config ~profile:Ixp.Pktgen.Imix ~ports:4 () in
  checkb "same seed, identical trace" true (trace cfg = trace cfg);
  checkb "different seed, different trace" true
    (trace cfg <> trace { cfg with Ixp.Pktgen.seed = 8 })

let test_pktgen_profiles () =
  let sizes cfg =
    List.map (fun (p : Ixp.Pktgen.packet) -> p.Ixp.Pktgen.size)
      (Ixp.Pktgen.trace cfg)
  in
  checkb "fixed profile is fixed" true
    (List.for_all (( = ) 64) (sizes (gen_config ())));
  checkb "imix draws from the three classes" true
    (List.for_all
       (fun s -> s = 64 || s = 576 || s = 1504)
       (sizes (gen_config ~profile:Ixp.Pktgen.Imix ())));
  (* fixed interarrival: 1 Mpps at 233 MHz is one packet per 233 cycles *)
  let arrivals =
    List.map (fun (p : Ixp.Pktgen.packet) -> p.Ixp.Pktgen.arrival)
      (Ixp.Pktgen.trace (gen_config ~count:10 ()))
  in
  (match arrivals with
  | a0 :: a1 :: _ -> checkb "1 Mpps spacing" true (a1 - a0 = 233)
  | _ -> Alcotest.fail "trace too short");
  (* saturation: everything arrives at cycle 0 *)
  checkb "saturation arrivals at 0" true
    (List.for_all (( = ) 0)
       (List.map (fun (p : Ixp.Pktgen.packet) -> p.Ixp.Pktgen.arrival)
          (Ixp.Pktgen.trace (gen_config ~offered:0. ()))))

(* ---------------- bus arbiter ---------------- *)

let test_bus_arbiter () =
  let bus = Ixp.Memory.bus_create ~sram_occupancy:5 () in
  (* an uncontended request sees the unloaded latency *)
  checki "first request unstalled" 20
    (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:0 ~latency:20);
  (* a second request in the same cycle queues behind the first *)
  checki "second request stalls by the occupancy" 25
    (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:0 ~latency:20);
  (* a later request, after the channel drained, is unstalled again *)
  checki "request after drain" 20
    (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:100 ~latency:20);
  (* channels are independent *)
  checki "scratch channel independent" 12
    (Ixp.Memory.bus_request bus Ixp.Insn.Scratch ~now:0 ~latency:12);
  let stats = Ixp.Memory.bus_stats bus in
  let sram = List.assoc "sram" stats in
  checki "sram request count" 3 sram.Ixp.Memory.chan_requests;
  checki "sram stall cycles" 5 sram.Ixp.Memory.chan_stall

let test_bus_channel_stats () =
  let bus = Ixp.Memory.bus_create ~sram_occupancy:5 () in
  (* two same-cycle requests: the second waits the occupancy of the
     first, and busy accumulates one occupancy per request *)
  checki "first" 20 (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:0 ~latency:20);
  checki "second queues" 25
    (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:0 ~latency:20);
  let stats = Ixp.Memory.bus_stats bus in
  let sram = List.assoc "sram" stats in
  checki "requests" 2 sram.Ixp.Memory.chan_requests;
  checki "busy = 2 occupancies" 10 sram.Ixp.Memory.chan_busy;
  checki "stall = 1 occupancy" 5 sram.Ixp.Memory.chan_stall;
  (* every channel is reported, untouched ones as zeros *)
  let names = List.map fst stats in
  List.iter
    (fun ch -> checkb ("stats has " ^ ch) true (List.mem ch names))
    [ "sram"; "sdram"; "scratch"; "fifo" ];
  let sdram = List.assoc "sdram" stats in
  checki "untouched channel zero requests" 0 sdram.Ixp.Memory.chan_requests;
  checki "untouched channel zero busy" 0 sdram.Ixp.Memory.chan_busy

(* ---------------- chip run loop ---------------- *)

(* A small idempotent kernel: reads SRAM, bumps a scratch counter.  It
   does not depend on the packet contents, so every invocation costs the
   same number of cycles. *)
let program =
  {|
fun main () : word {
  let x = sram(64, 1);
  let c = scratch(256, 1);
  scratch(256) <- c + 1;
  x + 1
}
|}

let compiled =
  lazy (Regalloc.Driver.compile ~file:"chip_test.nova" program)

let run_chip ?(engines = 2) ?(threads = 4) ?(contention = true)
    ?(rx_capacity = 32) ?(offered = 1.0) ?(count = 60) ?(seed = 7) () =
  let c = Lazy.force compiled in
  let config =
    {
      Ixp.Chip.default_config with
      Ixp.Chip.engines;
      threads;
      contention;
      rx_capacity;
    }
  in
  let chip = Ixp.Chip.create ~config c.Regalloc.Driver.physical in
  let gen = Ixp.Pktgen.create (gen_config ~offered ~count ~seed ()) in
  Ixp.Chip.run chip gen

let report_key (r : Ixp.Chip.report) =
  ( r.Ixp.Chip.cycles,
    r.Ixp.Chip.generated,
    r.Ixp.Chip.completed,
    Array.to_list r.Ixp.Chip.rx_dropped,
    Array.to_list r.Ixp.Chip.engine_busy,
    Array.to_list r.Ixp.Chip.latencies )

let test_chip_determinism () =
  let a = run_chip () and b = run_chip () in
  checkb "same seed, bit-identical report" true (report_key a = report_key b);
  (* the kernel is packet-independent and Fixed-profile arrivals do not
     depend on the seed, so vary the load instead: saturation queues
     packets and queueing shows up in the latencies *)
  let c = run_chip ~offered:0. () in
  checkb "saturation changes the latencies" true
    (a.Ixp.Chip.latencies <> c.Ixp.Chip.latencies)

let test_chip_overload_accounting () =
  (* one slow context, tiny RX ring, saturation arrivals: most packets
     must be dropped, and every generated packet is accounted for *)
  let r =
    run_chip ~engines:1 ~threads:1 ~rx_capacity:4 ~offered:0. ~count:50 ()
  in
  checki "all generated" 50 r.Ixp.Chip.generated;
  checkb "overload drops packets" true (Ixp.Chip.dropped r > 0);
  checki "completed + dropped = generated" r.Ixp.Chip.generated
    (r.Ixp.Chip.completed + Ixp.Chip.dropped r);
  checkb "drop rate matches" true
    (abs_float
       (Ixp.Chip.drop_rate r
       -. (float_of_int (Ixp.Chip.dropped r) /. 50.))
    < 1e-9)

let test_chip_no_drops_when_sustainable () =
  (* offered load far below capacity: everything completes *)
  let r = run_chip ~engines:2 ~offered:0.05 ~count:40 () in
  checki "no drops" 0 (Ixp.Chip.dropped r);
  checki "all completed" 40 r.Ixp.Chip.completed

let test_chip_single_engine_matches_simulator () =
  (* with one engine, one context, contention off, and back-to-back
     arrivals, the chip is the single-threaded simulator run [count]
     times: the makespan must be exactly count * per-packet cycles *)
  let c = Lazy.force compiled in
  let sim = Ixp.Simulator.create ~threads:1 c.Regalloc.Driver.physical in
  let per_packet = Ixp.Simulator.run_single sim in
  let count = 10 in
  let r =
    run_chip ~engines:1 ~threads:1 ~contention:false ~offered:0. ~count
      ~rx_capacity:count ()
  in
  checki "chip matches N sequential simulator runs" (count * per_packet)
    r.Ixp.Chip.cycles;
  checki "everything completed" count r.Ixp.Chip.completed;
  (* and with contention enabled the bus can only slow it down *)
  let rc =
    run_chip ~engines:1 ~threads:1 ~contention:true ~offered:0. ~count
      ~rx_capacity:count ()
  in
  checkb "arbiter never speeds a lone engine up" true
    (rc.Ixp.Chip.cycles >= r.Ixp.Chip.cycles)

let test_chip_scaling () =
  (* under saturation, more engines means more throughput *)
  let r1 = run_chip ~engines:1 ~offered:0. ~count:60 () in
  let r6 = run_chip ~engines:6 ~offered:0. ~count:60 () in
  checkb "six engines beat one" true
    (Ixp.Chip.achieved_mpps r6 > Ixp.Chip.achieved_mpps r1)

let test_chip_report_invariants () =
  let r = run_chip ~engines:2 ~threads:2 ~offered:0. ~count:40 () in
  checki "one latency per completed packet" r.Ixp.Chip.completed
    (Array.length r.Ixp.Chip.latencies);
  let sorted = Array.copy r.Ixp.Chip.latencies in
  Array.sort compare sorted;
  checkb "latencies sorted ascending" true (sorted = r.Ixp.Chip.latencies);
  Array.iter
    (fun l -> checkb "latency positive" true (l > 0))
    r.Ixp.Chip.latencies;
  for e = 0 to Array.length r.Ixp.Chip.engine_busy - 1 do
    let u = Ixp.Chip.utilization r e in
    checkb "utilization within [0,1]" true (u >= 0. && u <= 1.)
  done;
  checkb "percentiles ordered" true
    (Ixp.Chip.latency_percentile r 0.50 <= Ixp.Chip.latency_percentile r 0.99);
  (* the report carries the bus channel stats the kernel exercised *)
  let sram = List.assoc "sram" r.Ixp.Chip.bus in
  checkb "kernel hit the sram channel" true (sram.Ixp.Memory.chan_requests > 0);
  checkb "saturated sram channel stalls" true (sram.Ixp.Memory.chan_stall > 0)

let test_chip_traced_run () =
  (* a traced chip run emits per-context occupancy spans and mirrors the
     bus totals into the metrics registry *)
  Support.Metrics.reset ();
  Support.Trace.enable ();
  let r = run_chip ~engines:2 ~threads:2 ~offered:0. ~count:20 () in
  Support.Trace.disable ();
  let totals = Support.Trace.span_totals () in
  checkb "ctx0 spans recorded" true (List.mem_assoc "ctx0" totals);
  (* chip trace events use the 1 cycle = 1 us timebase, so the summed
     context occupancy cannot exceed engines * makespan *)
  let ctx_total =
    List.fold_left
      (fun acc (n, s) ->
        if String.length n >= 3 && String.sub n 0 3 = "ctx" then acc +. s
        else acc)
      0. totals
  in
  checkb "occupancy bounded by engines * makespan" true
    (ctx_total *. 1e6 <= 2. *. float_of_int r.Ixp.Chip.cycles +. 1.);
  let sram_requests =
    Support.Metrics.gauge_value (Support.Metrics.gauge "chip.bus.sram.requests")
  in
  let stats = List.assoc "sram" r.Ixp.Chip.bus in
  checkb "bus gauge mirrors report" true
    (int_of_float sram_requests = stats.Ixp.Memory.chan_requests);
  checkb "completed gauge" true
    (int_of_float (Support.Metrics.gauge_value (Support.Metrics.gauge "chip.completed"))
    = r.Ixp.Chip.completed);
  Support.Trace.reset ()

let suites =
  [
    ( "chip.pktgen",
      [
        Alcotest.test_case "determinism" `Quick test_pktgen_determinism;
        Alcotest.test_case "profiles" `Quick test_pktgen_profiles;
      ] );
    ( "chip.bus",
      [
        Alcotest.test_case "arbiter" `Quick test_bus_arbiter;
        Alcotest.test_case "channel stats" `Quick test_bus_channel_stats;
      ] );
    ( "chip.run",
      [
        Alcotest.test_case "determinism" `Quick test_chip_determinism;
        Alcotest.test_case "overload accounting" `Quick
          test_chip_overload_accounting;
        Alcotest.test_case "sustainable load" `Quick
          test_chip_no_drops_when_sustainable;
        Alcotest.test_case "single-engine equivalence" `Quick
          test_chip_single_engine_matches_simulator;
        Alcotest.test_case "engine scaling" `Quick test_chip_scaling;
        Alcotest.test_case "report invariants" `Quick
          test_chip_report_invariants;
        Alcotest.test_case "traced run" `Quick test_chip_traced_run;
      ] );
  ]
