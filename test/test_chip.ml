(* Tests for the chip-level subsystem: the synthetic packet generator,
   the memory-bus arbiter, and the multi-engine Chip run loop. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---------------- packet generator ---------------- *)

let gen_config ?(profile = Ixp.Pktgen.Fixed 64) ?(offered = 1.0) ?(seed = 7)
    ?(count = 100) ?(ports = 1) () =
  {
    Ixp.Pktgen.default_config with
    Ixp.Pktgen.profile;
    offered_mpps = offered;
    seed;
    count;
    ports;
  }

let test_pktgen_determinism () =
  let trace cfg =
    List.map
      (fun (p : Ixp.Pktgen.packet) ->
        (p.Ixp.Pktgen.seq, p.Ixp.Pktgen.port, p.Ixp.Pktgen.arrival,
         p.Ixp.Pktgen.size, Array.to_list p.Ixp.Pktgen.payload))
      (Ixp.Pktgen.trace cfg)
  in
  let cfg = gen_config ~profile:Ixp.Pktgen.Imix ~ports:4 () in
  checkb "same seed, identical trace" true (trace cfg = trace cfg);
  checkb "different seed, different trace" true
    (trace cfg <> trace { cfg with Ixp.Pktgen.seed = 8 })

let test_pktgen_profiles () =
  let sizes cfg =
    List.map (fun (p : Ixp.Pktgen.packet) -> p.Ixp.Pktgen.size)
      (Ixp.Pktgen.trace cfg)
  in
  checkb "fixed profile is fixed" true
    (List.for_all (( = ) 64) (sizes (gen_config ())));
  checkb "imix draws from the three classes" true
    (List.for_all
       (fun s -> s = 64 || s = 576 || s = 1504)
       (sizes (gen_config ~profile:Ixp.Pktgen.Imix ())));
  (* fixed interarrival: 1 Mpps at 233 MHz is one packet per 233 cycles *)
  let arrivals =
    List.map (fun (p : Ixp.Pktgen.packet) -> p.Ixp.Pktgen.arrival)
      (Ixp.Pktgen.trace (gen_config ~count:10 ()))
  in
  (match arrivals with
  | a0 :: a1 :: _ -> checkb "1 Mpps spacing" true (a1 - a0 = 233)
  | _ -> Alcotest.fail "trace too short");
  (* saturation: everything arrives at cycle 0 *)
  checkb "saturation arrivals at 0" true
    (List.for_all (( = ) 0)
       (List.map (fun (p : Ixp.Pktgen.packet) -> p.Ixp.Pktgen.arrival)
          (Ixp.Pktgen.trace (gen_config ~offered:0. ()))))

(* ---------------- adversarial profiles ---------------- *)

let test_pktgen_profile_strings () =
  (* CLI names round-trip through the parser and printer *)
  List.iter
    (fun s ->
      match Ixp.Pktgen.profile_of_string s with
      | Ok p ->
          (match Ixp.Pktgen.profile_of_string (Ixp.Pktgen.profile_to_string p) with
          | Ok p' -> checkb ("round-trip " ^ s) true (p = p')
          | Error _ -> Alcotest.failf "printer output for %s does not parse" s)
      | Error _ -> Alcotest.failf "profile %s does not parse" s)
    [
      "fixed:64"; "imix"; "imix-path"; "burst:64:8"; "flood"; "flood:40";
      "elephants"; "elephants:512:4:80:576"; "flows:1024:90:200"; "flash:5000";
    ];
  checkb "garbage rejected" true
    (match Ixp.Pktgen.profile_of_string "nope" with
    | Error _ -> true
    | Ok _ -> false)

let flow_counts cfg =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (p : Ixp.Pktgen.packet) ->
      let f = p.Ixp.Pktgen.flow in
      Hashtbl.replace tbl f (1 + Option.value ~default:0 (Hashtbl.find_opt tbl f)))
    (Ixp.Pktgen.trace cfg);
  tbl

let test_pktgen_flood () =
  (* a SYN flood draws a fresh flow id per packet: no reuse, tiny and
     uniform packet size *)
  let cfg =
    gen_config ~profile:(Ixp.Pktgen.Syn_flood { size = 40 }) ~count:300 ()
  in
  let counts = flow_counts cfg in
  checki "every packet a distinct flow" 300 (Hashtbl.length counts);
  checkb "all 40-byte" true
    (List.for_all
       (fun (p : Ixp.Pktgen.packet) -> p.Ixp.Pktgen.size = 40)
       (Ixp.Pktgen.trace cfg))

let test_pktgen_elephants () =
  (* 4 heavy flows carry 80% of the traffic: the top-4 flow counts must
     clearly dominate the other 508 *)
  let cfg =
    gen_config
      ~profile:
        (Ixp.Pktgen.Elephants { flows = 512; heavy = 4; heavy_pct = 80; size = 576 })
      ~count:500 ()
  in
  let counts = flow_counts cfg in
  let sorted =
    List.sort (fun a b -> compare b a)
      (Hashtbl.fold (fun _ c acc -> c :: acc) counts [])
  in
  let top4 =
    match sorted with a :: b :: c :: d :: _ -> a + b + c + d | _ -> 0
  in
  checkb
    (Printf.sprintf "top-4 flows carry most packets (%d/500)" top4)
    true
    (top4 >= 300);
  checkb "but not everything" true (Hashtbl.length counts > 8)

let test_pktgen_zipf_flows () =
  (* Zipf user population: heavily skewed but many distinct flows *)
  let cfg =
    gen_config
      ~profile:(Ixp.Pktgen.Flows { users = 1024; alpha_pct = 110; size = 200 })
      ~count:500 ()
  in
  let counts = flow_counts cfg in
  let n = Hashtbl.length counts in
  let max_c = Hashtbl.fold (fun _ c acc -> max c acc) counts 0 in
  checkb (Printf.sprintf "many distinct flows (%d)" n) true (n > 50);
  checkb
    (Printf.sprintf "head flow well above uniform share (%d)" max_c)
    true
    (max_c * n > 3 * 500)

let test_pktgen_flash_crowd () =
  (* the flash crowd ramps the arrival rate up: gaps shrink over the
     ramp, by 4x start-to-end *)
  let cfg =
    gen_config
      ~profile:(Ixp.Pktgen.Flash_crowd { size = 64; ramp = 100 })
      ~offered:1.0 ~count:101 ()
  in
  let arrivals =
    List.map (fun (p : Ixp.Pktgen.packet) -> p.Ixp.Pktgen.arrival)
      (Ixp.Pktgen.trace cfg)
  in
  let gaps =
    let rec go = function
      | a :: (b :: _ as tl) -> (b - a) :: go tl
      | _ -> []
    in
    go arrivals
  in
  let first = List.nth gaps 0 and last = List.nth gaps (List.length gaps - 1) in
  checkb
    (Printf.sprintf "gap shrinks over the ramp (%d -> %d)" first last)
    true
    (first > last && first >= 3 * last)

let test_pktgen_imix_path () =
  (* pathological IMIX alternates one max-size packet with a run of
     minimum-size packets in a fixed group pattern *)
  let cfg = gen_config ~profile:Ixp.Pktgen.Imix_path ~count:36 () in
  List.iter
    (fun (p : Ixp.Pktgen.packet) ->
      let expect = if p.Ixp.Pktgen.seq mod 12 = 0 then 1504 else 40 in
      checki "group pattern" expect p.Ixp.Pktgen.size)
    (Ixp.Pktgen.trace cfg)

let test_pktgen_next_into_no_alloc () =
  (* the streaming generator reuses the caller's view: zero minor words
     per packet in steady state *)
  let gen =
    Ixp.Pktgen.create
      (gen_config
         ~profile:
           (Ixp.Pktgen.Elephants { flows = 512; heavy = 4; heavy_pct = 80; size = 576 })
         ~count:2000 ())
  in
  let v = Ixp.Pktgen.make_view () in
  (* warm up *)
  for _ = 1 to 10 do
    ignore (Ixp.Pktgen.next_into gen v)
  done;
  let before = Gc.minor_words () in
  for _ = 1 to 1500 do
    ignore (Ixp.Pktgen.next_into gen v)
  done;
  let words = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "next_into allocates nothing (%.0f words)" words)
    true (words < 64.)

(* ---------------- event wheel ---------------- *)

let test_wheel_order () =
  let w = Ixp.Event_wheel.create ~size:16 4 in
  checkb "empty" true (Ixp.Event_wheel.is_empty w);
  Ixp.Event_wheel.schedule w 2 ~cycle:100;
  Ixp.Event_wheel.schedule w 0 ~cycle:50;
  Ixp.Event_wheel.schedule w 1 ~cycle:50;
  Ixp.Event_wheel.schedule w 3 ~cycle:7;
  checki "next is the min" 7 (Ixp.Event_wheel.next_time w);
  checki "pop min" 3 (Ixp.Event_wheel.pop w);
  (* ties break to the lowest event id *)
  checki "tie to lowest id" 0 (Ixp.Event_wheel.pop w);
  checki "then the other" 1 (Ixp.Event_wheel.pop w);
  checki "then the stragglers" 2 (Ixp.Event_wheel.pop w);
  checkb "empty again" true (Ixp.Event_wheel.is_empty w)

let test_wheel_reschedule_cancel () =
  let w = Ixp.Event_wheel.create ~size:16 4 in
  Ixp.Event_wheel.schedule w 0 ~cycle:10;
  (* rescheduling moves the event *)
  Ixp.Event_wheel.schedule w 0 ~cycle:90;
  Ixp.Event_wheel.schedule w 1 ~cycle:40;
  checki "rescheduled event comes later" 1 (Ixp.Event_wheel.pop w);
  Ixp.Event_wheel.cancel w 0;
  checkb "cancel empties" true (Ixp.Event_wheel.is_empty w);
  (* cancelling an unscheduled event is a no-op *)
  Ixp.Event_wheel.cancel w 0;
  checkb "still empty" true (Ixp.Event_wheel.is_empty w)

let test_wheel_cursor_rollback () =
  (* probing next_time advances the cursor; scheduling an earlier event
     afterwards must roll it back, not lose the event *)
  let w = Ixp.Event_wheel.create ~size:16 4 in
  Ixp.Event_wheel.schedule w 0 ~cycle:60;
  checki "cursor at 60" 60 (Ixp.Event_wheel.next_time w);
  Ixp.Event_wheel.schedule w 1 ~cycle:20;
  checki "earlier event wins" 20 (Ixp.Event_wheel.next_time w);
  checki "pop it" 1 (Ixp.Event_wheel.pop w);
  checki "later event intact" 0 (Ixp.Event_wheel.pop w)

let test_wheel_sparse_jump () =
  (* events far beyond the wheel size (many wraps away): next_time must
     find them without walking the gap one cycle at a time, and rounds
     must disambiguate same-bucket different-lap events *)
  let w = Ixp.Event_wheel.create ~size:16 4 in
  Ixp.Event_wheel.schedule w 0 ~cycle:1_000_003;
  Ixp.Event_wheel.schedule w 1 ~cycle:3;
  (* same bucket as 1_000_003 mod 16?  regardless: earlier lap first *)
  checki "near event first" 3 (Ixp.Event_wheel.next_time w);
  checki "pop near" 1 (Ixp.Event_wheel.pop w);
  checki "distant event found" 1_000_003 (Ixp.Event_wheel.next_time w);
  checki "pop far" 0 (Ixp.Event_wheel.pop w)

(* ---------------- bus arbiter ---------------- *)

let test_bus_arbiter () =
  let bus = Ixp.Memory.bus_create ~sram_occupancy:5 () in
  (* an uncontended request sees the unloaded latency *)
  checki "first request unstalled" 20
    (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:0 ~latency:20);
  (* a second request in the same cycle queues behind the first *)
  checki "second request stalls by the occupancy" 25
    (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:0 ~latency:20);
  (* a later request, after the channel drained, is unstalled again *)
  checki "request after drain" 20
    (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:100 ~latency:20);
  (* channels are independent *)
  checki "scratch channel independent" 12
    (Ixp.Memory.bus_request bus Ixp.Insn.Scratch ~now:0 ~latency:12);
  let stats = Ixp.Memory.bus_stats bus in
  let sram = List.assoc "sram" stats in
  checki "sram request count" 3 sram.Ixp.Memory.chan_requests;
  checki "sram stall cycles" 5 sram.Ixp.Memory.chan_stall

let test_bus_channel_stats () =
  let bus = Ixp.Memory.bus_create ~sram_occupancy:5 () in
  (* two same-cycle requests: the second waits the occupancy of the
     first, and busy accumulates one occupancy per request *)
  checki "first" 20 (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:0 ~latency:20);
  checki "second queues" 25
    (Ixp.Memory.bus_request bus Ixp.Insn.Sram ~now:0 ~latency:20);
  let stats = Ixp.Memory.bus_stats bus in
  let sram = List.assoc "sram" stats in
  checki "requests" 2 sram.Ixp.Memory.chan_requests;
  checki "busy = 2 occupancies" 10 sram.Ixp.Memory.chan_busy;
  checki "stall = 1 occupancy" 5 sram.Ixp.Memory.chan_stall;
  (* every channel is reported, untouched ones as zeros *)
  let names = List.map fst stats in
  List.iter
    (fun ch -> checkb ("stats has " ^ ch) true (List.mem ch names))
    [ "sram"; "sdram"; "scratch"; "fifo" ];
  let sdram = List.assoc "sdram" stats in
  checki "untouched channel zero requests" 0 sdram.Ixp.Memory.chan_requests;
  checki "untouched channel zero busy" 0 sdram.Ixp.Memory.chan_busy

(* ---------------- chip run loop ---------------- *)

(* A small idempotent kernel: reads SRAM, bumps a scratch counter.  It
   does not depend on the packet contents, so every invocation costs the
   same number of cycles. *)
let program =
  {|
fun main () : word {
  let x = sram(64, 1);
  let c = scratch(256, 1);
  scratch(256) <- c + 1;
  x + 1
}
|}

let compiled =
  lazy (Regalloc.Driver.compile ~file:"chip_test.nova" program)

let run_chip ?(engines = 2) ?(threads = 4) ?(contention = true)
    ?(rx_capacity = 32) ?(offered = 1.0) ?(count = 60) ?(seed = 7) () =
  let c = Lazy.force compiled in
  let config =
    {
      Ixp.Chip.default_config with
      Ixp.Chip.engines;
      threads;
      contention;
      rx_capacity;
    }
  in
  let chip = Ixp.Chip.create ~config c.Regalloc.Driver.physical in
  let gen = Ixp.Pktgen.create (gen_config ~offered ~count ~seed ()) in
  Ixp.Chip.run chip gen

let report_key (r : Ixp.Chip.report) =
  ( r.Ixp.Chip.cycles,
    r.Ixp.Chip.generated,
    r.Ixp.Chip.completed,
    Array.to_list r.Ixp.Chip.rx_dropped,
    Array.to_list r.Ixp.Chip.engine_busy,
    Array.to_list r.Ixp.Chip.latencies )

let test_chip_determinism () =
  let a = run_chip () and b = run_chip () in
  checkb "same seed, bit-identical report" true (report_key a = report_key b);
  (* the kernel is packet-independent and Fixed-profile arrivals do not
     depend on the seed, so vary the load instead: saturation queues
     packets and queueing shows up in the latencies *)
  let c = run_chip ~offered:0. () in
  checkb "saturation changes the latencies" true
    (a.Ixp.Chip.latencies <> c.Ixp.Chip.latencies)

let test_chip_overload_accounting () =
  (* one slow context, tiny RX ring, saturation arrivals: most packets
     must be dropped, and every generated packet is accounted for *)
  let r =
    run_chip ~engines:1 ~threads:1 ~rx_capacity:4 ~offered:0. ~count:50 ()
  in
  checki "all generated" 50 r.Ixp.Chip.generated;
  checkb "overload drops packets" true (Ixp.Chip.dropped r > 0);
  checki "completed + dropped = generated" r.Ixp.Chip.generated
    (r.Ixp.Chip.completed + Ixp.Chip.dropped r);
  checkb "drop rate matches" true
    (abs_float
       (Ixp.Chip.drop_rate r
       -. (float_of_int (Ixp.Chip.dropped r) /. 50.))
    < 1e-9)

let test_chip_no_drops_when_sustainable () =
  (* offered load far below capacity: everything completes *)
  let r = run_chip ~engines:2 ~offered:0.05 ~count:40 () in
  checki "no drops" 0 (Ixp.Chip.dropped r);
  checki "all completed" 40 r.Ixp.Chip.completed

let test_chip_single_engine_matches_simulator () =
  (* with one engine, one context, contention off, and back-to-back
     arrivals, the chip is the single-threaded simulator run [count]
     times: the makespan must be exactly count * per-packet cycles *)
  let c = Lazy.force compiled in
  let sim = Ixp.Simulator.create ~threads:1 c.Regalloc.Driver.physical in
  let per_packet = Ixp.Simulator.run_single sim in
  let count = 10 in
  let r =
    run_chip ~engines:1 ~threads:1 ~contention:false ~offered:0. ~count
      ~rx_capacity:count ()
  in
  checki "chip matches N sequential simulator runs" (count * per_packet)
    r.Ixp.Chip.cycles;
  checki "everything completed" count r.Ixp.Chip.completed;
  (* and with contention enabled the bus can only slow it down *)
  let rc =
    run_chip ~engines:1 ~threads:1 ~contention:true ~offered:0. ~count
      ~rx_capacity:count ()
  in
  checkb "arbiter never speeds a lone engine up" true
    (rc.Ixp.Chip.cycles >= r.Ixp.Chip.cycles)

let test_chip_scaling () =
  (* under saturation, more engines means more throughput *)
  let r1 = run_chip ~engines:1 ~offered:0. ~count:60 () in
  let r6 = run_chip ~engines:6 ~offered:0. ~count:60 () in
  checkb "six engines beat one" true
    (Ixp.Chip.achieved_mpps r6 > Ixp.Chip.achieved_mpps r1)

let test_chip_report_invariants () =
  let r = run_chip ~engines:2 ~threads:2 ~offered:0. ~count:40 () in
  checki "one latency per completed packet" r.Ixp.Chip.completed
    (Array.length r.Ixp.Chip.latencies);
  let sorted = Array.copy r.Ixp.Chip.latencies in
  Array.sort compare sorted;
  checkb "latencies sorted ascending" true (sorted = r.Ixp.Chip.latencies);
  Array.iter
    (fun l -> checkb "latency positive" true (l > 0))
    r.Ixp.Chip.latencies;
  for e = 0 to Array.length r.Ixp.Chip.engine_busy - 1 do
    let u = Ixp.Chip.utilization r e in
    checkb "utilization within [0,1]" true (u >= 0. && u <= 1.)
  done;
  checkb "percentiles ordered" true
    (Ixp.Chip.latency_percentile r 0.50 <= Ixp.Chip.latency_percentile r 0.99);
  (* the report carries the bus channel stats the kernel exercised *)
  let sram = List.assoc "sram" r.Ixp.Chip.bus in
  checkb "kernel hit the sram channel" true (sram.Ixp.Memory.chan_requests > 0);
  checkb "saturated sram channel stalls" true (sram.Ixp.Memory.chan_stall > 0)

let test_chip_traced_run () =
  (* a traced chip run emits per-context occupancy spans and mirrors the
     bus totals into the metrics registry *)
  Support.Metrics.reset ();
  Support.Trace.enable ();
  let r = run_chip ~engines:2 ~threads:2 ~offered:0. ~count:20 () in
  Support.Trace.disable ();
  let totals = Support.Trace.span_totals () in
  checkb "ctx0 spans recorded" true (List.mem_assoc "ctx0" totals);
  (* chip trace events use the 1 cycle = 1 us timebase, so the summed
     context occupancy cannot exceed engines * makespan *)
  let ctx_total =
    List.fold_left
      (fun acc (n, s) ->
        if String.length n >= 3 && String.sub n 0 3 = "ctx" then acc +. s
        else acc)
      0. totals
  in
  checkb "occupancy bounded by engines * makespan" true
    (ctx_total *. 1e6 <= 2. *. float_of_int r.Ixp.Chip.cycles +. 1.);
  let sram_requests =
    Support.Metrics.gauge_value (Support.Metrics.gauge "chip.bus.sram.requests")
  in
  let stats = List.assoc "sram" r.Ixp.Chip.bus in
  checkb "bus gauge mirrors report" true
    (int_of_float sram_requests = stats.Ixp.Memory.chan_requests);
  checkb "completed gauge" true
    (int_of_float (Support.Metrics.gauge_value (Support.Metrics.gauge "chip.completed"))
    = r.Ixp.Chip.completed);
  Support.Trace.reset ()

let test_chip_in_flight_invariant () =
  (* drive the loop by hand and check the conservation law at every
     event: received = completed + dropped + on-a-context + queued.
     Overload parameters so the rings overflow and drops participate. *)
  let c = Lazy.force compiled in
  let config =
    {
      Ixp.Chip.default_config with
      Ixp.Chip.engines = 1;
      threads = 2;
      rx_capacity = 4;
    }
  in
  let chip = Ixp.Chip.create ~config c.Regalloc.Driver.physical in
  let gen = Ixp.Pktgen.create (gen_config ~offered:0. ~count:60 ()) in
  Ixp.Chip.prepare chip ~ports:1 ~expected:60;
  let deliver = Ixp.Chip.default_deliver in
  let v = Ixp.Pktgen.make_view () in
  let pending = ref (Ixp.Pktgen.next_into gen v) in
  let saw_in_flight = ref false in
  let check_invariant () =
    let received = Array.fold_left ( + ) 0 chip.Ixp.Chip.rx_received in
    let dropped = Array.fold_left ( + ) 0 chip.Ixp.Chip.rx_dropped in
    let in_flight = Ixp.Chip.in_flight_count chip in
    if in_flight > 0 then saw_in_flight := true;
    checki "received = completed + dropped + in-flight + queued" received
      (chip.Ixp.Chip.completed + dropped + in_flight
      + Ixp.Chip.rx_queued chip)
  in
  while !pending || Ixp.Chip.active chip do
    let t_step = Ixp.Chip.next_time chip in
    let t_arr = if !pending then v.Ixp.Pktgen.v_arrival else Ixp.Chip.no_event in
    if t_arr <= t_step then begin
      Ixp.Chip.offer chip ~deliver ~port:v.Ixp.Pktgen.v_port v;
      pending := Ixp.Pktgen.next_into gen v
    end
    else Ixp.Chip.step chip ~deliver;
    check_invariant ()
  done;
  checkb "the mid-run states actually had packets in flight" true
    !saw_in_flight;
  let r = Ixp.Chip.finish chip in
  checkb "overloaded run dropped packets" true (Ixp.Chip.dropped r > 0);
  checki "final report: nothing left in flight" 0 r.Ixp.Chip.r_in_flight;
  checki "final report: generated fully accounted" r.Ixp.Chip.generated
    (r.Ixp.Chip.completed + Ixp.Chip.dropped r + r.Ixp.Chip.r_in_flight)

let test_chip_report_histogram () =
  (* the report's latency buckets agree with its exact latency list *)
  let r = run_chip ~engines:2 ~offered:0. ~count:40 () in
  checki "bucket mass = completed" r.Ixp.Chip.completed
    (Array.fold_left ( + ) 0 r.Ixp.Chip.lat_buckets);
  let h = Support.Metrics.histogram "test.lat" in
  Support.Metrics.merge_buckets h r.Ixp.Chip.lat_buckets;
  let exact_p99 = Ixp.Chip.latency_percentile r 0.99 in
  let hist_p99 = Support.Metrics.percentile h 0.99 in
  (* histogram percentiles carry <=1/32 relative bucket error *)
  checkb
    (Printf.sprintf "histogram p99 tracks exact p99 (%d vs %d)" hist_p99
       exact_p99)
    true
    (abs (hist_p99 - exact_p99) * 16 <= exact_p99 + 32)

let test_chip_steady_state_no_alloc () =
  (* the heart of the event-engine rewrite: once warmed up, the
     offer/step loop must not allocate minor words at all *)
  let c = Lazy.force compiled in
  let config =
    { Ixp.Chip.default_config with Ixp.Chip.engines = 2; threads = 4 }
  in
  let chip = Ixp.Chip.create ~config c.Regalloc.Driver.physical in
  let count = 3000 in
  let mk () = Ixp.Pktgen.create (gen_config ~offered:1.0 ~count ~ports:2 ()) in
  (* warm up: latency array growth, lazy tables *)
  Ixp.Chip.prepare chip ~ports:2 ~expected:count;
  Ixp.Chip.drive chip ~deliver:Ixp.Chip.default_deliver (mk ());
  (* generator construction and [prepare] may allocate; the event loop
     itself must not (beyond the one packet view it creates) *)
  let gen = mk () in
  Ixp.Chip.prepare chip ~ports:2 ~expected:count;
  let before = Gc.minor_words () in
  Ixp.Chip.drive chip ~deliver:Ixp.Chip.default_deliver gen;
  let words = Gc.minor_words () -. before in
  checkb
    (Printf.sprintf "steady-state drive allocates nothing (%.0f words for %d \
                     packets)"
       words count)
    true (words < 64.)

let suites =
  [
    ( "chip.pktgen",
      [
        Alcotest.test_case "determinism" `Quick test_pktgen_determinism;
        Alcotest.test_case "profiles" `Quick test_pktgen_profiles;
        Alcotest.test_case "profile strings" `Quick test_pktgen_profile_strings;
        Alcotest.test_case "syn flood" `Quick test_pktgen_flood;
        Alcotest.test_case "elephant flows" `Quick test_pktgen_elephants;
        Alcotest.test_case "zipf flows" `Quick test_pktgen_zipf_flows;
        Alcotest.test_case "flash crowd" `Quick test_pktgen_flash_crowd;
        Alcotest.test_case "pathological imix" `Quick test_pktgen_imix_path;
        Alcotest.test_case "streaming no-alloc" `Quick
          test_pktgen_next_into_no_alloc;
      ] );
    ( "chip.wheel",
      [
        Alcotest.test_case "min order" `Quick test_wheel_order;
        Alcotest.test_case "reschedule and cancel" `Quick
          test_wheel_reschedule_cancel;
        Alcotest.test_case "cursor rollback" `Quick test_wheel_cursor_rollback;
        Alcotest.test_case "sparse jump" `Quick test_wheel_sparse_jump;
      ] );
    ( "chip.bus",
      [
        Alcotest.test_case "arbiter" `Quick test_bus_arbiter;
        Alcotest.test_case "channel stats" `Quick test_bus_channel_stats;
      ] );
    ( "chip.run",
      [
        Alcotest.test_case "determinism" `Quick test_chip_determinism;
        Alcotest.test_case "overload accounting" `Quick
          test_chip_overload_accounting;
        Alcotest.test_case "sustainable load" `Quick
          test_chip_no_drops_when_sustainable;
        Alcotest.test_case "single-engine equivalence" `Quick
          test_chip_single_engine_matches_simulator;
        Alcotest.test_case "engine scaling" `Quick test_chip_scaling;
        Alcotest.test_case "report invariants" `Quick
          test_chip_report_invariants;
        Alcotest.test_case "in-flight conservation" `Quick
          test_chip_in_flight_invariant;
        Alcotest.test_case "latency histogram" `Quick
          test_chip_report_histogram;
        Alcotest.test_case "steady-state zero-alloc" `Quick
          test_chip_steady_state_no_alloc;
        Alcotest.test_case "traced run" `Quick test_chip_traced_run;
      ] );
  ]
