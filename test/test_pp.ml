(* Round-trip tests for the Nova pretty-printer: parse -> print -> re-parse
   must reproduce the AST modulo source locations, and the re-parsed program
   must still typecheck.  Exercised over every workload source and the
   examples, i.e. every nontrivial Nova program in the tree. *)

let roundtrip ~name source =
  let p1 = Nova.Parser.parse_string ~file:name source in
  let printed = Nova.Pp.program_to_string p1 in
  let p2 =
    try Nova.Parser.parse_string ~file:(name ^ "<printed>") printed
    with Support.Diag.Compile_error d ->
      Alcotest.failf "printed %s does not re-parse: %s\n%s" name
        (Support.Diag.to_string d) printed
  in
  if not (Nova.Pp.equal_program p1 p2) then
    Alcotest.failf "round-trip mismatch for %s\n--- printed ---\n%s" name
      printed;
  (* printed output must still typecheck *)
  try ignore (Nova.Typecheck.check_program ~entry:"main" p2)
  with Support.Diag.Compile_error d ->
    Alcotest.failf "printed %s does not typecheck: %s\n%s" name
      (Support.Diag.to_string d) printed

let workload_sources () =
  [
    ("aes", Workloads.Aes.source);
    ("kasumi", Workloads.Kasumi.source);
    ("nat", Workloads.Nat.source);
    ("lpm", Workloads.Lpm.source);
    ("firewall", Workloads.Firewall.source);
    ("csum", Workloads.Csum.source);
    ("qos", Workloads.Qos.source);
  ]

let test_roundtrip_workloads () =
  List.iter (fun (name, src) -> roundtrip ~name src) (workload_sources ())

let test_roundtrip_idempotent () =
  (* printing is a fixpoint: print (parse (print p)) = print p *)
  List.iter
    (fun (name, src) ->
      let p1 = Nova.Parser.parse_string ~file:name src in
      let s1 = Nova.Pp.program_to_string p1 in
      let p2 = Nova.Parser.parse_string ~file:name s1 in
      let s2 = Nova.Pp.program_to_string p2 in
      Alcotest.(check string) (name ^ " print idempotent") s1 s2)
    (workload_sources ())

let test_roundtrip_constructs () =
  (* one source exercising every corner of the grammar the workloads miss *)
  let src =
    {|
layout hdr = {a : 8, b : 8, rest : overlay {x : 16 | y : {hi : 8, lo : 8}}, c : 32};
layout two = hdr ## {16};

const BASE = 0x100 + 2 * 3;

fun helper (x : word, y) : word {
  let t = (x, y, 1);
  let (p, q, r) = t;
  p + q * r - -y + ~x & 0xff | 1 ^ 2
}

fun named_params [a, b : word] : word {
  a - b
}

fun main () : word {
  var i : word = 0;
  var acc = 0;
  while (i <u 4) {
    acc := acc + sram(BASE + (i << 2), 1);
    i := i + 1;
  };
  let h = unpack[hdr](sram(0x10, 2));
  let packed_h = pack[hdr] [a = h.a, b = h.b, rest = [x = h.rest.x], c = h.c];
  let (w0, w1) = packed_h;
  sram(0x20) <- w0;
  scratch(0x30) <- w1;
  sdram(0x40) <- (1, 2);
  let r = [lo = 1, hi = 2];
  let v = if (h.a == 0 || acc >=u 10) { r.lo } else { r.hi };
  let s = helper(v, named_params[a = 2, b = 1]);
  let hashed = hash(s ^ h.rest.x);
  try {
    if (hashed >= 0x80) {
      raise Overflow [code = hashed, extra = 1];
    }
    ()
  } handle Overflow [code, extra : word] {
    sram(0x24) <- code + extra;
  }
  acc + s
}
|}
  in
  roundtrip ~name:"constructs" src

let suites =
  [
    ( "pp",
      [
        Alcotest.test_case "roundtrip workloads" `Quick
          test_roundtrip_workloads;
        Alcotest.test_case "print idempotent" `Quick test_roundtrip_idempotent;
        Alcotest.test_case "roundtrip constructs" `Quick
          test_roundtrip_constructs;
      ] );
  ]
