(* Tests for the support library: idents, bitsets, union-find, vec. *)

open Support

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_ident_freshness () =
  let a = Ident.fresh "x" and b = Ident.fresh "x" in
  checkb "distinct stamps" false (Ident.equal a b);
  checkb "same base" true (Ident.base a = Ident.base b);
  let c = Ident.clone a in
  checkb "clone distinct" false (Ident.equal a c)

let test_ident_collections () =
  let xs = List.init 100 (fun i -> Ident.fresh (Printf.sprintf "v%d" i)) in
  let set = Ident.Set.of_list xs in
  checki "set size" 100 (Ident.Set.cardinal set);
  let map =
    List.fold_left (fun m (i, x) -> Ident.Map.add x i m) Ident.Map.empty
      (List.mapi (fun i x -> (i, x)) xs)
  in
  checki "map lookup" 42 (Ident.Map.find (List.nth xs 42) map)

let test_bitset () =
  let b = Bitset.create 130 in
  Bitset.add b 0;
  Bitset.add b 64;
  Bitset.add b 129;
  checkb "mem 0" true (Bitset.mem b 0);
  checkb "mem 64" true (Bitset.mem b 64);
  checkb "mem 129" true (Bitset.mem b 129);
  checkb "not mem 1" false (Bitset.mem b 1);
  checki "cardinal" 3 (Bitset.cardinal b);
  Bitset.remove b 64;
  checkb "removed" false (Bitset.mem b 64);
  let c = Bitset.create 130 in
  Bitset.add c 5;
  checkb "union changes" true (Bitset.union_into ~dst:b ~src:c);
  checkb "union no change" false (Bitset.union_into ~dst:b ~src:c);
  checkb "after union" true (Bitset.mem b 5)

let test_union_find () =
  let uf = Union_find.create 10 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 5 6);
  checkb "0~2" true (Union_find.equiv uf 0 2);
  checkb "5~6" true (Union_find.equiv uf 5 6);
  checkb "0!~5" false (Union_find.equiv uf 0 5);
  checki "classes" 7 (List.length (Union_find.classes uf))

let test_vec () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  checki "length" 100 (Vec.length v);
  checki "get" 57 (Vec.get v 57);
  checki "pop" 99 (Vec.pop v);
  checki "after pop" 99 (Vec.length v);
  Vec.set v 0 1000;
  checki "set" 1000 (Vec.get v 0);
  checki "fold" (1000 + (98 * 99 / 2) - 0) (Vec.fold_left ( + ) 0 v);
  let l = Vec.to_list v in
  checki "to_list length" 99 (List.length l)
let bitset_qcheck =
  QCheck.Test.make ~name:"bitset models a set of small ints" ~count:200
    QCheck.(small_list (int_range 0 63))
    (fun xs ->
      let b = Bitset.create 64 in
      List.iter (Bitset.add b) xs;
      let expected = List.sort_uniq compare xs in
      Bitset.elements b = expected)

(* ---------------- monotonic clock ---------------- *)

let test_monotonic () =
  let a = Monotonic.now_ns () in
  let b = Monotonic.now_ns () in
  checkb "ns non-decreasing" true (Int64.compare b a >= 0);
  let s0 = Monotonic.now_s () in
  let s1 = Monotonic.now_s () in
  checkb "s non-decreasing" true (s1 >= s0);
  checkb "positive" true (Int64.compare a 0L > 0)

(* ---------------- trace ---------------- *)

(* Find every complete-span event in exported JSON as (name, ts, dur). *)
let spans_of_json json =
  let v =
    match Json.parse json with
    | Ok v -> v
    | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg
  in
  let events =
    match Option.bind (Json.member "traceEvents" v) Json.to_list with
    | Some es -> es
    | None -> Alcotest.fail "no traceEvents array"
  in
  List.filter_map
    (fun e ->
      let str k = Option.bind (Json.member k e) Json.to_string in
      let num k = Option.bind (Json.member k e) Json.to_float in
      match (str "ph", str "name", num "ts", num "dur") with
      | Some "X", Some name, Some ts, Some dur -> Some (name, ts, dur)
      | _ -> None)
    events

let test_trace_spans_balance () =
  Trace.enable ();
  Trace.with_span "outer" (fun () ->
      Trace.with_span "inner" ~args:[ ("k", Trace.Int 3) ] (fun () -> ());
      Trace.instant "tick";
      Trace.counter "c" [ ("n", 1.0) ]);
  Trace.disable ();
  let spans = spans_of_json (Trace.to_json ()) in
  checki "two complete spans" 2 (List.length spans);
  let name, outer_ts, outer_dur =
    List.find (fun (n, _, _) -> n = "outer") spans
  in
  let _, inner_ts, inner_dur =
    List.find (fun (n, _, _) -> n = "inner") spans
  in
  checkb "outer named" true (name = "outer");
  (* proper nesting: inner is contained in outer *)
  checkb "inner starts after outer" true (inner_ts >= outer_ts);
  checkb "inner ends before outer" true
    (inner_ts +. inner_dur <= outer_ts +. outer_dur +. 1e-6);
  let totals = Trace.span_totals () in
  checkb "totals has outer" true (List.mem_assoc "outer" totals);
  checkb "totals has inner" true (List.mem_assoc "inner" totals);
  Trace.reset ()

let test_trace_exception_closes_span () =
  Trace.enable ();
  (try Trace.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  Trace.disable ();
  let spans = spans_of_json (Trace.to_json ()) in
  checkb "span recorded despite raise" true
    (List.exists (fun (n, _, _) -> n = "boom") spans);
  Trace.reset ()

let test_trace_escaping () =
  Trace.enable ();
  Trace.with_span "quote\"back\\slash\nnewline"
    ~args:[ ("s", Trace.Str "tab\there") ]
    (fun () -> ());
  Trace.disable ();
  let json = Trace.to_json () in
  (match Json.parse json with
  | Ok _ -> ()
  | Error msg -> Alcotest.failf "escaped JSON does not parse: %s" msg);
  let spans = spans_of_json json in
  checkb "escaped name round-trips" true
    (List.exists (fun (n, _, _) -> n = "quote\"back\\slash\nnewline") spans);
  Trace.reset ()

let test_trace_disabled_no_alloc () =
  Trace.reset ();
  checkb "disabled" false (Trace.is_enabled ());
  (* warm up so the closure itself is not counted *)
  let f () = 7 in
  ignore (Trace.with_span "off" f);
  let before = Gc.minor_words () in
  for _ = 1 to 1000 do
    ignore (Trace.with_span "off" f)
  done;
  let words = Gc.minor_words () -. before in
  (* a disabled span must be a bare bool test: no per-call allocation *)
  checkb
    (Printf.sprintf "no allocation when disabled (%.0f words)" words)
    true (words < 64.);
  checki "no events recorded" 0 (Trace.num_events ())

(* ---------------- metrics ---------------- *)

let test_metrics () =
  Metrics.reset ();
  let c = Metrics.counter "t.count" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 3;
  checki "counter" 5 (Metrics.counter_value c);
  checkb "same handle" true (c == Metrics.counter "t.count");
  let g = Metrics.gauge "t.gauge" in
  Metrics.set g 2.5;
  checkb "gauge" true (Metrics.gauge_value g = 2.5);
  let h = Metrics.histogram "t.hist" in
  Metrics.observe h 1.0;
  Metrics.observe h 3.0;
  let contains ~sub s =
    let ls = String.length s and lsub = String.length sub in
    let rec go i = i + lsub <= ls && (String.sub s i lsub = sub || go (i + 1)) in
    go 0
  in
  let dump = Metrics.dump () in
  checkb "dump has counter" true (contains ~sub:"t.count" dump);
  checkb "dump has histogram stats" true (contains ~sub:"count=2" dump);
  checkb "kind clash rejected" true
    (try
       ignore (Metrics.gauge "t.count");
       false
     with Invalid_argument _ -> true);
  Metrics.reset ();
  checki "reset zeroes counter in place" 0 (Metrics.counter_value c)

(* Histogram percentiles on a known distribution: 1000 observations of
   value 10, 9 of 1000, 1 of 50000.  Nearest-rank: p50/p90/p99 land in
   the bulk, p99.9 on the 1000s, and only the top observation sits above
   tail_count's cutoff.  Values up to 63 are recorded exactly; larger
   ones within the bucket's 1/32 relative-error envelope. *)
let test_metrics_percentiles () =
  Metrics.reset ();
  let h = Metrics.histogram "t.tail" in
  for _ = 1 to 1000 do
    Metrics.observe h 10.
  done;
  for _ = 1 to 9 do
    Metrics.observe h 1000.
  done;
  Metrics.observe h 50000.;
  checki "p50 exact (value < 64)" 10 (Metrics.percentile h 0.50);
  checki "p90 exact" 10 (Metrics.percentile h 0.90);
  checki "p99 exact" 10 (Metrics.percentile h 0.99);
  let p999 = Metrics.percentile h 0.999 in
  checkb
    (Printf.sprintf "p99.9 within bucket error of 1000 (got %d)" p999)
    true
    (abs (p999 - 1000) * 32 <= 1000);
  let p1000 = Metrics.percentile h 1.0 in
  checkb
    (Printf.sprintf "p100 within bucket error of 50000 (got %d)" p1000)
    true
    (abs (p1000 - 50000) * 32 <= 50000);
  checki "tail above 100" 10 (Metrics.tail_count h 100);
  checki "tail above 2000" 1 (Metrics.tail_count h 2000);
  checki "tail above 100000" 0 (Metrics.tail_count h 100000);
  (* merging external bucket counts is equivalent to observing *)
  let h2 = Metrics.histogram "t.tail2" in
  let buckets = Array.make 4096 0 in
  buckets.(Metrics.bucket_index 10) <- 1000;
  buckets.(Metrics.bucket_index 1000) <- 9;
  buckets.(Metrics.bucket_index 50000) <- 1;
  Metrics.merge_buckets h2 buckets;
  checki "merged p50" (Metrics.percentile h 0.50) (Metrics.percentile h2 0.50);
  checki "merged p99.9" p999 (Metrics.percentile h2 0.999);
  checki "merged tail" 10 (Metrics.tail_count h2 100);
  (* bucket_value is the inverse of bucket_index up to bucket width *)
  List.iter
    (fun v ->
      let r = Metrics.bucket_value (Metrics.bucket_index v) in
      checkb
        (Printf.sprintf "bucket round-trip %d -> %d" v r)
        true
        (abs (r - v) * 32 <= max v 32))
    [ 0; 1; 63; 64; 100; 1023; 65536; 1_000_000 ];
  Metrics.reset ()

(* Two domains hammer the same instruments concurrently: with atomic
   counters and the mutexed registry/histograms, no increment or
   observation may be lost, and racing registrations of one name must
   resolve to a single handle. *)
let test_metrics_domain_safety () =
  Metrics.reset ();
  let n = 100_000 in
  let worker () =
    (* resolve handles inside the domain so registration itself races *)
    let c = Metrics.counter "t.par.count" in
    let g = Metrics.gauge "t.par.gauge" in
    let h = Metrics.histogram "t.par.hist" in
    for i = 1 to n do
      Metrics.incr c;
      Metrics.add c 2;
      Metrics.set g (float_of_int i);
      if i land 1023 = 0 then Metrics.observe h (float_of_int (i land 63))
    done
  in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  checki "no lost counter increments" (2 * 3 * n)
    (Metrics.counter_value (Metrics.counter "t.par.count"));
  checki "no lost histogram observations"
    (2 * (n / 1024))
    (Metrics.histogram_count (Metrics.histogram "t.par.hist"));
  checkb "gauge holds one of the written values" true
    (let v = Metrics.gauge_value (Metrics.gauge "t.par.gauge") in
     v >= 1. && v <= float_of_int n);
  Metrics.reset ()

(* Same shape for the trace buffer: concurrent instants from two domains
   must all land in the (mutexed) event vector. *)
let test_trace_domain_safety () =
  Trace.reset ();
  Trace.enable ();
  let n = 10_000 in
  let worker tid () =
    for _ = 1 to n do
      Trace.instant ~tid "tick"
    done
  in
  let d1 = Domain.spawn (worker 1) and d2 = Domain.spawn (worker 2) in
  Domain.join d1;
  Domain.join d2;
  Trace.disable ();
  checki "no lost events" (2 * n) (Trace.num_events ());
  Trace.reset ()

(* ---------------- json parser ---------------- *)

let test_json_parser () =
  let ok s = match Json.parse s with Ok v -> v | Error m -> Alcotest.fail m in
  let bad s =
    match Json.parse s with Ok _ -> Alcotest.failf "accepted %S" s | Error _ -> ()
  in
  (match
     ok {| {"a": [1, 2.5, -3e2], "b": "x\nA", "c": true, "d": null} |}
   with
  | Json.Obj fields ->
      checkb "member a" true
        (match List.assoc "a" fields with
        | Json.Arr [ Json.Num 1.; Json.Num 2.5; Json.Num -300. ] -> true
        | _ -> false);
      checkb "string escape" true (List.assoc "b" fields = Json.Str "x\nA");
      checkb "bool" true (List.assoc "c" fields = Json.Bool true);
      checkb "null" true (List.assoc "d" fields = Json.Null)
  | _ -> Alcotest.fail "expected object");
  let unicode = Printf.sprintf {| {"u": "%su0041%su00e9"} |} "\\" "\\" in
  checkb "unicode escape" true
    (Option.bind (Json.member "u" (ok unicode)) Json.to_string
    = Some "A\xc3\xa9");
  checkb "to_int" true
    (Option.bind (Json.member "n" (ok {| {"n": 42} |})) Json.to_int = Some 42);
  bad "{";
  bad "[1,]";
  bad "{\"a\" 1}";
  bad "tru";
  bad "1 2"

let suites =
  [
    ( "support",
      [
        Alcotest.test_case "ident freshness" `Quick test_ident_freshness;
        Alcotest.test_case "ident collections" `Quick test_ident_collections;
        Alcotest.test_case "bitset" `Quick test_bitset;
        Alcotest.test_case "union find" `Quick test_union_find;
        Alcotest.test_case "vec" `Quick test_vec;
        QCheck_alcotest.to_alcotest bitset_qcheck;
      ] );
    ( "observability",
      [
        Alcotest.test_case "monotonic clock" `Quick test_monotonic;
        Alcotest.test_case "trace spans balance" `Quick
          test_trace_spans_balance;
        Alcotest.test_case "trace survives exception" `Quick
          test_trace_exception_closes_span;
        Alcotest.test_case "trace escaping" `Quick test_trace_escaping;
        Alcotest.test_case "disabled trace allocates nothing" `Quick
          test_trace_disabled_no_alloc;
        Alcotest.test_case "metrics registry" `Quick test_metrics;
        Alcotest.test_case "metrics percentiles and tails" `Quick
          test_metrics_percentiles;
        Alcotest.test_case "metrics survive two domains" `Quick
          test_metrics_domain_safety;
        Alcotest.test_case "trace survives two domains" `Quick
          test_trace_domain_safety;
        Alcotest.test_case "json parser" `Quick test_json_parser;
      ] );
  ]
