(* Tests for the static-analysis suite (lib/analysis): the dataflow
   framework and its widening discipline, interval soundness, memory
   effects and the cross-context race detector (including a seeded
   racy/raceless corpus with a differential chip-level witness), the
   machine- and assignment-level validators, the dead-store lint, and
   the ctx_arb CFG-shape pin from Ixp.Flowgraph. *)

module FG = Ixp.Flowgraph
module Insn = Ixp.Insn
module Reg = Ixp.Reg
module Bank = Ixp.Bank
module Interval = Analysis.Interval
module Effects = Analysis.Effects
module Race = Analysis.Race

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let baseline_options =
  { Regalloc.Driver.default_options with allocator = Regalloc.Driver.Baseline_allocator }

let compile_baseline src =
  Regalloc.Driver.compile ~options:baseline_options ~file:"t.nova" src

let front src = Regalloc.Driver.front_end ~file:"t.nova" src

(* ---------------- interval soundness (qcheck) ---------------- *)

(* Every abstract operation must contain the concrete result of any
   members of its argument intervals. *)
let arb_interval =
  QCheck.map
    (fun (a, b) ->
      let lo = min a b and hi = max a b in
      Interval.make lo hi)
    QCheck.(pair (int_range (-2000) 2000) (int_range (-2000) 2000))

let arb_member =
  QCheck.map
    (fun (itv, f) ->
      let lo = itv.Interval.lo and hi = itv.Interval.hi in
      (itv, lo + (f mod (hi - lo + 1))))
    QCheck.(pair arb_interval (int_range 0 4000))

let interval_sound_prop =
  QCheck.Test.make ~count:500 ~name:"interval ops over-approximate"
    QCheck.(pair arb_member arb_member)
    (fun (((ia, a), (ib, b)) : (Interval.t * int) * (Interval.t * int)) ->
      let mem n itv = Interval.mem n itv in
      mem (a + b) (Interval.add ia ib)
      && mem (a - b) (Interval.sub ia ib)
      && mem (-a) (Interval.neg ia)
      && (a < 0 || b < 0 || mem (a land b) (Interval.and_ ia ib))
      && (a < 0 || b < 0 || mem (a lor b) (Interval.or_ ia ib))
      && (a < 0 || b < 0 || mem (a lxor b) (Interval.xor ia ib))
      && (a < 0 || b < 0 || b > 8 || mem (a lsl b) (Interval.shl ia ib))
      && (a < 0 || b < 0 || mem (a lsr b) (Interval.shr ia ib))
      && mem a (Interval.join ia ib)
      && mem b (Interval.join ia ib)
      && mem a (Interval.widen ~old:ia ib))

(* ---------------- widening discipline ---------------- *)

(* A counted inner loop nested in an outer loop: the inner index is
   refined by the loop branch, and only the loop heads may widen --
   widening at the ordinary join below the branch would destroy the
   bound and report an unknown address.  This pins the back-edge-only
   widening of Analysis.Dataflow. *)
let nested_loop_src =
  {|
fun main () : word {
  var acc = 0;
  var p = 0;
  while (p < 8) {
    var i = 0;
    while (i < 10) {
      acc := acc + sram(0x1000 + (i << 2), 1);
      i := i + 1;
    }
    p := p + 1;
  }
  acc
}
|}

let test_nested_loop_bounded () =
  let f = front nested_loop_src in
  let accesses = Effects.of_graph f.Regalloc.Driver.f_graph in
  let loads =
    List.filter
      (fun (a : Effects.access) ->
        a.Effects.target = Effects.Mem Insn.Sram && a.Effects.kind = Effects.Load)
      accesses
  in
  checkb "has sram loads" true (loads <> []);
  List.iter
    (fun (a : Effects.access) ->
      match a.Effects.range with
      | Effects.Bytes { lo; hi } ->
          checkb "inside the table" true (lo >= 0x1000 && hi <= 0x1000 + (10 * 4) - 1)
      | Effects.Unknown_range ->
          Alcotest.failf "unbounded load at %s.%d despite the loop bound"
            a.Effects.block a.Effects.pos)
    loads

(* the same loop pattern terminates even when the bound comes from
   memory (unbounded): widening at the loop head must still converge *)
let test_unbounded_loop_terminates () =
  let f =
    front
      {|
fun main () : word {
  let n = sram(0x10, 1);
  var i = 0;
  var acc = 0;
  while (i < n) {
    acc := acc + i;
    i := i + 1;
  }
  acc
}
|}
  in
  (* solving must terminate; the accesses are computed eagerly *)
  let _ = Effects.of_graph f.Regalloc.Driver.f_graph in
  ()

(* ---------------- independent liveness (hand-built graph) ---------------- *)

let ra n = Reg.make Bank.A n
let rb n = Reg.make Bank.B n

let test_live_hand_graph () =
  (* entry: a=1; b=2; branch -> loop | exit
     loop:  a=a+b; jump entry-like head 'hdr'
     exit:  halt uses a *)
  let g = FG.create () in
  let _ =
    FG.add_block g ~label:"e"
      ~insns:
        [
          Insn.Imm { dst = ra 0; value = 1 };
          Insn.Imm { dst = rb 0; value = 2 };
        ]
      ~term:(Insn.Jump "hdr")
  in
  let _ =
    FG.add_block g ~label:"hdr" ~insns:[]
      ~term:
        (Insn.Branch
           { cond = Insn.Lt; x = ra 0; y = Insn.Lit 10; ifso = "loop"; ifnot = "x" })
  in
  let _ =
    FG.add_block g ~label:"loop"
      ~insns:[ Insn.Alu { dst = ra 0; op = Insn.Add; x = ra 0; y = Insn.Reg (rb 0) } ]
      ~term:(Insn.Jump "hdr")
  in
  let _ =
    FG.add_block g ~label:"x"
      ~insns:
        [
          Insn.Alu1 { dst = rb 1; op = `Mov; src = ra 0 };
          Insn.Move { dst = Reg.make Bank.S 0; src = rb 1 };
          Insn.Write
            {
              space = Insn.Sram;
              srcs = [| Reg.make Bank.S 0 |];
              addr = { Insn.base = Insn.Lit 0; disp = 0 };
            };
        ]
      ~term:Insn.Halt
  in
  let live = Analysis.Live.solve g in
  let live_hdr = Analysis.Live.live_in live "hdr" in
  checkb "a live into hdr" true (Reg.Set.mem (ra 0) live_hdr);
  checkb "b live into hdr (loop-carried use)" true (Reg.Set.mem (rb 0) live_hdr);
  let live_x = Analysis.Live.live_in live "x" in
  checkb "b dead into exit arm" false (Reg.Set.mem (rb 0) live_x);
  checkb "nothing live into the entry" true
    (Reg.Set.is_empty (Analysis.Live.live_in live "e"))

(* cross-validation on a real program: the physical-level liveness of
   Analysis.Live must agree with Ixp.Liveness run on the same physical
   graph (same fixpoint, independently-written solvers) *)
let test_live_cross_validation () =
  let c = compile_baseline Workloads.Kasumi.source in
  let g = c.Regalloc.Driver.physical in
  let mine = Analysis.Live.solve g in
  (* rename physical registers to (stable) virtual temporaries so the
     virtual-side solver can chew on the same graph *)
  let idents = Hashtbl.create 64 in
  let ident_of r =
    let k = Reg.to_string r in
    match Hashtbl.find_opt idents k with
    | Some i -> i
    | None ->
        let i = Support.Ident.fresh k in
        Hashtbl.replace idents k i;
        i
  in
  let theirs = Ixp.Liveness.compute (FG.map_regs ident_of g) in
  FG.iter_blocks
    (fun b ->
      let a =
        Analysis.Live.live_in mine b.FG.label
        |> Reg.Set.elements |> List.map Reg.to_string
        |> List.sort compare
      in
      let b' =
        Ixp.Liveness.block_live_in theirs b.FG.label
        |> Support.Ident.Set.elements
        |> List.map Support.Ident.base
        |> List.sort compare
      in
      Alcotest.(check (list string))
        (Printf.sprintf "live-in of %s" b.FG.label)
        b' a)
    g

(* ---------------- seeded race corpus ---------------- *)

let racy_counter_src =
  {|
fun main () : word {
  let c = scratch(0x80, 1);
  scratch(0x80) <- c + 1;
  0
}
|}

let raceless_sdram_src =
  {|
fun main () : word {
  let (c, d) = sdram(0x80, 2);
  sdram(0x80) <- (c + 1, d);
  0
}
|}

let accesses_of src =
  let f = front src in
  Effects.of_graph f.Regalloc.Driver.f_graph

(* every program writes its result to the (intentionally shared) scratch
   result area at halt; absorb that like the lint driver does *)
let check ?(regions = []) accesses =
  Race.check ~regions:(Regalloc.Driver.result_area_region :: regions) accesses

let races fs =
  List.filter (function Race.Race _ -> true | _ -> false) fs

let test_racy_counter_flagged () =
  let fs = check (accesses_of racy_counter_src) in
  let rs = races fs in
  checkb "unsynchronized scratch counter is flagged" true (rs <> []);
  (* both the write/write self-pair and the read/write pair must show *)
  let has k =
    List.exists
      (function Race.Race { kind; _ } -> kind = k | _ -> false)
      rs
  in
  checkb "write/write" true (has Race.Write_write);
  checkb "read/write" true (has Race.Read_write)

let test_raceless_sdram_clean () =
  (* SDRAM is per-context packet memory: no shared-space pairs at all *)
  let fs = check (accesses_of raceless_sdram_src) in
  checkb "private sdram counter is clean" true (races fs = [])

let test_whitelist_absorbs () =
  let region =
    Race.region ~name:"counter" ~space:Insn.Scratch ~base:0x80 ~words:1
      Race.Shared_write
  in
  let fs = check ~regions:[ region ] (accesses_of racy_counter_src) in
  checkb "no raw races left" true (races fs = []);
  checkb "absorbed pairs are reported as whitelisted" true
    (List.exists (function Race.Whitelisted _ -> true | _ -> false) fs)

let test_ro_write_flagged () =
  let region =
    Race.region ~name:"table" ~space:Insn.Scratch ~base:0x80 ~words:1
      Race.Read_only
  in
  let fs = check ~regions:[ region ] (accesses_of racy_counter_src) in
  checkb "write into a read-only region is an error" true
    (List.exists (function Race.Ro_write _ -> true | _ -> false) fs)

let test_bit_test_set_atomic () =
  let fs =
    check
      (accesses_of
         {|
fun main () : word {
  bit_test_set(0x200, 3)
}
|})
  in
  checkb "atomic rmw self-pair is not a race" true (races fs = [])

(* Differential witness: the racy counter actually loses updates on the
   simulated hardware once several contexts interleave (the scratch
   read's latency forces a context switch mid read-modify-write), and
   does not with a single context.  The detector's verdict and the
   machine agree. *)
let run_counter ~threads ~per_thread =
  let c = compile_baseline racy_counter_src in
  let sim = Ixp.Simulator.create ~threads c.Regalloc.Driver.physical in
  let source ~thread:_ ~packets_done =
    if packets_done < per_thread then Some (Array.make 16 0) else None
  in
  let _cycles = Ixp.Simulator.run_packets sim source in
  Ixp.Memory.peek (Ixp.Simulator.shared_memory sim) Insn.Scratch (0x80 / 4)

let test_differential_lost_updates () =
  let per_thread = 25 in
  let solo = run_counter ~threads:1 ~per_thread in
  checki "single context performs every increment" per_thread solo;
  let contended = run_counter ~threads:4 ~per_thread in
  checkb
    (Printf.sprintf "4 contexts lose updates (%d < %d)" contended
       (4 * per_thread))
    true
    (contended < 4 * per_thread)

(* ---------------- ctx_arb CFG shape (satellite: flowgraph pin) ---------------- *)

let test_ctx_arb_cfg_shape () =
  let with_arb =
    front
      {|
fun main () : word {
  let a = sram(0x10, 1);
  ctx_arb();
  a + 1
}
|}
  in
  let without_arb =
    front
      {|
fun main () : word {
  let a = sram(0x10, 1);
  a + 1
}
|}
  in
  let ga = with_arb.Regalloc.Driver.f_graph
  and gb = without_arb.Regalloc.Driver.f_graph in
  (* ctx_arb is a plain instruction: same number of blocks, successors
     still derive only from the terminators *)
  checki "block count unchanged by ctx_arb" (FG.num_blocks gb) (FG.num_blocks ga);
  let found = ref false in
  FG.iter_blocks
    (fun b ->
      Array.iteri
        (fun pos insn ->
          if insn = Insn.Ctx_arb then begin
            found := true;
            (* it sits strictly inside the block: the block's control
               edges are untouched *)
            checkb "ctx_arb is not a terminator" true
              (pos < Array.length b.FG.insns);
            (* and the following point is a yield point *)
            checkb "yield point after ctx_arb" true
              (List.exists
                 (fun (p : FG.point) ->
                   p.FG.block = b.FG.label && p.FG.pos = pos + 1)
                 (FG.yield_points ga))
          end)
        b.FG.insns)
    ga;
  checkb "program contains ctx_arb" true !found

let test_yields_classification () =
  let r = Support.Ident.fresh "r" in
  let addr = { Insn.base = Insn.Lit 0; disp = 0 } in
  checkb "memory read yields" true
    (Insn.yields (Insn.Read { space = Insn.Sram; dsts = [| r |]; addr }));
  checkb "ctx_arb yields" true (Insn.yields Insn.Ctx_arb);
  checkb "alu does not yield" false
    (Insn.yields (Insn.Alu1 { dst = r; op = `Mov; src = r }));
  checkb "csr access does not yield" false
    (Insn.yields (Insn.Csr_read { dst = r; csr = "ctx" }))

(* ---------------- machine-level validator ---------------- *)

let test_validator_rejects_uninitialized () =
  (* B0 is read with no definition on any path: severe *)
  let g = FG.create () in
  let _ =
    FG.add_block g ~label:"e"
      ~insns:[ Insn.Alu1 { dst = ra 0; op = `Mov; src = rb 0 } ]
      ~term:Insn.Halt
  in
  let r = Analysis.Validator.check g in
  checkb "flags the read of an unwritten register" true
    (List.exists
       (fun (f : Analysis.Validator.finding) -> f.Analysis.Validator.severe)
       r.Analysis.Validator.findings)

let test_validator_infeasible_path_is_note () =
  (* A0 is defined on one arm of a diamond and used after the join:
     possibly-uninitialized (note), not an error *)
  let g = FG.create () in
  let _ =
    FG.add_block g ~label:"e"
      ~insns:[ Insn.Imm { dst = rb 0; value = 1 } ]
      ~term:
        (Insn.Branch
           { cond = Insn.Lt; x = rb 0; y = Insn.Lit 5; ifso = "d"; ifnot = "j" })
  in
  let _ =
    FG.add_block g ~label:"d"
      ~insns:[ Insn.Imm { dst = ra 0; value = 7 } ]
      ~term:(Insn.Jump "j")
  in
  let _ =
    FG.add_block g ~label:"j"
      ~insns:[ Insn.Alu1 { dst = rb 1; op = `Mov; src = ra 0 } ]
      ~term:Insn.Halt
  in
  let r = Analysis.Validator.check g in
  let severe, notes =
    List.partition
      (fun (f : Analysis.Validator.finding) -> f.Analysis.Validator.severe)
      r.Analysis.Validator.findings
  in
  checkb "no hard error" true (severe = []);
  checkb "possibly-uninitialized is a note" true (notes <> [])

(* ---------------- dead-store lint ---------------- *)

let test_deadstore_findings () =
  let g = FG.create () in
  let _ =
    FG.add_block g ~label:"e"
      ~insns:
        [
          Insn.Imm { dst = ra 0; value = 1 };
          (* dead: overwritten before any read *)
          Insn.Imm { dst = ra 0; value = 2 };
          Insn.Alu1 { dst = rb 0; op = `Mov; src = ra 0 };
          Insn.Move { dst = Reg.make Bank.S 0; src = rb 0 };
          Insn.Write
            {
              space = Insn.Sram;
              srcs = [| Reg.make Bank.S 0 |];
              addr = { Insn.base = Insn.Lit 0; disp = 0 };
            };
        ]
      ~term:Insn.Halt
  in
  let _ =
    FG.add_block g ~label:"island" ~insns:[] ~term:(Insn.Jump "island")
  in
  let fs = Analysis.Deadstore.check g in
  checkb "dead imm found" true
    (List.exists
       (function
         | Analysis.Deadstore.Dead_store { block = "e"; pos = 0; _ } -> true
         | _ -> false)
       fs);
  checkb "unreachable block found" true
    (List.exists
       (function
         | Analysis.Deadstore.Unreachable { block = "island" } -> true
         | _ -> false)
       fs);
  (* the store itself is an effect, never a dead store *)
  checkb "memory write never flagged" true
    (not
       (List.exists
          (function
            | Analysis.Deadstore.Dead_store { pos = 4; _ } -> true
            | _ -> false)
          fs))

(* ---------------- checker provenance ---------------- *)

let test_checker_provenance () =
  let g = FG.create () in
  (* two A-bank ALU operands violate the one-per-bank-group rule *)
  let _ =
    FG.add_block g ~label:"body"
      ~insns:
        [
          Insn.Imm { dst = ra 0; value = 1 };
          Insn.Imm { dst = ra 1; value = 2 };
          Insn.Alu { dst = ra 2; op = Insn.Add; x = ra 0; y = Insn.Reg (ra 1) };
        ]
      ~term:Insn.Halt
  in
  let loc = Support.Srcloc.start_of_file "prov.nova" in
  let provenance label = if label = "body" then Some loc else None in
  let vs = Ixp.Checker.check ~provenance g in
  checkb "violation found" true (vs <> []);
  List.iter
    (fun (v : Ixp.Checker.violation) ->
      checkb "violation carries the source location" true
        (v.Ixp.Checker.loc == loc);
      let s = Fmt.str "%a" Ixp.Checker.pp_violation v in
      checkb "printed with file prefix" true
        (String.length s > 9 && String.sub s 0 9 = "prov.nova"))
    vs;
  (* without provenance the dummy location is carried and not printed *)
  let vs' = Ixp.Checker.check g in
  List.iter
    (fun (v : Ixp.Checker.violation) ->
      checkb "dummy loc without provenance" true
        (v.Ixp.Checker.loc == Support.Srcloc.dummy))
    vs'

(* ---------------- workload lints and the assignment validator ---------------- *)

let lint_workload ?(options = baseline_options) source regions =
  let c = Regalloc.Driver.compile ~options ~file:"wl.nova" source in
  (c, Regalloc.Driver.lint ~regions c)

let test_workloads_lint_clean_baseline () =
  List.iter
    (fun (name, source, regions) ->
      let _, report = lint_workload source regions in
      Alcotest.(check int)
        (name ^ ": no errors") 0
        (List.length (Analysis.Lint.errors report));
      Alcotest.(check int)
        (name ^ ": no warnings") 0
        (List.length (Analysis.Lint.warnings report)))
    [
      ("aes", Workloads.Aes.source, Workloads.Aes.lint_regions);
      ("kasumi", Workloads.Kasumi.source, Workloads.Kasumi.lint_regions);
      ("nat", Workloads.Nat.source, Workloads.Nat.lint_regions);
    ]

let test_kasumi_ilp_lint_clean () =
  let c, report =
    lint_workload
      ~options:Regalloc.Driver.default_options (* ILP allocator *)
      Workloads.Kasumi.source Workloads.Kasumi.lint_regions
  in
  checki "ilp lint errors" 0 (List.length (Analysis.Lint.errors report));
  checki "ilp lint warnings" 0 (List.length (Analysis.Lint.warnings report));
  (* and the assignment validator independently re-proves the solution *)
  let vr = Regalloc.Validate.check c.Regalloc.Driver.assignment in
  Alcotest.(check (list string)) "assignment re-proved" [] vr.Regalloc.Validate.errors

let test_validate_accepts_baseline_workloads () =
  List.iter
    (fun (name, source) ->
      let c = compile_baseline source in
      let vr = Regalloc.Validate.check c.Regalloc.Driver.assignment in
      Alcotest.(check (list string)) (name ^ " accepted") []
        vr.Regalloc.Validate.errors)
    [
      ("aes", Workloads.Aes.source);
      ("kasumi", Workloads.Kasumi.source);
      ("nat", Workloads.Nat.source);
    ]

let test_validate_rejects_corrupt_colors () =
  let c = compile_baseline Workloads.Kasumi.source in
  let a = c.Regalloc.Driver.assignment in
  (* lie about one transfer color: aggregate adjacency must break *)
  let corrupt =
    {
      a with
      Regalloc.Assignment.xfer_color =
        (fun v b ->
          let n = a.Regalloc.Assignment.xfer_color v b in
          if n = 1 then 5 else n);
    }
  in
  let vr = Regalloc.Validate.check corrupt in
  checkb "corrupted colors rejected" true (vr.Regalloc.Validate.errors <> [])

let suites =
  [
    ( "analysis.framework",
      [
        Alcotest.test_case "nested loop stays bounded" `Quick
          test_nested_loop_bounded;
        Alcotest.test_case "unbounded loop terminates" `Quick
          test_unbounded_loop_terminates;
        Alcotest.test_case "liveness on a hand graph" `Quick test_live_hand_graph;
        Alcotest.test_case "liveness cross-validation" `Quick
          test_live_cross_validation;
        QCheck_alcotest.to_alcotest interval_sound_prop;
      ] );
    ( "analysis.race",
      [
        Alcotest.test_case "racy counter flagged" `Quick test_racy_counter_flagged;
        Alcotest.test_case "private sdram clean" `Quick test_raceless_sdram_clean;
        Alcotest.test_case "whitelist absorbs" `Quick test_whitelist_absorbs;
        Alcotest.test_case "read-only write flagged" `Quick test_ro_write_flagged;
        Alcotest.test_case "bit_test_set atomic" `Quick test_bit_test_set_atomic;
        Alcotest.test_case "differential lost updates" `Quick
          test_differential_lost_updates;
      ] );
    ( "analysis.cfg",
      [
        Alcotest.test_case "ctx_arb keeps the CFG shape" `Quick
          test_ctx_arb_cfg_shape;
        Alcotest.test_case "yield classification" `Quick test_yields_classification;
      ] );
    ( "analysis.validate",
      [
        Alcotest.test_case "uninitialized read rejected" `Quick
          test_validator_rejects_uninitialized;
        Alcotest.test_case "infeasible path is a note" `Quick
          test_validator_infeasible_path_is_note;
        Alcotest.test_case "dead stores and unreachable code" `Quick
          test_deadstore_findings;
        Alcotest.test_case "checker violations carry provenance" `Quick
          test_checker_provenance;
        Alcotest.test_case "workload lints clean (baseline)" `Quick
          test_workloads_lint_clean_baseline;
        Alcotest.test_case "kasumi ILP lint clean" `Quick test_kasumi_ilp_lint_clean;
        Alcotest.test_case "baseline assignments re-proved" `Quick
          test_validate_accepts_baseline_workloads;
        Alcotest.test_case "corrupt colors rejected" `Quick
          test_validate_rejects_corrupt_colors;
      ] );
  ]
