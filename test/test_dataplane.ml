(* Equivalence tests for the four dataplane workloads added with the
   fuzzer PR: IPv4 LPM forwarding, the 5-tuple firewall, IPv4/UDP
   checksum offload and the token-bucket QoS shaper.

   Each workload is checked packet-for-packet against its OCaml
   reference at two levels:
     - front end: CPS term under [Cps.Interp] (fast, every payload size
       variant, so every route / rule / flow path in the tables fires);
     - compiled: baseline-allocated code on the chip-level simulator for
       every workload, ILP-allocated for LPM (slow). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let sdram_words = Ixp.Memory.default_config.Ixp.Memory.sdram_words

(* run the front end under the CPS interpreter *)
let run_front name source ~init =
  let front = Regalloc.Driver.front_end ~file:(name ^ ".nova") source in
  let st = Cps.Interp.create () in
  init st;
  let result =
    Cps.Interp.run st Support.Ident.Map.empty front.Regalloc.Driver.f_term
  in
  (result, st)

(* run a compiled program on the chip-level simulator *)
let run_sim name source ~allocator ~init =
  let options =
    { Regalloc.Driver.default_options with allocator; node_limit = 200 }
  in
  let c = Regalloc.Driver.compile ~options ~file:(name ^ ".nova") source in
  let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
  let mem = Ixp.Simulator.shared_memory sim in
  let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
  init ~mem ~sdram;
  let cycles = Ixp.Simulator.run_single sim in
  checkb "ran" true (cycles > 0);
  (mem, sdram)

let poke mem space w v = Ixp.Memory.poke mem space w v

(* compare an SDRAM packet region against the reference image *)
let check_packet_region what mem image ~in_base ~bytes =
  for i = in_base / 4 to ((in_base + bytes) / 4) + 1 do
    checki
      (Printf.sprintf "%s sdram[%d]" what i)
      image.(i)
      (Ixp.Memory.peek mem Ixp.Insn.Sdram i)
  done

(* ---------------- LPM ---------------- *)

let lpm_init ~sram ~sdram ~plen =
  Workloads.Lpm.init_tables (fun w v -> poke sram Ixp.Insn.Sram w v);
  ignore
    (Workloads.Lpm.init_payload
       (fun w v -> poke sdram Ixp.Insn.Sdram w v)
       ~payload_len:plen)

let test_lpm_front_end_matches_reference () =
  (* every destination in [Lpm.dests] fires across these sizes *)
  List.iter
    (fun plen ->
      let result, st =
        run_front "lpm" Workloads.Lpm.source ~init:(fun st ->
            let mem = Cps.Interp.memory st in
            lpm_init ~sram:mem ~sdram:mem ~plen)
      in
      let image, ret = Workloads.Lpm.expected ~payload_len:plen ~sdram_words in
      let mem = Cps.Interp.memory st in
      check_packet_region
        (Printf.sprintf "lpm/%d" plen)
        mem image ~in_base:Workloads.Lpm.in_base ~bytes:(20 + plen);
      checkb (Printf.sprintf "lpm/%d ret" plen) true (result = [ ret ]);
      (* the program records the leaf and port in SRAM *)
      checki "nh leaf" ret
        (Ixp.Memory.peek mem Ixp.Insn.Sram (Workloads.Lpm.nh_addr / 4));
      checki "nh port" ((ret lsr 16) land 0x7F)
        (Ixp.Memory.peek mem Ixp.Insn.Sram ((Workloads.Lpm.nh_addr / 4) + 1)))
    [ 4; 8; 12; 16; 20; 24; 28; 32 ]

let test_lpm_punts () =
  let plen = 16 in
  let corrupt field st =
    let mem = Cps.Interp.memory st in
    lpm_init ~sram:mem ~sdram:mem ~plen;
    let inw = Workloads.Lpm.in_base / 4 in
    match field with
    | `Version ->
        let w0 = Ixp.Memory.peek mem Ixp.Insn.Sdram inw in
        poke mem Ixp.Insn.Sdram inw ((w0 land 0x0FFFFFFF) lor (6 lsl 28))
    | `Ttl ->
        let w2 = Ixp.Memory.peek mem Ixp.Insn.Sdram (inw + 2) in
        poke mem Ixp.Insn.Sdram (inw + 2) ((w2 land 0x00FFFFFF) lor (1 lsl 24))
  in
  let result, _ =
    run_front "lpm" Workloads.Lpm.source ~init:(corrupt `Version)
  in
  checkb "bad version punts" true (result = [ 0xE0000000 lor 0x65 ]);
  let result, _ = run_front "lpm" Workloads.Lpm.source ~init:(corrupt `Ttl) in
  checkb "expiring ttl punts" true (result = [ 0xD0000000 lor 1 ])

let test_lpm_reference_lookup () =
  (* longest prefix wins among overlapping routes *)
  let l = Workloads.Lpm.reference_lookup in
  let leaf = Workloads.Lpm.leaf in
  checki "/32 beats /24" (leaf ~port:4 ~nh:4) (l 0x0A141E28);
  checki "/24 beats /16" (leaf ~port:3 ~nh:3) (l 0x0A141E01);
  checki "/16 beats /8" (leaf ~port:2 ~nh:2) (l 0x0A140001);
  checki "/8 fallback" (leaf ~port:1 ~nh:1) (l 0x0A990001);
  checki "/12 aggregate" (leaf ~port:7 ~nh:7) (l 0xAC1F0001);
  checki "/17 in range" (leaf ~port:11 ~nh:11) (l 0x42667FFF);
  checki "/17 out of range" Workloads.Lpm.default_leaf (l 0x42668000);
  checki "default" Workloads.Lpm.default_leaf (l 0x7F000001)

(* ---------------- firewall ---------------- *)

let fw_init ~sram ~sdram ~plen =
  Workloads.Firewall.init_tables (fun w v -> poke sram Ixp.Insn.Sram w v);
  ignore
    (Workloads.Firewall.init_payload
       (fun w v -> poke sdram Ixp.Insn.Sdram w v)
       ~payload_len:plen)

let test_firewall_front_end_matches_reference () =
  List.iter
    (fun plen ->
      let result, st =
        run_front "firewall" Workloads.Firewall.source ~init:(fun st ->
            let mem = Cps.Interp.memory st in
            fw_init ~sram:mem ~sdram:mem ~plen)
      in
      let image, ret =
        Workloads.Firewall.expected ~payload_len:plen ~sdram_words
      in
      let mem = Cps.Interp.memory st in
      (* the firewall does not modify the packet *)
      check_packet_region
        (Printf.sprintf "fw/%d" plen)
        mem image ~in_base:Workloads.Firewall.in_base ~bytes:(20 + plen);
      checkb (Printf.sprintf "fw/%d ret" plen) true (result = [ ret ]);
      checki "verdict slot" ret
        (Ixp.Memory.peek mem Ixp.Insn.Sram (Workloads.Firewall.verdict_addr / 4));
      (* exactly one hit counter ticked *)
      let inw = Workloads.Firewall.in_base / 4 in
      let p0 = image.(inw + 5) in
      let hit, _ =
        Workloads.Firewall.reference_verdict ~src:image.(inw + 3)
          ~dst:image.(inw + 4) ~sport:(p0 lsr 16) ~dport:(p0 land 0xFFFF)
          ~proto:((image.(inw + 2) lsr 16) land 0xFF)
      in
      for k = 0 to Workloads.Firewall.n_rules do
        checki
          (Printf.sprintf "fw/%d hits[%d]" plen k)
          (if k = hit then 1 else 0)
          (Ixp.Memory.peek mem Ixp.Insn.Scratch
             ((Workloads.Firewall.hits_base / 4) + k))
      done)
    [ 4; 8; 12; 16; 20; 24; 28; 32 ]

let test_firewall_rules_hit_expected_actions () =
  (* spot-check the reference matcher against hand-computed rules *)
  let v ~src ~dst ~sport ~dport ~proto =
    snd (Workloads.Firewall.reference_verdict ~src ~dst ~sport ~dport ~proto)
  in
  (* telnet deny: rule 0, action 2 *)
  checki "telnet" 0x002 (v ~src:1 ~dst:2 ~sport:999 ~dport:23 ~proto:6);
  (* dns accept: rule 1 *)
  checki "dns" 0x101 (v ~src:1 ~dst:2 ~sport:999 ~dport:53 ~proto:17);
  (* 192.168/16 source deny: rule 3 *)
  checki "rfc1918" 0x302
    (v ~src:0xC0A80101 ~dst:2 ~sport:9 ~dport:9 ~proto:17);
  (* default *)
  checki "default" Workloads.Firewall.default_verdict
    (v ~src:0x20202020 ~dst:0x30303030 ~sport:1 ~dport:2 ~proto:17)

let test_firewall_punts_bad_proto () =
  let plen = 16 in
  let result, _ =
    run_front "firewall" Workloads.Firewall.source ~init:(fun st ->
        let mem = Cps.Interp.memory st in
        fw_init ~sram:mem ~sdram:mem ~plen;
        let inw = Workloads.Firewall.in_base / 4 in
        let w2 = Ixp.Memory.peek mem Ixp.Insn.Sdram (inw + 2) in
        (* protocol := 47 (GRE): neither TCP nor UDP *)
        poke mem Ixp.Insn.Sdram (inw + 2)
          ((w2 land 0xFF00FFFF) lor (47 lsl 16)))
  in
  checkb "punted" true (result = [ 0xE0000000 lor 47 ])

(* ---------------- checksum offload ---------------- *)

let csum_init ~sdram ~plen =
  ignore
    (Workloads.Csum.init_payload
       (fun w v -> poke sdram Ixp.Insn.Sdram w v)
       ~payload_len:plen)

let test_csum_front_end_matches_reference () =
  List.iter
    (fun plen ->
      let result, st =
        run_front "csum" Workloads.Csum.source ~init:(fun st ->
            csum_init ~sdram:(Cps.Interp.memory st) ~plen)
      in
      let image, ret = Workloads.Csum.expected ~payload_len:plen ~sdram_words in
      let mem = Cps.Interp.memory st in
      check_packet_region
        (Printf.sprintf "csum/%d" plen)
        mem image ~in_base:Workloads.Csum.in_base ~bytes:(20 + plen);
      checkb (Printf.sprintf "csum/%d ret" plen) true (result = [ ret ]);
      checki "csum slot" ret
        (Ixp.Memory.peek mem Ixp.Insn.Sram (Workloads.Csum.csum_addr / 4)))
    [ 8; 16; 24; 32; 40; 48; 64 ]

let test_csum_verifies () =
  (* the patched packet must checksum to zero the way a receiver would:
     sum of all 16-bit header words including the stored checksum folds
     to 0xFFFF *)
  let plen = 32 in
  let image, _ = Workloads.Csum.expected ~payload_len:plen ~sdram_words in
  let inw = Workloads.Csum.in_base / 4 in
  let halves w = ((w lsr 16) land 0xFFFF) + (w land 0xFFFF) in
  let fold x =
    let y = (x land 0xFFFF) + (x lsr 16) in
    (y land 0xFFFF) + (y lsr 16)
  in
  let ipsum = ref 0 in
  for i = 0 to 4 do
    ipsum := !ipsum + halves image.(inw + i)
  done;
  checki "ip checksum verifies" 0xFFFF (fold (fold !ipsum));
  let udpsum =
    ref
      (halves image.(inw + 3) + halves image.(inw + 4) + 17
     + (plen land 0xFFFF))
  in
  for i = 5 to 5 + (plen / 4) - 1 do
    udpsum := !udpsum + halves image.(inw + i)
  done;
  checki "udp checksum verifies" 0xFFFF (fold (fold !udpsum))

let test_csum_punts_ragged_length () =
  let plen = 16 in
  let result, _ =
    run_front "csum" Workloads.Csum.source ~init:(fun st ->
        let mem = Cps.Interp.memory st in
        csum_init ~sdram:mem ~plen;
        let inw = Workloads.Csum.in_base / 4 in
        let w0 = Ixp.Memory.peek mem Ixp.Insn.Sdram inw in
        (* total_length := 20 + plen + 4: ragged UDP payload *)
        poke mem Ixp.Insn.Sdram inw ((w0 land 0xFFFF0000) lor (20 + plen + 4)))
  in
  checkb "punted" true (result = [ 0xD0000000 lor 12 ])

(* ---------------- QoS shaper ---------------- *)

let qos_init ~sram ~sdram ~plen =
  Workloads.Qos.init_tables (fun w v -> poke sram Ixp.Insn.Sram w v);
  ignore
    (Workloads.Qos.init_payload
       (fun w v -> poke sdram Ixp.Insn.Sdram w v)
       ~payload_len:plen)

let test_qos_front_end_matches_reference () =
  List.iter
    (fun plen ->
      let result, st =
        run_front "qos" Workloads.Qos.source ~init:(fun st ->
            let mem = Cps.Interp.memory st in
            qos_init ~sram:mem ~sdram:mem ~plen)
      in
      let flow_state = Workloads.Qos.fresh_flow_state () in
      let image = Array.make sdram_words 0 in
      let packet = Workloads.Qos.build_packet ~payload_len:plen in
      Array.blit packet 0 image (Workloads.Qos.in_base / 4)
        (Array.length packet);
      let ret =
        Workloads.Qos.reference_transform_with flow_state image
          ~payload_len:plen
      in
      let mem = Cps.Interp.memory st in
      check_packet_region
        (Printf.sprintf "qos/%d" plen)
        mem image ~in_base:Workloads.Qos.in_base ~bytes:(20 + plen);
      checkb (Printf.sprintf "qos/%d ret" plen) true (result = [ ret ]);
      (* the whole flow-state table matches the reference's *)
      Array.iteri
        (fun i v ->
          checki
            (Printf.sprintf "qos/%d flow[%d]" plen i)
            v
            (Ixp.Memory.peek mem Ixp.Insn.Sram
               ((Workloads.Qos.flow_base / 4) + i)))
        flow_state)
    [ 4; 8; 12; 16; 20; 24; 28; 32; 1496 ]

let test_qos_exceed_path () =
  (* drain a flow's bucket: a 1496-byte packet against a nearly empty
     bucket must take the exceed path and leave tokens unspent *)
  let plen = 1496 in
  let image = Array.make sdram_words 0 in
  let packet = Workloads.Qos.build_packet ~payload_len:plen in
  Array.blit packet 0 image (Workloads.Qos.in_base / 4) (Array.length packet);
  let flow_state = Workloads.Qos.fresh_flow_state () in
  (* force every flow to a nearly-empty bucket *)
  Array.iteri
    (fun i _ -> if i mod 2 = 0 then flow_state.(i) <- 10)
    flow_state;
  let ret =
    Workloads.Qos.reference_transform_with flow_state image ~payload_len:plen
  in
  checki "exceed mark" 0 ((ret lsr 16) land 0xFF);
  let flow = ret lsr 24 in
  checki "tokens kept" 510 flow_state.(2 * flow);
  checki "exceed counter" 1 flow_state.((2 * flow) + 1);
  (* ToS remarked to best effort *)
  let inw = Workloads.Qos.in_base / 4 in
  checki "tos" Workloads.Qos.tos_exceed ((image.(inw) lsr 16) land 0xFF)

(* ---------------- compiled-on-simulator equivalence ---------------- *)

let compiled_case name source ~allocator ~plen ~init ~check =
  let _mem, _sdram =
    run_sim name source ~allocator ~init:(fun ~mem ~sdram ->
        init ~mem ~sdram ~plen)
  in
  check ~mem:_mem ~sdram:_sdram ~plen

module type WORKLOAD = sig
  val in_base : int
  val expected : payload_len:int -> sdram_words:int -> int array * int
end

let check_against_image (module W : WORKLOAD) name ~mem:_ ~sdram ~plen =
  let image, _ret = W.expected ~payload_len:plen ~sdram_words in
  check_packet_region name sdram image ~in_base:W.in_base ~bytes:(20 + plen)

let test_compiled_baseline_all () =
  let alloc = Regalloc.Driver.Baseline_allocator in
  compiled_case "lpm" Workloads.Lpm.source ~allocator:alloc ~plen:16
    ~init:(fun ~mem ~sdram ~plen -> lpm_init ~sram:mem ~sdram ~plen)
    ~check:(fun ~mem ~sdram ~plen ->
      check_against_image (module Workloads.Lpm) "lpm-base" ~mem ~sdram ~plen;
      let _, ret = Workloads.Lpm.expected ~payload_len:plen ~sdram_words in
      checki "lpm nh" ret
        (Ixp.Memory.peek mem Ixp.Insn.Sram (Workloads.Lpm.nh_addr / 4)));
  compiled_case "firewall" Workloads.Firewall.source ~allocator:alloc ~plen:16
    ~init:(fun ~mem ~sdram ~plen -> fw_init ~sram:mem ~sdram ~plen)
    ~check:(fun ~mem ~sdram ~plen ->
      check_against_image
        (module Workloads.Firewall)
        "fw-base" ~mem ~sdram ~plen;
      let _, ret = Workloads.Firewall.expected ~payload_len:plen ~sdram_words in
      checki "fw verdict" ret
        (Ixp.Memory.peek mem Ixp.Insn.Sram (Workloads.Firewall.verdict_addr / 4)));
  compiled_case "csum" Workloads.Csum.source ~allocator:alloc ~plen:24
    ~init:(fun ~mem:_ ~sdram ~plen -> csum_init ~sdram ~plen)
    ~check:(fun ~mem ~sdram ~plen ->
      check_against_image (module Workloads.Csum) "csum-base" ~mem ~sdram ~plen;
      let _, ret = Workloads.Csum.expected ~payload_len:plen ~sdram_words in
      checki "csum out" ret
        (Ixp.Memory.peek mem Ixp.Insn.Sram (Workloads.Csum.csum_addr / 4)));
  compiled_case "qos" Workloads.Qos.source ~allocator:alloc ~plen:16
    ~init:(fun ~mem ~sdram ~plen -> qos_init ~sram:mem ~sdram ~plen)
    ~check:(fun ~mem ~sdram ~plen ->
      check_against_image (module Workloads.Qos) "qos-base" ~mem ~sdram ~plen;
      let flow_state = Workloads.Qos.fresh_flow_state () in
      let image = Array.make sdram_words 0 in
      let packet = Workloads.Qos.build_packet ~payload_len:plen in
      Array.blit packet 0 image (Workloads.Qos.in_base / 4)
        (Array.length packet);
      ignore
        (Workloads.Qos.reference_transform_with flow_state image
           ~payload_len:plen);
      Array.iteri
        (fun i v ->
          checki
            (Printf.sprintf "qos flow[%d]" i)
            v
            (Ixp.Memory.peek mem Ixp.Insn.Sram
               ((Workloads.Qos.flow_base / 4) + i)))
        flow_state)

let test_lpm_ilp_compiled_end_to_end () =
  compiled_case "lpm" Workloads.Lpm.source
    ~allocator:Regalloc.Driver.Ilp_allocator ~plen:20
    ~init:(fun ~mem ~sdram ~plen -> lpm_init ~sram:mem ~sdram ~plen)
    ~check:(fun ~mem ~sdram ~plen ->
      check_against_image (module Workloads.Lpm) "lpm-ilp" ~mem ~sdram ~plen;
      let _, ret = Workloads.Lpm.expected ~payload_len:plen ~sdram_words in
      checki "lpm nh" ret
        (Ixp.Memory.peek mem Ixp.Insn.Sram (Workloads.Lpm.nh_addr / 4)))

let suites =
  [
    ( "dataplane.front_end",
      [
        Alcotest.test_case "LPM matches reference" `Quick
          test_lpm_front_end_matches_reference;
        Alcotest.test_case "LPM punts" `Quick test_lpm_punts;
        Alcotest.test_case "LPM reference lookup" `Quick
          test_lpm_reference_lookup;
        Alcotest.test_case "firewall matches reference" `Quick
          test_firewall_front_end_matches_reference;
        Alcotest.test_case "firewall rule actions" `Quick
          test_firewall_rules_hit_expected_actions;
        Alcotest.test_case "firewall punts bad proto" `Quick
          test_firewall_punts_bad_proto;
        Alcotest.test_case "csum matches reference" `Quick
          test_csum_front_end_matches_reference;
        Alcotest.test_case "csum verifies end-to-end" `Quick
          test_csum_verifies;
        Alcotest.test_case "csum punts ragged length" `Quick
          test_csum_punts_ragged_length;
        Alcotest.test_case "qos matches reference" `Quick
          test_qos_front_end_matches_reference;
        Alcotest.test_case "qos exceed path" `Quick test_qos_exceed_path;
      ] );
    ( "dataplane.compiled",
      [
        Alcotest.test_case "baseline-compiled all four" `Quick
          test_compiled_baseline_all;
        Alcotest.test_case "LPM ILP-compiled end-to-end" `Slow
          test_lpm_ilp_compiled_end_to_end;
      ] );
  ]
