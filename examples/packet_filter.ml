(* A small firewall/packet-filter fast path: parse an IPv4 header with a
   layout, look up the source address in a hash-indexed SRAM blocklist,
   and count accepted/rejected packets in scratch.

   Demonstrates: layouts with overlays, hashing, bit_test_set, exceptions
   as the slow-path mechanism, and the multi-threaded simulator.

   Run with:  dune exec examples/packet_filter.exe *)

let program =
  {|
layout ipv4 = {
  vi : overlay { whole : 8 | parts : { version : 4, ihl : 4 } },
  tos : 8, total_length : 16,
  ident : 16, flags_frag : 16,
  ttl : 8, protocol : 8, checksum : 16,
  src : 32, dst : 32
};

const BLOCKLIST = 0x4000;  // SRAM: 256-entry direct-mapped blocklist
const ACCEPTED  = 0x100;   // scratch counters
const REJECTED  = 0x104;
const SEEN_BITS = 0x200;   // SRAM bitmap of source buckets seen

fun main () : word {
  try {
    // SDRAM transfers are 2-word aligned, so the 5-word IPv4 header
    // arrives as 6 words; the trailing word is payload and unused here.
    let (h0, h1, h2, h3, h4, _pad) = sdram(0, 6);
    let u = unpack[ipv4]((h0, h1, h2, h3, h4));
    if (u.vi.parts.version != 4) { raise Slow [why = 1]; }
    if (u.ttl == 0) { raise Slow [why = 2]; }
    // mark this source bucket in the seen-bitmap (atomic or)
    let bucket = hash(u.src) & 0x1F;
    let old = bit_test_set(SEEN_BITS, 1 << bucket);
    // blocklist lookup
    let entry = sram(BLOCKLIST + ((hash(u.src) & 0xFF) << 2), 1);
    if (entry == u.src) {
      let r = scratch(REJECTED, 1);
      scratch(REJECTED) <- r + 1;
      0
    } else {
      let a = scratch(ACCEPTED, 1);
      scratch(ACCEPTED) <- a + 1;
      old & 0xFFFF
    }
  }
  handle Slow [why : word] {
    // punt to the slow path on the StrongARM core
    0xBAD00000 | why
  }
}
|}

let make_packet ~src ~version =
  [|
    (version lsl 28) lor (5 lsl 24) lor 60;
    0x13370000;
    (64 lsl 24) lor (6 lsl 16);
    src;
    0x0A000001;
    0;
  |]

let () =
  Fmt.pr "compiling packet filter...@.";
  let compiled = Regalloc.Driver.compile ~file:"packet_filter.nova" program in
  let stats = compiled.Regalloc.Driver.stats in
  Fmt.pr "compiled: %d virtual insns, %d moves, %d spills@."
    stats.Regalloc.Driver.virtual_insns stats.Regalloc.Driver.moves_inserted
    stats.Regalloc.Driver.spills_inserted;
  (* run a stream of packets through 4 hardware threads *)
  let blocked_src = 0xC0A80017 in
  let packets =
    Array.init 32 (fun i ->
        if i mod 5 = 0 then make_packet ~src:blocked_src ~version:4
        else if i mod 11 = 0 then make_packet ~src:(0x0A000000 + i) ~version:6
        else make_packet ~src:(0xC0A80000 + i) ~version:4)
  in
  let sim = Ixp.Simulator.create ~threads:4 compiled.Regalloc.Driver.physical in
  let mem = Ixp.Simulator.shared_memory sim in
  (* install the blocklist entry where the hash of blocked_src lands *)
  let idx = Ixp.Memory.hash blocked_src land 0xFF in
  Ixp.Memory.poke mem Ixp.Insn.Sram ((0x4000 / 4) + idx) blocked_src;
  (* each thread processes packets from its own slice; packets arrive in
     the thread's private SDRAM at address 0 *)
  let next = ref 0 in
  let source ~thread:_ ~packets_done:_ =
    if !next >= Array.length packets then None
    else begin
      let p = packets.(!next) in
      incr next;
      Some p
    end
  in
  (* the program reads the packet from SDRAM; feed it via the per-thread
     SDRAM image before each run by using the rfifo hook *)
  let source ~thread ~packets_done =
    match source ~thread ~packets_done with
    | None -> None
    | Some p ->
        let sdram = Ixp.Simulator.sdram_of_thread sim ~thread in
        Array.iteri (fun i w -> Ixp.Memory.poke sdram Ixp.Insn.Sdram i w) p;
        Some p
  in
  let cycles = Ixp.Simulator.run_packets sim source in
  let accepted = Ixp.Memory.peek mem Ixp.Insn.Scratch (0x100 / 4) in
  let rejected = Ixp.Memory.peek mem Ixp.Insn.Scratch (0x104 / 4) in
  Fmt.pr "processed %d packets in %d cycles (%d accepted, %d rejected)@."
    (Ixp.Simulator.packets_done sim)
    cycles accepted rejected;
  Fmt.pr "throughput: %.1f cycles/packet across 4 threads@."
    (float_of_int cycles /. float_of_int (Ixp.Simulator.packets_done sim));
  let bitmap = Ixp.Memory.peek mem Ixp.Insn.Sram (0x200 / 4) in
  Fmt.pr "seen-bitmap: 0x%08X@." bitmap
