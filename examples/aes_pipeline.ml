(* The paper's flagship workload: AES-128 bulk encryption on the
   micro-engine, compiled with the ILP allocator and validated against a
   from-first-principles reference implementation, then swept over
   payload sizes for a throughput estimate (paper §11).

   Run with:  dune exec examples/aes_pipeline.exe *)

let () =
  let payload_len = 64 in
  (* a stated solver budget: the search stops at the node limit and the
     best incumbent (or the baseline allocation) is emitted, so the
     example terminates in bounded time instead of chasing the
     optimality certificate *)
  let options =
    {
      Regalloc.Driver.default_options with
      time_limit = 120.;
      node_limit = 20_000;
    }
  in
  Fmt.pr "compiling AES-128 (%d-byte payloads, budget %.0fs / %d nodes)...@."
    payload_len options.Regalloc.Driver.time_limit
    options.Regalloc.Driver.node_limit;
  let compiled =
    Regalloc.Driver.compile ~options ~file:"aes.nova" Workloads.Aes.source
  in
  let stats = compiled.Regalloc.Driver.stats in
  Fmt.pr "allocation: %s@."
    (Regalloc.Driver.solver_outcome_to_string
       stats.Regalloc.Driver.solver_outcome);
  Fmt.pr "source: %d lines, %d layouts, %d unpacks@."
    stats.Regalloc.Driver.source.Nova.Stats.lines
    stats.Regalloc.Driver.source.Nova.Stats.layout_specs
    stats.Regalloc.Driver.source.Nova.Stats.unpacks;
  (match stats.Regalloc.Driver.mip with
  | Some m ->
      Fmt.pr "ILP: %d vars / %d rows, solved in %.1fs (%d B&B nodes)@."
        m.Lp.Mip.vars_before m.Lp.Mip.rows_before m.Lp.Mip.total_time
        m.Lp.Mip.nodes
  | None -> ());
  Fmt.pr "moves: %d, spills: %d@." stats.Regalloc.Driver.moves_inserted
    stats.Regalloc.Driver.spills_inserted;
  (* correctness: ciphertext must match the reference exactly *)
  let cycles, results, sim =
    Regalloc.Driver.simulate
      ~init:(fun sim ->
        let mem = Ixp.Simulator.shared_memory sim in
        Workloads.Aes.init_tables (fun w v ->
            Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
        ignore
          (Workloads.Aes.init_payload
             (fun w v -> Ixp.Memory.poke sdram Ixp.Insn.Sdram w v)
             ~payload_len))
      compiled
  in
  let expected_ct, expected_csum = Workloads.Aes.expected ~payload_len in
  let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
  let ok = ref true in
  Array.iteri
    (fun i w ->
      if Ixp.Memory.peek sdram Ixp.Insn.Sdram ((Workloads.Aes.ct_base / 4) + i) <> w
      then ok := false)
    expected_ct;
  Fmt.pr "ciphertext matches FIPS-derived reference: %b@." !ok;
  Fmt.pr "checksum: got %d, expected %d@." results.(0) expected_csum;
  Fmt.pr "single-thread: %d cycles for %d bytes -> %.1f Mbit/s at 233 MHz@."
    cycles payload_len
    (Ixp.Simulator.mbps sim ~bytes:payload_len)
