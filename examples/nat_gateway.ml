(* IPv6 -> IPv4 NAT gateway: header translation with layouts and pack[],
   payload relocation against SDRAM alignment, and checksum maintenance
   (paper §11's third benchmark).

   Run with:  dune exec examples/nat_gateway.exe *)

let () =
  let payload_len = 96 in
  (* stated solver budget; see aes_pipeline.ml *)
  let options =
    {
      Regalloc.Driver.default_options with
      time_limit = 120.;
      node_limit = 20_000;
    }
  in
  Fmt.pr "compiling the NAT fast path (budget %.0fs / %d nodes)...@."
    options.Regalloc.Driver.time_limit options.Regalloc.Driver.node_limit;
  let compiled =
    Regalloc.Driver.compile ~options ~file:"nat.nova" Workloads.Nat.source
  in
  let stats = compiled.Regalloc.Driver.stats in
  Fmt.pr "allocation: %s@."
    (Regalloc.Driver.solver_outcome_to_string
       stats.Regalloc.Driver.solver_outcome);
  Fmt.pr "source: %d lines, %d layouts, pack=%d unpack=%d raise=%d handle=%d@."
    stats.Regalloc.Driver.source.Nova.Stats.lines
    stats.Regalloc.Driver.source.Nova.Stats.layout_specs
    stats.Regalloc.Driver.source.Nova.Stats.packs
    stats.Regalloc.Driver.source.Nova.Stats.unpacks
    stats.Regalloc.Driver.source.Nova.Stats.raises
    stats.Regalloc.Driver.source.Nova.Stats.handles;
  Fmt.pr "moves: %d, spills: %d@." stats.Regalloc.Driver.moves_inserted
    stats.Regalloc.Driver.spills_inserted;
  let cycles, results, sim =
    Regalloc.Driver.simulate
      ~init:(fun sim ->
        let mem = Ixp.Simulator.shared_memory sim in
        Workloads.Nat.init_tables (fun w v ->
            Ixp.Memory.poke mem Ixp.Insn.Sram w v);
        let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
        ignore
          (Workloads.Nat.init_payload
             (fun w v -> Ixp.Memory.poke sdram Ixp.Insn.Sdram w v)
             ~payload_len))
      compiled
  in
  let image, expected_ret =
    Workloads.Nat.expected ~payload_len
      ~sdram_words:Ixp.Memory.default_config.Ixp.Memory.sdram_words
  in
  let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
  let ok = ref true in
  for i = 0 to (Workloads.Nat.in_base + 40 + payload_len) / 4 do
    if Ixp.Memory.peek sdram Ixp.Insn.Sdram i <> image.(i) then ok := false
  done;
  Fmt.pr "translated packet image matches reference: %b@." !ok;
  Fmt.pr "IPv4 checksum: got 0x%04X, expected 0x%04X@." results.(0) expected_ret;
  Fmt.pr "%d cycles for one %d-byte packet (%.2f us at 233 MHz)@." cycles
    (40 + payload_len)
    (float_of_int cycles /. 233.);
  (* show the translated header *)
  Fmt.pr "IPv4 header out:";
  for i = 0 to 4 do
    Fmt.pr " %08X"
      (Ixp.Memory.peek sdram Ixp.Insn.Sdram ((Workloads.Nat.out_base / 4) + i))
  done;
  Fmt.pr "@."
