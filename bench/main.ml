(* Benchmark harness: regenerates every table and figure from the paper's
   evaluation (§11).  See EXPERIMENTS.md for paper-vs-measured records.

     dune exec bench/main.exe -- all          every experiment
     dune exec bench/main.exe -- figure5      static program statistics
     dune exec bench/main.exe -- figure6      AMPL coloring statistics
     dune exec bench/main.exe -- figure7      solver statistics
     dune exec bench/main.exe -- throughput   Mbit/s payload sweep
     dune exec bench/main.exe -- rates        chip-level forwarding rates
     dune exec bench/main.exe -- rates-smoke  fast variant for CI
     dune exec bench/main.exe -- solver       MIP engine perf (BENCH_solver.json)
     dune exec bench/main.exe -- solver-smoke CI gate with a hard time ceiling
                                              (--solver-domains N adds parallel legs)
     dune exec bench/main.exe -- solver-scaling  wall time vs worker domains
     dune exec bench/main.exe -- pipeline     per-stage wall times (BENCH_pipeline.json)
     dune exec bench/main.exe -- pipeline-gate CI regression gate vs that baseline
     dune exec bench/main.exe -- ablation     spill-feasibility objective
     dune exec bench/main.exe -- baseline     ILP vs heuristic allocator
     dune exec bench/main.exe -- pruning      §8 model-size reductions
     dune exec bench/main.exe -- time         bechamel micro-benchmarks *)

open Workbench

let rule title = Fmt.pr "@.=== %s ===@." title

(* ---------------- Figure 5: static program statistics ---------------- *)

let figure5 () =
  rule "Figure 5: static benchmark program statistics";
  Fmt.pr "%-8s | %19s | %7s | %4s | %6s | %5s | %6s@." "" "lines (ours/paper)"
    "layouts" "pack" "unpack" "raise" "handle";
  List.iter
    (fun w ->
      let prog = Nova.Parser.parse_string ~file:w.name w.source in
      let s = Nova.Stats.of_program ~source:w.source prog in
      let paper_lines =
        match w.paper_fig5 with Some (l, _, _, _, _, _) -> l | None -> 0
      in
      Fmt.pr "%-8s | %9d / %7d | %7d | %4d | %6d | %5d | %6d@." w.name
        s.Nova.Stats.lines paper_lines s.Nova.Stats.layout_specs
        s.Nova.Stats.packs s.Nova.Stats.unpacks s.Nova.Stats.raises
        s.Nova.Stats.handles)
    all;
  Fmt.pr
    "(paper line counts include the receive/transmit harness of the full \
     application; paper pack/unpack: AES 5/3, Kasumi 4/2; NAT predates \
     layouts)@."

(* ---------------- Figure 6: AMPL statistics ---------------- *)

let figure6 () =
  rule "Figure 6: temporaries participating in coloring (AMPL statistics)";
  Fmt.pr "%-8s | %6s %6s %6s | %6s %6s %6s   (paper totals in parens)@." ""
    "DefL" "DefLD" "total" "UseS" "UseSD" "total";
  List.iter
    (fun w ->
      let f = front w in
      let mg = Regalloc.Modelgen.build f.Regalloc.Driver.f_graph in
      let c = Regalloc.Modelgen.coloring_stats mg in
      let p_def, p_use =
        match w.paper_fig6 with
        | Some (_, _, dt, _, _, ut) -> (dt, ut)
        | None -> (0, 0)
      in
      Fmt.pr "%-8s | %6d %6d %6d | %6d %6d %6d   (paper: %d / %d)@." w.name
        c.Regalloc.Modelgen.def_l c.Regalloc.Modelgen.def_ld
        (c.Regalloc.Modelgen.def_l + c.Regalloc.Modelgen.def_ld)
        c.Regalloc.Modelgen.use_s c.Regalloc.Modelgen.use_sd
        (c.Regalloc.Modelgen.use_s + c.Regalloc.Modelgen.use_sd)
        p_def p_use)
    all

(* ---------------- Figure 7: solver statistics ---------------- *)

let figure7 () =
  rule "Figure 7: solver statistics";
  Fmt.pr "%-8s | %8s %8s | %8s %8s %8s | %5s %6s@." "" "root(s)" "total(s)"
    "vars" "rows" "objterms" "moves" "spills";
  List.iter
    (fun w ->
      let c = compile w in
      let s = c.Regalloc.Driver.stats in
      (match s.Regalloc.Driver.mip with
      | Some m ->
          Fmt.pr "%-8s | %8.2f %8.2f | %8d %8d %8d | %5d %6d@." w.name
            m.Lp.Mip.root_time m.Lp.Mip.total_time m.Lp.Mip.vars_before
            m.Lp.Mip.rows_before m.Lp.Mip.obj_terms
            s.Regalloc.Driver.moves_inserted s.Regalloc.Driver.spills_inserted
      | None -> Fmt.pr "%-8s | (no MIP stats)@." w.name);
      match w.paper_fig7 with
      | Some (rt, it, vk, ck, ok, mv, sp) ->
          Fmt.pr "%-8s | %8.1f %8.1f | %7dk %7dk %7dk | %5d %6d   (paper)@." ""
            rt it vk ck ok mv sp
      | None -> ())
    all;
  Fmt.pr
    "(paper: CPLEX on an 800 MHz Pentium III; ours: in-repo dual simplex + \
     branch&bound after the §8/§11 model reductions)@."

(* ---------------- Throughput (§11 measured bit rates) ---------------- *)

let throughput () =
  rule "Throughput: simulated 233 MHz micro-engine";
  Fmt.pr "%-8s | %8s | %10s | %10s | %9s@." "" "payload" "cycles/pkt"
    "1-thr Mb/s" "4-thr Mb/s";
  let sweep w payloads =
    List.iter
      (fun payload_len ->
        let c = compile w in
        (* single-thread run *)
        let sim1 = Ixp.Simulator.create ~threads:1 c.Regalloc.Driver.physical in
        w.init_sim sim1 ~payload_len;
        let cycles = Ixp.Simulator.run_single sim1 in
        let mbps1 = Ixp.Simulator.mbps sim1 ~bytes:payload_len in
        (* 4-thread pipelined run over a packet burst; each thread has its
           own SDRAM packet image already initialized identically *)
        let sim4 = Ixp.Simulator.create ~threads:4 c.Regalloc.Driver.physical in
        w.init_sim sim4 ~payload_len;
        let sd0 = Ixp.Simulator.sdram_of_thread sim4 ~thread:0 in
        for t = 1 to 3 do
          let sd = Ixp.Simulator.sdram_of_thread sim4 ~thread:t in
          for i = 0 to 2047 do
            Ixp.Memory.poke sd Ixp.Insn.Sdram i
              (Ixp.Memory.peek sd0 Ixp.Insn.Sdram i)
          done
        done;
        let budget_per_thread = 16 in
        let source ~thread:_ ~packets_done =
          if packets_done < budget_per_thread then Some [||] else None
        in
        let total_cycles = Ixp.Simulator.run_packets sim4 source in
        let pkts = Ixp.Simulator.packets_done sim4 in
        let bits = float_of_int (payload_len * 8 * pkts) in
        let mbps4 = bits /. (float_of_int total_cycles /. 233e6) /. 1e6 in
        Fmt.pr "%-8s | %8d | %10d | %10.1f | %9.1f@." w.name payload_len cycles
          mbps1 mbps4)
      payloads
  in
  sweep aes [ 16; 64; 256 ];
  sweep kasumi [ 8; 16; 64; 256 ];
  Fmt.pr
    "(paper measured on hardware: AES 270 Mb/s @16B; Kasumi 320/210/60 Mb/s \
     @ 8/16/256B)@."

(* ---------------- Ablation: spill-feasibility objective ---------------- *)

let ablation () =
  rule "Ablation: §11 alternative (spill-feasibility) objective";
  Fmt.pr "%-8s | %14s | %14s@." "" "full obj (s)" "spill obj (s)";
  List.iter
    (fun w ->
      let time_of c =
        match c.Regalloc.Driver.stats.Regalloc.Driver.mip with
        | Some m -> m.Lp.Mip.total_time
        | None -> nan
      in
      let full = compile w in
      let spill = compile ~objective:Regalloc.Ilp.Spill_feasibility w in
      Fmt.pr "%-8s | %14.2f | %14.2f@." w.name (time_of full) (time_of spill))
    all;
  Fmt.pr "(paper: AES 9 s and NAT 19.2 s under the alternative objective)@."

(* ---------------- Baseline comparison ---------------- *)

let baseline () =
  rule "ILP vs eager-heuristic baseline (weighted move cost, paper §1/§2)";
  Fmt.pr "%-8s | %12s %12s | %14s %14s@." "" "ILP moves" "base moves"
    "ILP wcost" "base wcost";
  List.iter
    (fun w ->
      let ilp = compile w in
      let si = ilp.Regalloc.Driver.stats in
      match
        try Some (compile ~allocator:Regalloc.Driver.Baseline_allocator w)
        with _ -> None
      with
      | Some base ->
          let sb = base.Regalloc.Driver.stats in
          Fmt.pr "%-8s | %12d %12d | %14.1f %14.1f@." w.name
            si.Regalloc.Driver.moves_inserted sb.Regalloc.Driver.moves_inserted
            si.Regalloc.Driver.weighted_move_cost
            sb.Regalloc.Driver.weighted_move_cost
      | None ->
          Fmt.pr "%-8s | %12d %12s | %14.1f %14s  (baseline failed)@." w.name
            si.Regalloc.Driver.moves_inserted "-"
            si.Regalloc.Driver.weighted_move_cost "-")
    all

(* ---------------- chip-level forwarding rates ---------------- *)

(* Paper-style line-rate table: each workload compiled with the ILP
   allocator and with the baseline heuristic, then run on the chip model
   (N engines x 4 contexts behind the shared memory bus) against the
   synthetic packet generator.  The solver runs under a node budget --
   deterministic, unlike a wall-clock cutoff -- so the same seed
   reproduces identical numbers across runs. *)
let rec rates ~full () =
  rule "Forwarding rate: chip-level simulation (ILP vs baseline allocator)";
  let seed = 42 in
  let packets = if full then 512 else 128 in
  let node_limit = if full then 400 else 60 in
  let profile = Ixp.Pktgen.Fixed 64 in
  let workloads = if full then all else [ kasumi; lpm; firewall; csum; qos ] in
  let engine_counts = if full then [ 1; 2; 6 ] else [ 1; 2 ] in
  (* one load every configuration can sustain (achieved = offered, no
     drops) and one that saturates even six engines (achieved = capacity,
     RX rings overflow) *)
  let offered_loads = [ 0.01; 1.0 ] in
  Fmt.pr
    "(profile %s, seed %d, %d packets/run, 4 contexts/engine, solver node \
     budget %d)@."
    (Ixp.Pktgen.profile_to_string profile)
    seed packets node_limit;
  Fmt.pr "%-8s %-5s %-10s | %3s | %7s | %8s %8s | %6s | %5s | %8s@." ""
    "alloc" "outcome" "eng" "offered" "achieved" "Mbit/s" "drop%" "util%"
    "p50 lat";
  List.iter
    (fun w ->
      List.iter
        (fun (alloc_name, alloc) ->
          match
            try
              Some (compile ~allocator:alloc ~time_limit:1e9 ~node_limit w)
            with _ -> None
          with
          | None ->
              Fmt.pr "%-8s %-5s (compile failed)@." w.name alloc_name
          | Some c ->
              let outcome =
                Regalloc.Driver.solver_outcome_to_string
                  c.Regalloc.Driver.stats.Regalloc.Driver.solver_outcome
              in
              (* strip the parenthetical for column width *)
              let outcome =
                match String.index_opt outcome ' ' with
                | Some i -> String.sub outcome 0 i
                | None -> outcome
              in
              List.iter
                (fun engines ->
                  List.iter
                    (fun offered ->
                      let r =
                        chip_run w c ~engines ~threads:4 ~offered ~packets
                          ~seed ~profile
                      in
                      let util =
                        let sum = ref 0. in
                        for e = 0 to engines - 1 do
                          sum := !sum +. Ixp.Chip.utilization r e
                        done;
                        100. *. !sum /. float_of_int engines
                      in
                      Fmt.pr
                        "%-8s %-5s %-10s | %3d | %7.2f | %8.3f %8.1f | %6.1f \
                         | %5.1f | %8d@."
                        w.name alloc_name outcome engines offered
                        (Ixp.Chip.achieved_mpps r)
                        (Ixp.Chip.achieved_mbps r)
                        (100. *. Ixp.Chip.drop_rate r)
                        util
                        (Ixp.Chip.latency_percentile r 0.50))
                    offered_loads)
                engine_counts)
        [ ("ilp", Regalloc.Driver.Ilp_allocator);
          ("base", Regalloc.Driver.Baseline_allocator) ])
    workloads;
  Fmt.pr
    "(offered/achieved in Mpps at 233 MHz; p50 latency in cycles from \
     arrival to packet completion; drops are RX-ring overflows)@.";
  cluster_rates ~full ()

(* ---------------- cluster forwarding rates ---------------- *)

(* Adversarial traffic against the multi-chip cluster: flow-skewed and
   flood profiles that stress the load balancer's affinity and failover
   behaviour.  Reported per profile x balancer x allocator: forwarding
   rate, p99/p999 tail latency from the Support.Metrics histograms, and
   per-chip drop accounting.  Fully deterministic under the fixed
   seed. *)
and cluster_rates ~full () =
  rule "Cluster forwarding rate: adversarial traffic (ILP vs baseline)";
  let seed = 42 in
  let packets = if full then 3000 else 600 in
  let node_limit = if full then 400 else 60 in
  let chips = if full then 4 else 2 in
  let engines = 2 in
  let offered = 0.6 in
  let w = kasumi in
  let profiles =
    [
      Ixp.Pktgen.Syn_flood { size = 40 };
      Ixp.Pktgen.Elephants { flows = 512; heavy = 4; heavy_pct = 80; size = 576 };
      Ixp.Pktgen.Imix_path;
    ]
  in
  Fmt.pr
    "(%s, %d chips x %d engines x 4 contexts, offered %.2f Mpps, %d \
     packets/run, seed %d)@."
    w.name chips engines offered packets seed;
  Fmt.pr "%-10s %-5s %-4s | %8s | %6s | %8s %8s | %s@." "profile" "alloc"
    "bal" "achieved" "drop%" "p99" "p99.9" "per-chip drops";
  List.iter
    (fun (alloc_name, alloc) ->
      match
        try Some (compile ~allocator:alloc ~time_limit:1e9 ~node_limit w)
        with _ -> None
      with
      | None -> Fmt.pr "%-10s %-5s (compile failed)@." "" alloc_name
      | Some c ->
          List.iter
            (fun profile ->
              List.iter
                (fun balancer ->
                  let r =
                    cluster_run w c ~chips ~balancer ~engines ~threads:4
                      ~offered ~packets ~seed ~profile ~drop_budget:0
                  in
                  let drops =
                    String.concat "/"
                      (Array.to_list
                         (Array.map string_of_int r.Cluster.lb_dropped))
                  in
                  Fmt.pr "%-10s %-5s %-4s | %8.3f | %6.1f | %8d %8d | %s@."
                    (Ixp.Pktgen.profile_to_string profile)
                    alloc_name
                    (Cluster.balancer_to_string balancer)
                    (Cluster.achieved_mpps r)
                    (100. *. Cluster.drop_rate r)
                    r.Cluster.p99 r.Cluster.p999 drops)
                [ Cluster.Flow_hash; Cluster.Round_robin ])
            profiles)
    [ ("ilp", Regalloc.Driver.Ilp_allocator);
      ("base", Regalloc.Driver.Baseline_allocator) ];
  Fmt.pr
    "(drops are balancer drops charged to the packet's natural target; \
     p99/p99.9 in cycles from the cluster.latency histogram)@."

(* CI smoke: a small cluster under a hard wall-clock ceiling, run twice
   to assert bit-identical reports under the fixed seed. *)
let cluster_smoke () =
  rule "Cluster smoke: determinism + wall-clock ceiling";
  let ceiling = 60. in
  let t0 = Unix.gettimeofday () in
  let w = kasumi in
  let c = compile ~allocator:Regalloc.Driver.Baseline_allocator w in
  let run balancer =
    cluster_run w c ~chips:2 ~balancer ~engines:2 ~threads:4 ~offered:0.6
      ~packets:400 ~seed:7
      ~profile:(Ixp.Pktgen.Syn_flood { size = 40 })
      ~drop_budget:0
  in
  let key (r : Cluster.report) =
    ( r.Cluster.cycles,
      r.Cluster.generated,
      r.Cluster.completed,
      r.Cluster.bytes_completed,
      Array.to_list r.Cluster.steered,
      Array.to_list r.Cluster.lb_dropped,
      (r.Cluster.p50, r.Cluster.p90, r.Cluster.p99, r.Cluster.p999) )
  in
  let r1 = run Cluster.Flow_hash in
  let r2 = run Cluster.Flow_hash in
  let rr = run Cluster.Round_robin in
  Fmt.pr "%a" Cluster.pp_report r1;
  Fmt.pr "round-robin: %d completed, %d dropped@." rr.Cluster.completed
    (Cluster.dropped rr);
  let deterministic = key r1 = key r2 in
  let accounted =
    r1.Cluster.generated = r1.Cluster.completed + Cluster.dropped r1
  in
  (* keep the full reports as a CI artifact *)
  let oc = open_out (artifact "cluster_smoke.txt") in
  let ppf = Format.formatter_of_out_channel oc in
  Cluster.pp_report ppf r1;
  Cluster.pp_report ppf rr;
  Format.pp_print_flush ppf ();
  close_out oc;
  let wall = Unix.gettimeofday () -. t0 in
  Fmt.pr
    "smoke wall time: %.2fs (ceiling %.0fs), deterministic: %b, accounted: \
     %b@."
    wall ceiling deterministic accounted;
  if wall > ceiling || (not deterministic) || not accounted then begin
    Fmt.epr "cluster-smoke FAILED@.";
    exit 1
  end

(* 10M-packet single-chip run: the scale target for the event-engine
   rewrite.  Uses the small idempotent chip kernel (packet-independent
   cost) so the run measures the event engine, and asserts the
   steady-state loop allocated (essentially) no minor words per
   packet. *)
let mega () =
  rule "Mega run: 10M packets through one chip";
  let source =
    {|
fun main () : word {
  let x = sram(64, 1);
  let c = scratch(256, 1);
  scratch(256) <- c + 1;
  x + 1
}
|}
  in
  let c = Regalloc.Driver.compile ~file:"mega.nova" source in
  let config =
    { Ixp.Chip.default_config with Ixp.Chip.engines = 6; threads = 4 }
  in
  let chip = Ixp.Chip.create ~config c.Regalloc.Driver.physical in
  let count = 10_000_000 in
  let gen =
    Ixp.Pktgen.create
      {
        Ixp.Pktgen.default_config with
        Ixp.Pktgen.profile = Ixp.Pktgen.Fixed 64;
        offered_mpps = 2.0;
        seed = 42;
        count;
        ports = 4;
      }
  in
  Ixp.Chip.prepare chip ~ports:4 ~expected:count;
  let t0 = Unix.gettimeofday () in
  Gc.full_major ();
  let minor0 = Gc.minor_words () in
  Ixp.Chip.drive chip ~deliver:Ixp.Chip.default_deliver gen;
  let minor1 = Gc.minor_words () in
  let wall = Unix.gettimeofday () -. t0 in
  let r = Ixp.Chip.finish chip in
  let words_per_packet = (minor1 -. minor0) /. float_of_int count in
  Fmt.pr "%a" Ixp.Chip.pp_report r;
  Fmt.pr "wall: %.1fs (%.2f Mpkt/s real time), %.4f minor words/packet@."
    wall
    (float_of_int count /. wall /. 1e6)
    words_per_packet;
  let ceiling = 300. in
  if wall > ceiling || words_per_packet >= 1. then begin
    Fmt.epr "mega FAILED (ceiling %.0fs, alloc budget 1 word/packet)@."
      ceiling;
    exit 1
  end

(* ---------------- §8 model-size reductions ---------------- *)

let pruning () =
  rule "Model size under the §8-style reductions (\"a million variables\")";
  Fmt.pr "%-8s | %23s | %23s | %s@." "" "spill-free model" "with scratch (M)"
    "after LP presolve";
  List.iter
    (fun w ->
      let f = front w in
      let size allow_spill =
        let mg = Regalloc.Modelgen.build ~allow_spill f.Regalloc.Driver.f_graph in
        let ilp = Regalloc.Ilp.build mg in
        let p = ilp.Regalloc.Ilp.instance.Ampl.Model.problem in
        let st = Lp.Problem.stats p in
        (st.Lp.Problem.n_vars, st.Lp.Problem.n_rows, p)
      in
      let v1, r1, p1 = size false in
      let v2, r2, _ = size true in
      let v3, r3 =
        match Lp.Presolve.run p1 with
        | Lp.Presolve.Reduced (r, _) ->
            let st = Lp.Problem.stats r in
            (st.Lp.Problem.n_vars, st.Lp.Problem.n_rows)
        | Lp.Presolve.Infeasible_detected -> (0, 0)
      in
      Fmt.pr "%-8s | %9d v %9d r | %9d v %9d r | %d v %d r@." w.name v1 r1 v2
        r2 v3 r3)
    all;
  Fmt.pr
    "(paper §8: without its reductions the models would reach ~10^6 move \
     variables; with them CPLEX solved 10^5-variable models)@."

(* ---------------- §12 rematerialization (future work, implemented) --- *)

let remat () =
  rule "§12 rematerialization: constants through the virtual bank C";
  Fmt.pr "%-8s | %12s %12s | %12s %12s@." "" "cycles" "cycles+remat"
    "moves" "moves+remat";
  List.iter
    (fun w ->
      let cycles c ~payload_len =
        let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
        w.init_sim sim ~payload_len;
        Ixp.Simulator.run_single sim
      in
      let plain = compile w in
      match
        try
          Some
            (Regalloc.Driver.compile
               ~options:
                 {
                   Regalloc.Driver.default_options with
                   rematerialize = true;
                   time_limit = 900.;
                 }
               ~file:(w.name ^ ".nova") w.source)
        with _ -> None
      with
      | Some r ->
          Fmt.pr "%-8s | %12d %12d | %12d %12d@." w.name
            (cycles plain ~payload_len:64)
            (cycles r ~payload_len:64)
            plain.Regalloc.Driver.stats.Regalloc.Driver.moves_inserted
            r.Regalloc.Driver.stats.Regalloc.Driver.moves_inserted
      | None -> Fmt.pr "%-8s | (remat compile failed)@." w.name)
    [ kasumi ];
  Fmt.pr
    "(the paper §12 describes this virtual constant bank C as designed but      unimplemented; here it is completed end to end)@."

(* ---------------- solver benchmark ---------------- *)

(* Root-LP and integer solve times on the paper models under the example
   budgets (120 s / 20k nodes), plus seeded random 0-1 instances.
   Writes BENCH_solver.json with the measured numbers next to the seed
   revision's baseline (dense explicit inverse, depth-first dive, no
   cuts, no heuristic) so the perf trajectory is recorded. *)

type solver_row = {
  sb_name : string;
  sb_status : string;
  sb_obj : float;
  sb_bound : float;
  sb_root : float;
  sb_total : float;
  sb_nodes : int;
  sb_iters : int;
  sb_cuts : int;
  sb_heur : int;
}

(* measured at the seed revision with the same budgets *)
let solver_seed_baseline =
  [
    ("Kasumi", ("optimal", 0.09, 0.10, 0.19, 1, 534));
    ("AES", ("limit", 0.18, 4.44, 122.14, 989, 11896));
    ("NAT", ("limit", 4.16, 56.15, 124.78, 125, 4033));
  ]

let solver_status_string = function
  | Lp.Mip.Optimal -> "optimal"
  | Lp.Mip.Infeasible -> "infeasible"
  | Lp.Mip.Limit -> "limit"

let solve_workload_model ?(time_limit = 120.) ?(node_limit = 20_000)
    ?(domains = 1) ?(deterministic = false) w =
  let f = front w in
  let mg = Regalloc.Modelgen.build ~allow_spill:false f.Regalloc.Driver.f_graph in
  let ilp = Regalloc.Ilp.build mg in
  let p = ilp.Regalloc.Ilp.instance.Ampl.Model.problem in
  let r = Lp.Mip.solve ~time_limit ~node_limit ~domains ~deterministic p in
  let s = r.Lp.Mip.stats in
  {
    sb_name = w.name;
    sb_status = solver_status_string r.Lp.Mip.status;
    sb_obj = r.Lp.Mip.objective;
    sb_bound = s.Lp.Mip.best_bound;
    sb_root = s.Lp.Mip.root_time;
    sb_total = s.Lp.Mip.total_time;
    sb_nodes = s.Lp.Mip.nodes;
    sb_iters = s.Lp.Mip.simplex_iterations;
    sb_cuts = s.Lp.Mip.cuts_added;
    sb_heur = s.Lp.Mip.heuristic_incumbents;
  }

(* seeded random set-packing/covering mixes, all solved to optimality *)
let solver_random_instance seed =
  let st = Random.State.make [| seed |] in
  let p = Lp.Problem.create () in
  let n = 40 in
  let vars =
    Array.init n (fun i ->
        Lp.Problem.add_binary p
          ~obj:(-.float_of_int (1 + Random.State.int st 9))
          (Printf.sprintf "x%d" i))
  in
  for _ = 1 to 60 do
    let k = 3 + Random.State.int st 5 in
    let picked = Hashtbl.create 8 in
    for _ = 1 to k do
      Hashtbl.replace picked (Random.State.int st n) ()
    done;
    let terms = Hashtbl.fold (fun j () acc -> (vars.(j), 1.) :: acc) picked [] in
    Lp.Problem.add_row p Lp.Problem.Le
      (float_of_int (1 + Random.State.int st 2))
      terms
  done;
  p

let solve_random_instance seed =
  let p = solver_random_instance seed in
  let r = Lp.Mip.solve ~time_limit:60. ~node_limit:100_000 p in
  let s = r.Lp.Mip.stats in
  {
    sb_name = Printf.sprintf "rand-%d" seed;
    sb_status = solver_status_string r.Lp.Mip.status;
    sb_obj = r.Lp.Mip.objective;
    sb_bound = s.Lp.Mip.best_bound;
    sb_root = s.Lp.Mip.root_time;
    sb_total = s.Lp.Mip.total_time;
    sb_nodes = s.Lp.Mip.nodes;
    sb_iters = s.Lp.Mip.simplex_iterations;
    sb_cuts = s.Lp.Mip.cuts_added;
    sb_heur = s.Lp.Mip.heuristic_incumbents;
  }

let pp_solver_row r =
  Fmt.pr "%-8s | %-8s | %10.4f %10.4f | %7.2f %7.2f | %6d %7d | %4d %4d@."
    r.sb_name r.sb_status r.sb_obj r.sb_bound r.sb_root r.sb_total r.sb_nodes
    r.sb_iters r.sb_cuts r.sb_heur

let solver_json_row buf r =
  Buffer.add_string buf
    (Printf.sprintf
       "    { \"name\": %S, \"status\": %S, \"objective\": %.6f, \
        \"best_bound\": %.6f, \"root_s\": %.3f, \"total_s\": %.3f, \
        \"nodes\": %d, \"iterations\": %d, \"cuts\": %d, \
        \"heuristic_incumbents\": %d }"
       r.sb_name r.sb_status r.sb_obj r.sb_bound r.sb_root r.sb_total
       r.sb_nodes r.sb_iters r.sb_cuts r.sb_heur)

let write_solver_json rows =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n  \"baseline_seed\": [\n";
  List.iteri
    (fun i (name, (status, obj, root, total, nodes, iters)) ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"status\": %S, \"objective\": %.6f, \
            \"root_s\": %.3f, \"total_s\": %.3f, \"nodes\": %d, \
            \"iterations\": %d }"
           name status obj root total nodes iters))
    solver_seed_baseline;
  Buffer.add_string buf "\n  ],\n  \"current\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      solver_json_row buf r)
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out "BENCH_solver.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Fmt.pr "wrote BENCH_solver.json@."

let solver_header () =
  Fmt.pr "%-8s | %-8s | %10s %10s | %7s %7s | %6s %7s | %4s %4s@." "" "status"
    "objective" "bound" "root(s)" "tot(s)" "nodes" "iters" "cuts" "heur"

let solver () =
  rule "Solver: root-LP + integer solve times (120 s / 20k node budgets)";
  solver_header ();
  let rows = List.map solve_workload_model [ kasumi; aes; nat ] in
  List.iter pp_solver_row rows;
  let rand_rows = List.map solve_random_instance [ 1; 2; 3 ] in
  List.iter pp_solver_row rand_rows;
  List.iter
    (fun (name, (status, obj, root, total, nodes, iters)) ->
      Fmt.pr
        "%-8s | %-8s | %10.4f %10s | %7.2f %7.2f | %6d %7d   (seed baseline)@."
        name status obj "-" root total nodes iters)
    solver_seed_baseline;
  write_solver_json (rows @ rand_rows)

(* CI gate: small models under a hard wall-clock ceiling, so a basis or
   pricing regression fails the build rather than just getting slower.
   With [domains] >= 2 the Kasumi model is additionally solved by the
   parallel search -- twice, in deterministic mode -- and the gate also
   fails if the parallel objective disagrees with the sequential one or
   the deterministic node count does not reproduce. *)
let solver_smoke ?(domains = 1) () =
  rule
    (if domains >= 2 then
       Printf.sprintf
         "Solver smoke: Kasumi + random instances (+%d-domain parallel \
          search) under a hard ceiling"
         domains
     else "Solver smoke: Kasumi + random instances under a hard ceiling");
  let ceiling = 60. in
  let t0 = Unix.gettimeofday () in
  solver_header ();
  let seq = solve_workload_model ~time_limit:50. kasumi in
  let rows = seq :: List.map solve_random_instance [ 1; 2 ] in
  List.iter pp_solver_row rows;
  let par_failures = ref [] in
  if domains >= 2 then begin
    let par name r =
      pp_solver_row { r with sb_name = name };
      if r.sb_status <> "optimal" then
        par_failures := Printf.sprintf "%s: status %s" name r.sb_status
                        :: !par_failures;
      r
    in
    let a =
      par
        (Printf.sprintf "par-%d-a" domains)
        (solve_workload_model ~time_limit:50. ~domains ~deterministic:true
           kasumi)
    in
    let b =
      par
        (Printf.sprintf "par-%d-b" domains)
        (solve_workload_model ~time_limit:50. ~domains ~deterministic:true
           kasumi)
    in
    if Float.abs (a.sb_obj -. seq.sb_obj) > 1e-6 then
      par_failures :=
        Printf.sprintf "parallel objective %.6f != sequential %.6f" a.sb_obj
          seq.sb_obj
        :: !par_failures;
    if a.sb_nodes <> b.sb_nodes || a.sb_iters <> b.sb_iters then
      par_failures :=
        Printf.sprintf
          "deterministic run did not reproduce: %d/%d nodes, %d/%d iters"
          a.sb_nodes b.sb_nodes a.sb_iters b.sb_iters
        :: !par_failures
  end;
  let wall = Unix.gettimeofday () -. t0 in
  let all_optimal = List.for_all (fun r -> r.sb_status = "optimal") rows in
  Fmt.pr "smoke wall time: %.2fs (ceiling %.0fs), all optimal: %b@." wall
    ceiling all_optimal;
  List.iter (fun f -> Fmt.epr "solver-smoke: %s@." f) (List.rev !par_failures);
  if wall > ceiling || (not all_optimal) || !par_failures <> [] then begin
    Fmt.epr "solver-smoke FAILED@.";
    exit 1
  end

(* Speedup table for EXPERIMENTS.md: the AES and NAT models solved by
   1/2/4/8 worker domains under the standard budgets.  Speedups are
   relative to the 1-domain wall time of the same model; on a single-core
   host expect ~1x across the board (the table records what the
   measurement host can actually show, not an extrapolation). *)
let solver_scaling () =
  rule "Solver scaling: wall time vs worker domains (120 s / 20k nodes)";
  Fmt.pr "(host reports %d core(s) available)@."
    (Domain.recommended_domain_count ());
  Fmt.pr "%-8s | %7s | %-8s | %10s | %7s | %6s | %7s@." "" "domains" "status"
    "objective" "tot(s)" "nodes" "speedup";
  List.iter
    (fun w ->
      let base = ref nan in
      List.iter
        (fun d ->
          let r = solve_workload_model ~domains:d w in
          if d = 1 then base := r.sb_total;
          Fmt.pr "%-8s | %7d | %-8s | %10.4f | %7.2f | %6d | %6.2fx@."
            r.sb_name d r.sb_status r.sb_obj r.sb_total r.sb_nodes
            (!base /. r.sb_total))
        [ 1; 2; 4; 8 ])
    [ aes; nat ]

(* ---------------- pipeline bench + CI regression gate ---------------- *)

(* Per-stage wall times for the full compile pipeline on the three paper
   workloads, measured through the [Support.Trace] spans the pipeline
   itself emits.  The solver runs under a node budget (deterministic,
   unlike a wall-clock cutoff), so node/iteration counts reproduce
   exactly and stage times are comparable across runs of the same code.

     pipeline       writes BENCH_pipeline.json (the checked-in baseline)
                    and a Perfetto trace per workload
     pipeline-gate  re-measures and fails (exit 1) if any stage slowed
                    down by more than the tolerance versus the baseline,
                    or if a deterministic counter drifted *)

let pipeline_node_limit = 128

type pipe_row = {
  pl_name : string;
  pl_stages : (string * float) list; (* span name -> inclusive seconds *)
  pl_nodes : int;
  pl_iters : int;
  pl_moves : int;
  pl_outcome : string;
  pl_warm : bool; (* solve was warm-started (node counts not comparable) *)
}

let measure_pipeline (w : workload) =
  Support.Metrics.reset ();
  Support.Trace.enable ();
  let options =
    {
      Regalloc.Driver.default_options with
      time_limit = 1e9;
      node_limit = pipeline_node_limit;
    }
  in
  let c = Regalloc.Driver.compile ~options ~file:(w.name ^ ".nova") w.source in
  Support.Trace.disable ();
  let trace_file =
    artifact
      (Printf.sprintf "trace_pipeline_%s.json" (String.lowercase_ascii w.name))
  in
  Support.Trace.write trace_file;
  let s = c.Regalloc.Driver.stats in
  let nodes, iters, warm =
    match s.Regalloc.Driver.mip with
    | Some m -> (m.Lp.Mip.nodes, m.Lp.Mip.simplex_iterations,
                 m.Lp.Mip.warm_start_used)
    | None -> (0, 0, false)
  in
  let outcome =
    match s.Regalloc.Driver.solver_outcome with
    | Regalloc.Driver.Outcome_optimal -> "optimal"
    | Regalloc.Driver.Outcome_incumbent -> "incumbent"
    | Regalloc.Driver.Outcome_fallback -> "fallback"
    | Regalloc.Driver.Outcome_heuristic -> "heuristic"
  in
  {
    pl_name = w.name;
    pl_stages = Support.Trace.span_totals ();
    pl_nodes = nodes;
    pl_iters = iters;
    pl_moves = s.Regalloc.Driver.moves_inserted;
    pl_outcome = outcome;
    pl_warm = warm;
  }

(* The stages a healthy pipeline must show a span for (the acceptance
   surface of the trace layer; "compile"/"front-end"/"allocate"/"solve"
   are roll-ups of these). *)
let pipeline_required_stages =
  [
    "parse"; "typecheck"; "cps-convert"; "contract"; "deproc"; "ssu"; "isel";
    "modelgen"; "ilp-build"; "presolve"; "root-cuts"; "root-lp";
    "branch-and-bound"; "emit";
  ]

let pp_pipe_row r =
  Fmt.pr "%-8s | %-9s | %6d nodes %7d iters %4d moves@." r.pl_name
    r.pl_outcome r.pl_nodes r.pl_iters r.pl_moves;
  List.iter
    (fun (stage, secs) ->
      if List.mem stage pipeline_required_stages then
        Fmt.pr "         |   %-18s %9.4f s@." stage secs)
    r.pl_stages

let pipeline_json rows =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"node_limit\": %d,\n  \"workloads\": [\n"
       pipeline_node_limit);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"outcome\": %S, \"nodes\": %d, \
            \"iterations\": %d, \"moves\": %d, \"warm\": %b,\n      \
            \"stages\": { "
           r.pl_name r.pl_outcome r.pl_nodes r.pl_iters r.pl_moves r.pl_warm);
      List.iteri
        (fun j (stage, secs) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (Printf.sprintf "%S: %.4f" stage secs))
        r.pl_stages;
      Buffer.add_string buf " } }")
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let pipeline_workloads = [ kasumi; aes; nat; lpm; firewall; csum; qos ]

let missing_stages r =
  List.filter
    (fun s -> not (List.mem_assoc s r.pl_stages))
    pipeline_required_stages

let pipeline () =
  rule
    (Printf.sprintf "Pipeline: per-stage wall times (node budget %d)"
       pipeline_node_limit);
  let rows = List.map measure_pipeline pipeline_workloads in
  List.iter pp_pipe_row rows;
  let missing =
    List.concat_map
      (fun r -> List.map (fun s -> r.pl_name ^ "/" ^ s) (missing_stages r))
      rows
  in
  if missing <> [] then begin
    Fmt.epr "pipeline: missing stage spans: %s@." (String.concat ", " missing);
    exit 1
  end;
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc (pipeline_json rows);
  close_out oc;
  Fmt.pr "wrote BENCH_pipeline.json (and _artifacts/trace_pipeline_*.json)@."

(* Gate tolerances.  Stage times are wall clock on shared CI runners, so
   the time gate is deliberately loose (3x + 100 ms): it catches a pass
   or solver stage going superlinearly wrong, not a 20%% wobble.  Node /
   iteration counts are deterministic under the node budget and get a
   tight relative band (they drift only if the search itself changed). *)
let gate_time_factor = 3.0
let gate_time_slack = 0.1
let gate_count_rel = 0.25
let gate_count_abs = 8

let pipeline_gate () =
  rule "Pipeline gate: stage times vs checked-in BENCH_pipeline.json";
  let baseline =
    let ic = open_in_bin "BENCH_pipeline.json" in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Support.Json.parse text with
    | Ok v -> v
    | Error msg ->
        Fmt.epr "pipeline-gate: cannot parse BENCH_pipeline.json: %s@." msg;
        exit 1
  in
  let json_workloads =
    match Option.bind (Support.Json.member "workloads" baseline)
            Support.Json.to_list
    with
    | Some ws -> ws
    | None ->
        Fmt.epr "pipeline-gate: baseline has no \"workloads\" array@.";
        exit 1
  in
  let rows = List.map measure_pipeline pipeline_workloads in
  let oc = open_out (artifact "BENCH_pipeline.current.json") in
  output_string oc (pipeline_json rows);
  close_out oc;
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let get_int w key =
    Option.bind (Support.Json.member key w) Support.Json.to_int
  in
  let get_str w key =
    Option.bind (Support.Json.member key w) Support.Json.to_string
  in
  List.iter
    (fun w ->
      let name = Option.value ~default:"?" (get_str w "name") in
      match List.find_opt (fun r -> r.pl_name = name) rows with
      | None -> fail "%s: in baseline but not measured" name
      | Some r ->
          List.iter
            (fun s -> fail "%s/%s: stage span missing from this run" name s)
            (missing_stages r);
          (match get_str w "outcome" with
          | Some o when o <> r.pl_outcome ->
              fail "%s: solver outcome %s, baseline %s" name r.pl_outcome o
          | _ -> ());
          let check_count key measured =
            match get_int w key with
            | None -> ()
            | Some base ->
                let tol =
                  max gate_count_abs
                    (int_of_float (gate_count_rel *. float_of_int base))
                in
                if abs (measured - base) > tol then
                  fail "%s: %s %d vs baseline %d (tolerance %d)" name key
                    measured base tol
          in
          (* Warm-started solves prune differently by design (the seeded
             incumbent changes the tree), so node/iteration counts are
             only gated on cold legs; moves are budget-independent and
             stay gated either way. *)
          let baseline_warm =
            Option.value ~default:false
              (Option.bind (Support.Json.member "warm" w) Support.Json.to_bool)
          in
          if not (r.pl_warm || baseline_warm) then begin
            check_count "nodes" r.pl_nodes;
            check_count "iterations" r.pl_iters
          end;
          check_count "moves" r.pl_moves;
          (match Support.Json.member "stages" w with
          | Some (Support.Json.Obj stages) ->
              List.iter
                (fun (stage, v) ->
                  match
                    (Support.Json.to_float v, List.assoc_opt stage r.pl_stages)
                  with
                  | Some base, Some measured ->
                      let limit =
                        (gate_time_factor *. base) +. gate_time_slack
                      in
                      let verdict =
                        if measured > limit then begin
                          fail "%s/%s: %.3fs vs baseline %.3fs (limit %.3fs)"
                            name stage measured base limit;
                          "FAIL"
                        end
                        else "ok"
                      in
                      if List.mem stage pipeline_required_stages then
                        Fmt.pr "%-8s %-18s %9.4f s (baseline %9.4f s)  %s@."
                          name stage measured base verdict
                  | Some _, None ->
                      fail "%s/%s: baseline stage absent from this run" name
                        stage
                  | None, _ -> ())
                stages
          | _ -> fail "%s: baseline row has no stages object" name))
    json_workloads;
  (* Parallel-search determinism: two identical 2-domain deterministic
     solves of the AES model (under the same node budget as the pipeline
     rows, so the search genuinely branches) must expand identical
     trees.  This pins the fixed node-distribution schedule the pipeline
     numbers above rely on for reproducibility. *)
  let ra =
    solve_workload_model ~node_limit:pipeline_node_limit ~domains:2
      ~deterministic:true aes
  in
  let rb =
    solve_workload_model ~node_limit:pipeline_node_limit ~domains:2
      ~deterministic:true aes
  in
  if ra.sb_nodes <> rb.sb_nodes || ra.sb_iters <> rb.sb_iters then
    fail
      "deterministic 2-domain solve did not reproduce: %d/%d nodes, %d/%d \
       iters"
      ra.sb_nodes rb.sb_nodes ra.sb_iters rb.sb_iters
  else
    Fmt.pr
      "deterministic 2-domain reproducibility: %d nodes / %d iters (both \
       runs)  ok@."
      ra.sb_nodes ra.sb_iters;
  match !failures with
  | [] -> Fmt.pr "pipeline-gate PASSED@."
  | fs ->
      List.iter (fun f -> Fmt.epr "pipeline-gate: %s@." f) (List.rev fs);
      Fmt.epr "pipeline-gate FAILED (%d)@." (List.length fs);
      exit 1

(* ---------------- incremental compilation bench + service smoke ------- *)

(* Cold / no-op / one-line-edit rebuild times through the stage-cached
   driver ([Regalloc.Driver.compile_incremental]), per workload, under
   the same deterministic node budget as the pipeline bench.  The
   one-line edit appends a `//` comment: the front end re-runs (the
   source hash changed) but the model fingerprint is unchanged, so the
   solve stage must replay from the artifact store instead of invoking
   the solver.  Writes BENCH_incremental.json and fails (exit 1) if
     - the no-op rebuild is not a pure cache hit (full-compile memo,
       i.e. no solver invocation at all), or
     - the edit rebuild misses the solve cache or changes the proven
       move cost / outcome versus the cold compile, or
     - the NAT edit rebuild is not >= 5x faster than its cold compile. *)

type inc_row = {
  inc_name : string;
  inc_cold : float;
  inc_noop : float;
  inc_edit : float;
  inc_cost : float; (* weighted move cost of the cold compile *)
  inc_outcome : string;
  inc_noop_full : bool;
  inc_edit_solve : bool;
}

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let incremental_options =
  {
    Regalloc.Driver.default_options with
    time_limit = 1e9;
    node_limit = pipeline_node_limit;
  }

let measure_incremental ~store ~fail:(report : string -> unit) (w : workload)
    =
  let fail fmt = Printf.ksprintf report fmt in
  let file = String.lowercase_ascii w.name ^ ".nova" in
  let run source =
    let t0 = Unix.gettimeofday () in
    let r =
      Regalloc.Driver.compile_incremental ~options:incremental_options ~store
        ~file source
    in
    (Unix.gettimeofday () -. t0, r)
  in
  let cold_t, (c0, r0) = run w.source in
  if r0.Regalloc.Driver.full_hit || r0.Regalloc.Driver.solve_hit then
    fail "%s: cold leg hit the cache (stale store?)" w.name;
  let noop_t, (_, r1) = run w.source in
  if not r1.Regalloc.Driver.full_hit then
    fail "%s: no-op rebuild was not a pure cache hit" w.name;
  let edited = w.source ^ "\n// incremental bench probe\n" in
  let edit_t, (c2, r2) = run edited in
  if r2.Regalloc.Driver.full_hit then
    fail "%s: edited source reported a full-compile cache hit" w.name;
  if not r2.Regalloc.Driver.solve_hit then
    fail "%s: edit rebuild missed the solve cache (fingerprint drift?)" w.name;
  let cost c = c.Regalloc.Driver.stats.Regalloc.Driver.weighted_move_cost in
  let outcome c =
    Regalloc.Driver.solver_outcome_to_string
      c.Regalloc.Driver.stats.Regalloc.Driver.solver_outcome
  in
  if Float.abs (cost c0 -. cost c2) > 1e-6 then
    fail "%s: edit rebuild cost %.6f != cold %.6f" w.name (cost c2) (cost c0);
  if outcome c0 <> outcome c2 then
    fail "%s: edit rebuild outcome %s != cold %s" w.name (outcome c2)
      (outcome c0);
  {
    inc_name = w.name;
    inc_cold = cold_t;
    inc_noop = noop_t;
    inc_edit = edit_t;
    inc_cost = cost c0;
    inc_outcome = outcome c0;
    inc_noop_full = r1.Regalloc.Driver.full_hit;
    inc_edit_solve = r2.Regalloc.Driver.solve_hit;
  }

let incremental_json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"node_limit\": %d,\n  \"workloads\": [\n"
       pipeline_node_limit);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"name\": %S, \"cold_s\": %.4f, \"noop_s\": %.4f, \
            \"edit_s\": %.4f,\n      \"edit_speedup\": %.2f, \
            \"noop_full_hit\": %b, \"edit_solve_hit\": %b,\n      \
            \"outcome\": %S, \"weighted_move_cost\": %.4f }"
           r.inc_name r.inc_cold r.inc_noop r.inc_edit
           (r.inc_cold /. Float.max 1e-9 r.inc_edit)
           r.inc_noop_full r.inc_edit_solve r.inc_outcome r.inc_cost))
    rows;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let incremental () =
  rule
    (Printf.sprintf
       "Incremental: cold / no-op / one-line-edit rebuilds (node budget %d)"
       pipeline_node_limit);
  let dir = artifact "cache-bench" in
  rm_rf dir;
  Regalloc.Driver.clear_memos ();
  let store = Cache.Store.create ~dir () in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let rows =
    List.map
      (measure_incremental ~store ~fail:(fun s -> failures := s :: !failures))
      pipeline_workloads
  in
  Fmt.pr "%-8s | %8s | %8s | %8s | %8s | %-9s@." "" "cold(s)" "noop(s)"
    "edit(s)" "speedup" "outcome";
  List.iter
    (fun r ->
      Fmt.pr "%-8s | %8.3f | %8.3f | %8.3f | %7.1fx | %-9s@." r.inc_name
        r.inc_cold r.inc_noop r.inc_edit
        (r.inc_cold /. Float.max 1e-9 r.inc_edit)
        r.inc_outcome)
    rows;
  (match List.find_opt (fun r -> r.inc_name = "NAT") rows with
  | Some r when r.inc_cold /. Float.max 1e-9 r.inc_edit < 5. ->
      fail "NAT edit rebuild only %.1fx faster than cold (need >= 5x)"
        (r.inc_cold /. Float.max 1e-9 r.inc_edit)
  | _ -> ());
  let oc = open_out "BENCH_incremental.json" in
  output_string oc (incremental_json rows);
  close_out oc;
  Fmt.pr "wrote BENCH_incremental.json@.";
  match !failures with
  | [] -> Fmt.pr "incremental PASSED@."
  | fs ->
      List.iter (fun f -> Fmt.epr "incremental: %s@." f) (List.rev fs);
      Fmt.epr "incremental FAILED (%d)@." (List.length fs);
      exit 1

(* CI gate for `novac serve`: spawn the daemon in a domain, compile the
   Kasumi workload twice over the socket, and assert the second response
   is served entirely from the cache (full-compile memo hit -- the
   solver never runs).  Hard 60 s wall-clock ceiling like the other
   smoke jobs. *)
let service_smoke () =
  rule "Service smoke: daemon cold compile, then pure cache hit";
  let ceiling = 60. in
  let t0 = Unix.gettimeofday () in
  let socket_path = artifact "novac-smoke.sock" in
  let dir = artifact "cache-smoke" in
  rm_rf dir;
  Regalloc.Driver.clear_memos ();
  let config =
    {
      Service.Daemon.socket_path;
      cache_dir = Some dir;
      base_options = incremental_options;
      verbose = false;
    }
  in
  let daemon = Domain.spawn (fun () -> Service.Daemon.run config) in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let t = Service.Client.connect_retry ~socket_path () in
  (match Service.Client.ping t with
  | Ok _ -> ()
  | Error e -> fail "ping: %s" e);
  let flag resp path name =
    Option.value ~default:false
      (Option.bind
         (Option.bind (Support.Json.member path resp)
            (Support.Json.member name))
         Support.Json.to_bool)
  in
  let compile_once label =
    let c0 = Unix.gettimeofday () in
    match
      Service.Client.compile ~node_limit:pipeline_node_limit
        ~file:"kasumi.nova" ~source:kasumi.source t
    with
    | Error e ->
        fail "%s compile: %s" label e;
        None
    | Ok resp ->
        let elapsed = Unix.gettimeofday () -. c0 in
        let ok =
          Option.value ~default:false
            (Option.bind (Support.Json.member "ok" resp) Support.Json.to_bool)
        in
        if not ok then fail "%s compile: response not ok" label;
        Fmt.pr "%s: %.3fs (front=%b model=%b solve=%b full=%b)@." label
          elapsed (flag resp "cache" "front") (flag resp "cache" "model")
          (flag resp "cache" "solve") (flag resp "cache" "full");
        Some resp
  in
  let cold = compile_once "cold" in
  let warm = compile_once "warm" in
  (match cold with
  | Some resp when flag resp "cache" "full" ->
      fail "cold compile reported a full cache hit (stale daemon state?)"
  | _ -> ());
  (match warm with
  | Some resp when not (flag resp "cache" "full") ->
      fail "second compile was not a pure cache hit (front=%b model=%b \
            solve=%b)"
        (flag resp "cache" "front") (flag resp "cache" "model")
        (flag resp "cache" "solve")
  | _ -> ());
  (match Service.Client.shutdown t with
  | Ok _ -> ()
  | Error e -> fail "shutdown: %s" e);
  Service.Client.close t;
  Domain.join daemon;
  let wall = Unix.gettimeofday () -. t0 in
  Fmt.pr "smoke wall time: %.2fs (ceiling %.0fs)@." wall ceiling;
  if wall > ceiling then fail "wall time %.1fs over the %.0fs ceiling" wall
    ceiling;
  match !failures with
  | [] -> Fmt.pr "service-smoke PASSED@."
  | fs ->
      List.iter (fun f -> Fmt.epr "service-smoke: %s@." f) (List.rev fs);
      Fmt.epr "service-smoke FAILED (%d)@." (List.length fs);
      exit 1

(* ---------------- end-to-end correctness gate ---------------- *)

let verify () =
  rule "Correctness gate: simulator vs reference implementations";
  let ok = ref true in
  (* AES *)
  let c = compile aes in
  let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
  aes.init_sim sim ~payload_len:64;
  ignore (Ixp.Simulator.run_single sim);
  let ct, _ = Workloads.Aes.expected ~payload_len:64 in
  let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
  let aok = ref true in
  Array.iteri
    (fun i w ->
      if Ixp.Memory.peek sdram Ixp.Insn.Sdram ((Workloads.Aes.ct_base / 4) + i) <> w
      then aok := false)
    ct;
  Fmt.pr "AES ciphertext matches FIPS-derived reference: %b@." !aok;
  (* Kasumi *)
  let c = compile kasumi in
  let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
  kasumi.init_sim sim ~payload_len:64;
  ignore (Ixp.Simulator.run_single sim);
  let ct, _ = Workloads.Kasumi.expected ~payload_len:64 in
  let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
  let kok = ref true in
  Array.iteri
    (fun i w ->
      if
        Ixp.Memory.peek sdram Ixp.Insn.Sdram ((Workloads.Kasumi.pkt_base / 4) + i)
        <> w
      then kok := false)
    ct;
  Fmt.pr "Kasumi ciphertext matches reference: %b@." !kok;
  (* NAT *)
  let c = compile nat in
  let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
  nat.init_sim sim ~payload_len:96;
  ignore (Ixp.Simulator.run_single sim);
  let image, _ =
    Workloads.Nat.expected ~payload_len:96
      ~sdram_words:Ixp.Memory.default_config.Ixp.Memory.sdram_words
  in
  let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
  let nok = ref true in
  for i = 0 to (Workloads.Nat.in_base + 40 + 96) / 4 do
    if Ixp.Memory.peek sdram Ixp.Insn.Sdram i <> image.(i) then nok := false
  done;
  Fmt.pr "NAT packet image matches reference: %b@." !nok;
  (* dataplane portfolio: generic packet-image comparison against each
     workload's reference transform *)
  let dataplane_ok w ~payload_len ~in_base expected =
    let c = compile w in
    let sim = Ixp.Simulator.create c.Regalloc.Driver.physical in
    w.init_sim sim ~payload_len;
    ignore (Ixp.Simulator.run_single sim);
    let image, _ =
      expected ~payload_len
        ~sdram_words:Ixp.Memory.default_config.Ixp.Memory.sdram_words
    in
    let sdram = Ixp.Simulator.sdram_of_thread sim ~thread:0 in
    let wok = ref true in
    for i = in_base / 4 to ((in_base + 20 + payload_len) / 4) + 1 do
      if Ixp.Memory.peek sdram Ixp.Insn.Sdram i <> image.(i) then wok := false
    done;
    Fmt.pr "%s packet image matches reference: %b@." w.name !wok;
    !wok
  in
  let lok =
    dataplane_ok lpm ~payload_len:16 ~in_base:Workloads.Lpm.in_base
      Workloads.Lpm.expected
  in
  let fok =
    dataplane_ok firewall ~payload_len:16 ~in_base:Workloads.Firewall.in_base
      Workloads.Firewall.expected
  in
  let cok =
    dataplane_ok csum ~payload_len:24 ~in_base:Workloads.Csum.in_base
      Workloads.Csum.expected
  in
  let qok =
    dataplane_ok qos ~payload_len:16 ~in_base:Workloads.Qos.in_base
      Workloads.Qos.expected
  in
  ok := !aok && !kok && !nok && lok && fok && cok && qok;
  if not !ok then exit 1

(* ---------------- bechamel micro-benchmarks ---------------- *)

let bechamel_time () =
  let open Bechamel in
  let open Toolkit in
  let kasumi_front = front kasumi in
  let graph = kasumi_front.Regalloc.Driver.f_graph in
  let mg = lazy (Regalloc.Modelgen.build graph) in
  let problem =
    lazy
      (let ilp = Regalloc.Ilp.build (Lazy.force mg) in
       ilp.Regalloc.Ilp.instance.Ampl.Model.problem)
  in
  let compiled = compile kasumi in
  let tests =
    [
      (* Figure 5 kernel: front end *)
      Test.make ~name:"figure5/parse+typecheck"
        (Staged.stage (fun () ->
             ignore
               (Nova.Typecheck.check_program
                  (Nova.Parser.parse_string ~file:"k" kasumi.source))));
      (* Figure 6 kernel: model generation *)
      Test.make ~name:"figure6/modelgen"
        (Staged.stage (fun () -> ignore (Regalloc.Modelgen.build graph)));
      (* Figure 7 kernels: model build, presolve, root LP *)
      Test.make ~name:"figure7/ilp-build"
        (Staged.stage (fun () -> ignore (Regalloc.Ilp.build (Lazy.force mg))));
      Test.make ~name:"figure7/presolve"
        (Staged.stage (fun () -> ignore (Lp.Presolve.run (Lazy.force problem))));
      Test.make ~name:"figure7/root-lp"
        (Staged.stage (fun () ->
             match Lp.Presolve.run (Lazy.force problem) with
             | Lp.Presolve.Reduced (r, _) ->
                 ignore (Lp.Revised.solve (Lp.Revised.create r))
             | Lp.Presolve.Infeasible_detected -> ()));
      (* throughput kernel: one simulated Kasumi packet *)
      Test.make ~name:"throughput/simulate-64B"
        (Staged.stage (fun () ->
             let sim = Ixp.Simulator.create compiled.Regalloc.Driver.physical in
             kasumi.init_sim sim ~payload_len:64;
             ignore (Ixp.Simulator.run_single sim)));
    ]
  in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 2.0) () in
    Benchmark.all cfg Instance.[ monotonic_clock ] test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock results
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark test) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Fmt.pr "%-32s %12.1f ns/run@." name est
          | _ -> Fmt.pr "%-32s (no estimate)@." name)
        results)
    tests

(* ---------------- driver ---------------- *)

let () =
  let which = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  match which with
  | "figure5" -> figure5 ()
  | "figure6" -> figure6 ()
  | "figure7" -> figure7 ()
  | "throughput" -> throughput ()
  | "rates" -> rates ~full:true ()
  | "rates-smoke" -> rates ~full:false ()
  | "solver" -> solver ()
  | "solver-smoke" ->
      (* optional: solver-smoke --solver-domains N adds the parallel legs *)
      let domains = ref 1 in
      Array.iteri
        (fun i a ->
          if a = "--solver-domains" && i + 1 < Array.length Sys.argv then
            domains := int_of_string Sys.argv.(i + 1))
        Sys.argv;
      solver_smoke ~domains:!domains ()
  | "solver-scaling" -> solver_scaling ()
  | "pipeline" -> pipeline ()
  | "pipeline-gate" -> pipeline_gate ()
  | "incremental" -> incremental ()
  | "service-smoke" -> service_smoke ()
  | "cluster-smoke" -> cluster_smoke ()
  | "mega" -> mega ()
  | "ablation" -> ablation ()
  | "baseline" -> baseline ()
  | "pruning" -> pruning ()
  | "remat" -> remat ()
  | "verify" -> verify ()
  | "time" -> bechamel_time ()
  | "all" ->
      figure5 ();
      figure6 ();
      pruning ();
      figure7 ();
      verify ();
      baseline ();
      ablation ();
      remat ();
      throughput ()
  | other ->
      Fmt.epr
        "unknown experiment %s (try \
         figure5/figure6/figure7/throughput/rates/rates-smoke/solver/\
         solver-smoke/pipeline/pipeline-gate/incremental/service-smoke/\
         cluster-smoke/mega/ablation/baseline/pruning/verify/time/all)@."
        other;
      exit 1
